//! # ecocapsule-baselines
//!
//! The comparison systems the paper evaluates against:
//!
//! - [`pab`] — *Piezo-Acoustic Backscatter* (Jang & Adib, SIGCOMM'19):
//!   the underwater backscatter system used as the main baseline in
//!   Figs 12, 15 and 16. 15 kHz carrier, two test pools;
//! - [`u2b`] — *Ultra-wideband underwater backscatter* (Ghaffarivardavagh
//!   et al., SIGCOMM'20): the wideband baseline in Fig 16;
//! - [`rf`] — passive RFID embedded in concrete (§3.5): the RF
//!   alternative whose centimetre range motivates acoustic backscatter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pab;
pub mod rf;
pub mod u2b;

//! PAB: underwater piezo-acoustic backscatter (SIGCOMM'19) — the paper's
//! primary baseline.
//!
//! PAB runs at a 15 kHz carrier in water. Water carries no shear waves
//! (§3.1), so PAB's channel is single-mode — simpler than concrete — but
//! the low carrier caps the modulation band at ~3 kbps (Fig 16) and its
//! decoder needs ~11 dB for the 1e-5 BER floor vs EcoCapsule's 8 dB
//! (Fig 15).

use channel::linkbudget::{LinkBudget, PabPool};
use rand::Rng;
use reader::rx::{simulate_fm0_ber, snr_vs_bitrate_db};

/// PAB carrier frequency (Hz).
pub const PAB_CARRIER_HZ: f64 = 15e3;

/// SNR penalty of PAB's decoder relative to EcoCapsule's (dB): Fig 15
/// shows its BER floor crossing at ~11 dB vs ~8 dB.
pub const PAB_DECODER_PENALTY_DB: f64 = 3.0;

/// PAB modulation band limit (bps): "it is limited to 3 kbps in PAB"
/// (Fig 16 discussion).
pub const PAB_BAND_LIMIT_BPS: f64 = 3.3e3;

/// Link budget of a PAB pool (re-exported from the channel layer, where
/// the pool geometry lives).
pub fn pool_link_budget(pool: PabPool) -> LinkBudget {
    pool.link_budget()
}

/// PAB's BER at a given SNR (Fig 15's PAB curve): EcoCapsule's FM0
/// decoder with the 3 dB front-end penalty.
pub fn pab_ber<R: Rng>(snr_db: f64, n_bits: usize, rng: &mut R) -> f64 {
    simulate_fm0_ber(snr_db - PAB_DECODER_PENALTY_DB, n_bits, rng)
}

/// PAB's uplink SNR vs bitrate (Fig 16's PAB curve).
pub fn pab_snr_vs_bitrate_db(bitrate_bps: f64) -> f64 {
    snr_vs_bitrate_db(bitrate_bps, 17.0, PAB_BAND_LIMIT_BPS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use reader::rx::ecocapsule_snr_vs_bitrate_db;

    #[test]
    fn fig15_pab_needs_3db_more_than_ecocapsule() {
        let mut rng = StdRng::seed_from_u64(1);
        let eco = simulate_fm0_ber(8.0, 30_000, &mut rng);
        let pab_at_8 = pab_ber(8.0, 30_000, &mut rng);
        let pab_at_11 = pab_ber(11.0, 30_000, &mut rng);
        assert!(pab_at_8 > eco, "PAB worse at 8 dB: {pab_at_8} vs {eco}");
        assert!(pab_at_11 <= eco * 3.0 + 1e-4, "PAB at 11 dB ≈ Eco at 8 dB");
    }

    #[test]
    fn fig16_pab_dies_past_3kbps() {
        assert!(pab_snr_vs_bitrate_db(1e3) > 10.0);
        let at_3k = pab_snr_vs_bitrate_db(3e3);
        assert!(at_3k < 6.0, "3 kbps: {at_3k}");
        assert_eq!(pab_snr_vs_bitrate_db(4e3), f64::NEG_INFINITY);
    }

    #[test]
    fn fig16_ecocapsule_outlasts_pab() {
        // EcoCapsule's 230 kHz carrier "can piggyback a wider data band".
        for r in [4e3, 8e3, 12e3] {
            assert!(
                ecocapsule_snr_vs_bitrate_db(r) > pab_snr_vs_bitrate_db(r),
                "at {r} bps"
            );
        }
    }

    #[test]
    fn pool2_needs_more_voltage_than_pool1() {
        let p1 = pool_link_budget(PabPool::Pool1);
        let p2 = pool_link_budget(PabPool::Pool2);
        // At 60 V, pool 1 works, pool 2 does not.
        assert!(p1.max_range_m(60.0, 0.5).unwrap().is_some());
        assert!(p2.max_range_m(60.0, 0.5).unwrap().is_none());
    }
}

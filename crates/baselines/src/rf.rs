//! Passive RFID embedded in concrete (§3.5 practical discussion).
//!
//! "The communication ranges of these RF based backscatters are limited
//! to several centimeters when implanted into concrete because of the
//! severe attenuations caused by the concrete. In contrast, concrete is
//! well known as a good conductor for mechanical vibrations, allowing up
//! to meters of communication range."
//!
//! Concrete's RF loss at UHF is enormous: moist reinforced concrete
//! attenuates 900 MHz by tens of dB per ten centimetres (the rebar mesh
//! adds a Faraday-cage shielding floor on top). The model here is a
//! standard homogeneous-dielectric absorption law calibrated to the
//! embedded-RFID literature the paper cites (refs. 37 and 53).

/// UHF RFID carrier (Hz).
pub const UHF_CARRIER_HZ: f64 = 915e6;

/// RF attenuation in moist structural concrete at UHF (dB/m). Published
/// measurements run 150–400 dB/m depending on cure state; we use a
/// mid-range value for mature, moist concrete.
pub const CONCRETE_RF_LOSS_DB_M: f64 = 250.0;

/// Additional shielding from the steel reinforcement mesh (dB), §1's
/// "natural Faraday cage".
pub const REBAR_SHIELDING_DB: f64 = 10.0;

/// Link margin of a passive UHF tag reader chain in free space (dB):
/// EIRP + tag sensitivity budget at contact.
pub const FREE_SPACE_MARGIN_DB: f64 = 36.0;

/// Maximum embedment depth (m) at which a passive UHF tag can still be
/// powered through reinforced concrete.
pub fn rf_max_depth_m(reinforced: bool) -> f64 {
    let shielding = if reinforced { REBAR_SHIELDING_DB } else { 0.0 };
    ((FREE_SPACE_MARGIN_DB - shielding) / CONCRETE_RF_LOSS_DB_M).max(0.0)
}

/// Link margin (dB) remaining for a tag at `depth_m` inside concrete;
/// negative = dead.
pub fn rf_margin_db(depth_m: f64, reinforced: bool) -> f64 {
    assert!(depth_m >= 0.0, "depth must be non-negative");
    let shielding = if reinforced { REBAR_SHIELDING_DB } else { 0.0 };
    FREE_SPACE_MARGIN_DB - shielding - CONCRETE_RF_LOSS_DB_M * depth_m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rf_range_is_centimeters() {
        // §3.5: "limited to several centimeters".
        let d = rf_max_depth_m(true);
        assert!((0.02..0.20).contains(&d), "RF depth {d} m");
    }

    #[test]
    fn acoustic_beats_rf_by_an_order_of_magnitude() {
        use channel::linkbudget::LinkBudget;
        use concrete::structure::Structure;
        let acoustic = LinkBudget::for_structure(&Structure::s3_common_wall())
            .unwrap()
            .max_range_m(200.0, 0.5)
            .unwrap()
            .unwrap();
        let rf = rf_max_depth_m(true);
        assert!(acoustic / rf > 10.0, "acoustic {acoustic} m vs RF {rf} m");
    }

    #[test]
    fn rebar_makes_it_worse() {
        assert!(rf_max_depth_m(true) < rf_max_depth_m(false));
    }

    #[test]
    fn margin_goes_negative_past_max_depth() {
        let d = rf_max_depth_m(true);
        assert!(rf_margin_db(d + 0.01, true) < 0.0);
        assert!(rf_margin_db(d - 0.01, true) > 0.0);
    }
}

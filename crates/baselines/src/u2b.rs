//! U²B: ultra-wideband underwater backscatter via piezoelectric
//! metamaterials (SIGCOMM'20) — the wideband baseline of Fig 16.
//!
//! U²B trades front-end sensitivity for bandwidth: its metamaterial
//! transducer covers a much wider band, so its SNR-vs-bitrate curve
//! starts lower than EcoCapsule's but rolls off later — it "achieves
//! higher SNR than EcoCapsule when bitrate exceeds 9 kbps since it takes
//! a wider band".

use reader::rx::{ecocapsule_snr_vs_bitrate_db, snr_vs_bitrate_db};

/// U²B modulation band limit (bps).
pub const U2B_BAND_LIMIT_BPS: f64 = 40e3;

/// U²B base SNR at 1 kbps (dB) — lower than EcoCapsule's 17 dB because
/// the wideband front end collects more noise.
pub const U2B_BASE_SNR_DB: f64 = 15.1;

/// U²B's uplink SNR vs bitrate (Fig 16's U²B curve).
pub fn u2b_snr_vs_bitrate_db(bitrate_bps: f64) -> f64 {
    snr_vs_bitrate_db(bitrate_bps, U2B_BASE_SNR_DB, U2B_BAND_LIMIT_BPS)
}

/// The crossover bitrate (bps) where U²B overtakes EcoCapsule, scanned
/// at 100 bps resolution; `None` if it never does below `limit_bps`.
pub fn crossover_bps(limit_bps: f64) -> Option<f64> {
    let mut r = 1e3;
    while r < limit_bps {
        if u2b_snr_vs_bitrate_db(r) > ecocapsule_snr_vs_bitrate_db(r) {
            return Some(r);
        }
        r += 100.0;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig16_u2b_starts_below_ecocapsule() {
        for r in [1e3, 2e3, 4e3] {
            assert!(
                u2b_snr_vs_bitrate_db(r) < ecocapsule_snr_vs_bitrate_db(r),
                "at {r} bps U²B should be below EcoCapsule"
            );
        }
    }

    #[test]
    fn fig16_u2b_overtakes_around_9_to_11_kbps() {
        // Paper: "achieves higher SNR than EcoCapsule when bitrate
        // exceeds 9 kbps".
        let x = crossover_bps(16e3).expect("curves must cross");
        assert!((8e3..12e3).contains(&x), "crossover at {x}");
    }

    #[test]
    fn u2b_band_is_widest() {
        assert!(u2b_snr_vs_bitrate_db(20e3).is_finite());
        assert_eq!(ecocapsule_snr_vs_bitrate_db(20e3), f64::NEG_INFINITY);
    }
}

//! Benches for the channel simulator (Figs 18/24 workloads).

use channel::multipath::Wall2d;
use channel::uplink::{synthesize_uplink, UplinkConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use dsp::fft::power_spectrum;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn nc_wall() -> Wall2d {
    let mix = concrete::ConcreteGrade::Nc.mix();
    Wall2d::new(2.0, 2.0, mix.material().cs_m_s, mix.attenuation_s(), 230e3)
}

fn bench_fig18_position_sweep(c: &mut Criterion) {
    let wall = nc_wall();
    c.bench_function("fig18_rss_amplitude_40_positions_order3", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..40 {
                let x = 0.9 + 0.3 * (i % 8) as f64 / 8.0;
                let y = 0.05 + 1.9 * (i / 8) as f64 / 4.0;
                acc += wall.rss_amplitude(black_box((0.1, 1.0)), (x, y), 3);
            }
            black_box(acc)
        })
    });
}

fn bench_image_source_arrivals(c: &mut Criterion) {
    let wall = nc_wall();
    c.bench_function("image_source_arrivals_order5", |b| {
        b.iter(|| black_box(wall.arrivals(black_box((0.3, 0.7)), (1.6, 1.2), 5)))
    });
}

fn bench_fig24_spectrum(c: &mut Criterion) {
    let cfg = UplinkConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(3);
    let bits = vec![false; 200];
    let (y, _) = synthesize_uplink(&cfg, &bits, 4e3, 0.0, 0.001, &mut rng);
    let mut group = c.benchmark_group("fig24");
    group.sample_size(10);
    group.bench_function("uplink_power_spectrum", |b| {
        b.iter(|| black_box(power_spectrum(black_box(&y), cfg.fs_hz).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig18_position_sweep,
    bench_image_source_arrivals,
    bench_fig24_spectrum
);
criterion_main!(benches);

//! Benches for wireless charging (Fig 12 workload).

use channel::linkbudget::{LinkBudget, PabPool};
use concrete::structure::Structure;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig12_range_sweep(c: &mut Criterion) {
    let budgets: Vec<LinkBudget> = Structure::paper_set()
        .iter()
        .map(|s| LinkBudget::for_structure(s).unwrap())
        .chain([PabPool::Pool1.link_budget(), PabPool::Pool2.link_budget()])
        .collect();
    c.bench_function("fig12_range_sweep_6_structures_13_voltages", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for lb in &budgets {
                for v in (10..=250).step_by(20) {
                    if let Ok(Some(r)) = lb.max_range_m(black_box(v as f64), 0.5) {
                        acc += r;
                    }
                }
            }
            black_box(acc)
        })
    });
}

fn bench_link_budget_construction(c: &mut Criterion) {
    let s3 = Structure::s3_common_wall();
    c.bench_function("link_budget_for_structure", |b| {
        b.iter(|| black_box(LinkBudget::for_structure(black_box(&s3))))
    });
}

criterion_group!(
    benches,
    bench_fig12_range_sweep,
    bench_link_budget_construction
);
criterion_main!(benches);

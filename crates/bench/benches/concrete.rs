//! Benches for the concrete substrate (Fig 5(b) workload).

use concrete::response::Block;
use concrete::ConcreteGrade;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig05_frequency_sweep(c: &mut Criterion) {
    let blocks = [
        Block::new(ConcreteGrade::Nc.mix(), 0.07),
        Block::new(ConcreteGrade::Nc.mix(), 0.15),
        Block::new(ConcreteGrade::Uhpc.mix(), 0.15),
        Block::new(ConcreteGrade::Uhpfrc.mix(), 0.15),
    ];
    c.bench_function("fig05_sweep_4_blocks_20_400khz", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for blk in &blocks {
                let (_, amps) = blk.sweep(20e3, 400e3, 10e3, black_box(100.0));
                acc += amps.iter().sum::<f64>();
            }
            black_box(acc)
        })
    });
}

fn bench_peak_search(c: &mut Criterion) {
    let blk = Block::new(ConcreteGrade::Uhpc.mix(), 0.15);
    c.bench_function("fig05_peak_frequency_search", |b| {
        b.iter(|| black_box(blk.peak_frequency_hz()))
    });
}

criterion_group!(benches, bench_fig05_frequency_sweep, bench_peak_search);
criterion_main!(benches);

//! Benches for the downlink (Figs 19/20 workloads).

use channel::downlink::DownlinkChannel;
use criterion::{criterion_group, criterion_main, Criterion};
use phy::modulation::DownlinkScheme;
use std::hint::black_box;

fn bench_fig19_prism_sweep(c: &mut Criterion) {
    let ch = DownlinkChannel::paper_default();
    let mut group = c.benchmark_group("fig19");
    group.sample_size(10);
    group.bench_function("snr_vs_incident_angle_8pts", |b| {
        b.iter(|| {
            black_box(ch.snr_vs_incident_angle(
                black_box(&[0.0, 15.0, 30.0, 45.0, 50.0, 60.0, 70.0, 75.0]),
                1e3,
            ))
        })
    });
    group.finish();
}

fn bench_fig20_fsk_vs_ook(c: &mut Criterion) {
    let ch = DownlinkChannel::paper_default();
    let off = concrete::ConcreteGrade::Nc
        .mix()
        .off_resonant_frequency_hz();
    let mut group = c.benchmark_group("fig20");
    group.sample_size(10);
    group.bench_function("symbol_snr_fsk_and_ook_at_2kbps", |b| {
        b.iter(|| {
            let fsk = ch.symbol_snr_db(black_box(2e3), DownlinkScheme::FskInOokOut { off_hz: off });
            let ook = ch.symbol_snr_db(2e3, DownlinkScheme::Ook);
            black_box((fsk, ook))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig19_prism_sweep, bench_fig20_fsk_vs_ook);
criterion_main!(benches);

//! Benches for the elastic-wave substrate (Fig 4 / Fig 3a workloads).

use criterion::{criterion_group, criterion_main, Criterion};
use elastic::interface::SolidInterface;
use elastic::Material;
use std::hint::black_box;

fn bench_fig04_mode_sweep(c: &mut Criterion) {
    let iface = SolidInterface::new(Material::PLA, Material::CONCRETE_REF);
    c.bench_function("fig04_zoeppritz_sweep_0_to_80deg", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for deg in 0..=80 {
                let s = iface.incident_p(black_box(deg as f64).to_radians().min(1.57));
                acc += s.energy_trans_s;
            }
            black_box(acc)
        })
    });
}

fn bench_fig03a_beam(c: &mut Criterion) {
    c.bench_function("fig03a_half_beam_and_cone", |b| {
        b.iter(|| {
            let a = elastic::beam::half_beam_angle(black_box(3338.0), 230e3, 0.040).unwrap();
            black_box(elastic::beam::cone_volume_m3(a, 0.15))
        })
    });
}

fn bench_piston_directivity(c: &mut Criterion) {
    c.bench_function("piston_directivity_360pts", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..360 {
                let theta = i as f64 * std::f64::consts::PI / 720.0;
                acc += elastic::beam::piston_directivity(black_box(theta), 230e3, 3338.0, 0.04);
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    bench_fig04_mode_sweep,
    bench_fig03a_beam,
    bench_piston_directivity
);
criterion_main!(benches);

//! Benches for the extension modules (DESIGN.md §7): spectrogram,
//! carrier tuning, curing scans, selective inventory, damage analyses.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_spectrogram(c: &mut Criterion) {
    let fs = 1.0e6;
    let sig: Vec<f64> = (0..20_000)
        .map(|i| (2.0 * std::f64::consts::PI * 230e3 * i as f64 / fs).sin())
        .collect();
    let mut group = c.benchmark_group("extensions");
    group.sample_size(20);
    group.bench_function("spectrogram_20k_samples", |b| {
        b.iter(|| {
            black_box(
                dsp::spectrogram::Spectrogram::compute(black_box(&sig), 512, 256, fs).unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_fine_tuning(c: &mut Criterion) {
    use concrete::defects::DefectChannel;
    use concrete::response::Block;
    let block = Block::new(concrete::ConcreteGrade::Nc.mix(), 0.15);
    let cs = concrete::ConcreteGrade::Nc.material().cs_m_s;
    let ch = DefectChannel::reinforced(1.5, cs, 3.0, 42);
    c.bench_function("fine_tune_40khz_span", |b| {
        b.iter(|| {
            black_box(reader::tuning::fine_tune(
                black_box(&block),
                &ch,
                40e3,
                0.5e3,
            ))
        })
    });
}

fn bench_curing_scan(c: &mut Criterion) {
    use concrete::curing::CuringConcrete;
    c.bench_function("curing_first_usable_day", |b| {
        b.iter(|| {
            black_box(CuringConcrete::first_usable_day(
                black_box(concrete::ConcreteGrade::Nc.mix()),
                0.9,
            ))
        })
    });
}

fn bench_selective_inventory(c: &mut Criterion) {
    use protocol::frame::Command;
    use protocol::inventory::{inventory_all, NodeProtocol};
    c.bench_function("select_then_inventory_16_of_32", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            let mut nodes: Vec<NodeProtocol> = (0..16u32)
                .map(|i| NodeProtocol::new(0xA000_0000 + i))
                .chain((0..16u32).map(|i| NodeProtocol::new(0xB000_0000 + i)))
                .collect();
            let sel = Command::Select {
                prefix: 0xA000_0000,
                prefix_bits: 16,
            };
            for n in nodes.iter_mut() {
                n.on_command(&sel, &mut rng);
            }
            black_box(inventory_all(&mut nodes, 4, 60, &mut rng))
        })
    });
}

fn bench_damage_analyses(c: &mut Criterion) {
    use shm::damage::{corrosion_risk, strain_drift};
    let strain: Vec<(f64, f64)> = (0..1000)
        .map(|i| (i as f64 * 86_400.0, 1e-6 * i as f64))
        .collect();
    let irh: Vec<(f64, f64)> = (0..1000).map(|i| (i as f64 * 86_400.0, 75.0)).collect();
    c.bench_function("damage_strain_drift_1k_samples", |b| {
        b.iter(|| black_box(strain_drift(black_box(&strain), 50.0)))
    });
    c.bench_function("damage_corrosion_risk_1k_samples", |b| {
        b.iter(|| black_box(corrosion_risk(black_box(&irh))))
    });
}

criterion_group!(
    benches,
    bench_spectrogram,
    bench_fine_tuning,
    bench_curing_scan,
    bench_selective_inventory,
    bench_damage_analyses
);
criterion_main!(benches);

//! Benches for the node hardware models (Figs 13/14, Eqn 4 shells).

use criterion::{criterion_group, criterion_main, Criterion};
use node::harvester::Harvester;
use node::power::PowerModel;
use node::shell::Shell;
use std::hint::black_box;

fn bench_fig14_cold_start_curve(c: &mut Criterion) {
    let h = Harvester::default();
    c.bench_function("fig14_cold_start_100pts", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..100 {
                let v = 0.4 + i as f64 * 0.05;
                if let Some(t) = h.cold_start_s(black_box(v)) {
                    acc += t;
                }
            }
            black_box(acc)
        })
    });
}

fn bench_fig13_power_curve(c: &mut Criterion) {
    c.bench_function("fig13_power_curve", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for r in 0..=80 {
                acc += PowerModel.consumption_w(black_box(r as f64 * 100.0));
            }
            black_box(acc)
        })
    });
}

fn bench_eqn04_shell_ratings(c: &mut Criterion) {
    c.bench_function("eqn04_shell_ratings", |b| {
        b.iter(|| {
            let resin = Shell::paper_resin();
            let steel = Shell::paper_steel();
            black_box((
                resin.max_building_height_m(black_box(2300.0)),
                steel.max_building_height_m(2360.0),
            ))
        })
    });
}

fn bench_store_simulation(c: &mut Criterion) {
    let h = Harvester::default();
    let envelope: Vec<(f64, f64)> = (0..100)
        .map(|i| (1e-3, if i % 2 == 0 { 1.5 } else { 0.0 }))
        .collect();
    let mut group = c.benchmark_group("harvester");
    group.sample_size(30);
    group.bench_function("store_simulation_100ms", |b| {
        b.iter(|| black_box(h.simulate_store(black_box(&envelope), 1e-5)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig14_cold_start_curve,
    bench_fig13_power_curve,
    bench_eqn04_shell_ratings,
    bench_store_simulation
);
criterion_main!(benches);

//! Benches for the PHY layer (Fig 7 ring effect, Eqn 5 HRA, line codes).

use criterion::{criterion_group, criterion_main, Criterion};
use phy::fm0::Fm0;
use phy::hra::HelmholtzResonator;
use phy::modulation::{synthesize_drive, DownlinkScheme};
use phy::pie::Pie;
use phy::pzt::Pzt;
use std::hint::black_box;

fn bench_fig07_ring_effect(c: &mut Criterion) {
    let fs = 2.0e6;
    let pzt = Pzt::reader_disc(fs);
    let pie = Pie::new(0.5e-3);
    let segments = pie.encode(&[false]);
    let drive = synthesize_drive(&segments, DownlinkScheme::Ook, 230e3, fs);
    let mut group = c.benchmark_group("fig07");
    group.sample_size(20);
    group.bench_function("pzt_ring_response_1ms_at_2msps", |b| {
        b.iter(|| black_box(pzt.respond(black_box(&drive))))
    });
    group.finish();
}

fn bench_eqn05_hra(c: &mut Criterion) {
    c.bench_function("eqn05_hra_design_and_gain", |b| {
        b.iter(|| {
            let r = HelmholtzResonator::paper_geometry().design_for(black_box(230e3), 1941.0);
            black_box(r.gain_at(230e3, 1941.0, 3.0))
        })
    });
}

fn bench_line_codes(c: &mut Criterion) {
    let pie = Pie::new(100e-6);
    let fm0 = Fm0::new(16);
    let bits: Vec<bool> = (0..512).map(|i| i % 3 == 0).collect();
    c.bench_function("pie_encode_decode_512bits", |b| {
        b.iter(|| {
            let segs = pie.encode(black_box(&bits));
            black_box(pie.decode(&segs).unwrap())
        })
    });
    c.bench_function("fm0_encode_ml_decode_512bits", |b| {
        b.iter(|| {
            let wave = fm0.encode(black_box(&bits));
            black_box(fm0.decode_ml(&wave))
        })
    });
}

criterion_group!(
    benches,
    bench_fig07_ring_effect,
    bench_eqn05_hra,
    bench_line_codes
);
criterion_main!(benches);

//! Benches for the SHM pilot study (Fig 21 workload).

use criterion::{criterion_group, criterion_main, Criterion};
use shm::health::{grade_sections, Region};
use shm::pilot::{Channel, PilotStudy};
use std::hint::black_box;

fn bench_fig21_month_generation(c: &mut Criterion) {
    let study = PilotStudy::new(2021_07);
    let mut group = c.benchmark_group("fig21");
    group.sample_size(20);
    group.bench_function("generate_one_month_acceleration", |b| {
        b.iter(|| black_box(study.generate(black_box(Channel::Acceleration(1)))))
    });
    group.bench_function("anomaly_detection_full_month", |b| {
        b.iter(|| black_box(study.detect_anomalies(black_box(Channel::Acceleration(1)), 1.8)))
    });
    group.finish();
}

fn bench_health_grading(c: &mut Criterion) {
    use shm::footbridge::Section;
    let counts: Vec<(Section, usize, f64)> =
        Section::ALL.iter().map(|&s| (s, 7usize, 1.2f64)).collect();
    c.bench_function("grade_5_sections", |b| {
        b.iter(|| black_box(grade_sections(black_box(&counts))))
    });
    c.bench_function("region_grade_1000pts", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..1000 {
                let pao = i as f64 * 0.005;
                acc += Region::HongKong.grade(black_box(pao)) as usize;
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_fig21_month_generation, bench_health_grading);
criterion_main!(benches);

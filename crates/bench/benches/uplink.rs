//! Benches for the uplink (Figs 15/16/17/22 workloads).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fig15_ber_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15");
    group.sample_size(10);
    group.bench_function("fm0_ber_10kbits_at_8db", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            black_box(reader::rx::simulate_fm0_ber(
                black_box(8.0),
                10_000,
                &mut rng,
            ))
        })
    });
    group.finish();
}

fn bench_fig16_snr_curves(c: &mut Criterion) {
    c.bench_function("fig16_three_curves_15pts", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..=15 {
                let (e, p, u) = ecocapsule::scenario::fig16_point(black_box(i as f64 * 1e3));
                for v in [e, p, u] {
                    if v.is_finite() {
                        acc += v;
                    }
                }
            }
            black_box(acc)
        })
    });
}

fn bench_fig17_throughputs(c: &mut Criterion) {
    c.bench_function("fig17_throughput_3_grades", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for g in concrete::ConcreteGrade::ALL {
                acc += ecocapsule::scenario::throughput_for_grade(black_box(g));
            }
            black_box(acc)
        })
    });
}

fn bench_fig22_waveform(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig22");
    group.sample_size(10);
    group.bench_function("backscatter_waveform_18ms", |b| {
        b.iter(|| {
            black_box(ecocapsule::scenario::fig22_waveform(
                4e-3,
                1000.0,
                black_box(18e-3),
            ))
        })
    });
    group.finish();
}

fn bench_full_reply_decode(c: &mut Criterion) {
    use channel::uplink::{synthesize_uplink, UplinkConfig};
    use protocol::frame::Reply;
    use reader::rx::{Capture, Receiver};
    let cfg = UplinkConfig {
        delay_s: 0.0,
        ..UplinkConfig::paper_default()
    };
    let mut rng = StdRng::seed_from_u64(5);
    let mut bits = phy::fm0::PREAMBLE_BITS.to_vec();
    bits.extend(Reply::NodeId { id: 42 }.encode());
    let (samples, _) = synthesize_uplink(&cfg, &bits, 2e3, 1e-3, 0.005, &mut rng);
    let capture = Capture {
        samples,
        fs_hz: cfg.fs_hz,
    };
    let rx = Receiver::new(2e3);
    let mut group = c.benchmark_group("rx");
    group.sample_size(10);
    group.bench_function("decode_reply_full_chain", |b| {
        b.iter(|| black_box(rx.decode_reply(black_box(&capture)).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig15_ber_point,
    bench_fig16_snr_curves,
    bench_fig17_throughputs,
    bench_fig22_waveform,
    bench_full_reply_decode
);
criterion_main!(benches);

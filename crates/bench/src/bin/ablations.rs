//! Ablation studies for the design choices DESIGN.md §7 calls out.
//!
//! ```sh
//! cargo run -p bench --bin ablations --release -- all
//! ```
//!
//! | id | question |
//! |---|---|
//! | prism-material | does PLA beat stiffer/softer wedge stock? |
//! | hra | what does the Helmholtz array actually buy? |
//! | stages | multiplier stage count vs cold start and range |
//! | coding | FM0 vs Miller M=2/4/8 under noise |
//! | antiring | braking-voltage calibration cliff vs FSK |
//! | defects | defect load vs channel loss, and what retuning recovers |
//! | node-scale | prototype vs §8 mm-scale node |
//! | curing | how many days after the pour until the link works? |
//! | surface | what kills the TX→RX surface-wave leak? |

use bench::{fmt, print_table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let id = args.first().map(String::as_str).unwrap_or("all");
    let known: &[(&str, fn())] = &[
        ("prism-material", prism_material),
        ("hra", hra),
        ("stages", stages),
        ("coding", coding),
        ("antiring", antiring),
        ("defects", defects),
        ("node-scale", node_scale),
        ("curing", curing),
        ("surface", surface),
    ];
    if id == "all" {
        for (name, f) in known {
            println!("\n######## {name} ########");
            f();
        }
        return;
    }
    match known.iter().find(|(name, _)| *name == id) {
        Some((_, f)) => f(),
        None => {
            eprintln!("unknown ablation `{id}`; available:");
            for (name, _) in known {
                eprintln!("  {name}");
            }
            std::process::exit(2);
        }
    }
}

/// Would a different wedge material beat PLA? Sweep plausible polymer
/// stocks and report the S-only window and the best transmitted S energy.
fn prism_material() {
    use elastic::prism::Prism;
    use elastic::Material;
    let stocks = [
        Material {
            name: "soft polymer",
            density_kg_m3: 1000.0,
            cp_m_s: 1500.0,
            cs_m_s: 700.0,
        },
        Material::PLA,
        Material {
            name: "acrylic",
            density_kg_m3: 1190.0,
            cp_m_s: 2730.0,
            cs_m_s: 1430.0,
        },
        Material {
            name: "nylon",
            density_kg_m3: 1140.0,
            cp_m_s: 2600.0,
            cs_m_s: 1100.0,
        },
    ];
    let mut rows = Vec::new();
    for stock in stocks {
        let p = Prism::new(stock, Material::CONCRETE_REF, 45f64.to_radians());
        match p.s_only_window() {
            Some((ca1, ca2)) => {
                let (theta, inj) = p.optimal_angle(0.25).unwrap();
                rows.push(vec![
                    stock.name.to_string(),
                    fmt(ca1.to_degrees(), 1),
                    fmt(ca2.to_degrees(), 1),
                    fmt(theta.to_degrees(), 1),
                    fmt(inj.energy_s, 3),
                ]);
            }
            None => rows.push(vec![
                stock.name.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "0".into(),
            ]),
        }
    }
    print_table(
        "Prism stock ablation — S-only window and best S energy into reference concrete",
        &["stock", "CA1_deg", "CA2_deg", "best_deg", "S_energy"],
        &rows,
    );
    println!("PLA's low longitudinal speed opens the widest usable window —");
    println!("the paper's §3.2 trade-off (and why acrylic's window is narrow).");
}

/// What the Helmholtz resonator array buys at the node's receiving face.
fn hra() {
    use phy::hra::HelmholtzArray;
    let cs = 1941.0;
    let arr = HelmholtzArray::ecocapsule(230e3, cs);
    let mut rows = Vec::new();
    for f in [180e3, 210e3, 230e3, 250e3, 280e3] {
        rows.push(vec![
            fmt(f / 1e3, 0),
            fmt(arr.element.gain_at(f, cs, arr.q), 2),
            fmt(arr.gain_at(f, cs), 2),
        ]);
    }
    print_table(
        "HRA ablation — gain without (element=1 baseline far off-resonance) and with the array",
        &["f_kHz", "single_HR", "array"],
        &rows,
    );
    let g = arr.gain_at(230e3, cs);
    println!("at the carrier the array multiplies the received amplitude by {g:.1}×");
    println!(
        "({:.1} dB of extra link budget — roughly the margin that lets a",
        20.0 * g.log10()
    );
    println!("node at 6 m still clear the 0.5 V activation threshold).");
}

/// Voltage-multiplier stage count vs what actually matters.
fn stages() {
    use node::harvester::{Harvester, DIODE_DROP_V, LDO_DROPOUT_V, LDO_OUTPUT_V};
    let mut rows = Vec::new();
    for stages in [1u32, 2, 3, 4, 6, 8] {
        let h = Harvester {
            stages,
            ..Harvester::default()
        };
        // Minimum PZT voltage whose multiplied output clears the LDO.
        let need = (LDO_OUTPUT_V + LDO_DROPOUT_V) / (2.0 * stages as f64) + DIODE_DROP_V;
        rows.push(vec![
            fmt(stages as f64, 0),
            fmt(h.multiplier_output_v(0.5), 2),
            fmt(need, 3),
            if h.can_activate(0.5) {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    print_table(
        "Multiplier stage ablation — output at 0.5 V input, and the input each stage count needs",
        &["stages", "Vout@0.5V", "Vin_min", "activates@0.5V"],
        &rows,
    );
    println!("below 3 stages the 0.5 V Fig 14 threshold cannot clear the 1.88 V LDO");
    println!("input; beyond 4 the extra diode drops eat the gain — the paper's choice.");
}

/// FM0 vs Miller under the same noise. Each codec is an independent
/// Monte-Carlo cell, so the grid fans out over the worker pool with
/// per-cell derived seeds — output is identical at any worker count.
fn coding() {
    use phy::fm0::Fm0;
    use phy::miller::Miller;
    let mut rng = StdRng::seed_from_u64(77);
    let n_bits = 20_000;
    let bits: Vec<bool> = (0..n_bits).map(|_| rng.gen_bool(0.5)).collect();
    let sigma = 1.1;
    let base_seed: u64 = rng.gen();

    // Cell 0 is FM0 at 4 samples/bit; cells 1.. are Miller M=2/4/8.
    let millers = [0usize, 2, 4, 8];
    let pool = exec::Pool::max_parallel();
    let rows: Vec<Vec<String>> = pool.par_map(&millers, |i, &m| {
        let mut cell_rng = StdRng::seed_from_u64(exec::seed::derive(base_seed, i as u64));
        let (label, samples_per_bit, blf_multiple, decoded) = if m == 0 {
            let fm0 = Fm0::new(4);
            let mut wave = fm0.encode(&bits);
            for x in wave.iter_mut() {
                *x += channel::noise::gaussian(&mut cell_rng) * sigma;
            }
            ("FM0".to_string(), 4.0, 1.0, fm0.decode_ml(&wave))
        } else {
            let codec = Miller::new(m, 1);
            let mut wave = codec.encode(&bits);
            for x in wave.iter_mut() {
                *x += channel::noise::gaussian(&mut cell_rng) * sigma;
            }
            (
                format!("Miller-{m}"),
                codec.samples_per_bit() as f64,
                m as f64,
                codec.decode_ml(&wave),
            )
        };
        let err = decoded.iter().zip(&bits).filter(|(a, b)| a != b).count();
        vec![
            label,
            fmt(samples_per_bit, 0),
            fmt(blf_multiple, 0),
            format!("{:.2e}", err as f64 / n_bits as f64),
        ]
    });
    print_table(
        "Coding ablation — BER at equal per-sample noise (σ=1.1)",
        &["code", "samples/bit", "BLF_multiple", "BER"],
        &rows,
    );
    println!("Miller burns M× the occupied band (and samples) for its coding gain");
    println!("and carrier separation; FM0 matches the paper's rate-first choice.");
}

/// The braking-voltage strawman vs the FSK trick.
fn antiring() {
    use phy::braking::{braked_tail_s, BrakingConfig};
    use phy::pzt::Pzt;
    let pzt = Pzt::reader_disc(2.0e6);
    let cal = BrakingConfig::calibrated(&pzt);
    let mut rows = Vec::new();
    let cases: [(&str, BrakingConfig); 6] = [
        (
            "no braking",
            BrakingConfig {
                duration_s: 0.0,
                amplitude: 0.0,
                timing_error_s: 0.0,
            },
        ),
        ("calibrated", cal),
        (
            "30% weak",
            BrakingConfig {
                amplitude: cal.amplitude * 0.7,
                ..cal
            },
        ),
        (
            "2x strong",
            BrakingConfig {
                amplitude: cal.amplitude * 2.0,
                ..cal
            },
        ),
        (
            "50 us late",
            BrakingConfig {
                timing_error_s: 50e-6,
                ..cal
            },
        ),
        (
            "150 us late",
            BrakingConfig {
                timing_error_s: 150e-6,
                ..cal
            },
        ),
    ];
    for (name, cfg) in cases {
        let tail = braked_tail_s(&pzt, &cfg, 0.5e-3).expect("valid braking query");
        rows.push(vec![
            name.to_string(),
            tail.map_or("-".into(), |t| fmt(t * 1e6, 0)),
        ]);
    }
    print_table(
        "Anti-ring ablation — residual tail (µs) after the high edge",
        &["braking config", "tail_us"],
        &rows,
    );
    println!("Braking only helps at its calibration point (§3.3's objection);");
    println!("the FSK-in/OOK-out scheme needs no per-deployment parameters at all.");
}

/// Defect load vs channel loss, and what carrier retuning recovers.
fn defects() {
    use concrete::defects::DefectChannel;
    use concrete::response::Block;
    use concrete::ConcreteGrade;
    let block = Block::new(ConcreteGrade::Nc.mix(), 0.15);
    let cs = ConcreteGrade::Nc.material().cs_m_s;
    let mut rows = Vec::new();
    for (void_pct, seed) in [(0.5, 3u64), (2.0, 3), (5.0, 3), (2.0, 17), (2.0, 29)] {
        let ch = DefectChannel::reinforced(1.5, cs, void_pct, seed);
        let nominal = block.mix.resonant_frequency_hz();
        let loss_db = -20.0 * ch.amplitude_factor(nominal).log10();
        let tuned = reader::tuning::fine_tune(&block, &ch, 40e3, 0.5e3);
        rows.push(vec![
            fmt(void_pct, 1),
            fmt(seed as f64, 0),
            fmt(loss_db, 1),
            fmt((tuned.best_hz - nominal) / 1e3, 1),
            fmt(tuned.improvement_db, 1),
        ]);
    }
    print_table(
        "Defect ablation — loss at the nominal carrier and the retuning recovery (§3.5)",
        &[
            "void_%",
            "geometry",
            "loss_dB",
            "retune_kHz",
            "recovered_dB",
        ],
        &rows,
    );
}

/// Prototype vs the §8 mm-scale node.
fn node_scale() {
    use node::budget::NodeVariant;
    use node::harvester::Harvester;
    let h = Harvester::default();
    let mut rows = Vec::new();
    for v in [NodeVariant::prototype(), NodeVariant::mm_scale()] {
        rows.push(vec![
            v.name.to_string(),
            fmt(v.diameter_m * 1e3, 0),
            fmt(v.active_w * 1e6, 0),
            fmt(v.harvest_scale(), 3),
            fmt(v.min_continuous_voltage(&h), 2),
            if v.is_aggregate_compatible() {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    print_table(
        "Node-scale ablation — the §8 future-work variant",
        &[
            "variant",
            "dia_mm",
            "active_uW",
            "harvest_x",
            "Vmin_cont",
            "aggregate-ok",
        ],
        &rows,
    );
    println!("the mm node captures 25× less power but draws 18× less: its");
    println!("continuous-operation voltage is within ~2× of the prototype's,");
    println!("while finally being small enough to count as fine aggregate.");
}

/// Days after casting until the in-concrete link becomes usable.
fn curing() {
    use concrete::curing::CuringConcrete;
    use concrete::ConcreteGrade;
    let mut rows = Vec::new();
    for g in ConcreteGrade::ALL {
        let mix = g.mix();
        let d70 = CuringConcrete::first_usable_day(mix, 0.7);
        let d90 = CuringConcrete::first_usable_day(mix, 0.9);
        rows.push(vec![
            g.to_string(),
            fmt(CuringConcrete::at_age(mix, 7.0).fco_mpa(), 0),
            d70.map_or("-".into(), |d| fmt(d, 1)),
            d90.map_or("-".into(), |d| fmt(d, 1)),
        ]);
    }
    print_table(
        "Curing ablation — strength at 7 days and first day the link reaches 70%/90% of mature coupling",
        &["mix", "f7_MPa", "day_70%", "day_90%"],
        &rows,
    );
    println!("the capsules answer within the first week of curing — well before");
    println!("the member carries design load (28-day strength).");
}

/// What suppresses the TX→RX surface-wave leak.
fn surface() {
    use channel::surface::SurfacePath;
    let base = SurfacePath::paper_reader_layout();
    let mut rows = Vec::new();
    let cases = [
        ("paper layout (20 cm)", base),
        (
            "50 cm separation",
            SurfacePath {
                distance_m: 0.5,
                ..base
            },
        ),
        ("1 corner en route", SurfacePath { corners: 1, ..base }),
        ("2 corners en route", SurfacePath { corners: 2, ..base }),
    ];
    for (name, p) in cases {
        rows.push(vec![
            name.to_string(),
            fmt(p.leak_amplitude(230e3) / base.leak_amplitude(230e3), 3),
            fmt(
                channel::surface::self_interference_amplitude(&p, 230e3, 0.1) / 0.1,
                1,
            ),
        ]);
    }
    print_table(
        "Surface-leak ablation — relative Rayleigh leak and total self-interference (× backscatter)",
        &["layout", "surface_leak", "total_SI_x"],
        &rows,
    );
    println!("corners kill the surface wave (§5.1's sharp-edge filtering); the");
    println!("residual self-interference is the body-wave leak the BLF guard");
    println!("band dodges in frequency (Fig 24).");
}

//! The campaign runner: sweeps the damage-scenario × seasonal-drift
//! grid and the quiet-seed false-alarm sweep, checks the campaign
//! digest identities (serial vs. parallel vs. checkpoint/resume) at
//! every grid point, and writes `BENCH_campaign.json`.
//!
//! ```sh
//! cargo run -p bench --bin campaign --release             # full profile
//! cargo run -p bench --bin campaign --release -- --smoke  # CI gate
//! ```
//!
//! Exit codes: `0` success, `1` a campaign failed, a digest diverged,
//! damage went undetected, or a quiet campaign raised an alarm,
//! `2` bad usage.

use bench::campaign::{run_campaign_bench, to_json, verify, CampaignScale};
use exec::Pool;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut scale = CampaignScale::full();
    let mut workers: Option<usize> = None;
    let mut out_path = String::from("BENCH_campaign.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => scale = CampaignScale::smoke(),
            "--workers" => match it.next().and_then(|w| w.parse().ok()) {
                Some(w) => workers = Some(w),
                None => return usage("--workers requires a positive integer"),
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => return usage("--out requires a path"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let pool = workers.map_or_else(Pool::max_parallel, Pool::new);
    println!(
        "campaign: {} profile, {} worker(s), {} epochs, onset at {}, drift grid {:?}",
        if scale.smoke { "smoke" } else { "full" },
        pool.workers(),
        scale.epochs,
        scale.onset_epoch,
        scale.drift_scales,
    );

    let report = match run_campaign_bench(&scale, &pool) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "\n{:>17} {:>6} {:>10} {:>9} {:>8} {:>11} {:>7} {:>7} {:>7}",
        "scenario",
        "drift",
        "serial_ms",
        "detected",
        "latency",
        "feature",
        "alarms",
        "par",
        "resume"
    );
    for r in &report.scenario_rows {
        println!(
            "{:>17} {:>6.2} {:>10.1} {:>9} {:>8} {:>11} {:>7} {:>7} {:>7}",
            r.scenario,
            r.drift,
            r.serial_ms,
            r.detection_epoch.map_or("-".into(), |e| e.to_string()),
            r.latency_epochs.map_or("-".into(), |l| l.to_string()),
            r.detection_feature,
            r.control_false_alarms,
            r.parallel_identical,
            r.resume_identical,
        );
    }
    println!("\n{:>6} {:>20} {:>13}", "seed", "digest", "false_alarms");
    for r in &report.quiet_rows {
        println!("{:>6} {:>#20x} {:>13}", r.seed, r.digest, r.false_alarms);
    }

    if let Err(e) = verify(&report) {
        eprintln!("campaign failed: {e}");
        return ExitCode::FAILURE;
    }

    let json = to_json(&report, &pool, &scale);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("usage: campaign [--smoke] [--workers N] [--out PATH]");
    ExitCode::from(2)
}

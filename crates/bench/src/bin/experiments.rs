//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```sh
//! cargo run -p bench --bin experiments --release -- all
//! cargo run -p bench --bin experiments --release -- fig12
//! ```
//!
//! Experiment IDs match DESIGN.md §5. Absolute numbers come from our
//! simulation substrate, not the authors' testbed; EXPERIMENTS.md records
//! paper-vs-measured for each. The numbers themselves are computed by
//! `bench::experiments` — the same runners `cargo xtask repro` gates —
//! and this binary only formats them.

use bench::experiments as exp;
use bench::{fmt, print_series, print_table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let id = args.first().map(String::as_str).unwrap_or("all");
    let known: &[(&str, fn())] = &[
        ("fig03a", fig03a),
        ("fig03b", fig03b),
        ("fig04", fig04),
        ("fig05", fig05),
        ("fig07", fig07),
        ("fig12", fig12),
        ("fig13", fig13),
        ("fig14", fig14),
        ("fig15", fig15),
        ("fig15wave", fig15wave),
        ("fig16", fig16),
        ("fig17", fig17),
        ("fig18", fig18),
        ("fig19", fig19),
        ("fig20", fig20),
        ("fig21", fig21),
        ("fig22", fig22),
        ("fig24", fig24),
        ("tab01", tab01),
        ("tab02", tab02),
        ("eqn04", eqn04),
        ("eqn05", eqn05),
    ];
    if id == "all" {
        for (name, f) in known {
            println!("\n######## {name} ########");
            f();
        }
        return;
    }
    match known.iter().find(|(name, _)| *name == id) {
        Some((_, f)) => f(),
        None => {
            eprintln!("unknown experiment `{id}`; available:");
            for (name, _) in known {
                eprintln!("  {name}");
            }
            eprintln!("  all");
            std::process::exit(2);
        }
    }
}

/// §3.2: half-beam angle and insonified cone of a bare PZT on the wall.
fn fig03a() {
    let (alpha_deg, vol) = exp::fig03a_data().expect("paper geometry is valid");
    print_table(
        "Fig 3(a) context — bare-PZT beam (paper: α ≈ 11°, ≈132 cm³ cone)",
        &["alpha_deg", "cone_cm3"],
        &[vec![fmt(alpha_deg, 2), fmt(vol, 1)]],
    );
}

/// §3.2's motivation quantified: what fraction of a wall can one fixed
/// TX position charge, bare PZT vs prism?
fn fig03b() {
    let rows: Vec<Vec<String>> = exp::fig03b_data()
        .expect("paper structure is valid")
        .iter()
        .map(|&(v, bare_pct, prism_pct)| {
            vec![fmt(v, 0), format!("{bare_pct:.5}"), fmt(prism_pct, 2)]
        })
        .collect();
    print_table(
        "Fig 3 context — % of the S3 wall charged from one TX spot: bare PZT cone vs prism",
        &["V", "bare_PZT_%", "prism_%"],
        &rows,
    );
    println!("the bare-PZT cone covers ~0.0004% of the wall (the paper's 132 cm³");
    println!("problem); the prism's S-reflections cover whole square metres.");
}

/// Fig 4: relative transmitted P/S amplitude vs incident angle.
fn fig04() {
    let (sweep, ca1_deg, ca2_deg) = exp::fig04_data().expect("paper interface is valid");
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|&(deg, p_amp, s_amp)| vec![fmt(deg, 0), fmt(p_amp, 4), fmt(s_amp, 4)])
        .collect();
    print_table(
        "Fig 4 — relative P/S amplitudes vs incident angle (CAs ≈ 34°/73°)",
        &["angle_deg", "P_amp", "S_amp"],
        &rows,
    );
    println!("critical angles: {ca1_deg:.1}° and {ca2_deg:.1}° (paper: ~34° and ~73°)");
}

/// Fig 5(b): concrete frequency response of the four blocks.
fn fig05() {
    let (sweep, peaks) = exp::fig05_data();
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|&(f, amps)| {
            let mut row = vec![fmt(f / 1e3, 0)];
            row.extend(amps.iter().map(|&a| fmt(a, 0)));
            row
        })
        .collect();
    print_table(
        "Fig 5(b) — RX amplitude (mV) vs TX frequency at 100 V",
        &["f_kHz", "NC-7cm", "NC-15cm", "UHPC-15", "UHPFRC-15"],
        &rows,
    );
    for (name, peak_mv, peak_hz) in peaks {
        println!("{name}: peak {peak_mv:.0} mV at {:.0} kHz", peak_hz / 1e3);
    }
}

/// Fig 7: ring effect — PIE bit-0 tail with OOK vs FSK suppression.
fn fig07() {
    let d = exp::fig07_data();
    print_table(
        "Fig 7 — ring effect: low-edge residual after the high edge",
        &["scheme", "tail_ms", "low_edge_peak"],
        &[
            vec![
                "OOK".into(),
                d.tail_ook_s.map_or("-".into(), |t| fmt(t * 1e3, 3)),
                fmt(d.ook_low_edge_peak, 3),
            ],
            vec![
                "FSK".into(),
                "suppressed".into(),
                fmt(d.fsk_low_edge_peak, 3),
            ],
        ],
    );
    println!("(paper: OOK tail ≈ 0.3 ms; FSK low edge damped by the concrete)");
}

/// Fig 12: power-up range vs TX voltage for S1–S4 and the PAB pools.
fn fig12() {
    let rows: Vec<Vec<String>> = exp::fig12_data()
        .expect("paper structures are valid")
        .iter()
        .map(|(v, row)| exp::fig12_row_strings(*v, row))
        .collect();
    print_table(
        "Fig 12 — max power-up range (cm) vs TX voltage",
        &["V", "S1", "S2", "S3", "S4", "PAB-P1", "PAB-P2"],
        &rows,
    );
    println!("(paper anchors: S3 134 cm @ 50 V, 500 cm @ 200 V, 6 m max; P1 19 cm @ 50 V)");
}

/// Fig 13: node power consumption vs uplink bitrate.
fn fig13() {
    print_series(
        "Fig 13 — power (µW) vs bitrate (kbps); paper: 80.1 µW standby, ~360 µW active",
        "kbps",
        "µW",
        &exp::fig13_data(),
    );
}

/// Fig 14: cold-start time vs activation voltage.
fn fig14() {
    print_series(
        "Fig 14 — cold start (ms) vs input voltage; paper: 55 ms @ 0.5 V, 4.4 ms @ 2 V",
        "V",
        "ms",
        &exp::fig14_data(),
    );
}

/// Fig 15: BER vs SNR for EcoCapsule and PAB (Monte-Carlo). The SNR
/// points are independent, so they fan out over the worker pool with
/// per-point seeds derived from one base — the table is identical at
/// any worker count (including `--workers 1` via `exec::Pool::serial`).
fn fig15() {
    let pool = exec::Pool::max_parallel();
    let rows: Vec<Vec<String>> = exp::fig15_data(exp::Profile::Full, &pool)
        .iter()
        .map(|&(snr, eco, pab)| vec![fmt(snr, 0), format!("{eco:.2e}"), format!("{pab:.2e}")])
        .collect();
    print_table(
        "Fig 15 — BER vs SNR (paper: EcoCapsule hits 1e-5 at 8 dB, PAB at 11 dB)",
        &["SNR_dB", "EcoCapsule", "PAB"],
        &rows,
    );
}

/// Fig 15 cross-check: frame success through the *full waveform-level*
/// receive chain (carrier estimation → DDC → preamble sync → ML FM0 →
/// CRC) at three noise levels, validating the symbol-level Monte-Carlo.
fn fig15wave() {
    let rows: Vec<Vec<String>> = exp::fig15wave_data(exp::Profile::Full)
        .iter()
        .map(|&(label, sigma, ok, trials)| {
            vec![label.to_string(), fmt(sigma, 3), format!("{ok}/{trials}")]
        })
        .collect();
    print_table(
        "Fig 15 cross-check — full-chain frame success vs RX noise (backscatter amplitude 0.1)",
        &["noise", "sigma_V", "frames_ok"],
        &rows,
    );
    println!("quiet and moderate noise decode every frame; heavy noise (3x the");
    println!("backscatter amplitude) fails — consistent with the BER waterfall.");
}

/// Fig 16: SNR vs bitrate for EcoCapsule, PAB and U²B.
fn fig16() {
    let (sweep, crossover) = exp::fig16_data();
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|&(r, eco, pab, u2b)| vec![fmt(r / 1e3, 0), fmt(eco, 2), fmt(pab, 2), fmt(u2b, 2)])
        .collect();
    print_table(
        "Fig 16 — SNR (dB) vs bitrate (kbps); paper: Eco viable to 13 kbps, PAB to 3, U²B crosses ~9",
        &["kbps", "EcoCapsule", "PAB", "U2B"],
        &rows,
    );
    if let Some(x) = crossover {
        println!(
            "U²B overtakes EcoCapsule at {:.1} kbps (paper: ~9 kbps)",
            x / 1e3
        );
    }
}

/// Fig 17: throughput vs concrete grade.
fn fig17() {
    let rows: Vec<Vec<String>> = exp::fig17_data()
        .iter()
        .map(|&(g, t)| vec![g.to_string(), fmt(t / 1e3, 1)])
        .collect();
    print_table(
        "Fig 17 — max throughput (kbps) per concrete (paper: all ≥ 13, UHPC/UHPFRC ≈ +2)",
        &["concrete", "kbps"],
        &rows,
    );
}

/// Fig 18: SNR CDF vs node position (top / middle / bottom of a wall).
fn fig18() {
    let rows: Vec<Vec<String>> = exp::fig18_data()
        .expect("wall bands are non-empty")
        .iter()
        .map(|&(name, p10, p50, p90)| vec![name.to_string(), fmt(p10, 1), fmt(p50, 1), fmt(p90, 1)])
        .collect();
    print_table(
        "Fig 18 — SNR (dB) percentiles by node position (paper medians: top 11, bottom 8, middle 7)",
        &["position", "p10", "p50", "p90"],
        &rows,
    );
    println!("(middle-band median calibrated to 7 dB; margin bands follow from the physics)");
}

/// Fig 19: downlink SNR vs prism incident angle.
fn fig19() {
    print_series(
        "Fig 19 — downlink SNR (dB) vs incident angle (paper: peak ~15 dB at 50–70°; dips below CA1)",
        "deg",
        "SNR_dB",
        &exp::fig19_data(),
    );
}

/// Fig 20: downlink SNR vs bitrate for FSK vs OOK.
fn fig20() {
    let rows: Vec<Vec<String>> = exp::fig20_data()
        .iter()
        .map(|&(r, fsk, ook)| vec![fmt(r / 1e3, 0), fmt(fsk, 2), fmt(ook, 2)])
        .collect();
    print_table(
        "Fig 20 — downlink SNR (dB) vs bitrate: FSK (anti-ring) vs OOK (paper: FSK 3–5× better)",
        &["kbps", "FSK", "OOK"],
        &rows,
    );
}

/// Fig 21 (+ Appendix D): pilot-study streams, anomaly window, health.
fn fig21() {
    let d = exp::fig21_data();
    print_series(
        "Fig 21(a) — daily RMS deck acceleration (m/s²), July 2021",
        "day",
        "rms",
        &d.accel,
    );
    print_series(
        "Fig 21(b) — daily stress variation (MPa)",
        "day",
        "std",
        &d.stress,
    );
    println!(
        "anomalous days: {:?} (paper: storm window 7/15–7/23)",
        d.anomalies
    );
    println!(
        "acceleration↔stress mutual verification r = {:.2}",
        d.mutual_r
    );
    println!("\nFig 21(c) — real-time section health:");
    for s in d.statuses {
        println!(
            "  {}: No. {} | speed {:.1} m/s | health {}",
            s.section, s.pedestrians, s.speed_m_s, s.health
        );
    }
}

/// Fig 22: received & demodulated backscatter signal.
fn fig22() {
    let w = exp::fig22_data();
    // Print a decimated view (every ~0.5 ms).
    let rows: Vec<(f64, f64)> = w.iter().step_by(25).map(|&(t, v)| (t * 1e3, v)).collect();
    print_series(
        "Fig 22 — demodulated backscatter envelope (mV) vs time (ms); switching starts at 4 ms",
        "ms",
        "mV",
        &rows,
    );
}

/// Fig 24 (Appendix C): uplink spectrum — carrier + BLF sidebands.
fn fig24() {
    let (sweep, blf) = exp::fig24_data().expect("spectrum grid is power-of-two");
    let rows: Vec<(f64, f64)> = sweep
        .iter()
        .map(|&(f, p)| (f / 1e3, 10.0 * (p + 1e-18).log10()))
        .collect();
    print_series(
        "Fig 24 — received uplink spectrum (dB, log scale) around the carrier",
        "kHz",
        "dB",
        &rows,
    );
    println!(
        "expect peaks at 230 kHz (CBW) and 230 ± {:.0} kHz (backscatter sidebands)",
        blf / 1e3
    );
}

/// Table 1: concrete registry.
fn tab01() {
    let rows: Vec<Vec<String>> = exp::tab01_data()
        .iter()
        .map(|(m, mat)| {
            vec![
                m.name.to_string(),
                fmt(m.fco_mpa, 1),
                fmt(m.ec_gpa, 1),
                fmt(m.poisson, 2),
                fmt(m.density_kg_m3(), 0),
                fmt(mat.cp_m_s, 0),
                fmt(mat.cs_m_s, 0),
            ]
        })
        .collect();
    print_table(
        "Table 1 — concretes (+ derived wave speeds)",
        &["mix", "fco_MPa", "Ec_GPa", "nu", "rho", "cp_m_s", "cs_m_s"],
        &rows,
    );
}

/// Table 2: PAO health levels per region.
fn tab02() {
    let mut rows = Vec::new();
    for (name, r) in exp::tab02_regions() {
        let t = r.thresholds_m2_per_ped();
        rows.push(vec![
            name.to_string(),
            fmt(t[0], 2),
            fmt(t[1], 2),
            fmt(t[2], 2),
            fmt(t[3], 2),
            fmt(t[4], 2),
        ]);
    }
    print_table(
        "Table 2 — PAO level boundaries (m²/ped): A above col1 … F below col5",
        &["region", "A/B", "B/C", "C/D", "D/E", "E/F"],
        &rows,
    );
}

/// Eqn 4 + §4.1: shell pressure ratings and max building heights.
fn eqn04() {
    let rows: Vec<Vec<String>> = exp::eqn04_data()
        .iter()
        .map(|(name, shell, rho)| {
            vec![
                name.to_string(),
                fmt(shell.dp_max_pa() / 1e6, 1),
                fmt(shell.max_building_height_m(*rho), 0),
                fmt(shell.deformation_fraction(shell.dp_max_pa()) * 100.0, 2),
            ]
        })
        .collect();
    print_table(
        "Eqn 4 / §4.1 — shell ratings (paper: 4.3 MPa → 195 m resin; 115.2 MPa → 4985 m steel)",
        &["shell", "dPmax_MPa", "hmax_m", "def_%"],
        &rows,
    );
}

/// Eqn 5: Helmholtz resonator design.
fn eqn05() {
    let (paper, tuned, cs) = exp::eqn05_data();
    print_table(
        "Eqn 5 — HRA resonance (paper geometry lands at ~159 kHz; retuned cavity hits 230 kHz)",
        &["design", "Vc_mm3", "f_kHz"],
        &[
            vec![
                "paper".into(),
                fmt(paper.cavity_volume_m3 * 1e9, 2),
                fmt(paper.resonant_frequency_hz(cs) / 1e3, 1),
            ],
            vec![
                "retuned".into(),
                fmt(tuned.cavity_volume_m3 * 1e9, 2),
                fmt(tuned.resonant_frequency_hz(cs) / 1e3, 1),
            ],
        ],
    );
}

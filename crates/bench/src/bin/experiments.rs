//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```sh
//! cargo run -p bench --bin experiments --release -- all
//! cargo run -p bench --bin experiments --release -- fig12
//! ```
//!
//! Experiment IDs match DESIGN.md §5. Absolute numbers come from our
//! simulation substrate, not the authors' testbed; EXPERIMENTS.md records
//! paper-vs-measured for each.

use bench::{fmt, print_series, print_table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let id = args.first().map(String::as_str).unwrap_or("all");
    let known: &[(&str, fn())] = &[
        ("fig03a", fig03a),
        ("fig03b", fig03b),
        ("fig04", fig04),
        ("fig05", fig05),
        ("fig07", fig07),
        ("fig12", fig12),
        ("fig13", fig13),
        ("fig14", fig14),
        ("fig15", fig15),
        ("fig15wave", fig15wave),
        ("fig16", fig16),
        ("fig17", fig17),
        ("fig18", fig18),
        ("fig19", fig19),
        ("fig20", fig20),
        ("fig21", fig21),
        ("fig22", fig22),
        ("fig24", fig24),
        ("tab01", tab01),
        ("tab02", tab02),
        ("eqn04", eqn04),
        ("eqn05", eqn05),
    ];
    if id == "all" {
        for (name, f) in known {
            println!("\n######## {name} ########");
            f();
        }
        return;
    }
    match known.iter().find(|(name, _)| *name == id) {
        Some((_, f)) => f(),
        None => {
            eprintln!("unknown experiment `{id}`; available:");
            for (name, _) in known {
                eprintln!("  {name}");
            }
            eprintln!("  all");
            std::process::exit(2);
        }
    }
}

/// §3.2: half-beam angle and insonified cone of a bare PZT on the wall.
fn fig03a() {
    let alpha = elastic::beam::half_beam_angle(3338.0, 230e3, 0.040).unwrap();
    let vol = elastic::beam::cone_volume_m3(alpha, 0.15) * 1e6;
    print_table(
        "Fig 3(a) context — bare-PZT beam (paper: α ≈ 11°, ≈132 cm³ cone)",
        &["alpha_deg", "cone_cm3"],
        &[vec![fmt(alpha.to_degrees(), 2), fmt(vol, 1)]],
    );
}

/// §3.2's motivation quantified: what fraction of a wall can one fixed
/// TX position charge, bare PZT vs prism?
fn fig03b() {
    use channel::linkbudget::LinkBudget;
    use concrete::structure::Structure;
    use elastic::beam::{cone_volume_m3, half_beam_angle};
    let s3 = Structure::s3_common_wall();
    // Bare PZT: the 11° P-cone through a 20 cm wall.
    let alpha = half_beam_angle(3338.0, 230e3, 0.040).unwrap();
    let cone_m3 = cone_volume_m3(alpha, 0.20);
    let wall_m3 = 20.0 * 20.0 * 0.20;
    // Prism: everything inside the power-up radius is charged via
    // S-reflections; approximate the covered face as a half-disc of the
    // Fig 12 range around the TX.
    let lb = LinkBudget::for_structure(&s3).expect("paper structure is valid");
    let mut rows = Vec::new();
    for v in [50.0, 100.0, 200.0, 250.0] {
        let r = lb.max_range_m(v, 0.5).ok().flatten().unwrap_or(0.0);
        let covered_m3 = (std::f64::consts::PI * r * r / 2.0).min(20.0 * 20.0) * 0.20;
        rows.push(vec![
            fmt(v, 0),
            format!("{:.5}", cone_m3 / wall_m3 * 100.0),
            fmt(covered_m3 / wall_m3 * 100.0, 2),
        ]);
    }
    print_table(
        "Fig 3 context — % of the S3 wall charged from one TX spot: bare PZT cone vs prism",
        &["V", "bare_PZT_%", "prism_%"],
        &rows,
    );
    println!("the bare-PZT cone covers ~0.0004% of the wall (the paper's 132 cm³");
    println!("problem); the prism's S-reflections cover whole square metres.");
}

/// Fig 4: relative transmitted P/S amplitude vs incident angle.
fn fig04() {
    let iface = elastic::interface::SolidInterface::new(
        elastic::Material::PLA,
        elastic::Material::CONCRETE_REF,
    );
    let mut rows = Vec::new();
    for deg in (0..=80).step_by(5) {
        let theta = (deg as f64).to_radians();
        if theta >= std::f64::consts::FRAC_PI_2 {
            break;
        }
        let s = iface.incident_p(theta);
        rows.push(vec![
            fmt(deg as f64, 0),
            fmt(
                if s.energy_trans_p > 0.0 {
                    s.trans_p.abs()
                } else {
                    0.0
                },
                4,
            ),
            fmt(
                if s.energy_trans_s > 0.0 {
                    s.trans_s.abs()
                } else {
                    0.0
                },
                4,
            ),
        ]);
    }
    print_table(
        "Fig 4 — relative P/S amplitudes vs incident angle (CAs ≈ 34°/73°)",
        &["angle_deg", "P_amp", "S_amp"],
        &rows,
    );
    let (ca1, ca2) = elastic::snell::s_only_window(
        elastic::Material::PLA.cp_m_s,
        &elastic::Material::CONCRETE_REF,
    )
    .unwrap()
    .unwrap();
    println!(
        "critical angles: {:.1}° and {:.1}° (paper: ~34° and ~73°)",
        ca1.to_degrees(),
        ca2.to_degrees()
    );
}

/// Fig 5(b): concrete frequency response of the four blocks.
fn fig05() {
    use concrete::response::Block;
    use concrete::ConcreteGrade;
    let blocks = [
        ("NC-7cm", Block::new(ConcreteGrade::Nc.mix(), 0.07)),
        ("NC-15cm", Block::new(ConcreteGrade::Nc.mix(), 0.15)),
        ("UHPC-15cm", Block::new(ConcreteGrade::Uhpc.mix(), 0.15)),
        ("UHPFRC-15cm", Block::new(ConcreteGrade::Uhpfrc.mix(), 0.15)),
    ];
    let mut rows = Vec::new();
    let mut f = 20e3;
    while f <= 400e3 + 1.0 {
        let mut row = vec![fmt(f / 1e3, 0)];
        for (_, b) in &blocks {
            row.push(fmt(b.rx_amplitude_mv(f, 100.0), 0));
        }
        rows.push(row);
        f += 20e3;
    }
    print_table(
        "Fig 5(b) — RX amplitude (mV) vs TX frequency at 100 V",
        &["f_kHz", "NC-7cm", "NC-15cm", "UHPC-15", "UHPFRC-15"],
        &rows,
    );
    for (name, b) in &blocks {
        println!(
            "{name}: peak {:.0} mV at {:.0} kHz",
            b.rx_amplitude_mv(b.peak_frequency_hz(), 100.0),
            b.peak_frequency_hz() / 1e3
        );
    }
}

/// Fig 7: ring effect — PIE bit-0 tail with OOK vs FSK suppression.
fn fig07() {
    use phy::modulation::{synthesize_drive, DownlinkScheme};
    use phy::pie::Pie;
    use phy::pzt::{measure_tail_s, Pzt};
    let fs = 2.0e6;
    let pzt = Pzt::reader_disc(fs);
    let pie = Pie::new(0.5e-3); // 0.5 ms edges as in the figure
    let segments = pie.encode(&[false]);

    let ook = pzt.respond(&synthesize_drive(&segments, DownlinkScheme::Ook, 230e3, fs));
    let tail_ook = measure_tail_s(&ook, 0.5e-3, 0.05, fs);

    let fsk_drive = synthesize_drive(
        &segments,
        DownlinkScheme::FskInOokOut { off_hz: 180e3 },
        230e3,
        fs,
    );
    let mut fsk = pzt.respond(&fsk_drive);
    // Concrete off-resonance damping of the low edge.
    let n_high = (0.5e-3 * fs) as usize;
    for x in fsk.iter_mut().skip(n_high) {
        *x *= 0.25;
    }
    let peak = |w: &[f64], a: usize, b: usize| w[a..b].iter().fold(0.0f64, |m, &x| m.max(x.abs()));
    print_table(
        "Fig 7 — ring effect: low-edge residual after the high edge",
        &["scheme", "tail_ms", "low_edge_peak"],
        &[
            vec![
                "OOK".into(),
                tail_ook.map_or("-".into(), |t| fmt(t * 1e3, 3)),
                fmt(peak(&ook, n_high + n_high / 2, 2 * n_high), 3),
            ],
            vec![
                "FSK".into(),
                "suppressed".into(),
                fmt(peak(&fsk, n_high + n_high / 2, 2 * n_high), 3),
            ],
        ],
    );
    println!("(paper: OOK tail ≈ 0.3 ms; FSK low edge damped by the concrete)");
}

/// Fig 12: power-up range vs TX voltage for S1–S4 and the PAB pools.
fn fig12() {
    use channel::linkbudget::{LinkBudget, PabPool};
    use concrete::structure::Structure;
    let structures = Structure::paper_set();
    let mut rows = Vec::new();
    for v in (10..=250).step_by(20) {
        let mut row = vec![fmt(v as f64, 0)];
        for s in &structures {
            let r = LinkBudget::for_structure(s)
                .expect("paper structure is valid")
                .max_range_m(v as f64, 0.5)
                .expect("valid link query");
            row.push(r.map_or("-".into(), |r| fmt(r * 100.0, 0)));
        }
        for pool in [PabPool::Pool1, PabPool::Pool2] {
            let r = pool
                .link_budget()
                .max_range_m(v as f64, 0.5)
                .expect("valid link query");
            row.push(r.map_or("-".into(), |r| fmt(r * 100.0, 0)));
        }
        rows.push(row);
    }
    print_table(
        "Fig 12 — max power-up range (cm) vs TX voltage",
        &["V", "S1", "S2", "S3", "S4", "PAB-P1", "PAB-P2"],
        &rows,
    );
    println!("(paper anchors: S3 134 cm @ 50 V, 500 cm @ 200 V, 6 m max; P1 19 cm @ 50 V)");
}

/// Fig 13: node power consumption vs uplink bitrate.
fn fig13() {
    use node::power::PowerModel;
    let rows: Vec<(f64, f64)> = [0.0, 1e3, 2e3, 3e3, 4e3, 5e3, 6e3, 7e3, 8e3]
        .iter()
        .map(|&r| (r / 1e3, PowerModel.consumption_w(r) * 1e6))
        .collect();
    print_series(
        "Fig 13 — power (µW) vs bitrate (kbps); paper: 80.1 µW standby, ~360 µW active",
        "kbps",
        "µW",
        &rows,
    );
}

/// Fig 14: cold-start time vs activation voltage.
fn fig14() {
    use node::harvester::Harvester;
    let h = Harvester::default();
    let rows: Vec<(f64, f64)> = [0.4, 0.5, 0.6, 0.8, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0]
        .iter()
        .map(|&v| (v, h.cold_start_s(v).map_or(f64::NAN, |t| t * 1e3)))
        .collect();
    print_series(
        "Fig 14 — cold start (ms) vs input voltage; paper: 55 ms @ 0.5 V, 4.4 ms @ 2 V",
        "V",
        "ms",
        &rows,
    );
}

/// Fig 15: BER vs SNR for EcoCapsule and PAB (Monte-Carlo). The SNR
/// points are independent, so they fan out over the worker pool with
/// per-point seeds derived from one base — the table is identical at
/// any worker count (including `--workers 1` via `exec::Pool::serial`).
fn fig15() {
    let pool = exec::Pool::max_parallel();
    let snrs = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 15.0, 18.0];
    let rows: Vec<Vec<String>> = pool.par_map(&snrs, |i, &snr| {
        let bits = if snr >= 8.0 { 2_000_000 } else { 200_000 };
        let mut rng = StdRng::seed_from_u64(exec::seed::derive(15, i as u64));
        let eco = reader::rx::simulate_fm0_ber(snr, bits, &mut rng);
        let pab = baselines::pab::pab_ber(snr, bits, &mut rng);
        vec![fmt(snr, 0), format!("{eco:.2e}"), format!("{pab:.2e}")]
    });
    print_table(
        "Fig 15 — BER vs SNR (paper: EcoCapsule hits 1e-5 at 8 dB, PAB at 11 dB)",
        &["SNR_dB", "EcoCapsule", "PAB"],
        &rows,
    );
}

/// Fig 15 cross-check: frame success through the *full waveform-level*
/// receive chain (carrier estimation → DDC → preamble sync → ML FM0 →
/// CRC) at three noise levels, validating the symbol-level Monte-Carlo.
fn fig15wave() {
    use channel::uplink::{synthesize_uplink, UplinkConfig};
    use protocol::frame::Reply;
    use reader::rx::{Capture, Receiver};
    let cfg = UplinkConfig {
        delay_s: 0.0,
        ..UplinkConfig::paper_default()
    };
    let rx = Receiver::new(2e3);
    let mut rows = Vec::new();
    for (label, sigma) in [("quiet", 0.005), ("moderate", 0.03), ("heavy", 0.3)] {
        let mut ok = 0;
        let trials = 40;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(1000 + t);
            let reply = Reply::NodeId {
                id: 0xEC0 + t as u32,
            };
            let mut bits = phy::fm0::PREAMBLE_BITS.to_vec();
            bits.extend(reply.encode());
            let (samples, _) = synthesize_uplink(&cfg, &bits, 2e3, 1e-3, sigma, &mut rng);
            if rx.decode_reply(&Capture {
                samples,
                fs_hz: cfg.fs_hz,
            }) == Ok(reply)
            {
                ok += 1;
            }
        }
        rows.push(vec![
            label.to_string(),
            fmt(sigma, 3),
            format!("{ok}/{trials}"),
        ]);
    }
    print_table(
        "Fig 15 cross-check — full-chain frame success vs RX noise (backscatter amplitude 0.1)",
        &["noise", "sigma_V", "frames_ok"],
        &rows,
    );
    println!("quiet and moderate noise decode every frame; heavy noise (3x the");
    println!("backscatter amplitude) fails — consistent with the BER waterfall.");
}

/// Fig 16: SNR vs bitrate for EcoCapsule, PAB and U²B.
fn fig16() {
    let mut rows = Vec::new();
    for r in [1e3, 2e3, 4e3, 6e3, 8e3, 10e3, 12e3, 13e3, 14e3, 15e3] {
        let (eco, pab, u2b) = ecocapsule::scenario::fig16_point(r);
        rows.push(vec![fmt(r / 1e3, 0), fmt(eco, 2), fmt(pab, 2), fmt(u2b, 2)]);
    }
    print_table(
        "Fig 16 — SNR (dB) vs bitrate (kbps); paper: Eco viable to 13 kbps, PAB to 3, U²B crosses ~9",
        &["kbps", "EcoCapsule", "PAB", "U2B"],
        &rows,
    );
    if let Some(x) = baselines::u2b::crossover_bps(16e3) {
        println!(
            "U²B overtakes EcoCapsule at {:.1} kbps (paper: ~9 kbps)",
            x / 1e3
        );
    }
}

/// Fig 17: throughput vs concrete grade.
fn fig17() {
    use concrete::ConcreteGrade;
    let rows: Vec<Vec<String>> = ConcreteGrade::ALL
        .iter()
        .map(|&g| {
            vec![
                g.to_string(),
                fmt(ecocapsule::scenario::throughput_for_grade(g) / 1e3, 1),
            ]
        })
        .collect();
    print_table(
        "Fig 17 — max throughput (kbps) per concrete (paper: all ≥ 13, UHPC/UHPFRC ≈ +2)",
        &["concrete", "kbps"],
        &rows,
    );
}

/// Fig 18: SNR CDF vs node position (top / middle / bottom of a wall).
fn fig18() {
    use channel::multipath::Wall2d;
    use dsp::stats::percentile;
    let mix = concrete::ConcreteGrade::Nc.mix();
    let wall = Wall2d::new(2.0, 2.0, mix.material().cs_m_s, mix.attenuation_s(), 230e3);
    let src = (0.1, 1.0);
    // Coherent superposition of S-reflections: positions inside each band
    // fade differently, producing the CDF spread the figure shows. All
    // bands keep a similar reader distance (~1 m), per the paper.
    let amplitudes = |y0: f64, y1: f64| -> Vec<f64> {
        let mut amps = Vec::new();
        for iy in 0..12 {
            for ix in 0..8 {
                let x = 0.95 + 0.012 * ix as f64;
                let y = y0 + (y1 - y0) * iy as f64 / 11.0;
                amps.push(wall.coherent_amplitude(src, (x, y), 4));
            }
        }
        amps
    };
    let top = amplitudes(1.85, 1.98);
    let middle = amplitudes(0.85, 1.15);
    let bottom = amplitudes(0.02, 0.15);
    // Calibrate the noise floor so the middle band's median lands at the
    // paper's 7 dB; the margin bands then fall where the physics puts them.
    let mid_median = percentile(&middle, 50.0).unwrap();
    let floor = mid_median / 10f64.powf(7.0 / 20.0);
    let snrs =
        |amps: &[f64]| -> Vec<f64> { amps.iter().map(|&a| 20.0 * (a / floor).log10()).collect() };
    let mut rows = Vec::new();
    for (name, amps) in [("top", &top), ("middle", &middle), ("bottom", &bottom)] {
        let s = snrs(amps);
        rows.push(vec![
            name.to_string(),
            fmt(percentile(&s, 10.0).unwrap(), 1),
            fmt(percentile(&s, 50.0).unwrap(), 1),
            fmt(percentile(&s, 90.0).unwrap(), 1),
        ]);
    }
    print_table(
        "Fig 18 — SNR (dB) percentiles by node position (paper medians: top 11, bottom 8, middle 7)",
        &["position", "p10", "p50", "p90"],
        &rows,
    );
    println!("(middle-band median calibrated to 7 dB; margin bands follow from the physics)");
}

/// Fig 19: downlink SNR vs prism incident angle.
fn fig19() {
    let ch = channel::downlink::DownlinkChannel::paper_default();
    let sweep = ch.snr_vs_incident_angle(&[0.0, 15.0, 30.0, 45.0, 50.0, 60.0, 70.0, 75.0], 1e3);
    let rows: Vec<(f64, f64)> = sweep;
    print_series(
        "Fig 19 — downlink SNR (dB) vs incident angle (paper: peak ~15 dB at 50–70°; dips below CA1)",
        "deg",
        "SNR_dB",
        &rows,
    );
}

/// Fig 20: downlink SNR vs bitrate for FSK vs OOK.
fn fig20() {
    use phy::modulation::DownlinkScheme;
    let ch = channel::downlink::DownlinkChannel::paper_default();
    let off = concrete::ConcreteGrade::Nc
        .mix()
        .off_resonant_frequency_hz();
    let mut rows = Vec::new();
    for r in [1e3, 2e3, 4e3, 6e3, 8e3, 10e3] {
        let fsk = ch.symbol_snr_db(r, DownlinkScheme::FskInOokOut { off_hz: off });
        let ook = ch.symbol_snr_db(r, DownlinkScheme::Ook);
        rows.push(vec![fmt(r / 1e3, 0), fmt(fsk, 2), fmt(ook, 2)]);
    }
    print_table(
        "Fig 20 — downlink SNR (dB) vs bitrate: FSK (anti-ring) vs OOK (paper: FSK 3–5× better)",
        &["kbps", "FSK", "OOK"],
        &rows,
    );
}

/// Fig 21 (+ Appendix D): pilot-study streams, anomaly window, health.
fn fig21() {
    use shm::footbridge::Section;
    use shm::health::grade_sections;
    use shm::pilot::{Channel, PilotStudy};
    let study = PilotStudy::new(2021_07);
    let rows: Vec<(f64, f64)> = study.daily_activity(Channel::Acceleration(1));
    print_series(
        "Fig 21(a) — daily RMS deck acceleration (m/s²), July 2021",
        "day",
        "rms",
        &rows,
    );
    let stress: Vec<(f64, f64)> = study.daily_activity(Channel::Stress(1));
    print_series(
        "Fig 21(b) — daily stress variation (MPa)",
        "day",
        "std",
        &stress,
    );
    let anomalies = study.detect_anomalies(Channel::Acceleration(1), 1.8);
    println!("anomalous days: {anomalies:?} (paper: storm window 7/15–7/23)");
    println!(
        "acceleration↔stress mutual verification r = {:.2}",
        study.mutual_verification(Channel::Acceleration(1), Channel::Stress(1))
    );
    let statuses = grade_sections(&[
        (Section::A, 1, 1.0),
        (Section::B, 3, 1.5),
        (Section::C, 1, 2.0),
        (Section::D, 3, 1.1),
        (Section::E, 0, 0.0),
    ]);
    println!("\nFig 21(c) — real-time section health:");
    for s in statuses {
        println!(
            "  {}: No. {} | speed {:.1} m/s | health {}",
            s.section, s.pedestrians, s.speed_m_s, s.health
        );
    }
}

/// Fig 22: received & demodulated backscatter signal.
fn fig22() {
    let w = ecocapsule::scenario::fig22_waveform(4e-3, 1000.0, 18e-3);
    // Print a decimated view (every ~0.5 ms).
    let rows: Vec<(f64, f64)> = w.iter().step_by(25).map(|&(t, v)| (t * 1e3, v)).collect();
    print_series(
        "Fig 22 — demodulated backscatter envelope (mV) vs time (ms); switching starts at 4 ms",
        "ms",
        "mV",
        &rows,
    );
}

/// Fig 24 (Appendix C): uplink spectrum — carrier + BLF sidebands.
fn fig24() {
    use channel::uplink::{blf_hz, synthesize_uplink, UplinkConfig};
    use dsp::fft::power_spectrum;
    let cfg = UplinkConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(24);
    let bits = vec![false; 400];
    let bitrate = 4e3;
    let (y, _) = synthesize_uplink(&cfg, &bits, bitrate, 0.0, 0.001, &mut rng);
    let (freqs, power) = power_spectrum(&y, cfg.fs_hz).unwrap();
    let mut rows = Vec::new();
    for (f, p) in freqs.iter().zip(&power) {
        if (190e3..=270e3).contains(f) && f % 2e3 < freqs[1] - freqs[0] {
            rows.push((*f / 1e3, 10.0 * (p + 1e-18).log10()));
        }
    }
    print_series(
        "Fig 24 — received uplink spectrum (dB, log scale) around the carrier",
        "kHz",
        "dB",
        &rows,
    );
    println!(
        "expect peaks at 230 kHz (CBW) and 230 ± {:.0} kHz (backscatter sidebands)",
        blf_hz(bitrate) / 1e3
    );
}

/// Table 1: concrete registry.
fn tab01() {
    use concrete::ConcreteGrade;
    let mut rows = Vec::new();
    for g in ConcreteGrade::ALL {
        let m = g.mix();
        let mat = m.material();
        rows.push(vec![
            m.name.to_string(),
            fmt(m.fco_mpa, 1),
            fmt(m.ec_gpa, 1),
            fmt(m.poisson, 2),
            fmt(m.density_kg_m3(), 0),
            fmt(mat.cp_m_s, 0),
            fmt(mat.cs_m_s, 0),
        ]);
    }
    print_table(
        "Table 1 — concretes (+ derived wave speeds)",
        &["mix", "fco_MPa", "Ec_GPa", "nu", "rho", "cp_m_s", "cs_m_s"],
        &rows,
    );
}

/// Table 2: PAO health levels per region.
fn tab02() {
    use shm::health::Region;
    let regions = [
        ("US", Region::UnitedStates),
        ("HongKong", Region::HongKong),
        ("Bangkok", Region::Bangkok),
        ("Manila", Region::Manila),
    ];
    let mut rows = Vec::new();
    for (name, r) in regions {
        let t = r.thresholds_m2_per_ped();
        rows.push(vec![
            name.to_string(),
            fmt(t[0], 2),
            fmt(t[1], 2),
            fmt(t[2], 2),
            fmt(t[3], 2),
            fmt(t[4], 2),
        ]);
    }
    print_table(
        "Table 2 — PAO level boundaries (m²/ped): A above col1 … F below col5",
        &["region", "A/B", "B/C", "C/D", "D/E", "E/F"],
        &rows,
    );
}

/// Eqn 4 + §4.1: shell pressure ratings and max building heights.
fn eqn04() {
    use node::shell::Shell;
    let rows = [
        ("resin", Shell::paper_resin(), 2300.0),
        ("steel", Shell::paper_steel(), 2360.0),
    ]
    .iter()
    .map(|(name, shell, rho)| {
        vec![
            name.to_string(),
            fmt(shell.dp_max_pa() / 1e6, 1),
            fmt(shell.max_building_height_m(*rho), 0),
            fmt(shell.deformation_fraction(shell.dp_max_pa()) * 100.0, 2),
        ]
    })
    .collect::<Vec<_>>();
    print_table(
        "Eqn 4 / §4.1 — shell ratings (paper: 4.3 MPa → 195 m resin; 115.2 MPa → 4985 m steel)",
        &["shell", "dPmax_MPa", "hmax_m", "def_%"],
        &rows,
    );
}

/// Eqn 5: Helmholtz resonator design.
fn eqn05() {
    use phy::hra::HelmholtzResonator;
    let cs = 1941.0;
    let paper = HelmholtzResonator::paper_geometry();
    let tuned = paper.design_for(230e3, cs);
    print_table(
        "Eqn 5 — HRA resonance (paper geometry lands at ~159 kHz; retuned cavity hits 230 kHz)",
        &["design", "Vc_mm3", "f_kHz"],
        &[
            vec![
                "paper".into(),
                fmt(paper.cavity_volume_m3 * 1e9, 2),
                fmt(paper.resonant_frequency_hz(cs) / 1e3, 1),
            ],
            vec![
                "retuned".into(),
                fmt(tuned.cavity_volume_m3 * 1e9, 2),
                fmt(tuned.resonant_frequency_hz(cs) / 1e3, 1),
            ],
        ],
    );
}

//! The fault-matrix runner: fault intensity × retry policy over full
//! wall surveys, with serial-vs-parallel digest identity and the
//! retry-recovery invariant. Writes `BENCH_faults.json`.
//!
//! ```sh
//! cargo run -p bench --bin faults --release            # full matrix
//! cargo run -p bench --bin faults --release -- --smoke # CI gate
//! cargo run -p bench --bin faults -- --workers 4 --out /tmp/f.json
//! ```
//!
//! Exit codes: `0` success, `1` a survey failed, digests diverged, or
//! the retry policy recovered nothing over the baseline, `2` bad usage.

use bench::faults::{run_matrix, to_json, trace_jsonl, verify, FaultScale};
use exec::Pool;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut scale = FaultScale::full();
    let mut workers: Option<usize> = None;
    let mut out_path = String::from("BENCH_faults.json");
    let mut trace_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => scale = FaultScale::smoke(),
            "--workers" => match it.next().and_then(|w| w.parse().ok()) {
                Some(w) => workers = Some(w),
                None => return usage("--workers requires a positive integer"),
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => return usage("--out requires a path"),
            },
            "--trace" => match it.next() {
                Some(p) => trace_path = Some(p.clone()),
                None => return usage("--trace requires a path"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let pool = workers.map_or_else(Pool::max_parallel, Pool::new);
    println!(
        "faults: {} profile, {} worker(s), {} surveys/cell over {} slots",
        if scale.smoke { "smoke" } else { "full" },
        pool.workers(),
        scale.surveys_per_cell,
        scale.horizon_slots,
    );

    let matrix = match run_matrix(&scale, &pool) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("faults failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{:>10} {:>9} {:>9} {:>5} {:>10} {:>7} {:>7} {:>9} {:>10}",
        "intensity",
        "policy",
        "capsules",
        "read",
        "unpowered",
        "colled",
        "nodeco",
        "readings",
        "identical"
    );
    for c in &matrix.cells {
        println!(
            "{:>10} {:>9} {:>9} {:>5} {:>10} {:>7} {:>7} {:>9} {:>10}",
            c.intensity,
            c.policy,
            c.capsules,
            c.capsules_read,
            c.capsules_unpowered,
            c.capsules_collision_exhausted,
            c.capsules_decode_failed,
            c.readings,
            c.bit_identical(),
        );
    }
    println!("\nrecovery (retry vs no-retry):");
    for r in &matrix.recovery {
        println!(
            "{:>10}: {} vs {} capsules ({:+}), {} vs {} readings ({:+})",
            r.intensity,
            r.capsules_read_retry,
            r.capsules_read_no_retry,
            r.capsules_delta(),
            r.readings_retry,
            r.readings_no_retry,
            r.readings_delta(),
        );
    }
    println!(
        "recovered over faulted intensities: {:+} capsules, {:+} readings",
        matrix.recovered_capsules_delta(),
        matrix.recovered_readings_delta()
    );

    if let Err(e) = verify(&matrix) {
        eprintln!("faults failed: {e}");
        return ExitCode::FAILURE;
    }

    if let Some(path) = trace_path {
        let jsonl = match trace_jsonl(&scale) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("faults trace failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(&path, &jsonl) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path} ({} lines)", jsonl.lines().count());
    }

    let json = to_json(&matrix, &pool, &scale);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("usage: faults [--smoke] [--workers N] [--out PATH] [--trace PATH]");
    ExitCode::from(2)
}

//! The fleet runner: scales a mixed city block of walls across the
//! scheduler, checks the serial-vs-parallel and checkpoint/resume
//! digest-identity invariants at every fleet size, and writes
//! `BENCH_fleet.json`.
//!
//! ```sh
//! cargo run -p bench --bin fleet --release             # full profile
//! cargo run -p bench --bin fleet --release -- --smoke  # CI gate
//! ```
//!
//! Exit codes: `0` success, `1` a fleet run failed or a digest
//! diverged, `2` bad usage.

use bench::fleet::{run_fleet_bench, to_json, verify, FleetScale};
use exec::Pool;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut scale = FleetScale::full();
    let mut workers: Option<usize> = None;
    let mut out_path = String::from("BENCH_fleet.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => scale = FleetScale::smoke(),
            "--workers" => match it.next().and_then(|w| w.parse().ok()) {
                Some(w) => workers = Some(w),
                None => return usage("--workers requires a positive integer"),
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => return usage("--out requires a path"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let pool = workers.map_or_else(Pool::max_parallel, Pool::new);
    println!(
        "fleet: {} profile, {} worker(s), fleets of {:?} walls",
        if scale.smoke { "smoke" } else { "full" },
        pool.workers(),
        scale.wall_counts,
    );

    let report = match run_fleet_bench(&scale, &pool) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fleet failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "\n{:>6} {:>9} {:>7} {:>11} {:>13} {:>8} {:>9} {:>7}",
        "walls", "capsules", "rounds", "serial_ms", "parallel_ms", "speedup", "identical", "resume"
    );
    for r in &report.rows {
        println!(
            "{:>6} {:>9} {:>7} {:>11.1} {:>13.1} {:>8.2} {:>9} {:>7}",
            r.walls,
            r.capsules,
            r.rounds,
            r.serial_ms,
            r.parallel_ms,
            r.speedup,
            r.parallel_identical,
            r.resume_identical,
        );
    }

    if let Err(e) = verify(&report) {
        eprintln!("fleet failed: {e}");
        return ExitCode::FAILURE;
    }

    let json = to_json(&report, &pool, &scale);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("usage: fleet [--smoke] [--workers N] [--out PATH]");
    ExitCode::from(2)
}

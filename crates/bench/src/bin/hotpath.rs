//! The hot-path runner: times every survey kernel scalar vs. batched,
//! verifies bit-identity, and writes `BENCH_hotpath.json`.
//!
//! ```sh
//! cargo run -p bench --bin hotpath --release            # full trajectory
//! cargo run -p bench --bin hotpath --release -- --smoke # CI gate
//! cargo run -p bench --bin hotpath -- --out /tmp/h.json
//! ```
//!
//! Exit codes: `0` success, `1` a stage failed or batched output
//! diverged from scalar, `2` bad usage.

use bench::hotpath::{run_all, to_json, Scale};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut scale = Scale::full();
    let mut out_path = String::from("BENCH_hotpath.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => scale = Scale::smoke(),
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => return usage("--out requires a path"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    println!(
        "hotpath: {} profile",
        if scale.smoke { "smoke" } else { "full" },
    );

    let results = match run_all(&scale) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hotpath failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{:>10} {:>10} {:>6} {:>14} {:>14} {:>8} {:>10}",
        "stage", "samples", "reps", "serial_ns", "batched_ns", "speedup", "identical"
    );
    for r in &results {
        println!(
            "{:>10} {:>10} {:>6} {:>14.2} {:>14.2} {:>7.2}x {:>10}",
            r.name,
            r.samples_per_pass,
            r.reps,
            r.serial_ns_per_sample,
            r.batched_ns_per_sample,
            r.speedup(),
            r.bit_identical(),
        );
    }

    let json = to_json(&results, &scale);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("usage: hotpath [--smoke] [--out PATH]");
    ExitCode::from(2)
}

//! The observability runner: records quiet and faulted wall surveys,
//! checks the worker-count trace-identity invariant, and summarizes
//! per-span slot statistics and counter totals. Writes `BENCH_obs.json`
//! and, with `--trace`, the faulted survey's raw JSONL event stream.
//!
//! ```sh
//! cargo run -p bench --bin obs --release             # full profile
//! cargo run -p bench --bin obs --release -- --smoke  # CI gate
//! cargo run -p bench --bin obs -- --trace /tmp/survey.jsonl
//! ```
//!
//! Exit codes: `0` success, `1` a survey failed or traces diverged
//! across worker counts, `2` bad usage.

use bench::obs::{run_obs, to_json, trace_jsonl, verify, ObsScale};
use exec::Pool;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut scale = ObsScale::full();
    let mut workers: Option<usize> = None;
    let mut out_path = String::from("BENCH_obs.json");
    let mut trace_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => scale = ObsScale::smoke(),
            "--workers" => match it.next().and_then(|w| w.parse().ok()) {
                Some(w) => workers = Some(w),
                None => return usage("--workers requires a positive integer"),
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => return usage("--out requires a path"),
            },
            "--trace" => match it.next() {
                Some(p) => trace_path = Some(p.clone()),
                None => return usage("--trace requires a path"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let pool = workers.map_or_else(Pool::max_parallel, Pool::new);
    println!(
        "obs: {} profile, {} worker(s), {} capsules",
        if scale.smoke { "smoke" } else { "full" },
        pool.workers(),
        scale.standoffs.len(),
    );

    let report = match run_obs(&scale, &pool) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("obs failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    for s in &report.scenarios {
        println!(
            "\n== {} ({} events, bit-identical: {}) ==",
            s.name, s.events, s.bit_identical
        );
        println!(
            "{:>20} {:>7} {:>7} {:>7} {:>7}",
            "histogram", "count", "p50", "p99", "max"
        );
        for h in &s.histograms {
            println!(
                "{:>20} {:>7} {:>7} {:>7} {:>7}",
                h.name, h.count, h.p50, h.p99, h.max
            );
        }
        println!("counters:");
        for (name, total) in &s.counters {
            println!("{name:>26} = {total}");
        }
    }

    if let Err(e) = verify(&report) {
        eprintln!("obs failed: {e}");
        return ExitCode::FAILURE;
    }

    if let Some(path) = trace_path {
        let jsonl = match trace_jsonl(&scale) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("obs trace failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(&path, &jsonl) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path} ({} lines)", jsonl.lines().count());
    }

    let json = to_json(&report, &pool, &scale);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("usage: obs [--smoke] [--workers N] [--out PATH] [--trace PATH]");
    ExitCode::from(2)
}

//! The serve runner: spawns the daemon, hammers it with concurrent
//! readers for the whole live survey window, measures round-trip
//! latency percentiles and throughput, times a restart from the exit
//! checkpoint, checks the serve digest identities (serial vs. parallel
//! vs. daemon vs. restart), and writes `BENCH_serve.json`.
//!
//! ```sh
//! cargo run -p bench --bin serve --release             # full profile
//! cargo run -p bench --bin serve --release -- --smoke  # CI gate
//! ```
//!
//! Exit codes: `0` success, `1` the daemon failed, a digest diverged,
//! or a reader starved, `2` bad usage.

use bench::serve::{run_serve_bench, to_json, verify, ServeScale};
use exec::Pool;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut scale = ServeScale::full();
    let mut workers: Option<usize> = None;
    let mut out_path = String::from("BENCH_serve.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => scale = ServeScale::smoke(),
            "--workers" => match it.next().and_then(|w| w.parse().ok()) {
                Some(w) => workers = Some(w),
                None => return usage("--workers requires a positive integer"),
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => return usage("--out requires a path"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let pool = workers.map_or_else(Pool::max_parallel, Pool::new);
    println!(
        "serve: {} profile, {} worker(s), {} walls x {} cycles, {} readers",
        if scale.smoke { "smoke" } else { "full" },
        pool.workers(),
        scale.walls,
        scale.cycles,
        scale.readers,
    );

    let report = match run_serve_bench(&scale, &pool) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve bench failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "\nlive window {:.1} ms, {} reads, {:.0} q/s, p50 {} µs, p99 {} µs, max {} µs",
        report.live_ms,
        report.reads_total,
        report.throughput_qps,
        report.p50_us,
        report.p99_us,
        report.max_us,
    );
    println!(
        "{:>7} {:>8} {:>8} {:>8} {:>8}",
        "reader", "reads", "p50_us", "p99_us", "max_us"
    );
    for r in &report.reader_rows {
        println!(
            "{:>7} {:>8} {:>8} {:>8} {:>8}",
            r.reader, r.reads, r.p50_us, r.p99_us, r.max_us
        );
    }
    println!(
        "\nserial {:.1} ms, digest {:#018x}; parallel {} daemon {} restart {}; recovery {:.3} ms ({} checkpoint bytes)",
        report.serial_ms,
        report.serial_digest,
        report.parallel_identical,
        report.daemon_identical,
        report.restart_identical,
        report.recovery_ms,
        report.checkpoint_bytes,
    );

    if let Err(e) = verify(&report) {
        eprintln!("serve bench failed: {e}");
        return ExitCode::FAILURE;
    }

    let json = to_json(&report, &pool, &scale);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("usage: serve [--smoke] [--workers N] [--out PATH]");
    ExitCode::from(2)
}

//! The sweep runner: times every workload grid serial vs. parallel,
//! verifies bit-identity, and writes `BENCH_sweeps.json`.
//!
//! ```sh
//! cargo run -p bench --bin sweeps --release            # full trajectory
//! cargo run -p bench --bin sweeps --release -- --smoke # CI gate
//! cargo run -p bench --bin sweeps -- --workers 4 --out /tmp/b.json
//! ```
//!
//! Exit codes: `0` success, `1` a workload failed or parallel output
//! diverged from serial, `2` bad usage.

use bench::sweeps::{run_all, to_json, Scale};
use exec::Pool;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut scale = Scale::full();
    let mut workers: Option<usize> = None;
    let mut out_path = String::from("BENCH_sweeps.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => scale = Scale::smoke(),
            "--workers" => match it.next().and_then(|w| w.parse().ok()) {
                Some(w) => workers = Some(w),
                None => return usage("--workers requires a positive integer"),
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => return usage("--out requires a path"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let pool = workers.map_or_else(Pool::max_parallel, Pool::new);
    println!(
        "sweeps: {} profile, {} worker(s) (host has {})",
        if scale.smoke { "smoke" } else { "full" },
        pool.workers(),
        Pool::max_parallel().workers(),
    );

    let results = match run_all(&scale, &pool) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweeps failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{:>14} {:>6} {:>12} {:>12} {:>8} {:>10}",
        "workload", "tasks", "serial_ms", "parallel_ms", "speedup", "identical"
    );
    for r in &results {
        println!(
            "{:>14} {:>6} {:>12.1} {:>12.1} {:>7.2}x {:>10}",
            r.name,
            r.tasks,
            r.serial_wall_ms,
            r.parallel_wall_ms,
            r.speedup(),
            r.bit_identical(),
        );
        for (stage, ms) in &r.stage_cpu_ms {
            println!("{:>14}   · {stage}: {ms:.1} ms serial CPU", "");
        }
    }

    let json = to_json(&results, &pool, &scale);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("usage: sweeps [--smoke] [--workers N] [--out PATH]");
    ExitCode::from(2)
}

//! The campaign bench: detection latency and false-alarm curves over a
//! damage-scenario × seasonal-drift grid, plus the campaign determinism
//! invariants — for every grid point the campaign digest must be
//! identical serial vs. parallel and across a checkpoint/resume split
//! at the campaign's midpoint.
//!
//! Each grid point runs a two-wall campaign: a monitored wall following
//! one of the damage presets ([`DamageScenario::crack_onset`],
//! [`DamageScenario::slow_degradation`],
//! [`DamageScenario::capsule_aging`]) and a quiet control wall under
//! the same seasonal drift. The row records when (and through which
//! feature) the damage was detected and how many alarms the control
//! tripped (the committed artifact pins that at zero). A second grid
//! sweeps the quiet preset across seeds: the false-alarm rate must be
//! zero on every one. The emitted `BENCH_campaign.json` (schema
//! `ecocapsule-bench-campaign/1`) is committed at the repo root; CI
//! re-runs the smoke profile and gates on [`verify`].

use campaign::{Campaign, CampaignCheckpoint, CampaignOptions, CampaignWallSpec, DamageScenario};
use dsp::{EcoError, EcoResult};
use exec::Pool;
use fleet::{FleetOptions, WallSpec};
use std::time::Instant;

/// Fixed bench seed: digests must be comparable across commits.
const CAMPAIGN_SEED: u64 = 0xCA4A_1600;

/// Bench size: [`CampaignScale::full`] for the committed summary,
/// [`CampaignScale::smoke`] for the CI gate.
#[derive(Debug, Clone, Copy)]
pub struct CampaignScale {
    /// Epochs per campaign.
    pub epochs: u64,
    /// Epoch the damage presets switch on (after the baseline window).
    pub onset_epoch: u64,
    /// Seasonal-drift multipliers to sweep (0 = still air, 1 = the
    /// temperate preset, 2 = doubled swings).
    pub drift_scales: &'static [f64],
    /// Campaign seeds for the quiet false-alarm sweep.
    pub quiet_seeds: &'static [u64],
    /// True for the reduced CI profile.
    pub smoke: bool,
}

impl CampaignScale {
    /// The committed-summary profile.
    #[must_use]
    pub fn full() -> Self {
        CampaignScale {
            epochs: 14,
            onset_epoch: 7,
            drift_scales: &[0.0, 1.0, 2.0],
            quiet_seeds: &[1, 2, 3, 4, 5],
            smoke: false,
        }
    }

    /// The CI profile: shorter campaigns, one drift point, fewer quiet
    /// seeds, same invariants.
    #[must_use]
    pub fn smoke() -> Self {
        CampaignScale {
            epochs: 9,
            onset_epoch: 5,
            drift_scales: &[1.0],
            quiet_seeds: &[1, 2],
            smoke: true,
        }
    }
}

/// The three benched damage presets, by name.
#[must_use]
pub fn damage_presets(onset_epoch: u64) -> [(&'static str, DamageScenario); 3] {
    [
        ("crack_onset", DamageScenario::crack_onset(onset_epoch)),
        (
            "slow_degradation",
            DamageScenario::slow_degradation(onset_epoch),
        ),
        ("capsule_aging", DamageScenario::capsule_aging(onset_epoch)),
    ]
}

/// Scales a scenario's seasonal amplitudes and climate jitter by
/// `drift`, leaving the damage script untouched.
#[must_use]
pub fn with_drift(mut scenario: DamageScenario, drift: f64) -> DamageScenario {
    scenario.seasonal.temperature_amplitude_c *= drift;
    scenario.seasonal.humidity_amplitude_percent *= drift;
    scenario.temperature_jitter_c *= drift;
    scenario.humidity_jitter_percent *= drift;
    scenario
}

/// The two-wall campaign at one grid point: the monitored wall under
/// `scenario`, a quiet control under the same drift.
fn grid_specs(scenario: &DamageScenario, drift: f64) -> Vec<CampaignWallSpec> {
    vec![
        CampaignWallSpec::new(
            WallSpec::new("monitored", vec![0.4, 0.8, 1.2]).seed(CAMPAIGN_SEED),
            scenario.clone(),
        ),
        CampaignWallSpec::new(
            WallSpec::new("control", vec![0.6]).seed(CAMPAIGN_SEED ^ 1),
            with_drift(DamageScenario::quiet(), drift),
        ),
    ]
}

fn grid_options(scale: &CampaignScale) -> CampaignOptions {
    CampaignOptions::new()
        .epochs(scale.epochs)
        .seed(CAMPAIGN_SEED)
}

/// One damage grid point.
#[derive(Debug, Clone)]
pub struct ScenarioRow {
    /// Damage preset name.
    pub scenario: &'static str,
    /// Seasonal-drift multiplier.
    pub drift: f64,
    /// Epoch the damage switched on.
    pub onset_epoch: u64,
    /// Serial wall-clock (ms).
    pub serial_ms: f64,
    /// The serial campaign digest.
    pub digest: u64,
    /// Parallel digest equals the serial digest.
    pub parallel_identical: bool,
    /// Checkpoint/resume digest equals the serial digest.
    pub resume_identical: bool,
    /// Epoch the checkpoint was taken at (the midpoint).
    pub checkpoint_epoch: u64,
    /// Epoch the monitored wall's first detection fired, or `None`.
    pub detection_epoch: Option<u64>,
    /// `detection_epoch − onset_epoch`, or `None` if undetected.
    pub latency_epochs: Option<u64>,
    /// Feature the first detection fired on (`"none"` if undetected).
    pub detection_feature: &'static str,
    /// Alarms on the quiet control wall (the artifact pins 0).
    pub control_false_alarms: usize,
}

/// One quiet-seed grid point.
#[derive(Debug, Clone)]
pub struct QuietRow {
    /// Campaign seed.
    pub seed: u64,
    /// The campaign digest.
    pub digest: u64,
    /// Detections across the whole quiet campaign (must be 0).
    pub false_alarms: usize,
}

/// The full campaign bench result.
#[derive(Debug, Clone)]
pub struct CampaignBenchReport {
    /// One row per (scenario, drift) grid point.
    pub scenario_rows: Vec<ScenarioRow>,
    /// One row per quiet seed.
    pub quiet_rows: Vec<QuietRow>,
}

/// Runs a campaign halfway, freezes it through the byte format, and
/// finishes the run from the decoded checkpoint on a parallel pool.
fn resumed_digest(
    specs: Vec<CampaignWallSpec>,
    options: &CampaignOptions,
    pool: &Pool,
) -> EcoResult<(u64, u64)> {
    let split = options.epochs / 2;
    let mut first_leg = Campaign::new(specs.clone(), options.clone())?;
    for _ in 0..split {
        first_leg.run_epoch()?;
    }
    let bytes = CampaignCheckpoint::of(&first_leg).to_bytes();
    let report = CampaignCheckpoint::from_bytes(&bytes)?
        .resume(
            specs,
            options.clone().fleet(FleetOptions::new().pool(*pool)),
        )?
        .run_to_completion()?;
    Ok((report.digest(), split))
}

/// Runs the damage grid and the quiet-seed sweep.
#[must_use]
pub fn run_campaign_bench(scale: &CampaignScale, pool: &Pool) -> EcoResult<CampaignBenchReport> {
    let options = grid_options(scale);
    let mut scenario_rows = Vec::new();
    for (name, preset) in damage_presets(scale.onset_epoch) {
        for &drift in scale.drift_scales {
            let scenario = with_drift(preset.clone(), drift);
            let specs = grid_specs(&scenario, drift);

            let t0 = Instant::now();
            let serial = options.clone().run(specs.clone())?;
            let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

            let parallel = options
                .clone()
                .fleet(FleetOptions::new().pool(*pool))
                .run(specs.clone())?;
            let (resume_digest, checkpoint_epoch) = resumed_digest(specs, &options, pool)?;

            let detection = serial.first_detection("monitored");
            scenario_rows.push(ScenarioRow {
                scenario: name,
                drift,
                onset_epoch: scale.onset_epoch,
                serial_ms,
                digest: serial.digest(),
                parallel_identical: parallel.digest() == serial.digest(),
                resume_identical: resume_digest == serial.digest(),
                checkpoint_epoch,
                detection_epoch: detection.map(|d| d.epoch),
                latency_epochs: detection.map(|d| d.epoch.saturating_sub(scale.onset_epoch)),
                detection_feature: detection.map_or("none", |d| d.feature),
                control_false_alarms: serial
                    .detections
                    .iter()
                    .filter(|d| d.wall == "control")
                    .count(),
            });
        }
    }

    let mut quiet_rows = Vec::new();
    for &seed in scale.quiet_seeds {
        let specs = vec![
            CampaignWallSpec::new(
                WallSpec::new("quiet-a", vec![0.4, 0.8, 1.2]).seed(seed),
                DamageScenario::quiet(),
            ),
            CampaignWallSpec::new(
                WallSpec::new("quiet-b", vec![0.6]).seed(seed ^ 0xFF),
                with_drift(DamageScenario::quiet(), 2.0),
            ),
        ];
        let report = grid_options(scale).seed(seed).run(specs)?;
        quiet_rows.push(QuietRow {
            seed,
            digest: report.digest(),
            false_alarms: report.detections.len(),
        });
    }

    Ok(CampaignBenchReport {
        scenario_rows,
        quiet_rows,
    })
}

/// Checks the bench invariants: at least three distinct damage
/// scenarios, every digest identity holds, every damage row detected
/// its damage at non-negative latency, and not one false alarm — on
/// the in-grid controls or across the quiet-seed sweep.
#[must_use]
pub fn verify(report: &CampaignBenchReport) -> EcoResult<()> {
    let mut scenarios: Vec<&str> = report.scenario_rows.iter().map(|r| r.scenario).collect();
    scenarios.sort_unstable();
    scenarios.dedup();
    if scenarios.len() < 3 {
        return Err(EcoError::Numerical {
            what: "campaign bench needs at least three damage scenarios",
        });
    }
    for row in &report.scenario_rows {
        if !row.parallel_identical {
            return Err(EcoError::Numerical {
                what: "parallel campaign digest diverged from serial digest",
            });
        }
        if !row.resume_identical {
            return Err(EcoError::Numerical {
                what: "resumed campaign digest diverged from uninterrupted digest",
            });
        }
        if row.detection_epoch.is_none() {
            return Err(EcoError::Numerical {
                what: "a damage scenario went undetected",
            });
        }
        if row.detection_epoch < Some(row.onset_epoch) {
            return Err(EcoError::Numerical {
                what: "damage detected before its onset epoch",
            });
        }
        if row.control_false_alarms != 0 {
            return Err(EcoError::Numerical {
                what: "quiet control wall tripped an alarm",
            });
        }
    }
    if report.quiet_rows.is_empty() {
        return Err(EcoError::Numerical {
            what: "campaign bench swept no quiet seeds",
        });
    }
    for row in &report.quiet_rows {
        if row.false_alarms != 0 {
            return Err(EcoError::Numerical {
                what: "quiet campaign fired a false alarm",
            });
        }
    }
    Ok(())
}

/// Renders the report as `BENCH_campaign.json` (schema
/// `ecocapsule-bench-campaign/1`). Hand-rolled, like the other bench
/// emitters — the workspace is hermetic, so no serde.
#[must_use]
pub fn to_json(report: &CampaignBenchReport, pool: &Pool, scale: &CampaignScale) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"ecocapsule-bench-campaign/1\",\n");
    out.push_str(&format!("  \"pool_workers\": {},\n", pool.workers()));
    out.push_str(&format!("  \"smoke\": {},\n", scale.smoke));
    out.push_str(&format!("  \"epochs\": {},\n", scale.epochs));
    out.push_str(&format!("  \"onset_epoch\": {},\n", scale.onset_epoch));
    out.push_str("  \"scenario_rows\": [\n");
    for (k, r) in report.scenario_rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"scenario\": \"{}\",\n", r.scenario));
        out.push_str(&format!("      \"drift\": {:.2},\n", r.drift));
        out.push_str(&format!("      \"serial_ms\": {:.3},\n", r.serial_ms));
        out.push_str(&format!("      \"digest\": \"{:#018x}\",\n", r.digest));
        out.push_str(&format!(
            "      \"parallel_identical\": {},\n",
            r.parallel_identical
        ));
        out.push_str(&format!(
            "      \"resume_identical\": {},\n",
            r.resume_identical
        ));
        out.push_str(&format!(
            "      \"checkpoint_epoch\": {},\n",
            r.checkpoint_epoch
        ));
        match r.detection_epoch {
            Some(epoch) => {
                out.push_str(&format!("      \"detection_epoch\": {epoch},\n"));
            }
            None => out.push_str("      \"detection_epoch\": null,\n"),
        }
        match r.latency_epochs {
            Some(latency) => {
                out.push_str(&format!("      \"latency_epochs\": {latency},\n"));
            }
            None => out.push_str("      \"latency_epochs\": null,\n"),
        }
        out.push_str(&format!(
            "      \"detection_feature\": \"{}\",\n",
            r.detection_feature
        ));
        out.push_str(&format!(
            "      \"control_false_alarms\": {}\n",
            r.control_false_alarms
        ));
        out.push_str(if k + 1 == report.scenario_rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"quiet_rows\": [\n");
    for (k, r) in report.quiet_rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"seed\": {},\n", r.seed));
        out.push_str(&format!("      \"digest\": \"{:#018x}\",\n", r.digest));
        out.push_str(&format!("      \"false_alarms\": {}\n", r.false_alarms));
        out.push_str(if k + 1 == report.quiet_rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

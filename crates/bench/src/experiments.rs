//! Reusable experiment runners behind every paper figure and table.
//!
//! Each `fig*_data` / `tab*_data` / `eqn*_data` function computes the
//! numbers one evaluation artifact needs, with no printing: the
//! `experiments` binary formats them into the tables EXPERIMENTS.md
//! quotes, and `crates/repro` turns them into paper-vs-sim PASS/FAIL
//! rows. Keeping one compute path for both consumers is what makes the
//! repro gate honest — the harness can only pass on numbers the figure
//! binary would print.
//!
//! Heavy Monte-Carlo experiments take a [`Profile`]: [`Profile::Full`]
//! reproduces the committed EXPERIMENTS.md numbers, while
//! [`Profile::KickTires`] shrinks trial counts to CI scale (the
//! deterministic seeds are shared, so a kick-tires run is bit-stable
//! across worker counts — see `crates/repro`'s differential suite).

use crate::fmt;
use dsp::{EcoError, EcoResult};
use exec::Pool;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How much work a scalable experiment does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Reduced trial counts: minutes for the whole suite, CI-gated.
    KickTires,
    /// The committed EXPERIMENTS.md trajectory (paper scale).
    Full,
}

impl Profile {
    /// True for the reduced profile.
    #[must_use]
    pub fn is_kick(self) -> bool {
        matches!(self, Profile::KickTires)
    }
}

/// One named scalar extracted from an experiment, for the repro gate.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Stable metric name (referenced by the repro manifest).
    pub name: &'static str,
    /// Measured value. Booleans are encoded as 1.0 / 0.0.
    pub value: f64,
}

impl Metric {
    fn new(name: &'static str, value: f64) -> Self {
        Metric { name, value }
    }

    fn flag(name: &'static str, ok: bool) -> Self {
        Metric {
            name,
            value: if ok { 1.0 } else { 0.0 },
        }
    }
}

/// Every experiment tag the runners know, in EXPERIMENTS.md order.
/// `pilot` is the standing §6 footbridge deployment gate.
pub const FIGURE_TAGS: &[&str] = &[
    "fig03a",
    "fig03b",
    "fig04",
    "fig05",
    "fig07",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig15wave",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "fig22",
    "fig24",
    "tab01",
    "tab02",
    "eqn04",
    "eqn05",
    "pilot",
];

// ---------------------------------------------------------------------------
// Per-figure data runners.
// ---------------------------------------------------------------------------

/// §3.2 context: half-beam angle (degrees) and insonified cone (cm³)
/// of a bare PZT through a 15 cm wall.
#[must_use]
pub fn fig03a_data() -> EcoResult<(f64, f64)> {
    let alpha =
        elastic::beam::half_beam_angle(3338.0, 230e3, 0.040).ok_or(EcoError::Numerical {
            what: "fig03a beam angle",
        })?;
    let vol_cm3 = elastic::beam::cone_volume_m3(alpha, 0.15) * 1e6;
    Ok((alpha.to_degrees(), vol_cm3))
}

/// §3.2 motivation: % of the S3 wall charged from one TX spot, bare
/// PZT cone vs prism S-reflections, per drive voltage.
#[must_use]
pub fn fig03b_data() -> EcoResult<Vec<(f64, f64, f64)>> {
    use channel::linkbudget::LinkBudget;
    use concrete::structure::Structure;
    use elastic::beam::{cone_volume_m3, half_beam_angle};
    let s3 = Structure::s3_common_wall();
    // Bare PZT: the 11° P-cone through a 20 cm wall.
    let alpha = half_beam_angle(3338.0, 230e3, 0.040).ok_or(EcoError::Numerical {
        what: "fig03b beam angle",
    })?;
    let cone_m3 = cone_volume_m3(alpha, 0.20);
    let wall_m3 = 20.0 * 20.0 * 0.20;
    // Prism: everything inside the power-up radius is charged via
    // S-reflections; approximate the covered face as a half-disc of the
    // Fig 12 range around the TX.
    let lb = LinkBudget::for_structure(&s3)?;
    let mut rows = Vec::new();
    for v in [50.0, 100.0, 200.0, 250.0] {
        let r = lb.max_range_m(v, 0.5)?.unwrap_or(0.0);
        let covered_m3 = (std::f64::consts::PI * r * r / 2.0).min(20.0 * 20.0) * 0.20;
        rows.push((v, cone_m3 / wall_m3 * 100.0, covered_m3 / wall_m3 * 100.0));
    }
    Ok(rows)
}

/// Fig 4: relative transmitted P/S amplitude per incident angle, plus
/// the two critical angles (degrees).
#[must_use]
pub fn fig04_data() -> EcoResult<(Vec<(f64, f64, f64)>, f64, f64)> {
    let iface = elastic::interface::SolidInterface::new(
        elastic::Material::PLA,
        elastic::Material::CONCRETE_REF,
    );
    let mut rows = Vec::new();
    for deg in (0..=80).step_by(5) {
        let theta = (deg as f64).to_radians();
        if theta >= std::f64::consts::FRAC_PI_2 {
            break;
        }
        let s = iface.incident_p(theta);
        let p_amp = if s.energy_trans_p > 0.0 {
            s.trans_p.abs()
        } else {
            0.0
        };
        let s_amp = if s.energy_trans_s > 0.0 {
            s.trans_s.abs()
        } else {
            0.0
        };
        rows.push((deg as f64, p_amp, s_amp));
    }
    let window = elastic::snell::s_only_window(
        elastic::Material::PLA.cp_m_s,
        &elastic::Material::CONCRETE_REF,
    )?;
    let (ca1, ca2) = window.ok_or(EcoError::Numerical {
        what: "fig04 critical-angle window",
    })?;
    Ok((rows, ca1.to_degrees(), ca2.to_degrees()))
}

/// The four Fig 5(b) blocks, in table order.
pub const FIG05_BLOCKS: [&str; 4] = ["NC-7cm", "NC-15cm", "UHPC-15cm", "UHPFRC-15cm"];

/// Fig 5(b): RX amplitude (mV) per frequency for the four blocks, plus
/// each block's `(name, peak_mv, peak_hz)`.
#[allow(clippy::type_complexity)]
pub fn fig05_data() -> (Vec<(f64, [f64; 4])>, Vec<(&'static str, f64, f64)>) {
    use concrete::response::Block;
    use concrete::ConcreteGrade;
    let blocks = [
        Block::new(ConcreteGrade::Nc.mix(), 0.07),
        Block::new(ConcreteGrade::Nc.mix(), 0.15),
        Block::new(ConcreteGrade::Uhpc.mix(), 0.15),
        Block::new(ConcreteGrade::Uhpfrc.mix(), 0.15),
    ];
    let mut rows = Vec::new();
    let mut f = 20e3;
    while f <= 400e3 + 1.0 {
        let mut amps = [0.0; 4];
        for (slot, b) in amps.iter_mut().zip(&blocks) {
            *slot = b.rx_amplitude_mv(f, 100.0);
        }
        rows.push((f, amps));
        f += 20e3;
    }
    let peaks = FIG05_BLOCKS
        .iter()
        .zip(&blocks)
        .map(|(name, b)| {
            let peak_hz = b.peak_frequency_hz();
            (*name, b.rx_amplitude_mv(peak_hz, 100.0), peak_hz)
        })
        .collect();
    (rows, peaks)
}

/// Fig 7 outcome: OOK ring tail and the two low-edge residual peaks.
#[derive(Debug, Clone)]
pub struct Fig07 {
    /// OOK tail duration after the drive stops (s), if detected.
    pub tail_ook_s: Option<f64>,
    /// OOK low-edge residual peak (normalized amplitude).
    pub ook_low_edge_peak: f64,
    /// FSK low-edge residual peak after concrete damping.
    pub fsk_low_edge_peak: f64,
}

/// Fig 7: ring effect — PIE bit-0 tail with OOK vs FSK suppression.
pub fn fig07_data() -> Fig07 {
    use phy::modulation::{synthesize_drive, DownlinkScheme};
    use phy::pie::Pie;
    use phy::pzt::{measure_tail_s, Pzt};
    let fs = 2.0e6;
    let pzt = Pzt::reader_disc(fs);
    let pie = Pie::new(0.5e-3); // 0.5 ms edges as in the figure
    let segments = pie.encode(&[false]);

    let ook = pzt.respond(&synthesize_drive(&segments, DownlinkScheme::Ook, 230e3, fs));
    let tail_ook_s = measure_tail_s(&ook, 0.5e-3, 0.05, fs);

    let fsk_drive = synthesize_drive(
        &segments,
        DownlinkScheme::FskInOokOut { off_hz: 180e3 },
        230e3,
        fs,
    );
    let mut fsk = pzt.respond(&fsk_drive);
    // Concrete off-resonance damping of the low edge.
    let n_high = (0.5e-3 * fs) as usize;
    for x in fsk.iter_mut().skip(n_high) {
        *x *= 0.25;
    }
    let peak = |w: &[f64], a: usize, b: usize| w[a..b].iter().fold(0.0f64, |m, &x| m.max(x.abs()));
    Fig07 {
        tail_ook_s,
        ook_low_edge_peak: peak(&ook, n_high + n_high / 2, 2 * n_high),
        fsk_low_edge_peak: peak(&fsk, n_high + n_high / 2, 2 * n_high),
    }
}

/// Column labels of the Fig 12 table, after the voltage column.
pub const FIG12_COLUMNS: [&str; 6] = ["S1", "S2", "S3", "S4", "PAB-P1", "PAB-P2"];

/// Fig 12: max power-up range (cm) per drive voltage, for S1–S4 and
/// the two PAB pools (`None` = no power-up at that voltage).
#[allow(clippy::type_complexity)]
#[must_use]
pub fn fig12_data() -> EcoResult<Vec<(f64, Vec<Option<f64>>)>> {
    let mut rows = Vec::new();
    for v in (10..=250).step_by(20) {
        rows.push((v as f64, fig12_ranges_cm(v as f64)?));
    }
    Ok(rows)
}

/// One Fig 12 row: ranges (cm) at `tx_voltage_v` in [`FIG12_COLUMNS`]
/// order.
#[must_use]
pub fn fig12_ranges_cm(tx_voltage_v: f64) -> EcoResult<Vec<Option<f64>>> {
    use channel::linkbudget::{LinkBudget, PabPool};
    use concrete::structure::Structure;
    let mut row = Vec::new();
    for s in &Structure::paper_set() {
        let r = LinkBudget::for_structure(s)?.max_range_m(tx_voltage_v, 0.5)?;
        row.push(r.map(|r| r * 100.0));
    }
    for pool in [PabPool::Pool1, PabPool::Pool2] {
        let r = pool.link_budget().max_range_m(tx_voltage_v, 0.5)?;
        row.push(r.map(|r| r * 100.0));
    }
    Ok(row)
}

/// Fig 13: `(bitrate_kbps, power_uw)` per uplink bitrate.
pub fn fig13_data() -> Vec<(f64, f64)> {
    use node::power::PowerModel;
    [0.0, 1e3, 2e3, 3e3, 4e3, 5e3, 6e3, 7e3, 8e3]
        .iter()
        .map(|&r| (r / 1e3, PowerModel.consumption_w(r) * 1e6))
        .collect()
}

/// Fig 14: `(input_v, cold_start_ms)` per activation voltage (NaN when
/// the harvester never starts).
pub fn fig14_data() -> Vec<(f64, f64)> {
    use node::harvester::Harvester;
    let h = Harvester::default();
    [0.4, 0.5, 0.6, 0.8, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0]
        .iter()
        .map(|&v| (v, h.cold_start_s(v).map_or(f64::NAN, |t| t * 1e3)))
        .collect()
}

/// Fig 15: `(snr_db, eco_ber, pab_ber)` Monte-Carlo over the actual ML
/// FM0 decoder. The SNR points are independent, so they fan out over
/// the worker pool with per-point seeds derived from one base — the
/// table is identical at any worker count.
pub fn fig15_data(profile: Profile, pool: &Pool) -> Vec<(f64, f64, f64)> {
    let snrs = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 15.0, 18.0];
    pool.par_map(&snrs, |i, &snr| {
        let bits = match profile {
            Profile::Full if snr >= 8.0 => 2_000_000,
            Profile::Full => 200_000,
            Profile::KickTires => 20_000,
        };
        let mut rng = StdRng::seed_from_u64(exec::seed::derive(15, i as u64));
        let eco = reader::rx::simulate_fm0_ber(snr, bits, &mut rng);
        let pab = baselines::pab::pab_ber(snr, bits, &mut rng);
        (snr, eco, pab)
    })
}

/// Fig 15 cross-check: framed replies through the *complete* receive
/// chain per noise level; returns `(label, sigma_v, frames_ok, trials)`.
pub fn fig15wave_data(profile: Profile) -> Vec<(&'static str, f64, usize, usize)> {
    use channel::uplink::{synthesize_uplink, UplinkConfig};
    use protocol::frame::Reply;
    use reader::rx::{Capture, Receiver};
    let cfg = UplinkConfig {
        delay_s: 0.0,
        ..UplinkConfig::paper_default()
    };
    let rx = Receiver::new(2e3);
    let trials = if profile.is_kick() { 10 } else { 40 };
    let mut rows = Vec::new();
    for (label, sigma) in [("quiet", 0.005), ("moderate", 0.03), ("heavy", 0.3)] {
        let mut ok = 0;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(1000 + t as u64);
            let reply = Reply::NodeId {
                id: 0xEC0 + t as u32,
            };
            let mut bits = phy::fm0::PREAMBLE_BITS.to_vec();
            bits.extend(reply.encode());
            let (samples, _) = synthesize_uplink(&cfg, &bits, 2e3, 1e-3, sigma, &mut rng);
            if rx.decode_reply(&Capture {
                samples,
                fs_hz: cfg.fs_hz,
            }) == Ok(reply)
            {
                ok += 1;
            }
        }
        rows.push((label, sigma, ok, trials));
    }
    rows
}

/// Fig 16: `(bitrate_bps, eco_db, pab_db, u2b_db)` rows plus the U²B
/// crossover bitrate (bps), if any.
#[allow(clippy::type_complexity)]
pub fn fig16_data() -> (Vec<(f64, f64, f64, f64)>, Option<f64>) {
    let mut rows = Vec::new();
    for r in [1e3, 2e3, 4e3, 6e3, 8e3, 10e3, 12e3, 13e3, 14e3, 15e3] {
        let (eco, pab, u2b) = ecocapsule::scenario::fig16_point(r);
        rows.push((r, eco, pab, u2b));
    }
    (rows, baselines::u2b::crossover_bps(16e3))
}

/// Fig 17: `(grade, throughput_bps)` per concrete grade.
pub fn fig17_data() -> Vec<(concrete::ConcreteGrade, f64)> {
    use concrete::ConcreteGrade;
    ConcreteGrade::ALL
        .iter()
        .map(|&g| (g, ecocapsule::scenario::throughput_for_grade(g)))
        .collect()
}

/// Fig 18: SNR percentiles `(band, p10, p50, p90)` per wall band (top /
/// middle / bottom), middle-band median calibrated to the paper's 7 dB.
#[must_use]
pub fn fig18_data() -> EcoResult<Vec<(&'static str, f64, f64, f64)>> {
    use channel::multipath::Wall2d;
    use dsp::stats::percentile;
    let mix = concrete::ConcreteGrade::Nc.mix();
    let wall = Wall2d::new(2.0, 2.0, mix.material().cs_m_s, mix.attenuation_s(), 230e3);
    let src = (0.1, 1.0);
    // Coherent superposition of S-reflections: positions inside each band
    // fade differently, producing the CDF spread the figure shows. All
    // bands keep a similar reader distance (~1 m), per the paper.
    let amplitudes = |y0: f64, y1: f64| -> Vec<f64> {
        let mut amps = Vec::new();
        for iy in 0..12 {
            for ix in 0..8 {
                let x = 0.95 + 0.012 * ix as f64;
                let y = y0 + (y1 - y0) * iy as f64 / 11.0;
                amps.push(wall.coherent_amplitude(src, (x, y), 4));
            }
        }
        amps
    };
    let top = amplitudes(1.85, 1.98);
    let middle = amplitudes(0.85, 1.15);
    let bottom = amplitudes(0.02, 0.15);
    // Calibrate the noise floor so the middle band's median lands at the
    // paper's 7 dB; the margin bands then fall where the physics puts them.
    let pct = |s: &[f64], p: f64| {
        percentile(s, p).ok_or(EcoError::EmptyInput {
            what: "fig18 SNR band",
        })
    };
    let mid_median = pct(&middle, 50.0)?;
    let floor = mid_median / 10f64.powf(7.0 / 20.0);
    let snrs =
        |amps: &[f64]| -> Vec<f64> { amps.iter().map(|&a| 20.0 * (a / floor).log10()).collect() };
    let mut rows = Vec::new();
    for (name, amps) in [("top", &top), ("middle", &middle), ("bottom", &bottom)] {
        let s = snrs(amps);
        rows.push((name, pct(&s, 10.0)?, pct(&s, 50.0)?, pct(&s, 90.0)?));
    }
    Ok(rows)
}

/// Fig 19: `(incident_deg, snr_db)` downlink sweep over prism angles.
pub fn fig19_data() -> Vec<(f64, f64)> {
    let ch = channel::downlink::DownlinkChannel::paper_default();
    ch.snr_vs_incident_angle(&[0.0, 15.0, 30.0, 45.0, 50.0, 60.0, 70.0, 75.0], 1e3)
}

/// Fig 20: `(bitrate_bps, fsk_db, ook_db)` downlink SNR per scheme.
pub fn fig20_data() -> Vec<(f64, f64, f64)> {
    use phy::modulation::DownlinkScheme;
    let ch = channel::downlink::DownlinkChannel::paper_default();
    let off = concrete::ConcreteGrade::Nc
        .mix()
        .off_resonant_frequency_hz();
    [1e3, 2e3, 4e3, 6e3, 8e3, 10e3]
        .iter()
        .map(|&r| {
            (
                r,
                ch.symbol_snr_db(r, DownlinkScheme::FskInOokOut { off_hz: off }),
                ch.symbol_snr_db(r, DownlinkScheme::Ook),
            )
        })
        .collect()
}

/// Fig 21 (+ Appendix D) outcome: pilot streams, anomaly window, and
/// section health.
#[derive(Debug, Clone)]
pub struct Fig21 {
    /// Daily RMS deck acceleration (m/s²) for July 2021.
    pub accel: Vec<(f64, f64)>,
    /// Daily stress variation (MPa).
    pub stress: Vec<(f64, f64)>,
    /// Days flagged anomalous on the acceleration channel.
    pub anomalies: Vec<f64>,
    /// Acceleration↔stress daily correlation.
    pub mutual_r: f64,
    /// Graded section statuses of the example frame.
    pub statuses: Vec<shm::health::SectionStatus>,
}

/// Fig 21: pilot-study streams, anomaly window, health grades.
pub fn fig21_data() -> Fig21 {
    use shm::footbridge::Section;
    use shm::health::grade_sections;
    use shm::pilot::{Channel, PilotStudy};
    let study = PilotStudy::new(2021_07);
    Fig21 {
        accel: study.daily_activity(Channel::Acceleration(1)),
        stress: study.daily_activity(Channel::Stress(1)),
        anomalies: study.detect_anomalies(Channel::Acceleration(1), 1.8),
        mutual_r: study.mutual_verification(Channel::Acceleration(1), Channel::Stress(1)),
        statuses: grade_sections(&[
            (Section::A, 1, 1.0),
            (Section::B, 3, 1.5),
            (Section::C, 1, 2.0),
            (Section::D, 3, 1.1),
            (Section::E, 0, 0.0),
        ]),
    }
}

/// Fig 22: the demodulated backscatter envelope `(t_s, mv)`.
pub fn fig22_data() -> Vec<(f64, f64)> {
    ecocapsule::scenario::fig22_waveform(4e-3, 1000.0, 18e-3)
}

/// Fig 24: `(freq_hz, power)` spectrum points around the carrier, on
/// the binary's decimated grid, plus the BLF (Hz) at 4 kbps.
#[must_use]
pub fn fig24_data() -> EcoResult<(Vec<(f64, f64)>, f64)> {
    use channel::uplink::{blf_hz, synthesize_uplink, UplinkConfig};
    use dsp::fft::power_spectrum;
    let cfg = UplinkConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(24);
    let bits = vec![false; 400];
    let bitrate = 4e3;
    let (y, _) = synthesize_uplink(&cfg, &bits, bitrate, 0.0, 0.001, &mut rng);
    let (freqs, power) = power_spectrum(&y, cfg.fs_hz)?;
    let mut rows = Vec::new();
    for (f, p) in freqs.iter().zip(&power) {
        if (190e3..=270e3).contains(f) && f % 2e3 < freqs[1] - freqs[0] {
            rows.push((*f, *p));
        }
    }
    Ok((rows, blf_hz(bitrate)))
}

/// Table 1: per-grade `(mix, derived material)` registry rows.
pub fn tab01_data() -> Vec<(concrete::ConcreteMix, elastic::Material)> {
    use concrete::ConcreteGrade;
    ConcreteGrade::ALL
        .iter()
        .map(|&g| {
            let m = g.mix();
            let mat = m.material();
            (m, mat)
        })
        .collect()
}

/// Table 2 region set, in table order.
pub fn tab02_regions() -> [(&'static str, shm::health::Region); 4] {
    use shm::health::Region;
    [
        ("US", Region::UnitedStates),
        ("HongKong", Region::HongKong),
        ("Bangkok", Region::Bangkok),
        ("Manila", Region::Manila),
    ]
}

/// Eqn 4 / §4.1: `(name, shell, density)` rating inputs.
pub fn eqn04_data() -> [(&'static str, node::shell::Shell, f64); 2] {
    use node::shell::Shell;
    [
        ("resin", Shell::paper_resin(), 2300.0),
        ("steel", Shell::paper_steel(), 2360.0),
    ]
}

/// Eqn 5: the paper-geometry HRA and its retuned twin, with the §3.3
/// shear speed they are evaluated at.
pub fn eqn05_data() -> (
    phy::hra::HelmholtzResonator,
    phy::hra::HelmholtzResonator,
    f64,
) {
    use phy::hra::HelmholtzResonator;
    let cs = 1941.0;
    let paper = HelmholtzResonator::paper_geometry();
    let tuned = paper.design_for(230e3, cs);
    (paper, tuned, cs)
}

/// The §6 pilot gate: the five-capsule footbridge wall surveyed through
/// the fleet engine, plus the Fig 21 anomaly cross-check.
#[derive(Debug, Clone)]
pub struct PilotOutcome {
    /// Implanted capsules on the pilot wall.
    pub capsules: usize,
    /// Capsules read end to end.
    pub read: usize,
    /// Sensor readings collected.
    pub readings: usize,
    /// The wall's deterministic result digest.
    pub wall_digest: u64,
    /// True when every detected anomalous day lies in the storm window.
    pub storm_contained: bool,
    /// Number of anomalous days detected.
    pub storm_days: usize,
    /// Acceleration↔stress mutual-verification correlation.
    pub mutual_r: f64,
}

/// Runs the standing footbridge pilot: one fleet round over the §6
/// wall, then the Appendix D storm cross-check.
#[must_use]
pub fn pilot_data() -> EcoResult<PilotOutcome> {
    use ecocapsule::scenario::CapsuleOutcome;
    use shm::pilot::{Channel, PilotStudy};
    let report = fleet::FleetOptions::new().run(vec![fleet::WallSpec::footbridge_pilot(42)])?;
    let wall = report.walls.first().ok_or(EcoError::EmptyInput {
        what: "pilot fleet walls",
    })?;
    let read = wall
        .report
        .outcomes
        .iter()
        .filter(|(_, o)| matches!(o, CapsuleOutcome::Read { .. }))
        .count();
    let study = PilotStudy::new(2021_07);
    let anomalies = study.detect_anomalies(Channel::Acceleration(1), 1.8);
    Ok(PilotOutcome {
        capsules: wall.report.outcomes.len(),
        read,
        readings: wall.report.readings.len(),
        wall_digest: wall.digest(),
        storm_contained: !anomalies.is_empty()
            && anomalies.iter().all(|&d| PilotStudy::in_storm(d)),
        storm_days: anomalies.len(),
        mutual_r: study.mutual_verification(Channel::Acceleration(1), Channel::Stress(1)),
    })
}

// ---------------------------------------------------------------------------
// The metric dispatcher for the repro gate.
// ---------------------------------------------------------------------------

/// Computes the repro-gate metrics for one experiment tag. Unknown tags
/// are a named error, never a panic — the manifest lint keeps the tag
/// set in sync with EXPERIMENTS.md.
#[must_use]
pub fn metrics(tag: &str, profile: Profile, pool: &Pool) -> EcoResult<Vec<Metric>> {
    match tag {
        "fig03a" => {
            let (alpha_deg, cone_cm3) = fig03a_data()?;
            Ok(vec![
                Metric::new("half_beam_angle_deg", alpha_deg),
                Metric::new("insonified_cone_cm3", cone_cm3),
            ])
        }
        "fig03b" => {
            let rows = fig03b_data()?;
            let bare = rows.first().map_or(f64::NAN, |r| r.1);
            let prism_250v = rows.last().map_or(f64::NAN, |r| r.2);
            Ok(vec![
                Metric::new("bare_pzt_coverage_pct", bare),
                Metric::new("prism_coverage_250v_pct", prism_250v),
            ])
        }
        "fig04" => {
            let (_, ca1_deg, ca2_deg) = fig04_data()?;
            Ok(vec![
                Metric::new("first_critical_angle_deg", ca1_deg),
                Metric::new("second_critical_angle_deg", ca2_deg),
            ])
        }
        "fig05" => {
            let (_, peaks) = fig05_data();
            let peak_v = |idx: usize| peaks.get(idx).map_or(f64::NAN, |p| p.1 / 1e3);
            let in_band = peaks
                .iter()
                .all(|&(_, _, f_hz)| (200e3..=250e3).contains(&f_hz));
            Ok(vec![
                Metric::new("nc_7cm_peak_v", peak_v(0)),
                Metric::new("nc_15cm_peak_v", peak_v(1)),
                Metric::new("uhpc_15cm_peak_v", peak_v(2)),
                Metric::new("uhpfrc_15cm_peak_v", peak_v(3)),
                Metric::flag("peaks_in_resonance_band", in_band),
            ])
        }
        "fig07" => {
            let d = fig07_data();
            Ok(vec![
                Metric::new("ook_tail_ms", d.tail_ook_s.map_or(f64::NAN, |t| t * 1e3)),
                Metric::new(
                    "fsk_suppression_ratio",
                    d.ook_low_edge_peak / d.fsk_low_edge_peak.max(1e-12),
                ),
            ])
        }
        "fig12" => {
            let at = |v: f64, col: usize| -> EcoResult<f64> {
                Ok(fig12_ranges_cm(v)?
                    .get(col)
                    .copied()
                    .flatten()
                    .unwrap_or(0.0))
            };
            // Columns: 0..=3 are S1..S4, 4/5 the PAB pools.
            let s2_200v = at(210.0, 1)?;
            let s3_50v = at(50.0, 2)?;
            let s3_200v = at(210.0, 2)?;
            let s3_max = at(250.0, 2)?;
            let s4_200v = at(210.0, 3)?;
            let p1_50v = at(50.0, 4)?;
            Ok(vec![
                Metric::new("s3_range_50v_cm", s3_50v),
                Metric::new("s3_range_200v_cm", s3_200v),
                Metric::new("s3_range_250v_cm", s3_max),
                Metric::new("pab_pool1_range_50v_cm", p1_50v),
                Metric::flag(
                    "ordering_s3_s4_s2_at_200v",
                    s3_200v > s4_200v && s4_200v > s2_200v,
                ),
            ])
        }
        "fig13" => {
            let rows = fig13_data();
            let at = |kbps: f64| {
                rows.iter()
                    .find(|(k, _)| (k - kbps).abs() < 1e-9)
                    .map_or(f64::NAN, |&(_, uw)| uw)
            };
            Ok(vec![
                Metric::new("standby_uw", at(0.0)),
                Metric::new("active_4kbps_uw", at(4.0)),
            ])
        }
        "fig14" => {
            let rows = fig14_data();
            let at = |v: f64| {
                rows.iter()
                    .find(|(x, _)| (x - v).abs() < 1e-9)
                    .map_or(f64::NAN, |&(_, ms)| ms)
            };
            Ok(vec![
                Metric::new("cold_start_0v5_ms", at(0.5)),
                Metric::new("cold_start_2v_ms", at(2.0)),
                Metric::flag("no_start_below_0v5", at(0.4).is_nan()),
            ])
        }
        "fig15" => {
            let rows = fig15_data(profile, pool);
            let at = |snr: f64| {
                rows.iter()
                    .find(|(s, _, _)| (s - snr).abs() < 1e-9)
                    .copied()
                    .unwrap_or((snr, f64::NAN, f64::NAN))
            };
            let (_, eco2, _) = at(2.0);
            let (_, eco8, pab8) = at(8.0);
            Ok(vec![
                Metric::new("eco_ber_2db", eco2),
                Metric::flag("waterfall_monotone", eco2 > eco8),
                Metric::new("eco_ber_8db", eco8),
                Metric::new("pab_over_eco_8db", pab8 / eco8.max(1e-6)),
            ])
        }
        "fig15wave" => {
            let rows = fig15wave_data(profile);
            let frac = |idx: usize| {
                rows.get(idx)
                    .map_or(f64::NAN, |&(_, _, ok, n)| ok as f64 / n as f64)
            };
            Ok(vec![
                Metric::new("quiet_frame_success", frac(0)),
                Metric::new("moderate_frame_success", frac(1)),
                Metric::new("heavy_frame_success", frac(2)),
            ])
        }
        "fig16" => {
            let (rows, crossover) = fig16_data();
            let eco_at = |bps: f64| {
                rows.iter()
                    .find(|(r, _, _, _)| (r - bps).abs() < 1e-9)
                    .map_or(f64::NAN, |&(_, eco, _, _)| eco)
            };
            Ok(vec![
                Metric::new("eco_snr_1kbps_db", eco_at(1e3)),
                Metric::new("eco_snr_13kbps_db", eco_at(13e3)),
                Metric::new(
                    "u2b_crossover_kbps",
                    crossover.map_or(f64::NAN, |x| x / 1e3),
                ),
            ])
        }
        "fig17" => {
            use concrete::ConcreteGrade;
            let rows = fig17_data();
            let of = |g: ConcreteGrade| {
                rows.iter()
                    .find(|(x, _)| *x == g)
                    .map_or(f64::NAN, |&(_, t)| t / 1e3)
            };
            let nc = of(ConcreteGrade::Nc);
            let uhpc = of(ConcreteGrade::Uhpc);
            let uhpfrc = of(ConcreteGrade::Uhpfrc);
            Ok(vec![
                Metric::new("nc_throughput_kbps", nc),
                Metric::new("uhpfrc_throughput_kbps", uhpfrc),
                Metric::flag("denser_concrete_carries_more", uhpc > nc && uhpfrc > nc),
            ])
        }
        "fig18" => {
            let rows = fig18_data()?;
            let p50 = |idx: usize| rows.get(idx).map_or(f64::NAN, |r| r.2);
            let (top, middle, bottom) = (p50(0), p50(1), p50(2));
            Ok(vec![
                Metric::new("middle_median_db", middle),
                Metric::new("margin_gain_db", top.min(bottom) - middle),
                Metric::flag("margins_beat_middle", top >= middle && bottom >= middle),
            ])
        }
        "fig19" => {
            let sweep = fig19_data();
            let at = |deg: f64| {
                sweep
                    .iter()
                    .find(|(a, _)| (a - deg).abs() < 1e-9)
                    .map_or(f64::NAN, |&(_, snr)| snr)
            };
            let (peak_deg, peak_db) =
                sweep
                    .iter()
                    .copied()
                    .fold((f64::NAN, f64::NEG_INFINITY), |(bd, bs), (d, s)| {
                        if s > bs {
                            (d, s)
                        } else {
                            (bd, bs)
                        }
                    });
            // Past the second critical angle the channel reports no
            // transmission at all (non-finite SNR) — that counts as dead.
            let past_ca2 = at(75.0);
            Ok(vec![
                Metric::new("peak_snr_db", peak_db),
                Metric::flag("peak_in_s_window", (40.0..=70.0).contains(&peak_deg)),
                Metric::flag(
                    "dead_past_ca2",
                    !past_ca2.is_finite() || past_ca2 <= peak_db - 20.0,
                ),
            ])
        }
        "fig20" => {
            let rows = fig20_data();
            let at = |bps: f64| {
                rows.iter()
                    .find(|(r, _, _)| (r - bps).abs() < 1e-9)
                    .copied()
                    .unwrap_or((bps, f64::NAN, f64::NAN))
            };
            let (_, fsk2, ook2) = at(2e3);
            let (_, fsk4, ook4) = at(4e3);
            Ok(vec![
                Metric::new("fsk_gain_2kbps_db", fsk2 - ook2),
                Metric::flag("ook_collapses_at_4kbps", fsk4 - ook4 >= 5.0),
            ])
        }
        "fig21" => {
            use shm::health::HealthLevel;
            use shm::pilot::PilotStudy;
            let d = fig21_data();
            let contained =
                !d.anomalies.is_empty() && d.anomalies.iter().all(|&x| PilotStudy::in_storm(x));
            let healthy = d
                .statuses
                .iter()
                .all(|s| matches!(s.health, HealthLevel::A | HealthLevel::B));
            Ok(vec![
                Metric::flag("storm_anomalies_contained", contained),
                Metric::new("mutual_verification_r", d.mutual_r),
                Metric::flag("sections_all_healthy", healthy),
            ])
        }
        "fig22" => {
            let w = fig22_data();
            let after: Vec<f64> = w
                .iter()
                .filter(|(t, _)| *t > 5e-3)
                .map(|(_, v)| *v)
                .collect();
            let hi = after.iter().copied().fold(f64::MIN, f64::max);
            let lo = after.iter().copied().fold(f64::MAX, f64::min);
            // Skip the first millisecond: the diode envelope is still
            // charging from zero there, which is detector start-up, not
            // backscatter modulation.
            let before: Vec<f64> = w
                .iter()
                .filter(|(t, _)| *t > 1e-3 && *t < 3.5e-3)
                .map(|(_, v)| *v)
                .collect();
            let bhi = before.iter().copied().fold(f64::MIN, f64::max);
            let blo = before.iter().copied().fold(f64::MAX, f64::min);
            Ok(vec![
                Metric::new("switch_contrast_mv", hi - lo),
                Metric::flag("cbw_only_before_switch", bhi - blo < (hi - lo) / 2.0),
            ])
        }
        "fig24" => {
            let (rows, blf) = fig24_data()?;
            let near = |target_hz: f64| {
                rows.iter()
                    .filter(|(f, _)| (f - target_hz).abs() < 1.5e3)
                    .map(|&(_, p)| p)
                    .fold(0.0f64, f64::max)
            };
            let sideband = near(230e3 + blf);
            let guard = near(230e3 + blf / 2.0).max(1e-18);
            Ok(vec![Metric::new(
                "sideband_over_guard_db",
                10.0 * (sideband / guard).log10(),
            )])
        }
        "tab01" => {
            use concrete::ConcreteGrade;
            let uhpfrc = ConcreteGrade::Uhpfrc.mix();
            let nc_mat = ConcreteGrade::Nc.mix().material();
            Ok(vec![
                Metric::new("uhpfrc_fco_mpa", uhpfrc.fco_mpa),
                Metric::new("nc_cp_m_s", nc_mat.cp_m_s),
            ])
        }
        "tab02" => {
            use shm::health::{HealthLevel, Region};
            let consistent = Region::UnitedStates.grade(3.5) == HealthLevel::B
                && Region::HongKong.grade(3.5) == HealthLevel::A
                && Region::Bangkok.grade(3.5) == HealthLevel::A;
            let monotone = tab02_regions().iter().all(|(_, r)| {
                let t = r.thresholds_m2_per_ped();
                t.windows(2).all(|w| w[0] > w[1])
            });
            Ok(vec![
                Metric::flag("regional_grades_differ", consistent),
                Metric::flag("thresholds_monotone", monotone),
            ])
        }
        "eqn04" => {
            let [(_, resin, rho_r), (_, steel, rho_s)] = eqn04_data();
            Ok(vec![
                Metric::new("resin_dp_max_mpa", resin.dp_max_pa() / 1e6),
                Metric::new("resin_h_max_m", resin.max_building_height_m(rho_r)),
                Metric::new("steel_dp_max_mpa", steel.dp_max_pa() / 1e6),
                Metric::new("steel_h_max_m", steel.max_building_height_m(rho_s)),
            ])
        }
        "eqn05" => {
            let (paper, tuned, cs) = eqn05_data();
            Ok(vec![
                Metric::new("paper_geometry_khz", paper.resonant_frequency_hz(cs) / 1e3),
                Metric::new("retuned_khz", tuned.resonant_frequency_hz(cs) / 1e3),
            ])
        }
        "pilot" => {
            let p = pilot_data()?;
            Ok(vec![
                Metric::new(
                    "capsules_read_fraction",
                    p.read as f64 / p.capsules.max(1) as f64,
                ),
                Metric::new("readings", p.readings as f64),
                Metric::flag("storm_anomalies_contained", p.storm_contained),
                Metric::new("mutual_verification_r", p.mutual_r),
            ])
        }
        _ => Err(EcoError::Protocol {
            what: "unknown experiment tag",
        }),
    }
}

/// Formats one Fig 12 row of the table the binary prints.
#[must_use]
pub fn fig12_row_strings(v: f64, row: &[Option<f64>]) -> Vec<String> {
    let mut out = vec![fmt(v, 0)];
    out.extend(row.iter().map(|r| r.map_or("-".into(), |cm| fmt(cm, 0))));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_tag_yields_metrics() {
        let pool = Pool::serial();
        for tag in FIGURE_TAGS {
            // fig15 Monte-Carlo is the slow one; kick scale keeps this
            // suite fast while exercising the same code path.
            let ms = metrics(tag, Profile::KickTires, &pool).expect(tag);
            assert!(!ms.is_empty(), "{tag} produced no metrics");
            for m in &ms {
                assert!(
                    m.value.is_finite(),
                    "{tag}/{} is not finite: {}",
                    m.name,
                    m.value
                );
            }
        }
    }

    #[test]
    fn unknown_tag_is_a_named_error() {
        let pool = Pool::serial();
        assert!(metrics("fig99", Profile::KickTires, &pool).is_err());
    }

    #[test]
    fn metric_names_are_unique_per_tag() {
        let pool = Pool::serial();
        for tag in ["fig04", "fig13", "tab01"] {
            let ms = metrics(tag, Profile::KickTires, &pool).expect(tag);
            let mut names: Vec<_> = ms.iter().map(|m| m.name).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), ms.len(), "{tag} repeats a metric name");
        }
    }
}

//! The fault-matrix bench: fault intensity × retry policy, with
//! serial-vs-parallel digest identity and a recovery proof.
//!
//! Each cell of the matrix runs a batch of full wall surveys
//! ([`SelfSensingWall::run_survey`] with a fault plan installed via
//! [`SurveyOptions::fault_plan`]) on a [`FaultPlan`] generated at
//! one of the standard intensity presets, under either the no-retry
//! baseline or the backoff-retry policy. Seeds are paired: the same
//! `(intensity, survey)` pair sees the *identical* fault schedule and
//! survey RNG under both policies, so the per-intensity recovery rows
//! measure exactly what the retry layer buys and nothing else.
//!
//! Two invariants are enforced by [`run_matrix`] (and therefore by the
//! CI smoke gate that runs the `faults` binary):
//!
//! - **Determinism** — every cell is executed twice, once on
//!   [`Pool::serial`] and once on the given parallel pool; the FNV-1a
//!   digest over all [`SurveyReport::digest`]s must match bit-for-bit.
//! - **Recovery** — summed over the faulted intensities, the retry
//!   policy must read *strictly more* capsules than the no-retry
//!   baseline. A refactor that quietly breaks backoff (or makes faults
//!   toothless) fails the bench instead of shipping.
//!
//! The emitted `BENCH_faults.json` (schema `ecocapsule-bench-faults/1`)
//! is committed at the repo root next to `BENCH_sweeps.json`.

use crate::sweeps::fnv1a64;
use dsp::{EcoError, EcoResult};
use ecocapsule::prelude::*;
use ecocapsule::scenario::CapsuleOutcome;
use exec::Pool;
use faults::FaultIntensity;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fixed matrix seed: the fault trajectory must be comparable across
/// commits, like the sweep grids.
const MATRIX_SEED: u64 = 0xFA01_7E57;

/// Drive voltage for every survey — enough to power the whole standoff
/// set on a calm channel, so every lost capsule is the fault plan's
/// doing.
const DRIVE_V: f64 = 200.0;

/// Matrix size: [`FaultScale::full`] for the committed trajectory,
/// [`FaultScale::smoke`] for the CI gate.
#[derive(Debug, Clone, Copy)]
pub struct FaultScale {
    /// Surveys per matrix cell.
    pub surveys_per_cell: usize,
    /// Fault-plan horizon (slots) the windows are drawn over.
    pub horizon_slots: u64,
    /// Capsule standoffs of the surveyed wall (m).
    pub standoffs: &'static [f64],
    /// True for the reduced CI profile (fewer intensities and surveys).
    pub smoke: bool,
}

impl FaultScale {
    /// The committed-trajectory profile. The horizon is sized to the
    /// slots a survey of this wall actually consumes (charge + a few
    /// inventory rounds + retried reads) — windows drawn far past the
    /// last consumed slot would never perturb anything.
    #[must_use]
    pub fn full() -> Self {
        FaultScale {
            surveys_per_cell: 4,
            horizon_slots: 60,
            standoffs: &[0.5, 1.0, 1.5],
            smoke: false,
        }
    }

    /// The CI profile: two intensities, small batch.
    #[must_use]
    pub fn smoke() -> Self {
        FaultScale {
            surveys_per_cell: 2,
            horizon_slots: 40,
            standoffs: &[0.5, 1.0],
            smoke: true,
        }
    }

    /// The intensity presets this profile sweeps.
    #[must_use]
    pub fn intensities(&self) -> Vec<(&'static str, fn(u64) -> FaultIntensity)> {
        let all: Vec<(&'static str, fn(u64) -> FaultIntensity)> = vec![
            ("calm", FaultIntensity::calm),
            ("mild", FaultIntensity::mild),
            ("moderate", FaultIntensity::moderate),
            ("severe", FaultIntensity::severe),
        ];
        if self.smoke {
            all.into_iter()
                .filter(|(name, _)| *name == "calm" || *name == "severe")
                .collect()
        } else {
            all
        }
    }
}

/// The retry-policy axis of the matrix.
#[must_use]
pub fn policies() -> [(&'static str, RetryPolicy); 2] {
    [
        ("no-retry", RetryPolicy::none()),
        ("retry", RetryPolicy::paper_default()),
    ]
}

/// Aggregated outcome counts of one cell's survey batch.
#[derive(Debug, Clone, Copy, Default)]
struct OutcomeCounts {
    read: usize,
    unpowered: usize,
    collision_exhausted: usize,
    decode_failed: usize,
    readings: usize,
}

/// One matrix cell: `(intensity, policy)` over the survey batch.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Intensity preset name.
    pub intensity: &'static str,
    /// Policy name (`no-retry` / `retry`).
    pub policy: &'static str,
    /// Surveys in the batch.
    pub surveys: usize,
    /// Capsule slots surveyed (surveys × capsules per wall).
    pub capsules: usize,
    /// Capsules that delivered at least one reading.
    pub capsules_read: usize,
    /// Capsules that never powered (including charge-phase brownouts).
    pub capsules_unpowered: usize,
    /// Capsules powered but never inventoried.
    pub capsules_collision_exhausted: usize,
    /// Capsules inventoried but with every read undecodable.
    pub capsules_decode_failed: usize,
    /// Total sensor readings delivered.
    pub readings: usize,
    /// FNV-1a over the batch's report digests, serial pass.
    pub digest_serial: u64,
    /// Same, parallel pass.
    pub digest_parallel: u64,
}

impl MatrixCell {
    /// Whether the parallel pass reproduced the serial pass exactly.
    #[must_use]
    pub fn bit_identical(&self) -> bool {
        self.digest_serial == self.digest_parallel
    }
}

/// Per-intensity paired comparison of the two policies.
#[derive(Debug, Clone)]
pub struct RecoveryRow {
    /// Intensity preset name.
    pub intensity: &'static str,
    /// Capsules read under the retry policy.
    pub capsules_read_retry: usize,
    /// Capsules read under the no-retry baseline.
    pub capsules_read_no_retry: usize,
    /// Readings delivered under the retry policy.
    pub readings_retry: usize,
    /// Readings delivered under the no-retry baseline.
    pub readings_no_retry: usize,
}

impl RecoveryRow {
    /// Extra capsules the retry policy recovered.
    #[must_use]
    pub fn capsules_delta(&self) -> i64 {
        self.capsules_read_retry as i64 - self.capsules_read_no_retry as i64
    }

    /// Extra sensor readings the retry policy recovered.
    #[must_use]
    pub fn readings_delta(&self) -> i64 {
        self.readings_retry as i64 - self.readings_no_retry as i64
    }
}

/// The full matrix result.
#[derive(Debug, Clone)]
pub struct FaultMatrix {
    /// All `(intensity × policy)` cells.
    pub cells: Vec<MatrixCell>,
    /// One paired recovery row per intensity.
    pub recovery: Vec<RecoveryRow>,
}

impl FaultMatrix {
    /// Extra capsules recovered by retries, summed over the *faulted*
    /// intensities (calm is excluded: with no faults the policies tie
    /// by construction).
    #[must_use]
    pub fn recovered_capsules_delta(&self) -> i64 {
        self.recovery
            .iter()
            .filter(|r| r.intensity != "calm")
            .map(RecoveryRow::capsules_delta)
            .sum()
    }

    /// Extra sensor readings recovered by retries over the faulted
    /// intensities — the enforced recovery invariant. Readings are the
    /// finer-grained witness: a capsule counts as "read" if *any* of
    /// its three sensors decoded, so short fault windows that eat one
    /// read out of three show up here first.
    #[must_use]
    pub fn recovered_readings_delta(&self) -> i64 {
        self.recovery
            .iter()
            .filter(|r| r.intensity != "calm")
            .map(RecoveryRow::readings_delta)
            .sum()
    }
}

/// Runs one cell's survey batch on `pool`. Seeds depend only on
/// `(intensity_idx, survey)` so both policies face identical plans.
fn run_cell(
    scale: &FaultScale,
    intensity_idx: usize,
    intensity: fn(u64) -> FaultIntensity,
    policy: &RetryPolicy,
    pool: &Pool,
) -> EcoResult<(OutcomeCounts, u64)> {
    let mut counts = OutcomeCounts::default();
    let mut digest_words: Vec<u64> = Vec::with_capacity(scale.surveys_per_cell);
    for survey in 0..scale.surveys_per_cell {
        let pair_seed = exec::seed::derive(MATRIX_SEED, (intensity_idx * 1009 + survey) as u64);
        let plan = FaultPlan::generate(
            exec::seed::derive(pair_seed, 0),
            &intensity(scale.horizon_slots),
        );
        let mut rng = StdRng::seed_from_u64(exec::seed::derive(pair_seed, 1));
        let mut wall = SelfSensingWall::common_wall(scale.standoffs);
        let report = SurveyOptions::new()
            .tx_voltage(DRIVE_V)
            .fault_plan(&plan)
            .retry_policy(*policy)
            .pool(*pool)
            .run(&mut wall, &mut rng)?;
        for (_, outcome) in &report.outcomes {
            match outcome {
                CapsuleOutcome::Read { .. } => counts.read += 1,
                CapsuleOutcome::Unpowered => counts.unpowered += 1,
                CapsuleOutcome::CollisionExhausted => counts.collision_exhausted += 1,
                CapsuleOutcome::DecodeFailed { .. } => counts.decode_failed += 1,
            }
        }
        counts.readings += report.readings.len();
        digest_words.push(report.digest());
    }
    Ok((counts, fnv1a64(digest_words)))
}

/// Runs the whole matrix: every `(intensity, policy)` cell twice
/// (serial and on `pool`), then checks both invariants — digest
/// identity per cell, and a strictly positive recovery delta over the
/// faulted intensities.
#[must_use]
pub fn run_matrix(scale: &FaultScale, pool: &Pool) -> EcoResult<FaultMatrix> {
    let mut cells = Vec::new();
    let mut recovery = Vec::new();
    for (intensity_idx, (intensity_name, intensity)) in scale.intensities().iter().enumerate() {
        let mut reads_by_policy: Vec<(usize, usize)> = Vec::new();
        for (policy_name, policy) in policies() {
            let (counts, digest_serial) =
                run_cell(scale, intensity_idx, *intensity, &policy, &Pool::serial())?;
            let (_, digest_parallel) = run_cell(scale, intensity_idx, *intensity, &policy, pool)?;
            reads_by_policy.push((counts.read, counts.readings));
            cells.push(MatrixCell {
                intensity: intensity_name,
                policy: policy_name,
                surveys: scale.surveys_per_cell,
                capsules: scale.surveys_per_cell * scale.standoffs.len(),
                capsules_read: counts.read,
                capsules_unpowered: counts.unpowered,
                capsules_collision_exhausted: counts.collision_exhausted,
                capsules_decode_failed: counts.decode_failed,
                readings: counts.readings,
                digest_serial,
                digest_parallel,
            });
        }
        recovery.push(RecoveryRow {
            intensity: intensity_name,
            capsules_read_no_retry: reads_by_policy[0].0,
            readings_no_retry: reads_by_policy[0].1,
            capsules_read_retry: reads_by_policy[1].0,
            readings_retry: reads_by_policy[1].1,
        });
    }
    Ok(FaultMatrix { cells, recovery })
}

/// One representative faulted survey (the matrix's first moderate
/// retry cell, serial) recorded as JSON lines, for `--trace`.
#[must_use]
pub fn trace_jsonl(scale: &FaultScale) -> EcoResult<String> {
    let pair_seed = exec::seed::derive(MATRIX_SEED, 0);
    let plan = FaultPlan::generate(
        exec::seed::derive(pair_seed, 0),
        &FaultIntensity::moderate(scale.horizon_slots),
    );
    let mut rng = StdRng::seed_from_u64(exec::seed::derive(pair_seed, 1));
    let mut wall = SelfSensingWall::common_wall(scale.standoffs);
    let mut rec = MemoryRecorder::new();
    SurveyOptions::new()
        .tx_voltage(DRIVE_V)
        .fault_plan(&plan)
        .retry_policy(RetryPolicy::paper_default())
        .recorder(&mut rec)
        .run(&mut wall, &mut rng)?;
    Ok(rec.to_jsonl())
}

/// Checks the two matrix invariants: per-cell serial/parallel digest
/// identity, and a strictly positive retry-recovery delta over the
/// faulted intensities.
#[must_use]
pub fn verify(matrix: &FaultMatrix) -> EcoResult<()> {
    for cell in &matrix.cells {
        if !cell.bit_identical() {
            return Err(EcoError::Numerical {
                what: "parallel fault survey diverged from serial digest",
            });
        }
    }
    if matrix.recovered_readings_delta() <= 0 {
        return Err(EcoError::Numerical {
            what: "retry policy recovered no readings over the no-retry baseline",
        });
    }
    if matrix.recovered_capsules_delta() < 0 {
        return Err(EcoError::Numerical {
            what: "retry policy lost whole capsules vs the no-retry baseline",
        });
    }
    Ok(())
}

/// Renders the matrix as `BENCH_faults.json` (schema
/// `ecocapsule-bench-faults/1`). Hand-rolled, like the sweep emitter —
/// the workspace is hermetic, so no serde.
#[must_use]
pub fn to_json(matrix: &FaultMatrix, pool: &Pool, scale: &FaultScale) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"ecocapsule-bench-faults/1\",\n");
    out.push_str(&format!("  \"pool_workers\": {},\n", pool.workers()));
    out.push_str(&format!("  \"smoke\": {},\n", scale.smoke));
    out.push_str(&format!(
        "  \"surveys_per_cell\": {},\n",
        scale.surveys_per_cell
    ));
    out.push_str(&format!("  \"horizon_slots\": {},\n", scale.horizon_slots));
    out.push_str("  \"cells\": [\n");
    for (k, c) in matrix.cells.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"intensity\": \"{}\",\n", c.intensity));
        out.push_str(&format!("      \"policy\": \"{}\",\n", c.policy));
        out.push_str(&format!("      \"surveys\": {},\n", c.surveys));
        out.push_str(&format!("      \"capsules\": {},\n", c.capsules));
        out.push_str(&format!("      \"capsules_read\": {},\n", c.capsules_read));
        out.push_str(&format!(
            "      \"capsules_unpowered\": {},\n",
            c.capsules_unpowered
        ));
        out.push_str(&format!(
            "      \"capsules_collision_exhausted\": {},\n",
            c.capsules_collision_exhausted
        ));
        out.push_str(&format!(
            "      \"capsules_decode_failed\": {},\n",
            c.capsules_decode_failed
        ));
        out.push_str(&format!("      \"readings\": {},\n", c.readings));
        out.push_str(&format!(
            "      \"bit_identical\": {},\n",
            c.bit_identical()
        ));
        out.push_str(&format!(
            "      \"digest\": \"{:#018x}\"\n",
            c.digest_serial
        ));
        out.push_str(if k + 1 == matrix.cells.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"recovery\": [\n");
    for (k, r) in matrix.recovery.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"intensity\": \"{}\",\n", r.intensity));
        out.push_str(&format!(
            "      \"capsules_read_retry\": {},\n",
            r.capsules_read_retry
        ));
        out.push_str(&format!(
            "      \"capsules_read_no_retry\": {},\n",
            r.capsules_read_no_retry
        ));
        out.push_str(&format!(
            "      \"readings_retry\": {},\n",
            r.readings_retry
        ));
        out.push_str(&format!(
            "      \"readings_no_retry\": {},\n",
            r.readings_no_retry
        ));
        out.push_str(&format!(
            "      \"capsules_delta\": {},\n",
            r.capsules_delta()
        ));
        out.push_str(&format!(
            "      \"readings_delta\": {}\n",
            r.readings_delta()
        ));
        out.push_str(if k + 1 == matrix.recovery.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"recovered_capsules_delta\": {},\n",
        matrix.recovered_capsules_delta()
    ));
    out.push_str(&format!(
        "  \"recovered_readings_delta\": {}\n",
        matrix.recovered_readings_delta()
    ));
    out.push_str("}\n");
    out
}

//! The fleet bench: scheduler scaling vs. wall count, plus the fleet
//! determinism invariants — for every wall count in the grid, the fleet
//! digest must be identical serial vs. parallel and across a
//! checkpoint/resume split at the run's midpoint.
//!
//! Each grid point builds a mixed city block: capsule counts cycling
//! 0/1/2, every third wall on a faulted channel, and (in the full
//! profile's largest fleet) the §6 footbridge pilot as one wall among
//! many. The emitted `BENCH_fleet.json` (schema `ecocapsule-bench-fleet/1`)
//! is committed at the repo root next to the other bench artifacts; CI
//! re-runs the smoke profile and gates on [`verify`].

use dsp::{EcoError, EcoResult};
use exec::Pool;
use faults::{FaultIntensity, FaultPlan};
use fleet::{Fleet, FleetCheckpoint, FleetOptions, WallSpec};
use std::time::Instant;

/// Fixed bench seed, like the sweep grids: digests must be comparable
/// across commits.
const FLEET_SEED: u64 = 0xF1EE_7000;

/// Fault-plan horizon (slots) for the faulted walls.
const HORIZON_SLOTS: u64 = 200;

/// Bench size: [`FleetScale::full`] for the committed summary,
/// [`FleetScale::smoke`] for the CI gate.
#[derive(Debug, Clone, Copy)]
pub struct FleetScale {
    /// Fleet sizes (wall counts) to scale across.
    pub wall_counts: &'static [usize],
    /// Whether the largest fleet includes the five-capsule footbridge
    /// pilot wall.
    pub with_pilot: bool,
    /// True for the reduced CI profile.
    pub smoke: bool,
}

impl FleetScale {
    /// The committed-summary profile.
    #[must_use]
    pub fn full() -> Self {
        FleetScale {
            wall_counts: &[2, 4, 8, 12],
            with_pilot: true,
            smoke: false,
        }
    }

    /// The CI profile: fewer, smaller fleets, same invariants.
    #[must_use]
    pub fn smoke() -> Self {
        FleetScale {
            wall_counts: &[2, 8],
            with_pilot: false,
            smoke: true,
        }
    }
}

/// The mixed city block surveyed at every grid point: wall `i` gets
/// `i % 3` capsules and every third wall a faulted channel. With
/// `pilot` the last wall is the §6 footbridge pilot.
#[must_use]
pub fn city_block(walls: usize, pilot: bool) -> Vec<WallSpec> {
    let mut specs: Vec<WallSpec> = (0..walls)
        .map(|i| {
            let standoffs: Vec<f64> = (0..i % 3).map(|c| 0.4 + 0.3 * c as f64).collect();
            let spec = WallSpec::new(format!("wall-{i}"), standoffs).seed(FLEET_SEED ^ (i as u64));
            if i % 3 == 1 {
                spec.fault_plan(FaultPlan::generate(
                    FLEET_SEED.wrapping_add(i as u64),
                    &FaultIntensity::mild(HORIZON_SLOTS),
                ))
            } else {
                spec
            }
        })
        .collect();
    if pilot && walls > 0 {
        specs[walls - 1] = WallSpec::footbridge_pilot(FLEET_SEED);
    }
    specs
}

/// One grid point: a fleet of `walls` run serial, parallel, and resumed
/// from a mid-run checkpoint.
#[derive(Debug, Clone)]
pub struct FleetRow {
    /// Fleet size (walls).
    pub walls: usize,
    /// Total capsules across the fleet.
    pub capsules: usize,
    /// Scheduling rounds the run took.
    pub rounds: u64,
    /// Serial wall-clock (ms).
    pub serial_ms: f64,
    /// Parallel wall-clock (ms).
    pub parallel_ms: f64,
    /// `serial_ms / parallel_ms`.
    pub speedup: f64,
    /// The serial run's fleet digest.
    pub digest: u64,
    /// Parallel digest equals the serial digest.
    pub parallel_identical: bool,
    /// Checkpoint/resume digest equals the serial digest.
    pub resume_identical: bool,
    /// Round the checkpoint was taken at (the midpoint).
    pub checkpoint_round: u64,
}

/// The full fleet bench result.
#[derive(Debug, Clone)]
pub struct FleetBenchReport {
    /// One row per wall count, in grid order.
    pub rows: Vec<FleetRow>,
}

/// Runs a fleet halfway, checkpoints it through the byte format, and
/// finishes the run from the decoded checkpoint.
fn resumed_digest(
    specs: Vec<WallSpec>,
    options: &FleetOptions,
    total_rounds: u64,
) -> EcoResult<(u64, u64)> {
    let split = total_rounds / 2;
    let mut fleet = Fleet::new(specs.clone(), options);
    for _ in 0..split {
        if !fleet.is_done() {
            fleet.run_round()?;
        }
    }
    let bytes = fleet.checkpoint()?.to_bytes();
    let checkpoint = FleetCheckpoint::from_bytes(&bytes)?;
    let report = Fleet::resume(specs, options, &checkpoint)?.run_to_completion()?;
    Ok((report.digest(), split))
}

/// Runs the grid: for every wall count, serial vs. parallel vs.
/// checkpoint/resume, timing the first two.
#[must_use]
pub fn run_fleet_bench(scale: &FleetScale, pool: &Pool) -> EcoResult<FleetBenchReport> {
    let options = FleetOptions::new().quantum_slots(32).round_budget_slots(96);
    let mut rows = Vec::new();
    for &walls in scale.wall_counts {
        let pilot =
            scale.with_pilot && walls == scale.wall_counts.iter().copied().max().unwrap_or(0);
        let specs = city_block(walls, pilot);
        let capsules = specs.iter().map(|s| s.standoffs_m.len()).sum();

        let t0 = Instant::now();
        let serial = options.run(specs.clone())?;
        let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let parallel = options.pool(*pool).run(specs.clone())?;
        let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;

        let (resume_digest, checkpoint_round) = resumed_digest(specs, &options, serial.rounds)?;

        rows.push(FleetRow {
            walls,
            capsules,
            rounds: serial.rounds,
            serial_ms,
            parallel_ms,
            speedup: serial_ms / parallel_ms.max(1e-9),
            digest: serial.digest(),
            parallel_identical: parallel.digest() == serial.digest(),
            resume_identical: resume_digest == serial.digest(),
            checkpoint_round,
        });
    }
    Ok(FleetBenchReport { rows })
}

/// Checks the bench invariants: every row's parallel and resumed
/// digests match its serial digest, and fleets actually scheduled work.
#[must_use]
pub fn verify(report: &FleetBenchReport) -> EcoResult<()> {
    if report.rows.is_empty() {
        return Err(EcoError::Numerical {
            what: "fleet bench produced no rows",
        });
    }
    for row in &report.rows {
        if row.rounds == 0 {
            return Err(EcoError::Numerical {
                what: "fleet run consumed no scheduling rounds",
            });
        }
        if !row.parallel_identical {
            return Err(EcoError::Numerical {
                what: "parallel fleet digest diverged from serial digest",
            });
        }
        if !row.resume_identical {
            return Err(EcoError::Numerical {
                what: "resumed fleet digest diverged from uninterrupted digest",
            });
        }
    }
    Ok(())
}

/// Renders the report as `BENCH_fleet.json` (schema
/// `ecocapsule-bench-fleet/1`). Hand-rolled, like the other bench
/// emitters — the workspace is hermetic, so no serde.
#[must_use]
pub fn to_json(report: &FleetBenchReport, pool: &Pool, scale: &FleetScale) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"ecocapsule-bench-fleet/1\",\n");
    out.push_str(&format!("  \"pool_workers\": {},\n", pool.workers()));
    out.push_str(&format!("  \"smoke\": {},\n", scale.smoke));
    out.push_str(&format!("  \"with_pilot\": {},\n", scale.with_pilot));
    out.push_str("  \"rows\": [\n");
    for (k, r) in report.rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"walls\": {},\n", r.walls));
        out.push_str(&format!("      \"capsules\": {},\n", r.capsules));
        out.push_str(&format!("      \"rounds\": {},\n", r.rounds));
        out.push_str(&format!("      \"serial_ms\": {:.3},\n", r.serial_ms));
        out.push_str(&format!("      \"parallel_ms\": {:.3},\n", r.parallel_ms));
        out.push_str(&format!("      \"speedup\": {:.3},\n", r.speedup));
        out.push_str(&format!("      \"digest\": \"{:#018x}\",\n", r.digest));
        out.push_str(&format!(
            "      \"parallel_identical\": {},\n",
            r.parallel_identical
        ));
        out.push_str(&format!(
            "      \"resume_identical\": {},\n",
            r.resume_identical
        ));
        out.push_str(&format!(
            "      \"checkpoint_round\": {}\n",
            r.checkpoint_round
        ));
        out.push_str(if k + 1 == report.rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

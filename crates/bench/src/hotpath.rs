//! The hot-path microbenchmark: per-stage ns/sample of the scalar survey
//! kernels against their batched [`dsp::batch`] counterparts, with
//! bit-identity checks and `BENCH_hotpath.json` emission.
//!
//! Four stages cover the survey inner loop end to end (DESIGN.md §8):
//!
//! * `synth` — FM0 uplink waveform synthesis:
//!   [`channel::uplink::synthesize_uplink`] vs the tone-bank path of
//!   [`channel::uplink::synthesize_uplink_with`]. Timed noiseless so the
//!   stage isolates the sin-vs-lookup kernel (the noise branch draws the
//!   identical RNG stream under both engines); the identity pass *does*
//!   add noise and folds the post-call RNG position into the checksum.
//! * `ddc` — baseband envelope extraction:
//!   [`dsp::ddc::baseband_magnitude`] (allocating) vs a reused
//!   [`dsp::batch::DdcScratch`].
//! * `decode` — preamble correlation: [`dsp::correlate::best_match`]
//!   (full `O(lags × template)` scan) vs the run-length prescanned
//!   [`dsp::batch::best_match_exact`].
//! * `harvest` — storage-capacitor integration:
//!   per-capsule [`node::harvester::Harvester::simulate_store`] vs the
//!   lane-structured [`node::harvester::Harvester::simulate_store_lanes`].
//!
//! Every stage checksums the full numeric output of both passes
//! (FNV-1a over the IEEE-754 bit patterns); [`run_all`] returns an error
//! if any stage's batched output is not bit-identical to its scalar
//! output, and CI runs the `--smoke` profile of the `hotpath` binary so
//! the identity contract and the JSON schema cannot silently rot.
//!
//! The emitted `BENCH_hotpath.json` (schema `ecocapsule-bench-hotpath/1`)
//! lives at the repo root next to `BENCH_sweeps.json`, one file per run,
//! safe to diff across commits.

use crate::sweeps::fnv1a64;
use channel::uplink::{synthesize_uplink, synthesize_uplink_with, UplinkConfig};
use dsp::batch::Engine;
use dsp::{EcoError, EcoResult};
use node::harvester::Harvester;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Fixed stage seed: hot-path numbers are a regression trajectory, so
/// runs must be comparable across commits.
const STAGE_SEED: u64 = 0x1107_BA7C;

/// One-pole smoothing constant used by the `ddc` stage (matches the
/// reader's envelope tracker time scale).
const DDC_TAU_S: f64 = 30e-6;

/// Sizes of every stage; [`Scale::full`] for the committed trajectory,
/// [`Scale::smoke`] for the CI gate.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Payload bits per synthesized capture (sets the waveform length).
    pub synth_bits: usize,
    /// Timed repetitions of the `synth` and `ddc` stages.
    pub wave_reps: usize,
    /// Baseband samples fed to the `decode` correlators.
    pub decode_len: usize,
    /// Timed repetitions of the `decode` stage.
    pub decode_reps: usize,
    /// Capsule lanes simulated by the `harvest` stage.
    pub harvest_lanes: usize,
    /// Timed repetitions of the `harvest` stage.
    pub harvest_reps: usize,
    /// True when this is the reduced CI profile.
    pub smoke: bool,
}

impl Scale {
    /// The committed-trajectory profile (a few seconds per stage).
    #[must_use]
    pub fn full() -> Self {
        Scale {
            synth_bits: 192,
            wave_reps: 10,
            decode_len: 60_000,
            decode_reps: 3,
            harvest_lanes: 24,
            harvest_reps: 10,
            smoke: false,
        }
    }

    /// The CI profile: every stage shrunk to tens of milliseconds.
    #[must_use]
    pub fn smoke() -> Self {
        Scale {
            synth_bits: 24,
            wave_reps: 2,
            decode_len: 10_000,
            decode_reps: 1,
            harvest_lanes: 6,
            harvest_reps: 2,
            smoke: true,
        }
    }
}

/// Scalar-vs-batched timing of one hot-path stage.
#[derive(Debug, Clone)]
pub struct StageResult {
    /// Stage name (stable across commits; keys the JSON).
    pub name: &'static str,
    /// Samples processed per timed pass.
    pub samples_per_pass: usize,
    /// Timed repetitions per engine.
    pub reps: usize,
    /// Scalar-engine cost (ns per sample).
    pub serial_ns_per_sample: f64,
    /// Batched-engine cost (ns per sample).
    pub batched_ns_per_sample: f64,
    /// FNV-1a checksum of the scalar pass output.
    pub checksum_serial: u64,
    /// FNV-1a checksum of the batched pass output.
    pub checksum_batched: u64,
}

impl StageResult {
    /// Scalar ns/sample divided by batched ns/sample.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.batched_ns_per_sample > 0.0 {
            self.serial_ns_per_sample / self.batched_ns_per_sample
        } else {
            1.0
        }
    }

    /// Whether both engines produced exactly the same bytes.
    #[must_use]
    pub fn bit_identical(&self) -> bool {
        self.checksum_serial == self.checksum_batched
    }
}

/// Times `reps` calls of `kernel` and returns `(ns_per_sample, output)`
/// where the per-sample cost divides by `samples × reps` and the output
/// is the final repetition's (every repetition computes the same value —
/// the kernels are deterministic). One untimed warm-up call populates
/// the shared tone-bank / plan caches (the batched engine amortizes them
/// across a session) and faults in the inputs; checksum digestion
/// happens outside the clock so both engines are measured on kernel
/// work alone.
fn time_kernel<T>(reps: usize, samples: usize, mut kernel: impl FnMut() -> T) -> (f64, T) {
    let mut out = kernel();
    let t0 = Instant::now();
    for _ in 0..reps {
        out = std::hint::black_box(kernel());
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let ns = wall_s * 1e9 / (samples.max(1) * reps.max(1)) as f64;
    (ns, out)
}

/// Stage 1 — `synth`: uplink waveform synthesis, scalar sin evaluation
/// vs shared tone banks. The identity pass runs both engines once with
/// noise on paired RNGs and folds the post-call RNG position into the
/// checksums, so a diverging noise branch fails the identity gate even
/// though the timed passes are noiseless.
#[must_use]
pub fn synth_stage(scale: &Scale) -> StageResult {
    let cfg = UplinkConfig::paper_default();
    let bits: Vec<bool> = {
        let mut rng = StdRng::seed_from_u64(STAGE_SEED);
        (0..scale.synth_bits).map(|_| rng.gen_bool(0.5)).collect()
    };
    let mut rng = StdRng::seed_from_u64(STAGE_SEED);
    let (probe, _) = synthesize_uplink(&cfg, &bits, 1000.0, 1e-3, 0.0, &mut rng);
    let samples = probe.len();

    // Untimed noisy identity probe: a short capture per engine with the
    // post-call RNG stream position appended, so a diverging noise
    // branch fails the identity gate even though the timed kernels are
    // noiseless.
    let digest = |engine: Engine, y: &[f64]| -> u64 {
        let mut words: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
        let mut rng = StdRng::seed_from_u64(STAGE_SEED ^ 0xB2);
        let (noisy, _) = synthesize_uplink_with(
            &cfg,
            &bits[..bits.len().min(8)],
            1000.0,
            0.0,
            0.02,
            &mut rng,
            engine,
        );
        words.extend(noisy.iter().map(|v| v.to_bits()));
        words.push(rng.gen::<u64>());
        fnv1a64(words)
    };
    let run = |engine: Engine| {
        let mut rng = StdRng::seed_from_u64(STAGE_SEED ^ 0xA1);
        let (y, _) = synthesize_uplink_with(&cfg, &bits, 1000.0, 1e-3, 0.0, &mut rng, engine);
        y
    };
    let (serial_ns, y_serial) = time_kernel(scale.wave_reps, samples, || run(Engine::Scalar));
    let (batched_ns, y_batched) = time_kernel(scale.wave_reps, samples, || run(Engine::Batched));
    let checksum_serial = digest(Engine::Scalar, &y_serial);
    let checksum_batched = digest(Engine::Batched, &y_batched);
    StageResult {
        name: "synth",
        samples_per_pass: samples,
        reps: scale.wave_reps,
        serial_ns_per_sample: serial_ns,
        batched_ns_per_sample: batched_ns,
        checksum_serial,
        checksum_batched,
    }
}

/// Builds the stage input shared by `ddc` and `decode`: a noiseless
/// synthesized capture plus its FM0 codec.
fn capture_for(scale: &Scale) -> (Vec<f64>, phy::fm0::Fm0) {
    let cfg = UplinkConfig {
        delay_s: 0.0,
        ..UplinkConfig::paper_default()
    };
    let bits: Vec<bool> = {
        let mut rng = StdRng::seed_from_u64(STAGE_SEED ^ 0xC3);
        (0..scale.synth_bits).map(|_| rng.gen_bool(0.5)).collect()
    };
    let mut rng = StdRng::seed_from_u64(STAGE_SEED ^ 0xC3);
    synthesize_uplink(&cfg, &bits, 1000.0, 1e-3, 0.0, &mut rng)
}

/// Stage 2 — `ddc`: baseband envelope extraction, allocating
/// [`dsp::ddc::baseband_magnitude`] vs a reused
/// [`dsp::batch::DdcScratch`]. Same arithmetic, so the speedup here is
/// pure allocation amortization.
#[must_use]
pub fn ddc_stage(scale: &Scale) -> StageResult {
    let cfg = UplinkConfig::paper_default();
    let (capture, _) = capture_for(scale);
    let samples = capture.len();

    let (serial_ns, mag_serial) = time_kernel(scale.wave_reps, samples, || {
        dsp::ddc::baseband_magnitude(&capture, cfg.carrier_hz, DDC_TAU_S, cfg.fs_hz)
    });
    let mut scratch = dsp::batch::DdcScratch::new();
    let (batched_ns, ()) = time_kernel(scale.wave_reps, samples, || {
        scratch.baseband_magnitude(&capture, cfg.carrier_hz, DDC_TAU_S, cfg.fs_hz);
    });
    // The scratch buffer still holds the final repetition's envelope.
    let mag_batched = scratch.baseband_magnitude(&capture, cfg.carrier_hz, DDC_TAU_S, cfg.fs_hz);
    let checksum_serial = fnv1a64(mag_serial.iter().map(|v| v.to_bits()));
    let checksum_batched = fnv1a64(mag_batched.iter().map(|v| v.to_bits()));
    StageResult {
        name: "ddc",
        samples_per_pass: samples,
        reps: scale.wave_reps,
        serial_ns_per_sample: serial_ns,
        batched_ns_per_sample: batched_ns,
        checksum_serial,
        checksum_batched,
    }
}

/// Stage 3 — `decode`: preamble correlation over a realistic baseband.
/// The template is an FM0-coded bit pattern (piecewise-constant, so the
/// batched prescan compresses it to a handful of runs); the signal is
/// the mean-subtracted envelope of a synthesized capture.
#[must_use]
pub fn decode_stage(scale: &Scale) -> StageResult {
    let cfg = UplinkConfig::paper_default();
    let (capture, fm0) = capture_for(scale);
    let mag = dsp::ddc::baseband_magnitude(&capture, cfg.carrier_hz, DDC_TAU_S, cfg.fs_hz);
    let mean = dsp::stats::mean(&mag);
    let mut signal: Vec<f64> = mag.iter().map(|&v| v - mean).collect();
    signal.truncate(scale.decode_len);
    let template = fm0.encode(&[true, false, true, false, true, true]);
    let samples = signal.len();

    let digest = |m: Option<(usize, f64)>| {
        fnv1a64(m.map_or_else(Vec::new, |(lag, score)| vec![lag as u64, score.to_bits()]))
    };
    let (serial_ns, m_serial) = time_kernel(scale.decode_reps, samples, || {
        dsp::correlate::best_match(&signal, &template)
    });
    let (batched_ns, m_batched) = time_kernel(scale.decode_reps, samples, || {
        dsp::batch::best_match_exact(&signal, &template)
    });
    let checksum_serial = digest(m_serial);
    let checksum_batched = digest(m_batched);
    StageResult {
        name: "decode",
        samples_per_pass: samples,
        reps: scale.decode_reps,
        serial_ns_per_sample: serial_ns,
        batched_ns_per_sample: batched_ns,
        checksum_serial,
        checksum_batched,
    }
}

/// Stage 4 — `harvest`: storage-capacitor integration for a whole wall.
/// The scalar pass simulates each capsule's store on its own scaled
/// envelope; the batched pass runs all lanes through
/// [`node::harvester::Harvester::simulate_store_lanes`] at once.
#[must_use]
pub fn harvest_stage(scale: &Scale) -> StageResult {
    let harvester = Harvester::default();
    // A PIE-like burst envelope: alternating drive and quiet segments.
    let envelope: Vec<(f64, f64)> = (0..8)
        .map(|k| {
            if k % 2 == 0 {
                (25e-3, 1.4)
            } else {
                (25e-3, 0.35)
            }
        })
        .collect();
    let dt_s = 20e-6;
    let gains: Vec<f64> = (0..scale.harvest_lanes)
        .map(|lane| 0.25 + 1.5 * lane as f64 / scale.harvest_lanes.max(1) as f64)
        .collect();
    let steps: usize = envelope
        .iter()
        .map(|&(dur, _)| (dur / dt_s).ceil() as usize)
        .sum();
    let samples = steps * gains.len();

    let digest = |lanes: &[Vec<(f64, f64)>]| {
        fnv1a64(
            lanes
                .iter()
                .flatten()
                .flat_map(|&(t, v)| [t.to_bits(), v.to_bits()]),
        )
    };
    let (serial_ns, lanes_serial) = time_kernel(scale.harvest_reps, samples, || {
        gains
            .iter()
            .map(|&g| {
                let scaled: Vec<(f64, f64)> =
                    envelope.iter().map(|&(dur, v)| (dur, v * g)).collect();
                harvester.simulate_store(&scaled, dt_s)
            })
            .collect::<Vec<_>>()
    });
    let (batched_ns, lanes_batched) = time_kernel(scale.harvest_reps, samples, || {
        harvester.simulate_store_lanes(&envelope, dt_s, &gains)
    });
    let checksum_serial = digest(&lanes_serial);
    let checksum_batched = digest(&lanes_batched);
    StageResult {
        name: "harvest",
        samples_per_pass: samples,
        reps: scale.harvest_reps,
        serial_ns_per_sample: serial_ns,
        batched_ns_per_sample: batched_ns,
        checksum_serial,
        checksum_batched,
    }
}

/// Runs every stage at `scale`; errors if any stage's batched output is
/// not bit-identical to its scalar output.
#[must_use]
pub fn run_all(scale: &Scale) -> EcoResult<Vec<StageResult>> {
    let results = vec![
        synth_stage(scale),
        ddc_stage(scale),
        decode_stage(scale),
        harvest_stage(scale),
    ];
    for r in &results {
        if !r.bit_identical() {
            return Err(EcoError::Numerical {
                what: "batched hot path diverged from scalar output",
            });
        }
    }
    Ok(results)
}

/// Renders results as `BENCH_hotpath.json` (schema
/// `ecocapsule-bench-hotpath/1`). Hand-rolled emission — the workspace
/// is hermetic, so no serde.
#[must_use]
pub fn to_json(results: &[StageResult], scale: &Scale) -> String {
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"ecocapsule-bench-hotpath/1\",\n");
    out.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    out.push_str(&format!("  \"smoke\": {},\n", scale.smoke));
    out.push_str("  \"stages\": [\n");
    for (k, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!(
            "      \"samples_per_pass\": {},\n",
            r.samples_per_pass
        ));
        out.push_str(&format!("      \"reps\": {},\n", r.reps));
        out.push_str(&format!(
            "      \"serial_ns_per_sample\": {:.3},\n",
            r.serial_ns_per_sample
        ));
        out.push_str(&format!(
            "      \"batched_ns_per_sample\": {:.3},\n",
            r.batched_ns_per_sample
        ));
        out.push_str(&format!("      \"speedup\": {:.3},\n", r.speedup()));
        out.push_str(&format!(
            "      \"bit_identical\": {},\n",
            r.bit_identical()
        ));
        out.push_str(&format!(
            "      \"checksum\": \"{:#018x}\"\n",
            r.checksum_serial
        ));
        out.push_str(if k + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_profile_is_bit_identical_across_engines() {
        let results = run_all(&Scale::smoke()).expect("hot-path stages run");
        assert_eq!(results.len(), 4);
        for r in &results {
            assert!(r.bit_identical(), "stage {} diverged", r.name);
            assert!(r.samples_per_pass > 0);
        }
    }

    #[test]
    fn json_has_schema_and_all_stages() {
        let results = run_all(&Scale::smoke()).expect("hot-path stages run");
        let json = to_json(&results, &Scale::smoke());
        assert!(json.contains("\"schema\": \"ecocapsule-bench-hotpath/1\""));
        for name in ["synth", "ddc", "decode", "harvest"] {
            assert!(json.contains(&format!("\"name\": \"{name}\"")), "{name}");
        }
    }
}

//! Benchmark harness regenerating the tables and figures of the paper.
//!
//! Three binaries live on top of this library:
//!
//! - `experiments` — the headline figures (link budget, BER curves,
//!   localization, pilot study);
//! - `ablations` — design-space sweeps over coding, geometry, and
//!   materials;
//! - `sweeps` — the serial-vs-parallel timed parameter grids behind
//!   `BENCH_sweeps.json` (see [`sweeps`]);
//! - `faults` — the fault-intensity × retry-policy matrix behind
//!   `BENCH_faults.json` (see [`faults`]);
//! - `obs` — recorded-survey trace summaries and the worker-count
//!   trace-identity invariant behind `BENCH_obs.json` (see [`obs`]);
//! - `fleet` — scheduler scaling vs. wall count and the fleet
//!   digest-identity invariants behind `BENCH_fleet.json` (see
//!   [`fleet`]);
//! - `hotpath` — per-stage scalar-vs-batched ns/sample of the survey
//!   inner loop behind `BENCH_hotpath.json` (see [`hotpath`]);
//! - `campaign` — detection-latency/false-alarm curves over the
//!   damage-scenario × seasonal-drift grid and the campaign
//!   digest-identity invariants behind `BENCH_campaign.json` (see
//!   [`campaign`]);
//! - `serve` — live-daemon query throughput/latency under concurrent
//!   readers, restart recovery time, and the serve digest-identity
//!   invariants behind `BENCH_serve.json` (see [`serve`]).
//!
//! The library half is deliberately thin: the table printers the binaries
//! share, plus the [`sweeps`] grid, [`faults`] matrix and [`obs`] trace
//! definitions — kept in the library so the integration tests can assert
//! bit-identical parallel execution without crossing a process boundary.

#![forbid(unsafe_code)]

pub mod campaign;
pub mod experiments;
pub mod faults;
pub mod fleet;
pub mod hotpath;
pub mod obs;
pub mod serve;
pub mod sweeps;

/// Prints a two-column numeric series with a caption.
pub fn print_series(caption: &str, x_label: &str, y_label: &str, rows: &[(f64, f64)]) {
    println!("\n== {caption} ==");
    println!("{x_label:>14} {y_label:>14}");
    for (x, y) in rows {
        if y.is_finite() {
            println!("{x:>14.3} {y:>14.4}");
        } else {
            println!("{x:>14.3} {:>14}", "-");
        }
    }
}

/// Prints a table with a header row and aligned numeric cells.
pub fn print_table(caption: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {caption} ==");
    for h in header {
        print!("{h:>14}");
    }
    println!();
    for row in rows {
        for cell in row {
            print!("{cell:>14}");
        }
        println!();
    }
}

/// Formats a float or "-" for non-finite values.
pub fn fmt(v: f64, decimals: usize) -> String {
    if v.is_finite() {
        format!("{v:.decimals$}")
    } else {
        "-".to_string()
    }
}

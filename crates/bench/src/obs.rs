//! The observability bench: recorded survey traces summarized into
//! per-span slot statistics and counter totals, plus the trace-identity
//! invariant — a [`MemoryRecorder`] trace of the same survey must be
//! byte-identical at every worker count.
//!
//! Two scenarios are recorded, both on the S3 common wall:
//!
//! - **quiet** — no fault plan, the virtual slot clock drives the
//!   timestamps;
//! - **faulted** — a moderate [`FaultPlan`] with the paper-default
//!   retry policy, timestamps following the fault timeline.
//!
//! Each scenario runs once on [`Pool::serial`] and once on the given
//! parallel pool; [`verify`] fails unless both JSONL renderings match
//! byte-for-byte and the traces are non-empty. The emitted
//! `BENCH_obs.json` (schema `ecocapsule-bench-obs/1`) is committed at
//! the repo root next to the other bench artifacts.

use dsp::{EcoError, EcoResult};
use ecocapsule::prelude::*;
use exec::Pool;
use faults::FaultIntensity;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fixed bench seed, like the sweep grids: traces must be comparable
/// across commits.
const OBS_SEED: u64 = 0x0B5E_57A7;

/// Drive voltage for every recorded survey.
const DRIVE_V: f64 = 200.0;

/// Bench size: [`ObsScale::full`] for the committed summary,
/// [`ObsScale::smoke`] for the CI gate.
#[derive(Debug, Clone, Copy)]
pub struct ObsScale {
    /// Capsule standoffs of the surveyed wall (m).
    pub standoffs: &'static [f64],
    /// Fault-plan horizon (slots) for the faulted scenario.
    pub horizon_slots: u64,
    /// True for the reduced CI profile.
    pub smoke: bool,
}

impl ObsScale {
    /// The committed-summary profile.
    #[must_use]
    pub fn full() -> Self {
        ObsScale {
            standoffs: &[0.5, 1.0, 1.5],
            horizon_slots: 60,
            smoke: false,
        }
    }

    /// The CI profile: a smaller wall, same invariants.
    #[must_use]
    pub fn smoke() -> Self {
        ObsScale {
            standoffs: &[0.5, 1.0],
            horizon_slots: 40,
            smoke: true,
        }
    }
}

/// Statistics of one trace histogram: span open→close slot spends
/// under the span's name, observed values under the observation's name.
#[derive(Debug, Clone)]
pub struct HistStat {
    /// Histogram name (`"survey"`, `"inventory.round"`, `"inventory.q"`, …).
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Median sample (log2-bucket upper bound).
    pub p50: u64,
    /// 99th-percentile sample (log2-bucket upper bound).
    pub p99: u64,
    /// Largest sample observed (exact).
    pub max: u64,
}

/// One recorded scenario's summary.
#[derive(Debug, Clone)]
pub struct ScenarioSummary {
    /// Scenario name (`quiet` / `faulted`).
    pub name: &'static str,
    /// Events in the serial trace.
    pub events: usize,
    /// Whether the parallel trace matched the serial trace byte-for-byte.
    pub bit_identical: bool,
    /// Per-histogram statistics (spans and observations), in name order.
    pub histograms: Vec<HistStat>,
    /// Counter totals, in counter-name order.
    pub counters: Vec<(String, u64)>,
}

/// The full observability bench result.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Both scenario summaries.
    pub scenarios: Vec<ScenarioSummary>,
}

/// Builds the scenario's survey options against `plan` and `pool` and
/// runs it once, returning the recorder.
fn record_survey(
    scale: &ObsScale,
    plan: Option<&FaultPlan>,
    pool: Pool,
) -> EcoResult<MemoryRecorder> {
    let mut wall = SelfSensingWall::common_wall(scale.standoffs);
    let mut rng = StdRng::seed_from_u64(OBS_SEED);
    let mut rec = MemoryRecorder::new();
    let mut options = SurveyOptions::new()
        .tx_voltage(DRIVE_V)
        .pool(pool)
        .recorder(&mut rec);
    if let Some(plan) = plan {
        options = options
            .fault_plan(plan)
            .retry_policy(RetryPolicy::paper_default());
    }
    options.run(&mut wall, &mut rng)?;
    Ok(rec)
}

/// Summarizes one scenario: serial reference trace, parallel identity
/// check, span statistics and counter totals.
fn run_scenario(
    name: &'static str,
    scale: &ObsScale,
    plan: Option<&FaultPlan>,
    pool: &Pool,
) -> EcoResult<ScenarioSummary> {
    let reference = record_survey(scale, plan, Pool::serial())?;
    let parallel = record_survey(scale, plan, *pool)?;
    let bit_identical = reference.to_jsonl() == parallel.to_jsonl();
    let histograms = reference
        .histograms()
        .map(|(name, h)| HistStat {
            name: name.to_string(),
            count: h.count(),
            p50: h.p50(),
            p99: h.p99(),
            max: h.max(),
        })
        .collect();
    let counters = reference
        .counter_totals()
        .map(|(name, total)| (name.to_string(), total))
        .collect();
    Ok(ScenarioSummary {
        name,
        events: reference.len(),
        bit_identical,
        histograms,
        counters,
    })
}

/// Runs both scenarios and assembles the report.
#[must_use]
pub fn run_obs(scale: &ObsScale, pool: &Pool) -> EcoResult<ObsReport> {
    let plan = FaultPlan::generate(OBS_SEED, &FaultIntensity::moderate(scale.horizon_slots));
    Ok(ObsReport {
        scenarios: vec![
            run_scenario("quiet", scale, None, pool)?,
            run_scenario("faulted", scale, Some(&plan), pool)?,
        ],
    })
}

/// Checks the bench invariants: every scenario's trace is non-empty and
/// byte-identical between the serial and parallel passes.
#[must_use]
pub fn verify(report: &ObsReport) -> EcoResult<()> {
    for s in &report.scenarios {
        if s.events == 0 {
            return Err(EcoError::Numerical {
                what: "recorded survey produced an empty trace",
            });
        }
        if !s.bit_identical {
            return Err(EcoError::Numerical {
                what: "parallel survey trace diverged from serial trace",
            });
        }
    }
    Ok(())
}

/// The faulted scenario's serial trace as JSON lines, for `--trace`.
#[must_use]
pub fn trace_jsonl(scale: &ObsScale) -> EcoResult<String> {
    let plan = FaultPlan::generate(OBS_SEED, &FaultIntensity::moderate(scale.horizon_slots));
    Ok(record_survey(scale, Some(&plan), Pool::serial())?.to_jsonl())
}

/// Renders the report as `BENCH_obs.json` (schema
/// `ecocapsule-bench-obs/1`). Hand-rolled, like the other bench
/// emitters — the workspace is hermetic, so no serde.
#[must_use]
pub fn to_json(report: &ObsReport, pool: &Pool, scale: &ObsScale) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"ecocapsule-bench-obs/1\",\n");
    out.push_str(&format!("  \"pool_workers\": {},\n", pool.workers()));
    out.push_str(&format!("  \"smoke\": {},\n", scale.smoke));
    out.push_str(&format!("  \"capsules\": {},\n", scale.standoffs.len()));
    out.push_str(&format!("  \"horizon_slots\": {},\n", scale.horizon_slots));
    out.push_str("  \"scenarios\": [\n");
    for (k, s) in report.scenarios.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", s.name));
        out.push_str(&format!("      \"events\": {},\n", s.events));
        out.push_str(&format!("      \"bit_identical\": {},\n", s.bit_identical));
        out.push_str("      \"histograms\": [\n");
        for (j, h) in s.histograms.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"name\": \"{}\", \"count\": {}, \"p50\": {}, \
                 \"p99\": {}, \"max\": {}}}{}\n",
                h.name,
                h.count,
                h.p50,
                h.p99,
                h.max,
                if j + 1 == s.histograms.len() { "" } else { "," }
            ));
        }
        out.push_str("      ],\n");
        out.push_str("      \"counters\": {\n");
        for (j, (name, total)) in s.counters.iter().enumerate() {
            out.push_str(&format!(
                "        \"{}\": {}{}\n",
                name,
                total,
                if j + 1 == s.counters.len() { "" } else { "," }
            ));
        }
        out.push_str("      }\n");
        out.push_str(if k + 1 == report.scenarios.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

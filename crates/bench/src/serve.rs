//! The serve bench: query throughput and latency percentiles measured
//! over the real TCP wire while the daemon's survey loop is live, the
//! restart-from-checkpoint recovery time, and the serve digest
//! identities — the store must be bit-identical serial vs. parallel
//! vs. the daemon under concurrent readers vs. a restart from the
//! daemon's own exit checkpoint.
//!
//! Each reader thread owns one connection and round-robins the read
//! verbs (`FleetSummary`, `LatestHealth`, `FeatureSeries`,
//! `HistogramSnapshot`), timing every round-trip into an
//! [`obs::Histogram`] of microseconds. Readers run for the entire live
//! window — from spawn until the survey loop reaches its cycle limit —
//! so every recorded latency competes with real survey work. The
//! emitted `BENCH_serve.json` (schema `ecocapsule-bench-serve/1`) is
//! committed at the repo root; CI re-runs the smoke profile and gates
//! on [`verify`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dsp::{EcoError, EcoResult};
use exec::Pool;
use faults::{FaultIntensity, FaultPlan};
use fleet::{FleetOptions, WallSpec};
use obs::Histogram;
use serve::{Client, Request, ServeCheckpoint, ServeEngine, ServeOptions};

/// Fixed bench seed: digests must be comparable across commits.
const SERVE_SEED: u64 = 0x5E4E_2026;

/// Bench size: [`ServeScale::full`] for the committed summary,
/// [`ServeScale::smoke`] for the CI gate.
#[derive(Debug, Clone, Copy)]
pub struct ServeScale {
    /// Survey cycles the daemon runs before it only serves reads.
    pub cycles: u64,
    /// Rows each wall's ring retains.
    pub history_cycles: u64,
    /// Walls in the fleet.
    pub walls: usize,
    /// Concurrent reader connections (the artifact pins ≥ 4).
    pub readers: usize,
    /// True for the reduced CI profile.
    pub smoke: bool,
}

impl ServeScale {
    /// The committed-summary profile.
    #[must_use]
    pub fn full() -> Self {
        ServeScale {
            cycles: 6,
            history_cycles: 4,
            walls: 6,
            readers: 8,
            smoke: false,
        }
    }

    /// The CI profile: fewer cycles and walls, the pinned minimum of
    /// four readers, same invariants.
    #[must_use]
    pub fn smoke() -> Self {
        ServeScale {
            cycles: 2,
            history_cycles: 4,
            walls: 3,
            readers: 4,
            smoke: true,
        }
    }
}

/// The benched fleet: mixed capsule counts, a fault plan on every
/// third wall, distinct seeds.
#[must_use]
pub fn bench_specs(scale: &ServeScale) -> Vec<WallSpec> {
    (0..scale.walls)
        .map(|i| {
            let standoffs: Vec<f64> = (0..(i % 3)).map(|c| 0.4 + 0.3 * c as f64).collect();
            let spec = WallSpec::new(format!("serve-{i}"), standoffs).seed(SERVE_SEED ^ i as u64);
            if i % 3 == 2 {
                spec.fault_plan(FaultPlan::generate(i as u64, &FaultIntensity::mild(400)))
            } else {
                spec
            }
        })
        .collect()
}

fn bench_options(scale: &ServeScale) -> EcoResult<ServeOptions> {
    ServeOptions::new()
        .seed(SERVE_SEED)
        .history_cycles(scale.history_cycles)
        .cycle_limit(scale.cycles)
        .checkpoint_every_cycles(1)
        .build()
}

/// One reader thread's tally.
#[derive(Debug, Clone)]
pub struct ReaderRow {
    /// Reader index.
    pub reader: usize,
    /// Round-trips completed during the live window.
    pub reads: u64,
    /// Median round-trip latency (µs).
    pub p50_us: u64,
    /// 99th-percentile round-trip latency (µs).
    pub p99_us: u64,
    /// Worst round-trip latency (µs).
    pub max_us: u64,
}

/// The full serve bench result.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Survey cycles the daemon completed.
    pub cycles: u64,
    /// Wall-clock of the live window: spawn → cycle limit reached (ms).
    pub live_ms: f64,
    /// Round-trips across all readers during the live window.
    pub reads_total: u64,
    /// `reads_total / live_ms`, in queries per second.
    pub throughput_qps: f64,
    /// Merged median round-trip latency (µs).
    pub p50_us: u64,
    /// Merged 99th-percentile round-trip latency (µs).
    pub p99_us: u64,
    /// Merged worst round-trip latency (µs).
    pub max_us: u64,
    /// One row per reader.
    pub reader_rows: Vec<ReaderRow>,
    /// Wall-clock of the offline serial reference run (ms).
    pub serial_ms: f64,
    /// The offline serial store digest.
    pub serial_digest: u64,
    /// Offline parallel-fleet digest equals the serial digest.
    pub parallel_identical: bool,
    /// The live daemon's final digest equals the serial digest.
    pub daemon_identical: bool,
    /// A restart from the daemon's exit checkpoint equals the serial
    /// digest.
    pub restart_identical: bool,
    /// Wall-clock to decode the exit checkpoint and rebuild a serving
    /// engine from it (ms).
    pub recovery_ms: f64,
    /// Size of the ECOSERVE exit checkpoint (bytes).
    pub checkpoint_bytes: usize,
}

/// The read verbs a reader round-robins.
fn reader_request(k: u64, scale: &ServeScale) -> Request {
    let wall = format!("serve-{}", k % scale.walls as u64);
    match k % 4 {
        0 => Request::FleetSummary,
        1 => Request::LatestHealth { wall },
        2 => Request::FeatureSeries {
            wall,
            from_cycle: 0,
            to_cycle: u64::MAX,
        },
        _ => Request::HistogramSnapshot {
            name: "inventory.q".to_string(),
        },
    }
}

/// Runs the serve bench: reference engines, the live daemon under
/// concurrent readers, and the restart leg.
#[must_use]
pub fn run_serve_bench(scale: &ServeScale, pool: &Pool) -> EcoResult<ServeBenchReport> {
    // Offline references: serial, then the same run on a parallel pool.
    let t0 = Instant::now();
    let mut serial = ServeEngine::new(bench_specs(scale), bench_options(scale)?)?;
    serial.run_to_limit()?;
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
    let serial_digest = serial.digest();

    let parallel_options = bench_options(scale)?.fleet(FleetOptions::new().pool(*pool));
    let mut parallel = ServeEngine::new(bench_specs(scale), parallel_options)?;
    parallel.run_to_limit()?;

    // The live daemon, with every reader hammering it from spawn on.
    let engine = ServeEngine::new(bench_specs(scale), bench_options(scale)?)?;
    let handle = serve::spawn(engine, "127.0.0.1:0")?;
    let addr = handle.addr().to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let live_start = Instant::now();
    let readers: Vec<_> = (0..scale.readers)
        .map(|_| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            let scale = *scale;
            std::thread::spawn(move || -> EcoResult<(u64, Histogram)> {
                let mut client = Client::connect(&addr)?;
                let mut latencies = Histogram::new();
                let mut reads = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let req = reader_request(reads, &scale);
                    let t = Instant::now();
                    client.call(&req)?;
                    latencies.record(t.elapsed().as_micros() as u64);
                    reads += 1;
                }
                Ok((reads, latencies))
            })
        })
        .collect();

    // The live window ends when the survey loop reaches its limit.
    let mut control = Client::connect(&addr)?;
    let cycles = loop {
        let (cycles, _) = control.fleet_summary()?;
        if cycles >= scale.cycles {
            break cycles;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    };
    let live_ms = live_start.elapsed().as_secs_f64() * 1e3;
    stop.store(true, Ordering::SeqCst);

    let mut reader_rows = Vec::new();
    let mut merged = Histogram::new();
    for (reader, join) in readers.into_iter().enumerate() {
        let (reads, latencies) = join.join().map_err(|_| EcoError::Protocol {
            what: "a serve bench reader panicked",
        })??;
        merged.merge(&latencies);
        reader_rows.push(ReaderRow {
            reader,
            reads,
            p50_us: latencies.p50(),
            p99_us: latencies.p99(),
            max_us: latencies.max(),
        });
    }
    let reads_total: u64 = reader_rows.iter().map(|r| r.reads).sum();

    control.shutdown()?;
    let daemon_engine = handle.join()?;

    // The restart leg: decode the exit checkpoint and rebuild a serving
    // engine — the recovery a crashed daemon's replacement would pay.
    let frozen = ServeCheckpoint::of(&daemon_engine)?.to_bytes();
    let checkpoint_bytes = frozen.len();
    let t1 = Instant::now();
    let restarted =
        ServeCheckpoint::from_bytes(&frozen)?.resume(bench_specs(scale), bench_options(scale)?)?;
    let recovery_ms = t1.elapsed().as_secs_f64() * 1e3;

    Ok(ServeBenchReport {
        cycles,
        live_ms,
        reads_total,
        throughput_qps: reads_total as f64 / (live_ms / 1e3),
        p50_us: merged.p50(),
        p99_us: merged.p99(),
        max_us: merged.max(),
        reader_rows,
        serial_ms,
        serial_digest,
        parallel_identical: parallel.digest() == serial_digest,
        daemon_identical: daemon_engine.digest() == serial_digest,
        restart_identical: restarted.digest() == serial_digest,
        recovery_ms,
        checkpoint_bytes,
    })
}

/// Checks the bench invariants: the pinned reader floor, every reader
/// actually sustained load, and every digest identity holds.
#[must_use]
pub fn verify(report: &ServeBenchReport) -> EcoResult<()> {
    if report.reader_rows.len() < 4 {
        return Err(EcoError::Numerical {
            what: "serve bench needs at least four concurrent readers",
        });
    }
    for row in &report.reader_rows {
        if row.reads == 0 {
            return Err(EcoError::Numerical {
                what: "a serve bench reader completed no round-trips",
            });
        }
    }
    if report.p99_us < report.p50_us {
        return Err(EcoError::Numerical {
            what: "serve bench latency percentiles are inverted",
        });
    }
    if !report.parallel_identical {
        return Err(EcoError::Numerical {
            what: "parallel serve digest diverged from serial digest",
        });
    }
    if !report.daemon_identical {
        return Err(EcoError::Numerical {
            what: "live daemon digest diverged from serial digest",
        });
    }
    if !report.restart_identical {
        return Err(EcoError::Numerical {
            what: "restarted serve digest diverged from serial digest",
        });
    }
    Ok(())
}

/// Renders the report as `BENCH_serve.json` (schema
/// `ecocapsule-bench-serve/1`). Hand-rolled, like the other bench
/// emitters — the workspace is hermetic, so no serde.
#[must_use]
pub fn to_json(report: &ServeBenchReport, pool: &Pool, scale: &ServeScale) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"ecocapsule-bench-serve/1\",\n");
    out.push_str(&format!("  \"pool_workers\": {},\n", pool.workers()));
    out.push_str(&format!("  \"smoke\": {},\n", scale.smoke));
    out.push_str(&format!("  \"cycles\": {},\n", report.cycles));
    out.push_str(&format!("  \"walls\": {},\n", scale.walls));
    out.push_str(&format!("  \"readers\": {},\n", scale.readers));
    out.push_str(&format!("  \"live_ms\": {:.3},\n", report.live_ms));
    out.push_str(&format!("  \"reads_total\": {},\n", report.reads_total));
    out.push_str(&format!(
        "  \"throughput_qps\": {:.1},\n",
        report.throughput_qps
    ));
    out.push_str(&format!("  \"p50_us\": {},\n", report.p50_us));
    out.push_str(&format!("  \"p99_us\": {},\n", report.p99_us));
    out.push_str(&format!("  \"max_us\": {},\n", report.max_us));
    out.push_str(&format!("  \"serial_ms\": {:.3},\n", report.serial_ms));
    out.push_str(&format!(
        "  \"serial_digest\": \"{:#018x}\",\n",
        report.serial_digest
    ));
    out.push_str(&format!(
        "  \"parallel_identical\": {},\n",
        report.parallel_identical
    ));
    out.push_str(&format!(
        "  \"daemon_identical\": {},\n",
        report.daemon_identical
    ));
    out.push_str(&format!(
        "  \"restart_identical\": {},\n",
        report.restart_identical
    ));
    out.push_str(&format!("  \"recovery_ms\": {:.3},\n", report.recovery_ms));
    out.push_str(&format!(
        "  \"checkpoint_bytes\": {},\n",
        report.checkpoint_bytes
    ));
    out.push_str("  \"reader_rows\": [\n");
    for (k, r) in report.reader_rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"reader\": {},\n", r.reader));
        out.push_str(&format!("      \"reads\": {},\n", r.reads));
        out.push_str(&format!("      \"p50_us\": {},\n", r.p50_us));
        out.push_str(&format!("      \"p99_us\": {},\n", r.p99_us));
        out.push_str(&format!("      \"max_us\": {}\n", r.max_us));
        out.push_str(if k + 1 == report.reader_rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

//! The parallel sweep engine: serial-vs-parallel timed parameter grids
//! with bit-identity checks and `BENCH_sweeps.json` emission.
//!
//! Each *workload* is a grid of independent cells (a wall survey, a
//! multipath field map, an uplink capture decode, a BER Monte-Carlo
//! block). The runner executes the same grid twice — once on
//! [`Pool::serial`], once on the given parallel pool — via
//! [`Pool::par_map`], checksums the numeric output of both passes, and
//! reports wall-clock plus a per-stage CPU-time breakdown. Because every
//! cell derives its RNG from [`exec::seed::derive`]`(grid_seed, index)`
//! and results merge in cell order, the two checksums must agree exactly;
//! [`run_all`] returns an error if they ever diverge, and CI runs the
//! `--smoke` profile of the `sweeps` binary so the guarantee (and the
//! JSON schema) cannot silently rot.
//!
//! The emitted `BENCH_sweeps.json` (schema `ecocapsule-bench-sweeps/1`)
//! is the repo's performance trajectory: one file per run at the repo
//! root, safe to diff across commits.

use dsp::{EcoError, EcoResult};
use ecocapsule::prelude::*;
use exec::Pool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Fixed grid seed: sweeps are a regression trajectory, so runs must be
/// comparable across commits.
const GRID_SEED: u64 = 0x1077_0CAB;

/// Sizes of every workload grid; [`Scale::full`] for the committed
/// trajectory, [`Scale::smoke`] for the CI gate.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Wall standoff sets × drive voltages for the survey grid.
    pub survey_sets: usize,
    /// Monte-Carlo bits per BER cell.
    pub ber_bits: usize,
    /// SNR points in the BER grid.
    pub ber_snrs: usize,
    /// Field-map resolution (grid points per axis).
    pub field_pts: usize,
    /// Image-source reflection order for the field map.
    pub field_order: i32,
    /// Uplink captures to synthesize and decode.
    pub captures: usize,
    /// Payload bits per capture.
    pub capture_bits: usize,
    /// True when this is the reduced CI profile.
    pub smoke: bool,
}

impl Scale {
    /// The committed-trajectory profile (seconds per workload).
    #[must_use]
    pub fn full() -> Self {
        Scale {
            survey_sets: 3,
            ber_bits: 60_000,
            ber_snrs: 9,
            field_pts: 40,
            field_order: 4,
            captures: 12,
            capture_bits: 160,
            smoke: false,
        }
    }

    /// The CI profile: every workload shrunk to a few hundred ms.
    #[must_use]
    pub fn smoke() -> Self {
        Scale {
            survey_sets: 1,
            ber_bits: 4_000,
            ber_snrs: 4,
            field_pts: 12,
            field_order: 2,
            captures: 3,
            capture_bits: 48,
            smoke: true,
        }
    }
}

/// What one grid cell feeds back to the runner.
struct CellOut {
    /// Checksummed numeric output (order matters).
    words: Vec<u64>,
    /// `(stage name, seconds)` of CPU time spent per stage.
    stages: Vec<(&'static str, f64)>,
}

/// Serial + parallel timings of one workload.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload name (stable across commits; keys the JSON).
    pub name: &'static str,
    /// Number of grid cells.
    pub tasks: usize,
    /// Wall-clock of the serial pass (ms).
    pub serial_wall_ms: f64,
    /// Wall-clock of the parallel pass (ms).
    pub parallel_wall_ms: f64,
    /// FNV-1a checksum of the serial pass output.
    pub checksum_serial: u64,
    /// FNV-1a checksum of the parallel pass output.
    pub checksum_parallel: u64,
    /// Per-stage CPU time summed over cells of the serial pass (ms).
    pub stage_cpu_ms: Vec<(&'static str, f64)>,
}

impl WorkloadResult {
    /// Serial wall-clock divided by parallel wall-clock.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.parallel_wall_ms > 0.0 {
            self.serial_wall_ms / self.parallel_wall_ms
        } else {
            1.0
        }
    }

    /// Whether both passes produced exactly the same bytes.
    #[must_use]
    pub fn bit_identical(&self) -> bool {
        self.checksum_serial == self.checksum_parallel
    }
}

/// FNV-1a over a word stream; stable, order-sensitive, dependency-free.
#[must_use]
pub fn fnv1a64<I: IntoIterator<Item = u64>>(words: I) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for w in words {
        for byte in w.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

/// Runs one grid twice (serial, then on `pool`) and assembles the result.
fn run_workload<T, F>(
    name: &'static str,
    cells: &[T],
    pool: &Pool,
    cell_fn: F,
) -> EcoResult<WorkloadResult>
where
    T: Sync,
    F: Fn(usize, &T) -> EcoResult<CellOut> + Sync,
{
    let serial_pool = Pool::serial();
    let t0 = Instant::now();
    let serial_out = gather(serial_pool.par_map(cells, |i, c| cell_fn(i, c)))?;
    let serial_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let parallel_out = gather(pool.par_map(cells, |i, c| cell_fn(i, c)))?;
    let parallel_wall_ms = t1.elapsed().as_secs_f64() * 1e3;

    let checksum_serial = fnv1a64(serial_out.iter().flat_map(|c| c.words.iter().copied()));
    let checksum_parallel = fnv1a64(parallel_out.iter().flat_map(|c| c.words.iter().copied()));
    // Per-stage CPU time from the serial pass (the parallel pass computes
    // the same stages; serial numbers are free of contention noise).
    let mut stage_cpu_ms: Vec<(&'static str, f64)> = Vec::new();
    for cell in &serial_out {
        for &(stage, secs) in &cell.stages {
            match stage_cpu_ms.iter_mut().find(|(s, _)| *s == stage) {
                Some((_, total)) => *total += secs * 1e3,
                None => stage_cpu_ms.push((stage, secs * 1e3)),
            }
        }
    }
    Ok(WorkloadResult {
        name,
        tasks: cells.len(),
        serial_wall_ms,
        parallel_wall_ms,
        checksum_serial,
        checksum_parallel,
        stage_cpu_ms,
    })
}

/// Propagates the first cell error out of a mapped grid.
fn gather(cells: Vec<EcoResult<CellOut>>) -> EcoResult<Vec<CellOut>> {
    cells.into_iter().collect()
}

/// Workload 1 — `survey-grid`: full waveform-level wall surveys (charge →
/// inventory → parallel-safe sensor reads) over standoff sets × drive
/// voltages. Each cell runs its survey on an inner serial pool; the
/// outer grid supplies the parallelism.
#[must_use]
pub fn survey_grid(scale: &Scale, pool: &Pool) -> EcoResult<WorkloadResult> {
    let standoff_sets: &[&[f64]] = &[&[0.5, 1.0], &[0.5, 1.0, 1.5], &[0.8, 1.6]];
    let voltages = [150.0, 200.0, 250.0];
    let mut cells: Vec<(&[f64], f64)> = Vec::new();
    for set in standoff_sets.iter().take(scale.survey_sets) {
        for &v in voltages.iter().take(if scale.smoke { 2 } else { 3 }) {
            cells.push((set, v));
        }
    }
    run_workload("survey-grid", &cells, pool, |i, &(standoffs, voltage)| {
        let t = Instant::now();
        let mut wall = SelfSensingWall::common_wall(standoffs);
        let mut rng = StdRng::seed_from_u64(exec::seed::derive(GRID_SEED, i as u64));
        let report = ecocapsule::scenario::SurveyOptions::new()
            .tx_voltage(voltage)
            .run(&mut wall, &mut rng)?;
        let mut words: Vec<u64> = Vec::new();
        words.extend(report.powered_ids.iter().map(|&id| u64::from(id)));
        words.extend(report.inventoried_ids.iter().map(|&id| u64::from(id)));
        for (id, kind, value) in &report.readings {
            words.push(u64::from(*id));
            words.push(*kind as u64);
            words.push(value.to_bits());
        }
        Ok(CellOut {
            words,
            stages: vec![("survey", t.elapsed().as_secs_f64())],
        })
    })
}

/// Workload 2 — `fieldmap`: link-budget coverage plus an image-source
/// multipath amplitude map per concrete grade and source position. Pure
/// closed-form compute: no RNG, so it doubles as a check that the engine
/// is deterministic even without seed derivation.
#[must_use]
pub fn fieldmap(scale: &Scale, pool: &Pool) -> EcoResult<WorkloadResult> {
    use channel::multipath::Wall2d;
    let grades = [
        ConcreteGrade::Nc,
        ConcreteGrade::Uhpc,
        ConcreteGrade::Uhpfrc,
    ];
    let sources = [(0.1, 1.0), (0.1, 0.5), (1.0, 1.9), (1.9, 0.1)];
    let mut cells: Vec<(ConcreteGrade, (f64, f64))> = Vec::new();
    for &g in grades.iter().take(if scale.smoke { 1 } else { 3 }) {
        for &s in sources.iter().take(if scale.smoke { 2 } else { 4 }) {
            cells.push((g, s));
        }
    }
    let pts = scale.field_pts;
    let order = scale.field_order;
    run_workload("fieldmap", &cells, pool, move |_, &(grade, src)| {
        let mut words: Vec<u64> = Vec::new();
        // Stage 1: link budget over the structure this grade implies.
        let t0 = Instant::now();
        let structure = Structure::s3_common_wall();
        let lb = LinkBudget::for_structure(&structure)?;
        for step in 1..=pts {
            let d_m = 4.0 * step as f64 / pts as f64;
            words.push(lb.received_voltage(200.0, d_m)?.to_bits());
        }
        if let Some(reach_m) = lb.max_range_m(200.0, 0.5)? {
            words.push(reach_m.to_bits());
        }
        let linkbudget_s = t0.elapsed().as_secs_f64();
        // Stage 2: coherent multipath amplitude over a pts × pts map.
        let t1 = Instant::now();
        let mix = grade.mix();
        let wall = Wall2d::new(2.0, 2.0, mix.material().cs_m_s, mix.attenuation_s(), 230e3);
        for ix in 1..pts {
            for iy in 1..pts {
                let rx = (2.0 * ix as f64 / pts as f64, 2.0 * iy as f64 / pts as f64);
                words.push(wall.coherent_amplitude(src, rx, order).to_bits());
            }
        }
        let multipath_s = t1.elapsed().as_secs_f64();
        Ok(CellOut {
            words,
            stages: vec![("linkbudget", linkbudget_s), ("multipath", multipath_s)],
        })
    })
}

/// Workload 3 — `uplink-decode`: synthesize an FM0 backscatter capture,
/// compute its spectrogram (exercising the FFT plan and window caches),
/// and estimate the carrier. The stage split shows where the DSP time
/// goes.
#[must_use]
pub fn uplink_decode(scale: &Scale, pool: &Pool) -> EcoResult<WorkloadResult> {
    use channel::uplink::{synthesize_uplink, UplinkConfig};
    let cells: Vec<u64> = (0..scale.captures as u64).collect();
    let capture_bits = scale.capture_bits;
    run_workload("uplink-decode", &cells, pool, move |i, _| {
        let mut rng = StdRng::seed_from_u64(exec::seed::derive(GRID_SEED ^ 0xA5A5, i as u64));
        let cfg = UplinkConfig {
            delay_s: 0.0,
            ..UplinkConfig::paper_default()
        };
        // Stage 1: waveform synthesis (CBW leak + FM0 backscatter + noise).
        let t0 = Instant::now();
        let bits: Vec<bool> = (0..capture_bits).map(|_| rng.gen_bool(0.5)).collect();
        let (samples, _) = synthesize_uplink(&cfg, &bits, 1000.0, 1e-3, 0.002, &mut rng);
        let synthesize_s = t0.elapsed().as_secs_f64();
        // Stage 2: STFT over the capture.
        let t1 = Instant::now();
        let sg = dsp::spectrogram::Spectrogram::compute(&samples, 512, 256, cfg.fs_hz)?;
        let spectrogram_s = t1.elapsed().as_secs_f64();
        // Stage 3: carrier estimation off the raw capture.
        let t2 = Instant::now();
        let carrier_hz =
            dsp::ddc::estimate_carrier_hz(&samples, cfg.fs_hz).ok_or(EcoError::Numerical {
                what: "carrier estimate",
            })?;
        let carrier_s = t2.elapsed().as_secs_f64();
        let mut words: Vec<u64> = vec![carrier_hz.to_bits(), sg.frames() as u64];
        words.extend(sg.frequency_track().iter().map(|f_hz| f_hz.to_bits()));
        for frame in 0..sg.frames() {
            if let Some(p) = sg.band_power(frame, 200e3, 260e3) {
                words.push(p.to_bits());
            }
        }
        Ok(CellOut {
            words,
            stages: vec![
                ("synthesize", synthesize_s),
                ("spectrogram", spectrogram_s),
                ("carrier", carrier_s),
            ],
        })
    })
}

/// Workload 4 — `ber-grid`: the Fig 15 Monte-Carlo waterfall, one cell
/// per SNR point with a per-cell derived seed (the binary's serial loop
/// used to thread one RNG through all SNRs, which can't parallelize).
#[must_use]
pub fn ber_grid(scale: &Scale, pool: &Pool) -> EcoResult<WorkloadResult> {
    let all_snrs = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 15.0, 18.0];
    let cells: Vec<f64> = all_snrs.iter().take(scale.ber_snrs).copied().collect();
    let ber_bits = scale.ber_bits;
    run_workload("ber-grid", &cells, pool, move |i, &snr_db| {
        let t = Instant::now();
        let mut rng = StdRng::seed_from_u64(exec::seed::derive(GRID_SEED ^ 0x15, i as u64));
        let eco = reader::rx::simulate_fm0_ber(snr_db, ber_bits, &mut rng);
        let pab = baselines::pab::pab_ber(snr_db, ber_bits, &mut rng);
        Ok(CellOut {
            words: vec![snr_db.to_bits(), eco.to_bits(), pab.to_bits()],
            stages: vec![("montecarlo", t.elapsed().as_secs_f64())],
        })
    })
}

/// Runs every workload at `scale` on `pool`; errors if any workload's
/// parallel pass is not bit-identical to its serial pass.
#[must_use]
pub fn run_all(scale: &Scale, pool: &Pool) -> EcoResult<Vec<WorkloadResult>> {
    let results = vec![
        survey_grid(scale, pool)?,
        fieldmap(scale, pool)?,
        uplink_decode(scale, pool)?,
        ber_grid(scale, pool)?,
    ];
    for r in &results {
        if !r.bit_identical() {
            return Err(EcoError::Numerical {
                what: "parallel sweep diverged from serial output",
            });
        }
    }
    Ok(results)
}

/// Renders results as `BENCH_sweeps.json` (schema
/// `ecocapsule-bench-sweeps/1`). Hand-rolled emission — the workspace is
/// hermetic, so no serde.
#[must_use]
pub fn to_json(results: &[WorkloadResult], pool: &Pool, scale: &Scale) -> String {
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"ecocapsule-bench-sweeps/1\",\n");
    out.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    out.push_str(&format!("  \"pool_workers\": {},\n", pool.workers()));
    out.push_str(&format!("  \"smoke\": {},\n", scale.smoke));
    out.push_str("  \"workloads\": [\n");
    for (k, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"tasks\": {},\n", r.tasks));
        out.push_str(&format!(
            "      \"serial_wall_ms\": {:.3},\n",
            r.serial_wall_ms
        ));
        out.push_str(&format!(
            "      \"parallel_wall_ms\": {:.3},\n",
            r.parallel_wall_ms
        ));
        out.push_str(&format!("      \"speedup\": {:.3},\n", r.speedup()));
        out.push_str(&format!(
            "      \"bit_identical\": {},\n",
            r.bit_identical()
        ));
        out.push_str(&format!(
            "      \"checksum\": \"{:#018x}\",\n",
            r.checksum_serial
        ));
        out.push_str("      \"stage_cpu_ms\": {");
        let stages: Vec<String> = r
            .stage_cpu_ms
            .iter()
            .map(|(name, ms)| format!("\"{name}\": {ms:.3}"))
            .collect();
        out.push_str(&stages.join(", "));
        out.push_str("}\n");
        out.push_str(if k + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

//! Determinism gate for the sweep engine: every workload grid must
//! produce bit-identical output under 1, 2, and N worker threads, and
//! the JSON report must reflect that.

use bench::sweeps::{ber_grid, fieldmap, run_all, to_json, uplink_decode, Scale};
use exec::Pool;

#[test]
fn ber_grid_is_bit_identical_across_worker_counts() {
    let scale = Scale::smoke();
    let reference = ber_grid(&scale, &Pool::serial()).unwrap();
    assert!(reference.bit_identical());
    for workers in [2, Pool::max_parallel().workers().max(3)] {
        let run = ber_grid(&scale, &Pool::new(workers)).unwrap();
        assert_eq!(
            run.checksum_parallel, reference.checksum_serial,
            "ber-grid diverged at {workers} workers"
        );
        assert!(run.bit_identical(), "workers={workers}");
    }
}

#[test]
fn fieldmap_is_bit_identical_across_worker_counts() {
    let scale = Scale::smoke();
    let reference = fieldmap(&scale, &Pool::serial()).unwrap();
    for workers in [2, Pool::max_parallel().workers().max(3)] {
        let run = fieldmap(&scale, &Pool::new(workers)).unwrap();
        assert_eq!(
            run.checksum_parallel, reference.checksum_serial,
            "fieldmap diverged at {workers} workers"
        );
    }
}

#[test]
fn uplink_decode_is_bit_identical_across_worker_counts() {
    let scale = Scale::smoke();
    let reference = uplink_decode(&scale, &Pool::serial()).unwrap();
    assert!(
        reference.tasks >= 3,
        "smoke profile must still exercise several captures"
    );
    let run = uplink_decode(&scale, &Pool::new(2)).unwrap();
    assert_eq!(run.checksum_parallel, reference.checksum_serial);
}

#[test]
fn run_all_reports_every_workload_identical() {
    let scale = Scale::smoke();
    let results = run_all(&scale, &Pool::max_parallel()).unwrap();
    assert!(results.len() >= 3, "JSON must carry at least 3 workloads");
    for r in &results {
        assert!(r.bit_identical(), "{} diverged", r.name);
        assert!(r.tasks > 0);
        assert!(
            !r.stage_cpu_ms.is_empty(),
            "{} has no stage breakdown",
            r.name
        );
    }
    let json = to_json(&results, &Pool::max_parallel(), &scale);
    assert!(json.contains("\"schema\": \"ecocapsule-bench-sweeps/1\""));
    assert!(json.contains("\"bit_identical\": true"));
    assert!(!json.contains("\"bit_identical\": false"));
    assert!(json.contains("\"survey-grid\""));
    assert!(json.contains("\"ber-grid\""));
}

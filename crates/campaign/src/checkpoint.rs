//! Campaign checkpoint/resume: the full mid-campaign state in a
//! versioned byte format.
//!
//! Wire layout (all integers little-endian u64 unless noted):
//!
//! ```text
//! magic  "ECOCAMPN"              8 bytes
//! version                        u64   (currently 1)
//! config_digest                  u64   FNV-1a over specs + options
//! epochs_run                     u64
//! n_walls                        u64
//! per wall:
//!   state words                  length-prefixed (StructureState)
//!   grader words                 length-prefixed (WallGrader)
//! n_records                      u64
//! per record:
//!   epoch, day, fleet_digest
//!   n_walls_in_record; per wall:
//!     name (len + bytes), result_digest,
//!     7 feature words, score bits, grade tag
//! n_detections                   u64
//! per detection:
//!   wall (len + bytes), epoch, day, feature tag, score bits
//! checksum                       u64   FNV-1a over every previous byte
//! ```
//!
//! The trailing checksum makes hostile corruption *detectable*, not
//! just survivable: any bit flip in the structure-state section (or
//! anywhere else) fails the checksum before field decoding even runs,
//! and every decoder underneath is bounds-checked so a forged checksum
//! still cannot cause a panic — only an [`EcoError`].

use dsp::{EcoError, EcoResult};

use crate::engine::{config_digest, Campaign, CampaignOptions, CampaignWallSpec};
use crate::grade::{feature_from_tag, feature_tag, DetectionEvent, WallFeatures, WallGrader};
use crate::report::{health_from_tag, health_tag, EpochRecord, WallEpoch};
use crate::state::StructureState;

const MAGIC: &[u8; 8] = b"ECOCAMPN";
const CHECKPOINT_VERSION: u64 = 1;

/// A campaign frozen at an epoch boundary; resuming reproduces the
/// uninterrupted run bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCheckpoint {
    config_digest: u64,
    epochs_run: u64,
    states: Vec<StructureState>,
    /// Grader state as raw words: the grader's [`crate::GradeConfig`]
    /// is not serialized (the config digest already pins it), so the
    /// words are only decoded at [`CampaignCheckpoint::resume`] time,
    /// under the offered options' config.
    grader_words: Vec<Vec<u64>>,
    records: Vec<EpochRecord>,
    detections: Vec<DetectionEvent>,
}

impl CampaignCheckpoint {
    /// Snapshots `campaign` at its current epoch boundary.
    #[must_use]
    pub fn of(campaign: &Campaign) -> CampaignCheckpoint {
        let grader_words = campaign
            .specs()
            .iter()
            .map(|spec| campaign.grader().graders()[&spec.base.name].encode_words())
            .collect();
        CampaignCheckpoint {
            config_digest: config_digest(campaign.specs(), campaign.options()),
            epochs_run: campaign.epochs_run(),
            states: campaign.states().to_vec(),
            grader_words,
            records: campaign.records().to_vec(),
            detections: campaign.detections().to_vec(),
        }
    }

    /// The configuration digest this checkpoint was taken under.
    #[must_use]
    pub fn config_digest(&self) -> u64 {
        self.config_digest
    }

    /// Epochs completed when the checkpoint was taken.
    #[must_use]
    pub fn epochs_run(&self) -> u64 {
        self.epochs_run
    }

    /// Rebuilds the campaign. The offered `specs` and `options` must
    /// hash to the checkpoint's config digest; every decoded structure
    /// state must validate.
    #[must_use]
    pub fn resume(
        &self,
        specs: Vec<CampaignWallSpec>,
        options: CampaignOptions,
    ) -> EcoResult<Campaign> {
        options.validate()?;
        if self.config_digest != config_digest(&specs, &options) {
            return Err(EcoError::Protocol {
                what: "campaign checkpoint config digest mismatch",
            });
        }
        if self.states.len() != specs.len() || self.grader_words.len() != specs.len() {
            return Err(EcoError::Protocol {
                what: "campaign checkpoint wall count mismatch",
            });
        }
        if self.epochs_run > options.epochs || self.records.len() as u64 != self.epochs_run {
            return Err(EcoError::Protocol {
                what: "campaign checkpoint epoch bookkeeping mismatch",
            });
        }
        for (state, spec) in self.states.iter().zip(&specs) {
            state.validate()?;
            if state.epoch != self.epochs_run {
                return Err(EcoError::Protocol {
                    what: "campaign checkpoint state epoch mismatch",
                });
            }
            if state.capsule_derating.len() != spec.base.standoffs_m.len() {
                return Err(EcoError::Protocol {
                    what: "campaign checkpoint capsule count mismatch",
                });
            }
        }
        let names: Vec<String> = specs.iter().map(|s| s.base.name.clone()).collect();
        let mut grader = crate::grade::CampaignGrader::new(options.grading, &names)?;
        for (name, words) in names.iter().zip(&self.grader_words) {
            let wall_grader =
                WallGrader::decode_words(options.grading, words).ok_or(EcoError::Protocol {
                    what: "malformed campaign grader state",
                })?;
            grader.restore(name, wall_grader)?;
        }
        Ok(Campaign::restore(
            specs,
            options,
            self.states.clone(),
            grader,
            self.records.clone(),
            self.detections.clone(),
        ))
    }

    /// Serializes the checkpoint.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u64(&mut out, CHECKPOINT_VERSION);
        put_u64(&mut out, self.config_digest);
        put_u64(&mut out, self.epochs_run);
        put_u64(&mut out, self.states.len() as u64);
        for (state, grader) in self.states.iter().zip(&self.grader_words) {
            put_words(&mut out, &state.encode_words());
            put_words(&mut out, grader);
        }
        put_u64(&mut out, self.records.len() as u64);
        for record in &self.records {
            put_u64(&mut out, record.epoch);
            put_u64(&mut out, record.day);
            put_u64(&mut out, record.fleet_digest);
            put_u64(&mut out, record.walls.len() as u64);
            for wall in &record.walls {
                put_str(&mut out, &wall.name);
                put_u64(&mut out, wall.result_digest);
                for word in wall.features.encode_words() {
                    put_u64(&mut out, word);
                }
                put_u64(&mut out, wall.score.to_bits());
                put_u64(&mut out, health_tag(wall.grade));
            }
        }
        put_u64(&mut out, self.detections.len() as u64);
        for detection in &self.detections {
            put_str(&mut out, &detection.wall);
            put_u64(&mut out, detection.epoch);
            put_u64(&mut out, detection.day);
            put_u64(&mut out, feature_tag(detection.feature).unwrap_or(u64::MAX));
            put_u64(&mut out, detection.score.to_bits());
        }
        let checksum = byte_checksum(&out);
        put_u64(&mut out, checksum);
        out
    }

    /// Deserializes a checkpoint, rejecting (never panicking on) any
    /// corruption: bad magic/version, a failed trailing checksum,
    /// truncation, oversized lengths, malformed sections, or trailing
    /// bytes.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> EcoResult<CampaignCheckpoint> {
        if bytes.len() < MAGIC.len() + 8 {
            return Err(EcoError::Protocol {
                what: "campaign checkpoint too short",
            });
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let mut buf = [0u8; 8];
        buf.copy_from_slice(tail);
        let stored = u64::from_le_bytes(buf);
        if stored != byte_checksum(body) {
            return Err(EcoError::Protocol {
                what: "campaign checkpoint checksum mismatch",
            });
        }
        let mut d = Dec::new(body);
        if d.take(MAGIC.len())? != MAGIC {
            return Err(EcoError::Protocol {
                what: "bad campaign checkpoint magic",
            });
        }
        if d.u64()? != CHECKPOINT_VERSION {
            return Err(EcoError::Protocol {
                what: "unsupported campaign checkpoint version",
            });
        }
        let config_digest = d.u64()?;
        let epochs_run = d.u64()?;
        let n_walls = d.len()?;
        let mut states = Vec::with_capacity(n_walls);
        let mut grader_words = Vec::with_capacity(n_walls);
        for _ in 0..n_walls {
            let state_words = d.words()?;
            states.push(
                StructureState::decode_words(&state_words).ok_or(EcoError::Protocol {
                    what: "malformed campaign structure state",
                })?,
            );
            let words = d.words()?;
            if words.len() != 20 {
                return Err(EcoError::Protocol {
                    what: "malformed campaign grader state",
                });
            }
            grader_words.push(words);
        }
        let n_records = d.len()?;
        let mut records = Vec::with_capacity(n_records);
        for _ in 0..n_records {
            let epoch = d.u64()?;
            let day = d.u64()?;
            let fleet_digest = d.u64()?;
            let n = d.len()?;
            let mut walls = Vec::with_capacity(n);
            for _ in 0..n {
                let name = d.string()?;
                let result_digest = d.u64()?;
                let mut feature_words = [0u64; 7];
                for word in &mut feature_words {
                    *word = d.u64()?;
                }
                let features =
                    WallFeatures::decode_words(&feature_words).ok_or(EcoError::Protocol {
                        what: "malformed campaign feature words",
                    })?;
                let score = f64::from_bits(d.u64()?);
                let grade = health_from_tag(d.u64()?).ok_or(EcoError::Protocol {
                    what: "unknown campaign health grade tag",
                })?;
                walls.push(WallEpoch {
                    name,
                    result_digest,
                    features,
                    score,
                    grade,
                });
            }
            records.push(EpochRecord {
                epoch,
                day,
                fleet_digest,
                walls,
            });
        }
        let n_detections = d.len()?;
        let mut detections = Vec::with_capacity(n_detections);
        for _ in 0..n_detections {
            let wall = d.string()?;
            let epoch = d.u64()?;
            let day = d.u64()?;
            let feature = feature_from_tag(d.u64()?).ok_or(EcoError::Protocol {
                what: "unknown campaign detection feature tag",
            })?;
            let score = f64::from_bits(d.u64()?);
            detections.push(DetectionEvent {
                wall,
                epoch,
                day,
                feature,
                score,
            });
        }
        if !d.is_empty() {
            return Err(EcoError::Protocol {
                what: "trailing bytes after campaign checkpoint",
            });
        }
        Ok(CampaignCheckpoint {
            config_digest,
            epochs_run,
            states,
            grader_words,
            records,
            detections,
        })
    }
}

/// FNV-1a over raw bytes (the fleet digest helper works on u64 words;
/// the checksum must cover the exact byte stream).
fn byte_checksum(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_words(out: &mut Vec<u8>, words: &[u64]) {
    put_u64(out, words.len() as u64);
    for &w in words {
        put_u64(out, w);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked little-endian decoder; every length it reads is
/// capped by the remaining input, so hostile lengths cannot allocate or
/// index past the buffer.
struct Dec<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, at: 0 }
    }

    fn is_empty(&self) -> bool {
        self.at == self.bytes.len()
    }

    fn take(&mut self, n: usize) -> EcoResult<&'a [u8]> {
        let end = self.at.checked_add(n).ok_or(EcoError::Protocol {
            what: "campaign checkpoint length overflow",
        })?;
        if end > self.bytes.len() {
            return Err(EcoError::Protocol {
                what: "campaign checkpoint truncated",
            });
        }
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u64(&mut self) -> EcoResult<u64> {
        let raw = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(raw);
        Ok(u64::from_le_bytes(buf))
    }

    /// A length field, sanity-capped by the bytes actually remaining.
    fn len(&mut self) -> EcoResult<usize> {
        let v = self.u64()?;
        let cap = (self.bytes.len() - self.at) as u64;
        if v > cap {
            return Err(EcoError::Protocol {
                what: "campaign checkpoint length exceeds input",
            });
        }
        Ok(v as usize)
    }

    fn words(&mut self) -> EcoResult<Vec<u64>> {
        let n = self.len()?;
        let mut words = Vec::with_capacity(n);
        for _ in 0..n {
            words.push(self.u64()?);
        }
        Ok(words)
    }

    fn string(&mut self) -> EcoResult<String> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| EcoError::Protocol {
            what: "campaign checkpoint string not UTF-8",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::DamageScenario;
    use fleet::WallSpec;

    fn campaign_after(epochs: u64) -> Campaign {
        let specs = vec![
            CampaignWallSpec::new(
                WallSpec::new("w0", vec![0.5]).seed(5),
                DamageScenario::quiet(),
            ),
            CampaignWallSpec::new(WallSpec::new("w1", vec![]), DamageScenario::frozen()),
        ];
        let options = CampaignOptions::new().epochs(4).seed(21);
        let mut campaign = Campaign::new(specs, options).unwrap();
        for _ in 0..epochs {
            campaign.run_epoch().unwrap();
        }
        campaign
    }

    fn specs_and_options() -> (Vec<CampaignWallSpec>, CampaignOptions) {
        let specs = vec![
            CampaignWallSpec::new(
                WallSpec::new("w0", vec![0.5]).seed(5),
                DamageScenario::quiet(),
            ),
            CampaignWallSpec::new(WallSpec::new("w1", vec![]), DamageScenario::frozen()),
        ];
        (specs, CampaignOptions::new().epochs(4).seed(21))
    }

    #[test]
    fn bytes_round_trip() {
        let checkpoint = CampaignCheckpoint::of(&campaign_after(2));
        let bytes = checkpoint.to_bytes();
        assert_eq!(CampaignCheckpoint::from_bytes(&bytes).unwrap(), checkpoint);
    }

    #[test]
    fn resume_continues_bit_identically() {
        let full = campaign_after(4).partial_report();
        let checkpoint = CampaignCheckpoint::of(&campaign_after(2));
        let bytes = checkpoint.to_bytes();
        let restored = CampaignCheckpoint::from_bytes(&bytes).unwrap();
        let (specs, options) = specs_and_options();
        let resumed = restored.resume(specs, options).unwrap();
        assert_eq!(resumed.epochs_run(), 2);
        let report = resumed.run_to_completion().unwrap();
        assert_eq!(report.digest(), full.digest());
        assert_eq!(report.trace_jsonl(), full.trace_jsonl());
    }

    #[test]
    fn resume_rejects_a_different_config() {
        let checkpoint = CampaignCheckpoint::of(&campaign_after(1));
        let (specs, options) = specs_and_options();
        assert!(checkpoint
            .resume(specs.clone(), options.clone().seed(99))
            .is_err());
        let mut renamed = specs.clone();
        renamed[0].base.name = "other".into();
        assert!(checkpoint.resume(renamed, options.clone()).is_err());
        let mut rescripted = specs;
        rescripted[0].scenario = DamageScenario::crack_onset(1);
        assert!(checkpoint.resume(rescripted, options).is_err());
    }

    #[test]
    fn every_truncation_errors_never_panics() {
        let bytes = CampaignCheckpoint::of(&campaign_after(2)).to_bytes();
        for n in 0..bytes.len() {
            assert!(
                CampaignCheckpoint::from_bytes(&bytes[..n]).is_err(),
                "truncation at {n} must error"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = CampaignCheckpoint::of(&campaign_after(2)).to_bytes();
        // The trailing checksum catches any single-bit corruption.
        for at in (0..bytes.len()).step_by(7) {
            for bit in 0..8 {
                let mut evil = bytes.clone();
                evil[at] ^= 1 << bit;
                assert!(
                    CampaignCheckpoint::from_bytes(&evil).is_err(),
                    "bit flip at byte {at} bit {bit} must error"
                );
            }
        }
    }

    #[test]
    fn forged_checksums_still_cannot_panic_the_decoder() {
        let bytes = CampaignCheckpoint::of(&campaign_after(1)).to_bytes();
        // Flip a state byte AND re-forge the trailing checksum so the
        // decoder runs on corrupt fields; it must error or produce a
        // checkpoint whose resume fails validation — never panic.
        for at in (8..bytes.len() - 8).step_by(11) {
            let mut evil = bytes.clone();
            evil[at] ^= 0x40;
            let n = evil.len();
            let sum = byte_checksum(&evil[..n - 8]).to_le_bytes();
            evil[n - 8..].copy_from_slice(&sum);
            let (specs, options) = specs_and_options();
            match CampaignCheckpoint::from_bytes(&evil) {
                Err(_) => {}
                Ok(decoded) => {
                    // Decoded but corrupt: resume must either reject it
                    // or still yield a structurally valid campaign.
                    if let Ok(campaign) = decoded.resume(specs, options) {
                        for state in campaign.states() {
                            state.validate().unwrap();
                        }
                    }
                }
            }
        }
    }
}

//! The campaign driver: months of simulated service compressed into
//! scheduled survey epochs.
//!
//! Each epoch the engine (1) advances every wall's [`StructureState`]
//! one epoch under its [`DamageScenario`] script, (2) builds the
//! epoch's [`fleet::WallSpec`]s — the evolved condition plus a derived
//! per-epoch survey seed — and runs them through
//! [`fleet::FleetOptions::run`], and (3) streams every wall's
//! [`WallFeatures`] through the
//! [`CampaignGrader`], collecting grades and detections into the
//! [`CampaignReport`].
//!
//! Determinism contract: seeds derive as [`evolve_seed`] /
//! [`survey_seed`] from the campaign seed — one stream per (purpose,
//! epoch, wall) — and each epoch's fleet inherits the options' pool, so
//! the campaign digest is bit-identical for any worker count and across
//! any checkpoint/resume split at an epoch boundary.

use dsp::{EcoError, EcoResult};
use exec::seed::{derive, derive2};
use fleet::{FleetOptions, WallSpec};

use crate::grade::{CampaignGrader, DetectionEvent, GradeConfig, WallFeatures};
use crate::report::{CampaignReport, EpochRecord, WallEpoch};
use crate::scenario::DamageScenario;
use crate::state::StructureState;

/// Seed for the structure-evolution draws of `(epoch, wall)`.
#[must_use]
pub fn evolve_seed(campaign_seed: u64, epoch: u64, wall: u64) -> u64 {
    derive2(derive(campaign_seed, 0), epoch, wall)
}

/// Seed for the survey of `(epoch, wall)`, folded with the wall's own
/// base seed so two walls with identical geometry still survey on
/// independent streams.
#[must_use]
pub fn survey_seed(campaign_seed: u64, epoch: u64, wall: u64, base_seed: u64) -> u64 {
    derive(derive2(derive(campaign_seed, 1), epoch, wall), base_seed)
}

/// One wall of the campaign: its fleet spec as built, plus the lifetime
/// script it will follow.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignWallSpec {
    /// The wall as built (condition/seed fields are overridden each
    /// epoch by the engine).
    pub base: WallSpec,
    /// The lifetime script.
    pub scenario: DamageScenario,
}

impl CampaignWallSpec {
    /// Pairs a wall with its lifetime script.
    #[must_use]
    pub fn new(base: WallSpec, scenario: DamageScenario) -> Self {
        CampaignWallSpec { base, scenario }
    }

    /// Stable digest words over the base spec and the scenario.
    #[must_use]
    pub fn config_words(&self) -> Vec<u64> {
        let mut words = self.base.config_words();
        words.push(u64::MAX);
        words.extend(self.scenario.config_words());
        words
    }
}

/// Campaign-level knobs: the schedule, the seed, and the fleet/grading
/// configuration underneath.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Survey epochs to run (≥ 1).
    pub epochs: u64,
    /// Simulated days between epochs (≥ 1); only bookkeeping — it maps
    /// epochs onto the calendar in reports and benches.
    pub days_per_epoch: u64,
    /// Campaign seed: every evolution and survey stream derives from it.
    pub seed: u64,
    /// Fleet scheduling options for each epoch's survey round.
    pub fleet: FleetOptions,
    /// Drift-grading configuration.
    pub grading: GradeConfig,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            epochs: 12,
            days_per_epoch: 30,
            seed: 0,
            fleet: FleetOptions::default(),
            grading: GradeConfig::default(),
        }
    }
}

impl CampaignOptions {
    /// Twelve monthly epochs, serial fleet, default grading, seed 0.
    #[must_use]
    pub fn new() -> Self {
        CampaignOptions::default()
    }

    /// Replaces the epoch count.
    #[must_use]
    pub fn epochs(mut self, epochs: u64) -> Self {
        self.epochs = epochs;
        self
    }

    /// Replaces the days-per-epoch spacing.
    #[must_use]
    pub fn days_per_epoch(mut self, days_per_epoch: u64) -> Self {
        self.days_per_epoch = days_per_epoch;
        self
    }

    /// Replaces the campaign seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the per-epoch fleet options.
    #[must_use]
    pub fn fleet(mut self, fleet: FleetOptions) -> Self {
        self.fleet = fleet;
        self
    }

    /// Replaces the grading configuration.
    #[must_use]
    pub fn grading(mut self, grading: GradeConfig) -> Self {
        self.grading = grading;
        self
    }

    /// Checks the schedule is non-degenerate and the nested fleet and
    /// grading options validate.
    #[must_use]
    pub fn validate(&self) -> EcoResult<()> {
        if self.epochs == 0 {
            return Err(EcoError::Protocol {
                what: "campaign needs at least one epoch",
            });
        }
        if self.days_per_epoch == 0 {
            return Err(EcoError::Protocol {
                what: "campaign needs at least one day per epoch",
            });
        }
        self.fleet.validate()?;
        self.grading.validate()
    }

    /// Validates and returns the finished options — the terminal verb of
    /// the builder chain, shared across the whole
    /// `SurveyOptions`/`FleetOptions`/`CampaignOptions`/`ServeOptions`
    /// family.
    #[must_use]
    pub fn build(self) -> EcoResult<Self> {
        self.validate()?;
        Ok(self)
    }

    /// Runs a whole campaign over `specs` start to finish — the one-call
    /// entry point, mirroring [`fleet::FleetOptions::run`] one layer up.
    #[must_use]
    pub fn run(self, specs: Vec<CampaignWallSpec>) -> EcoResult<CampaignReport> {
        Campaign::new(specs, self)?.run_to_completion()
    }
}

/// Digest pinning the static campaign configuration: the schedule,
/// seed, slot budget, grading knobs and every wall's spec + scenario,
/// `u64::MAX`-separated. The fleet pool is deliberately excluded — the
/// digest must not depend on worker count.
#[must_use]
pub fn config_digest(specs: &[CampaignWallSpec], options: &CampaignOptions) -> u64 {
    let mut words = vec![
        options.epochs,
        options.days_per_epoch,
        options.seed,
        options.fleet.budget.quantum_slots,
        options.fleet.budget.round_budget_slots,
        u64::from(options.fleet.budget.aging_rounds),
    ];
    words.extend(options.grading.config_words());
    words.push(specs.len() as u64);
    for spec in specs {
        words.push(u64::MAX);
        words.extend(spec.config_words());
    }
    faults::fnv1a64(words)
}

/// A lifetime-scale monitoring campaign in flight.
#[derive(Debug, Clone)]
pub struct Campaign {
    specs: Vec<CampaignWallSpec>,
    options: CampaignOptions,
    states: Vec<StructureState>,
    grader: CampaignGrader,
    records: Vec<EpochRecord>,
    detections: Vec<DetectionEvent>,
}

impl Campaign {
    /// A fresh campaign over `specs` with every wall as built. Errors
    /// on degenerate options, an invalid scenario, or duplicate wall
    /// names (grading is keyed by name).
    #[must_use]
    pub fn new(specs: Vec<CampaignWallSpec>, options: CampaignOptions) -> EcoResult<Campaign> {
        options.validate()?;
        for spec in &specs {
            spec.scenario.validate()?;
        }
        let names: Vec<String> = specs.iter().map(|s| s.base.name.clone()).collect();
        let grader = CampaignGrader::new(options.grading, &names)?;
        let states = specs
            .iter()
            .map(|s| StructureState::pristine(s.base.standoffs_m.len()))
            .collect();
        Ok(Campaign {
            specs,
            options,
            states,
            grader,
            records: Vec::new(),
            detections: Vec::new(),
        })
    }

    /// Epochs completed so far.
    #[must_use]
    pub fn epochs_run(&self) -> u64 {
        self.records.len() as u64
    }

    /// True once the configured number of epochs has run.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.epochs_run() >= self.options.epochs
    }

    /// The evolving structure states, in spec order.
    #[must_use]
    pub fn states(&self) -> &[StructureState] {
        &self.states
    }

    /// The campaign wall specs, in spec order.
    #[must_use]
    pub fn specs(&self) -> &[CampaignWallSpec] {
        &self.specs
    }

    /// The grading front (checkpointing reads its per-wall state).
    #[must_use]
    pub fn grader(&self) -> &CampaignGrader {
        &self.grader
    }

    /// Epoch records completed so far.
    #[must_use]
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Detections fired so far.
    #[must_use]
    pub fn detections(&self) -> &[DetectionEvent] {
        &self.detections
    }

    /// The epoch's fleet specs: each wall's base spec under its evolved
    /// condition with its derived survey seed.
    fn epoch_specs(&self, epoch: u64) -> Vec<WallSpec> {
        self.specs
            .iter()
            .zip(&self.states)
            .enumerate()
            .map(|(i, (spec, state))| {
                spec.base
                    .clone()
                    .seed(survey_seed(
                        self.options.seed,
                        epoch,
                        i as u64,
                        spec.base.seed,
                    ))
                    .condition(state.condition())
            })
            .collect()
    }

    /// Runs one epoch: evolve every wall, survey the fleet, grade every
    /// wall. Errors if the campaign is already complete, or on a survey
    /// failure (a scenario that degrades a wall into an invalid link
    /// budget).
    #[must_use]
    pub fn run_epoch(&mut self) -> EcoResult<()> {
        if self.is_done() {
            return Err(EcoError::Protocol {
                what: "campaign already ran every epoch",
            });
        }
        let epoch = self.epochs_run();
        let day = epoch * self.options.days_per_epoch;
        for (i, (spec, state)) in self.specs.iter().zip(&mut self.states).enumerate() {
            state.step(
                &spec.scenario,
                evolve_seed(self.options.seed, epoch, i as u64),
            );
        }
        let fleet_report = self.options.fleet.run(self.epoch_specs(epoch))?;
        let mut walls = Vec::with_capacity(self.specs.len());
        for (spec, result) in self.specs.iter().zip(&fleet_report.walls) {
            let features = WallFeatures::of(result, spec.base.standoffs_m.len());
            let assessment = self.grader.observe(&result.name, epoch, &features)?;
            if let Some(feature) = assessment.fired {
                self.detections.push(DetectionEvent {
                    wall: result.name.clone(),
                    epoch,
                    day,
                    feature,
                    score: assessment.score,
                });
            }
            walls.push(WallEpoch {
                name: result.name.clone(),
                result_digest: result.digest(),
                features,
                score: assessment.score,
                grade: assessment.grade,
            });
        }
        self.records.push(EpochRecord {
            epoch,
            day,
            fleet_digest: fleet_report.digest(),
            walls,
        });
        Ok(())
    }

    /// Runs every remaining epoch and returns the report.
    #[must_use]
    pub fn run_to_completion(mut self) -> EcoResult<CampaignReport> {
        while !self.is_done() {
            self.run_epoch()?;
        }
        Ok(CampaignReport {
            epochs: self.options.epochs,
            days_per_epoch: self.options.days_per_epoch,
            records: self.records,
            detections: self.detections,
        })
    }

    /// The report of the epochs completed so far (clones — the campaign
    /// can keep running).
    #[must_use]
    pub fn partial_report(&self) -> CampaignReport {
        CampaignReport {
            epochs: self.options.epochs,
            days_per_epoch: self.options.days_per_epoch,
            records: self.records.clone(),
            detections: self.detections.clone(),
        }
    }

    /// Builds a campaign mid-flight from checkpointed state; used by
    /// [`crate::CampaignCheckpoint`] resume, which has already verified
    /// the config digest.
    pub(crate) fn restore(
        specs: Vec<CampaignWallSpec>,
        options: CampaignOptions,
        states: Vec<StructureState>,
        grader: CampaignGrader,
        records: Vec<EpochRecord>,
        detections: Vec<DetectionEvent>,
    ) -> Campaign {
        Campaign {
            specs,
            options,
            states,
            grader,
            records,
            detections,
        }
    }

    /// Read access to the options for checkpointing.
    #[must_use]
    pub fn options(&self) -> &CampaignOptions {
        &self.options
    }
}

/// Runs a whole campaign start to finish.
///
/// Deprecated in favour of the builder-family entry point
/// [`CampaignOptions::run`]; this shim delegates there and stays
/// digest-equivalent.
#[deprecated(
    since = "0.9.0",
    note = "use CampaignOptions::run (e.g. options.run(specs))"
)]
#[must_use]
pub fn run_campaign(
    specs: Vec<CampaignWallSpec>,
    options: CampaignOptions,
) -> EcoResult<CampaignReport> {
    options.run(specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_specs() -> Vec<CampaignWallSpec> {
        vec![
            CampaignWallSpec::new(
                WallSpec::new("quiet", vec![0.5]).seed(3),
                DamageScenario::quiet(),
            ),
            CampaignWallSpec::new(
                WallSpec::new("bare", vec![]).seed(4),
                DamageScenario::frozen(),
            ),
        ]
    }

    fn tiny_options() -> CampaignOptions {
        CampaignOptions::new().epochs(3).seed(9)
    }

    #[test]
    fn campaigns_are_a_pure_function_of_config() {
        let a = tiny_options().run(tiny_specs()).unwrap();
        let b = tiny_options().run(tiny_specs()).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.trace_jsonl(), b.trace_jsonl());
        assert_eq!(a.records.len(), 3);
        assert_eq!(a.records[1].day, 30);
    }

    #[test]
    fn seeds_change_the_surveys_but_not_the_schedule() {
        let a = tiny_options().run(tiny_specs()).unwrap();
        let b = tiny_options().seed(10).run(tiny_specs()).unwrap();
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.records.len(), b.records.len());
    }

    #[test]
    fn epoch_and_wall_streams_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for epoch in 0..8 {
            for wall in 0..8 {
                assert!(seen.insert(evolve_seed(1, epoch, wall)));
                assert!(seen.insert(survey_seed(1, epoch, wall, 0)));
            }
        }
        assert_ne!(survey_seed(1, 0, 0, 5), survey_seed(1, 0, 0, 6));
    }

    #[test]
    fn running_past_the_end_is_an_error() {
        let mut campaign = Campaign::new(tiny_specs(), tiny_options()).unwrap();
        while !campaign.is_done() {
            campaign.run_epoch().unwrap();
        }
        assert!(campaign.run_epoch().is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_run_campaign_shim_is_digest_equivalent() {
        let via_shim = run_campaign(tiny_specs(), tiny_options()).unwrap();
        let via_builder = tiny_options().run(tiny_specs()).unwrap();
        assert_eq!(via_shim.digest(), via_builder.digest());
        assert_eq!(via_shim.trace_jsonl(), via_builder.trace_jsonl());
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        assert!(Campaign::new(tiny_specs(), tiny_options().epochs(0)).is_err());
        assert!(Campaign::new(tiny_specs(), tiny_options().days_per_epoch(0)).is_err());
        assert!(tiny_options().build().is_ok());
        assert!(tiny_options().epochs(0).build().is_err());
        assert!(tiny_options()
            .fleet(FleetOptions::new().quantum_slots(0))
            .build()
            .is_err());
        let twin = vec![
            CampaignWallSpec::new(WallSpec::new("w", vec![]), DamageScenario::frozen()),
            CampaignWallSpec::new(WallSpec::new("w", vec![]), DamageScenario::frozen()),
        ];
        assert!(
            Campaign::new(twin, tiny_options()).is_err(),
            "duplicate names"
        );
        let invalid = vec![CampaignWallSpec::new(
            WallSpec::new("w", vec![]),
            DamageScenario::quiet().with_severity(-1.0),
        )];
        assert!(Campaign::new(invalid, tiny_options()).is_err());
    }

    #[test]
    fn config_digest_sees_schedule_walls_and_scenarios() {
        let specs = tiny_specs();
        let options = tiny_options();
        let d0 = config_digest(&specs, &options);
        assert_ne!(config_digest(&specs, &options.clone().epochs(4)), d0);
        assert_ne!(config_digest(&specs, &options.clone().seed(1)), d0);
        assert_ne!(
            config_digest(&specs, &options.clone().days_per_epoch(7)),
            d0
        );
        let mut reseeded = tiny_specs();
        reseeded[0].base.seed = 99;
        assert_ne!(config_digest(&reseeded, &options), d0);
        let mut rescripted = tiny_specs();
        rescripted[1].scenario = DamageScenario::crack_onset(1);
        assert_ne!(config_digest(&rescripted, &options), d0);
        assert_ne!(config_digest(&specs[..1].to_vec(), &options), d0);
    }
}

//! Streaming drift analytics: per-wall baselines, drift scores, health
//! grades and detection events.
//!
//! Each wall gets a [`WallGrader`] that learns a feature baseline from
//! the campaign's early quiet epochs, then scores every later epoch by
//! how far its [`WallFeatures`] drift from that baseline. Scores map
//! monotonically onto [`HealthLevel`] grades, and a feature that stays
//! above the detection threshold for a debounce window fires a
//! [`DetectionEvent`] — once per feature per wall.
//!
//! Drift immunity is structural, not statistical: the only scored
//! features are thermally *compensated* strain (the sensor's own
//! temperature reading cancels the seasonal term at
//! [`THERMAL_STRAIN_PER_C`]), powered/read fractions and cold-start
//! energy cost. Raw temperature and humidity are carried for context
//! but never scored, so seasonal swings cannot trip an alarm.

use std::collections::BTreeMap;

use dsp::{EcoError, EcoResult};
use ecocapsule::scenario::{CapsuleOutcome, SurveyReport, THERMAL_STRAIN_PER_C};
use fleet::WallResult;
use protocol::frame::SensorKind;
use shm::health::HealthLevel;

use crate::state::NOMINAL_TEMPERATURE_C;

/// Histogram the node records its cold-start time into, per harvest.
const COLD_START_HISTOGRAM: &str = "energy.cold_start_us";

/// The four scored drift features, in wire-tag order.
pub const FEATURES: [&str; 4] = ["strain", "powered", "read", "cold_start"];

/// Grading knobs: how long to baseline, how far is "damage", and the
/// noise floors that keep quantization from manufacturing huge z-scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradeConfig {
    /// Epochs spent learning the baseline (no scoring, grade A).
    pub baseline_epochs: u64,
    /// Drift score at which a feature is considered a detection.
    pub detect_z: f64,
    /// Consecutive epochs a feature must stay above
    /// [`detect_z`](GradeConfig::detect_z) before its event fires —
    /// debounces one-epoch flukes such as a single lost inventory.
    pub debounce_epochs: u64,
    /// Smallest strain sigma used in the z denominator (strain units);
    /// floors the compensated-strain noise at ~20× the gauge LSB.
    pub strain_sigma_floor: f64,
    /// Unit drop in powered/read fraction worth one point of score.
    pub fraction_floor: f64,
    /// Cold-start mean increase (µs) worth one point of score.
    pub cold_start_floor_us: f64,
}

impl Default for GradeConfig {
    fn default() -> Self {
        GradeConfig {
            baseline_epochs: 4,
            detect_z: 8.0,
            debounce_epochs: 2,
            strain_sigma_floor: 2.0e-6,
            fraction_floor: 0.02,
            cold_start_floor_us: 50.0,
        }
    }
}

impl GradeConfig {
    /// Checks every knob is positive and finite.
    #[must_use]
    pub fn validate(&self) -> EcoResult<()> {
        if self.baseline_epochs == 0 {
            return Err(EcoError::Protocol {
                what: "grading needs at least one baseline epoch",
            });
        }
        if self.debounce_epochs == 0 {
            return Err(EcoError::Protocol {
                what: "grading needs a debounce window of at least one epoch",
            });
        }
        for (what, value) in [
            ("grading detect_z", self.detect_z),
            ("grading strain sigma floor", self.strain_sigma_floor),
            ("grading fraction floor", self.fraction_floor),
            ("grading cold-start floor", self.cold_start_floor_us),
        ] {
            if !(value > 0.0 && value.is_finite()) {
                return Err(EcoError::NonPositive { what, value });
            }
        }
        Ok(())
    }

    /// Stable digest words (floats as bits).
    #[must_use]
    pub fn config_words(&self) -> [u64; 6] {
        [
            self.baseline_epochs,
            self.detect_z.to_bits(),
            self.debounce_epochs,
            self.strain_sigma_floor.to_bits(),
            self.fraction_floor.to_bits(),
            self.cold_start_floor_us.to_bits(),
        ]
    }
}

/// One epoch's feature vector for one wall, extracted from its
/// [`WallResult`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WallFeatures {
    /// Mean of the wall's strain readings (strain units); 0 when none.
    pub strain_mean: f64,
    /// Mean of the wall's temperature readings (°C); 0 when none.
    pub temperature_mean_c: f64,
    /// Mean of the wall's humidity readings (%); 0 when none.
    pub humidity_mean: f64,
    /// Fraction of implanted capsules that powered up.
    pub powered_fraction: f64,
    /// Fraction of implanted capsules whose sensors were read out.
    pub read_fraction: f64,
    /// Mean node cold-start time (µs); 0 when nothing powered.
    pub cold_start_mean_us: f64,
    /// Number of strain readings behind `strain_mean` (0 means the
    /// strain/temperature/humidity means are absent, not zero).
    pub readings: u64,
}

/// Mean of the readings of one sensor kind, with the sample count.
fn kind_mean(report: &SurveyReport, kind: SensorKind) -> (f64, u64) {
    let mut sum = 0.0;
    let mut n = 0u64;
    for (_, k, value) in &report.readings {
        if *k == kind {
            sum += value;
            n += 1;
        }
    }
    if n == 0 {
        (0.0, 0)
    } else {
        (sum / n as f64, n)
    }
}

impl WallFeatures {
    /// Extracts the feature vector from one wall's fleet result.
    /// `capsule_count` is the wall's implanted-capsule count (the
    /// denominator for the powered/read fractions); a bare wall reports
    /// all-zero features.
    #[must_use]
    pub fn of(result: &WallResult, capsule_count: usize) -> WallFeatures {
        let report = &result.report;
        let (strain_mean, readings) = kind_mean(report, SensorKind::Strain);
        let (temperature_mean_c, _) = kind_mean(report, SensorKind::Temperature);
        let (humidity_mean, _) = kind_mean(report, SensorKind::Humidity);
        let denom = capsule_count.max(1) as f64;
        let read = report
            .outcomes
            .iter()
            .filter(|(_, o)| matches!(o, CapsuleOutcome::Read { .. }))
            .count();
        let cold_start_mean_us = result
            .histograms
            .iter()
            .find(|(name, _)| name == COLD_START_HISTOGRAM)
            .map(|(_, h)| h.mean())
            .unwrap_or(0.0);
        WallFeatures {
            strain_mean,
            temperature_mean_c,
            humidity_mean,
            powered_fraction: if capsule_count == 0 {
                0.0
            } else {
                report.powered_ids.len() as f64 / denom
            },
            read_fraction: if capsule_count == 0 {
                0.0
            } else {
                read as f64 / denom
            },
            cold_start_mean_us,
            readings,
        }
    }

    /// The strain mean with the seasonal thermal term removed, using
    /// the wall's *own* temperature reading — the measurement and the
    /// compensation see the same sensor, so drift cancels to
    /// quantization level.
    #[must_use]
    pub fn compensated_strain(&self) -> f64 {
        self.strain_mean - THERMAL_STRAIN_PER_C * (self.temperature_mean_c - NOMINAL_TEMPERATURE_C)
    }

    /// Stable word serialization (floats as bits, count last).
    #[must_use]
    pub fn encode_words(&self) -> [u64; 7] {
        [
            self.strain_mean.to_bits(),
            self.temperature_mean_c.to_bits(),
            self.humidity_mean.to_bits(),
            self.powered_fraction.to_bits(),
            self.read_fraction.to_bits(),
            self.cold_start_mean_us.to_bits(),
            self.readings,
        ]
    }

    /// Inverse of [`WallFeatures::encode_words`].
    #[must_use]
    pub fn decode_words(words: &[u64]) -> Option<WallFeatures> {
        if words.len() != 7 {
            return None;
        }
        Some(WallFeatures {
            strain_mean: f64::from_bits(words[0]),
            temperature_mean_c: f64::from_bits(words[1]),
            humidity_mean: f64::from_bits(words[2]),
            powered_fraction: f64::from_bits(words[3]),
            read_fraction: f64::from_bits(words[4]),
            cold_start_mean_us: f64::from_bits(words[5]),
            readings: words[6],
        })
    }
}

/// Streaming mean/variance accumulator (count, sum, sum of squares).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FeatureBaseline {
    /// Samples folded in.
    pub n: u64,
    /// Running sum.
    pub sum: f64,
    /// Running sum of squares.
    pub sum_sq: f64,
}

impl FeatureBaseline {
    /// Folds one sample in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.sum_sq += x * x;
    }

    /// Mean of the folded samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.sum / self.n as f64
    }

    /// Population standard deviation (0 when fewer than two samples).
    #[must_use]
    pub fn std(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let n = self.n as f64;
        let var = (self.sum_sq - self.sum * self.sum / n) / n;
        var.max(0.0).sqrt()
    }

    /// Stable word serialization.
    #[must_use]
    pub fn encode_words(&self) -> [u64; 3] {
        [self.n, self.sum.to_bits(), self.sum_sq.to_bits()]
    }

    /// Inverse of [`FeatureBaseline::encode_words`].
    #[must_use]
    pub fn decode_words(words: &[u64]) -> Option<FeatureBaseline> {
        if words.len() != 3 {
            return None;
        }
        Some(FeatureBaseline {
            n: words[0],
            sum: f64::from_bits(words[1]),
            sum_sq: f64::from_bits(words[2]),
        })
    }
}

/// What one grading step concluded about one wall at one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WallAssessment {
    /// The wall's drift score this epoch (max over scored features).
    pub score: f64,
    /// The health grade the score maps to.
    pub grade: HealthLevel,
    /// Feature whose detection fired *this* epoch, if any (from
    /// [`FEATURES`]); each feature fires at most once per wall.
    pub fired: Option<&'static str>,
}

/// A damage detection: which wall, when, and on what evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionEvent {
    /// Wall name.
    pub wall: String,
    /// Epoch the detection fired (after debouncing).
    pub epoch: u64,
    /// First simulated day of that epoch.
    pub day: u64,
    /// The drifting feature (one of [`FEATURES`]).
    pub feature: &'static str,
    /// The wall's drift score at firing time.
    pub score: f64,
}

/// Per-wall streaming grader: baseline, debounce streaks and fired
/// flags for the four scored features.
#[derive(Debug, Clone, PartialEq)]
pub struct WallGrader {
    config: GradeConfig,
    strain: FeatureBaseline,
    powered: FeatureBaseline,
    read: FeatureBaseline,
    cold_start: FeatureBaseline,
    streaks: [u64; 4],
    fired: [bool; 4],
}

impl WallGrader {
    /// A fresh grader with an empty baseline.
    #[must_use]
    pub fn new(config: GradeConfig) -> Self {
        WallGrader {
            config,
            strain: FeatureBaseline::default(),
            powered: FeatureBaseline::default(),
            read: FeatureBaseline::default(),
            cold_start: FeatureBaseline::default(),
            streaks: [0; 4],
            fired: [false; 4],
        }
    }

    /// Per-feature drift scores for `features` against the learned
    /// baseline: `[strain, powered, read, cold_start]`. Strain is
    /// two-sided on the compensated value; the availability features
    /// are one-sided (only drops/increases toward failure count).
    #[must_use]
    pub fn scores(&self, features: &WallFeatures) -> [f64; 4] {
        let cfg = &self.config;
        let z_strain = if features.readings == 0 || self.strain.n == 0 {
            0.0
        } else {
            let sigma = self.strain.std().max(cfg.strain_sigma_floor);
            (features.compensated_strain() - self.strain.mean()).abs() / sigma
        };
        let z_powered =
            (self.powered.mean() - features.powered_fraction).max(0.0) / cfg.fraction_floor;
        let z_read = (self.read.mean() - features.read_fraction).max(0.0) / cfg.fraction_floor;
        let z_cold = (features.cold_start_mean_us - self.cold_start.mean()).max(0.0)
            / cfg.cold_start_floor_us;
        [z_strain, z_powered, z_read, z_cold]
    }

    /// Maps a drift score onto a health grade. Monotone: a larger score
    /// never grades better.
    #[must_use]
    pub fn grade_of(&self, score: f64) -> HealthLevel {
        let z = self.config.detect_z;
        if score < 0.125 * z {
            HealthLevel::A
        } else if score < 0.25 * z {
            HealthLevel::B
        } else if score < 0.5 * z {
            HealthLevel::C
        } else if score < z {
            HealthLevel::D
        } else if score < 2.0 * z {
            HealthLevel::E
        } else {
            HealthLevel::F
        }
    }

    /// Feeds one epoch's features through the grader. During the
    /// baseline window the features are learned and the wall grades A;
    /// afterwards the baseline freezes and drift is scored.
    pub fn observe(&mut self, epoch: u64, features: &WallFeatures) -> WallAssessment {
        if epoch < self.config.baseline_epochs {
            if features.readings > 0 {
                self.strain.push(features.compensated_strain());
            }
            self.powered.push(features.powered_fraction);
            self.read.push(features.read_fraction);
            self.cold_start.push(features.cold_start_mean_us);
            return WallAssessment {
                score: 0.0,
                grade: HealthLevel::A,
                fired: None,
            };
        }
        let scores = self.scores(features);
        let mut fired = None;
        for (i, &z) in scores.iter().enumerate() {
            if z >= self.config.detect_z {
                self.streaks[i] += 1;
                if self.streaks[i] >= self.config.debounce_epochs && !self.fired[i] {
                    self.fired[i] = true;
                    fired = fired.or(Some(FEATURES[i]));
                }
            } else {
                self.streaks[i] = 0;
            }
        }
        let score = scores.iter().fold(0.0f64, |a, &b| a.max(b));
        WallAssessment {
            score,
            grade: self.grade_of(score),
            fired,
        }
    }

    /// Stable word serialization of the full grader state (config
    /// excluded — it lives in the campaign config digest).
    #[must_use]
    pub fn encode_words(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(20);
        for b in [&self.strain, &self.powered, &self.read, &self.cold_start] {
            words.extend(b.encode_words());
        }
        words.extend(self.streaks);
        words.extend(self.fired.iter().map(|&f| u64::from(f)));
        words
    }

    /// Inverse of [`WallGrader::encode_words`] under `config`. Returns
    /// `None` on a malformed word stream (bad length or a fired flag
    /// that is not 0/1).
    #[must_use]
    pub fn decode_words(config: GradeConfig, words: &[u64]) -> Option<WallGrader> {
        if words.len() != 20 {
            return None;
        }
        let mut grader = WallGrader::new(config);
        grader.strain = FeatureBaseline::decode_words(&words[0..3])?;
        grader.powered = FeatureBaseline::decode_words(&words[3..6])?;
        grader.read = FeatureBaseline::decode_words(&words[6..9])?;
        grader.cold_start = FeatureBaseline::decode_words(&words[9..12])?;
        grader.streaks.copy_from_slice(&words[12..16]);
        for (flag, &w) in grader.fired.iter_mut().zip(&words[16..20]) {
            *flag = match w {
                0 => false,
                1 => true,
                _ => return None,
            };
        }
        Some(grader)
    }
}

/// The campaign's grading front: one [`WallGrader`] per wall, keyed by
/// name so the assessment of a wall depends only on that wall's own
/// feature series — never on the order walls are presented in.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignGrader {
    config: GradeConfig,
    graders: BTreeMap<String, WallGrader>,
}

impl CampaignGrader {
    /// A fresh grader for the named walls. Errors on a duplicate name —
    /// two walls sharing a grader would corrupt both baselines.
    #[must_use]
    pub fn new(config: GradeConfig, wall_names: &[String]) -> EcoResult<CampaignGrader> {
        config.validate()?;
        let mut graders = BTreeMap::new();
        for name in wall_names {
            if graders
                .insert(name.clone(), WallGrader::new(config))
                .is_some()
            {
                return Err(EcoError::Protocol {
                    what: "duplicate wall name in campaign",
                });
            }
        }
        Ok(CampaignGrader { config, graders })
    }

    /// The grading configuration.
    #[must_use]
    pub fn config(&self) -> GradeConfig {
        self.config
    }

    /// Feeds one wall-epoch through its grader. Errors on a wall name
    /// the grader was not built for.
    #[must_use]
    pub fn observe(
        &mut self,
        wall: &str,
        epoch: u64,
        features: &WallFeatures,
    ) -> EcoResult<WallAssessment> {
        let grader = self.graders.get_mut(wall).ok_or(EcoError::Protocol {
            what: "grading a wall the campaign does not know",
        })?;
        Ok(grader.observe(epoch, features))
    }

    /// The per-wall graders in name order (for checkpointing).
    #[must_use]
    pub fn graders(&self) -> &BTreeMap<String, WallGrader> {
        &self.graders
    }

    /// Replaces one wall's grader state (for resume). Errors on an
    /// unknown wall.
    #[must_use]
    pub fn restore(&mut self, wall: &str, grader: WallGrader) -> EcoResult<()> {
        match self.graders.get_mut(wall) {
            Some(slot) => {
                *slot = grader;
                Ok(())
            }
            None => Err(EcoError::Protocol {
                what: "restoring a wall the campaign does not know",
            }),
        }
    }
}

/// Wire tag of a feature name, for checkpoints and digests.
#[must_use]
pub fn feature_tag(feature: &str) -> Option<u64> {
    FEATURES
        .iter()
        .position(|&f| f == feature)
        .map(|i| i as u64)
}

/// Inverse of [`feature_tag`].
#[must_use]
pub fn feature_from_tag(tag: u64) -> Option<&'static str> {
    usize::try_from(tag)
        .ok()
        .and_then(|i| FEATURES.get(i))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_features() -> WallFeatures {
        WallFeatures {
            // 50 µε of true strain plus the thermal term its own 30 °C
            // reading implies — physically consistent, so compensation
            // recovers exactly 50 µε.
            strain_mean: 50.0e-6 + THERMAL_STRAIN_PER_C * 5.0,
            temperature_mean_c: 30.0,
            humidity_mean: 70.0,
            powered_fraction: 1.0,
            read_fraction: 1.0,
            cold_start_mean_us: 900.0,
            readings: 5,
        }
    }

    /// Observes `n` baseline epochs of quiet features (with small
    /// seeded thermal variation the compensation must cancel).
    fn baselined(config: GradeConfig) -> WallGrader {
        let mut g = WallGrader::new(config);
        for epoch in 0..config.baseline_epochs {
            let dt = epoch as f64 - 1.5;
            let f = WallFeatures {
                temperature_mean_c: 30.0 + 4.0 * dt,
                strain_mean: 50.0e-6 + THERMAL_STRAIN_PER_C * (4.0 * dt + 5.0),
                ..quiet_features()
            };
            let a = g.observe(epoch, &f);
            assert_eq!(a.grade, HealthLevel::A);
            assert!(a.fired.is_none());
        }
        g
    }

    #[test]
    fn thermal_swings_cancel_but_real_strain_scores() {
        let config = GradeConfig::default();
        let mut g = baselined(config);
        // A +20 °C swing with matching thermal strain: compensated
        // drift is zero, score stays tiny.
        let seasonal = WallFeatures {
            temperature_mean_c: 50.0,
            strain_mean: 50.0e-6 + THERMAL_STRAIN_PER_C * 25.0,
            ..quiet_features()
        };
        let a = g.observe(config.baseline_epochs, &seasonal);
        assert!(a.score < 1.0, "seasonal epoch scored {}", a.score);
        assert_eq!(a.grade, HealthLevel::A);
        // The same epoch plus 180 µε of inelastic strain: scores far
        // beyond the detection threshold.
        let damaged = WallFeatures {
            strain_mean: seasonal.strain_mean + 180.0e-6,
            ..seasonal
        };
        let a = g.observe(config.baseline_epochs + 1, &damaged);
        assert!(a.score > config.detect_z, "damage scored only {}", a.score);
        assert_eq!(a.grade, HealthLevel::F);
    }

    #[test]
    fn detection_debounces_and_fires_once() {
        let config = GradeConfig::default();
        let mut g = baselined(config);
        let dead = WallFeatures {
            powered_fraction: 0.6,
            read_fraction: 0.6,
            ..quiet_features()
        };
        let e0 = config.baseline_epochs;
        assert_eq!(g.observe(e0, &dead).fired, None, "first epoch debounced");
        assert_eq!(
            g.observe(e0 + 1, &dead).fired,
            Some("powered"),
            "second consecutive epoch fires"
        );
        assert_eq!(g.observe(e0 + 2, &dead).fired, None, "fires only once");
    }

    #[test]
    fn one_epoch_blips_never_fire() {
        let config = GradeConfig::default();
        let mut g = baselined(config);
        let blip = WallFeatures {
            read_fraction: 0.6,
            ..quiet_features()
        };
        let e0 = config.baseline_epochs;
        assert_eq!(g.observe(e0, &blip).fired, None);
        // Recovery resets the streak; the next blip is debounced again.
        assert!(g.observe(e0 + 1, &quiet_features()).fired.is_none());
        assert_eq!(g.observe(e0 + 2, &blip).fired, None);
    }

    #[test]
    fn scores_are_monotone_in_injected_strain() {
        let config = GradeConfig::default();
        let g = baselined(config);
        let mut last = -1.0;
        for k in 0..10 {
            let f = WallFeatures {
                strain_mean: 50.0e-6 + THERMAL_STRAIN_PER_C * 5.0 + k as f64 * 40.0e-6,
                ..quiet_features()
            };
            let score = g.scores(&f).iter().fold(0.0f64, |a, &b| a.max(b));
            assert!(score >= last, "severity {k}: {score} < {last}");
            let grade = g.grade_of(score);
            assert!(grade >= g.grade_of(last.max(0.0)), "grade regressed at {k}");
            last = score;
        }
    }

    #[test]
    fn grades_cover_all_bands_monotonically() {
        let g = WallGrader::new(GradeConfig::default());
        let expected = [
            (0.0, HealthLevel::A),
            (1.5, HealthLevel::B),
            (3.0, HealthLevel::C),
            (5.0, HealthLevel::D),
            (10.0, HealthLevel::E),
            (20.0, HealthLevel::F),
        ];
        for (score, grade) in expected {
            assert_eq!(g.grade_of(score), grade, "score {score}");
        }
    }

    #[test]
    fn bare_walls_grade_quietly() {
        let config = GradeConfig::default();
        let mut g = WallGrader::new(config);
        for epoch in 0..config.baseline_epochs + 5 {
            let a = g.observe(epoch, &WallFeatures::default());
            assert_eq!(a.score, 0.0);
            assert_eq!(a.grade, HealthLevel::A);
            assert!(a.fired.is_none());
        }
    }

    #[test]
    fn grader_words_round_trip() {
        let config = GradeConfig::default();
        let mut g = baselined(config);
        let dead = WallFeatures {
            powered_fraction: 0.0,
            read_fraction: 0.0,
            readings: 0,
            ..quiet_features()
        };
        g.observe(config.baseline_epochs, &dead);
        let words = g.encode_words();
        assert_eq!(WallGrader::decode_words(config, &words), Some(g));
        assert_eq!(WallGrader::decode_words(config, &words[..19]), None);
        let mut bad = words;
        bad[16] = 7;
        assert_eq!(WallGrader::decode_words(config, &bad), None, "bad flag");
    }

    #[test]
    fn campaign_grader_rejects_duplicates_and_strangers() {
        let names = vec!["a".to_string(), "a".to_string()];
        assert!(CampaignGrader::new(GradeConfig::default(), &names).is_err());
        let mut g = CampaignGrader::new(GradeConfig::default(), &["a".to_string()]).unwrap();
        assert!(g.observe("b", 0, &WallFeatures::default()).is_err());
        assert!(g
            .restore("b", WallGrader::new(GradeConfig::default()))
            .is_err());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = [
            GradeConfig {
                baseline_epochs: 0,
                ..GradeConfig::default()
            },
            GradeConfig {
                debounce_epochs: 0,
                ..GradeConfig::default()
            },
            GradeConfig {
                detect_z: 0.0,
                ..GradeConfig::default()
            },
            GradeConfig {
                strain_sigma_floor: -1.0,
                ..GradeConfig::default()
            },
            GradeConfig {
                fraction_floor: f64::NAN,
                ..GradeConfig::default()
            },
        ];
        for config in bad {
            assert!(config.validate().is_err(), "{config:?}");
        }
    }

    #[test]
    fn feature_tags_round_trip() {
        for (i, &f) in FEATURES.iter().enumerate() {
            assert_eq!(feature_tag(f), Some(i as u64));
            assert_eq!(feature_from_tag(i as u64), Some(f));
        }
        assert_eq!(feature_tag("bogus"), None);
        assert_eq!(feature_from_tag(4), None);
    }
}

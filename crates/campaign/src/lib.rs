//! Lifetime-scale SHM campaigns: an evolving structure surveyed for
//! months, with drift analytics that tell damage from drift.
//!
//! The paper's pilot (§6) monitors one footbridge over weeks; the
//! campaign layer scales that along the *time* axis the way
//! [`fleet`] scales it along the *space* axis. A campaign compresses a
//! structure's service life into scheduled survey epochs:
//!
//! - **Evolving structure** ([`StructureState`], [`DamageScenario`]):
//!   between fleet rounds the walls *change* — progressive stiffness
//!   loss drags the wave speeds and resonant carrier down, crack onset
//!   adds S-wave attenuation across the charging path, seasonal
//!   temperature/humidity drift rides on top, and capsules age toward
//!   death. All of it is scripted, seeded via [`exec::seed::derive`]
//!   streams, and projected into an
//!   [`ecocapsule::scenario::WallCondition`] per epoch.
//! - **Campaign driver** ([`Campaign`], [`CampaignOptions::run`]): each
//!   epoch evolves every wall, runs the fleet
//!   ([`fleet::FleetOptions::run`]) under
//!   the evolved conditions with derived survey seeds, and records the
//!   epoch. [`CampaignCheckpoint`] freezes the whole thing at any
//!   epoch boundary — ECOFLEET-style versioned bytes plus a trailing
//!   checksum — and resumes bit-identically.
//! - **Streaming analytics** ([`CampaignGrader`], [`GradeConfig`]):
//!   per-wall baselines learned from the early quiet epochs, drift
//!   scores over thermally *compensated* features, health grades on
//!   the paper's A–F scale ([`shm::health::HealthLevel`]), and
//!   debounced [`DetectionEvent`]s when a wall leaves its baseline.
//!
//! Determinism contract: the [`CampaignReport::digest`] is a pure
//! function of specs + options — bit-identical for any fleet worker
//! count and across any checkpoint/resume split. The differential,
//! property and golden tests in `tests/` pin all three.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod checkpoint;
mod engine;
pub mod grade;
mod report;
mod scenario;
mod state;

pub use checkpoint::CampaignCheckpoint;
#[allow(deprecated)]
pub use engine::run_campaign;
pub use engine::{
    config_digest, evolve_seed, survey_seed, Campaign, CampaignOptions, CampaignWallSpec,
};
pub use grade::{
    CampaignGrader, DetectionEvent, GradeConfig, WallAssessment, WallFeatures, WallGrader,
};
pub use report::{health_from_tag, health_tag, CampaignReport, EpochRecord, WallEpoch};
pub use scenario::{DamageScenario, Seasonal, NEVER};
pub use state::{StructureState, MAX_CREEP_STRAIN, MIN_STIFFNESS_FACTOR};

/// Packs a string into digest words: its bytes 8 per word
/// (little-endian, zero-padded) followed by the byte length, so `"a"`
/// and `"a\0"` digest differently. (Same packing as the fleet layer's.)
pub(crate) fn str_words(s: &str) -> Vec<u64> {
    let bytes = s.as_bytes();
    let mut words: Vec<u64> = bytes
        .chunks(8)
        .map(|chunk| {
            chunk
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << (8 * i)))
        })
        .collect();
    words.push(bytes.len() as u64);
    words
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn str_words_distinguishes_length_and_content() {
        assert_ne!(str_words("a"), str_words("b"));
        assert_ne!(str_words("a"), str_words("a\0"));
        assert_eq!(str_words(""), vec![0]);
    }
}

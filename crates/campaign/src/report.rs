//! Campaign results: the per-epoch record stream, detections, and the
//! digest/trace witnesses the differential tests compare.

use shm::health::HealthLevel;

use crate::grade::{feature_tag, DetectionEvent, WallFeatures};

/// Wire/digest tag of a health grade.
#[must_use]
pub fn health_tag(grade: HealthLevel) -> u64 {
    match grade {
        HealthLevel::A => 0,
        HealthLevel::B => 1,
        HealthLevel::C => 2,
        HealthLevel::D => 3,
        HealthLevel::E => 4,
        HealthLevel::F => 5,
    }
}

/// Inverse of [`health_tag`].
#[must_use]
pub fn health_from_tag(tag: u64) -> Option<HealthLevel> {
    Some(match tag {
        0 => HealthLevel::A,
        1 => HealthLevel::B,
        2 => HealthLevel::C,
        3 => HealthLevel::D,
        4 => HealthLevel::E,
        5 => HealthLevel::F,
        _ => return None,
    })
}

/// One wall's outcome at one epoch: the survey witness plus the
/// analytics verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct WallEpoch {
    /// Wall name.
    pub name: String,
    /// Digest of the wall's full [`fleet::WallResult`] this epoch.
    pub result_digest: u64,
    /// The feature vector the grader scored.
    pub features: WallFeatures,
    /// Drift score this epoch.
    pub score: f64,
    /// Health grade this epoch.
    pub grade: HealthLevel,
}

/// One completed epoch: when it ran, the fleet-level witness, and every
/// wall's outcome in spec order.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: u64,
    /// First simulated day of the epoch.
    pub day: u64,
    /// [`fleet::FleetReport::digest`] of the epoch's fleet run.
    pub fleet_digest: u64,
    /// Per-wall outcomes, in spec order.
    pub walls: Vec<WallEpoch>,
}

/// The aggregated outcome of a campaign run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CampaignReport {
    /// Epochs the campaign was configured for.
    pub epochs: u64,
    /// Simulated days per epoch.
    pub days_per_epoch: u64,
    /// One record per completed epoch, in order.
    pub records: Vec<EpochRecord>,
    /// Every detection fired, in firing order.
    pub detections: Vec<DetectionEvent>,
}

impl CampaignReport {
    /// Stable digest over the whole campaign: schedule, every epoch
    /// record (fleet digest, per-wall features/score/grade bit-exact)
    /// and every detection, `u64::MAX`-separated. Bit-identical across
    /// fleet worker counts and checkpoint/resume splits.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut words = vec![self.epochs, self.days_per_epoch, u64::MAX];
        for r in &self.records {
            words.push(r.epoch);
            words.push(r.day);
            words.push(r.fleet_digest);
            for w in &r.walls {
                words.extend(crate::str_words(&w.name));
                words.push(w.result_digest);
                words.extend(w.features.encode_words());
                words.push(w.score.to_bits());
                words.push(health_tag(w.grade));
            }
            words.push(u64::MAX);
        }
        for d in &self.detections {
            words.extend(crate::str_words(&d.wall));
            words.push(d.epoch);
            words.push(d.day);
            words.push(feature_tag(d.feature).unwrap_or(u64::MAX));
            words.push(d.score.to_bits());
        }
        faults::fnv1a64(words)
    }

    /// The campaign trace: one `campaign_epoch` header per epoch, one
    /// `campaign_wall` line per wall per epoch, and one
    /// `campaign_detection` line per detection at the epoch it fired —
    /// floats rendered as bit-exact hex so the text is byte-identical
    /// whenever the digests are.
    #[must_use]
    pub fn trace_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&format!(
                "{{\"ev\":\"campaign_epoch\",\"epoch\":{},\"day\":{},\"fleet_digest\":\"{:#018x}\"}}\n",
                r.epoch, r.day, r.fleet_digest
            ));
            for w in &r.walls {
                out.push_str(&format!(
                    "{{\"ev\":\"campaign_wall\",\"epoch\":{},\"wall\":\"{}\",\"grade\":\"{}\",\"score_bits\":\"{:#018x}\",\"powered_bits\":\"{:#018x}\",\"strain_bits\":\"{:#018x}\"}}\n",
                    r.epoch,
                    escape_json(&w.name),
                    w.grade,
                    w.score.to_bits(),
                    w.features.powered_fraction.to_bits(),
                    w.features.strain_mean.to_bits()
                ));
            }
            for d in self.detections.iter().filter(|d| d.epoch == r.epoch) {
                out.push_str(&format!(
                    "{{\"ev\":\"campaign_detection\",\"epoch\":{},\"day\":{},\"wall\":\"{}\",\"feature\":\"{}\",\"score_bits\":\"{:#018x}\"}}\n",
                    d.epoch,
                    d.day,
                    escape_json(&d.wall),
                    d.feature,
                    d.score.to_bits()
                ));
            }
        }
        out
    }

    /// A wall's health-grade timeline, one grade per completed epoch.
    #[must_use]
    pub fn grade_timeline(&self, wall: &str) -> Vec<(u64, HealthLevel)> {
        self.records
            .iter()
            .filter_map(|r| {
                r.walls
                    .iter()
                    .find(|w| w.name == wall)
                    .map(|w| (r.epoch, w.grade))
            })
            .collect()
    }

    /// The first detection on `wall`, if any.
    #[must_use]
    pub fn first_detection(&self, wall: &str) -> Option<&DetectionEvent> {
        self.detections.iter().find(|d| d.wall == wall)
    }
}

/// Minimal JSON string escaping for wall names embedded in the trace.
pub(crate) fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wall_epoch(name: &str, grade: HealthLevel) -> WallEpoch {
        WallEpoch {
            name: name.into(),
            result_digest: 7,
            features: WallFeatures::default(),
            score: 1.25,
            grade,
        }
    }

    fn report() -> CampaignReport {
        CampaignReport {
            epochs: 2,
            days_per_epoch: 30,
            records: vec![
                EpochRecord {
                    epoch: 0,
                    day: 0,
                    fleet_digest: 11,
                    walls: vec![wall_epoch("a", HealthLevel::A)],
                },
                EpochRecord {
                    epoch: 1,
                    day: 30,
                    fleet_digest: 12,
                    walls: vec![wall_epoch("a", HealthLevel::E)],
                },
            ],
            detections: vec![DetectionEvent {
                wall: "a".into(),
                epoch: 1,
                day: 30,
                feature: "strain",
                score: 9.5,
            }],
        }
    }

    #[test]
    fn digest_sees_every_field() {
        let base = report();
        let mut regraded = base.clone();
        regraded.records[1].walls[0].grade = HealthLevel::F;
        let mut rescored = base.clone();
        rescored.records[1].walls[0].score = 2.0;
        let mut redigested = base.clone();
        redigested.records[0].fleet_digest = 99;
        let mut undetected = base.clone();
        undetected.detections.clear();
        let mut refeatured = base.clone();
        refeatured.records[0].walls[0].features.powered_fraction = 0.5;
        for v in [regraded, rescored, redigested, undetected, refeatured] {
            assert_ne!(v.digest(), base.digest());
        }
    }

    #[test]
    fn trace_interleaves_epochs_walls_and_detections() {
        let trace = report().trace_jsonl();
        let lines: Vec<&str> = trace.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains("\"ev\":\"campaign_epoch\"") && lines[0].contains("\"epoch\":0"));
        assert!(
            lines[1].contains("\"ev\":\"campaign_wall\"") && lines[1].contains("\"grade\":\"A\"")
        );
        assert!(lines[3].contains("\"grade\":\"E\""));
        assert!(
            lines[4].contains("\"ev\":\"campaign_detection\"")
                && lines[4].contains("\"feature\":\"strain\"")
        );
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn timeline_and_first_detection_query_by_wall() {
        let r = report();
        assert_eq!(
            r.grade_timeline("a"),
            vec![(0, HealthLevel::A), (1, HealthLevel::E)]
        );
        assert!(r.grade_timeline("missing").is_empty());
        assert_eq!(r.first_detection("a").map(|d| d.epoch), Some(1));
        assert!(r.first_detection("missing").is_none());
    }

    #[test]
    fn health_tags_round_trip() {
        for grade in [
            HealthLevel::A,
            HealthLevel::B,
            HealthLevel::C,
            HealthLevel::D,
            HealthLevel::E,
            HealthLevel::F,
        ] {
            assert_eq!(health_from_tag(health_tag(grade)), Some(grade));
        }
        assert_eq!(health_from_tag(6), None);
    }
}

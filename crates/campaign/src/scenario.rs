//! Damage scenarios: the deterministic script a structure follows over
//! a campaign's lifetime.
//!
//! A [`DamageScenario`] is pure configuration — it never holds state.
//! Each epoch the campaign engine feeds it, together with a derived
//! seed, to [`crate::StructureState::step`], which folds seasonal
//! climate, progressive damage and capsule aging into the next
//! [`ecocapsule::scenario::WallCondition`]. Scenarios therefore compose
//! with checkpoint/resume for free: the script is pinned by the config
//! digest, the state by the checkpoint.

use dsp::{EcoError, EcoResult};

/// Onset epoch meaning "never": a scenario whose damage never starts.
pub const NEVER: u64 = u64::MAX;

/// Seasonal climate drift: a sinusoid in internal concrete temperature
/// and relative humidity over the campaign's epochs.
///
/// The analytics layer must *not* flag this as damage — the point of
/// modelling it is to prove the thermal-compensation path in
/// [`crate::grade`] keeps quiet campaigns quiet.
#[derive(Debug, Clone, PartialEq)]
pub struct Seasonal {
    /// Peak temperature excursion (°C) around the 25 °C nominal; ≥ 0.
    pub temperature_amplitude_c: f64,
    /// Peak relative-humidity excursion (%) around the 70 % nominal; ≥ 0.
    pub humidity_amplitude_percent: f64,
    /// Period of one full cycle, in epochs; > 0.
    pub period_epochs: f64,
    /// Phase offset, in epochs (0 starts the cycle at its zero crossing).
    pub phase_epochs: f64,
}

impl Seasonal {
    /// No drift at all: constant nominal climate.
    #[must_use]
    pub fn none() -> Self {
        Seasonal {
            temperature_amplitude_c: 0.0,
            humidity_amplitude_percent: 0.0,
            period_epochs: 12.0,
            phase_epochs: 0.0,
        }
    }

    /// A temperate annual cycle at monthly epochs: ±8 °C, ±10 % RH over
    /// 12 epochs.
    #[must_use]
    pub fn temperate() -> Self {
        Seasonal {
            temperature_amplitude_c: 8.0,
            humidity_amplitude_percent: 10.0,
            period_epochs: 12.0,
            phase_epochs: 0.0,
        }
    }

    /// Checks amplitudes are finite and non-negative and the period is
    /// positive and finite.
    #[must_use]
    pub fn validate(&self) -> EcoResult<()> {
        for (what, value) in [
            (
                "seasonal temperature amplitude",
                self.temperature_amplitude_c,
            ),
            (
                "seasonal humidity amplitude",
                self.humidity_amplitude_percent,
            ),
        ] {
            if !(value >= 0.0 && value.is_finite()) {
                return Err(EcoError::NonPositive { what, value });
            }
        }
        if !(self.period_epochs > 0.0 && self.period_epochs.is_finite()) {
            return Err(EcoError::NonPositive {
                what: "seasonal period epochs",
                value: self.period_epochs,
            });
        }
        if !self.phase_epochs.is_finite() {
            return Err(EcoError::NonPositive {
                what: "seasonal phase epochs",
                value: self.phase_epochs,
            });
        }
        Ok(())
    }

    /// Stable digest words (floats as bits).
    #[must_use]
    pub fn config_words(&self) -> [u64; 4] {
        [
            self.temperature_amplitude_c.to_bits(),
            self.humidity_amplitude_percent.to_bits(),
            self.period_epochs.to_bits(),
            self.phase_epochs.to_bits(),
        ]
    }
}

/// The lifetime script of one wall: when damage starts, how fast each
/// physical channel degrades, and how the climate drifts underneath.
///
/// All rates are per epoch and scale linearly with
/// [`severity`](DamageScenario::severity), so a bench can sweep a
/// severity grid over one preset without re-deriving the physics.
#[derive(Debug, Clone, PartialEq)]
pub struct DamageScenario {
    /// Epoch at which damage begins ([`NEVER`] for a healthy life).
    pub onset_epoch: u64,
    /// Linear scale on every damage rate below; ≥ 0, 0 disables damage.
    pub severity: f64,
    /// One-time fractional elastic-modulus loss at onset (0.05 = −5 %).
    pub onset_stiffness_loss: f64,
    /// Fractional elastic-modulus loss per epoch after onset.
    pub stiffness_loss_per_epoch: f64,
    /// One-time added S-wave attenuation (Np/m) at onset — a crack
    /// opening across the charging path.
    pub onset_crack_alpha_np_m: f64,
    /// Attenuation growth (Np/m) per epoch after onset.
    pub crack_alpha_growth_np_m: f64,
    /// One-time inelastic strain jump at onset (dimensionless strain).
    pub onset_strain: f64,
    /// Creep strain accumulated per epoch after onset.
    pub creep_strain_per_epoch: f64,
    /// Multiplicative harvest derating applied to every capsule per
    /// epoch after onset (0.1 = each capsule keeps ~90 % of its harvest
    /// efficiency per epoch).
    pub capsule_derate_per_epoch: f64,
    /// Derating below which a capsule is declared dead (clamped to 0).
    pub capsule_death_threshold: f64,
    /// Seasonal climate drift, always active (damage or not).
    pub seasonal: Seasonal,
    /// Seeded uniform temperature jitter amplitude (°C) per epoch.
    pub temperature_jitter_c: f64,
    /// Seeded uniform humidity jitter amplitude (%) per epoch.
    pub humidity_jitter_percent: f64,
}

impl DamageScenario {
    /// The do-nothing scenario: no damage, no drift, no jitter. A
    /// campaign under it surveys a bitwise-pristine wall every epoch —
    /// the anchor for the zero-damage differential test.
    #[must_use]
    pub fn frozen() -> Self {
        DamageScenario {
            onset_epoch: NEVER,
            severity: 0.0,
            onset_stiffness_loss: 0.0,
            stiffness_loss_per_epoch: 0.0,
            onset_crack_alpha_np_m: 0.0,
            crack_alpha_growth_np_m: 0.0,
            onset_strain: 0.0,
            creep_strain_per_epoch: 0.0,
            capsule_derate_per_epoch: 0.0,
            capsule_death_threshold: 0.0,
            seasonal: Seasonal::none(),
            temperature_jitter_c: 0.0,
            humidity_jitter_percent: 0.0,
        }
    }

    /// Healthy structure under realistic drift: temperate seasons plus
    /// small seeded climate jitter, no damage ever. The false-alarm
    /// anchor — grading must never fire on it.
    #[must_use]
    pub fn quiet() -> Self {
        DamageScenario {
            seasonal: Seasonal::temperate(),
            temperature_jitter_c: 0.4,
            humidity_jitter_percent: 1.5,
            ..DamageScenario::frozen()
        }
    }

    /// A crack opens at `onset_epoch`: step changes in attenuation,
    /// stiffness and inelastic strain, then slow growth. The abrupt-
    /// damage preset.
    #[must_use]
    pub fn crack_onset(onset_epoch: u64) -> Self {
        DamageScenario {
            onset_epoch,
            severity: 1.0,
            onset_stiffness_loss: 0.05,
            onset_crack_alpha_np_m: 0.8,
            crack_alpha_growth_np_m: 0.05,
            onset_strain: 180.0e-6,
            creep_strain_per_epoch: 5.0e-6,
            ..DamageScenario::quiet()
        }
    }

    /// Gradual stiffness loss and creep from `onset_epoch`, no step
    /// change — the slow-degradation preset that stresses baseline
    /// drift tracking.
    #[must_use]
    pub fn slow_degradation(onset_epoch: u64) -> Self {
        DamageScenario {
            onset_epoch,
            severity: 1.0,
            stiffness_loss_per_epoch: 0.01,
            creep_strain_per_epoch: 60.0e-6,
            ..DamageScenario::quiet()
        }
    }

    /// Capsules age and die from `onset_epoch`: harvest efficiency
    /// decays multiplicatively until capsules drop below the death
    /// threshold and go dark — the instrumentation-failure preset.
    #[must_use]
    pub fn capsule_aging(onset_epoch: u64) -> Self {
        DamageScenario {
            onset_epoch,
            severity: 1.0,
            capsule_derate_per_epoch: 0.18,
            capsule_death_threshold: 0.35,
            ..DamageScenario::quiet()
        }
    }

    /// Replaces the severity scale (0 disables damage entirely).
    #[must_use]
    pub fn with_severity(mut self, severity: f64) -> Self {
        self.severity = severity;
        self
    }

    /// Checks every rate is finite and non-negative, the death
    /// threshold sits in [0, 1], and the seasonal block validates.
    #[must_use]
    pub fn validate(&self) -> EcoResult<()> {
        for (what, value) in [
            ("scenario severity", self.severity),
            ("scenario onset stiffness loss", self.onset_stiffness_loss),
            (
                "scenario stiffness loss per epoch",
                self.stiffness_loss_per_epoch,
            ),
            ("scenario onset crack alpha", self.onset_crack_alpha_np_m),
            ("scenario crack alpha growth", self.crack_alpha_growth_np_m),
            ("scenario onset strain", self.onset_strain),
            (
                "scenario creep strain per epoch",
                self.creep_strain_per_epoch,
            ),
            (
                "scenario capsule derate per epoch",
                self.capsule_derate_per_epoch,
            ),
            ("scenario temperature jitter", self.temperature_jitter_c),
            ("scenario humidity jitter", self.humidity_jitter_percent),
        ] {
            if !(value >= 0.0 && value.is_finite()) {
                return Err(EcoError::NonPositive { what, value });
            }
        }
        if !(self.capsule_death_threshold >= 0.0 && self.capsule_death_threshold <= 1.0) {
            return Err(EcoError::OutOfRange {
                what: "scenario capsule death threshold",
                value: self.capsule_death_threshold,
                min: 0.0,
                max: 1.0,
            });
        }
        self.seasonal.validate()
    }

    /// Stable digest words over every field (floats as bits).
    #[must_use]
    pub fn config_words(&self) -> Vec<u64> {
        let mut words = vec![
            self.onset_epoch,
            self.severity.to_bits(),
            self.onset_stiffness_loss.to_bits(),
            self.stiffness_loss_per_epoch.to_bits(),
            self.onset_crack_alpha_np_m.to_bits(),
            self.crack_alpha_growth_np_m.to_bits(),
            self.onset_strain.to_bits(),
            self.creep_strain_per_epoch.to_bits(),
            self.capsule_derate_per_epoch.to_bits(),
            self.capsule_death_threshold.to_bits(),
            self.temperature_jitter_c.to_bits(),
            self.humidity_jitter_percent.to_bits(),
        ];
        words.extend(self.seasonal.config_words());
        words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for s in [
            DamageScenario::frozen(),
            DamageScenario::quiet(),
            DamageScenario::crack_onset(6),
            DamageScenario::slow_degradation(6),
            DamageScenario::capsule_aging(6),
        ] {
            s.validate().unwrap();
        }
    }

    #[test]
    fn invalid_scenarios_are_rejected() {
        let bad = [
            DamageScenario {
                severity: -1.0,
                ..DamageScenario::quiet()
            },
            DamageScenario {
                creep_strain_per_epoch: f64::NAN,
                ..DamageScenario::quiet()
            },
            DamageScenario {
                capsule_death_threshold: 1.5,
                ..DamageScenario::quiet()
            },
            DamageScenario {
                seasonal: Seasonal {
                    period_epochs: 0.0,
                    ..Seasonal::temperate()
                },
                ..DamageScenario::quiet()
            },
            DamageScenario {
                seasonal: Seasonal {
                    phase_epochs: f64::INFINITY,
                    ..Seasonal::temperate()
                },
                ..DamageScenario::quiet()
            },
        ];
        for s in bad {
            assert!(s.validate().is_err(), "{s:?}");
        }
    }

    #[test]
    fn config_words_cover_every_field() {
        let base = DamageScenario::crack_onset(6);
        let variants = [
            DamageScenario::crack_onset(7),
            base.clone().with_severity(0.5),
            DamageScenario {
                onset_stiffness_loss: 0.06,
                ..base.clone()
            },
            DamageScenario {
                stiffness_loss_per_epoch: 0.01,
                ..base.clone()
            },
            DamageScenario {
                onset_crack_alpha_np_m: 0.9,
                ..base.clone()
            },
            DamageScenario {
                crack_alpha_growth_np_m: 0.06,
                ..base.clone()
            },
            DamageScenario {
                onset_strain: 170.0e-6,
                ..base.clone()
            },
            DamageScenario {
                creep_strain_per_epoch: 6.0e-6,
                ..base.clone()
            },
            DamageScenario {
                capsule_derate_per_epoch: 0.1,
                ..base.clone()
            },
            DamageScenario {
                capsule_death_threshold: 0.2,
                ..base.clone()
            },
            DamageScenario {
                temperature_jitter_c: 0.5,
                ..base.clone()
            },
            DamageScenario {
                humidity_jitter_percent: 2.0,
                ..base.clone()
            },
            DamageScenario {
                seasonal: Seasonal {
                    temperature_amplitude_c: 9.0,
                    ..Seasonal::temperate()
                },
                ..base.clone()
            },
            DamageScenario {
                seasonal: Seasonal {
                    phase_epochs: 3.0,
                    ..Seasonal::temperate()
                },
                ..base.clone()
            },
        ];
        let d0 = faults::fnv1a64(base.config_words());
        for v in variants {
            assert_ne!(faults::fnv1a64(v.config_words()), d0, "{v:?}");
        }
    }
}

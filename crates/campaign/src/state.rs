//! Evolving structure state: what the wall actually *is* at each epoch.
//!
//! [`StructureState`] is the campaign's only mutable physics — a small
//! vector of damage/climate variables advanced once per epoch by
//! [`StructureState::step`] under a [`crate::DamageScenario`] script and
//! a derived seed, then projected into a
//! [`ecocapsule::scenario::WallCondition`] for the survey. Everything is
//! pure integer/float arithmetic off [`exec::seed::derive`] streams, so
//! the same `(scenario, seed)` pair always produces the same state —
//! the property checkpoint/resume identity rests on.

use dsp::{EcoError, EcoResult};
use ecocapsule::scenario::{WallCondition, THERMAL_STRAIN_PER_C};
use exec::seed::derive;

/// Stiffness never degrades below this factor: a structure at 5 % of
/// its as-built modulus has long since collapsed; flooring keeps the
/// mix validation (factor ∈ (0, 1]) satisfiable forever.
pub const MIN_STIFFNESS_FACTOR: f64 = 0.05;

/// Creep strain cap, safely inside the ±3000 µε gauge linear range even
/// with worst-case seasonal thermal strain on top.
pub const MAX_CREEP_STRAIN: f64 = 2000.0e-6;

/// Nominal internal concrete temperature (°C) — the reference both the
/// seasonal model and the thermal-compensation path in [`crate::grade`]
/// are anchored to.
pub const NOMINAL_TEMPERATURE_C: f64 = 25.0;

/// Nominal relative humidity (%).
pub const NOMINAL_HUMIDITY_PERCENT: f64 = 70.0;

/// A uniform draw in [0, 1) from a derived seed word (53 mantissa bits,
/// bit-exact on every platform).
fn unit(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A uniform draw in [−1, 1) from a derived seed word.
fn signed_unit(word: u64) -> f64 {
    unit(word) * 2.0 - 1.0
}

/// The physical state of one wall after some epochs of service.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureState {
    /// Epochs of service already applied (also the next service epoch
    /// [`StructureState::step`] will simulate).
    pub epoch: u64,
    /// Current elastic-modulus scale in (0, 1].
    pub stiffness_factor: f64,
    /// Current added S-wave attenuation (Np/m) from cracking.
    pub crack_alpha_np_m: f64,
    /// Accumulated inelastic (creep + damage) strain, thermal excluded.
    pub creep_strain: f64,
    /// Current internal concrete temperature (°C).
    pub temperature_c: f64,
    /// Current relative humidity (%).
    pub humidity_percent: f64,
    /// Per-capsule harvest derating in [0, 1]; dead capsules sit at 0.
    pub capsule_derating: Vec<f64>,
}

impl StructureState {
    /// The as-built state: no damage, nominal climate, every capsule at
    /// full efficiency. Its condition is bitwise
    /// [`WallCondition::pristine`] (plus the derating vector, which
    /// derates by 1.0 — a multiplicative no-op).
    #[must_use]
    pub fn pristine(capsule_count: usize) -> Self {
        StructureState {
            epoch: 0,
            stiffness_factor: 1.0,
            crack_alpha_np_m: 0.0,
            creep_strain: 0.0,
            temperature_c: NOMINAL_TEMPERATURE_C,
            humidity_percent: NOMINAL_HUMIDITY_PERCENT,
            capsule_derating: vec![1.0; capsule_count],
        }
    }

    /// Advances one epoch of simulated service under `scenario`.
    ///
    /// `seed` must be unique per (wall, epoch) — the engine derives it
    /// as [`crate::evolve_seed`] — and feeds the climate jitter and
    /// per-capsule aging draws. Climate is recomputed absolutely each
    /// epoch (seasonal sinusoid + jitter); damage accumulates.
    pub fn step(&mut self, scenario: &crate::DamageScenario, seed: u64) {
        let epoch = self.epoch;
        let t = epoch as f64 + scenario.seasonal.phase_epochs;
        let angle = std::f64::consts::TAU * t / scenario.seasonal.period_epochs;
        let swing = angle.sin();
        self.temperature_c = NOMINAL_TEMPERATURE_C
            + scenario.seasonal.temperature_amplitude_c * swing
            + scenario.temperature_jitter_c * signed_unit(derive(seed, 0));
        self.humidity_percent = (NOMINAL_HUMIDITY_PERCENT
            + scenario.seasonal.humidity_amplitude_percent * swing
            + scenario.humidity_jitter_percent * signed_unit(derive(seed, 1)))
        .clamp(0.0, 100.0);

        let sev = scenario.severity;
        if sev > 0.0 && epoch >= scenario.onset_epoch {
            if epoch == scenario.onset_epoch {
                self.stiffness_factor *= 1.0 - (scenario.onset_stiffness_loss * sev).min(0.95);
                self.crack_alpha_np_m += scenario.onset_crack_alpha_np_m * sev;
                self.creep_strain += scenario.onset_strain * sev;
            }
            self.stiffness_factor *= 1.0 - (scenario.stiffness_loss_per_epoch * sev).min(0.95);
            self.stiffness_factor = self.stiffness_factor.max(MIN_STIFFNESS_FACTOR);
            self.crack_alpha_np_m += scenario.crack_alpha_growth_np_m * sev;
            self.creep_strain =
                (self.creep_strain + scenario.creep_strain_per_epoch * sev).min(MAX_CREEP_STRAIN);
            for (i, derate) in self.capsule_derating.iter_mut().enumerate() {
                // Each capsule ages at its own seeded pace (×0.75..1.25
                // of the nominal rate) so deaths stagger realistically.
                let pace = 0.75 + 0.5 * unit(derive(seed, 16 + i as u64));
                *derate *=
                    (1.0 - (scenario.capsule_derate_per_epoch * sev * pace).min(1.0)).max(0.0);
                if *derate < scenario.capsule_death_threshold {
                    *derate = 0.0;
                }
            }
        }
        self.epoch += 1;
    }

    /// Projects the state into the condition the next survey runs
    /// under. Thermal strain rides on top of the inelastic strain at
    /// [`THERMAL_STRAIN_PER_C`] per °C away from nominal — the same
    /// constant the grading layer compensates with.
    #[must_use]
    pub fn condition(&self) -> WallCondition {
        WallCondition {
            stiffness_factor: self.stiffness_factor,
            crack_alpha_np_m: self.crack_alpha_np_m,
            temperature_c: self.temperature_c,
            humidity_percent: self.humidity_percent,
            strain: self.creep_strain
                + THERMAL_STRAIN_PER_C * (self.temperature_c - NOMINAL_TEMPERATURE_C),
            capsule_derating: self.capsule_derating.clone(),
        }
    }

    /// Checks every variable is finite and in its physical range.
    #[must_use]
    pub fn validate(&self) -> EcoResult<()> {
        if !(self.stiffness_factor > 0.0 && self.stiffness_factor <= 1.0) {
            return Err(EcoError::OutOfRange {
                what: "state stiffness_factor",
                value: self.stiffness_factor,
                min: 0.0,
                max: 1.0,
            });
        }
        if !(self.crack_alpha_np_m >= 0.0 && self.crack_alpha_np_m.is_finite()) {
            return Err(EcoError::NonPositive {
                what: "state crack_alpha_np_m",
                value: self.crack_alpha_np_m,
            });
        }
        for (what, value) in [
            ("state creep_strain", self.creep_strain),
            ("state temperature_c", self.temperature_c),
            ("state humidity_percent", self.humidity_percent),
        ] {
            if !value.is_finite() {
                return Err(EcoError::NonPositive { what, value });
            }
        }
        for &d in &self.capsule_derating {
            if !(d >= 0.0 && d <= 1.0) {
                return Err(EcoError::OutOfRange {
                    what: "state capsule derating",
                    value: d,
                    min: 0.0,
                    max: 1.0,
                });
            }
        }
        Ok(())
    }

    /// Stable word serialization: `[epoch, 5 float-bit words, n,
    /// derate-bit words…]` — feeds both the checkpoint encoder and the
    /// campaign digest.
    #[must_use]
    pub fn encode_words(&self) -> Vec<u64> {
        let mut words = vec![
            self.epoch,
            self.stiffness_factor.to_bits(),
            self.crack_alpha_np_m.to_bits(),
            self.creep_strain.to_bits(),
            self.temperature_c.to_bits(),
            self.humidity_percent.to_bits(),
            self.capsule_derating.len() as u64,
        ];
        words.extend(self.capsule_derating.iter().map(|d| d.to_bits()));
        words
    }

    /// Inverse of [`StructureState::encode_words`]. Returns `None` on a
    /// malformed word stream (bad length or trailing words).
    #[must_use]
    pub fn decode_words(words: &[u64]) -> Option<StructureState> {
        if words.len() < 7 {
            return None;
        }
        let n = usize::try_from(words[6]).ok()?;
        if words.len() != 7usize.checked_add(n)? {
            return None;
        }
        Some(StructureState {
            epoch: words[0],
            stiffness_factor: f64::from_bits(words[1]),
            crack_alpha_np_m: f64::from_bits(words[2]),
            creep_strain: f64::from_bits(words[3]),
            temperature_c: f64::from_bits(words[4]),
            humidity_percent: f64::from_bits(words[5]),
            capsule_derating: words[7..].iter().map(|&w| f64::from_bits(w)).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DamageScenario;

    #[test]
    fn pristine_state_projects_a_pristine_condition() {
        let state = StructureState::pristine(3);
        let condition = state.condition();
        assert_eq!(condition.stiffness_factor.to_bits(), 1.0f64.to_bits());
        assert_eq!(condition.strain.to_bits(), 0.0f64.to_bits());
        assert_eq!(condition.capsule_derating, vec![1.0; 3]);
        state.validate().unwrap();
    }

    #[test]
    fn frozen_scenario_only_advances_the_clock() {
        let mut state = StructureState::pristine(2);
        let before = state.condition();
        for epoch in 0..10 {
            state.step(&DamageScenario::frozen(), exec::seed::derive(9, epoch));
        }
        assert_eq!(state.epoch, 10);
        assert_eq!(state.condition(), before, "frozen evolution is a no-op");
    }

    #[test]
    fn stepping_is_a_pure_function_of_scenario_and_seed() {
        let scenario = DamageScenario::crack_onset(3);
        let mut a = StructureState::pristine(4);
        let mut b = StructureState::pristine(4);
        for epoch in 0..8 {
            let seed = exec::seed::derive(42, epoch);
            a.step(&scenario, seed);
            b.step(&scenario, seed);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn crack_onset_applies_step_damage_once() {
        let scenario = DamageScenario::crack_onset(2);
        let mut state = StructureState::pristine(1);
        for epoch in 0..2 {
            state.step(&scenario, exec::seed::derive(1, epoch));
        }
        assert_eq!(state.crack_alpha_np_m.to_bits(), 0.0f64.to_bits());
        state.step(&scenario, exec::seed::derive(1, 2));
        let after_onset = state.crack_alpha_np_m;
        assert!(after_onset >= scenario.onset_crack_alpha_np_m);
        assert!(state.creep_strain >= scenario.onset_strain);
        assert!(state.stiffness_factor < 1.0);
        state.step(&scenario, exec::seed::derive(1, 3));
        let growth = state.crack_alpha_np_m - after_onset;
        assert!(
            growth > 0.0 && growth < scenario.onset_crack_alpha_np_m,
            "later epochs grow, not re-jump (grew {growth})"
        );
        state.validate().unwrap();
    }

    #[test]
    fn seasonal_drift_cycles_and_stays_valid() {
        let scenario = DamageScenario::quiet();
        let mut state = StructureState::pristine(1);
        let mut min_t = f64::INFINITY;
        let mut max_t = f64::NEG_INFINITY;
        for epoch in 0..12 {
            state.step(&scenario, exec::seed::derive(7, epoch));
            min_t = min_t.min(state.temperature_c);
            max_t = max_t.max(state.temperature_c);
            state.validate().unwrap();
        }
        assert!(max_t > 30.0, "summer peak missing (max {max_t})");
        assert!(min_t < 20.0, "winter trough missing (min {min_t})");
        assert_eq!(state.creep_strain.to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn aging_kills_capsules_through_the_death_threshold() {
        let scenario = DamageScenario::capsule_aging(0);
        let mut state = StructureState::pristine(5);
        for epoch in 0..30 {
            state.step(&scenario, exec::seed::derive(3, epoch));
        }
        assert!(
            state.capsule_derating.iter().all(|&d| d == 0.0),
            "all capsules dead after 30 aging epochs: {:?}",
            state.capsule_derating
        );
        state.validate().unwrap();
    }

    #[test]
    fn degradation_floors_never_break_validation() {
        let scenario = DamageScenario::slow_degradation(0).with_severity(50.0);
        let mut state = StructureState::pristine(2);
        for epoch in 0..200 {
            state.step(&scenario, exec::seed::derive(5, epoch));
            state.validate().unwrap();
        }
        assert_eq!(state.stiffness_factor, MIN_STIFFNESS_FACTOR);
        assert_eq!(state.creep_strain, MAX_CREEP_STRAIN);
        state.condition().validate().unwrap();
    }

    #[test]
    fn words_round_trip() {
        let scenario = DamageScenario::crack_onset(1);
        let mut state = StructureState::pristine(3);
        for epoch in 0..4 {
            state.step(&scenario, exec::seed::derive(11, epoch));
        }
        let words = state.encode_words();
        assert_eq!(StructureState::decode_words(&words), Some(state));
    }

    #[test]
    fn malformed_words_are_rejected() {
        let words = StructureState::pristine(2).encode_words();
        assert_eq!(StructureState::decode_words(&words[..6]), None, "truncated");
        let mut extra = words.clone();
        extra.push(0);
        assert_eq!(StructureState::decode_words(&extra), None, "trailing");
        let mut bad_len = words;
        bad_len[6] = 9;
        assert_eq!(StructureState::decode_words(&bad_len), None, "bad count");
    }
}

//! Downlink waveform composition (Figs 7, 19, 20).
//!
//! The full downlink chain: PIE baseband → OOK or FSK drive → TX PZT
//! (ring effect) → prism injection (mode content) → concrete frequency
//! response (FSK suppression) → optional dual-mode smear → node-side
//! envelope. Each stage is a separate, testable transformation; the
//! composition reproduces the paper's downlink SNR behaviours:
//!
//! - OOK symbols trail into the low edge (Fig 7a);
//! - FSK's off-resonant low edge is naturally damped (Fig 7b);
//! - incidence below the first critical angle adds a P-wave copy,
//!   degrading SNR by 30–73% (Fig 19);
//! - FSK beats OOK by 3–5× in downlink SNR (Fig 20).

use concrete::response::Block;
use elastic::prism::{InjectionRegime, Prism};
use phy::modulation::{synthesize_drive, DownlinkScheme};
use phy::pie::{Pie, Segment};
use phy::pzt::Pzt;

use crate::multipath::DualModeChannel;

/// Excess absorption of the P mode relative to S along the path (Np/m):
/// the reason S-reflections dominate at range (§3.1).
pub const P_EXCESS_ATTEN_NP_M: f64 = 1.3;

/// Ambient acoustic noise floor in absolute envelope units (the drive
/// waveform is unit amplitude before injection losses): weak injections
/// sink toward the floor even when their contrast ratio is good.
pub const AMBIENT_FLOOR: f64 = 0.003;

/// A configured downlink path: reader TX through a prism and a concrete
/// block to a node position.
#[derive(Debug, Clone)]
pub struct DownlinkChannel {
    /// TX transducer.
    pub tx_pzt: Pzt,
    /// Prism between TX and concrete.
    pub prism: Prism,
    /// Concrete block (grade + path thickness) for frequency response.
    pub block: Block,
    /// Path length from TX to node (m).
    pub distance_m: f64,
    /// Simulation sample rate (Hz).
    pub fs_hz: f64,
}

impl DownlinkChannel {
    /// The paper's Fig 19/20 setup: 15 cm NC wall, 1 m TX–RX standoff,
    /// 60° PLA prism, 2 MS/s simulation rate.
    pub fn paper_default() -> Self {
        let mix = concrete::ConcreteGrade::Nc.mix();
        DownlinkChannel {
            tx_pzt: Pzt::reader_disc(2.0e6),
            prism: Prism::paper_default(),
            block: Block::new(mix, 0.15),
            distance_m: 1.0,
            fs_hz: 2.0e6,
        }
    }

    /// The downlink-side fault hook: this channel with a
    /// [`faults::Perturbation`] applied. A temperature wave-velocity
    /// shift detunes the concrete's resonant stack — modelled as the
    /// equivalent path-length change (`distance / velocity` stays the
    /// measured transit time) so the frequency response and mode mix
    /// both move with it.
    #[must_use]
    pub fn under_fault(&self, p: &faults::Perturbation) -> DownlinkChannel {
        let stretch = 1.0 / (1.0 + p.velocity_shift_frac).max(0.1);
        DownlinkChannel {
            distance_m: self.distance_m * stretch,
            block: Block::new(self.block.mix, self.block.thickness_m * stretch),
            ..self.clone()
        }
    }

    /// Runs PIE `bits` through the whole chain and returns the waveform
    /// that reaches the node's PZT face.
    pub fn transmit(&self, pie: &Pie, bits: &[bool], scheme: DownlinkScheme) -> Vec<f64> {
        let segments = pie.encode(bits);
        self.transmit_segments(&segments, scheme)
    }

    /// Like [`Self::transmit`] but from raw PIE segments.
    pub fn transmit_segments(&self, segments: &[Segment], scheme: DownlinkScheme) -> Vec<f64> {
        let carrier = self.block.mix.resonant_frequency_hz();
        // 1. Drive synthesis.
        let drive = synthesize_drive(segments, scheme, carrier, self.fs_hz);
        // 2. TX transducer with ring effect.
        let radiated = self.tx_pzt.respond(&drive);
        // 3. Concrete frequency shaping: the FSK low tone is suppressed by
        //    the off-resonance response. Apply per-tone gains on segment
        //    boundaries (the drive is piecewise single-tone).
        let shaped = self.apply_concrete_response(&radiated, segments, scheme, carrier);
        // 4. Mode content: below CA1 a P copy is superimposed. The P copy
        //    is further attenuated along the path (P absorbs more than S,
        //    §3.1); the amplitude split uses √energy fractions.
        let inj = self.prism.inject();
        let amp_p = inj.energy_p.sqrt() * (-P_EXCESS_ATTEN_NP_M * self.distance_m).exp();
        let amp_s = inj.energy_s.sqrt();
        match inj.regime {
            InjectionRegime::SOnly => shaped.iter().map(|&x| x * amp_s).collect(),
            InjectionRegime::None => shaped.iter().map(|_| 0.0).collect(),
            InjectionRegime::DualMode => {
                let m = self.block.mix.material();
                let total = amp_p + amp_s;
                let ch = DualModeChannel {
                    cp_m_s: m.cp_m_s,
                    cs_m_s: m.cs_m_s,
                    p_fraction: if total > 0.0 { amp_p / total } else { 0.0 },
                    distance_m: self.distance_m,
                };
                let mixed = ch.apply(&shaped, self.fs_hz);
                mixed.iter().map(|&x| x * total).collect()
            }
        }
    }

    /// Received waveform for the 0° no-prism case: the PZT glued straight
    /// onto the wall injects a pure P beam (§5.4: "only P-waves are
    /// injected into the wall without triggering the S-waves"), which is
    /// single-mode and therefore decodes cleanly — just weaker after the
    /// P mode's higher absorption.
    pub fn transmit_direct_contact(
        &self,
        pie: &Pie,
        bits: &[bool],
        scheme: DownlinkScheme,
    ) -> Vec<f64> {
        let segments = pie.encode(bits);
        let carrier = self.block.mix.resonant_frequency_hz();
        let drive = synthesize_drive(&segments, scheme, carrier, self.fs_hz);
        let radiated = self.tx_pzt.respond(&drive);
        let shaped = self.apply_concrete_response(&radiated, &segments, scheme, carrier);
        // Normal-incidence P transmission into the wall, with the P mode's
        // excess path absorption.
        let z1 = self.prism.material.impedance_p();
        let z2 = self.prism.target.impedance_p();
        let t_amp = 2.0 * z1 / (z1 + z2);
        let amp = t_amp * (-P_EXCESS_ATTEN_NP_M * self.distance_m).exp();
        shaped.iter().map(|&x| x * amp).collect()
    }

    fn apply_concrete_response(
        &self,
        signal: &[f64],
        segments: &[Segment],
        scheme: DownlinkScheme,
        carrier: f64,
    ) -> Vec<f64> {
        let g_on = self.block.transducer_pair_response(carrier)
            * self
                .block
                .mix
                .attenuation()
                .amplitude_factor(carrier, self.block.thickness_m);
        // Normalize so the resonant tone passes at unit gain — absolute
        // level is the link budget's job.
        let mut out = Vec::with_capacity(signal.len());
        let mut idx = 0usize;
        for seg in segments {
            let n = (seg.duration_s * self.fs_hz).round() as usize;
            let g = match (scheme, seg.high) {
                (_, true) => 1.0,
                (DownlinkScheme::Ook, false) => 1.0, // nothing driven anyway
                (DownlinkScheme::FskInOokOut { off_hz }, false) => {
                    let g_off = self.block.transducer_pair_response(off_hz)
                        * self
                            .block
                            .mix
                            .attenuation()
                            .amplitude_factor(off_hz, self.block.thickness_m);
                    g_off / g_on
                }
            };
            for _ in 0..n {
                if idx < signal.len() {
                    out.push(signal[idx] * g);
                    idx += 1;
                }
            }
        }
        // Ring tail past the last segment keeps the final gain.
        while idx < signal.len() {
            out.push(signal[idx]);
            idx += 1;
        }
        out
    }

    /// Downlink symbol SNR for a stream of PIE zeros at `bitrate_bps`:
    /// the contrast between high-edge and low-edge envelope power,
    /// degraded by ring tailing and (below CA1) dual-mode smear. This is
    /// the metric Figs 19 and 20 sweep.
    pub fn symbol_snr_db(&self, bitrate_bps: f64, scheme: DownlinkScheme) -> f64 {
        let pie = Pie::for_bitrate(bitrate_bps);
        let bits = vec![false; 24];
        let rx = self.transmit(&pie, &bits, scheme);
        let env = dsp::envelope::diode_envelope(&rx, 10e-6, self.fs_hz);
        // Sample high-edge and low-edge windows (skip transients at the
        // first 20% of each edge).
        let n_high = (pie.tari_s * self.fs_hz).round() as usize;
        let n_low = n_high;
        let sym = n_high + n_low;
        let (mut hi_acc, mut lo_acc, mut count) = (0.0, 0.0, 0);
        for k in 4..bits.len().saturating_sub(2) {
            let base = k * sym;
            if base + sym > env.len() {
                break;
            }
            let hi_win = &env[base + n_high / 2..base + n_high];
            let lo_win = &env[base + n_high + n_low / 2..base + sym];
            hi_acc += hi_win.iter().sum::<f64>() / hi_win.len() as f64;
            lo_acc += lo_win.iter().sum::<f64>() / lo_win.len() as f64;
            count += 1;
        }
        if count == 0 || lo_acc <= 0.0 {
            return f64::NAN;
        }
        let hi = hi_acc / count as f64;
        let lo = lo_acc / count as f64;
        // Contrast power ratio: signal is the hi-lo swing, "noise" is the
        // residual low-edge level the slicer must reject plus the ambient
        // noise floor. Floored at −10 dB (below that the receiver cannot
        // even estimate the level).
        let noise = lo + AMBIENT_FLOOR;
        if noise <= 0.0 {
            return f64::NAN;
        }
        (20.0 * ((hi - lo).max(1e-12) / noise).log10()).max(-10.0)
    }

    /// Like [`Self::symbol_snr_db`] over an arbitrary received waveform
    /// (shared by the prism sweep's 0° direct-contact case).
    fn snr_of_waveform(&self, rx: &[f64], pie: &Pie, n_bits: usize) -> f64 {
        let env = dsp::envelope::diode_envelope(rx, 10e-6, self.fs_hz);
        let n_high = (pie.tari_s * self.fs_hz).round() as usize;
        let sym = 2 * n_high;
        let (mut hi_acc, mut lo_acc, mut count) = (0.0, 0.0, 0);
        for k in 4..n_bits.saturating_sub(2) {
            let base = k * sym;
            if base + sym > env.len() {
                break;
            }
            let hi_win = &env[base + n_high / 2..base + n_high];
            let lo_win = &env[base + n_high + n_high / 2..base + sym];
            hi_acc += hi_win.iter().sum::<f64>() / hi_win.len() as f64;
            lo_acc += lo_win.iter().sum::<f64>() / lo_win.len() as f64;
            count += 1;
        }
        if count == 0 {
            return f64::NAN;
        }
        let hi = hi_acc / count as f64;
        let lo = lo_acc / count as f64;
        let noise = lo + AMBIENT_FLOOR;
        if noise <= 0.0 {
            return f64::NAN;
        }
        (20.0 * ((hi - lo).max(1e-12) / noise).log10()).max(-10.0)
    }

    /// Fig 19's sweep: symbol SNR as a function of prism incident angle.
    pub fn snr_vs_incident_angle(&self, angles_deg: &[f64], bitrate_bps: f64) -> Vec<(f64, f64)> {
        angles_deg
            .iter()
            .map(|&deg| {
                let scheme = DownlinkScheme::FskInOokOut {
                    off_hz: self.block.mix.off_resonant_frequency_hz(),
                };
                // lint:allow(no-float-eq) 0.0 is the exact glued-on (no-prism) sentinel
                let snr = if deg == 0.0 {
                    // 0° = PZT glued straight on: pure P, no prism (§5.4).
                    let pie = Pie::for_bitrate(bitrate_bps);
                    let bits = vec![false; 24];
                    let rx = self.transmit_direct_contact(&pie, &bits, scheme);
                    self.snr_of_waveform(&rx, &pie, bits.len())
                } else {
                    let mut ch = self.clone();
                    ch.prism = Prism::new(self.prism.material, self.prism.target, deg.to_radians());
                    ch.symbol_snr_db(bitrate_bps, scheme)
                };
                (deg, snr)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fsk() -> DownlinkScheme {
        DownlinkScheme::FskInOokOut {
            off_hz: concrete::ConcreteGrade::Nc
                .mix()
                .off_resonant_frequency_hz(),
        }
    }

    #[test]
    fn fsk_beats_ook_by_3_to_5x() {
        // Fig 20: "The SNR of the FSK approach is improved by about 3~5×".
        let ch = DownlinkChannel::paper_default();
        for bitrate in [1e3, 2e3] {
            let snr_fsk = ch.symbol_snr_db(bitrate, fsk());
            let snr_ook = ch.symbol_snr_db(bitrate, DownlinkScheme::Ook);
            let ratio_db = snr_fsk - snr_ook;
            assert!(
                (3.0..15.0).contains(&ratio_db),
                "at {bitrate} bps: FSK {snr_fsk} dB vs OOK {snr_ook} dB"
            );
        }
    }

    #[test]
    fn fast_ook_collapses_under_ring_effect_but_fsk_survives() {
        // At 4 kbps the low edge (~83 µs) is shorter than the ring tail
        // (~0.3 ms): OOK symbols merge, FSK stays decodable.
        let ch = DownlinkChannel::paper_default();
        let snr_ook = ch.symbol_snr_db(4e3, DownlinkScheme::Ook);
        let snr_fsk = ch.symbol_snr_db(4e3, fsk());
        assert!(snr_ook < 3.0, "fast OOK should collapse: {snr_ook} dB");
        assert!(snr_fsk > 6.0, "FSK should survive: {snr_fsk} dB");
    }

    #[test]
    fn snr_degrades_with_bitrate() {
        let ch = DownlinkChannel::paper_default();
        let s1 = ch.symbol_snr_db(1e3, fsk());
        let s8 = ch.symbol_snr_db(8e3, fsk());
        assert!(s1 > s8, "1 kbps {s1} dB vs 8 kbps {s8} dB");
    }

    #[test]
    fn s_only_window_outperforms_dual_mode() {
        // Fig 19: SNR peaks inside [34°, 73°], drops below CA1.
        let ch = DownlinkChannel::paper_default();
        let sweep = ch.snr_vs_incident_angle(&[15.0, 30.0, 50.0, 60.0, 70.0], 1e3);
        let get = |deg: f64| sweep.iter().find(|(a, _)| *a == deg).unwrap().1;
        assert!(
            get(50.0) > get(15.0) + 5.0,
            "50° {} vs 15° {}",
            get(50.0),
            get(15.0)
        );
        assert!(
            get(60.0) > get(30.0) + 5.0,
            "60° {} vs 30° {}",
            get(60.0),
            get(30.0)
        );
        assert!(
            get(15.0) <= get(30.0) + 1.0,
            "deeper below CA1 is no better"
        );
    }

    #[test]
    fn beyond_second_critical_angle_link_is_dead() {
        let ch = DownlinkChannel::paper_default();
        let sweep = ch.snr_vs_incident_angle(&[75.0], 1e3);
        let snr = sweep[0].1;
        assert!(snr.is_nan() || snr < 1.0, "75°: {snr}");
    }

    #[test]
    fn ook_still_decodes_at_low_rate() {
        // The ring effect hurts but does not kill slow OOK.
        let ch = DownlinkChannel::paper_default();
        let snr = ch.symbol_snr_db(1e3, DownlinkScheme::Ook);
        assert!(snr > 0.0, "slow OOK SNR {snr}");
    }
}

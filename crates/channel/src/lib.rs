//! # ecocapsule-channel
//!
//! The acoustic channel simulator: how elastic waves actually get from
//! the reader's PZT to an EcoCapsule and back, in concrete (and in water
//! for the PAB baseline comparisons).
//!
//! - [`linkbudget`] — wireless-charging link budget behind Fig 12:
//!   voltage → injected amplitude → structure-specific spreading +
//!   S-wave absorption → received voltage and maximum power-up range;
//! - [`multipath`] — 2-D image-source model of boundary S-reflections,
//!   producing per-position arrival sets; drives Fig 18 (SNR vs node
//!   position) and the dual-mode ISI penalty of Fig 19;
//! - [`noise`] — seeded AWGN and measurement-noise helpers;
//! - [`downlink`] — received downlink waveform composition: prism mode
//!   content, PZT ring, concrete FSK suppression (Figs 7, 19, 20);
//! - [`uplink`] — received uplink waveform composition: CBW
//!   self-interference + backscatter sidebands at the BLF (Figs 22, 24).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod downlink;
pub mod linkbudget;
pub mod multipath;
pub mod noise;
pub mod surface;
pub mod uplink;

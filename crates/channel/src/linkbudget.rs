//! Wireless-charging link budget (Fig 12).
//!
//! The received open-circuit voltage at a node PZT a distance `d` from
//! the reader is modelled as
//!
//! ```text
//! V_rx(d) = V_tx · κ · T_s · (r₀/d)^p · e^(−α_s(f)·d)
//! ```
//!
//! where `κ` is the electro-mechanical coupling chain (amp → TX PZT →
//! glue → node PZT → HRA), `T_s` the prism's S-mode amplitude
//! transmission, `p` the structure's spreading exponent and `α_s` the
//! S-wave absorption. The spreading exponent encodes Fig 12's central
//! finding: narrow members guide the wave (p → ~0.5 or below), bulk
//! members spread it spherically (p → 1), and an elongated corridor like
//! PAB's Pool 2 approaches a lossless duct (p ≈ 0.12) — which is why its
//! range explodes once the activation threshold is reached.

use concrete::structure::Structure;
use dsp::{EcoError, EcoResult};
use elastic::attenuation::PowerLawAttenuation;

/// Reference distance for the spreading law (m): roughly the TX PZT's
/// near-field edge.
pub const REF_DISTANCE_M: f64 = 0.10;

/// Electro-mechanical coupling chain for the concrete deployments,
/// calibrated once so S3 at 50 V powers a node at ≈1.3 m (Fig 12).
pub const CONCRETE_COUPLING: f64 = 0.042;

/// An end-to-end charging link.
#[derive(Debug, Clone)]
pub struct LinkBudget {
    /// Overall voltage coupling κ·T_s (dimensionless).
    pub coupling: f64,
    /// Spreading exponent `p` (0 = guided, 0.5 = cylindrical, 1 = spherical).
    pub spreading_exp: f64,
    /// Reference distance r₀ (m).
    pub ref_m: f64,
    /// Mode-appropriate absorption law.
    pub attenuation: PowerLawAttenuation,
    /// Carrier frequency (Hz).
    pub carrier_hz: f64,
    /// Longest physical path the structure allows (m); `f64::INFINITY`
    /// when unbounded.
    pub max_path_m: f64,
}

impl LinkBudget {
    /// Link budget for one of the paper's concrete structures, with the
    /// PLA wedge tuned into the structure's own S-only window (the paper
    /// defaults to 60°, which sits inside the window for its reference
    /// concrete; our Table-1-derived NC has a slightly faster S-wave, so
    /// the operator-tuned optimum is used instead of a fixed angle).
    ///
    /// Errors when the structure's geometry reports a non-positive
    /// confining dimension (a degenerate member cannot guide a wave).
    #[must_use]
    pub fn for_structure(s: &Structure) -> EcoResult<Self> {
        let probe = elastic::prism::Prism::new(
            elastic::Material::PLA,
            s.mix.material(),
            40f64.to_radians(),
        );
        let t_s = probe
            .optimal_angle(0.5)
            .map(|(_, inj)| inj.energy_s)
            .unwrap_or(1e-6)
            .sqrt();
        // Normalize against the reference prism at its own optimum so the
        // calibrated κ stays anchored at S3.
        let t_ref = elastic::prism::Prism::paper_default()
            .optimal_angle(0.5)
            .map(|(_, inj)| inj.energy_s)
            .unwrap_or(1.0)
            .sqrt();
        let confine = s.geometry.confining_dimension_m();
        Ok(LinkBudget {
            coupling: CONCRETE_COUPLING * (t_s / t_ref),
            spreading_exp: spreading_exponent(confine)?,
            ref_m: REF_DISTANCE_M,
            attenuation: s.mix.attenuation_s(),
            carrier_hz: s.mix.resonant_frequency_hz(),
            max_path_m: s.geometry.max_path_m(),
        })
    }

    /// The same link with `extra_np_m` added to its absorption law —
    /// the crack/damage hook one layer up from
    /// [`PowerLawAttenuation::with_added_alpha`]. Coupling, spreading and
    /// carrier are untouched: a crack on the path scatters energy out of
    /// the guided mode without changing how the wave was launched.
    /// Errors when the summed coefficient would be negative. Adding
    /// literal `0.0` is a bitwise no-op, so a pristine structure's link
    /// budget — and every received voltage — is bit-identical.
    #[must_use]
    pub fn with_added_attenuation(&self, extra_np_m: f64) -> EcoResult<LinkBudget> {
        Ok(LinkBudget {
            attenuation: self.attenuation.with_added_alpha(extra_np_m)?,
            ..self.clone()
        })
    }

    /// Received open-circuit voltage at distance `d_m` for TX drive
    /// `v_tx_v` volts.
    ///
    /// Errors on a negative drive or a non-positive distance
    /// (a zero-distance link has no propagation path to evaluate).
    #[must_use]
    pub fn received_voltage(&self, v_tx_v: f64, d_m: f64) -> EcoResult<f64> {
        if v_tx_v < 0.0 {
            return Err(EcoError::OutOfRange {
                what: "tx drive v_tx_v",
                value: v_tx_v,
                min: 0.0,
                max: f64::INFINITY,
            });
        }
        if d_m <= 0.0 {
            return Err(EcoError::NonPositive {
                what: "link distance d_m",
                value: d_m,
            });
        }
        if d_m > self.max_path_m {
            return Ok(0.0);
        }
        let spread = if d_m <= self.ref_m {
            1.0
        } else {
            (self.ref_m / d_m).powf(self.spreading_exp)
        };
        Ok(v_tx_v
            * self.coupling
            * spread
            * self.attenuation.amplitude_factor(self.carrier_hz, d_m))
    }

    /// Received voltages for a whole batch of capsule distances at one
    /// TX drive — the structure-of-arrays lane form of
    /// [`LinkBudget::received_voltage`] the batched survey engine uses
    /// for a wall's charge phase.
    ///
    /// Every lane evaluates the identical per-distance expression, so
    /// `out[i]` is bit-identical to `received_voltage(v_tx_v, d[i])`.
    /// Validation is hoisted: any invalid drive or distance fails the
    /// whole batch *before* any lane is produced (the scalar loop in
    /// older engines failed mid-iteration; surveys validate distances at
    /// construction, so valid inputs see no behavioral difference).
    #[must_use]
    pub fn received_voltage_lanes(&self, v_tx_v: f64, d_m: &[f64]) -> EcoResult<Vec<f64>> {
        d_m.iter()
            .map(|&d| self.received_voltage(v_tx_v, d))
            .collect()
    }

    /// Maximum distance (m) at which the received voltage still meets
    /// `v_activate_v`, or `Ok(None)` if even contact distance fails.
    /// Capped at the structure's physical extent (the paper's S1/S2
    /// curves "terminate at their lengths").
    ///
    /// Errors on a non-positive activation threshold or negative drive.
    #[must_use]
    pub fn max_range_m(&self, v_tx_v: f64, v_activate_v: f64) -> EcoResult<Option<f64>> {
        if v_activate_v <= 0.0 {
            return Err(EcoError::NonPositive {
                what: "activation voltage v_activate_v",
                value: v_activate_v,
            });
        }
        if self.received_voltage(v_tx_v, self.ref_m)? < v_activate_v {
            return Ok(None);
        }
        // Received voltage is monotone decreasing in d: bisect.
        let mut lo = self.ref_m;
        let mut hi = self.max_path_m.min(100.0);
        if self.received_voltage(v_tx_v, hi)? >= v_activate_v {
            return Ok(Some(hi));
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.received_voltage(v_tx_v, mid)? >= v_activate_v {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(Some(lo))
    }
}

/// Spreading exponent from the confining transverse dimension:
/// 15–20 cm walls guide (≈0.5), ≥70 cm members are effectively bulk
/// (≈1.0), linear in between. Errors on a non-positive dimension.
#[must_use]
pub fn spreading_exponent(confining_m: f64) -> EcoResult<f64> {
    if confining_m <= 0.0 {
        return Err(EcoError::NonPositive {
            what: "confining dimension confining_m",
            value: confining_m,
        });
    }
    Ok(if confining_m <= 0.20 {
        0.5
    } else if confining_m >= 0.70 {
        1.0
    } else {
        0.5 + 0.5 * (confining_m - 0.20) / 0.50
    })
}

/// The PAB underwater pools from Fig 12, reused by the baselines crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PabPool {
    /// Bulk test pool (near-spherical spreading).
    Pool1,
    /// Elongated corridor pool — acts as an acoustic duct; ranges grow
    /// explosively with voltage (125 V reaches 6.5 m).
    Pool2,
}

impl PabPool {
    /// Link budget for the pool at PAB's 15 kHz carrier.
    pub fn link_budget(self) -> LinkBudget {
        // Seawater absorption at 15 kHz is ~1 dB/km: negligible here.
        // Literal construction: the constants are known-valid.
        let atten = PowerLawAttenuation {
            alpha0_np_m: 1e-4,
            f0_hz: 15e3,
            exponent: 1.0,
        };
        match self {
            PabPool::Pool1 => LinkBudget {
                coupling: 0.0146,
                spreading_exp: 0.59,
                ref_m: REF_DISTANCE_M,
                attenuation: atten,
                carrier_hz: 15e3,
                max_path_m: 10.0,
            },
            PabPool::Pool2 => LinkBudget {
                coupling: 0.00657,
                spreading_exp: 0.12,
                ref_m: REF_DISTANCE_M,
                attenuation: atten,
                carrier_hz: 15e3,
                max_path_m: 10.0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concrete::structure::Structure;

    /// MCU activation threshold from Fig 14 (V).
    const V_ACT: f64 = 0.5;

    fn range(lb: &LinkBudget, v_tx_v: f64) -> f64 {
        lb.max_range_m(v_tx_v, V_ACT)
            .expect("valid query")
            .expect("in range")
    }

    #[test]
    fn fig12_s3_anchors() {
        let lb = LinkBudget::for_structure(&Structure::s3_common_wall()).unwrap();
        let r50 = range(&lb, 50.0);
        let r200 = range(&lb, 200.0);
        let r250 = range(&lb, 250.0);
        // Paper: 134 cm at 50 V, 500 cm at 200 V, "up to 6 m" at 250 V.
        assert!((1.0..1.8).contains(&r50), "S3@50V = {r50}");
        assert!((4.0..6.5).contains(&r200), "S3@200V = {r200}");
        assert!(r250 >= 5.5, "S3@250V = {r250}");
    }

    #[test]
    fn fig12_structure_ordering_at_200v() {
        // S3 (20 cm wall) > S4 (50 cm wall) > S2 (70 cm column).
        let r = |s: &Structure| range(&LinkBudget::for_structure(s).unwrap(), 200.0);
        let (s2, s3, s4) = (
            r(&Structure::s2_column()),
            r(&Structure::s3_common_wall()),
            r(&Structure::s4_protective_wall()),
        );
        assert!(s3 > s4, "S3 {s3} vs S4 {s4}");
        assert!(s4 > s2, "S4 {s4} vs S2 {s2}");
    }

    #[test]
    fn fig12_s1_terminates_at_slab_length() {
        let lb = LinkBudget::for_structure(&Structure::s1_slab()).unwrap();
        let r200 = range(&lb, 200.0);
        assert!(
            (r200 - 1.5).abs() < 1e-9,
            "S1 capped at its 150 cm length, got {r200}"
        );
    }

    #[test]
    fn fig12_pab_pool1_anchors() {
        let lb = PabPool::Pool1.link_budget();
        let r50 = range(&lb, 50.0);
        let r200 = range(&lb, 200.0);
        assert!((0.1..0.35).contains(&r50), "Pool1@50V = {r50}");
        assert!((1.5..2.6).contains(&r200), "Pool1@200V = {r200}");
    }

    #[test]
    fn fig12_pab_pool2_superlinear_corridor() {
        let lb = PabPool::Pool2.link_budget();
        // Needs ≥ ~84 V for any range at all…
        assert!(
            lb.max_range_m(50.0, V_ACT).unwrap().is_none(),
            "50 V insufficient in Pool 2"
        );
        let r84 = range(&lb, 84.0);
        assert!((0.1..0.5).contains(&r84), "Pool2@84V = {r84}");
        // …but 125 V reaches ~6.5 m.
        let r125 = range(&lb, 125.0);
        assert!((5.0..8.0).contains(&r125), "Pool2@125V = {r125}");
    }

    #[test]
    fn concrete_beats_pool1_at_every_voltage() {
        // Fig 12 finding (3): elastic waves go further in dense media.
        let s3 = LinkBudget::for_structure(&Structure::s3_common_wall()).unwrap();
        let p1 = PabPool::Pool1.link_budget();
        for v in [50.0, 100.0, 150.0, 200.0] {
            let rc = range(&s3, v);
            let rw = range(&p1, v);
            assert!(rc > rw, "at {v} V: concrete {rc} vs water {rw}");
        }
    }

    #[test]
    fn added_attenuation_shortens_range_and_weakens_rx() {
        let lb = LinkBudget::for_structure(&Structure::s3_common_wall()).unwrap();
        let cracked = lb.with_added_attenuation(0.4).unwrap();
        for d in [0.5, 1.0, 2.0] {
            assert!(
                cracked.received_voltage(200.0, d).unwrap()
                    < lb.received_voltage(200.0, d).unwrap()
            );
        }
        assert!(range(&cracked, 200.0) < range(&lb, 200.0));
        // Zero extra leaves every received voltage bit-identical.
        let same = lb.with_added_attenuation(0.0).unwrap();
        for d in [0.5, 1.3, 2.7] {
            assert_eq!(
                same.received_voltage(200.0, d).unwrap().to_bits(),
                lb.received_voltage(200.0, d).unwrap().to_bits(),
            );
        }
        assert!(lb.with_added_attenuation(-1.0).is_err());
    }

    #[test]
    fn received_voltage_monotone_decreasing() {
        let lb = LinkBudget::for_structure(&Structure::s3_common_wall()).unwrap();
        let mut last = f64::INFINITY;
        for i in 1..100 {
            let v = lb.received_voltage(200.0, i as f64 * 0.1).unwrap();
            assert!(v <= last);
            last = v;
        }
    }

    #[test]
    fn range_monotone_in_voltage() {
        let lb = LinkBudget::for_structure(&Structure::s4_protective_wall()).unwrap();
        let mut last = 0.0;
        for v in [20.0, 50.0, 100.0, 150.0, 200.0, 250.0] {
            if let Some(r) = lb.max_range_m(v, V_ACT).unwrap() {
                assert!(r >= last, "range shrank at {v} V");
                last = r;
            }
        }
        assert!(last > 0.0);
    }

    #[test]
    fn spreading_exponent_bounds() {
        assert_eq!(spreading_exponent(0.15).unwrap(), 0.5);
        assert_eq!(spreading_exponent(0.70).unwrap(), 1.0);
        assert_eq!(spreading_exponent(2.0).unwrap(), 1.0);
        let mid = spreading_exponent(0.45).unwrap();
        assert!(mid > 0.5 && mid < 1.0);
    }

    #[test]
    fn voltage_lanes_match_scalar_bitwise() {
        let lb = LinkBudget::for_structure(&Structure::s3_common_wall()).unwrap();
        let distances: Vec<f64> = (1..40).map(|i| i as f64 * 0.13).collect();
        let lanes = lb.received_voltage_lanes(200.0, &distances).unwrap();
        for (&d, &lane) in distances.iter().zip(&lanes) {
            let scalar = lb.received_voltage(200.0, d).unwrap();
            assert_eq!(lane.to_bits(), scalar.to_bits(), "distance {d}");
        }
        // Whole-batch validation: one bad distance fails the lot.
        assert!(lb.received_voltage_lanes(200.0, &[1.0, -1.0]).is_err());
        assert!(lb.received_voltage_lanes(-5.0, &[1.0]).is_err());
        assert_eq!(
            lb.received_voltage_lanes(200.0, &[]).unwrap(),
            Vec::<f64>::new()
        );
    }

    #[test]
    fn beyond_structure_extent_no_signal() {
        let lb = LinkBudget::for_structure(&Structure::s1_slab()).unwrap();
        assert_eq!(lb.received_voltage(250.0, 2.0).unwrap(), 0.0);
    }

    // --- Former panic paths, now typed errors (the EcoError exemplar). ---

    #[test]
    fn zero_distance_link_is_an_error() {
        let lb = LinkBudget::for_structure(&Structure::s3_common_wall()).unwrap();
        assert_eq!(
            lb.received_voltage(200.0, 0.0).unwrap_err(),
            EcoError::NonPositive {
                what: "link distance d_m",
                value: 0.0,
            }
        );
        assert!(lb.received_voltage(200.0, -1.0).is_err());
    }

    #[test]
    fn negative_drive_is_an_error() {
        let lb = PabPool::Pool1.link_budget();
        assert!(matches!(
            lb.received_voltage(-50.0, 1.0),
            Err(EcoError::OutOfRange { value, .. }) if value == -50.0
        ));
        // The same guard protects the range solver.
        assert!(lb.max_range_m(-50.0, V_ACT).is_err());
    }

    #[test]
    fn non_positive_activation_threshold_is_an_error() {
        let lb = PabPool::Pool1.link_budget();
        assert!(lb.max_range_m(100.0, 0.0).is_err());
        assert!(lb.max_range_m(100.0, -0.5).is_err());
    }

    #[test]
    fn negative_attenuation_is_an_error() {
        // A negative absorption coefficient would amplify with distance.
        let err = PowerLawAttenuation::new(-0.3, 230e3, 1.0).unwrap_err();
        assert!(matches!(err, EcoError::OutOfRange { value, .. } if value == -0.3));
    }

    #[test]
    fn degenerate_confinement_is_an_error() {
        assert!(spreading_exponent(0.0).is_err());
        assert!(spreading_exponent(-0.2).is_err());
    }
}

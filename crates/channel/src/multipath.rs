//! Image-source multipath inside a bounded member.
//!
//! Body waves bounce almost losslessly off the concrete/air boundary
//! (R = 99.98%, Eqn 1), so the field at a node is a sum of the direct
//! arrival plus mirror-image arrivals. We use a 2-D image-source model
//! over the wall's face (length × height): adequate because the
//! through-thickness dimension is what *creates* the waveguide and is
//! already folded into the link budget's spreading exponent.
//!
//! Two consumers:
//! - Fig 18 (SNR vs node position): nodes near a free edge sit close to
//!   their first image sources, so reflections arrive nearly in phase
//!   and boost the harvested/backscattered power — "EcoCapsules deployed
//!   close to the margins achieve relatively higher SNR".
//! - Fig 19 (prism sweep): below the first critical angle the channel
//!   carries *two* mode copies (P and S) at different speeds — modelled
//!   as two arrival combs offset by the P/S delay.

use elastic::attenuation::PowerLawAttenuation;

/// One ray arrival at the receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Propagation delay (s).
    pub delay_s: f64,
    /// Signed amplitude (reflections flip sign at each free boundary:
    /// R ≈ −1 for solid→air in displacement).
    pub amplitude: f64,
}

/// A rectangular 2-D member face with a source and receiver inside it.
#[derive(Debug, Clone, Copy)]
pub struct Wall2d {
    /// Face length (m), x direction.
    pub length_m: f64,
    /// Face height (m), y direction.
    pub height_m: f64,
    /// Wave speed of the propagating mode (m/s).
    pub wave_speed_m_s: f64,
    /// Absorption law for the propagating mode.
    pub attenuation: PowerLawAttenuation,
    /// Carrier frequency (Hz) for absorption evaluation.
    pub carrier_hz: f64,
}

impl Wall2d {
    /// Creates a wall model. Panics on non-positive dimensions/speed.
    pub fn new(
        length_m: f64,
        height_m: f64,
        wave_speed_m_s: f64,
        attenuation: PowerLawAttenuation,
        carrier_hz: f64,
    ) -> Self {
        assert!(
            length_m > 0.0 && height_m > 0.0 && wave_speed_m_s > 0.0 && carrier_hz > 0.0,
            "wall parameters must be positive"
        );
        Wall2d {
            length_m,
            height_m,
            wave_speed_m_s,
            attenuation,
            carrier_hz,
        }
    }

    /// Image-source arrivals between `src` and `rx` (positions in metres,
    /// inside the face), up to reflection order `order` in each axis.
    ///
    /// Amplitudes combine spreading (cylindrical within the face),
    /// absorption and the per-bounce reflection sign. Panics if either
    /// point lies outside the face.
    pub fn arrivals(&self, src: (f64, f64), rx: (f64, f64), order: i32) -> Vec<Arrival> {
        for &(x, y) in &[src, rx] {
            assert!(
                (0.0..=self.length_m).contains(&x) && (0.0..=self.height_m).contains(&y),
                "point ({x},{y}) outside the wall face"
            );
        }
        assert!(order >= 0, "reflection order must be non-negative");
        let ref_m = 0.05;
        let mut out = Vec::new();
        for mx in -order..=order {
            for my in -order..=order {
                // Image of the source after mx reflections in x, my in y.
                let ix = image_coord(src.0, self.length_m, mx);
                let iy = image_coord(src.1, self.height_m, my);
                let d = ((rx.0 - ix).powi(2) + (rx.1 - iy).powi(2))
                    .sqrt()
                    .max(ref_m);
                let bounces = mx.unsigned_abs() + my.unsigned_abs();
                // Displacement reflection at a traction-free surface is
                // +1 (the stress flips sign, the displacement doubles) —
                // this is why nodes near a free edge sit at a displacement
                // antinode and harvest more power (Fig 18).
                let refl = 0.9998f64.powi(bounces as i32);
                let spread = (ref_m / d).sqrt();
                let absorb = self.attenuation.amplitude_factor(self.carrier_hz, d);
                out.push(Arrival {
                    delay_s: d / self.wave_speed_m_s,
                    amplitude: refl * spread * absorb,
                });
            }
        }
        out.sort_by(|a, b| a.delay_s.total_cmp(&b.delay_s));
        out
    }

    /// Root-sum-square amplitude of all arrivals — the incoherent power
    /// proxy used for position-dependent SNR (Fig 18).
    pub fn rss_amplitude(&self, src: (f64, f64), rx: (f64, f64), order: i32) -> f64 {
        self.arrivals(src, rx, order)
            .iter()
            .map(|a| a.amplitude * a.amplitude)
            .sum::<f64>()
            .sqrt()
    }

    /// Coherent sum of arrival phasors at the carrier — captures the
    /// constructive/destructive superposition the paper warns about
    /// ("the reflection is a double-edged sword").
    pub fn coherent_amplitude(&self, src: (f64, f64), rx: (f64, f64), order: i32) -> f64 {
        let w = 2.0 * std::f64::consts::PI * self.carrier_hz;
        let (mut re, mut im) = (0.0, 0.0);
        for a in self.arrivals(src, rx, order) {
            re += a.amplitude * (w * a.delay_s).cos();
            im += a.amplitude * (w * a.delay_s).sin();
        }
        re.hypot(im)
    }

    /// Convolves a sampled waveform with the arrival comb (tapped delay
    /// line at `fs_hz`) — the time-domain channel used by end-to-end
    /// waveform simulations.
    pub fn apply(
        &self,
        signal: &[f64],
        src: (f64, f64),
        rx: (f64, f64),
        order: i32,
        fs_hz: f64,
    ) -> Vec<f64> {
        assert!(fs_hz > 0.0, "sample rate must be positive");
        let arrivals = self.arrivals(src, rx, order);
        let max_delay_s = arrivals.last().map_or(0.0, |a| a.delay_s);
        let n_out = signal.len() + (max_delay_s * fs_hz).ceil() as usize;
        let mut out = vec![0.0; n_out];
        for a in &arrivals {
            let shift = (a.delay_s * fs_hz).round() as usize;
            for (i, &x) in signal.iter().enumerate() {
                out[i + shift] += a.amplitude * x;
            }
        }
        out
    }
}

/// A full 3-D rectangular member with image sources along all three
/// axes — the higher-fidelity sibling of [`Wall2d`] used when the
/// through-thickness reflections matter (thick members, or validating
/// the 2-D model's waveguide assumption).
#[derive(Debug, Clone, Copy)]
pub struct Box3d {
    /// Extent along x (m).
    pub lx_m: f64,
    /// Extent along y (m).
    pub ly_m: f64,
    /// Extent along z (m) — usually the thickness.
    pub lz_m: f64,
    /// Wave speed (m/s).
    pub wave_speed_m_s: f64,
    /// Absorption law.
    pub attenuation: PowerLawAttenuation,
    /// Carrier frequency (Hz).
    pub carrier_hz: f64,
}

impl Box3d {
    /// Creates a box model. Panics on non-positive dimensions.
    pub fn new(
        lx_m: f64,
        ly_m: f64,
        lz_m: f64,
        wave_speed_m_s: f64,
        attenuation: PowerLawAttenuation,
        carrier_hz: f64,
    ) -> Self {
        assert!(
            lx_m > 0.0 && ly_m > 0.0 && lz_m > 0.0 && wave_speed_m_s > 0.0 && carrier_hz > 0.0,
            "box parameters must be positive"
        );
        Box3d {
            lx_m,
            ly_m,
            lz_m,
            wave_speed_m_s,
            attenuation,
            carrier_hz,
        }
    }

    /// Image-source arrivals up to reflection `order` per axis, with
    /// spherical spreading per path (the 3-D free-space law — guiding
    /// emerges from the image sum itself rather than an assumed
    /// spreading exponent).
    pub fn arrivals(&self, src: (f64, f64, f64), rx: (f64, f64, f64), order: i32) -> Vec<Arrival> {
        for &(x, y, z) in &[src, rx] {
            assert!(
                (0.0..=self.lx_m).contains(&x)
                    && (0.0..=self.ly_m).contains(&y)
                    && (0.0..=self.lz_m).contains(&z),
                "point ({x},{y},{z}) outside the box"
            );
        }
        assert!(order >= 0, "reflection order must be non-negative");
        let ref_m = 0.05;
        let mut out = Vec::new();
        for mx in -order..=order {
            let ix = image_coord(src.0, self.lx_m, mx);
            for my in -order..=order {
                let iy = image_coord(src.1, self.ly_m, my);
                for mz in -order..=order {
                    let iz = image_coord(src.2, self.lz_m, mz);
                    let d = ((rx.0 - ix).powi(2) + (rx.1 - iy).powi(2) + (rx.2 - iz).powi(2))
                        .sqrt()
                        .max(ref_m);
                    let bounces = mx.unsigned_abs() + my.unsigned_abs() + mz.unsigned_abs();
                    let refl = 0.9998f64.powi(bounces as i32);
                    let spread = ref_m / d; // spherical
                    let absorb = self.attenuation.amplitude_factor(self.carrier_hz, d);
                    out.push(Arrival {
                        delay_s: d / self.wave_speed_m_s,
                        amplitude: refl * spread * absorb,
                    });
                }
            }
        }
        out.sort_by(|a, b| a.delay_s.total_cmp(&b.delay_s));
        out
    }

    /// Root-sum-square amplitude of all arrivals.
    pub fn rss_amplitude(&self, src: (f64, f64, f64), rx: (f64, f64, f64), order: i32) -> f64 {
        self.arrivals(src, rx, order)
            .iter()
            .map(|a| a.amplitude * a.amplitude)
            .sum::<f64>()
            .sqrt()
    }
}

fn image_coord(x: f64, extent: f64, m: i32) -> f64 {
    // Mirror positions: even m → translate, odd m → reflect.
    let k = m.div_euclid(2) as f64;
    if m.rem_euclid(2) == 0 {
        x + 2.0 * k * extent
    } else {
        -x + 2.0 * (k + 1.0) * extent
    }
}

/// A dual-mode channel: the same geometry traversed by both a P and an S
/// copy of the signal (prism incidence below the first critical angle).
/// `p_fraction` is the amplitude fraction carried by the P copy.
#[derive(Debug, Clone, Copy)]
pub struct DualModeChannel {
    /// P-wave speed (m/s).
    pub cp_m_s: f64,
    /// S-wave speed (m/s).
    pub cs_m_s: f64,
    /// Amplitude fraction in the P copy, in `[0, 1]`.
    pub p_fraction: f64,
    /// Path length (m).
    pub distance_m: f64,
}

impl DualModeChannel {
    /// Applies the two-copy channel to a waveform at `fs_hz`: the P copy
    /// arrives first (faster), the S copy 40%-ish later — producing the
    /// "60% data overlap" intra-symbol interference of §3.2.
    pub fn apply(&self, signal: &[f64], fs_hz: f64) -> Vec<f64> {
        assert!(fs_hz > 0.0, "sample rate must be positive");
        assert!(
            (0.0..=1.0).contains(&self.p_fraction),
            "p_fraction must be in [0,1]"
        );
        let t_p = self.distance_m / self.cp_m_s;
        let t_s = self.distance_m / self.cs_m_s;
        let shift_p = (t_p * fs_hz).round() as usize;
        let shift_s = (t_s * fs_hz).round() as usize;
        let mut out = vec![0.0; signal.len() + shift_s.max(shift_p)];
        for (i, &x) in signal.iter().enumerate() {
            out[i + shift_p] += self.p_fraction * x;
            out[i + shift_s] += (1.0 - self.p_fraction) * x;
        }
        out
    }

    /// The inter-copy delay (s).
    pub fn mode_delay_s(&self) -> f64 {
        self.distance_m / self.cs_m_s - self.distance_m / self.cp_m_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nc_wall() -> Wall2d {
        let mix = concrete::ConcreteGrade::Nc.mix();
        Wall2d::new(2.0, 2.0, mix.material().cs_m_s, mix.attenuation_s(), 230e3)
    }

    #[test]
    fn direct_path_is_first_and_strongest_arrival() {
        let w = nc_wall();
        let arr = w.arrivals((0.3, 1.0), (1.5, 1.0), 1);
        let direct_d = 1.2;
        assert!((arr[0].delay_s - direct_d / w.wave_speed_m_s).abs() < 1e-9);
        let max_amp = arr.iter().map(|a| a.amplitude.abs()).fold(0.0, f64::max);
        assert!((arr[0].amplitude.abs() - max_amp).abs() < 1e-12);
    }

    #[test]
    fn zero_order_is_single_arrival() {
        let w = nc_wall();
        assert_eq!(w.arrivals((0.5, 0.5), (1.5, 1.5), 0).len(), 1);
    }

    #[test]
    fn arrival_count_is_grid_complete() {
        let w = nc_wall();
        assert_eq!(w.arrivals((0.5, 0.5), (1.5, 1.5), 2).len(), 25);
    }

    #[test]
    fn margin_positions_collect_more_power_than_middle() {
        // Fig 18: nodes near the wall's free edges see higher SNR than
        // mid-wall nodes at similar reader distance.
        // "The distances between the reader and the node are similar":
        // both nodes sit ~1.0 m from the source, but the top node hugs
        // the free edge where its first image sources are close.
        let w = nc_wall();
        let src = (0.1, 1.0);
        let rx_middle = (1.1, 1.0); // d = 1.00 m
        let rx_top = (0.55, 1.95); // d ≈ 1.05 m
        let p_mid = w.rss_amplitude(src, rx_middle, 3);
        let p_top = w.rss_amplitude(src, rx_top, 3);
        assert!(p_top > p_mid, "top {p_top} vs middle {p_mid}");
    }

    #[test]
    fn reflections_add_power_over_direct_only() {
        let w = nc_wall();
        let p0 = w.rss_amplitude((0.2, 1.0), (1.8, 1.0), 0);
        let p3 = w.rss_amplitude((0.2, 1.0), (1.8, 1.0), 3);
        assert!(p3 > p0, "reflections must add energy: {p3} vs {p0}");
    }

    #[test]
    fn apply_superposes_delayed_copies() {
        let w = nc_wall();
        let fs = 1.0e6;
        let impulse = {
            let mut v = vec![0.0; 10];
            v[0] = 1.0;
            v
        };
        let h = w.apply(&impulse, (0.5, 1.0), (1.5, 1.0), 1, fs);
        let nonzero = h.iter().filter(|&&x| x.abs() > 1e-9).count();
        // 9 image sources; some land on the same rounded sample.
        assert!(nonzero >= 3, "expected several taps, got {nonzero}");
    }

    #[test]
    fn dual_mode_delay_matches_speed_gap() {
        // §3.2: S spreads 40% slower ⇒ 60% overlap for adjacent data.
        let ch = DualModeChannel {
            cp_m_s: 3338.0,
            cs_m_s: 1941.0,
            p_fraction: 0.5,
            distance_m: 1.0,
        };
        let dt = ch.mode_delay_s();
        assert!((dt - (1.0 / 1941.0 - 1.0 / 3338.0)).abs() < 1e-12);
        assert!(dt > 0.0);
    }

    #[test]
    fn dual_mode_apply_creates_two_copies() {
        let ch = DualModeChannel {
            cp_m_s: 3000.0,
            cs_m_s: 1500.0,
            p_fraction: 0.4,
            distance_m: 0.3,
        };
        let fs = 1.0e6;
        let mut impulse = vec![0.0; 4];
        impulse[0] = 1.0;
        let y = ch.apply(&impulse, fs);
        let taps: Vec<(usize, f64)> = y
            .iter()
            .enumerate()
            .filter(|(_, &x)| x.abs() > 1e-12)
            .map(|(i, &x)| (i, x))
            .collect();
        assert_eq!(taps.len(), 2);
        assert!((taps[0].1 - 0.4).abs() < 1e-12, "P copy amplitude");
        assert!((taps[1].1 - 0.6).abs() < 1e-12, "S copy amplitude");
        assert_eq!(taps[0].0, (0.3 / 3000.0 * fs).round() as usize);
        assert_eq!(taps[1].0, (0.3 / 1500.0 * fs).round() as usize);
    }

    #[test]
    fn box3d_thin_member_guides_energy_better_than_thick() {
        // The waveguide effect emerges from the image sum: at equal
        // distance, a 20 cm member retains more energy than a 70 cm one
        // because its z-axis images are closer (Fig 12 finding 2, derived
        // rather than assumed).
        let mix = concrete::ConcreteGrade::Nc.mix();
        let cs = mix.material().cs_m_s;
        let thin = Box3d::new(6.0, 6.0, 0.20, cs, mix.attenuation_s(), 230e3);
        let thick = Box3d::new(6.0, 6.0, 0.70, cs, mix.attenuation_s(), 230e3);
        let d = 3.0;
        let a_thin = thin.rss_amplitude((0.2, 3.0, 0.10), (0.2 + d, 3.0, 0.10), 4);
        let a_thick = thick.rss_amplitude((0.2, 3.0, 0.35), (0.2 + d, 3.0, 0.35), 4);
        assert!(a_thin > a_thick, "thin {a_thin} vs thick {a_thick}");
    }

    #[test]
    fn box3d_direct_path_matches_geometry() {
        let mix = concrete::ConcreteGrade::Nc.mix();
        let cs = mix.material().cs_m_s;
        let b = Box3d::new(2.0, 2.0, 0.2, cs, mix.attenuation_s(), 230e3);
        let arr = b.arrivals((0.2, 1.0, 0.1), (1.4, 1.0, 0.1), 0);
        assert_eq!(arr.len(), 1);
        assert!((arr[0].delay_s - 1.2 / cs).abs() < 1e-12);
    }

    #[test]
    fn box3d_arrival_count_is_cubic_in_order() {
        let mix = concrete::ConcreteGrade::Nc.mix();
        let b = Box3d::new(1.0, 1.0, 0.2, 2000.0, mix.attenuation_s(), 230e3);
        assert_eq!(b.arrivals((0.5, 0.5, 0.1), (0.6, 0.5, 0.1), 1).len(), 27);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn box3d_rejects_point_outside() {
        let mix = concrete::ConcreteGrade::Nc.mix();
        let b = Box3d::new(1.0, 1.0, 0.2, 2000.0, mix.attenuation_s(), 230e3);
        let _ = b.arrivals((0.5, 0.5, 0.5), (0.6, 0.5, 0.1), 1);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_point_outside_wall() {
        let w = nc_wall();
        let _ = w.arrivals((3.0, 0.5), (1.0, 1.0), 1);
    }

    #[test]
    fn image_coords_tile_correctly() {
        // Wall of extent 2: images of x=0.5 are at -0.5 (m=1... reflect),
        // 4.5 (m=2 translate), etc.
        assert_eq!(image_coord(0.5, 2.0, 0), 0.5);
        assert_eq!(image_coord(0.5, 2.0, 1), 3.5); // reflect about x=2
        assert_eq!(image_coord(0.5, 2.0, -1), -0.5); // reflect about x=0
        assert_eq!(image_coord(0.5, 2.0, 2), 4.5);
        assert_eq!(image_coord(0.5, 2.0, -2), -3.5);
    }
}

//! Noise generation and SNR conditioning.
//!
//! Every stochastic experiment takes an explicit seeded RNG so figures
//! are exactly reproducible (DESIGN.md §6).

use rand::Rng;

/// Adds white Gaussian noise of standard deviation `sigma` to `signal`.
pub fn add_awgn<R: Rng>(signal: &mut [f64], sigma: f64, rng: &mut R) {
    assert!(sigma >= 0.0, "noise sigma must be non-negative");
    // lint:allow(no-float-eq) sigma = 0.0 is the exact noiseless-channel request
    if sigma == 0.0 {
        return;
    }
    for x in signal.iter_mut() {
        *x += gaussian(rng) * sigma;
    }
}

/// Returns a noisy copy of `signal` at the requested SNR (dB), where the
/// signal power is measured from the record itself. Returns the noise
/// sigma used alongside the noisy signal.
pub fn at_snr_db<R: Rng>(signal: &[f64], snr_db: f64, rng: &mut R) -> (Vec<f64>, f64) {
    let p_sig = signal.iter().map(|&x| x * x).sum::<f64>() / signal.len().max(1) as f64;
    let p_noise = p_sig / 10f64.powf(snr_db / 10.0);
    let sigma = p_noise.sqrt();
    let mut out = signal.to_vec();
    add_awgn(&mut out, sigma, rng);
    (out, sigma)
}

/// A standard normal sample via Box–Muller (two uniforms; we discard the
/// second variate for implementation simplicity — generation cost is not
/// a bottleneck compared to the waveform math).
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| x * x).sum::<f64>() / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn awgn_at_requested_snr() {
        let mut rng = StdRng::seed_from_u64(2);
        let signal: Vec<f64> = (0..50_000).map(|i| (i as f64 * 0.3).sin()).collect();
        let (noisy, sigma) = at_snr_db(&signal, 10.0, &mut rng);
        let noise_power: f64 = noisy
            .iter()
            .zip(&signal)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / signal.len() as f64;
        assert!((noise_power.sqrt() - sigma).abs() / sigma < 0.02);
        let p_sig = signal.iter().map(|x| x * x).sum::<f64>() / signal.len() as f64;
        let measured_snr = 10.0 * (p_sig / noise_power).log10();
        assert!(
            (measured_snr - 10.0).abs() < 0.2,
            "measured {measured_snr} dB"
        );
    }

    #[test]
    fn zero_sigma_is_identity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sig = vec![1.0, 2.0, 3.0];
        add_awgn(&mut sig, 0.0, &mut rng);
        assert_eq!(sig, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn seeded_noise_is_reproducible() {
        let signal = vec![0.0; 100];
        let (a, _) = at_snr_db(
            &signal.clone().iter().map(|_| 1.0).collect::<Vec<_>>(),
            5.0,
            &mut StdRng::seed_from_u64(9),
        );
        let (b, _) = at_snr_db(
            &signal.iter().map(|_| 1.0).collect::<Vec<_>>(),
            5.0,
            &mut StdRng::seed_from_u64(9),
        );
        assert_eq!(a, b);
    }
}

//! Surface-wave leakage from the TX PZT to the RX PZT (§3.4, §5.1).
//!
//! Both reader transducers sit on the same wall face, ~20 cm apart
//! (§5.1). Besides the S-reflections, the TX leaks a Rayleigh surface
//! wave straight along the face into the RX — part of the
//! self-interference that is "10× stronger than the backscattered
//! signals". Two mitigations appear in the paper:
//!
//! - geometry: "surface waves are almost filtered out because of the
//!   sharp edges and corners" — each corner a Rayleigh wave turns costs
//!   most of its energy;
//! - frequency: the uplink's BLF guard band separates the (carrier-
//!   frequency) leak from the data sidebands.
//!
//! This module quantifies the leak so uplink configurations can be
//! derived from geometry instead of hand-set.

use elastic::rayleigh;
use elastic::Material;

/// Amplitude retention per sharp corner a Rayleigh wave crosses (free
/// 90° edges transmit only ~15% of the incident surface-wave energy).
pub const CORNER_AMPLITUDE_RETENTION: f64 = 0.38;

/// A surface path between two transducers on the member's skin.
#[derive(Debug, Clone, Copy)]
pub struct SurfacePath {
    /// Path length along the surface (m).
    pub distance_m: f64,
    /// Sharp corners/edges crossed en route.
    pub corners: u32,
    /// The member's material.
    pub material: Material,
}

impl SurfacePath {
    /// The paper's reader layout: TX and RX ~20 cm apart on one face.
    pub fn paper_reader_layout() -> Self {
        SurfacePath {
            distance_m: 0.20,
            corners: 0,
            material: Material::CONCRETE_REF,
        }
    }

    /// Leak amplitude at `f_hz` relative to the launched surface-wave
    /// amplitude: cylindrical surface spreading (∝1/√r), material
    /// absorption at the Rayleigh speed, and the per-corner penalty.
    pub fn leak_amplitude(&self, f_hz: f64) -> f64 {
        assert!(f_hz > 0.0, "frequency must be positive");
        let Some(cr) = rayleigh::rayleigh_speed_m_s(&self.material) else {
            return 0.0;
        };
        let ref_m = 0.02;
        let spread = if self.distance_m <= ref_m {
            1.0
        } else {
            (ref_m / self.distance_m).sqrt()
        };
        // Rayleigh absorption in concrete is comparable to the S-wave's:
        // α ≈ 0.3 Np/m at the carrier, scaling with f.
        let alpha = 0.3 * f_hz / 230e3;
        let absorb = (-alpha * self.distance_m).exp();
        let corners = CORNER_AMPLITUDE_RETENTION.powi(self.corners as i32);
        let _ = cr;
        spread * absorb * corners
    }

    /// Arrival delay of the surface leak (s).
    pub fn delay_s(&self) -> Option<f64> {
        rayleigh::rayleigh_speed_m_s(&self.material).map(|cr| self.distance_m / cr)
    }
}

/// Total self-interference amplitude at the RX for a reader layout:
/// the direct S-reflection leak plus the surface-wave leak, normalized
/// so the paper's default layout gives the §3.4 ratio (10× the
/// backscatter amplitude).
pub fn self_interference_amplitude(
    path: &SurfacePath,
    f_hz: f64,
    backscatter_amplitude: f64,
) -> f64 {
    assert!(
        backscatter_amplitude >= 0.0,
        "amplitude must be non-negative"
    );
    let reference = SurfacePath::paper_reader_layout().leak_amplitude(230e3);
    let body_leak = 6.0 * backscatter_amplitude; // S-reflections at the RX
    let surface_leak = 4.0 * backscatter_amplitude * path.leak_amplitude(f_hz) / reference;
    body_leak + surface_leak
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_reproduces_the_10x_ratio() {
        let p = SurfacePath::paper_reader_layout();
        let total = self_interference_amplitude(&p, 230e3, 0.1);
        assert!((total / 0.1 - 10.0).abs() < 0.01, "ratio {}", total / 0.1);
    }

    #[test]
    fn corners_filter_the_surface_wave() {
        // §5.1: blocks' "sharp edges and corners" almost filter surface
        // waves out. Two corners leave < 15% of the leak.
        let straight = SurfacePath::paper_reader_layout();
        let around = SurfacePath {
            corners: 2,
            ..straight
        };
        let ratio = around.leak_amplitude(230e3) / straight.leak_amplitude(230e3);
        assert!(ratio < 0.15, "two corners retain {ratio}");
    }

    #[test]
    fn separating_the_transducers_reduces_leak() {
        let near = SurfacePath::paper_reader_layout();
        let far = SurfacePath {
            distance_m: 1.0,
            ..near
        };
        assert!(far.leak_amplitude(230e3) < 0.5 * near.leak_amplitude(230e3));
    }

    #[test]
    fn leak_arrives_later_than_it_would_through_the_bulk() {
        // Rayleigh speed < S speed < P speed: the surface leak is the
        // slowest arrival at equal path length.
        let p = SurfacePath::paper_reader_layout();
        let t_surface = p.delay_s().unwrap();
        let t_s = p.distance_m / p.material.cs_m_s;
        assert!(t_surface > t_s);
    }

    #[test]
    fn fluid_surface_carries_nothing() {
        let pool = SurfacePath {
            material: Material::WATER,
            ..SurfacePath::paper_reader_layout()
        };
        assert_eq!(pool.leak_amplitude(15e3), 0.0);
        assert_eq!(pool.delay_s(), None);
    }
}

//! Uplink waveform composition (§3.4, Figs 22 & 24).
//!
//! During the uplink the reader's TX keeps emitting the CBW; the node
//! toggles its piezo impedance switch, amplitude-modulating the portion
//! of the CBW it reflects. The receiving PZT therefore sees
//!
//! ```text
//! y(t) = L·sin(2πf_c t)                      (self-interference: CBW leak
//!                                             + S-reflections + surface waves)
//!      + A·m(t)·sin(2πf_c (t−τ))             (backscatter, m(t) ∈ {lo, hi})
//!      + n(t)
//! ```
//!
//! The leak is ~10× stronger than the backscatter (§3.4); the node's
//! switching at the backscatter link frequency (BLF) pushes the data
//! into sidebands at `f_c ± BLF`, leaving a guard band the reader can
//! filter on (Appendix C / Fig 24).

use phy::fm0::Fm0;
use rand::Rng;

/// Parameters of one uplink capture.
#[derive(Debug, Clone, Copy)]
pub struct UplinkConfig {
    /// Carrier (CBW) frequency, Hz. Paper default 230 kHz.
    pub carrier_hz: f64,
    /// Receiver sample rate, Hz. Paper's oscilloscope: 1 MS/s.
    pub fs_hz: f64,
    /// Self-interference (leak) amplitude at the RX.
    pub leak_amplitude: f64,
    /// Backscatter amplitude at the RX (≈ leak/10 per §3.4).
    pub backscatter_amplitude: f64,
    /// Reflection-state modulation depth: the absorptive state still
    /// reflects a little; `0.1` means lo = 10% of hi.
    pub absorptive_residual: f64,
    /// Propagation delay from node to RX (s).
    pub delay_s: f64,
}

impl UplinkConfig {
    /// The paper's nominal uplink: 230 kHz carrier, 1 MS/s capture,
    /// 10:1 leak-to-backscatter, 1 m node standoff in NC.
    pub fn paper_default() -> Self {
        UplinkConfig {
            carrier_hz: 230e3,
            fs_hz: 1.0e6,
            leak_amplitude: 1.0,
            backscatter_amplitude: 0.1,
            absorptive_residual: 0.1,
            delay_s: 1.0 / 1941.0,
        }
    }

    /// The channel-side fault hook: this configuration with a
    /// [`faults::Perturbation`] applied. A rebar multipath burst
    /// multiplies the self-interference leak; a wave-velocity shift of
    /// `+v%` shortens the propagation delay by the same fraction
    /// (`delay = distance / velocity`). SNR dips act on the *noise*, not
    /// the geometry — see [`faulted_noise_sigma`].
    #[must_use]
    pub fn under_fault(&self, p: &faults::Perturbation) -> UplinkConfig {
        UplinkConfig {
            leak_amplitude: self.leak_amplitude * p.multipath_leak_mult,
            delay_s: self.delay_s / (1.0 + p.velocity_shift_frac).max(0.1),
            ..*self
        }
    }
}

/// The noise sigma a capture sees under a perturbation: the nominal
/// sigma scaled by the SNR dip (amplitude domain).
#[must_use]
pub fn faulted_noise_sigma(noise_sigma: f64, p: &faults::Perturbation) -> f64 {
    noise_sigma * p.noise_mult()
}

/// Synthesizes the received uplink waveform for FM0-coded `bits` at
/// `bitrate_bps`, with optional leading CBW-only time `lead_s` (cold
/// start / settling — Fig 22 shows backscatter starting at 4 ms).
/// Returns `(waveform, fm0_codec)`.
pub fn synthesize_uplink<R: Rng>(
    cfg: &UplinkConfig,
    bits: &[bool],
    bitrate_bps: f64,
    lead_s: f64,
    noise_sigma: f64,
    rng: &mut R,
) -> (Vec<f64>, Fm0) {
    assert!(
        bitrate_bps > 0.0 && lead_s >= 0.0,
        "invalid uplink parameters"
    );
    let fm0 = Fm0::for_bitrate(bitrate_bps, cfg.fs_hz);
    let baseband = fm0.encode(bits); // ±1
    let n_lead = (lead_s * cfg.fs_hz).round() as usize;
    let delay_samples = (cfg.delay_s * cfg.fs_hz).round() as usize;
    // Trail with unmodulated CBW so decoder sync slop can never truncate
    // the final symbol (the real reader keeps capturing past the frame).
    let n_tail = 3 * fm0.samples_per_bit() + delay_samples;
    let n_total = n_lead + baseband.len() + n_tail;
    let w = 2.0 * std::f64::consts::PI * cfg.carrier_hz / cfg.fs_hz;

    let mut y = Vec::with_capacity(n_total);
    for i in 0..n_total {
        // Reflection state: map ±1 FM0 level to {residual, 1}.
        let m = if i < n_lead + delay_samples {
            cfg.absorptive_residual
        } else {
            let k = i - n_lead - delay_samples;
            if k < baseband.len() {
                if baseband[k] > 0.0 {
                    1.0
                } else {
                    cfg.absorptive_residual
                }
            } else {
                cfg.absorptive_residual
            }
        };
        let leak = cfg.leak_amplitude * (w * i as f64).sin();
        let bs = cfg.backscatter_amplitude * m * (w * (i as f64 - delay_samples as f64)).sin();
        let n = if noise_sigma > 0.0 {
            crate::noise::gaussian(rng) * noise_sigma
        } else {
            0.0
        };
        y.push(leak + bs + n);
    }
    (y, fm0)
}

/// [`synthesize_uplink`] with an explicit [`dsp::batch::Engine`].
///
/// Under [`Engine::Scalar`](dsp::batch::Engine::Scalar) this *is* the
/// scalar synthesizer. Under the batched engine the two per-sample `sin`
/// evaluations are replaced by lookups into shared
/// [`dsp::batch::sin_table`] tone banks keyed on `(ω, delay)` — the
/// per-entry expressions and the coefficient products are written
/// exactly as the scalar loop writes them, so the waveform is
/// **bit-identical** and the RNG is stepped by the identical noise
/// branch (stream positions match after the call). See DESIGN.md §8.
pub fn synthesize_uplink_with<R: Rng>(
    cfg: &UplinkConfig,
    bits: &[bool],
    bitrate_bps: f64,
    lead_s: f64,
    noise_sigma: f64,
    rng: &mut R,
    engine: dsp::batch::Engine,
) -> (Vec<f64>, Fm0) {
    if !engine.is_batched() {
        return synthesize_uplink(cfg, bits, bitrate_bps, lead_s, noise_sigma, rng);
    }
    assert!(
        bitrate_bps > 0.0 && lead_s >= 0.0,
        "invalid uplink parameters"
    );
    let fm0 = Fm0::for_bitrate(bitrate_bps, cfg.fs_hz);
    let baseband = fm0.encode(bits); // ±1
    let n_lead = (lead_s * cfg.fs_hz).round() as usize;
    let delay_samples = (cfg.delay_s * cfg.fs_hz).round() as usize;
    let n_tail = 3 * fm0.samples_per_bit() + delay_samples;
    let n_total = n_lead + baseband.len() + n_tail;
    let w = 2.0 * std::f64::consts::PI * cfg.carrier_hz / cfg.fs_hz;

    // Shared tone banks: leak_bank[i] = sin(w·i) (offset 0 is bitwise
    // neutral: i − 0.0 ≡ i), bs_bank[i] = sin(w·(i − delay)). The
    // reflection coefficient products mirror the scalar left-to-right
    // association (amp · m) · sin exactly.
    let leak_bank = dsp::batch::sin_table(w, 0.0, n_total);
    let bs_bank = dsp::batch::sin_table(w, delay_samples as f64, n_total);
    let c_hi = cfg.backscatter_amplitude * 1.0;
    let c_lo = cfg.backscatter_amplitude * cfg.absorptive_residual;
    let start = n_lead + delay_samples;

    let mut y = Vec::with_capacity(n_total);
    for i in 0..n_total {
        let c = if i < start {
            c_lo
        } else {
            let k = i - start;
            if k < baseband.len() && baseband[k] > 0.0 {
                c_hi
            } else {
                c_lo
            }
        };
        let leak = cfg.leak_amplitude * leak_bank[i];
        let bs = c * bs_bank[i];
        let n = if noise_sigma > 0.0 {
            crate::noise::gaussian(rng) * noise_sigma
        } else {
            0.0
        };
        y.push(leak + bs + n);
    }
    (y, fm0)
}

/// The backscatter link frequency implied by an FM0 bitrate: the
/// fundamental of the densest toggling pattern (a run of zeros toggles
/// every half-symbol ⇒ BLF = bitrate).
pub fn blf_hz(bitrate_bps: f64) -> f64 {
    assert!(bitrate_bps > 0.0, "bitrate must be positive");
    bitrate_bps
}

/// Guard band the paper reserves between downlink and uplink spectra
/// (§3.4: "several kHz").
pub const GUARD_BAND_HZ: f64 = 3e3;

#[cfg(test)]
mod tests {
    use super::*;
    use dsp::fft::{dominant_bin, power_spectrum};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn spectrum_shows_carrier_and_blf_sidebands() {
        // Fig 24: the received spectrum has three peaks — the CBW and the
        // two AM sidebands of the backscatter signal.
        let cfg = UplinkConfig::paper_default();
        let mut rng = StdRng::seed_from_u64(11);
        // A run of zeros toggles at the BLF: clean sidebands.
        let bits = vec![false; 200];
        let bitrate = 4e3;
        let (y, _) = synthesize_uplink(&cfg, &bits, bitrate, 0.0, 0.0, &mut rng);
        let (freqs, power) = power_spectrum(&y, cfg.fs_hz).unwrap();
        let (_, f_pk, p_carrier) = dominant_bin(&freqs, &power).unwrap();
        assert!((f_pk - 230e3).abs() < 200.0, "carrier at {f_pk}");
        // Sideband power at f_c ± BLF must stand out over the floor.
        let bin_hz = freqs[1] - freqs[0];
        let p_at = |f: f64| {
            let idx = (f / bin_hz).round() as usize;
            power[idx - 1..=idx + 1].iter().cloned().fold(0.0, f64::max)
        };
        let sb_lo = p_at(230e3 - blf_hz(bitrate));
        let sb_hi = p_at(230e3 + blf_hz(bitrate));
        let floor = p_at(180e3);
        assert!(
            sb_lo > 30.0 * floor,
            "lower sideband {sb_lo} vs floor {floor}"
        );
        assert!(
            sb_hi > 30.0 * floor,
            "upper sideband {sb_hi} vs floor {floor}"
        );
        assert!(p_carrier > sb_lo, "carrier dominates");
    }

    #[test]
    fn leak_dominates_backscatter_by_10x() {
        let cfg = UplinkConfig::paper_default();
        assert!((cfg.leak_amplitude / cfg.backscatter_amplitude - 10.0).abs() < 1e-9);
    }

    #[test]
    fn lead_interval_has_no_modulation() {
        // Fig 22: CBW only until the node starts backscattering at 4 ms.
        let cfg = UplinkConfig::paper_default();
        let mut rng = StdRng::seed_from_u64(5);
        let (y, _) = synthesize_uplink(&cfg, &[true, false, true], 1e3, 4e-3, 0.0, &mut rng);
        // During the lead the envelope is constant: peak of first 2 ms
        // equals peak of second 2 ms.
        let n = (2e-3 * cfg.fs_hz) as usize;
        let p1 = y[..n].iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        let p2 = y[n..2 * n].iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!((p1 - p2).abs() < 0.01 * p1);
    }

    #[test]
    fn modulated_section_has_amplitude_contrast() {
        // Zero node delay so leak and backscatter add in phase (at an
        // arbitrary delay they may be destructive — the superposition the
        // paper's §5.3 position discussion warns about).
        let cfg = UplinkConfig {
            delay_s: 0.0,
            ..UplinkConfig::paper_default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let bits = vec![false; 50];
        let (y, fm0) = synthesize_uplink(&cfg, &bits, 2e3, 0.0, 0.0, &mut rng);
        // Envelope must alternate between leak+bs and leak+residual·bs.
        let sps = fm0.samples_per_bit();
        let seg = &y[5 * sps..6 * sps];
        let hi = seg.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        let lo = seg.iter().fold(f64::MAX, |m, &x| m.min(x.abs()));
        let _ = lo;
        // hi should approach leak + backscatter.
        assert!(
            hi > cfg.leak_amplitude + 0.5 * cfg.backscatter_amplitude,
            "hi {hi}"
        );
    }

    #[test]
    fn blf_is_bitrate() {
        assert_eq!(blf_hz(2e3), 2e3);
    }

    #[test]
    fn batched_synthesis_is_bit_identical_to_scalar() {
        use dsp::batch::Engine;
        use rand::Rng;
        let bits = [true, false, true, true, false, false, true, false];
        for (noise, faulted) in [(0.0, false), (0.02, false), (0.02, true)] {
            let mut cfg = UplinkConfig::paper_default();
            if faulted {
                // A velocity shift moves the delay — a second tone-bank key.
                cfg.delay_s /= 1.03;
                cfg.leak_amplitude *= 2.5;
            }
            let mut rng_a = StdRng::seed_from_u64(77);
            let mut rng_b = StdRng::seed_from_u64(77);
            let (ya, _) = synthesize_uplink(&cfg, &bits, 1e3, 1e-3, noise, &mut rng_a);
            let (yb, _) =
                synthesize_uplink_with(&cfg, &bits, 1e3, 1e-3, noise, &mut rng_b, Engine::Batched);
            assert_eq!(ya.len(), yb.len());
            for (i, (a, b)) in ya.iter().zip(yb.iter()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "sample {i} (noise {noise})");
            }
            // The engines must also leave the RNG stream at one position.
            let next_a: u64 = rng_a.gen();
            let next_b: u64 = rng_b.gen();
            assert_eq!(next_a, next_b, "rng stream diverged (noise {noise})");
        }
    }

    #[test]
    fn scalar_engine_variant_is_the_scalar_path() {
        use dsp::batch::Engine;
        let cfg = UplinkConfig::paper_default();
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        let (ya, _) = synthesize_uplink(&cfg, &[true, false], 1e3, 0.0, 0.05, &mut rng_a);
        let (yb, _) = synthesize_uplink_with(
            &cfg,
            &[true, false],
            1e3,
            0.0,
            0.05,
            &mut rng_b,
            Engine::Scalar,
        );
        for (a, b) in ya.iter().zip(yb.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

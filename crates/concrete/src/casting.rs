//! Casting self-sensing concrete (§5.1, Fig 10).
//!
//! EcoCapsules are mixed with the raw materials and the block is cast in
//! a standard mould; a CT scan then verifies the shells survived the pour
//! intact. This module models the placement geometry (cover and spacing
//! constraints for 4.5 cm spheres) and the pour-pressure intactness
//! check the CT examination confirms visually.

use crate::materials::ConcreteMix;

/// Standard EcoCapsule diameter (m) — "the size of a standard ping-pong"
/// (§4.1: 4.5 cm).
pub const CAPSULE_DIAMETER_M: f64 = 0.045;

/// Minimum concrete cover between a capsule surface and the mould wall,
/// so the sunken-mouth PZT stays protected during the pour (m).
pub const MIN_COVER_M: f64 = 0.01;

/// A position inside the mould (m, mould-local coordinates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Position {
    /// Along the length.
    pub x_m: f64,
    /// Along the height (0 = bottom of the pour).
    pub y_m: f64,
    /// Through the thickness.
    pub z_m: f64,
}

impl Position {
    /// Euclidean distance to another position.
    pub fn distance_m(&self, other: &Position) -> f64 {
        ((self.x_m - other.x_m).powi(2)
            + (self.y_m - other.y_m).powi(2)
            + (self.z_m - other.z_m).powi(2))
        .sqrt()
    }
}

/// Errors a casting plan can fail with.
#[derive(Debug, Clone, PartialEq)]
pub enum CastingError {
    /// A capsule violates the cover requirement against a mould face.
    InsufficientCover {
        /// Index of the offending capsule.
        capsule: usize,
    },
    /// Two capsules are closer than one diameter (they would touch).
    CapsulesOverlap {
        /// Indices of the colliding pair.
        pair: (usize, usize),
    },
}

impl std::fmt::Display for CastingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CastingError::InsufficientCover { capsule } => {
                write!(f, "capsule {capsule} is too close to a mould face")
            }
            CastingError::CapsulesOverlap { pair } => {
                write!(f, "capsules {} and {} overlap", pair.0, pair.1)
            }
        }
    }
}

impl std::error::Error for CastingError {}

/// A mould with capsules placed inside, ready to pour.
#[derive(Debug, Clone)]
pub struct CastingPlan {
    /// Mould length (m).
    pub length_m: f64,
    /// Mould height (m) — the pour depth direction.
    pub height_m: f64,
    /// Mould thickness (m).
    pub thickness_m: f64,
    /// The concrete to pour.
    pub mix: ConcreteMix,
    /// Planned capsule centres.
    pub capsules: Vec<Position>,
}

/// Result of the post-cure CT examination of one capsule (Fig 10(c)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtFinding {
    /// Shell and internals intact.
    Intact,
    /// Shell cracked under pour/cure pressure.
    Cracked,
}

impl CastingPlan {
    /// Creates an empty plan. Panics on non-positive dimensions.
    pub fn new(length_m: f64, height_m: f64, thickness_m: f64, mix: ConcreteMix) -> Self {
        assert!(
            length_m > 0.0 && height_m > 0.0 && thickness_m > 0.0,
            "mould dimensions must be positive"
        );
        CastingPlan {
            length_m,
            height_m,
            thickness_m,
            mix,
            capsules: Vec::new(),
        }
    }

    /// Adds a capsule at `pos`.
    pub fn place(&mut self, pos: Position) -> &mut Self {
        self.capsules.push(pos);
        self
    }

    /// Spreads `n` capsules evenly along the mould's length at mid-height
    /// and mid-thickness — the paper's block layout.
    pub fn place_evenly(&mut self, n: usize) -> &mut Self {
        for i in 0..n {
            let x = (i as f64 + 0.5) / n as f64 * self.length_m;
            self.place(Position {
                x_m: x,
                y_m: self.height_m / 2.0,
                z_m: self.thickness_m / 2.0,
            });
        }
        self
    }

    /// Validates cover and spacing constraints.
    #[must_use]
    pub fn validate(&self) -> Result<(), CastingError> {
        let r = CAPSULE_DIAMETER_M / 2.0;
        let lim = r + MIN_COVER_M;
        for (i, c) in self.capsules.iter().enumerate() {
            let ok = c.x_m >= lim
                && c.x_m <= self.length_m - lim
                && c.y_m >= lim
                && c.y_m <= self.height_m - lim
                && c.z_m >= lim
                && c.z_m <= self.thickness_m - lim;
            if !ok {
                return Err(CastingError::InsufficientCover { capsule: i });
            }
        }
        for i in 0..self.capsules.len() {
            for j in i + 1..self.capsules.len() {
                if self.capsules[i].distance_m(&self.capsules[j]) < CAPSULE_DIAMETER_M {
                    return Err(CastingError::CapsulesOverlap { pair: (i, j) });
                }
            }
        }
        Ok(())
    }

    /// Hydrostatic pressure (Pa) of fresh concrete on a capsule at height
    /// `y_m` from the bottom of a pour `pour_height_m` deep.
    pub fn pour_pressure_pa(&self, y_m: f64, pour_height_m: f64) -> f64 {
        assert!(pour_height_m >= 0.0, "pour height must be non-negative");
        let head = (pour_height_m - y_m).max(0.0);
        self.mix.density_kg_m3() * 9.81 * head
    }

    /// Simulates the CT examination after curing: a capsule shell rated
    /// for `shell_dp_max_pa` pressure difference cracks if the pour
    /// pressure exceeded it. For block-scale moulds this never happens —
    /// the check exists for tall in-situ pours (§4.1's 195 m analysis).
    pub fn ct_examination(&self, shell_dp_max_pa: f64) -> Vec<CtFinding> {
        assert!(shell_dp_max_pa > 0.0, "shell rating must be positive");
        self.capsules
            .iter()
            .map(|c| {
                if self.pour_pressure_pa(c.y_m, self.height_m) > shell_dp_max_pa {
                    CtFinding::Cracked
                } else {
                    CtFinding::Intact
                }
            })
            .collect()
    }
}

/// Amplitude retention factor of the concrete glue used to adhere test
/// blocks to buildings (§5.1: "approximately 3% loss of wave energy").
pub const GLUE_AMPLITUDE_FACTOR: f64 = 0.985; // √(1 − 0.03) in energy

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materials::ConcreteGrade;

    fn block_plan() -> CastingPlan {
        // The paper's 15 × 15 × 15 cm block with two capsules (Fig 10).
        let mut p = CastingPlan::new(0.15, 0.15, 0.15, ConcreteGrade::Uhpc.mix());
        p.place(Position {
            x_m: 0.05,
            y_m: 0.075,
            z_m: 0.075,
        });
        p.place(Position {
            x_m: 0.10,
            y_m: 0.075,
            z_m: 0.075,
        });
        p
    }

    #[test]
    fn paper_block_plan_is_valid() {
        assert_eq!(block_plan().validate(), Ok(()));
    }

    #[test]
    fn cover_violation_detected() {
        let mut p = block_plan();
        p.place(Position {
            x_m: 0.01,
            y_m: 0.075,
            z_m: 0.075,
        });
        assert_eq!(
            p.validate(),
            Err(CastingError::InsufficientCover { capsule: 2 })
        );
    }

    #[test]
    fn overlap_detected() {
        let mut p = CastingPlan::new(0.5, 0.15, 0.15, ConcreteGrade::Nc.mix());
        p.place(Position {
            x_m: 0.10,
            y_m: 0.075,
            z_m: 0.075,
        });
        p.place(Position {
            x_m: 0.13,
            y_m: 0.075,
            z_m: 0.075,
        });
        assert_eq!(
            p.validate(),
            Err(CastingError::CapsulesOverlap { pair: (0, 1) })
        );
    }

    #[test]
    fn even_placement_validates_when_it_fits() {
        let mut p = CastingPlan::new(1.5, 0.5, 0.15, ConcreteGrade::Nc.mix());
        p.place_evenly(5);
        assert_eq!(p.validate(), Ok(()));
        assert_eq!(p.capsules.len(), 5);
    }

    #[test]
    fn block_scale_pour_never_cracks_shells() {
        // §4.1: the resin shell tolerates ΔP ≈ 4.3 MPa; a 15 cm pour
        // exerts ~3.5 kPa.
        let p = block_plan();
        let findings = p.ct_examination(4.3e6);
        assert!(findings.iter().all(|f| *f == CtFinding::Intact));
    }

    #[test]
    fn deep_pour_cracks_underrated_shells() {
        // A hypothetical 300 m continuous pour exceeds the resin rating
        // near the bottom (ρgh ≈ 6.8 MPa > 4.3 MPa).
        let mut p = CastingPlan::new(1.0, 300.0, 1.0, ConcreteGrade::Nc.mix());
        p.place(Position {
            x_m: 0.5,
            y_m: 1.0,
            z_m: 0.5,
        });
        p.place(Position {
            x_m: 0.5,
            y_m: 299.0,
            z_m: 0.5,
        });
        let findings = p.ct_examination(4.3e6);
        assert_eq!(findings[0], CtFinding::Cracked, "bottom capsule cracks");
        assert_eq!(findings[1], CtFinding::Intact, "top capsule survives");
    }

    #[test]
    fn pour_pressure_is_hydrostatic() {
        let p = block_plan();
        let pa = p.pour_pressure_pa(0.0, 0.15);
        let expected = ConcreteGrade::Uhpc.mix().density_kg_m3() * 9.81 * 0.15;
        assert!((pa - expected).abs() < 1e-9);
        assert_eq!(p.pour_pressure_pa(0.2, 0.15), 0.0, "above the pour line");
    }
}

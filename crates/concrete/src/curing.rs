//! Concrete curing: when does a freshly cast self-sensing wall come
//! alive?
//!
//! EcoCapsules are mixed in at casting (§5.1), but fresh concrete is a
//! slurry: no shear stiffness, no S-waves, no link. Strength and
//! stiffness develop over weeks following the ACI 209 maturity law
//! `f(t) = f₂₈ · t / (a + b·t)` (moist-cured OPC: a = 4, b = 0.85), the
//! elastic modulus tracks `√(f/f₂₈)`, and the wave speeds follow from
//! the growing modulus — so the earliest day the reader can power and
//! read the implanted capsules falls out of the model.

use crate::materials::ConcreteMix;
use elastic::Material;

/// ACI 209 time-ratio coefficients for moist-cured ordinary Portland
/// cement.
pub const ACI_A_DAYS: f64 = 4.0;
/// ACI 209 slope coefficient.
pub const ACI_B: f64 = 0.85;

/// Setting time (days) before any meaningful shear stiffness exists.
pub const SETTING_DAYS: f64 = 0.5;

/// A curing mix: the target (28-day) mix plus its age.
#[derive(Debug, Clone, Copy)]
pub struct CuringConcrete {
    /// The mature mix the pour will become.
    pub mix: ConcreteMix,
    /// Age since casting (days).
    pub age_days: f64,
}

impl CuringConcrete {
    /// Creates a curing state. Panics on negative age.
    pub fn at_age(mix: ConcreteMix, age_days: f64) -> Self {
        assert!(age_days >= 0.0, "age must be non-negative");
        CuringConcrete { mix, age_days }
    }

    /// Strength development ratio `f(t)/f₂₈ ∈ [0, ~1.06]` (ACI 209).
    /// Zero before setting.
    pub fn strength_ratio(&self) -> f64 {
        if self.age_days < SETTING_DAYS {
            return 0.0;
        }
        self.age_days / (ACI_A_DAYS + ACI_B * self.age_days)
    }

    /// Compressive strength at this age (MPa).
    pub fn fco_mpa(&self) -> f64 {
        self.mix.fco_mpa * self.strength_ratio()
    }

    /// Elastic modulus at this age (Pa): `E ∝ √(f/f₂₈)` (ACI 318's
    /// `E ∝ √f'c` applied through the maturity ratio).
    pub fn ec_pa(&self) -> f64 {
        self.mix.ec_gpa * 1e9 * self.strength_ratio().sqrt()
    }

    /// The elastic medium at this age; `None` before setting (a slurry
    /// carries no shear).
    pub fn material(&self) -> Option<Material> {
        let e = self.ec_pa();
        if e <= 1e7 {
            return None;
        }
        Some(Material::from_engineering(
            "curing concrete",
            e,
            self.mix.poisson,
            self.mix.density_kg_m3(),
        ))
    }

    /// Fraction of the mature S-wave speed available at this age.
    pub fn s_speed_ratio(&self) -> f64 {
        match self.material() {
            None => 0.0,
            Some(m) => m.cs_m_s / self.mix.material().cs_m_s,
        }
    }

    /// The earliest age (days) at which the link budget's received
    /// voltage reaches `fraction` of its mature value, assuming the
    /// channel amplitude scales with the medium's S impedance (stiffer
    /// matrix → better coupling and less scattering). Scanned at 0.25-day
    /// resolution out to 90 days.
    pub fn first_usable_day(mix: ConcreteMix, fraction: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let mature_z = mix.material().impedance_s();
        let mut day = SETTING_DAYS;
        while day <= 90.0 {
            let c = CuringConcrete::at_age(mix, day);
            if let Some(m) = c.material() {
                if m.impedance_s() >= fraction * mature_z {
                    return Some(day);
                }
            }
            day += 0.25;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materials::ConcreteGrade;

    #[test]
    fn aci_landmarks() {
        let mix = ConcreteGrade::Nc.mix();
        // 7-day strength ≈ 70% of 28-day; 28-day ratio ≈ 1.0.
        let r7 = CuringConcrete::at_age(mix, 7.0).strength_ratio();
        assert!((0.65..0.75).contains(&r7), "7-day ratio {r7}");
        let r28 = CuringConcrete::at_age(mix, 28.0).strength_ratio();
        assert!((0.98..1.03).contains(&r28), "28-day ratio {r28}");
    }

    #[test]
    fn fresh_pour_carries_no_shear() {
        let mix = ConcreteGrade::Nc.mix();
        let fresh = CuringConcrete::at_age(mix, 0.1);
        assert_eq!(fresh.material(), None);
        assert_eq!(fresh.s_speed_ratio(), 0.0);
    }

    #[test]
    fn stiffness_grows_monotonically() {
        let mix = ConcreteGrade::Uhpc.mix();
        let mut last = -1.0;
        for d in [1.0, 3.0, 7.0, 14.0, 28.0, 56.0] {
            let e = CuringConcrete::at_age(mix, d).ec_pa();
            assert!(e > last, "E shrank at day {d}");
            last = e;
        }
    }

    #[test]
    fn wave_speed_reaches_90_percent_within_two_weeks() {
        let mix = ConcreteGrade::Nc.mix();
        let day14 = CuringConcrete::at_age(mix, 14.0).s_speed_ratio();
        assert!(day14 > 0.9, "day-14 speed ratio {day14}");
    }

    #[test]
    fn link_comes_alive_in_the_first_week() {
        // 70% of the mature S impedance — comfortably decodable — arrives
        // within the first week of curing.
        let mix = ConcreteGrade::Nc.mix();
        let day = CuringConcrete::first_usable_day(mix, 0.7).unwrap();
        assert!((1.0..8.0).contains(&day), "first usable day {day}");
    }

    #[test]
    fn stronger_fraction_takes_longer() {
        let mix = ConcreteGrade::Nc.mix();
        let d70 = CuringConcrete::first_usable_day(mix, 0.7).unwrap();
        let d95 = CuringConcrete::first_usable_day(mix, 0.95).unwrap();
        assert!(d95 > d70, "d95 {d95} vs d70 {d70}");
    }

    #[test]
    fn mature_strength_matches_table1() {
        let mix = ConcreteGrade::Uhpfrc.mix();
        let f = CuringConcrete::at_age(mix, 28.0).fco_mpa();
        assert!((f - 215.0).abs() / 215.0 < 0.03, "28-day f'c {f}");
    }
}

//! Internal concrete structure: rebar, aggregate and voids (§3.5).
//!
//! "The concrete may have steel reinforcement bars, irregular sand
//! particles, and gravel. It may also have cavities due to mixed air
//! during the casting process. These objects … are analogous to the
//! reflectors in the air on RF communication. … such foreign objects
//! make up only a small portion of the concrete and cannot cause strong
//! interference to normal communication in most cases. Moreover, our
//! experiences indicate that fine-tuning the frequency can significantly
//! improve the channel when the channel deteriorates."
//!
//! We model each scatterer class by its Rayleigh-regime scattering cross
//! section (`σ ∝ a⁶/λ⁴` for obstacles much smaller than the wavelength,
//! transitioning to the geometric `σ ≈ 2πa²` limit) and turn a defect
//! census into (a) an excess attenuation term and (b) a frequency-
//! selective fading channel whose notches the reader's fine-tuning
//! routine can dodge.

/// A class of embedded scatterers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScattererClass {
    /// Display name.
    pub name: &'static str,
    /// Characteristic radius (m).
    pub radius_m: f64,
    /// Number density (scatterers per m³).
    pub density_per_m3: f64,
    /// Scattering strength relative to a rigid sphere (voids ≈ 1, steel
    /// in concrete ≈ 0.6 from the partial impedance contrast, aggregate
    /// ≈ 0.2).
    pub contrast: f64,
}

impl ScattererClass {
    /// Rebar census for ordinarily reinforced concrete (16 mm bars seen
    /// transversely; the effective per-volume count folds in bar length).
    pub fn rebar() -> Self {
        ScattererClass {
            name: "rebar",
            radius_m: 8e-3,
            density_per_m3: 15.0,
            contrast: 0.6,
        }
    }

    /// Entrapped-air voids from imperfect compaction (1 mm entrained
    /// bubbles; the contrast factor folds in their resonant damping).
    pub fn voids(fraction_percent: f64) -> Self {
        assert!(
            (0.0..=10.0).contains(&fraction_percent),
            "void fraction must be 0–10%"
        );
        // n = fraction / (4/3 π a³) with 1 mm voids.
        let a = 1e-3f64;
        let v = 4.0 / 3.0 * std::f64::consts::PI * a.powi(3);
        ScattererClass {
            name: "voids",
            radius_m: a,
            density_per_m3: fraction_percent / 100.0 / v,
            contrast: 0.5,
        }
    }

    /// Coarse-aggregate (gravel) scattering — weak contrast against the
    /// mortar matrix.
    pub fn gravel() -> Self {
        ScattererClass {
            name: "gravel",
            radius_m: 10e-3,
            density_per_m3: 8000.0,
            contrast: 0.2,
        }
    }

    /// Scattering cross-section (m²) at `f_hz` in a medium with wave
    /// speed `c_m_s`: Rayleigh `2πa²·(ka)⁴` capped at the geometric
    /// limit `2πa²`, scaled by the impedance contrast.
    pub fn cross_section_m2(&self, f_hz: f64, c_m_s: f64) -> f64 {
        assert!(f_hz > 0.0 && c_m_s > 0.0, "invalid cross-section query");
        let k = 2.0 * std::f64::consts::PI * f_hz / c_m_s;
        let ka = k * self.radius_m;
        let geo = 2.0 * std::f64::consts::PI * self.radius_m * self.radius_m;
        self.contrast * geo * (ka.powi(4)).min(1.0)
    }

    /// Excess attenuation contribution (Np/m) at `f_hz`:
    /// `α = n·σ/2` (amplitude, half the intensity extinction).
    pub fn excess_attenuation_np_m(&self, f_hz: f64, c_m_s: f64) -> f64 {
        self.density_per_m3 * self.cross_section_m2(f_hz, c_m_s) / 2.0
    }
}

/// A concrete member's defect census plus the frequency-selective fading
/// it induces on a fixed reader↔node path.
#[derive(Debug, Clone)]
pub struct DefectChannel {
    /// Scatterer classes present.
    pub classes: Vec<ScattererClass>,
    /// Path length (m).
    pub distance_m: f64,
    /// Medium wave speed (m/s).
    pub c_m_s: f64,
    /// Deterministic fading seed (fixes the notch positions — they are a
    /// property of the frozen geometry, not of time).
    pub seed: u64,
}

impl DefectChannel {
    /// A clean member (no censused defects).
    pub fn pristine(distance_m: f64, c_m_s: f64) -> Self {
        DefectChannel {
            classes: Vec::new(),
            distance_m,
            c_m_s,
            seed: 0,
        }
    }

    /// A typically reinforced member with the given void percentage.
    ///
    /// Gravel is deliberately *not* censused here: aggregate scattering
    /// is already inside every mix's base attenuation law
    /// ([`crate::ConcreteMix::attenuation`]); this channel models the
    /// *excess* structure on top of it.
    pub fn reinforced(distance_m: f64, c_m_s: f64, void_percent: f64, seed: u64) -> Self {
        DefectChannel {
            classes: vec![ScattererClass::rebar(), ScattererClass::voids(void_percent)],
            distance_m,
            c_m_s,
            seed,
        }
    }

    /// Total excess attenuation (Np/m) at `f_hz`.
    pub fn excess_attenuation_np_m(&self, f_hz: f64) -> f64 {
        self.classes
            .iter()
            .map(|c| c.excess_attenuation_np_m(f_hz, self.c_m_s))
            .sum()
    }

    /// Amplitude factor of the channel at `f_hz`: mean extinction from
    /// the census times a frequency-selective fade from the frozen
    /// scatterer geometry (a few deterministic multipath notches whose
    /// depth grows with the defect load).
    pub fn amplitude_factor(&self, f_hz: f64) -> f64 {
        assert!(f_hz > 0.0, "frequency must be positive");
        let extinction = (-self.excess_attenuation_np_m(f_hz) * self.distance_m).exp();
        if self.classes.is_empty() {
            return extinction;
        }
        // Frozen fading: sum of a few scattered echoes with fixed excess
        // path lengths derived from the seed. Depth scales with the
        // scattered-to-direct ratio s.
        let scattered = 1.0 - extinction;
        let s = 0.6 * scattered.min(1.0);
        let mut re = 1.0;
        let mut im = 0.0;
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(1);
        for i in 0..4 {
            // Excess path of echo i: 5–40 cm, fixed by the seed.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let frac = (x >> 11) as f64 / (1u64 << 53) as f64;
            let excess_m = 0.05 + 0.35 * frac;
            let phase = 2.0 * std::f64::consts::PI * f_hz * excess_m / self.c_m_s;
            let w = s / (i as f64 + 2.0);
            re += w * phase.cos();
            im += w * phase.sin();
        }
        extinction * re.hypot(im)
    }

    /// Channel gain in dB at `f_hz` relative to a pristine path.
    pub fn gain_db(&self, f_hz: f64) -> f64 {
        20.0 * (self.amplitude_factor(f_hz)
            / DefectChannel::pristine(self.distance_m, self.c_m_s).amplitude_factor(f_hz))
        .log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CS: f64 = 2259.0; // NC shear speed

    #[test]
    fn rayleigh_regime_rises_steeply_with_frequency() {
        let v = ScattererClass::voids(2.0);
        let s100 = v.cross_section_m2(100e3, CS);
        let s200 = v.cross_section_m2(200e3, CS);
        // σ ∝ f⁴ in the Rayleigh regime.
        assert!((s200 / s100 - 16.0).abs() < 0.5, "ratio {}", s200 / s100);
    }

    #[test]
    fn cross_section_caps_at_geometric_limit() {
        let r = ScattererClass::rebar();
        let geo = 2.0 * std::f64::consts::PI * r.radius_m * r.radius_m * r.contrast;
        let high = r.cross_section_m2(5e6, CS);
        assert!((high - geo).abs() / geo < 1e-9);
    }

    #[test]
    fn small_defect_load_is_benign() {
        // §3.5: "cannot cause strong interference to normal communication
        // in most cases" — a normal census costs only a few dB per metre.
        let ch = DefectChannel::reinforced(1.0, CS, 1.0, 7);
        let a = ch.excess_attenuation_np_m(230e3);
        assert!(a < 1.0, "excess α = {a} Np/m");
        let mean_loss_db = a * 1.0 * 8.686;
        assert!(mean_loss_db < 8.0, "mean defect loss {mean_loss_db} dB/m");
    }

    #[test]
    fn more_voids_hurt_more() {
        let light = DefectChannel::reinforced(1.0, CS, 0.5, 7);
        let heavy = DefectChannel::reinforced(1.0, CS, 5.0, 7);
        assert!(heavy.excess_attenuation_np_m(230e3) > 2.0 * light.excess_attenuation_np_m(230e3));
    }

    #[test]
    fn pristine_channel_is_flat() {
        let ch = DefectChannel::pristine(1.0, CS);
        for f in [180e3, 230e3, 280e3] {
            assert_eq!(ch.amplitude_factor(f), 1.0);
        }
    }

    #[test]
    fn fading_creates_notches_that_retuning_dodges() {
        // §3.5: "fine-tuning the frequency can significantly improve the
        // channel". Across seeds, the worst in-band frequency must be
        // several dB below the best one.
        let ch = DefectChannel::reinforced(1.5, CS, 3.0, 42);
        let mut best = f64::MIN;
        let mut worst = f64::MAX;
        let mut f = 210e3;
        while f <= 250e3 {
            let g = 20.0 * ch.amplitude_factor(f).log10();
            best = best.max(g);
            worst = worst.min(g);
            f += 1e3;
        }
        assert!(best - worst > 3.0, "tuning headroom {} dB", best - worst);
    }

    #[test]
    fn fading_is_frozen_per_seed() {
        let a = DefectChannel::reinforced(1.0, CS, 2.0, 9).amplitude_factor(230e3);
        let b = DefectChannel::reinforced(1.0, CS, 2.0, 9).amplitude_factor(230e3);
        assert_eq!(a, b);
        let c = DefectChannel::reinforced(1.0, CS, 2.0, 10).amplitude_factor(230e3);
        assert_ne!(a, c, "different geometry, different notches");
    }
}

//! # ecocapsule-concrete
//!
//! Concrete substrate: everything the paper knows about its host medium.
//!
//! - [`materials`] — the Table 1 registry (NC / UHPC / UHPFRC mix
//!   proportions and mechanical properties) converted into elastic media
//!   (wave speeds from `E_c`, ν and mix density) plus per-material
//!   attenuation laws;
//! - [`response`] — the measured-style concrete frequency response of
//!   Fig 5(b): a transducer-pair resonance shaped by thickness-dependent
//!   attenuation, peaking in the 200–250 kHz carrier band;
//! - [`structure`] — the four evaluated structures (S1 slab, S2 bearing
//!   column, S3/S4 walls) and the block geometry, with the narrow-
//!   structure waveguide classification behind Fig 12's finding (2);
//! - [`casting`] — mixing EcoCapsules into a mould: placement, cover
//!   checks, and the CT-scan intactness model of Fig 10.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod casting;
pub mod curing;
pub mod defects;
pub mod materials;
pub mod response;
pub mod structure;

pub use materials::{ConcreteGrade, ConcreteMix};
pub use structure::Structure;

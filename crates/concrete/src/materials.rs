//! The Table 1 concrete registry.
//!
//! The paper evaluates three concretes: normal concrete (NC),
//! ultra-high-performance concrete (UHPC) and ultra-high-performance
//! fiber-reinforced concrete (UHPFRC — the strongest concrete produced
//! with standard mixing, 215 MPa compressive). Table 1 gives mix
//! proportions (kg/m³) and the mechanical properties we need to derive
//! wave speeds: elastic modulus `E_c`, Poisson's ratio ν and (via the mix
//! masses) density.

use elastic::attenuation::PowerLawAttenuation;
use elastic::{EcoError, EcoResult, Material};

/// The three evaluated concrete grades.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConcreteGrade {
    /// Normal concrete (f_co = 54.1 MPa).
    Nc,
    /// Ultra-high-performance concrete (f_co = 195.3 MPa).
    Uhpc,
    /// Ultra-high-performance fiber-reinforced concrete — the paper's
    /// UHPSSC column in Table 1 (f_co = 215.0 MPa, 471 kg/m³ steel fiber).
    Uhpfrc,
}

impl ConcreteGrade {
    /// All grades, in Table 1 order.
    pub const ALL: [ConcreteGrade; 3] = [
        ConcreteGrade::Nc,
        ConcreteGrade::Uhpc,
        ConcreteGrade::Uhpfrc,
    ];

    /// The Table 1 mix for this grade.
    pub fn mix(self) -> ConcreteMix {
        match self {
            ConcreteGrade::Nc => ConcreteMix {
                grade: self,
                name: "NC",
                cement_kg_m3: 300.0,
                silica_fume_kg_m3: 0.0,
                fly_ash_kg_m3: 200.0,
                quartz_powder_kg_m3: 0.0,
                sand_kg_m3: 796.0,
                granite_kg_m3: 829.0,
                steel_fiber_kg_m3: 0.0,
                water_kg_m3: 175.0,
                hrwr_kg_m3: 9.0,
                fco_mpa: 54.1,
                ec_gpa: 27.8,
                poisson: 0.18,
                eps_co_percent: 0.263,
            },
            ConcreteGrade::Uhpc => ConcreteMix {
                grade: self,
                name: "UHPC",
                cement_kg_m3: 830.0,
                silica_fume_kg_m3: 207.0,
                fly_ash_kg_m3: 0.0,
                quartz_powder_kg_m3: 207.0,
                sand_kg_m3: 913.0,
                granite_kg_m3: 0.0,
                steel_fiber_kg_m3: 0.0,
                water_kg_m3: 164.0,
                hrwr_kg_m3: 27.0,
                fco_mpa: 195.3,
                ec_gpa: 52.5,
                poisson: 0.21,
                eps_co_percent: 0.447,
            },
            ConcreteGrade::Uhpfrc => ConcreteMix {
                grade: self,
                name: "UHPFRC",
                cement_kg_m3: 807.0,
                silica_fume_kg_m3: 202.0,
                fly_ash_kg_m3: 0.0,
                quartz_powder_kg_m3: 202.0,
                sand_kg_m3: 888.0,
                granite_kg_m3: 0.0,
                steel_fiber_kg_m3: 471.0,
                water_kg_m3: 158.0,
                hrwr_kg_m3: 29.0,
                fco_mpa: 215.0,
                ec_gpa: 52.7,
                poisson: 0.21,
                eps_co_percent: 0.447,
            },
        }
    }

    /// Shorthand for `self.mix().material()`.
    pub fn material(self) -> Material {
        self.mix().material()
    }
}

impl std::fmt::Display for ConcreteGrade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.mix().name)
    }
}

/// A Table 1 row: mix proportions (kg per m³ of concrete) and mechanical
/// properties.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcreteMix {
    /// Which grade this is.
    pub grade: ConcreteGrade,
    /// Display name.
    pub name: &'static str,
    /// Cement content.
    pub cement_kg_m3: f64,
    /// Silica fume content.
    pub silica_fume_kg_m3: f64,
    /// Fly ash content.
    pub fly_ash_kg_m3: f64,
    /// Quartz powder content.
    pub quartz_powder_kg_m3: f64,
    /// Sand content.
    pub sand_kg_m3: f64,
    /// Granite (coarse aggregate) content.
    pub granite_kg_m3: f64,
    /// Steel fiber content.
    pub steel_fiber_kg_m3: f64,
    /// Water content.
    pub water_kg_m3: f64,
    /// High-range water reducer content.
    pub hrwr_kg_m3: f64,
    /// Compressive strength f_co (MPa).
    pub fco_mpa: f64,
    /// Elastic modulus E_c (GPa).
    pub ec_gpa: f64,
    /// Poisson's ratio ν.
    pub poisson: f64,
    /// Strain at f_co, ε_co (%).
    pub eps_co_percent: f64,
}

impl ConcreteMix {
    /// Fresh density: the sum of the mix masses per m³.
    pub fn density_kg_m3(&self) -> f64 {
        self.cement_kg_m3
            + self.silica_fume_kg_m3
            + self.fly_ash_kg_m3
            + self.quartz_powder_kg_m3
            + self.sand_kg_m3
            + self.granite_kg_m3
            + self.steel_fiber_kg_m3
            + self.water_kg_m3
            + self.hrwr_kg_m3
    }

    /// Elastic medium derived from `E_c`, ν and the mix density.
    pub fn material(&self) -> Material {
        Material::from_engineering(
            self.name,
            self.ec_gpa * 1e9,
            self.poisson,
            self.density_kg_m3(),
        )
    }

    /// Frequency-power-law attenuation for this concrete.
    ///
    /// Coarse aggregate (granite) scatters ultrasound strongly — NC
    /// attenuates far more than the fine-grained UHPC family. The
    /// reference values are calibrated so the Fig 5(b) peak-amplitude
    /// ordering (UHPFRC ≳ UHPC ≫ NC) and the NC-7cm vs NC-15cm gap are
    /// reproduced, and so that ranges in Fig 12 land at the right scale.
    pub fn attenuation(&self) -> PowerLawAttenuation {
        // Scattering contribution grows with coarse-aggregate fraction;
        // dense UHPC matrices attenuate less.
        let coarse_fraction = self.granite_kg_m3 / self.density_kg_m3();
        let alpha0 = 1.2 + 16.0 * coarse_fraction; // Np/m at 230 kHz
                                                   // alpha0 >= 1.2 by construction, so literal construction is safe.
        PowerLawAttenuation {
            alpha0_np_m: alpha0,
            f0_hz: 230e3,
            exponent: 1.8,
        }
    }

    /// S-wave attenuation law.
    ///
    /// §3.1: "the attenuation coefficient of S-wave is much smaller than
    /// that of P-waves (ref. 39), which means S-wave can travel further" — the
    /// whole reason the prism selects the S mode. The S law is what the
    /// metre-scale range results (Fig 12) ride on; the P law
    /// ([`Self::attenuation`]) is what the block-scale frequency response
    /// (Fig 5b) measures.
    pub fn attenuation_s(&self) -> PowerLawAttenuation {
        let coarse_fraction = self.granite_kg_m3 / self.density_kg_m3();
        let alpha0 = 0.10 + 0.14 * coarse_fraction; // Np/m at 230 kHz
        PowerLawAttenuation {
            alpha0_np_m: alpha0,
            f0_hz: 230e3,
            exponent: 1.0,
        }
    }

    /// Resonant carrier frequency of the transducer/concrete system (§3.3:
    /// "regardless of concrete type, the resonant frequency appears
    /// between 200 kHz and 250 kHz").
    pub fn resonant_frequency_hz(&self) -> f64 {
        // Slightly stiffer matrices resonate marginally higher.
        225e3 + 10e3 * (self.ec_gpa - 27.8) / 25.0
    }

    /// The paper's off-resonance FSK frequency (§3.3 uses 180 kHz against
    /// a 230 kHz carrier).
    pub fn off_resonant_frequency_hz(&self) -> f64 {
        self.resonant_frequency_hz() - 50e3
    }

    /// The same mix with its elastic modulus scaled by `factor` ∈ (0, 1]
    /// — the progressive-damage hook. Micro-cracking degrades stiffness
    /// long before it shows in compressive strength, which drags both
    /// wave speeds (`E → c_p, c_s`) and the transducer/concrete resonance
    /// ([`ConcreteMix::resonant_frequency_hz`] tracks `E_c`) — exactly
    /// the signature a lifetime campaign watches for. Density and mix
    /// masses are unchanged (cracking does not remove mass). Multiplying
    /// by literal `1.0` is a bitwise no-op, so a pristine mix keeps its
    /// exact wave speeds and carrier.
    #[must_use]
    pub fn with_stiffness_factor(&self, factor: f64) -> EcoResult<ConcreteMix> {
        if !(factor > 0.0 && factor <= 1.0) {
            return Err(EcoError::OutOfRange {
                what: "stiffness factor",
                value: factor,
                min: 0.0,
                max: 1.0,
            });
        }
        Ok(ConcreteMix {
            ec_gpa: self.ec_gpa * factor,
            ..*self
        })
    }

    /// Relative transmission-amplitude scale of this concrete vs NC.
    ///
    /// §5.3: "high density (i.e., high compressive strength) results in a
    /// high impedance, thereby benefiting the propagation of elastic
    /// waves" — UHPC/UHPFRC peak responses are far greater than NC's.
    pub fn strength_gain(&self) -> f64 {
        let nc = ConcreteGrade::Nc.mix();
        (self.fco_mpa / nc.fco_mpa).sqrt() * (1.0 + 1e-4 * self.steel_fiber_kg_m3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn densities_are_in_the_ordinary_concrete_band() {
        // §4.1: ordinary concrete densities run 1840–2360 kg/m³ (UHPFRC's
        // steel fibers push it a bit above).
        assert!((2250.0..2360.0).contains(&ConcreteGrade::Nc.mix().density_kg_m3()));
        assert!((2300.0..2400.0).contains(&ConcreteGrade::Uhpc.mix().density_kg_m3()));
        assert!((2700.0..2800.0).contains(&ConcreteGrade::Uhpfrc.mix().density_kg_m3()));
    }

    #[test]
    fn nc_wave_speeds_match_paper_ballpark() {
        // §3.2 quotes C_con ≈ 3700 m/s for the P-wave.
        let m = ConcreteGrade::Nc.material();
        assert!((3300.0..3900.0).contains(&m.cp_m_s), "cp = {}", m.cp_m_s);
        assert!((1900.0..2400.0).contains(&m.cs_m_s), "cs = {}", m.cs_m_s);
    }

    #[test]
    fn uhpc_is_faster_than_nc() {
        let nc = ConcreteGrade::Nc.material();
        let uhpc = ConcreteGrade::Uhpc.material();
        assert!(uhpc.cp_m_s > nc.cp_m_s);
    }

    #[test]
    fn attenuation_ordering_nc_worst() {
        let a_nc = ConcreteGrade::Nc.mix().attenuation().alpha_np_m(230e3);
        let a_uhpc = ConcreteGrade::Uhpc.mix().attenuation().alpha_np_m(230e3);
        let a_uhpfrc = ConcreteGrade::Uhpfrc.mix().attenuation().alpha_np_m(230e3);
        assert!(a_nc > 2.0 * a_uhpc, "NC {a_nc} vs UHPC {a_uhpc}");
        assert!(a_uhpc < 2.0 && a_uhpfrc < 2.0);
    }

    #[test]
    fn resonant_band_is_200_to_250_khz_for_all_grades() {
        for g in ConcreteGrade::ALL {
            let f = g.mix().resonant_frequency_hz();
            assert!((200e3..250e3).contains(&f), "{g}: {f}");
            let off = g.mix().off_resonant_frequency_hz();
            assert!(off < f && off > 150e3);
        }
    }

    #[test]
    fn stiffness_factor_degrades_speeds_and_resonance() {
        let nc = ConcreteGrade::Nc.mix();
        let cracked = nc.with_stiffness_factor(0.8).unwrap();
        assert!((cracked.ec_gpa - 0.8 * nc.ec_gpa).abs() < 1e-12);
        assert_eq!(cracked.density_kg_m3(), nc.density_kg_m3());
        assert!(cracked.material().cp_m_s < nc.material().cp_m_s);
        assert!(cracked.material().cs_m_s < nc.material().cs_m_s);
        assert!(cracked.resonant_frequency_hz() < nc.resonant_frequency_hz());
        // Unity factor is a bitwise no-op (golden invariance).
        let same = nc.with_stiffness_factor(1.0).unwrap();
        assert_eq!(same.ec_gpa.to_bits(), nc.ec_gpa.to_bits());
        // Out-of-range factors (and NaN) are rejected.
        for bad in [0.0, -0.3, 1.5, f64::NAN] {
            assert!(nc.with_stiffness_factor(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn strength_gain_ordering() {
        let g_nc = ConcreteGrade::Nc.mix().strength_gain();
        let g_uhpc = ConcreteGrade::Uhpc.mix().strength_gain();
        let g_uhpfrc = ConcreteGrade::Uhpfrc.mix().strength_gain();
        assert!((g_nc - 1.0).abs() < 1e-12);
        assert!(g_uhpc > 1.7, "UHPC gain {g_uhpc}");
        assert!(g_uhpfrc > g_uhpc, "fibers add gain");
    }

    #[test]
    fn table1_strength_values() {
        assert_eq!(ConcreteGrade::Nc.mix().fco_mpa, 54.1);
        assert_eq!(ConcreteGrade::Uhpc.mix().fco_mpa, 195.3);
        assert_eq!(ConcreteGrade::Uhpfrc.mix().fco_mpa, 215.0);
        // §1/abstract: UHPFRC compressive strength "up to 215 MPa".
        assert!(ConcreteGrade::Uhpfrc.mix().fco_mpa >= 215.0);
    }

    #[test]
    fn grades_display_names() {
        assert_eq!(ConcreteGrade::Nc.to_string(), "NC");
        assert_eq!(ConcreteGrade::Uhpfrc.to_string(), "UHPFRC");
    }
}

//! Concrete frequency response (Fig 5).
//!
//! The paper sweeps a 100 V sinusoid from 20 kHz to 400 kHz through four
//! blocks (NC-7cm, NC-15cm, UHPC-15cm, UHPFRC-15cm) and measures the RX
//! PZT amplitude. Two findings: (1) every concrete resonates between
//! 200–250 kHz, beyond which propagation attenuates rapidly; (2) the
//! UHPC/UHPFRC peaks are far greater than NC's.
//!
//! We model the measured chain as
//! `A(f) = V_tx · k · G_strength · |H_pzt(f)|² · e^{−α(f)·d}`,
//! where `|H_pzt|²` is the TX/RX transducer-pair resonance (two identical
//! second-order resonators) and `α(f)` the grade's scattering/absorption
//! power law. The calibration constant `k` is fixed once so the NC-15cm
//! peak lands near the figure's ≈1.4 V.

use crate::materials::ConcreteMix;

/// A test block: a concrete mix at a given propagation thickness.
#[derive(Debug, Clone, Copy)]
pub struct Block {
    /// The concrete grade/mix.
    pub mix: ConcreteMix,
    /// Propagation path length through the block (m).
    pub thickness_m: f64,
}

/// RX amplitude calibration constant (mV of RX amplitude per TX volt at
/// the resonance peak of an unattenuated path). Fixed so NC-15cm peaks
/// near 1.4 V at 100 V drive, as in Fig 5(b).
const K_MV_PER_V: f64 = 38.0;

/// Quality factor of each PZT (TX and RX are identical 230 kHz discs).
const PZT_Q: f64 = 4.0;

impl Block {
    /// Creates a block. Panics on non-positive thickness.
    pub fn new(mix: ConcreteMix, thickness_m: f64) -> Self {
        assert!(thickness_m > 0.0, "block thickness must be positive");
        Block { mix, thickness_m }
    }

    /// Transducer-pair magnitude response at `f_hz` (unitless, ≤ 1,
    /// peaking at the grade's resonant frequency).
    pub fn transducer_pair_response(&self, f_hz: f64) -> f64 {
        let fr = self.mix.resonant_frequency_hz();
        let r = f_hz / fr;
        // Second-order band-pass magnitude for one transducer…
        let single = (r / PZT_Q) / (((1.0 - r * r).powi(2) + (r / PZT_Q).powi(2)).sqrt());
        // …squared for the TX/RX pair.
        single * single
    }

    /// RX amplitude (mV) for a `v_tx` volt sinusoid at `f_hz` — the
    /// quantity Fig 5(b) plots.
    pub fn rx_amplitude_mv(&self, f_hz: f64, v_tx: f64) -> f64 {
        assert!(f_hz > 0.0 && v_tx >= 0.0, "invalid stimulus");
        let atten = self
            .mix
            .attenuation()
            .amplitude_factor(f_hz, self.thickness_m);
        v_tx * K_MV_PER_V * self.mix.strength_gain() * self.transducer_pair_response(f_hz) * atten
    }

    /// Sweeps the frequency response like the paper's experiment:
    /// `f_start..=f_stop` inclusive in `step` increments at `v_tx` volts.
    /// Returns `(frequencies_hz, amplitudes_mv)`.
    pub fn sweep(
        &self,
        f_start_hz: f64,
        f_stop_hz: f64,
        step_hz: f64,
        v_tx: f64,
    ) -> (Vec<f64>, Vec<f64>) {
        assert!(
            f_start_hz > 0.0 && f_stop_hz > f_start_hz && step_hz > 0.0,
            "invalid sweep"
        );
        let mut freqs = Vec::new();
        let mut amps = Vec::new();
        let mut f = f_start_hz;
        while f <= f_stop_hz + 1e-6 {
            freqs.push(f);
            amps.push(self.rx_amplitude_mv(f, v_tx));
            f += step_hz;
        }
        (freqs, amps)
    }

    /// Frequency (Hz) of the peak response, located by sweeping at 1 kHz
    /// resolution over the paper's 20–400 kHz measurement span.
    pub fn peak_frequency_hz(&self) -> f64 {
        let (freqs, amps) = self.sweep(20e3, 400e3, 1e3, 1.0);
        let mut best = 0usize;
        for (i, &a) in amps.iter().enumerate() {
            if a > amps[best] {
                best = i;
            }
        }
        freqs[best]
    }

    /// Response ratio between the carrier (resonant) and the FSK
    /// off-resonant frequency — the suppression the anti-ring-effect trick
    /// relies on (§3.3 / Fig 20).
    pub fn fsk_suppression_ratio(&self) -> f64 {
        let on = self.rx_amplitude_mv(self.mix.resonant_frequency_hz(), 1.0);
        let off = self.rx_amplitude_mv(self.mix.off_resonant_frequency_hz(), 1.0);
        on / off
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materials::ConcreteGrade;

    fn paper_blocks() -> [Block; 4] {
        [
            Block::new(ConcreteGrade::Nc.mix(), 0.07),
            Block::new(ConcreteGrade::Nc.mix(), 0.15),
            Block::new(ConcreteGrade::Uhpc.mix(), 0.15),
            Block::new(ConcreteGrade::Uhpfrc.mix(), 0.15),
        ]
    }

    #[test]
    fn peaks_fall_in_the_carrier_band() {
        // Fig 5(b) finding 1: resonance between 200 and 250 kHz for all.
        for b in paper_blocks() {
            let f = b.peak_frequency_hz();
            assert!(
                (200e3..=250e3).contains(&f),
                "{}-{}cm peak at {f}",
                b.mix.name,
                b.thickness_m * 100.0
            );
        }
    }

    #[test]
    fn uhpc_family_peaks_far_above_nc() {
        // Fig 5(b) finding 2.
        let [_, nc15, uhpc, uhpfrc] = paper_blocks();
        let a_nc = nc15.rx_amplitude_mv(nc15.peak_frequency_hz(), 100.0);
        let a_uhpc = uhpc.rx_amplitude_mv(uhpc.peak_frequency_hz(), 100.0);
        let a_uhpfrc = uhpfrc.rx_amplitude_mv(uhpfrc.peak_frequency_hz(), 100.0);
        assert!(a_uhpc > 2.5 * a_nc, "UHPC {a_uhpc} vs NC {a_nc}");
        assert!(a_uhpfrc >= a_uhpc, "UHPFRC {a_uhpfrc} vs UHPC {a_uhpc}");
    }

    #[test]
    fn peak_amplitudes_match_figure_scale() {
        // Fig 5(b) y-axis: NC-15cm ≈ 1–2 V, UHPC/UHPFRC ≈ 5–7 V at 100 V.
        let [nc7, nc15, uhpc, uhpfrc] = paper_blocks();
        let at_peak = |b: &Block| b.rx_amplitude_mv(b.peak_frequency_hz(), 100.0);
        assert!(
            (800.0..2500.0).contains(&at_peak(&nc15)),
            "NC-15: {}",
            at_peak(&nc15)
        );
        assert!(at_peak(&nc7) > at_peak(&nc15), "thinner NC responds more");
        assert!(
            (4000.0..7500.0).contains(&at_peak(&uhpc)),
            "UHPC: {}",
            at_peak(&uhpc)
        );
        assert!(
            (4000.0..7500.0).contains(&at_peak(&uhpfrc)),
            "UHPFRC: {}",
            at_peak(&uhpfrc)
        );
    }

    #[test]
    fn response_attenuates_rapidly_beyond_250_khz() {
        let b = Block::new(ConcreteGrade::Nc.mix(), 0.15);
        let peak = b.rx_amplitude_mv(b.peak_frequency_hz(), 100.0);
        let high = b.rx_amplitude_mv(380e3, 100.0);
        assert!(high < 0.35 * peak, "380 kHz response {high} vs peak {peak}");
    }

    #[test]
    fn sweep_covers_requested_grid() {
        let b = Block::new(ConcreteGrade::Nc.mix(), 0.15);
        let (freqs, amps) = b.sweep(20e3, 400e3, 10e3, 100.0);
        assert_eq!(freqs.len(), 39);
        assert_eq!(amps.len(), 39);
        assert!((freqs[0] - 20e3).abs() < 1.0 && (freqs[38] - 400e3).abs() < 1.0);
    }

    #[test]
    fn fsk_suppression_supports_3_to_5x_snr_gain() {
        // Fig 20: FSK beats OOK by 3–5×; the concrete must suppress the
        // off-resonant tone by at least that much in amplitude.
        for b in paper_blocks() {
            let r = b.fsk_suppression_ratio();
            assert!(r > 2.5, "{}: suppression {r}", b.mix.name);
        }
    }

    #[test]
    fn amplitude_scales_linearly_with_drive() {
        let b = Block::new(ConcreteGrade::Uhpc.mix(), 0.15);
        let a100 = b.rx_amplitude_mv(230e3, 100.0);
        let a50 = b.rx_amplitude_mv(230e3, 50.0);
        assert!((a100 / a50 - 2.0).abs() < 1e-9);
    }
}

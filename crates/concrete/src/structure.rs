//! The evaluated concrete structures (§5.1, Fig 11).
//!
//! Four structures host the range/uplink experiments:
//!
//! - **S1** — a 150 × 50 × 15 cm slab;
//! - **S2** — a 250 cm bearing column, 70 cm diameter;
//! - **S3** — a 2000 × 2000 × 20 cm common wall;
//! - **S4** — a 2000 × 2000 × 50 cm protective wall.
//!
//! Fig 12's finding (2): narrow structures act as waveguides — boundary
//! reflections confine the energy so it spreads cylindrically (∝1/√r)
//! instead of spherically (∝1/r), which is why the 20 cm wall S3
//! outranges both the 50 cm wall S4 and the 70 cm column S2.

use crate::materials::{ConcreteGrade, ConcreteMix};
use elastic::attenuation::Spreading;

/// Geometry of a concrete member.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Geometry {
    /// A rectangular slab/wall: length × height × thickness (m). Waves
    /// travel along the length.
    Slab {
        /// Extent along the propagation direction (m).
        length_m: f64,
        /// Height (m).
        height_m: f64,
        /// Thickness — the waveguide-confining dimension (m).
        thickness_m: f64,
    },
    /// A cylindrical column: height × diameter (m). Waves travel along
    /// the height.
    Column {
        /// Extent along the propagation direction (m).
        height_m: f64,
        /// Diameter (m).
        diameter_m: f64,
    },
}

impl Geometry {
    /// The maximum distance a node can be from the reader along the
    /// propagation direction.
    pub fn max_path_m(&self) -> f64 {
        match *self {
            Geometry::Slab { length_m, .. } => length_m,
            Geometry::Column { height_m, .. } => height_m,
        }
    }

    /// The smallest transverse dimension — what decides waveguide
    /// confinement.
    pub fn confining_dimension_m(&self) -> f64 {
        match *self {
            Geometry::Slab { thickness_m, .. } => thickness_m,
            Geometry::Column { diameter_m, .. } => diameter_m,
        }
    }
}

/// A concrete structure: geometry plus material.
#[derive(Debug, Clone, Copy)]
pub struct Structure {
    /// Display name ("S1".."S4" for the paper's set).
    pub name: &'static str,
    /// Member geometry.
    pub geometry: Geometry,
    /// Concrete mix the member is cast from.
    pub mix: ConcreteMix,
}

/// Transverse dimension (m) below which boundary reflections confine the
/// wavefield into an effectively 2-D guide at the 230 kHz carrier.
/// The S-wavelength in concrete is ~1 cm; confinement needs the wall to
/// hold many overlapping reflections within a symbol, which empirically
/// (Fig 12) holds for the 15–20 cm members but no longer for 50–70 cm.
pub const WAVEGUIDE_THRESHOLD_M: f64 = 0.35;

impl Structure {
    /// S1: the 150 × 50 × 15 cm slab, normal concrete.
    pub fn s1_slab() -> Self {
        Structure {
            name: "S1",
            geometry: Geometry::Slab {
                length_m: 1.5,
                height_m: 0.5,
                thickness_m: 0.15,
            },
            mix: ConcreteGrade::Nc.mix(),
        }
    }

    /// S2: the 250 cm bearing column, 70 cm diameter, normal concrete.
    pub fn s2_column() -> Self {
        Structure {
            name: "S2",
            geometry: Geometry::Column {
                height_m: 2.5,
                diameter_m: 0.7,
            },
            mix: ConcreteGrade::Nc.mix(),
        }
    }

    /// S3: the 2000 × 2000 × 20 cm common wall, normal concrete.
    pub fn s3_common_wall() -> Self {
        Structure {
            name: "S3",
            geometry: Geometry::Slab {
                length_m: 20.0,
                height_m: 20.0,
                thickness_m: 0.20,
            },
            mix: ConcreteGrade::Nc.mix(),
        }
    }

    /// S4: the 2000 × 2000 × 50 cm protective wall, normal concrete.
    pub fn s4_protective_wall() -> Self {
        Structure {
            name: "S4",
            geometry: Geometry::Slab {
                length_m: 20.0,
                height_m: 20.0,
                thickness_m: 0.50,
            },
            mix: ConcreteGrade::Nc.mix(),
        }
    }

    /// The paper's four structures in order.
    pub fn paper_set() -> [Structure; 4] {
        [
            Structure::s1_slab(),
            Structure::s2_column(),
            Structure::s3_common_wall(),
            Structure::s4_protective_wall(),
        ]
    }

    /// Geometric spreading regime for waves travelling along this member.
    pub fn spreading(&self) -> Spreading {
        if self.geometry.confining_dimension_m() <= WAVEGUIDE_THRESHOLD_M {
            Spreading::Cylindrical
        } else {
            Spreading::Spherical
        }
    }

    /// Waveguide quality in (0, 1]: how strongly boundary reflections
    /// reinforce the guided field. Thinner members reflect more often per
    /// metre, concentrating energy (Fig 12 finding 2). Normalized so a
    /// 15 cm member scores 1.
    pub fn waveguide_quality(&self) -> f64 {
        (0.15 / self.geometry.confining_dimension_m()).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions() {
        let [s1, s2, s3, s4] = Structure::paper_set();
        assert_eq!(s1.geometry.max_path_m(), 1.5);
        assert_eq!(s2.geometry.max_path_m(), 2.5);
        assert_eq!(s3.geometry.max_path_m(), 20.0);
        assert_eq!(s4.geometry.confining_dimension_m(), 0.50);
        assert_eq!(s2.geometry.confining_dimension_m(), 0.7);
    }

    #[test]
    fn narrow_members_are_waveguides() {
        assert_eq!(Structure::s1_slab().spreading(), Spreading::Cylindrical);
        assert_eq!(
            Structure::s3_common_wall().spreading(),
            Spreading::Cylindrical
        );
        assert_eq!(Structure::s2_column().spreading(), Spreading::Spherical);
        assert_eq!(
            Structure::s4_protective_wall().spreading(),
            Spreading::Spherical
        );
    }

    #[test]
    fn waveguide_quality_ordering_matches_fig12() {
        // S1 (15 cm) ≈ S3 (20 cm) > S4 (50 cm) > S2 (70 cm).
        let [s1, s2, s3, s4] = Structure::paper_set();
        assert!(s1.waveguide_quality() >= s3.waveguide_quality());
        assert!(s3.waveguide_quality() > s4.waveguide_quality());
        assert!(s4.waveguide_quality() > s2.waveguide_quality());
    }

    #[test]
    fn quality_is_capped_at_one() {
        let thin = Structure {
            name: "thin",
            geometry: Geometry::Slab {
                length_m: 1.0,
                height_m: 1.0,
                thickness_m: 0.05,
            },
            mix: ConcreteGrade::Nc.mix(),
        };
        assert_eq!(thin.waveguide_quality(), 1.0);
    }
}

//! # ecocapsule
//!
//! A full-system reproduction of *Empowering Smart Buildings with
//! Self-Sensing Concrete for Structural Health Monitoring* (SIGCOMM'22):
//! battery-free piezoelectric backscatter nodes ("EcoCapsules") mixed
//! into concrete, charged and read through elastic waves.
//!
//! This facade crate re-exports every layer and adds end-to-end
//! [`scenario`] builders:
//!
//! ```
//! use ecocapsule::scenario::{SelfSensingWall, SurveyOptions};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! // A 20 cm NC wall with three capsules at 0.5/1.0/1.5 m from the reader.
//! let mut wall = SelfSensingWall::common_wall(&[0.5, 1.0, 1.5]);
//! let report = SurveyOptions::new()
//!     .tx_voltage(200.0)
//!     .run(&mut wall, &mut rng)
//!     .expect("valid survey");
//! assert_eq!(report.powered_ids.len(), 3);
//! ```
//!
//! Layer map (bottom-up): [`dsp`] → [`elastic`] → [`concrete`], [`phy`]
//! → [`channel`], [`node`], [`protocol`] → [`reader`], [`baselines`] →
//! [`shm`] → here. The side-car [`exec`] crate supplies the deterministic
//! worker pool that [`scenario::SurveyOptions::pool`] and the bench
//! sweep grids fan out on, and the zero-dependency [`obs`] crate
//! supplies the event-stream observability layer every survey can
//! record into ([`scenario::SurveyOptions::recorder`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use baselines;
pub use channel;
pub use concrete;
pub use dsp;
pub use elastic;
pub use exec;
pub use faults;
pub use node;
pub use obs;
pub use phy;
pub use protocol;
pub use reader;
pub use shm;

// The shared workspace error type. It is defined in `dsp` (the root of
// the crate graph, so every layer can return it) and re-exported here
// as the canonical public name.
pub use dsp::{EcoError, EcoResult};

pub mod scenario;

/// Convenience re-exports of the types most applications touch.
pub mod prelude {
    pub use crate::scenario::{
        CapsuleOutcome, MonitoringCampaign, SelfSensingWall, SurveyOptions, SurveyReport,
        WallCondition,
    };
    pub use channel::linkbudget::LinkBudget;
    pub use concrete::{ConcreteGrade, Structure};
    pub use dsp::batch::Engine;
    pub use exec::Pool;
    pub use faults::{FaultIntensity, FaultPlan, Timeline};
    pub use node::capsule::{EcoCapsule, Environment};
    pub use obs::{Event, ExportRecorder, MemoryRecorder, NullRecorder, Recorder, SlotClock};
    pub use protocol::frame::SensorKind;
    pub use reader::app::ReaderSession;
    pub use reader::robust::{RetryPolicy, RobustConfig};
    pub use shm::footbridge::Footbridge;
    pub use shm::health::{HealthLevel, Region};
    pub use shm::pilot::{Channel, PilotStudy};
}

//! End-to-end scenarios: the "operator walks up to a wall" workflows
//! that tie every layer together.

use channel::linkbudget::LinkBudget;
use concrete::structure::Structure;
use concrete::ConcreteGrade;
use dsp::EcoResult;
use exec::Pool;
use faults::{FaultPlan, Timeline};
use node::capsule::{EcoCapsule, Environment};
use node::harvester::MIN_ACTIVATION_V;
use protocol::frame::SensorKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reader::app::ReaderSession;
use reader::robust::RetryPolicy;
use reader::rx::{max_throughput_bps, snr_vs_bitrate_db};

/// A wall (or slab/column) with EcoCapsules implanted at known standoffs
/// from the reader's mounting point, plus the reader itself.
#[derive(Debug, Clone)]
pub struct SelfSensingWall {
    /// The host structure.
    pub structure: Structure,
    /// The implanted capsules with their distances (m) from the reader.
    pub capsules: Vec<(f64, EcoCapsule)>,
    /// The attached reader session.
    pub session: ReaderSession,
    /// Ambient/internal conditions at the capsules.
    pub environment: Environment,
}

/// Why a capsule did — or did not — contribute readings to a survey.
/// The degraded variants are *outcomes*, not errors: a survey over a
/// faulted channel completes and reports them instead of failing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapsuleOutcome {
    /// Powered, inventoried, and at least one sensor read decoded.
    Read {
        /// How many sensor readings were delivered.
        readings: usize,
    },
    /// Never cleared the activation threshold — too far for the drive
    /// voltage, or browned out during the charging phase.
    Unpowered,
    /// Powered but never singled out within the inventory round budget
    /// (persistent collisions and/or ACK losses).
    CollisionExhausted,
    /// Inventoried, but every sensor-read transaction failed to decode
    /// within the retry budget.
    DecodeFailed {
        /// Total read attempts spent before giving up.
        attempts: u32,
    },
}

impl CapsuleOutcome {
    /// Stable digest words for this outcome: a tag and a payload.
    fn digest_words(self) -> [u64; 2] {
        match self {
            CapsuleOutcome::Read { readings } => [0, readings as u64],
            CapsuleOutcome::Unpowered => [1, 0],
            CapsuleOutcome::CollisionExhausted => [2, 0],
            CapsuleOutcome::DecodeFailed { attempts } => [3, u64::from(attempts)],
        }
    }
}

/// Outcome of one survey pass (charge → inventory → read).
#[derive(Debug, Clone, Default)]
pub struct SurveyReport {
    /// IDs of the capsules that powered up at the chosen drive voltage.
    pub powered_ids: Vec<u32>,
    /// IDs successfully inventoried over the air.
    pub inventoried_ids: Vec<u32>,
    /// `(id, kind, physical value)` sensor readings collected.
    pub readings: Vec<(u32, SensorKind, f64)>,
    /// Per-capsule outcome, in capsule order — every implanted capsule
    /// appears exactly once.
    pub outcomes: Vec<(u32, CapsuleOutcome)>,
}

impl SurveyReport {
    /// FNV-1a digest over every field, bit-exact on the readings. Two
    /// surveys with the same digest saw the same capsules power up, the
    /// same inventory order, bit-identical sensor values and the same
    /// outcome for every capsule — the witness the fault-matrix bench
    /// and the determinism tests compare across worker counts.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let words = self
            .powered_ids
            .iter()
            .map(|&id| u64::from(id))
            .chain([u64::MAX]) // section separators
            .chain(self.inventoried_ids.iter().map(|&id| u64::from(id)))
            .chain([u64::MAX])
            .chain(self.readings.iter().flat_map(|&(id, kind, value)| {
                [u64::from(id), kind as u64, value.to_bits()]
            }))
            .chain([u64::MAX])
            .chain(self.outcomes.iter().flat_map(|&(id, outcome)| {
                let [tag, payload] = outcome.digest_words();
                [u64::from(id), tag, payload]
            }));
        faults::fnv1a64(words)
    }

    /// The outcome recorded for capsule `id`, if it was surveyed.
    #[must_use]
    pub fn outcome_of(&self, id: u32) -> Option<CapsuleOutcome> {
        self.outcomes
            .iter()
            .find(|(oid, _)| *oid == id)
            .map(|(_, o)| *o)
    }
}

impl SelfSensingWall {
    /// The paper's S3 common wall with capsules at the given standoffs.
    ///
    /// The quickstart flow — predict coverage from the link budget, then
    /// survey (charge → inventory → read each capsule's sensors):
    ///
    /// ```
    /// use ecocapsule::prelude::*;
    /// use rand::rngs::StdRng;
    /// use rand::SeedableRng;
    ///
    /// let mut rng = StdRng::seed_from_u64(42);
    /// let mut wall = SelfSensingWall::common_wall(&[0.5, 1.2, 2.0]);
    ///
    /// // Coverage prediction: 200 V reaches past the farthest capsule.
    /// let lb = wall.link_budget().expect("wall geometry is valid");
    /// let reach_m = lb
    ///     .max_range_m(200.0, 0.5)
    ///     .expect("valid link query")
    ///     .expect("200 V powers something");
    /// assert!(reach_m > 2.0);
    ///
    /// // Survey at 200 V: all three capsules power up and answer.
    /// let report = wall.survey(200.0, &mut rng).expect("valid survey");
    /// assert_eq!(report.powered_ids, vec![1000, 1001, 1002]);
    /// assert!(!report.readings.is_empty());
    /// ```
    pub fn common_wall(distances_m: &[f64]) -> Self {
        SelfSensingWall::new(Structure::s3_common_wall(), distances_m)
    }

    /// Builds a wall with capsules `1000, 1001, …` at the standoffs.
    pub fn new(structure: Structure, distances_m: &[f64]) -> Self {
        let capsules = distances_m
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                assert!(d > 0.0, "capsule distance must be positive");
                (d, EcoCapsule::new(1000 + i as u32))
            })
            .collect();
        let environment = Environment {
            concrete_e_pa: structure.mix.ec_gpa * 1e9,
            ..Environment::default()
        };
        SelfSensingWall {
            structure,
            capsules,
            session: ReaderSession::paper_default(),
            environment,
        }
    }

    /// The wall's charging link budget.
    #[must_use]
    pub fn link_budget(&self) -> EcoResult<LinkBudget> {
        LinkBudget::for_structure(&self.structure)
    }

    /// One full survey at `tx_voltage` volts:
    /// 1. the CBW charges every capsule whose received voltage clears the
    ///    activation threshold (waiting out each cold start),
    /// 2. the powered capsules are inventoried over the waveform-level
    ///    protocol,
    /// 3. each inventoried capsule is asked for temperature, humidity
    ///    and strain.
    ///
    /// Errors when the link-budget query is invalid (negative drive
    /// voltage or a degenerate structure geometry).
    ///
    /// Runs serially; [`SelfSensingWall::survey_with`] accepts an
    /// [`exec::Pool`] and produces *bit-identical* results at any worker
    /// count.
    #[must_use]
    pub fn survey<R: Rng>(&mut self, tx_voltage_v: f64, rng: &mut R) -> EcoResult<SurveyReport> {
        self.survey_with(tx_voltage_v, rng, &Pool::serial())
    }

    /// [`SelfSensingWall::survey`] on an explicit worker pool.
    ///
    /// Determinism: exactly **one** value is drawn from `rng` and every
    /// phase derives its own child generator from it with
    /// [`exec::seed::derive`] — the inventory gets stream 0, capsule `id`
    /// gets stream `1 + id`. Per-capsule sensor reads (phase 3) then
    /// fan out over the pool with results merged in capsule order, so the
    /// report and the post-survey wall state are bit-identical for every
    /// worker count, including [`Pool::serial`].
    ///
    /// Phases 1–2 stay serial by nature: charging is a cheap closed-form
    /// sweep, and inventory arbitrates a *shared* medium (slotted ALOHA
    /// with collisions), which cannot be split across workers without
    /// changing the protocol being simulated.
    #[must_use]
    pub fn survey_with<R: Rng>(
        &mut self,
        tx_voltage_v: f64,
        rng: &mut R,
        pool: &Pool,
    ) -> EcoResult<SurveyReport> {
        let mut report = SurveyReport::default();
        let lb = self.link_budget()?;
        let base_seed: u64 = rng.gen();

        // Phase 1: wireless charging.
        for (d, capsule) in self.capsules.iter_mut() {
            let v_rx = lb.received_voltage(tx_voltage_v, *d)?;
            if v_rx >= MIN_ACTIVATION_V {
                capsule.harvest(v_rx, 1.0); // a second of CBW ≫ any cold start
                if capsule.is_operational() {
                    report.powered_ids.push(capsule.id);
                }
            } else {
                capsule.harvest(v_rx, 1.0); // dies / stays dead
            }
        }

        // Phase 2: inventory (waveform level, serial — shared medium).
        let mut powered: Vec<EcoCapsule> = self
            .capsules
            .iter()
            .filter(|(_, c)| c.is_operational())
            .map(|(_, c)| c.clone())
            .collect();
        let q = (powered.len().max(1) as f64).log2().ceil() as u8 + 1;
        let mut inventory_rng = StdRng::seed_from_u64(exec::seed::derive(base_seed, 0));
        report.inventoried_ids =
            self.session
                .inventory(&mut powered, &self.environment, q, 40, &mut inventory_rng);

        // Phase 3: sensor reads, one task per inventoried capsule. The
        // session is shared read-only; each task owns a clone of its
        // capsule and an RNG derived from the capsule id, so scheduling
        // cannot reorder random draws. A capsule identified in an early
        // inventory round may have been re-arbitrated out of
        // `Acknowledged` by a later round's Query, so each task first
        // re-opens the read session (a no-op — zero RNG draws — when it
        // is still open).
        let session = &self.session;
        let environment = &self.environment;
        let inventoried = &report.inventoried_ids;
        let surveyed: Vec<(EcoCapsule, Vec<(u32, SensorKind, f64)>)> =
            pool.par_map(&powered, |_, capsule| {
                let mut capsule = capsule.clone();
                let mut readings = Vec::new();
                if inventoried.contains(&capsule.id) {
                    let mut read_rng = StdRng::seed_from_u64(exec::seed::derive(
                        base_seed,
                        1 + u64::from(capsule.id),
                    ));
                    session.ensure_session(&mut capsule, environment, 3, &mut read_rng);
                    for kind in [
                        SensorKind::Temperature,
                        SensorKind::Humidity,
                        SensorKind::Strain,
                    ] {
                        if let Ok(Some(value)) =
                            session.read_sensor(&mut capsule, kind, environment, &mut read_rng)
                        {
                            readings.push((capsule.id, kind, value));
                        }
                    }
                }
                (capsule, readings)
            });
        // Merge in capsule order and write back protocol/lifecycle state.
        for (done, readings) in surveyed {
            report.readings.extend(readings);
            if let Some((_, c)) = self.capsules.iter_mut().find(|(_, c)| c.id == done.id) {
                *c = done;
            }
        }
        self.classify_outcomes(&mut report, 3);
        Ok(report)
    }

    /// Fills `report.outcomes` from the phase results, one entry per
    /// implanted capsule in capsule order. `attempts_per_failed_read` is
    /// what a fully-failed read spent (3 kinds × the per-command budget).
    fn classify_outcomes(&self, report: &mut SurveyReport, attempts_per_failed_read: u32) {
        report.outcomes = self
            .capsules
            .iter()
            .map(|(_, c)| {
                let id = c.id;
                let outcome = if !report.powered_ids.contains(&id) {
                    CapsuleOutcome::Unpowered
                } else if !report.inventoried_ids.contains(&id) {
                    CapsuleOutcome::CollisionExhausted
                } else {
                    let readings = report
                        .readings
                        .iter()
                        .filter(|(rid, _, _)| *rid == id)
                        .count();
                    if readings > 0 {
                        CapsuleOutcome::Read { readings }
                    } else {
                        CapsuleOutcome::DecodeFailed {
                            attempts: attempts_per_failed_read,
                        }
                    }
                };
                (id, outcome)
            })
            .collect();
    }

    /// [`SelfSensingWall::survey_with`] on a channel under a
    /// [`FaultPlan`]: every phase consumes slots of the plan's timeline
    /// and runs under whatever perturbation each slot carries, and
    /// must-answer transactions retry per `policy`.
    ///
    /// Phase structure (see DESIGN.md §4 for the slot accounting):
    /// 1. **Charging** — one slot per capsule, in capsule order. A
    ///    brownout slot starves the capsule during its charge window
    ///    (`harvest_under`), which — unlike a transaction-time brownout —
    ///    is unrecoverable this survey: the capsule reports
    ///    [`CapsuleOutcome::Unpowered`].
    /// 2. **Inventory** — the fault-aware robust driver
    ///    ([`reader::robust`]) with retried ACKs and loss-burst Q
    ///    re-arbitration, consuming the timeline serially (shared
    ///    medium).
    /// 3. **Reads** — fan out per capsule over `pool`. Each task first
    ///    re-opens its capsule's read session if a later inventory round
    ///    displaced it from `Acknowledged`
    ///    ([`ReaderSession::ensure_session_with_retry`]), then issues
    ///    three retried reads. Each capsule gets a *disjoint,
    ///    precomputed* timeline slice sized to the worst-case slot spend
    ///    of the re-acquisition plus the reads, so worker scheduling cannot
    ///    change which perturbations any capsule sees: the report digest
    ///    is bit-identical for every worker count.
    ///
    /// Determinism mirrors `survey_with`: one value drawn from `rng`,
    /// child streams derived per phase/capsule.
    #[must_use]
    pub fn survey_under<R: Rng>(
        &mut self,
        tx_voltage_v: f64,
        plan: &FaultPlan,
        policy: &RetryPolicy,
        rng: &mut R,
        pool: &Pool,
    ) -> EcoResult<SurveyReport> {
        let mut report = SurveyReport::default();
        let lb = self.link_budget()?;
        let base_seed: u64 = rng.gen();
        let mut timeline = Timeline::new(plan);

        // Phase 1: wireless charging, one slot per capsule.
        for (d, capsule) in self.capsules.iter_mut() {
            let p = timeline.advance();
            let v_rx = lb.received_voltage(tx_voltage_v, *d)?;
            capsule.harvest_under(v_rx, 1.0, &p);
            if capsule.is_operational() {
                report.powered_ids.push(capsule.id);
            }
        }

        // Phase 2: fault-aware inventory (serial — shared medium).
        let mut powered: Vec<EcoCapsule> = self
            .capsules
            .iter()
            .filter(|(_, c)| c.is_operational())
            .map(|(_, c)| c.clone())
            .collect();
        let q = (powered.len().max(1) as f64).log2().ceil() as u8 + 1;
        let mut inventory_rng = StdRng::seed_from_u64(exec::seed::derive(base_seed, 0));
        report.inventoried_ids = self
            .session
            .inventory_robust(
                &mut powered,
                &self.environment,
                q,
                0.3,
                40,
                policy,
                &mut timeline,
                &mut inventory_rng,
            )
            .found;

        // Phase 3: retried sensor reads on disjoint timeline slices.
        // Each slice covers one session re-acquisition (≤ 2 slots per
        // attempt — see `ensure_session_with_retry`) plus three retried
        // reads, each with its cumulative backoff.
        let budget = policy.max_attempts.max(1);
        let worst_case_backoff: u64 = (1..budget).map(|a| policy.backoff_slots(a)).sum();
        let slots_per_capsule = (2 * u64::from(budget) + worst_case_backoff)
            + 3 * (u64::from(budget) + worst_case_backoff);
        let read_base_slot = timeline.slot();
        let session = &self.session;
        let environment = &self.environment;
        let inventoried = &report.inventoried_ids;
        let surveyed: Vec<(EcoCapsule, Vec<(u32, SensorKind, f64)>, u32)> =
            pool.par_map(&powered, |task, capsule| {
                let mut capsule = capsule.clone();
                let mut readings = Vec::new();
                let mut attempts = 0u32;
                if inventoried.contains(&capsule.id) {
                    let mut read_rng = StdRng::seed_from_u64(exec::seed::derive(
                        base_seed,
                        1 + u64::from(capsule.id),
                    ));
                    let mut slice = Timeline::starting_at(
                        plan,
                        read_base_slot + task as u64 * slots_per_capsule,
                    );
                    attempts += session.ensure_session_with_retry(
                        &mut capsule,
                        environment,
                        policy,
                        &mut slice,
                        &mut read_rng,
                    );
                    for kind in [
                        SensorKind::Temperature,
                        SensorKind::Humidity,
                        SensorKind::Strain,
                    ] {
                        let (value, spent) = session.read_sensor_with_retry(
                            &mut capsule,
                            kind,
                            environment,
                            policy,
                            &mut slice,
                            &mut read_rng,
                        );
                        attempts += spent;
                        if let Some(value) = value {
                            readings.push((capsule.id, kind, value));
                        }
                    }
                }
                (capsule, readings, attempts)
            });
        let mut attempts_by_id: Vec<(u32, u32)> = Vec::new();
        for (done, readings, attempts) in surveyed {
            report.readings.extend(readings);
            attempts_by_id.push((done.id, attempts));
            if let Some((_, c)) = self.capsules.iter_mut().find(|(_, c)| c.id == done.id) {
                *c = done;
            }
        }

        self.classify_outcomes(&mut report, 3 * budget);
        // Replace the uniform failed-read attempt estimate with what each
        // capsule actually spent.
        for (id, outcome) in report.outcomes.iter_mut() {
            if let CapsuleOutcome::DecodeFailed { attempts } = outcome {
                if let Some((_, spent)) = attempts_by_id.iter().find(|(aid, _)| aid == id) {
                    *attempts = *spent;
                }
            }
        }
        Ok(report)
    }
}

/// A long-horizon monitoring campaign over a wall: periodic surveys
/// accumulate per-capsule histories that the damage analyses and the
/// report generator consume — the full EcoCapsule value chain of §6.
#[derive(Debug, Clone, Default)]
pub struct MonitoringCampaign {
    /// Per-capsule `(time_s, strain)` histories.
    pub strain: std::collections::BTreeMap<u32, Vec<(f64, f64)>>,
    /// Per-capsule `(time_s, humidity %)` histories.
    pub humidity: std::collections::BTreeMap<u32, Vec<(f64, f64)>>,
}

impl MonitoringCampaign {
    /// Starts an empty campaign.
    pub fn new() -> Self {
        MonitoringCampaign::default()
    }

    /// Runs one survey at time `t_s` and folds the readings into the
    /// histories.
    #[must_use]
    pub fn survey_at<R: Rng>(
        &mut self,
        wall: &mut SelfSensingWall,
        t_s: f64,
        tx_voltage_v: f64,
        rng: &mut R,
    ) -> EcoResult<SurveyReport> {
        let report = wall.survey(tx_voltage_v, rng)?;
        for (id, kind, value) in &report.readings {
            match kind {
                SensorKind::Strain => {
                    self.strain.entry(*id).or_default().push((t_s, *value));
                }
                SensorKind::Humidity => {
                    self.humidity.entry(*id).or_default().push((t_s, *value));
                }
                _ => {}
            }
        }
        Ok(report)
    }

    /// Composes the health report for one capsule from its histories.
    pub fn report_for(&self, id: u32) -> shm::report::HealthReport {
        let mut report = shm::report::HealthReport::new();
        if let Some(h) = self.strain.get(&id) {
            report = report.with_strain(shm::damage::strain_drift(h, 50.0));
        }
        if let Some(h) = self.humidity.get(&id) {
            if let Some(risk) = shm::damage::corrosion_risk(h) {
                report = report.with_corrosion(risk);
            }
        }
        report
    }
}

/// Fig 17: maximum uplink throughput per concrete grade. The denser
/// UHPC/UHPFRC matrices raise the link SNR (strength gain → more dB at
/// the same drive), buying ~2 kbps over NC.
pub fn throughput_for_grade(grade: ConcreteGrade) -> f64 {
    let gain_db = 20.0 * grade.mix().strength_gain().log10();
    // NC base: 17 dB at 1 kbps, 18 kHz modulation band (see reader::rx).
    max_throughput_for(17.0 + gain_db)
}

fn max_throughput_for(base_db_at_1k: f64) -> f64 {
    max_throughput_bps(base_db_at_1k, 18.0e3, 0.0)
}

/// The Fig 16 triple: EcoCapsule / PAB / U²B SNR at one bitrate.
pub fn fig16_point(bitrate_bps: f64) -> (f64, f64, f64) {
    (
        reader::rx::ecocapsule_snr_vs_bitrate_db(bitrate_bps),
        baselines::pab::pab_snr_vs_bitrate_db(bitrate_bps),
        baselines::u2b::u2b_snr_vs_bitrate_db(bitrate_bps),
    )
}

/// Fig 22: synthesizes the "received and demodulated backscatter
/// signal" waveform — CBW only until `t_start_s`, then the node's
/// impedance switch toggling at `switch_hz` (0.5 ms edges in the paper).
/// Returns `(time_s, envelope_mv)` pairs at the capture rate.
pub fn fig22_waveform(t_start_s: f64, switch_hz: f64, duration_s: f64) -> Vec<(f64, f64)> {
    assert!(
        t_start_s >= 0.0 && switch_hz > 0.0 && duration_s > t_start_s,
        "invalid waveform spec"
    );
    let fs = 1.0e6;
    let carrier = 230e3;
    let n = (duration_s * fs) as usize;
    let mut raw = Vec::with_capacity(n);
    for i in 0..n {
        let t = i as f64 / fs;
        let m = if t < t_start_s {
            0.1
        } else {
            // Square switching between absorptive and reflective.
            let phase = ((t - t_start_s) * switch_hz).fract();
            if phase < 0.5 {
                1.0
            } else {
                0.1
            }
        };
        // Leak 400 mV + backscatter 60 mV, as in the figure's scale.
        raw.push((400.0 + 60.0 * m) * (2.0 * std::f64::consts::PI * carrier * t).sin());
    }
    let env = dsp::envelope::diode_envelope(&raw, 30e-6, fs);
    env.iter()
        .enumerate()
        .step_by(20)
        .map(|(i, &v)| (i as f64 / fs, v))
        .collect()
}

/// `snr_vs_bitrate_db` re-export so scenario callers need one import.
pub use reader::rx::ecocapsule_snr_vs_bitrate_db;

/// Generic curve re-export.
pub fn custom_snr_curve(bitrate_bps: f64, base_db: f64, band_bps: f64) -> f64 {
    snr_vs_bitrate_db(bitrate_bps, base_db, band_bps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn survey_powers_inventories_and_reads() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut wall = SelfSensingWall::common_wall(&[0.5, 1.0]);
        let report = wall.survey(200.0, &mut rng).unwrap();
        assert_eq!(report.powered_ids, vec![1000, 1001]);
        let mut inv = report.inventoried_ids.clone();
        inv.sort_unstable();
        assert_eq!(inv, vec![1000, 1001]);
        // 3 readings per capsule.
        assert_eq!(report.readings.len(), 6);
        let temp = report
            .readings
            .iter()
            .find(|(id, k, _)| *id == 1000 && *k == SensorKind::Temperature)
            .unwrap()
            .2;
        assert!((temp - 25.0).abs() < 0.1, "temperature read {temp}");
    }

    #[test]
    fn survey_is_bit_identical_across_worker_counts() {
        let reference = {
            let mut rng = StdRng::seed_from_u64(77);
            let mut wall = SelfSensingWall::common_wall(&[0.5, 1.0, 1.5]);
            wall.survey_with(200.0, &mut rng, &Pool::serial()).unwrap()
        };
        assert!(
            !reference.readings.is_empty(),
            "reference survey must actually read sensors"
        );
        for workers in [2, 3, exec::Pool::max_parallel().workers()] {
            let mut rng = StdRng::seed_from_u64(77);
            let mut wall = SelfSensingWall::common_wall(&[0.5, 1.0, 1.5]);
            let report = wall
                .survey_with(200.0, &mut rng, &Pool::new(workers))
                .unwrap();
            assert_eq!(report.powered_ids, reference.powered_ids);
            assert_eq!(report.inventoried_ids, reference.inventoried_ids);
            assert_eq!(report.readings.len(), reference.readings.len());
            for ((id_a, kind_a, val_a), (id_b, kind_b, val_b)) in
                report.readings.iter().zip(reference.readings.iter())
            {
                assert_eq!(id_a, id_b, "workers={workers}");
                assert_eq!(kind_a, kind_b, "workers={workers}");
                assert_eq!(
                    val_a.to_bits(),
                    val_b.to_bits(),
                    "readings must be bit-identical (workers={workers})"
                );
            }
        }
    }

    #[test]
    fn survey_and_survey_with_serial_agree() {
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut wall_a = SelfSensingWall::common_wall(&[0.5, 1.0]);
        let plain = wall_a.survey(150.0, &mut rng_a).unwrap();
        let mut rng_b = StdRng::seed_from_u64(5);
        let mut wall_b = SelfSensingWall::common_wall(&[0.5, 1.0]);
        let pooled = wall_b
            .survey_with(150.0, &mut rng_b, &Pool::serial())
            .unwrap();
        assert_eq!(plain.powered_ids, pooled.powered_ids);
        assert_eq!(plain.inventoried_ids, pooled.inventoried_ids);
        assert_eq!(plain.readings.len(), pooled.readings.len());
    }

    #[test]
    fn survey_with_classifies_every_capsule() {
        let mut rng = StdRng::seed_from_u64(1);
        // 0.5 m reads; 4.0 m stays dark at 50 V.
        let mut wall = SelfSensingWall::common_wall(&[0.5, 4.0]);
        let report = wall.survey(50.0, &mut rng).unwrap();
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(
            report.outcome_of(1000),
            Some(CapsuleOutcome::Read { readings: 3 })
        );
        assert_eq!(report.outcome_of(1001), Some(CapsuleOutcome::Unpowered));
    }

    #[test]
    fn survey_under_quiet_plan_matches_plain_survey_outcomes() {
        let mut rng_a = StdRng::seed_from_u64(13);
        let mut wall_a = SelfSensingWall::common_wall(&[0.5, 1.0]);
        let plain = wall_a.survey(200.0, &mut rng_a).unwrap();

        let mut rng_b = StdRng::seed_from_u64(13);
        let mut wall_b = SelfSensingWall::common_wall(&[0.5, 1.0]);
        let quiet = FaultPlan::quiet();
        let faulted = wall_b
            .survey_under(
                200.0,
                &quiet,
                &RetryPolicy::none(),
                &mut rng_b,
                &Pool::serial(),
            )
            .unwrap();
        assert_eq!(faulted.powered_ids, plain.powered_ids);
        assert_eq!(faulted.readings.len(), plain.readings.len());
        assert!(faulted
            .outcomes
            .iter()
            .all(|(_, o)| matches!(o, CapsuleOutcome::Read { .. })));
    }

    #[test]
    fn survey_under_is_bit_identical_across_worker_counts() {
        let plan = FaultPlan::generate(99, &faults::FaultIntensity::moderate(4000));
        let run = |pool: &Pool| {
            let mut rng = StdRng::seed_from_u64(21);
            let mut wall = SelfSensingWall::common_wall(&[0.5, 1.0, 1.5]);
            wall.survey_under(200.0, &plan, &RetryPolicy::paper_default(), &mut rng, pool)
                .unwrap()
                .digest()
        };
        let reference = run(&Pool::serial());
        for workers in [2, exec::Pool::max_parallel().workers()] {
            assert_eq!(run(&Pool::new(workers)), reference, "workers={workers}");
        }
    }

    #[test]
    fn charging_brownout_reports_unpowered() {
        use faults::{FaultKind, FaultWindow};
        // Slot 0 is capsule 1000's charge slot; brown it out.
        let plan = FaultPlan::from_windows(
            0,
            10_000,
            vec![FaultWindow {
                kind: FaultKind::Brownout,
                start_slot: 0,
                len_slots: 1,
                magnitude: 0.0,
            }],
        );
        let mut rng = StdRng::seed_from_u64(4);
        let mut wall = SelfSensingWall::common_wall(&[0.5, 1.0]);
        let report = wall
            .survey_under(
                200.0,
                &plan,
                &RetryPolicy::paper_default(),
                &mut rng,
                &Pool::serial(),
            )
            .unwrap();
        assert_eq!(report.outcome_of(1000), Some(CapsuleOutcome::Unpowered));
        assert_eq!(
            report.outcome_of(1001),
            Some(CapsuleOutcome::Read { readings: 3 }),
            "the fault is a window, not a verdict on the whole wall"
        );
    }

    #[test]
    fn far_capsules_stay_dark_at_low_voltage() {
        let mut rng = StdRng::seed_from_u64(2);
        // 0.5 m powers up at 50 V; 4 m does not (Fig 12: ~1.3 m at 50 V).
        let mut wall = SelfSensingWall::common_wall(&[0.5, 4.0]);
        let report = wall.survey(50.0, &mut rng).unwrap();
        assert_eq!(report.powered_ids, vec![1000]);
        assert_eq!(report.inventoried_ids, vec![1000]);
    }

    #[test]
    fn raising_voltage_extends_coverage() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut wall_lo = SelfSensingWall::common_wall(&[3.0]);
        assert!(wall_lo
            .survey(50.0, &mut rng)
            .unwrap()
            .powered_ids
            .is_empty());
        let mut wall_hi = SelfSensingWall::common_wall(&[3.0]);
        assert_eq!(
            wall_hi.survey(250.0, &mut rng).unwrap().powered_ids,
            vec![1000]
        );
    }

    #[test]
    fn fig17_throughput_ordering() {
        let nc = throughput_for_grade(ConcreteGrade::Nc);
        let uhpc = throughput_for_grade(ConcreteGrade::Uhpc);
        let uhpfrc = throughput_for_grade(ConcreteGrade::Uhpfrc);
        assert!(nc >= 12.5e3, "NC {nc}");
        assert!(uhpc > nc, "UHPC {uhpc} vs NC {nc}");
        assert!(uhpfrc >= uhpc, "UHPFRC {uhpfrc}");
        // "about 2 kbps higher" — allow 1–4 kbps.
        assert!((1e3..4.5e3).contains(&(uhpc - nc)), "gap {}", uhpc - nc);
    }

    #[test]
    fn fig22_waveform_shape() {
        let w = fig22_waveform(4e-3, 1000.0, 10e-3);
        // Before 4 ms: flat CBW envelope; after: two alternating levels.
        let before: Vec<f64> = w
            .iter()
            .filter(|(t, _)| *t > 1e-3 && *t < 3.5e-3)
            .map(|(_, v)| *v)
            .collect();
        let spread_before = before.iter().cloned().fold(f64::MIN, f64::max)
            - before.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread_before < 12.0, "lead should be flat: {spread_before}");
        let after: Vec<f64> = w
            .iter()
            .filter(|(t, _)| *t > 5e-3)
            .map(|(_, v)| *v)
            .collect();
        let hi = after.iter().cloned().fold(f64::MIN, f64::max);
        let lo = after.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            hi - lo > 30.0,
            "switching must modulate the envelope: {hi}-{lo}"
        );
    }

    #[test]
    fn monitoring_campaign_detects_a_developing_leak() {
        use shm::report::Severity;
        let mut rng = StdRng::seed_from_u64(9);
        let mut wall = SelfSensingWall::common_wall(&[0.6]);
        let mut campaign = MonitoringCampaign::new();
        // Monthly surveys over two years; the wall starts leaking at
        // month 8 and the member creeps throughout. (Monthly keeps the
        // waveform-level test fast; the analyses only need the trend.)
        for month in 0..24u32 {
            let t = month as f64 * 30.0 * 86_400.0;
            wall.environment.strain = 120e-6 * t / shm::damage::YEAR_S;
            wall.environment.humidity_percent = if month > 8 { 90.0 } else { 68.0 };
            campaign.survey_at(&mut wall, t, 150.0, &mut rng).unwrap();
        }
        let report = campaign.report_for(1000);
        assert!(
            report.severity() >= Severity::Warning,
            "campaign must flag the wall:\n{}",
            report.render()
        );
        let text = report.render();
        assert!(text.contains("strain drifting"), "{text}");
        assert!(text.contains("corrosion"), "{text}");
    }

    #[test]
    fn fig16_point_matches_component_models() {
        let (eco, pab, u2b) = fig16_point(2e3);
        assert!(eco > pab, "EcoCapsule above PAB at 2 kbps");
        assert!(eco > u2b, "EcoCapsule above U²B at 2 kbps");
    }
}

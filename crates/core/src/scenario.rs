//! End-to-end scenarios: the "operator walks up to a wall" workflows
//! that tie every layer together.

use channel::linkbudget::LinkBudget;
use concrete::structure::Structure;
use concrete::ConcreteGrade;
use dsp::EcoResult;
use exec::Pool;
use node::capsule::{EcoCapsule, Environment};
use node::harvester::MIN_ACTIVATION_V;
use protocol::frame::SensorKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reader::app::ReaderSession;
use reader::rx::{max_throughput_bps, snr_vs_bitrate_db};

/// A wall (or slab/column) with EcoCapsules implanted at known standoffs
/// from the reader's mounting point, plus the reader itself.
#[derive(Debug, Clone)]
pub struct SelfSensingWall {
    /// The host structure.
    pub structure: Structure,
    /// The implanted capsules with their distances (m) from the reader.
    pub capsules: Vec<(f64, EcoCapsule)>,
    /// The attached reader session.
    pub session: ReaderSession,
    /// Ambient/internal conditions at the capsules.
    pub environment: Environment,
}

/// Outcome of one survey pass (charge → inventory → read).
#[derive(Debug, Clone, Default)]
pub struct SurveyReport {
    /// IDs of the capsules that powered up at the chosen drive voltage.
    pub powered_ids: Vec<u32>,
    /// IDs successfully inventoried over the air.
    pub inventoried_ids: Vec<u32>,
    /// `(id, kind, physical value)` sensor readings collected.
    pub readings: Vec<(u32, SensorKind, f64)>,
}

impl SelfSensingWall {
    /// The paper's S3 common wall with capsules at the given standoffs.
    ///
    /// The quickstart flow — predict coverage from the link budget, then
    /// survey (charge → inventory → read each capsule's sensors):
    ///
    /// ```
    /// use ecocapsule::prelude::*;
    /// use rand::rngs::StdRng;
    /// use rand::SeedableRng;
    ///
    /// let mut rng = StdRng::seed_from_u64(42);
    /// let mut wall = SelfSensingWall::common_wall(&[0.5, 1.2, 2.0]);
    ///
    /// // Coverage prediction: 200 V reaches past the farthest capsule.
    /// let lb = wall.link_budget().expect("wall geometry is valid");
    /// let reach_m = lb
    ///     .max_range_m(200.0, 0.5)
    ///     .expect("valid link query")
    ///     .expect("200 V powers something");
    /// assert!(reach_m > 2.0);
    ///
    /// // Survey at 200 V: all three capsules power up and answer.
    /// let report = wall.survey(200.0, &mut rng).expect("valid survey");
    /// assert_eq!(report.powered_ids, vec![1000, 1001, 1002]);
    /// assert!(!report.readings.is_empty());
    /// ```
    pub fn common_wall(distances_m: &[f64]) -> Self {
        SelfSensingWall::new(Structure::s3_common_wall(), distances_m)
    }

    /// Builds a wall with capsules `1000, 1001, …` at the standoffs.
    pub fn new(structure: Structure, distances_m: &[f64]) -> Self {
        let capsules = distances_m
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                assert!(d > 0.0, "capsule distance must be positive");
                (d, EcoCapsule::new(1000 + i as u32))
            })
            .collect();
        let environment = Environment {
            concrete_e_pa: structure.mix.ec_gpa * 1e9,
            ..Environment::default()
        };
        SelfSensingWall {
            structure,
            capsules,
            session: ReaderSession::paper_default(),
            environment,
        }
    }

    /// The wall's charging link budget.
    #[must_use]
    pub fn link_budget(&self) -> EcoResult<LinkBudget> {
        LinkBudget::for_structure(&self.structure)
    }

    /// One full survey at `tx_voltage` volts:
    /// 1. the CBW charges every capsule whose received voltage clears the
    ///    activation threshold (waiting out each cold start),
    /// 2. the powered capsules are inventoried over the waveform-level
    ///    protocol,
    /// 3. each inventoried capsule is asked for temperature, humidity
    ///    and strain.
    ///
    /// Errors when the link-budget query is invalid (negative drive
    /// voltage or a degenerate structure geometry).
    ///
    /// Runs serially; [`SelfSensingWall::survey_with`] accepts an
    /// [`exec::Pool`] and produces *bit-identical* results at any worker
    /// count.
    #[must_use]
    pub fn survey<R: Rng>(&mut self, tx_voltage_v: f64, rng: &mut R) -> EcoResult<SurveyReport> {
        self.survey_with(tx_voltage_v, rng, &Pool::serial())
    }

    /// [`SelfSensingWall::survey`] on an explicit worker pool.
    ///
    /// Determinism: exactly **one** value is drawn from `rng` and every
    /// phase derives its own child generator from it with
    /// [`exec::seed::derive`] — the inventory gets stream 0, capsule `id`
    /// gets stream `1 + id`. Per-capsule sensor reads (phase 3) then
    /// fan out over the pool with results merged in capsule order, so the
    /// report and the post-survey wall state are bit-identical for every
    /// worker count, including [`Pool::serial`].
    ///
    /// Phases 1–2 stay serial by nature: charging is a cheap closed-form
    /// sweep, and inventory arbitrates a *shared* medium (slotted ALOHA
    /// with collisions), which cannot be split across workers without
    /// changing the protocol being simulated.
    #[must_use]
    pub fn survey_with<R: Rng>(
        &mut self,
        tx_voltage_v: f64,
        rng: &mut R,
        pool: &Pool,
    ) -> EcoResult<SurveyReport> {
        let mut report = SurveyReport::default();
        let lb = self.link_budget()?;
        let base_seed: u64 = rng.gen();

        // Phase 1: wireless charging.
        for (d, capsule) in self.capsules.iter_mut() {
            let v_rx = lb.received_voltage(tx_voltage_v, *d)?;
            if v_rx >= MIN_ACTIVATION_V {
                capsule.harvest(v_rx, 1.0); // a second of CBW ≫ any cold start
                if capsule.is_operational() {
                    report.powered_ids.push(capsule.id);
                }
            } else {
                capsule.harvest(v_rx, 1.0); // dies / stays dead
            }
        }

        // Phase 2: inventory (waveform level, serial — shared medium).
        let mut powered: Vec<EcoCapsule> = self
            .capsules
            .iter()
            .filter(|(_, c)| c.is_operational())
            .map(|(_, c)| c.clone())
            .collect();
        let q = (powered.len().max(1) as f64).log2().ceil() as u8 + 1;
        let mut inventory_rng = StdRng::seed_from_u64(exec::seed::derive(base_seed, 0));
        report.inventoried_ids =
            self.session
                .inventory(&mut powered, &self.environment, q, 40, &mut inventory_rng);

        // Phase 3: sensor reads, one task per acknowledged capsule. The
        // session is shared read-only; each task owns a clone of its
        // capsule and an RNG derived from the capsule id, so scheduling
        // cannot reorder random draws.
        let session = &self.session;
        let environment = &self.environment;
        let inventoried = &report.inventoried_ids;
        let surveyed: Vec<(EcoCapsule, Vec<(u32, SensorKind, f64)>)> =
            pool.par_map(&powered, |_, capsule| {
                let mut capsule = capsule.clone();
                let mut readings = Vec::new();
                if inventoried.contains(&capsule.id) {
                    let mut read_rng = StdRng::seed_from_u64(exec::seed::derive(
                        base_seed,
                        1 + u64::from(capsule.id),
                    ));
                    for kind in [
                        SensorKind::Temperature,
                        SensorKind::Humidity,
                        SensorKind::Strain,
                    ] {
                        if let Ok(Some(value)) =
                            session.read_sensor(&mut capsule, kind, environment, &mut read_rng)
                        {
                            readings.push((capsule.id, kind, value));
                        }
                    }
                }
                (capsule, readings)
            });
        // Merge in capsule order and write back protocol/lifecycle state.
        for (done, readings) in surveyed {
            report.readings.extend(readings);
            if let Some((_, c)) = self.capsules.iter_mut().find(|(_, c)| c.id == done.id) {
                *c = done;
            }
        }
        Ok(report)
    }
}

/// A long-horizon monitoring campaign over a wall: periodic surveys
/// accumulate per-capsule histories that the damage analyses and the
/// report generator consume — the full EcoCapsule value chain of §6.
#[derive(Debug, Clone, Default)]
pub struct MonitoringCampaign {
    /// Per-capsule `(time_s, strain)` histories.
    pub strain: std::collections::BTreeMap<u32, Vec<(f64, f64)>>,
    /// Per-capsule `(time_s, humidity %)` histories.
    pub humidity: std::collections::BTreeMap<u32, Vec<(f64, f64)>>,
}

impl MonitoringCampaign {
    /// Starts an empty campaign.
    pub fn new() -> Self {
        MonitoringCampaign::default()
    }

    /// Runs one survey at time `t_s` and folds the readings into the
    /// histories.
    #[must_use]
    pub fn survey_at<R: Rng>(
        &mut self,
        wall: &mut SelfSensingWall,
        t_s: f64,
        tx_voltage_v: f64,
        rng: &mut R,
    ) -> EcoResult<SurveyReport> {
        let report = wall.survey(tx_voltage_v, rng)?;
        for (id, kind, value) in &report.readings {
            match kind {
                SensorKind::Strain => {
                    self.strain.entry(*id).or_default().push((t_s, *value));
                }
                SensorKind::Humidity => {
                    self.humidity.entry(*id).or_default().push((t_s, *value));
                }
                _ => {}
            }
        }
        Ok(report)
    }

    /// Composes the health report for one capsule from its histories.
    pub fn report_for(&self, id: u32) -> shm::report::HealthReport {
        let mut report = shm::report::HealthReport::new();
        if let Some(h) = self.strain.get(&id) {
            report = report.with_strain(shm::damage::strain_drift(h, 50.0));
        }
        if let Some(h) = self.humidity.get(&id) {
            if let Some(risk) = shm::damage::corrosion_risk(h) {
                report = report.with_corrosion(risk);
            }
        }
        report
    }
}

/// Fig 17: maximum uplink throughput per concrete grade. The denser
/// UHPC/UHPFRC matrices raise the link SNR (strength gain → more dB at
/// the same drive), buying ~2 kbps over NC.
pub fn throughput_for_grade(grade: ConcreteGrade) -> f64 {
    let gain_db = 20.0 * grade.mix().strength_gain().log10();
    // NC base: 17 dB at 1 kbps, 18 kHz modulation band (see reader::rx).
    max_throughput_for(17.0 + gain_db)
}

fn max_throughput_for(base_db_at_1k: f64) -> f64 {
    max_throughput_bps(base_db_at_1k, 18.0e3, 0.0)
}

/// The Fig 16 triple: EcoCapsule / PAB / U²B SNR at one bitrate.
pub fn fig16_point(bitrate_bps: f64) -> (f64, f64, f64) {
    (
        reader::rx::ecocapsule_snr_vs_bitrate_db(bitrate_bps),
        baselines::pab::pab_snr_vs_bitrate_db(bitrate_bps),
        baselines::u2b::u2b_snr_vs_bitrate_db(bitrate_bps),
    )
}

/// Fig 22: synthesizes the "received and demodulated backscatter
/// signal" waveform — CBW only until `t_start_s`, then the node's
/// impedance switch toggling at `switch_hz` (0.5 ms edges in the paper).
/// Returns `(time_s, envelope_mv)` pairs at the capture rate.
pub fn fig22_waveform(t_start_s: f64, switch_hz: f64, duration_s: f64) -> Vec<(f64, f64)> {
    assert!(
        t_start_s >= 0.0 && switch_hz > 0.0 && duration_s > t_start_s,
        "invalid waveform spec"
    );
    let fs = 1.0e6;
    let carrier = 230e3;
    let n = (duration_s * fs) as usize;
    let mut raw = Vec::with_capacity(n);
    for i in 0..n {
        let t = i as f64 / fs;
        let m = if t < t_start_s {
            0.1
        } else {
            // Square switching between absorptive and reflective.
            let phase = ((t - t_start_s) * switch_hz).fract();
            if phase < 0.5 {
                1.0
            } else {
                0.1
            }
        };
        // Leak 400 mV + backscatter 60 mV, as in the figure's scale.
        raw.push((400.0 + 60.0 * m) * (2.0 * std::f64::consts::PI * carrier * t).sin());
    }
    let env = dsp::envelope::diode_envelope(&raw, 30e-6, fs);
    env.iter()
        .enumerate()
        .step_by(20)
        .map(|(i, &v)| (i as f64 / fs, v))
        .collect()
}

/// `snr_vs_bitrate_db` re-export so scenario callers need one import.
pub use reader::rx::ecocapsule_snr_vs_bitrate_db;

/// Generic curve re-export.
pub fn custom_snr_curve(bitrate_bps: f64, base_db: f64, band_bps: f64) -> f64 {
    snr_vs_bitrate_db(bitrate_bps, base_db, band_bps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn survey_powers_inventories_and_reads() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut wall = SelfSensingWall::common_wall(&[0.5, 1.0]);
        let report = wall.survey(200.0, &mut rng).unwrap();
        assert_eq!(report.powered_ids, vec![1000, 1001]);
        let mut inv = report.inventoried_ids.clone();
        inv.sort_unstable();
        assert_eq!(inv, vec![1000, 1001]);
        // 3 readings per capsule.
        assert_eq!(report.readings.len(), 6);
        let temp = report
            .readings
            .iter()
            .find(|(id, k, _)| *id == 1000 && *k == SensorKind::Temperature)
            .unwrap()
            .2;
        assert!((temp - 25.0).abs() < 0.1, "temperature read {temp}");
    }

    #[test]
    fn survey_is_bit_identical_across_worker_counts() {
        let reference = {
            let mut rng = StdRng::seed_from_u64(77);
            let mut wall = SelfSensingWall::common_wall(&[0.5, 1.0, 1.5]);
            wall.survey_with(200.0, &mut rng, &Pool::serial()).unwrap()
        };
        assert!(
            !reference.readings.is_empty(),
            "reference survey must actually read sensors"
        );
        for workers in [2, 3, exec::Pool::max_parallel().workers()] {
            let mut rng = StdRng::seed_from_u64(77);
            let mut wall = SelfSensingWall::common_wall(&[0.5, 1.0, 1.5]);
            let report = wall
                .survey_with(200.0, &mut rng, &Pool::new(workers))
                .unwrap();
            assert_eq!(report.powered_ids, reference.powered_ids);
            assert_eq!(report.inventoried_ids, reference.inventoried_ids);
            assert_eq!(report.readings.len(), reference.readings.len());
            for ((id_a, kind_a, val_a), (id_b, kind_b, val_b)) in
                report.readings.iter().zip(reference.readings.iter())
            {
                assert_eq!(id_a, id_b, "workers={workers}");
                assert_eq!(kind_a, kind_b, "workers={workers}");
                assert_eq!(
                    val_a.to_bits(),
                    val_b.to_bits(),
                    "readings must be bit-identical (workers={workers})"
                );
            }
        }
    }

    #[test]
    fn survey_and_survey_with_serial_agree() {
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut wall_a = SelfSensingWall::common_wall(&[0.5, 1.0]);
        let plain = wall_a.survey(150.0, &mut rng_a).unwrap();
        let mut rng_b = StdRng::seed_from_u64(5);
        let mut wall_b = SelfSensingWall::common_wall(&[0.5, 1.0]);
        let pooled = wall_b
            .survey_with(150.0, &mut rng_b, &Pool::serial())
            .unwrap();
        assert_eq!(plain.powered_ids, pooled.powered_ids);
        assert_eq!(plain.inventoried_ids, pooled.inventoried_ids);
        assert_eq!(plain.readings.len(), pooled.readings.len());
    }

    #[test]
    fn far_capsules_stay_dark_at_low_voltage() {
        let mut rng = StdRng::seed_from_u64(2);
        // 0.5 m powers up at 50 V; 4 m does not (Fig 12: ~1.3 m at 50 V).
        let mut wall = SelfSensingWall::common_wall(&[0.5, 4.0]);
        let report = wall.survey(50.0, &mut rng).unwrap();
        assert_eq!(report.powered_ids, vec![1000]);
        assert_eq!(report.inventoried_ids, vec![1000]);
    }

    #[test]
    fn raising_voltage_extends_coverage() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut wall_lo = SelfSensingWall::common_wall(&[3.0]);
        assert!(wall_lo
            .survey(50.0, &mut rng)
            .unwrap()
            .powered_ids
            .is_empty());
        let mut wall_hi = SelfSensingWall::common_wall(&[3.0]);
        assert_eq!(
            wall_hi.survey(250.0, &mut rng).unwrap().powered_ids,
            vec![1000]
        );
    }

    #[test]
    fn fig17_throughput_ordering() {
        let nc = throughput_for_grade(ConcreteGrade::Nc);
        let uhpc = throughput_for_grade(ConcreteGrade::Uhpc);
        let uhpfrc = throughput_for_grade(ConcreteGrade::Uhpfrc);
        assert!(nc >= 12.5e3, "NC {nc}");
        assert!(uhpc > nc, "UHPC {uhpc} vs NC {nc}");
        assert!(uhpfrc >= uhpc, "UHPFRC {uhpfrc}");
        // "about 2 kbps higher" — allow 1–4 kbps.
        assert!((1e3..4.5e3).contains(&(uhpc - nc)), "gap {}", uhpc - nc);
    }

    #[test]
    fn fig22_waveform_shape() {
        let w = fig22_waveform(4e-3, 1000.0, 10e-3);
        // Before 4 ms: flat CBW envelope; after: two alternating levels.
        let before: Vec<f64> = w
            .iter()
            .filter(|(t, _)| *t > 1e-3 && *t < 3.5e-3)
            .map(|(_, v)| *v)
            .collect();
        let spread_before = before.iter().cloned().fold(f64::MIN, f64::max)
            - before.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread_before < 12.0, "lead should be flat: {spread_before}");
        let after: Vec<f64> = w
            .iter()
            .filter(|(t, _)| *t > 5e-3)
            .map(|(_, v)| *v)
            .collect();
        let hi = after.iter().cloned().fold(f64::MIN, f64::max);
        let lo = after.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            hi - lo > 30.0,
            "switching must modulate the envelope: {hi}-{lo}"
        );
    }

    #[test]
    fn monitoring_campaign_detects_a_developing_leak() {
        use shm::report::Severity;
        let mut rng = StdRng::seed_from_u64(9);
        let mut wall = SelfSensingWall::common_wall(&[0.6]);
        let mut campaign = MonitoringCampaign::new();
        // Monthly surveys over two years; the wall starts leaking at
        // month 8 and the member creeps throughout. (Monthly keeps the
        // waveform-level test fast; the analyses only need the trend.)
        for month in 0..24u32 {
            let t = month as f64 * 30.0 * 86_400.0;
            wall.environment.strain = 120e-6 * t / shm::damage::YEAR_S;
            wall.environment.humidity_percent = if month > 8 { 90.0 } else { 68.0 };
            campaign.survey_at(&mut wall, t, 150.0, &mut rng).unwrap();
        }
        let report = campaign.report_for(1000);
        assert!(
            report.severity() >= Severity::Warning,
            "campaign must flag the wall:\n{}",
            report.render()
        );
        let text = report.render();
        assert!(text.contains("strain drifting"), "{text}");
        assert!(text.contains("corrosion"), "{text}");
    }

    #[test]
    fn fig16_point_matches_component_models() {
        let (eco, pab, u2b) = fig16_point(2e3);
        assert!(eco > pab, "EcoCapsule above PAB at 2 kbps");
        assert!(eco > u2b, "EcoCapsule above U²B at 2 kbps");
    }
}

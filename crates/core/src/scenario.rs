//! End-to-end scenarios: the "operator walks up to a wall" workflows
//! that tie every layer together.

use channel::linkbudget::LinkBudget;
use concrete::structure::Structure;
use concrete::ConcreteGrade;
use dsp::batch::Engine;
use dsp::EcoResult;
use exec::Pool;
use faults::{FaultPlan, Timeline};
use node::capsule::{EcoCapsule, Environment};
use node::harvester::MIN_ACTIVATION_V;
use obs::{Event, MemoryRecorder, NullRecorder, Recorder, SlotClock};
use protocol::frame::SensorKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reader::app::ReaderSession;
use reader::robust::{RetryPolicy, RobustConfig};
use reader::rx::{max_throughput_bps, snr_vs_bitrate_db};

/// Worst-case virtual slots one capsule's quiet-path read phase can
/// consume: session re-acquisition (≤ 3 attempts × 2 exchanges) plus
/// three sensor reads. Sizes the disjoint per-task [`SlotClock`]
/// windows, so quiet-trace timestamps are worker-count independent.
const QUIET_READ_SLOTS_PER_CAPSULE: u64 = 9;

/// Everything that configures one survey pass, in one builder.
///
/// Replaces the old `survey` / `survey_with` / `survey_under` trio: one
/// configuration object drives the single
/// [`SelfSensingWall::run_survey`] engine.
///
/// ```
/// use ecocapsule::prelude::*;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut wall = SelfSensingWall::common_wall(&[0.5, 1.0]);
/// let mut rng = StdRng::seed_from_u64(7);
/// let report = SurveyOptions::new()
///     .tx_voltage(200.0)
///     .run(&mut wall, &mut rng)
///     .expect("valid survey");
/// assert_eq!(report.powered_ids, vec![1000, 1001]);
/// ```
///
/// Defaults: 200 V drive, serial pool, no fault plan (quiet channel),
/// [`RetryPolicy::paper_default`], no recorder.
pub struct SurveyOptions<'a> {
    /// TX drive voltage (V) for the charging phase.
    pub tx_voltage_v: f64,
    /// Worker pool for the per-capsule read phase.
    pub pool: Pool,
    /// Fault plan: `None` surveys a quiet channel; `Some` routes the
    /// survey through the fault timeline and robust session layer.
    pub fault_plan: Option<&'a FaultPlan>,
    /// Retry budget for must-answer commands. Only consulted when a
    /// fault plan is installed (the quiet path has nothing to retry).
    pub retry_policy: RetryPolicy,
    /// Observability sink; `None` records nothing at zero cost.
    pub recorder: Option<&'a mut dyn Recorder>,
    /// Hot-path engine: [`Engine::Batched`] (the default) runs waveform
    /// synthesis and decoding through the shared-table `dsp::batch`
    /// kernels; [`Engine::Scalar`] keeps the per-sample reference loops.
    /// Reports, digests and traces are bit-identical under either
    /// engine (DESIGN.md §8) — the switch exists for differential
    /// testing and benchmarking, not for accuracy trade-offs.
    pub engine: Engine,
}

impl std::fmt::Debug for SurveyOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SurveyOptions")
            .field("tx_voltage_v", &self.tx_voltage_v)
            .field("pool", &self.pool)
            .field("fault_plan", &self.fault_plan.is_some())
            .field("retry_policy", &self.retry_policy)
            .field("recorder", &self.recorder.is_some())
            .field("engine", &self.engine)
            .finish()
    }
}

impl Default for SurveyOptions<'_> {
    fn default() -> Self {
        SurveyOptions {
            tx_voltage_v: 200.0,
            pool: Pool::serial(),
            fault_plan: None,
            retry_policy: RetryPolicy::paper_default(),
            recorder: None,
            engine: Engine::default(),
        }
    }
}

impl<'a> SurveyOptions<'a> {
    /// Paper defaults (see the type docs).
    #[must_use]
    pub fn new() -> Self {
        SurveyOptions::default()
    }

    /// Sets the TX drive voltage (V).
    #[must_use]
    pub fn tx_voltage(mut self, tx_voltage_v: f64) -> Self {
        self.tx_voltage_v = tx_voltage_v;
        self
    }

    /// Sets the worker pool for the read phase.
    #[must_use]
    pub fn pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Routes the survey through `plan`'s fault timeline.
    #[must_use]
    pub fn fault_plan(mut self, plan: &'a FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the retry budget for must-answer commands.
    #[must_use]
    pub fn retry_policy(mut self, retry_policy: RetryPolicy) -> Self {
        self.retry_policy = retry_policy;
        self
    }

    /// Installs an observability sink for the survey's event stream.
    #[must_use]
    pub fn recorder(mut self, rec: &'a mut dyn Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Selects the hot-path engine. [`Engine::Scalar`] is the reference
    /// escape hatch for differential testing; results are bit-identical
    /// to the batched default either way.
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Checks the options describe a physically runnable survey (a
    /// positive, finite drive voltage).
    #[must_use]
    pub fn validate(&self) -> EcoResult<()> {
        if !(self.tx_voltage_v > 0.0 && self.tx_voltage_v.is_finite()) {
            return Err(dsp::EcoError::OutOfRange {
                what: "survey tx_voltage_v",
                value: self.tx_voltage_v,
                min: f64::MIN_POSITIVE,
                max: f64::MAX,
            });
        }
        Ok(())
    }

    /// Validates and returns the finished options — the terminal verb of
    /// the builder chain, shared across the whole
    /// `SurveyOptions`/`FleetOptions`/`CampaignOptions`/`ServeOptions`
    /// family.
    #[must_use]
    pub fn build(self) -> EcoResult<Self> {
        self.validate()?;
        Ok(self)
    }

    /// Runs the configured survey — sugar for
    /// [`SelfSensingWall::run_survey`].
    #[must_use]
    pub fn run<R: Rng>(self, wall: &mut SelfSensingWall, rng: &mut R) -> EcoResult<SurveyReport> {
        wall.run_survey(self, rng)
    }

    /// Upper-bound virtual-slot demand of surveying a wall of
    /// `capsule_count` capsules under this configuration — the TDMA
    /// budget a fleet scheduler must grant before the survey may run.
    ///
    /// Accounting mirrors the engine's slot contract: one charge slot
    /// per capsule; an inventory allowance of four nominal rounds at the
    /// engine's initial frame size `2^q` (`q = ⌈log₂ n⌉ + 1`); and a
    /// per-capsule read window — `QUIET_READ_SLOTS_PER_CAPSULE` quiet,
    /// or the retry policy's
    /// [`RetryPolicy::worst_case_capsule_read_slots`] when a fault plan
    /// is installed. Always ≥ 1, so even a capsule-less wall costs a
    /// scheduling quantum.
    #[must_use]
    pub fn slot_demand(&self, capsule_count: usize) -> u64 {
        let n = capsule_count as u64;
        let q = (capsule_count.max(1) as f64).log2().ceil() as u8 + 1;
        let inventory_slots = 4u64.saturating_mul(1u64 << q.min(62));
        let read_slots_per_capsule = if self.fault_plan.is_some() {
            self.retry_policy.worst_case_capsule_read_slots()
        } else {
            QUIET_READ_SLOTS_PER_CAPSULE
        };
        n.saturating_add(inventory_slots)
            .saturating_add(n.saturating_mul(read_slots_per_capsule))
            .max(1)
    }
}

/// Thermal strain per °C of temperature change in the host concrete
/// (coefficient of thermal expansion, ≈10 µε/°C for ordinary mixes).
///
/// The single constant both sides of a monitoring campaign share: the
/// structure-evolution model uses it to fold seasonal temperature into
/// the strain a capsule's gauge reads, and the analytics layer uses it
/// to *compensate* measured strain with measured temperature — so
/// seasonal drift cancels (to sensor quantization) instead of firing
/// false damage alarms.
pub const THERMAL_STRAIN_PER_C: f64 = 10.0e-6;

/// The time-varying physical condition of a wall: what a lifetime of
/// service has done to the structure and its implanted capsules.
///
/// A [`SelfSensingWall`] is built *under* a condition
/// ([`SelfSensingWall::common_wall_under`]); the condition bends the
/// physics every survey rides on:
///
/// - `stiffness_factor` scales the concrete's elastic modulus
///   ([`concrete::materials::ConcreteMix::with_stiffness_factor`]) —
///   progressive micro-cracking slows both wave speeds and drags the
///   transducer resonance (and with it the carrier) down;
/// - `crack_alpha_np_m` adds S-wave attenuation to the charging link
///   ([`channel::linkbudget::LinkBudget::with_added_attenuation`]) — a
///   discrete crack scattering energy out of the guided mode;
/// - `temperature_c` / `humidity_percent` / `strain` set the
///   [`Environment`] the sensors sample — seasonal drift plus
///   accumulated creep;
/// - `capsule_derating` multiplies each capsule's received charging
///   voltage (capsule order): electrode/PZT aging in (0, 1), a dead
///   capsule at exactly `0.0`, a healthy one at `1.0`.
///
/// [`WallCondition::pristine`] is the identity: every factor is the
/// multiplicative/additive no-op (`×1.0`, `+0.0`), chosen so a pristine
/// wall is **bit-identical** to one built without a condition — the
/// golden survey fixtures pin this.
#[derive(Debug, Clone, PartialEq)]
pub struct WallCondition {
    /// Elastic-modulus scale in (0, 1]; 1 = undamaged.
    pub stiffness_factor: f64,
    /// Added S-wave attenuation (Np/m) on the charging path; ≥ 0.
    pub crack_alpha_np_m: f64,
    /// Internal concrete temperature (°C).
    pub temperature_c: f64,
    /// Internal relative humidity (%).
    pub humidity_percent: f64,
    /// Internal strain (signed, strain units): creep + thermal + damage.
    pub strain: f64,
    /// Per-capsule charging derate in [0, 1], capsule order; capsules
    /// beyond the end of the vector are healthy (`1.0`).
    pub capsule_derating: Vec<f64>,
}

impl Default for WallCondition {
    fn default() -> Self {
        WallCondition::pristine()
    }
}

impl WallCondition {
    /// The as-built condition: no damage, nominal climate
    /// ([`Environment::default`]), every capsule healthy. Surveying
    /// under it is bit-identical to surveying without a condition.
    #[must_use]
    pub fn pristine() -> Self {
        WallCondition {
            stiffness_factor: 1.0,
            crack_alpha_np_m: 0.0,
            temperature_c: 25.0,
            humidity_percent: 70.0,
            strain: 0.0,
            capsule_derating: Vec::new(),
        }
    }

    /// Validates every field. The comparisons are written so `NaN`
    /// fails them (a hostile checkpoint cannot smuggle one in).
    #[must_use]
    pub fn validate(&self) -> EcoResult<()> {
        if !(self.stiffness_factor > 0.0 && self.stiffness_factor <= 1.0) {
            return Err(dsp::EcoError::OutOfRange {
                what: "condition stiffness_factor",
                value: self.stiffness_factor,
                min: 0.0,
                max: 1.0,
            });
        }
        if !(self.crack_alpha_np_m >= 0.0) {
            return Err(dsp::EcoError::OutOfRange {
                what: "condition crack_alpha_np_m",
                value: self.crack_alpha_np_m,
                min: 0.0,
                max: f64::INFINITY,
            });
        }
        if !self.temperature_c.is_finite() || !self.humidity_percent.is_finite() {
            return Err(dsp::EcoError::Protocol {
                what: "condition climate must be finite",
            });
        }
        if !self.strain.is_finite() {
            return Err(dsp::EcoError::Protocol {
                what: "condition strain must be finite",
            });
        }
        for &d in &self.capsule_derating {
            if !(0.0..=1.0).contains(&d) {
                return Err(dsp::EcoError::OutOfRange {
                    what: "condition capsule derate",
                    value: d,
                    min: 0.0,
                    max: 1.0,
                });
            }
        }
        Ok(())
    }

    /// Charging derate for capsule index `i` (capsule order); capsules
    /// past the end of the vector are healthy.
    #[must_use]
    pub fn derate(&self, i: usize) -> f64 {
        self.capsule_derating.get(i).copied().unwrap_or(1.0)
    }

    /// Stable digest words over every field (floats as bits, length-
    /// prefixed derating) for config digests that pin a condition.
    #[must_use]
    pub fn digest_words(&self) -> Vec<u64> {
        let mut words = vec![
            self.stiffness_factor.to_bits(),
            self.crack_alpha_np_m.to_bits(),
            self.temperature_c.to_bits(),
            self.humidity_percent.to_bits(),
            self.strain.to_bits(),
            self.capsule_derating.len() as u64,
        ];
        words.extend(self.capsule_derating.iter().map(|d| d.to_bits()));
        words
    }
}

/// A wall (or slab/column) with EcoCapsules implanted at known standoffs
/// from the reader's mounting point, plus the reader itself.
#[derive(Debug, Clone)]
pub struct SelfSensingWall {
    /// The host structure.
    pub structure: Structure,
    /// The implanted capsules with their distances (m) from the reader.
    pub capsules: Vec<(f64, EcoCapsule)>,
    /// The attached reader session.
    pub session: ReaderSession,
    /// Ambient/internal conditions at the capsules.
    pub environment: Environment,
    /// The structural condition the wall is surveyed under;
    /// [`WallCondition::pristine`] unless built via
    /// [`SelfSensingWall::common_wall_under`].
    pub condition: WallCondition,
}

/// Why a capsule did — or did not — contribute readings to a survey.
/// The degraded variants are *outcomes*, not errors: a survey over a
/// faulted channel completes and reports them instead of failing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapsuleOutcome {
    /// Powered, inventoried, and at least one sensor read decoded.
    Read {
        /// How many sensor readings were delivered.
        readings: usize,
    },
    /// Never cleared the activation threshold — too far for the drive
    /// voltage, or browned out during the charging phase.
    Unpowered,
    /// Powered but never singled out within the inventory round budget
    /// (persistent collisions and/or ACK losses).
    CollisionExhausted,
    /// Inventoried, but every sensor-read transaction failed to decode
    /// within the retry budget.
    DecodeFailed {
        /// Total read attempts spent before giving up.
        attempts: u32,
    },
}

impl CapsuleOutcome {
    /// Stable digest words for this outcome: a tag and a payload.
    fn digest_words(self) -> [u64; 2] {
        match self {
            CapsuleOutcome::Read { readings } => [0, readings as u64],
            CapsuleOutcome::Unpowered => [1, 0],
            CapsuleOutcome::CollisionExhausted => [2, 0],
            CapsuleOutcome::DecodeFailed { attempts } => [3, u64::from(attempts)],
        }
    }
}

/// Outcome of one survey pass (charge → inventory → read).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SurveyReport {
    /// IDs of the capsules that powered up at the chosen drive voltage.
    pub powered_ids: Vec<u32>,
    /// IDs successfully inventoried over the air.
    pub inventoried_ids: Vec<u32>,
    /// `(id, kind, physical value)` sensor readings collected.
    pub readings: Vec<(u32, SensorKind, f64)>,
    /// Per-capsule outcome, in capsule order — every implanted capsule
    /// appears exactly once.
    pub outcomes: Vec<(u32, CapsuleOutcome)>,
}

impl SurveyReport {
    /// FNV-1a digest over every field, bit-exact on the readings. Two
    /// surveys with the same digest saw the same capsules power up, the
    /// same inventory order, bit-identical sensor values and the same
    /// outcome for every capsule — the witness the fault-matrix bench
    /// and the determinism tests compare across worker counts.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let words = self
            .powered_ids
            .iter()
            .map(|&id| u64::from(id))
            .chain([u64::MAX]) // section separators
            .chain(self.inventoried_ids.iter().map(|&id| u64::from(id)))
            .chain([u64::MAX])
            .chain(self.readings.iter().flat_map(|&(id, kind, value)| {
                [u64::from(id), kind as u64, value.to_bits()]
            }))
            .chain([u64::MAX])
            .chain(self.outcomes.iter().flat_map(|&(id, outcome)| {
                let [tag, payload] = outcome.digest_words();
                [u64::from(id), tag, payload]
            }));
        faults::fnv1a64(words)
    }

    /// The outcome recorded for capsule `id`, if it was surveyed.
    #[must_use]
    pub fn outcome_of(&self, id: u32) -> Option<CapsuleOutcome> {
        self.outcomes
            .iter()
            .find(|(oid, _)| *oid == id)
            .map(|(_, o)| *o)
    }
}

impl SelfSensingWall {
    /// The paper's S3 common wall with capsules at the given standoffs.
    ///
    /// The quickstart flow — predict coverage from the link budget, then
    /// survey (charge → inventory → read each capsule's sensors):
    ///
    /// ```
    /// use ecocapsule::prelude::*;
    /// use rand::rngs::StdRng;
    /// use rand::SeedableRng;
    ///
    /// let mut rng = StdRng::seed_from_u64(42);
    /// let mut wall = SelfSensingWall::common_wall(&[0.5, 1.2, 2.0]);
    ///
    /// // Coverage prediction: 200 V reaches past the farthest capsule.
    /// let lb = wall.link_budget().expect("wall geometry is valid");
    /// let reach_m = lb
    ///     .max_range_m(200.0, 0.5)
    ///     .expect("valid link query")
    ///     .expect("200 V powers something");
    /// assert!(reach_m > 2.0);
    ///
    /// // Survey at 200 V: all three capsules power up and answer.
    /// let report = SurveyOptions::new()
    ///     .tx_voltage(200.0)
    ///     .run(&mut wall, &mut rng)
    ///     .expect("valid survey");
    /// assert_eq!(report.powered_ids, vec![1000, 1001, 1002]);
    /// assert!(!report.readings.is_empty());
    /// ```
    pub fn common_wall(distances_m: &[f64]) -> Self {
        SelfSensingWall::new(Structure::s3_common_wall(), distances_m)
    }

    /// The S3 common wall *as a lifetime of service left it*: the
    /// condition degrades the concrete stiffness (wave speeds, carrier),
    /// installs the seasonal/creep environment the sensors will sample,
    /// and arms the crack-attenuation and capsule-derating hooks the
    /// survey engine applies.
    ///
    /// Under [`WallCondition::pristine`] the result is bit-identical to
    /// [`SelfSensingWall::common_wall`] — every condition factor is a
    /// floating-point no-op — which is what lets a zero-damage campaign
    /// reproduce plain fleet digests exactly.
    ///
    /// Errors when the condition fails [`WallCondition::validate`].
    #[must_use]
    pub fn common_wall_under(distances_m: &[f64], condition: &WallCondition) -> EcoResult<Self> {
        condition.validate()?;
        let mut structure = Structure::s3_common_wall();
        structure.mix = structure
            .mix
            .with_stiffness_factor(condition.stiffness_factor)?;
        let mut wall = SelfSensingWall::new(structure, distances_m);
        wall.environment.temperature_c = condition.temperature_c;
        wall.environment.humidity_percent = condition.humidity_percent;
        wall.environment.strain = condition.strain;
        wall.condition = condition.clone();
        Ok(wall)
    }

    /// Builds a wall with capsules `1000, 1001, …` at the standoffs.
    pub fn new(structure: Structure, distances_m: &[f64]) -> Self {
        let capsules = distances_m
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                assert!(d > 0.0, "capsule distance must be positive");
                (d, EcoCapsule::new(1000 + i as u32))
            })
            .collect();
        let environment = Environment {
            concrete_e_pa: structure.mix.ec_gpa * 1e9,
            ..Environment::default()
        };
        SelfSensingWall {
            structure,
            capsules,
            session: ReaderSession::paper_default(),
            environment,
            condition: WallCondition::pristine(),
        }
    }

    /// The wall's charging link budget, with the condition's crack
    /// attenuation folded in (a `+0.0` bitwise no-op when pristine).
    #[must_use]
    pub fn link_budget(&self) -> EcoResult<LinkBudget> {
        LinkBudget::for_structure(&self.structure)?
            .with_added_attenuation(self.condition.crack_alpha_np_m)
    }

    /// One full survey pass driven by a [`SurveyOptions`] configuration:
    /// 1. the CBW charges every capsule whose received voltage clears the
    ///    activation threshold (waiting out each cold start),
    /// 2. the powered capsules are inventoried over the waveform-level
    ///    protocol,
    /// 3. each inventoried capsule is asked for temperature, humidity
    ///    and strain, fanned out over the configured pool.
    ///
    /// With a fault plan installed, every phase consumes slots of the
    /// plan's timeline under the robust session layer
    /// ([`reader::robust`]); without one, the quiet waveform-level path
    /// runs. Either way the engine is the single successor of the old
    /// `survey` / `survey_with` / `survey_under` trio, and reproduces
    /// their digests bit-for-bit for equivalent configurations.
    ///
    /// Determinism: exactly **one** value is drawn from `rng` and every
    /// phase derives its own child generator from it with
    /// [`exec::seed::derive`] — the inventory gets stream 0, capsule `id`
    /// gets stream `1 + id`. Per-capsule sensor reads (phase 3) fan out
    /// over the pool with results merged in capsule order, so the
    /// report, the post-survey wall state, *and the recorded event
    /// stream* are bit-identical for every worker count, including
    /// [`Pool::serial`] — parallel tasks record into per-task buffers
    /// that are replayed into the session recorder in capsule order.
    ///
    /// Phases 1–2 stay serial by nature: charging is a cheap closed-form
    /// sweep, and inventory arbitrates a *shared* medium (slotted ALOHA
    /// with collisions), which cannot be split across workers without
    /// changing the protocol being simulated.
    ///
    /// Errors when the link-budget query is invalid (negative drive
    /// voltage or a degenerate structure geometry).
    #[must_use]
    pub fn run_survey<R: Rng>(
        &mut self,
        options: SurveyOptions<'_>,
        rng: &mut R,
    ) -> EcoResult<SurveyReport> {
        let SurveyOptions {
            tx_voltage_v,
            pool,
            fault_plan,
            retry_policy,
            recorder,
            engine,
        } = options;
        let mut null = NullRecorder;
        let rec: &mut dyn Recorder = match recorder {
            Some(rec) => rec,
            None => &mut null,
        };
        // The session drives every waveform transaction; phase-3 tasks
        // clone it, so setting the engine here propagates to all workers.
        self.session.engine = engine;
        match fault_plan {
            None => self.run_survey_quiet(tx_voltage_v, &pool, rec, rng),
            Some(plan) => {
                self.run_survey_faulted(tx_voltage_v, plan, &retry_policy, &pool, rec, rng)
            }
        }
    }

    /// One full survey at `tx_voltage` volts on a quiet channel.
    #[deprecated(
        since = "0.2.0",
        note = "use `SurveyOptions::new().tx_voltage(..)` with `run_survey` (or `.run(..)`)"
    )]
    #[must_use]
    pub fn survey<R: Rng>(&mut self, tx_voltage_v: f64, rng: &mut R) -> EcoResult<SurveyReport> {
        self.run_survey(SurveyOptions::new().tx_voltage(tx_voltage_v), rng)
    }

    /// Quiet survey on an explicit worker pool.
    #[deprecated(
        since = "0.2.0",
        note = "use `SurveyOptions::new().tx_voltage(..).pool(..)` with `run_survey`"
    )]
    #[must_use]
    pub fn survey_with<R: Rng>(
        &mut self,
        tx_voltage_v: f64,
        rng: &mut R,
        pool: &Pool,
    ) -> EcoResult<SurveyReport> {
        self.run_survey(
            SurveyOptions::new().tx_voltage(tx_voltage_v).pool(*pool),
            rng,
        )
    }

    /// The quiet-channel engine behind [`SelfSensingWall::run_survey`].
    /// Slot-clock contract: one virtual slot per protocol transaction;
    /// phase 3 tasks get disjoint [`QUIET_READ_SLOTS_PER_CAPSULE`]-slot
    /// windows in capsule order.
    fn run_survey_quiet<R: Rng>(
        &mut self,
        tx_voltage_v: f64,
        pool: &Pool,
        rec: &mut dyn Recorder,
        rng: &mut R,
    ) -> EcoResult<SurveyReport> {
        let mut report = SurveyReport::default();
        let lb = self.link_budget()?;
        let base_seed: u64 = rng.gen();
        let mut clock = SlotClock::new(0);
        rec.span_open("survey", 0, clock.now());

        // Phase 1: wireless charging, one virtual slot per capsule. The
        // link-budget voltages are computed as one SoA lane batch (bit-
        // identical per lane to the scalar query; the whole batch is
        // validated before any capsule state mutates).
        rec.span_open("phase.charge", 0, clock.now());
        let distances: Vec<f64> = self.capsules.iter().map(|(d, _)| *d).collect();
        let v_lanes = lb.received_voltage_lanes(tx_voltage_v, &distances)?;
        // Each lane is scaled by the capsule's condition derate (aging /
        // death); `×1.0` is a bitwise no-op for healthy capsules.
        let condition = &self.condition;
        for (i, ((_, capsule), v_lane)) in self.capsules.iter_mut().zip(v_lanes).enumerate() {
            let v_rx = v_lane * condition.derate(i);
            let slot = clock.tick();
            capsule.harvest_observed(v_rx, 1.0, slot, rec); // a second of CBW ≫ any cold start
            if v_rx >= MIN_ACTIVATION_V && capsule.is_operational() {
                report.powered_ids.push(capsule.id);
            }
        }
        rec.count(
            "survey.powered",
            report.powered_ids.len() as u64,
            clock.now(),
        );
        rec.span_close("phase.charge", 0, clock.now());

        // Phase 2: inventory (waveform level, serial — shared medium).
        let mut powered: Vec<EcoCapsule> = self
            .capsules
            .iter()
            .filter(|(_, c)| c.is_operational())
            .map(|(_, c)| c.clone())
            .collect();
        let q = (powered.len().max(1) as f64).log2().ceil() as u8 + 1;
        let mut inventory_rng = StdRng::seed_from_u64(exec::seed::derive(base_seed, 0));
        rec.span_open("phase.inventory", 0, clock.now());
        report.inventoried_ids = self.session.inventory_observed(
            &mut powered,
            &self.environment,
            q,
            40,
            &mut clock,
            rec,
            &mut inventory_rng,
        );
        rec.count(
            "survey.inventoried",
            report.inventoried_ids.len() as u64,
            clock.now(),
        );
        rec.span_close("phase.inventory", 0, clock.now());

        // Phase 3: sensor reads, one task per inventoried capsule. The
        // session is shared read-only; each task owns a clone of its
        // capsule, an RNG derived from the capsule id, and a slot-clock
        // window derived from its task index, so scheduling can reorder
        // neither random draws nor event timestamps. A capsule
        // identified in an early inventory round may have been
        // re-arbitrated out of `Acknowledged` by a later round's Query,
        // so each task first re-opens the read session (a no-op — zero
        // RNG draws, zero events — when it is still open). Each task
        // records into its own buffer; the buffers are replayed into the
        // session recorder in capsule order below.
        let read_base_slot = clock.now();
        let session = &self.session;
        let environment = &self.environment;
        let inventoried = &report.inventoried_ids;
        let surveyed: Vec<(EcoCapsule, Vec<(u32, SensorKind, f64)>, Vec<Event>)> =
            pool.par_map(&powered, |task, capsule| {
                let mut capsule = capsule.clone();
                let mut readings = Vec::new();
                let mut task_rec = MemoryRecorder::new();
                let mut task_clock =
                    SlotClock::new(read_base_slot + task as u64 * QUIET_READ_SLOTS_PER_CAPSULE);
                if inventoried.contains(&capsule.id) {
                    task_rec.span_open("phase.read", capsule.id, task_clock.now());
                    let mut read_rng = StdRng::seed_from_u64(exec::seed::derive(
                        base_seed,
                        1 + u64::from(capsule.id),
                    ));
                    session.ensure_session_observed(
                        &mut capsule,
                        environment,
                        3,
                        &mut task_clock,
                        &mut task_rec,
                        &mut read_rng,
                    );
                    for kind in [
                        SensorKind::Temperature,
                        SensorKind::Humidity,
                        SensorKind::Strain,
                    ] {
                        if let Ok(Some(value)) = session.read_sensor_observed(
                            &mut capsule,
                            kind,
                            environment,
                            &mut task_clock,
                            &mut task_rec,
                            &mut read_rng,
                        ) {
                            readings.push((capsule.id, kind, value));
                        }
                    }
                    task_rec.span_close("phase.read", capsule.id, task_clock.now());
                }
                (capsule, readings, task_rec.into_events())
            });
        // Merge in capsule order: readings, recorded events, and the
        // written-back protocol/lifecycle state.
        for (done, readings, events) in surveyed {
            for ev in &events {
                rec.record(ev);
            }
            report.readings.extend(readings);
            if let Some((_, c)) = self.capsules.iter_mut().find(|(_, c)| c.id == done.id) {
                *c = done;
            }
        }
        clock.skip(powered.len() as u64 * QUIET_READ_SLOTS_PER_CAPSULE);
        self.classify_outcomes(&mut report, 3);
        rec.count("survey.readings", report.readings.len() as u64, clock.now());
        rec.span_close("survey", 0, clock.now());
        Ok(report)
    }

    /// Fills `report.outcomes` from the phase results, one entry per
    /// implanted capsule in capsule order. `attempts_per_failed_read` is
    /// what a fully-failed read spent (3 kinds × the per-command budget).
    fn classify_outcomes(&self, report: &mut SurveyReport, attempts_per_failed_read: u32) {
        report.outcomes = self
            .capsules
            .iter()
            .map(|(_, c)| {
                let id = c.id;
                let outcome = if !report.powered_ids.contains(&id) {
                    CapsuleOutcome::Unpowered
                } else if !report.inventoried_ids.contains(&id) {
                    CapsuleOutcome::CollisionExhausted
                } else {
                    let readings = report
                        .readings
                        .iter()
                        .filter(|(rid, _, _)| *rid == id)
                        .count();
                    if readings > 0 {
                        CapsuleOutcome::Read { readings }
                    } else {
                        CapsuleOutcome::DecodeFailed {
                            attempts: attempts_per_failed_read,
                        }
                    }
                };
                (id, outcome)
            })
            .collect();
    }

    /// [`SelfSensingWall::survey_with`] on a channel under a
    /// [`FaultPlan`]: every phase consumes slots of the plan's timeline
    /// and runs under whatever perturbation each slot carries, and
    /// must-answer transactions retry per `policy`.
    ///
    /// Phase structure (see DESIGN.md §4 for the slot accounting):
    /// 1. **Charging** — one slot per capsule, in capsule order. A
    ///    brownout slot starves the capsule during its charge window
    ///    (`harvest_under`), which — unlike a transaction-time brownout —
    ///    is unrecoverable this survey: the capsule reports
    ///    [`CapsuleOutcome::Unpowered`].
    /// 2. **Inventory** — the fault-aware robust driver
    ///    ([`reader::robust`]) with retried ACKs and loss-burst Q
    ///    re-arbitration, consuming the timeline serially (shared
    ///    medium).
    /// 3. **Reads** — fan out per capsule over `pool`. Each task first
    ///    re-opens its capsule's read session if a later inventory round
    ///    displaced it from `Acknowledged`
    ///    ([`ReaderSession::ensure_session_with_retry`]), then issues
    ///    three retried reads. Each capsule gets a *disjoint,
    ///    precomputed* timeline slice sized to the worst-case slot spend
    ///    of the re-acquisition plus the reads, so worker scheduling cannot
    ///    change which perturbations any capsule sees: the report digest
    ///    is bit-identical for every worker count.
    ///
    /// Determinism mirrors `survey_with`: one value drawn from `rng`,
    /// child streams derived per phase/capsule.
    #[deprecated(
        since = "0.2.0",
        note = "use `SurveyOptions::new().fault_plan(..).retry_policy(..).pool(..)` with `run_survey`"
    )]
    #[must_use]
    pub fn survey_under<R: Rng>(
        &mut self,
        tx_voltage_v: f64,
        plan: &FaultPlan,
        policy: &RetryPolicy,
        rng: &mut R,
        pool: &Pool,
    ) -> EcoResult<SurveyReport> {
        self.run_survey(
            SurveyOptions::new()
                .tx_voltage(tx_voltage_v)
                .fault_plan(plan)
                .retry_policy(*policy)
                .pool(*pool),
            rng,
        )
    }

    /// The faulted-channel engine behind [`SelfSensingWall::run_survey`].
    /// Slot-clock contract: event timestamps are the [`Timeline`] slot
    /// index about to be consumed; phase 3 tasks get disjoint,
    /// worst-case-sized timeline slices in capsule order.
    fn run_survey_faulted<R: Rng>(
        &mut self,
        tx_voltage_v: f64,
        plan: &FaultPlan,
        policy: &RetryPolicy,
        pool: &Pool,
        rec: &mut dyn Recorder,
        rng: &mut R,
    ) -> EcoResult<SurveyReport> {
        let mut report = SurveyReport::default();
        let lb = self.link_budget()?;
        let base_seed: u64 = rng.gen();
        let mut timeline = Timeline::new(plan);
        rec.span_open("survey", 0, timeline.slot());

        // Phase 1: wireless charging, one slot per capsule. Voltages come
        // from the same SoA lane batch as the quiet path.
        rec.span_open("phase.charge", 0, timeline.slot());
        let distances: Vec<f64> = self.capsules.iter().map(|(d, _)| *d).collect();
        let v_lanes = lb.received_voltage_lanes(tx_voltage_v, &distances)?;
        // Condition derating mirrors the quiet path: scale each lane
        // before the harvester sees it (`×1.0` no-op when healthy).
        let condition = &self.condition;
        for (i, ((_, capsule), v_lane)) in self.capsules.iter_mut().zip(v_lanes).enumerate() {
            let v_rx = v_lane * condition.derate(i);
            let slot = timeline.slot();
            let p = timeline.advance();
            capsule.harvest_under_observed(v_rx, 1.0, &p, slot, rec);
            if capsule.is_operational() {
                report.powered_ids.push(capsule.id);
            }
        }
        rec.count(
            "survey.powered",
            report.powered_ids.len() as u64,
            timeline.slot(),
        );
        rec.span_close("phase.charge", 0, timeline.slot());

        // Phase 2: fault-aware inventory (serial — shared medium).
        let mut powered: Vec<EcoCapsule> = self
            .capsules
            .iter()
            .filter(|(_, c)| c.is_operational())
            .map(|(_, c)| c.clone())
            .collect();
        let q = (powered.len().max(1) as f64).log2().ceil() as u8 + 1;
        let cfg = RobustConfig {
            q0: q,
            c: 0.3,
            max_rounds: 40,
            policy: *policy,
        };
        let mut inventory_rng = StdRng::seed_from_u64(exec::seed::derive(base_seed, 0));
        rec.span_open("phase.inventory", 0, timeline.slot());
        report.inventoried_ids = self
            .session
            .inventory_robust(
                &mut powered,
                &self.environment,
                &cfg,
                &mut timeline,
                rec,
                &mut inventory_rng,
            )
            .found;
        rec.count(
            "survey.inventoried",
            report.inventoried_ids.len() as u64,
            timeline.slot(),
        );
        rec.span_close("phase.inventory", 0, timeline.slot());

        // Phase 3: retried sensor reads on disjoint timeline slices,
        // each sized to the policy's worst case (see
        // `RetryPolicy::worst_case_capsule_read_slots` for the slot
        // accounting). Each task records into its own buffer; buffers
        // are replayed into the session recorder in capsule order, so
        // the event stream is bit-identical for every worker count.
        let budget = policy.max_attempts.max(1);
        let slots_per_capsule = policy.worst_case_capsule_read_slots();
        let read_base_slot = timeline.slot();
        let session = &self.session;
        let environment = &self.environment;
        let inventoried = &report.inventoried_ids;
        let surveyed: Vec<(EcoCapsule, Vec<(u32, SensorKind, f64)>, u32, Vec<Event>)> = pool
            .par_map(&powered, |task, capsule| {
                let mut capsule = capsule.clone();
                let mut readings = Vec::new();
                let mut attempts = 0u32;
                let mut task_rec = MemoryRecorder::new();
                if inventoried.contains(&capsule.id) {
                    let mut read_rng = StdRng::seed_from_u64(exec::seed::derive(
                        base_seed,
                        1 + u64::from(capsule.id),
                    ));
                    let mut slice = Timeline::starting_at(
                        plan,
                        read_base_slot + task as u64 * slots_per_capsule,
                    );
                    task_rec.span_open("phase.read", capsule.id, slice.slot());
                    attempts += session.ensure_session_with_retry(
                        &mut capsule,
                        environment,
                        &cfg,
                        &mut slice,
                        &mut task_rec,
                        &mut read_rng,
                    );
                    for kind in [
                        SensorKind::Temperature,
                        SensorKind::Humidity,
                        SensorKind::Strain,
                    ] {
                        let (value, spent) = session.read_sensor_with_retry(
                            &mut capsule,
                            kind,
                            environment,
                            policy,
                            &mut slice,
                            &mut task_rec,
                            &mut read_rng,
                        );
                        attempts += spent;
                        if let Some(value) = value {
                            readings.push((capsule.id, kind, value));
                        }
                    }
                    task_rec.span_close("phase.read", capsule.id, slice.slot());
                }
                (capsule, readings, attempts, task_rec.into_events())
            });
        let mut attempts_by_id: Vec<(u32, u32)> = Vec::new();
        for (done, readings, attempts, events) in surveyed {
            for ev in &events {
                rec.record(ev);
            }
            report.readings.extend(readings);
            attempts_by_id.push((done.id, attempts));
            if let Some((_, c)) = self.capsules.iter_mut().find(|(_, c)| c.id == done.id) {
                *c = done;
            }
        }

        self.classify_outcomes(&mut report, 3 * budget);
        // Replace the uniform failed-read attempt estimate with what each
        // capsule actually spent.
        for (id, outcome) in report.outcomes.iter_mut() {
            if let CapsuleOutcome::DecodeFailed { attempts } = outcome {
                if let Some((_, spent)) = attempts_by_id.iter().find(|(aid, _)| aid == id) {
                    *attempts = *spent;
                }
            }
        }
        let end_slot = read_base_slot + powered.len() as u64 * slots_per_capsule;
        rec.count("survey.readings", report.readings.len() as u64, end_slot);
        rec.span_close("survey", 0, end_slot);
        Ok(report)
    }
}

/// A long-horizon monitoring campaign over a wall: periodic surveys
/// accumulate per-capsule histories that the damage analyses and the
/// report generator consume — the full EcoCapsule value chain of §6.
#[derive(Debug, Clone, Default)]
pub struct MonitoringCampaign {
    /// Per-capsule `(time_s, strain)` histories.
    pub strain: std::collections::BTreeMap<u32, Vec<(f64, f64)>>,
    /// Per-capsule `(time_s, humidity %)` histories.
    pub humidity: std::collections::BTreeMap<u32, Vec<(f64, f64)>>,
}

impl MonitoringCampaign {
    /// Starts an empty campaign.
    pub fn new() -> Self {
        MonitoringCampaign::default()
    }

    /// Runs one survey at time `t_s` and folds the readings into the
    /// histories.
    #[must_use]
    pub fn survey_at<R: Rng>(
        &mut self,
        wall: &mut SelfSensingWall,
        t_s: f64,
        tx_voltage_v: f64,
        rng: &mut R,
    ) -> EcoResult<SurveyReport> {
        let report = wall.run_survey(SurveyOptions::new().tx_voltage(tx_voltage_v), rng)?;
        for (id, kind, value) in &report.readings {
            match kind {
                SensorKind::Strain => {
                    self.strain.entry(*id).or_default().push((t_s, *value));
                }
                SensorKind::Humidity => {
                    self.humidity.entry(*id).or_default().push((t_s, *value));
                }
                _ => {}
            }
        }
        Ok(report)
    }

    /// Composes the health report for one capsule from its histories.
    pub fn report_for(&self, id: u32) -> shm::report::HealthReport {
        let mut report = shm::report::HealthReport::new();
        if let Some(h) = self.strain.get(&id) {
            report = report.with_strain(shm::damage::strain_drift(h, 50.0));
        }
        if let Some(h) = self.humidity.get(&id) {
            if let Some(risk) = shm::damage::corrosion_risk(h) {
                report = report.with_corrosion(risk);
            }
        }
        report
    }
}

/// Fig 17: maximum uplink throughput per concrete grade. The denser
/// UHPC/UHPFRC matrices raise the link SNR (strength gain → more dB at
/// the same drive), buying ~2 kbps over NC.
pub fn throughput_for_grade(grade: ConcreteGrade) -> f64 {
    let gain_db = 20.0 * grade.mix().strength_gain().log10();
    // NC base: 17 dB at 1 kbps, 18 kHz modulation band (see reader::rx).
    max_throughput_for(17.0 + gain_db)
}

fn max_throughput_for(base_db_at_1k: f64) -> f64 {
    max_throughput_bps(base_db_at_1k, 18.0e3, 0.0)
}

/// The Fig 16 triple: EcoCapsule / PAB / U²B SNR at one bitrate.
pub fn fig16_point(bitrate_bps: f64) -> (f64, f64, f64) {
    (
        reader::rx::ecocapsule_snr_vs_bitrate_db(bitrate_bps),
        baselines::pab::pab_snr_vs_bitrate_db(bitrate_bps),
        baselines::u2b::u2b_snr_vs_bitrate_db(bitrate_bps),
    )
}

/// Fig 22: synthesizes the "received and demodulated backscatter
/// signal" waveform — CBW only until `t_start_s`, then the node's
/// impedance switch toggling at `switch_hz` (0.5 ms edges in the paper).
/// Returns `(time_s, envelope_mv)` pairs at the capture rate.
pub fn fig22_waveform(t_start_s: f64, switch_hz: f64, duration_s: f64) -> Vec<(f64, f64)> {
    assert!(
        t_start_s >= 0.0 && switch_hz > 0.0 && duration_s > t_start_s,
        "invalid waveform spec"
    );
    let fs = 1.0e6;
    let carrier = 230e3;
    let n = (duration_s * fs) as usize;
    let mut raw = Vec::with_capacity(n);
    for i in 0..n {
        let t = i as f64 / fs;
        let m = if t < t_start_s {
            0.1
        } else {
            // Square switching between absorptive and reflective.
            let phase = ((t - t_start_s) * switch_hz).fract();
            if phase < 0.5 {
                1.0
            } else {
                0.1
            }
        };
        // Leak 400 mV + backscatter 60 mV, as in the figure's scale.
        raw.push((400.0 + 60.0 * m) * (2.0 * std::f64::consts::PI * carrier * t).sin());
    }
    let env = dsp::envelope::diode_envelope(&raw, 30e-6, fs);
    env.iter()
        .enumerate()
        .step_by(20)
        .map(|(i, &v)| (i as f64 / fs, v))
        .collect()
}

/// `snr_vs_bitrate_db` re-export so scenario callers need one import.
pub use reader::rx::ecocapsule_snr_vs_bitrate_db;

/// Generic curve re-export.
pub fn custom_snr_curve(bitrate_bps: f64, base_db: f64, band_bps: f64) -> f64 {
    snr_vs_bitrate_db(bitrate_bps, base_db, band_bps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn survey_powers_inventories_and_reads() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut wall = SelfSensingWall::common_wall(&[0.5, 1.0]);
        let report = SurveyOptions::new()
            .tx_voltage(200.0)
            .run(&mut wall, &mut rng)
            .unwrap();
        assert_eq!(report.powered_ids, vec![1000, 1001]);
        let mut inv = report.inventoried_ids.clone();
        inv.sort_unstable();
        assert_eq!(inv, vec![1000, 1001]);
        // 3 readings per capsule.
        assert_eq!(report.readings.len(), 6);
        let temp = report
            .readings
            .iter()
            .find(|(id, k, _)| *id == 1000 && *k == SensorKind::Temperature)
            .unwrap()
            .2;
        assert!((temp - 25.0).abs() < 0.1, "temperature read {temp}");
    }

    #[test]
    fn pristine_condition_is_a_bitwise_noop() {
        // The whole golden-fixture story rides on this: building under
        // WallCondition::pristine() must reproduce common_wall exactly.
        let survey = |wall: &mut SelfSensingWall| {
            let mut rng = StdRng::seed_from_u64(42);
            SurveyOptions::new()
                .tx_voltage(150.0)
                .run(wall, &mut rng)
                .unwrap()
        };
        let plain = survey(&mut SelfSensingWall::common_wall(&[0.5, 1.2, 2.0]));
        let under = survey(
            &mut SelfSensingWall::common_wall_under(&[0.5, 1.2, 2.0], &WallCondition::pristine())
                .unwrap(),
        );
        assert_eq!(plain.digest(), under.digest());
        for ((_, _, a), (_, _, b)) in plain.readings.iter().zip(under.readings.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn condition_environment_reaches_the_sensors() {
        let condition = WallCondition {
            temperature_c: 31.0,
            humidity_percent: 82.0,
            strain: 240e-6,
            ..WallCondition::pristine()
        };
        let mut wall = SelfSensingWall::common_wall_under(&[0.5], &condition).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let report = SurveyOptions::new().run(&mut wall, &mut rng).unwrap();
        let read = |kind: SensorKind| {
            report
                .readings
                .iter()
                .find(|(_, k, _)| *k == kind)
                .map(|(_, _, v)| *v)
                .expect("reading present")
        };
        assert!((read(SensorKind::Temperature) - 31.0).abs() < 0.1);
        assert!((read(SensorKind::Humidity) - 82.0).abs() < 0.5);
        assert!((read(SensorKind::Strain) - 240e-6).abs() < 1e-6);
    }

    #[test]
    fn crack_attenuation_darkens_far_capsules() {
        // At 50 V a 1.0 m capsule is comfortably in range on a pristine
        // wall (Fig 12: ~1.3 m)…
        let mut rng = StdRng::seed_from_u64(8);
        let mut pristine = SelfSensingWall::common_wall(&[1.0]);
        let report = SurveyOptions::new()
            .tx_voltage(50.0)
            .run(&mut pristine, &mut rng)
            .unwrap();
        assert_eq!(report.powered_ids, vec![1000]);
        // …but a crack on the path scatters the charge below threshold.
        let cracked = WallCondition {
            crack_alpha_np_m: 1.5,
            ..WallCondition::pristine()
        };
        let mut wall = SelfSensingWall::common_wall_under(&[1.0], &cracked).unwrap();
        let report = SurveyOptions::new()
            .tx_voltage(50.0)
            .run(&mut wall, &mut rng)
            .unwrap();
        assert!(report.powered_ids.is_empty());
        assert_eq!(report.outcome_of(1000), Some(CapsuleOutcome::Unpowered));
    }

    #[test]
    fn capsule_derating_ages_and_kills_individually() {
        let condition = WallCondition {
            // Capsule 0 dead, capsule 1 heavily aged, capsule 2 healthy
            // (past the vector's end).
            capsule_derating: vec![0.0, 0.02],
            ..WallCondition::pristine()
        };
        let mut wall = SelfSensingWall::common_wall_under(&[0.5, 0.6, 0.7], &condition).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let report = SurveyOptions::new()
            .tx_voltage(200.0)
            .run(&mut wall, &mut rng)
            .unwrap();
        assert_eq!(report.outcome_of(1000), Some(CapsuleOutcome::Unpowered));
        assert_eq!(report.outcome_of(1001), Some(CapsuleOutcome::Unpowered));
        assert_eq!(
            report.outcome_of(1002),
            Some(CapsuleOutcome::Read { readings: 3 })
        );
    }

    #[test]
    fn degraded_stiffness_shifts_stress_conversion() {
        let degraded = WallCondition {
            stiffness_factor: 0.7,
            ..WallCondition::pristine()
        };
        let wall = SelfSensingWall::common_wall_under(&[0.5], &degraded).unwrap();
        let pristine = SelfSensingWall::common_wall(&[0.5]);
        assert!(wall.environment.concrete_e_pa < pristine.environment.concrete_e_pa);
        assert!(
            wall.link_budget().unwrap().carrier_hz < pristine.link_budget().unwrap().carrier_hz,
            "softened matrix must drag the resonant carrier down"
        );
    }

    #[test]
    fn invalid_conditions_are_rejected() {
        let bads = [
            WallCondition {
                stiffness_factor: 0.0,
                ..WallCondition::pristine()
            },
            WallCondition {
                stiffness_factor: f64::NAN,
                ..WallCondition::pristine()
            },
            WallCondition {
                crack_alpha_np_m: -0.1,
                ..WallCondition::pristine()
            },
            WallCondition {
                temperature_c: f64::INFINITY,
                ..WallCondition::pristine()
            },
            WallCondition {
                strain: f64::NAN,
                ..WallCondition::pristine()
            },
            WallCondition {
                capsule_derating: vec![1.2],
                ..WallCondition::pristine()
            },
            WallCondition {
                capsule_derating: vec![f64::NAN],
                ..WallCondition::pristine()
            },
        ];
        for bad in bads {
            assert!(
                SelfSensingWall::common_wall_under(&[0.5], &bad).is_err(),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn condition_digest_words_cover_every_field() {
        let base = WallCondition::pristine();
        let variants = [
            WallCondition {
                stiffness_factor: 0.9,
                ..base.clone()
            },
            WallCondition {
                crack_alpha_np_m: 0.2,
                ..base.clone()
            },
            WallCondition {
                temperature_c: 26.0,
                ..base.clone()
            },
            WallCondition {
                humidity_percent: 71.0,
                ..base.clone()
            },
            WallCondition {
                strain: 1e-6,
                ..base.clone()
            },
            WallCondition {
                capsule_derating: vec![1.0],
                ..base.clone()
            },
        ];
        let d0 = faults::fnv1a64(base.digest_words());
        for v in variants {
            assert_ne!(faults::fnv1a64(v.digest_words()), d0, "{v:?}");
        }
    }

    #[test]
    fn survey_is_bit_identical_across_worker_counts() {
        let reference = {
            let mut rng = StdRng::seed_from_u64(77);
            let mut wall = SelfSensingWall::common_wall(&[0.5, 1.0, 1.5]);
            SurveyOptions::new()
                .tx_voltage(200.0)
                .run(&mut wall, &mut rng)
                .unwrap()
        };
        assert!(
            !reference.readings.is_empty(),
            "reference survey must actually read sensors"
        );
        for workers in [2, 3, exec::Pool::max_parallel().workers()] {
            let mut rng = StdRng::seed_from_u64(77);
            let mut wall = SelfSensingWall::common_wall(&[0.5, 1.0, 1.5]);
            let report = SurveyOptions::new()
                .tx_voltage(200.0)
                .pool(Pool::new(workers))
                .run(&mut wall, &mut rng)
                .unwrap();
            assert_eq!(report.powered_ids, reference.powered_ids);
            assert_eq!(report.inventoried_ids, reference.inventoried_ids);
            assert_eq!(report.readings.len(), reference.readings.len());
            for ((id_a, kind_a, val_a), (id_b, kind_b, val_b)) in
                report.readings.iter().zip(reference.readings.iter())
            {
                assert_eq!(id_a, id_b, "workers={workers}");
                assert_eq!(kind_a, kind_b, "workers={workers}");
                assert_eq!(
                    val_a.to_bits(),
                    val_b.to_bits(),
                    "readings must be bit-identical (workers={workers})"
                );
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_run_survey_digests() {
        let depths = [0.5, 1.0];
        let run =
            |f: &mut dyn FnMut(&mut SelfSensingWall, &mut StdRng) -> EcoResult<SurveyReport>| {
                let mut rng = StdRng::seed_from_u64(5);
                let mut wall = SelfSensingWall::common_wall(&depths);
                f(&mut wall, &mut rng).unwrap().digest()
            };

        // survey(v) ≡ SurveyOptions::new().tx_voltage(v)
        assert_eq!(
            run(&mut |w, r| w.survey(150.0, r)),
            run(&mut |w, r| SurveyOptions::new().tx_voltage(150.0).run(w, r)),
        );
        // survey_with(v, pool) ≡ ...pool(pool)
        let pool = Pool::new(2);
        assert_eq!(
            run(&mut |w, r| w.survey_with(150.0, r, &pool)),
            run(&mut |w, r| SurveyOptions::new().tx_voltage(150.0).pool(pool).run(w, r)),
        );
        // survey_under(v, plan, policy, pool) ≡ ...fault_plan(..).retry_policy(..).pool(..)
        let plan = FaultPlan::generate(7, &faults::FaultIntensity::moderate(4000));
        let policy = RetryPolicy::paper_default();
        assert_eq!(
            run(&mut |w, r| w.survey_under(150.0, &plan, &policy, r, &pool)),
            run(&mut |w, r| SurveyOptions::new()
                .tx_voltage(150.0)
                .fault_plan(&plan)
                .retry_policy(policy)
                .pool(pool)
                .run(w, r)),
        );
        // The default drive is 200 V, so default options ≡ survey(200.0).
        assert_eq!(
            run(&mut |w, r| w.survey(200.0, r)),
            run(&mut |w, r| SurveyOptions::default().run(w, r)),
        );
    }

    #[test]
    fn slot_demand_scales_with_capsules_and_fault_posture() {
        let quiet = SurveyOptions::new();
        assert!(
            quiet.slot_demand(0) >= 1,
            "empty wall still costs a quantum"
        );
        let mut last = 0;
        for n in 1..=8 {
            let d = SurveyOptions::new().slot_demand(n);
            assert!(d > last, "demand must grow with capsule count");
            last = d;
        }
        // A faulted posture can only cost more: its per-capsule read
        // window (worst-case retries) dominates the quiet window.
        let plan = FaultPlan::quiet();
        let faulted = SurveyOptions::new()
            .fault_plan(&plan)
            .retry_policy(RetryPolicy::paper_default());
        assert!(faulted.slot_demand(3) > SurveyOptions::new().slot_demand(3));
    }

    #[test]
    fn recording_does_not_change_the_survey() {
        let silent = {
            let mut rng = StdRng::seed_from_u64(5);
            let mut wall = SelfSensingWall::common_wall(&[0.5, 1.0]);
            SurveyOptions::new()
                .tx_voltage(150.0)
                .run(&mut wall, &mut rng)
                .unwrap()
                .digest()
        };
        let mut rec = MemoryRecorder::new();
        let recorded = {
            let mut rng = StdRng::seed_from_u64(5);
            let mut wall = SelfSensingWall::common_wall(&[0.5, 1.0]);
            SurveyOptions::new()
                .tx_voltage(150.0)
                .recorder(&mut rec)
                .run(&mut wall, &mut rng)
                .unwrap()
                .digest()
        };
        assert_eq!(silent, recorded, "recording must draw zero randomness");
        assert!(!rec.is_empty(), "the survey must emit events");
        assert_eq!(rec.unmatched_closes(), 0);
        assert_eq!(rec.counter_total("survey.powered"), 2);
        assert_eq!(rec.counter_total("survey.inventoried"), 2);
        assert_eq!(rec.counter_total("survey.readings"), 6);
        // Slot-clock timestamps are monotone nondecreasing across the
        // merged stream.
        let slots: Vec<u64> = rec.events().iter().map(|e| e.slot()).collect();
        assert!(slots.windows(2).all(|w| w[0] <= w[1]), "{slots:?}");
    }

    #[test]
    fn quiet_trace_is_invariant_under_worker_count() {
        let trace = |workers: usize| {
            let mut rng = StdRng::seed_from_u64(77);
            let mut wall = SelfSensingWall::common_wall(&[0.5, 1.0, 1.5]);
            let mut rec = MemoryRecorder::new();
            let pool = if workers <= 1 {
                Pool::serial()
            } else {
                Pool::new(workers)
            };
            SurveyOptions::new()
                .tx_voltage(200.0)
                .pool(pool)
                .recorder(&mut rec)
                .run(&mut wall, &mut rng)
                .unwrap();
            rec.to_jsonl()
        };
        let reference = trace(1);
        for workers in [2, exec::Pool::max_parallel().workers()] {
            assert_eq!(trace(workers), reference, "workers={workers}");
        }
    }

    #[test]
    fn survey_with_classifies_every_capsule() {
        let mut rng = StdRng::seed_from_u64(1);
        // 0.5 m reads; 4.0 m stays dark at 50 V.
        let mut wall = SelfSensingWall::common_wall(&[0.5, 4.0]);
        let report = SurveyOptions::new()
            .tx_voltage(50.0)
            .run(&mut wall, &mut rng)
            .unwrap();
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(
            report.outcome_of(1000),
            Some(CapsuleOutcome::Read { readings: 3 })
        );
        assert_eq!(report.outcome_of(1001), Some(CapsuleOutcome::Unpowered));
    }

    #[test]
    fn survey_under_quiet_plan_matches_plain_survey_outcomes() {
        let mut rng_a = StdRng::seed_from_u64(13);
        let mut wall_a = SelfSensingWall::common_wall(&[0.5, 1.0]);
        let plain = SurveyOptions::new()
            .tx_voltage(200.0)
            .run(&mut wall_a, &mut rng_a)
            .unwrap();

        let mut rng_b = StdRng::seed_from_u64(13);
        let mut wall_b = SelfSensingWall::common_wall(&[0.5, 1.0]);
        let quiet = FaultPlan::quiet();
        let faulted = SurveyOptions::new()
            .tx_voltage(200.0)
            .fault_plan(&quiet)
            .retry_policy(RetryPolicy::none())
            .run(&mut wall_b, &mut rng_b)
            .unwrap();
        assert_eq!(faulted.powered_ids, plain.powered_ids);
        assert_eq!(faulted.readings.len(), plain.readings.len());
        assert!(faulted
            .outcomes
            .iter()
            .all(|(_, o)| matches!(o, CapsuleOutcome::Read { .. })));
    }

    #[test]
    fn survey_under_is_bit_identical_across_worker_counts() {
        let plan = FaultPlan::generate(99, &faults::FaultIntensity::moderate(4000));
        let run = |pool: &Pool| {
            let mut rng = StdRng::seed_from_u64(21);
            let mut wall = SelfSensingWall::common_wall(&[0.5, 1.0, 1.5]);
            SurveyOptions::new()
                .tx_voltage(200.0)
                .fault_plan(&plan)
                .retry_policy(RetryPolicy::paper_default())
                .pool(*pool)
                .run(&mut wall, &mut rng)
                .unwrap()
                .digest()
        };
        let reference = run(&Pool::serial());
        for workers in [2, exec::Pool::max_parallel().workers()] {
            assert_eq!(run(&Pool::new(workers)), reference, "workers={workers}");
        }
    }

    #[test]
    fn charging_brownout_reports_unpowered() {
        use faults::{FaultKind, FaultWindow};
        // Slot 0 is capsule 1000's charge slot; brown it out.
        let plan = FaultPlan::from_windows(
            0,
            10_000,
            vec![FaultWindow {
                kind: FaultKind::Brownout,
                start_slot: 0,
                len_slots: 1,
                magnitude: 0.0,
            }],
        );
        let mut rng = StdRng::seed_from_u64(4);
        let mut wall = SelfSensingWall::common_wall(&[0.5, 1.0]);
        let report = SurveyOptions::new()
            .tx_voltage(200.0)
            .fault_plan(&plan)
            .retry_policy(RetryPolicy::paper_default())
            .run(&mut wall, &mut rng)
            .unwrap();
        assert_eq!(report.outcome_of(1000), Some(CapsuleOutcome::Unpowered));
        assert_eq!(
            report.outcome_of(1001),
            Some(CapsuleOutcome::Read { readings: 3 }),
            "the fault is a window, not a verdict on the whole wall"
        );
    }

    #[test]
    fn far_capsules_stay_dark_at_low_voltage() {
        let mut rng = StdRng::seed_from_u64(2);
        // 0.5 m powers up at 50 V; 4 m does not (Fig 12: ~1.3 m at 50 V).
        let mut wall = SelfSensingWall::common_wall(&[0.5, 4.0]);
        let report = SurveyOptions::new()
            .tx_voltage(50.0)
            .run(&mut wall, &mut rng)
            .unwrap();
        assert_eq!(report.powered_ids, vec![1000]);
        assert_eq!(report.inventoried_ids, vec![1000]);
    }

    #[test]
    fn raising_voltage_extends_coverage() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut wall_lo = SelfSensingWall::common_wall(&[3.0]);
        assert!(SurveyOptions::new()
            .tx_voltage(50.0)
            .run(&mut wall_lo, &mut rng)
            .unwrap()
            .powered_ids
            .is_empty());
        let mut wall_hi = SelfSensingWall::common_wall(&[3.0]);
        assert_eq!(
            SurveyOptions::new()
                .tx_voltage(250.0)
                .run(&mut wall_hi, &mut rng)
                .unwrap()
                .powered_ids,
            vec![1000]
        );
    }

    #[test]
    fn fig17_throughput_ordering() {
        let nc = throughput_for_grade(ConcreteGrade::Nc);
        let uhpc = throughput_for_grade(ConcreteGrade::Uhpc);
        let uhpfrc = throughput_for_grade(ConcreteGrade::Uhpfrc);
        assert!(nc >= 12.5e3, "NC {nc}");
        assert!(uhpc > nc, "UHPC {uhpc} vs NC {nc}");
        assert!(uhpfrc >= uhpc, "UHPFRC {uhpfrc}");
        // "about 2 kbps higher" — allow 1–4 kbps.
        assert!((1e3..4.5e3).contains(&(uhpc - nc)), "gap {}", uhpc - nc);
    }

    #[test]
    fn fig22_waveform_shape() {
        let w = fig22_waveform(4e-3, 1000.0, 10e-3);
        // Before 4 ms: flat CBW envelope; after: two alternating levels.
        let before: Vec<f64> = w
            .iter()
            .filter(|(t, _)| *t > 1e-3 && *t < 3.5e-3)
            .map(|(_, v)| *v)
            .collect();
        let spread_before = before.iter().cloned().fold(f64::MIN, f64::max)
            - before.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread_before < 12.0, "lead should be flat: {spread_before}");
        let after: Vec<f64> = w
            .iter()
            .filter(|(t, _)| *t > 5e-3)
            .map(|(_, v)| *v)
            .collect();
        let hi = after.iter().cloned().fold(f64::MIN, f64::max);
        let lo = after.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            hi - lo > 30.0,
            "switching must modulate the envelope: {hi}-{lo}"
        );
    }

    #[test]
    fn monitoring_campaign_detects_a_developing_leak() {
        use shm::report::Severity;
        let mut rng = StdRng::seed_from_u64(9);
        let mut wall = SelfSensingWall::common_wall(&[0.6]);
        let mut campaign = MonitoringCampaign::new();
        // Monthly surveys over two years; the wall starts leaking at
        // month 8 and the member creeps throughout. (Monthly keeps the
        // waveform-level test fast; the analyses only need the trend.)
        for month in 0..24u32 {
            let t = month as f64 * 30.0 * 86_400.0;
            wall.environment.strain = 120e-6 * t / shm::damage::YEAR_S;
            wall.environment.humidity_percent = if month > 8 { 90.0 } else { 68.0 };
            campaign.survey_at(&mut wall, t, 150.0, &mut rng).unwrap();
        }
        let report = campaign.report_for(1000);
        assert!(
            report.severity() >= Severity::Warning,
            "campaign must flag the wall:\n{}",
            report.render()
        );
        let text = report.render();
        assert!(text.contains("strain drifting"), "{text}");
        assert!(text.contains("corrosion"), "{text}");
    }

    #[test]
    fn fig16_point_matches_component_models() {
        let (eco, pab, u2b) = fig16_point(2e3);
        assert!(eco > pab, "EcoCapsule above PAB at 2 kbps");
        assert!(eco > u2b, "EcoCapsule above U²B at 2 kbps");
    }
}

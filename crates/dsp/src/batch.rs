//! Batched (structure-of-arrays) execution kernels for the survey hot
//! path, and the [`Engine`] switch that selects them.
//!
//! A survey spends almost all of its wall time in four per-capsule
//! stages: uplink waveform synthesis (two `sin` calls per sample),
//! carrier estimation + digital downconversion (an FFT and two more
//! trig calls per sample), the matched-filter FM0 preamble search (an
//! `O(n·m)` sliding dot product — ~2×10⁸ multiply-adds per read at the
//! paper's 1 kbps / 1 MS/s operating point), and harvester integration.
//! This module restructures those loops so the work that is *identical
//! across capsules, slots and retries* is computed once and shared as
//! contiguous `f64` lanes:
//!
//! - [`sin_table`] — cached carrier/backscatter tone banks, so waveform
//!   synthesis indexes a shared table instead of calling `sin` per
//!   sample (the `channel` crate's banked uplink path);
//! - [`best_match_exact`] — a two-pass matched filter that prescans all
//!   lags against a run-length-encoded template via prefix sums
//!   (`O(n·segments)`), then rescores only the surviving candidate lags
//!   with the *scalar* kernel, so the result is **bit-identical** to
//!   [`crate::correlate::best_match`] while skipping ≥ 99% of the
//!   multiply-adds;
//! - [`WaveMemo`] — an exact-key memo for deterministic waveforms (the
//!   reader's downlink command synthesis), so a command retransmitted to
//!   every capsule in a wall is synthesized once per survey, not once
//!   per transaction;
//! - [`DdcScratch`] — allocation-free downconversion into reused
//!   buffers for capture batches;
//! - [`Harvester`-style lane loops](crate::batch#lanes) — per-lane
//!   arithmetic kept in the scalar order so SoA traversal stays
//!   bit-identical (see `node::harvester::simulate_store_lanes`).
//!
//! # The hot-path contract
//!
//! Every `f64` kernel here is **bit-exact** against its scalar
//! counterpart: caching and batching change *when* and *how often* an
//! expression is evaluated, never *which* expression is evaluated or in
//! what order its floating-point operations combine. Survey digests,
//! golden fixtures and recorded traces are therefore identical under
//! either [`Engine`]. The only approximate kernel is the explicitly
//! `f32`-suffixed ablation path ([`tone_f32`]), which is **not** used by
//! any default pipeline and carries a documented, property-tested error
//! bound. DESIGN.md §8 states the full contract.
//!
//! # Lanes
//!
//! SoA ("lane") traversal is bit-identical whenever the per-lane
//! recurrence never mixes lanes: iterating `for t { for lane }` performs
//! exactly the same per-lane operation sequence as `for lane { for t }`.
//! Kernels in other crates that batch per-capsule state (link-budget
//! voltage lanes, harvester storage lanes) rely on this rule and cite
//! this module.
//!
//! # Round trip
//!
//! A batch-synthesized capture decodes through the shared-table and
//! exact-matched-filter kernels end to end:
//!
//! ```
//! use ecocapsule_dsp::{batch, correlate, ddc, stats};
//!
//! let (fs, fc) = (1.0e6, 230e3);
//! let w = 2.0 * std::f64::consts::PI * fc / fs;
//!
//! // Batched synthesis: one shared tone bank instead of per-sample sin.
//! // FM0-ish ±1 preamble, 500 samples per symbol, AM depth 0.3.
//! let pattern = [1.0, -1.0, 1.0, -1.0, 1.0, 1.0];
//! let n = 20_000;
//! let start = 7_500;
//! let bank = batch::sin_table(w, 0.0, n);
//! let capture: Vec<f64> = (0..n)
//!     .map(|i| {
//!         let k = i.wrapping_sub(start) / 500;
//!         let m = if i >= start && k < pattern.len() { pattern[k] } else { 0.0 };
//!         (1.0 + 0.3 * m) * bank[i]
//!     })
//!     .collect();
//!
//! // Decode: carrier estimate -> envelope -> exact fast preamble search.
//! let carrier = ddc::estimate_carrier_hz(&capture, fs).expect("carrier");
//! let mag = ddc::baseband_magnitude(&capture, carrier, 1e-4, fs);
//! let mean = stats::mean(&mag);
//! let baseband: Vec<f64> = mag.iter().map(|&x| x - mean).collect();
//! let template: Vec<f64> = pattern.iter().flat_map(|&v| [v; 500]).collect();
//!
//! let fast = batch::best_match_exact(&baseband, &template).expect("fits");
//! let scalar = correlate::best_match(&baseband, &template).expect("fits");
//! assert_eq!(fast.0, scalar.0, "same lag");
//! assert_eq!(fast.1.to_bits(), scalar.1.to_bits(), "bit-identical score");
//! assert!((fast.0 as i64 - start as i64).abs() < 500, "found the pattern");
//! ```

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use crate::correlate;

/// Which implementation of the survey hot path runs.
///
/// The batched engine is the default; the scalar engine is the reference
/// implementation kept for differential testing (the `tests` crate
/// asserts digest identity between the two on quiet and faulted surveys
/// at several worker counts). Both produce bit-identical results — see
/// the [module docs](crate::batch) for the contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// Reference per-sample scalar loops (no shared tables, no memos).
    Scalar,
    /// Structure-of-arrays batches with shared tone banks, waveform
    /// memos and the exact fast matched filter.
    #[default]
    Batched,
}

impl Engine {
    /// Whether this engine uses the batched kernels.
    #[must_use]
    pub fn is_batched(self) -> bool {
        matches!(self, Engine::Batched)
    }
}

/// Locks a cache mutex, treating poisoning as benign: the maps are only
/// mutated by single-statement inserts, so a panicking thread cannot
/// leave them half-updated (same policy as [`crate::plan`]).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // lint:allow(no-lock-in-hotpath) cache probe only: the lock guards an O(1) HashMap lookup/insert and is released before any table is built or read
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------
// Shared tone banks
// ---------------------------------------------------------------------

struct SinTableCache {
    tables: HashMap<(u64, u64), Arc<Vec<f64>>>,
    hits: u64,
    misses: u64,
}

static SIN_TABLES: OnceLock<Mutex<SinTableCache>> = OnceLock::new();

/// Maximum number of distinct `(omega, offset)` tone banks kept
/// resident. Beyond the cap a table is built fresh and *not* inserted,
/// so a fault sweep over many propagation delays cannot grow the cache
/// without bound (each bank is `len` × 8 bytes).
const SIN_TABLE_CAP: usize = 32;

fn sin_cache() -> &'static Mutex<SinTableCache> {
    SIN_TABLES.get_or_init(|| {
        Mutex::new(SinTableCache {
            tables: HashMap::new(),
            hits: 0,
            misses: 0,
        })
    })
}

fn build_sin_table(omega: f64, offset: f64, len: usize) -> Vec<f64> {
    (0..len)
        .map(|i| (omega * (i as f64 - offset)).sin())
        .collect()
}

/// The shared tone bank `table[i] = sin(omega · (i − offset))` with at
/// least `len` entries, built once per `(omega, offset)` pair and
/// cached.
///
/// The per-entry expression is written exactly as the scalar synthesis
/// loops write it (`(omega * (i as f64 - offset)).sin()`), so indexing
/// the bank yields the **bit-identical** value the scalar path would
/// have computed — the contract the banked uplink synthesizer in
/// `channel` depends on. A cached bank shorter than `len` is rebuilt at
/// the next power of two ≥ `len`, so repeated growth is amortized; the
/// extra entries of a longer cached bank are simply ignored by shorter
/// captures (entry `i` depends only on `i`, never on the bank length).
#[must_use]
pub fn sin_table(omega: f64, offset: f64, len: usize) -> Arc<Vec<f64>> {
    let key = (omega.to_bits(), offset.to_bits());
    let cache = sin_cache();
    let over_cap;
    {
        let mut c = lock(cache);
        let cached = c
            .tables
            .get(&key)
            .filter(|t| t.len() >= len)
            .map(Arc::clone);
        if let Some(t) = cached {
            c.hits += 1;
            return t;
        }
        c.misses += 1;
        over_cap = c.tables.len() >= SIN_TABLE_CAP && !c.tables.contains_key(&key);
    }
    if over_cap {
        return Arc::new(build_sin_table(omega, offset, len));
    }
    // Build outside the lock (plan-cache policy); round the length up so
    // growth across capture sizes is amortized.
    let padded = len.next_power_of_two().max(1024);
    let fresh = Arc::new(build_sin_table(omega, offset, padded));
    let mut c = lock(cache);
    let slot = c.tables.entry(key).or_insert_with(|| Arc::clone(&fresh));
    if slot.len() < len {
        *slot = Arc::clone(&fresh);
    }
    Arc::clone(slot)
}

/// Current [`crate::plan::CacheStats`] of the tone-bank cache.
#[must_use]
pub fn sin_table_stats() -> crate::plan::CacheStats {
    let c = lock(sin_cache());
    crate::plan::CacheStats {
        hits: c.hits,
        misses: c.misses,
        entries: c.tables.len(),
    }
}

// ---------------------------------------------------------------------
// Exact fast matched filter
// ---------------------------------------------------------------------

/// Templates with more piecewise-constant runs than this take the plain
/// scalar scan — the prefix-sum prescan only pays off when the template
/// compresses well (FM0 preambles compress to ~13 runs).
const MAX_SEGMENTS: usize = 64;

/// Prescan margin on normalized scores. The prescan evaluates each
/// lag's correlation by segment-wise prefix-sum differences, which
/// reassociates the scalar summation; the reassociation error on a
/// normalized score is bounded far below this margin (≲ 1e-9 for the
/// receiver's capture scales — see DESIGN.md §8), so every lag whose
/// exact score could compete is kept as a candidate.
const PRESCAN_MARGIN: f64 = 1e-6;

/// If the prescan keeps more candidate lags than this, the signal is
/// pathologically self-similar and rescoring would approach the full
/// scan anyway — fall back to the scalar kernel outright.
const MAX_CANDIDATES: usize = 1024;

/// Run-length encodes a template into `(value, start, end)` runs.
/// Returns `None` when the template does not compress (not worth the
/// prescan) or is empty.
fn template_segments(template: &[f64]) -> Option<Vec<(f64, usize, usize)>> {
    let first = *template.first()?;
    let mut segs: Vec<(f64, usize, usize)> = Vec::new();
    let mut run_val = first;
    let mut run_start = 0usize;
    for (i, &v) in template.iter().enumerate().skip(1) {
        if v.to_bits() != run_val.to_bits() {
            segs.push((run_val, run_start, i));
            if segs.len() > MAX_SEGMENTS {
                return None;
            }
            run_val = v;
            run_start = i;
        }
    }
    segs.push((run_val, run_start, template.len()));
    if segs.len() > MAX_SEGMENTS || segs.len() * 4 > template.len() {
        return None;
    }
    Some(segs)
}

/// Bit-identical fast variant of [`crate::correlate::best_match`]:
/// lag of the best normalized match of `template` within `signal`
/// (largest |score|), returning `(lag, score)` or `None` when the
/// template doesn't fit.
///
/// Two passes replace the `O(n·m)` sliding dot product:
///
/// 1. **Prescan** — the template is run-length encoded into
///    piecewise-constant segments; each lag's correlation is then a sum
///    of `segments` prefix-sum differences instead of `m` multiply-adds
///    (`O(n·segments)` total). Window energies reuse the *identical*
///    energy prefix sum the scalar kernel builds.
/// 2. **Rescore** — every lag whose prescanned |score| is within
///    `PRESCAN_MARGIN` (1e-6) of the prescan maximum (a superset of the true
///    argmax, since prefix-sum reassociation perturbs a normalized
///    score by orders of magnitude less than the margin) is rescored in
///    ascending lag order with the *scalar* dot product and the scalar
///    selection rule (`score.abs() > best_abs`, strict, so the earliest
///    maximal lag wins exactly as in the full scan).
///
/// Templates that don't compress into few constant runs, and
/// pathologically self-similar signals that keep more than
/// `MAX_CANDIDATES` (1024) lags, fall back to the scalar kernel — the result
/// is the scalar result in every case, only faster in the common one.
#[must_use]
pub fn best_match_exact(signal: &[f64], template: &[f64]) -> Option<(usize, f64)> {
    if template.is_empty() || template.len() > signal.len() {
        return None;
    }
    let m = template.len();
    let Some(segs) = template_segments(template) else {
        return correlate::best_match(signal, template);
    };
    let et = correlate::dot(template, template);
    if et <= 0.0 {
        return Some((0, 0.0));
    }
    // Energy prefix (identical construction to the scalar kernel) and a
    // value prefix for the segment dots.
    let mut e_acc = 0.0f64;
    let mut v_acc = 0.0f64;
    let mut e_prefix = Vec::with_capacity(signal.len() + 1);
    let mut v_prefix = Vec::with_capacity(signal.len() + 1);
    e_prefix.push(0.0f64);
    v_prefix.push(0.0f64);
    for &x in signal {
        e_acc += x * x;
        v_acc += x;
        e_prefix.push(e_acc);
        v_prefix.push(v_acc);
    }
    let lags = signal.len() - m + 1;

    // Pass 1: prescan every lag in O(segments).
    let mut approx = Vec::with_capacity(lags);
    let mut max_abs = f64::NEG_INFINITY;
    for lag in 0..lags {
        let es = match (e_prefix.get(lag + m), e_prefix.get(lag)) {
            (Some(hi), Some(lo)) => hi - lo,
            _ => 0.0,
        };
        if es <= 0.0 {
            approx.push(f64::NEG_INFINITY);
            continue;
        }
        let mut adot = 0.0f64;
        for &(v, s, e) in &segs {
            let hi = v_prefix.get(lag + e).copied().unwrap_or(0.0);
            let lo = v_prefix.get(lag + s).copied().unwrap_or(0.0);
            adot += v * (hi - lo);
        }
        let a = (adot / (es * et).sqrt()).abs();
        if a > max_abs {
            max_abs = a;
        }
        approx.push(a);
    }
    if !max_abs.is_finite() {
        // Every window had zero energy: the scalar kernel's best never
        // updates and it returns the initial (0, 0.0).
        return Some((0, 0.0));
    }

    // Pass 2: exact rescore of the candidate superset, scalar rules.
    let cutoff = max_abs - PRESCAN_MARGIN;
    let mut best = (0usize, 0.0f64);
    let mut best_abs = f64::NEG_INFINITY;
    let mut candidates = 0usize;
    for (lag, &a) in approx.iter().enumerate() {
        if a < cutoff {
            continue;
        }
        candidates += 1;
        if candidates > MAX_CANDIDATES {
            return correlate::best_match(signal, template);
        }
        let es = match (e_prefix.get(lag + m), e_prefix.get(lag)) {
            (Some(hi), Some(lo)) => hi - lo,
            _ => continue,
        };
        if es <= 0.0 {
            continue;
        }
        let win = signal.get(lag..lag + m)?;
        let score = correlate::dot(win, template) / (es * et).sqrt();
        if score.abs() > best_abs {
            best_abs = score.abs();
            best = (lag, score);
        }
    }
    Some(best)
}

// ---------------------------------------------------------------------
// Exact-key waveform memo
// ---------------------------------------------------------------------

struct MemoInner {
    map: HashMap<Vec<u64>, Arc<Vec<f64>>>,
    hits: u64,
    misses: u64,
}

/// A bounded memo for deterministic waveforms, keyed by the **exact
/// bits** of every parameter that shapes the waveform (no hashing
/// collisions can substitute one waveform for another — the key is the
/// parameter vector itself).
///
/// The reader's batched downlink path uses a static `WaveMemo` so a
/// command waveform broadcast to every capsule in a wall — and retried
/// across fault slots — is synthesized once. Entries beyond `cap` are
/// computed but not inserted, bounding residency; there is no eviction,
/// matching the [`crate::plan`] cache policy.
pub struct WaveMemo {
    inner: OnceLock<Mutex<MemoInner>>,
    cap: usize,
}

impl std::fmt::Debug for WaveMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaveMemo").field("cap", &self.cap).finish()
    }
}

impl WaveMemo {
    /// A memo holding at most `cap` waveforms. `const`, so it can back a
    /// `static`.
    #[must_use]
    pub const fn new(cap: usize) -> Self {
        WaveMemo {
            inner: OnceLock::new(),
            cap,
        }
    }

    fn inner(&self) -> &Mutex<MemoInner> {
        self.inner.get_or_init(|| {
            Mutex::new(MemoInner {
                map: HashMap::new(),
                hits: 0,
                misses: 0,
            })
        })
    }

    /// The waveform for `key`, built by `build` on first use.
    ///
    /// `build` must be a pure function of `key` — the memo returns a
    /// cached waveform for an equal key without calling it again.
    pub fn get_or_compute(&self, key: &[u64], build: impl FnOnce() -> Vec<f64>) -> Arc<Vec<f64>> {
        let cache = self.inner();
        let over_cap;
        {
            let mut c = lock(cache);
            let cached = c.map.get(key).map(Arc::clone);
            if let Some(w) = cached {
                c.hits += 1;
                return w;
            }
            c.misses += 1;
            over_cap = c.map.len() >= self.cap;
        }
        let fresh = Arc::new(build());
        if over_cap {
            return fresh;
        }
        let mut c = lock(cache);
        Arc::clone(c.map.entry(key.to_vec()).or_insert(fresh))
    }

    /// Current [`crate::plan::CacheStats`] of this memo.
    #[must_use]
    pub fn stats(&self) -> crate::plan::CacheStats {
        let c = lock(self.inner());
        crate::plan::CacheStats {
            hits: c.hits,
            misses: c.misses,
            entries: c.map.len(),
        }
    }
}

// ---------------------------------------------------------------------
// Allocation-free downconversion scratch
// ---------------------------------------------------------------------

/// Reusable output buffer for batched digital downconversion: decoding a
/// batch of captures reuses one allocation instead of allocating a
/// magnitude vector per capture.
///
/// The arithmetic is byte-for-byte the loop in
/// [`crate::ddc::baseband_magnitude`]; only the destination differs, so
/// outputs are bit-identical to the allocating path.
#[derive(Debug, Default)]
pub struct DdcScratch {
    mag: Vec<f64>,
}

impl DdcScratch {
    /// An empty scratch; buffers grow to the largest capture seen.
    #[must_use]
    pub fn new() -> Self {
        DdcScratch::default()
    }

    /// [`crate::ddc::baseband_magnitude`] into the reused buffer.
    /// Returns the magnitude slice (valid until the next call).
    pub fn baseband_magnitude(
        &mut self,
        signal: &[f64],
        carrier_hz: f64,
        tau_s: f64,
        fs_hz: f64,
    ) -> &[f64] {
        use crate::filter::OnePole;
        let w = 2.0 * std::f64::consts::PI * carrier_hz / fs_hz;
        let mut rc_i = OnePole::new(tau_s, fs_hz);
        let mut rc_q = OnePole::new(tau_s, fs_hz);
        self.mag.clear();
        self.mag.reserve(signal.len());
        self.mag.extend(signal.iter().enumerate().map(|(n, &x)| {
            let ph = w * n as f64;
            let i = rc_i.step(x * ph.cos());
            let q = rc_q.step(-x * ph.sin());
            2.0 * i.hypot(q)
        }));
        &self.mag
    }
}

// ---------------------------------------------------------------------
// f32 ablation lane
// ---------------------------------------------------------------------

/// Worst-case absolute error of [`tone_f32`] against the `f64` tone
/// bank: one `f64 → f32` rounding of a value in `[-1, 1]`, i.e. half an
/// `f32` ulp at magnitude 1 (`2⁻²⁵ ≈ 3·10⁻⁸`), property-tested with
/// headroom in the workspace `fuzz` suite.
pub const TONE_F32_MAX_ABS_ERR: f64 = 6e-8;

/// `f32` variant of [`sin_table`] for storage-halved ablation lanes:
/// `table[i] = sin(omega · (i − offset)) as f32`.
///
/// **Not** used by any default pipeline — the survey engines are `f64`
/// and bit-exact. This kernel exists so the hot-path bench can quantify
/// what an `f32` synthesis lane would trade: half the table bytes
/// against a per-sample error within [`TONE_F32_MAX_ABS_ERR`].
#[must_use]
pub fn tone_f32(omega: f64, offset: f64, len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| (omega * (i as f64 - offset)).sin() as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_same(signal: &[f64], template: &[f64]) {
        let fast = best_match_exact(signal, template);
        let scalar = correlate::best_match(signal, template);
        match (fast, scalar) {
            (Some((fl, fs)), Some((sl, ss))) => {
                assert_eq!(fl, sl, "lag mismatch");
                assert_eq!(fs.to_bits(), ss.to_bits(), "score bits mismatch");
            }
            (f, s) => assert_eq!(f.is_none(), s.is_none(), "{f:?} vs {s:?}"),
        }
    }

    fn fm0_like_template(sps: usize) -> Vec<f64> {
        // The FM0 preamble 101011 with mid-symbol transitions.
        [
            1.0, -1.0, 1.0, -1.0, 1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0, -1.0,
        ]
        .iter()
        .flat_map(|&v| std::iter::repeat(v).take(sps / 2))
        .collect()
    }

    #[test]
    fn matches_scalar_on_noise() {
        let mut rng = StdRng::seed_from_u64(1);
        let template = fm0_like_template(40);
        for _ in 0..10 {
            let signal: Vec<f64> = (0..3000).map(|_| rng.gen_range(-1.0..1.0)).collect();
            assert_same(&signal, &template);
        }
    }

    #[test]
    fn matches_scalar_on_embedded_template() {
        let template = fm0_like_template(60);
        let mut rng = StdRng::seed_from_u64(2);
        let mut signal: Vec<f64> = (0..5000).map(|_| 0.05 * rng.gen_range(-1.0..1.0)).collect();
        for (i, &t) in template.iter().enumerate() {
            signal[1234 + i] += t;
        }
        let (lag, score) = best_match_exact(&signal, &template).expect("fits");
        assert_eq!(lag, 1234);
        assert!(score > 0.9);
        assert_same(&signal, &template);
    }

    #[test]
    fn matches_scalar_on_inverted_polarity() {
        let template = fm0_like_template(40);
        let mut rng = StdRng::seed_from_u64(3);
        let mut signal: Vec<f64> = (0..4000).map(|_| 0.05 * rng.gen_range(-1.0..1.0)).collect();
        for (i, &t) in template.iter().enumerate() {
            signal[800 + i] -= t; // inverted
        }
        let (lag, score) = best_match_exact(&signal, &template).expect("fits");
        assert_eq!(lag, 800);
        assert!(score < -0.9, "negative-polarity score {score}");
        assert_same(&signal, &template);
    }

    #[test]
    fn degenerate_inputs_match_scalar() {
        assert_same(&[1.0, 2.0], &[1.0, 2.0, 3.0]); // template longer -> None
        assert_same(&[1.0, 2.0, 3.0], &[]); // empty template -> None
        let sig = vec![1.0; 500];
        assert_same(&sig, &vec![0.0; 200]); // zero-energy template
    }

    #[test]
    fn all_zero_signal_matches_scalar() {
        // Every window has zero energy: scalar returns the initial (0, 0).
        let template = fm0_like_template(40);
        let signal = vec![0.0; 2000];
        assert_same(&signal, &template);
    }

    #[test]
    fn tie_dense_periodic_signal_matches_scalar() {
        // A signal that repeats the template everywhere produces masses of
        // near-equal scores; the candidate cap must fall back to the
        // scalar kernel and still agree bit-for-bit.
        let template = fm0_like_template(8);
        let signal: Vec<f64> = template.iter().cycle().take(4000).copied().collect();
        assert_same(&signal, &template);
    }

    #[test]
    fn incompressible_template_falls_back() {
        // A template with a distinct value per sample never compresses;
        // best_match_exact must silently take the scalar path.
        let template: Vec<f64> = (0..64).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let signal: Vec<f64> = (0..1000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        assert_same(&signal, &template);
    }

    #[test]
    fn sin_table_matches_scalar_expression() {
        let w = 2.0 * std::f64::consts::PI * 230e3 / 1.0e6;
        let offset = 515.0;
        let t = sin_table(w, offset, 2048);
        assert!(t.len() >= 2048);
        for i in (0..2048).step_by(97) {
            let scalar = (w * (i as f64 - offset)).sin();
            assert_eq!(t[i].to_bits(), scalar.to_bits(), "entry {i}");
        }
    }

    #[test]
    fn sin_table_grows_and_hits() {
        let w = 0.123_456_789;
        let before = sin_table_stats();
        let small = sin_table(w, 0.0, 100);
        let big = sin_table(w, 0.0, 5000);
        let again = sin_table(w, 0.0, 4000);
        let after = sin_table_stats();
        assert!(small.len() >= 100 && big.len() >= 5000);
        assert!(Arc::ptr_eq(&big, &again), "grown table is shared");
        assert!(after.hits > before.hits, "re-lookup hits");
        for i in (0..100).step_by(13) {
            assert_eq!(small[i].to_bits(), big[i].to_bits(), "growth is stable");
        }
    }

    #[test]
    fn wave_memo_builds_once_per_key() {
        static MEMO: WaveMemo = WaveMemo::new(8);
        let mut builds = 0;
        let a = MEMO.get_or_compute(&[1, 2, 3], || {
            builds += 1;
            vec![1.0, 2.0]
        });
        let b = MEMO.get_or_compute(&[1, 2, 3], || {
            builds += 1;
            vec![1.0, 2.0]
        });
        assert_eq!(builds, 1, "second lookup is a hit");
        assert!(Arc::ptr_eq(&a, &b));
        let c = MEMO.get_or_compute(&[9], || vec![9.0]);
        assert_eq!(*c, vec![9.0]);
        assert!(MEMO.stats().entries >= 2);
    }

    #[test]
    fn wave_memo_cap_bounds_residency() {
        static MEMO: WaveMemo = WaveMemo::new(2);
        for k in 0..10u64 {
            let w = MEMO.get_or_compute(&[k], || vec![k as f64]);
            assert_eq!(w[0] as u64, k, "over-cap entries still computed");
        }
        assert!(MEMO.stats().entries <= 2, "cap respected");
    }

    #[test]
    fn ddc_scratch_is_bit_identical_to_allocating_path() {
        let fs = 1.0e6;
        let sig: Vec<f64> = (0..5000)
            .map(|i| (2.0 * std::f64::consts::PI * 230e3 * i as f64 / fs).sin())
            .collect();
        let alloc = crate::ddc::baseband_magnitude(&sig, 230e3, 1e-4, fs);
        let mut scratch = DdcScratch::new();
        let a = scratch.baseband_magnitude(&sig, 230e3, 1e-4, fs).to_vec();
        let b = scratch.baseband_magnitude(&sig, 230e3, 1e-4, fs); // reuse
        assert_eq!(alloc.len(), b.len());
        for ((x, y), z) in alloc.iter().zip(&a).zip(b) {
            assert_eq!(x.to_bits(), y.to_bits());
            assert_eq!(x.to_bits(), z.to_bits());
        }
    }

    #[test]
    fn tone_f32_error_within_documented_bound() {
        let w = 2.0 * std::f64::consts::PI * 230e3 / 1.0e6;
        let t32 = tone_f32(w, 17.0, 4096);
        for (i, &v) in t32.iter().enumerate() {
            let exact = (w * (i as f64 - 17.0)).sin();
            assert!(
                (f64::from(v) - exact).abs() <= TONE_F32_MAX_ABS_ERR,
                "entry {i}: {v} vs {exact}"
            );
        }
    }

    #[cfg(feature = "fuzz")]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn best_match_exact_equals_scalar(
                seed in 0u64..1000,
                n in 200usize..1200,
                sps in 2usize..30,
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let template = fm0_like_template(sps.max(2) * 2);
                if template.len() <= n {
                    let mut signal: Vec<f64> =
                        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
                    if n > template.len() + 10 {
                        let at = seed as usize % (n - template.len());
                        for (i, &t) in template.iter().enumerate() {
                            signal[at + i] += t;
                        }
                    }
                    assert_same(&signal, &template);
                }
            }

            #[test]
            fn tone_f32_bound_holds(
                carrier in 1.0e3f64..5.0e5,
                offset in 0.0f64..2000.0,
            ) {
                let w = 2.0 * std::f64::consts::PI * carrier / 1.0e6;
                let t = tone_f32(w, offset, 512);
                for (i, &v) in t.iter().enumerate() {
                    let exact = (w * (i as f64 - offset)).sin();
                    prop_assert!((f64::from(v) - exact).abs() <= TONE_F32_MAX_ABS_ERR);
                }
            }
        }
    }
}

//! Minimal complex-number type.
//!
//! The allowed third-party crates don't include `num-complex`, and the DSP
//! layer only needs a small, predictable surface: arithmetic, polar
//! conversion, conjugation and magnitude. Implemented over `f64` only —
//! the simulator never needs `f32` precision trade-offs.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` over `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates.
    pub fn from_polar(mag: f64, phase_rad: f64) -> Self {
        Complex::new(mag * phase_rad.cos(), mag * phase_rad.sin())
    }

    /// `e^{iθ}` — a unit phasor at angle `theta_rad`.
    pub fn cis(theta_rad: f64) -> Self {
        Complex::from_polar(1.0, theta_rad)
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (avoids the square root).
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Multiplicative inverse. Returns non-finite components if `self` is zero.
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        // Branch cut along the negative real axis (principal branch).
        let m = self.abs();
        let re = ((m + self.re) / 2.0).max(0.0).sqrt();
        let im = ((m - self.re) / 2.0).max(0.0).sqrt();
        Complex::new(re, if self.im < 0.0 { -im } else { im })
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// True when both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_re(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "fuzz")]
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(Complex::I * Complex::I, Complex::new(-1.0, 0.0));
        assert!(close(z.abs(), 5.0));
        assert!(close(z.norm_sqr(), 25.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!(close(z.abs(), 2.0));
        assert!(close(z.arg(), std::f64::consts::FRAC_PI_3));
    }

    #[test]
    fn division_inverse() {
        let z = Complex::new(1.5, -2.5);
        let q = z / z;
        assert!(close(q.re, 1.0) && close(q.im, 0.0));
    }

    #[test]
    fn sqrt_of_negative_real_is_imaginary() {
        let z = Complex::from_re(-4.0).sqrt();
        assert!(close(z.re, 0.0));
        assert!(close(z.im, 2.0));
    }

    #[test]
    fn sqrt_principal_branch_negative_imaginary() {
        let z = Complex::new(0.0, -2.0).sqrt();
        // sqrt(-2i) = 1 - i
        assert!(close(z.re, 1.0));
        assert!(close(z.im, -1.0));
    }

    #[test]
    fn exp_of_imaginary_is_unit_circle() {
        let z = Complex::new(0.0, std::f64::consts::PI).exp();
        assert!((z.re + 1.0).abs() < 1e-12);
        assert!(z.im.abs() < 1e-12);
    }

    #[cfg(feature = "fuzz")]
    proptest! {
        #[test]
        fn sqrt_squares_back(re in -1e3f64..1e3, im in -1e3f64..1e3) {
            let z = Complex::new(re, im);
            let s = z.sqrt();
            let back = s * s;
            prop_assert!((back.re - z.re).abs() < 1e-6 * (1.0 + z.abs()));
            prop_assert!((back.im - z.im).abs() < 1e-6 * (1.0 + z.abs()));
        }

        #[test]
        fn mul_commutes(a in -1e3f64..1e3, b in -1e3f64..1e3,
                        c in -1e3f64..1e3, d in -1e3f64..1e3) {
            let x = Complex::new(a, b);
            let y = Complex::new(c, d);
            let p = x * y;
            let q = y * x;
            prop_assert!((p.re - q.re).abs() < 1e-9);
            prop_assert!((p.im - q.im).abs() < 1e-9);
        }

        #[test]
        fn conj_preserves_magnitude(a in -1e3f64..1e3, b in -1e3f64..1e3) {
            let z = Complex::new(a, b);
            prop_assert!((z.conj().abs() - z.abs()).abs() < 1e-12);
        }
    }
}

//! Correlation and matched filtering.
//!
//! The maximum-likelihood FM0 decoder correlates each symbol window with
//! the candidate FM0 basis waveforms; these helpers implement the inner
//! products and the preamble search.
//!
//! Two evaluation strategies coexist: the direct `O(n·m)` sliding dot
//! product (exact, used by the decoder so symbol decisions stay
//! bit-stable) and an FFT overlap method on cached [`crate::plan`] plans
//! (`O(n log n)`, used automatically by [`cross_correlate`] for long
//! template/signal pairs where the direct scan would dominate a sweep).

use crate::complex::Complex;
use crate::plan;

/// Above this `signal_len · template_len` product, [`cross_correlate`]
/// switches from the direct sliding dot product to the FFT method. The
/// crossover is conservative: small decoder templates (tens of samples)
/// always take the exact direct path.
const FFT_CORR_THRESHOLD_OPS: usize = 1 << 22;

/// Inner product of two equal-length slices.
///
/// Panics if the lengths differ (caller bug).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Normalized correlation coefficient in [-1, 1]; 0 when either side has
/// zero energy.
pub fn normalized_correlation(a: &[f64], b: &[f64]) -> f64 {
    let ea = dot(a, a);
    let eb = dot(b, b);
    if ea <= 0.0 || eb <= 0.0 {
        return 0.0;
    }
    dot(a, b) / (ea * eb).sqrt()
}

/// Full cross-correlation of `signal` against `template` for all lags in
/// `0..=signal.len()-template.len()`. Returns the raw correlation values.
///
/// Dispatches to [`cross_correlate_fft`] when the direct scan would cost
/// more than `FFT_CORR_THRESHOLD_OPS` multiply-adds; both strategies
/// agree to within normal floating-point roundoff.
pub fn cross_correlate(signal: &[f64], template: &[f64]) -> Vec<f64> {
    if template.is_empty() || template.len() > signal.len() {
        return Vec::new();
    }
    if signal.len().saturating_mul(template.len()) > FFT_CORR_THRESHOLD_OPS {
        if let Ok(out) = cross_correlate_fft(signal, template) {
            return out;
        }
    }
    signal
        .windows(template.len())
        .map(|win| dot(win, template))
        .collect()
}

/// FFT-based cross-correlation on cached power-of-two plans.
///
/// Computes `IFFT(FFT(signal) · conj(FFT(template)))` zero-padded to the
/// next power of two ≥ `signal.len() + template.len() - 1` and truncates
/// to the valid lags, so the result matches [`cross_correlate`]'s direct
/// scan up to roundoff in `O((n+m) log (n+m))` instead of `O(n·m)`.
/// Returns an empty vector when the template is empty or longer than the
/// signal.
#[must_use]
pub fn cross_correlate_fft(signal: &[f64], template: &[f64]) -> crate::EcoResult<Vec<f64>> {
    if template.is_empty() || template.len() > signal.len() {
        return Ok(Vec::new());
    }
    let lags = signal.len() - template.len() + 1;
    let m = (signal.len() + template.len() - 1).next_power_of_two();
    let fft_plan = plan::plan_for(m)?;
    let mut sig_f = vec![Complex::ZERO; m];
    for (slot, &x) in sig_f.iter_mut().zip(signal) {
        *slot = Complex::from_re(x);
    }
    let mut tpl_f = vec![Complex::ZERO; m];
    for (slot, &x) in tpl_f.iter_mut().zip(template) {
        *slot = Complex::from_re(x);
    }
    fft_plan.process(&mut sig_f, false)?;
    fft_plan.process(&mut tpl_f, false)?;
    for (s, t) in sig_f.iter_mut().zip(tpl_f.iter()) {
        *s *= t.conj();
    }
    fft_plan.process(&mut sig_f, true)?;
    Ok(sig_f.iter().take(lags).map(|z| z.re).collect())
}

/// Lag of the best normalized match of `template` within `signal`
/// (largest |score|, so an inverted-polarity match wins too).
/// Returns `(lag, score)`; `None` when the template doesn't fit.
///
/// Window energies come from a prefix-sum, so the scan is O(n·m) for the
/// dot products but O(n) for the normalization — fast enough for the
/// receiver's symbol-rate preamble searches.
pub fn best_match(signal: &[f64], template: &[f64]) -> Option<(usize, f64)> {
    if template.is_empty() || template.len() > signal.len() {
        return None;
    }
    let m = template.len();
    let et = dot(template, template);
    if et <= 0.0 {
        return Some((0, 0.0));
    }
    // Prefix sums of signal energy for O(1) window energy.
    let mut acc = 0.0f64;
    let mut prefix = Vec::with_capacity(signal.len() + 1);
    prefix.push(0.0f64);
    for &x in signal {
        acc += x * x;
        prefix.push(acc);
    }
    // prefix[lag + m] - prefix[lag] pairs come from zipping the prefix
    // array against itself shifted by m, in lockstep with the windows.
    let mut best = (0usize, 0.0f64);
    let mut best_abs = f64::NEG_INFINITY;
    for (lag, (win, (e_lo, e_hi))) in signal
        .windows(m)
        .zip(prefix.iter().zip(prefix.iter().skip(m)))
        .enumerate()
    {
        let es = e_hi - e_lo;
        if es <= 0.0 {
            continue;
        }
        let score = dot(win, template) / (es * et).sqrt();
        if score.abs() > best_abs {
            best_abs = score.abs();
            best = (lag, score);
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basics() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn normalized_correlation_bounds() {
        let a = [1.0, -1.0, 1.0, -1.0];
        assert!((normalized_correlation(&a, &a) - 1.0).abs() < 1e-12);
        let b: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((normalized_correlation(&a, &b) + 1.0).abs() < 1e-12);
        assert_eq!(normalized_correlation(&a, &[0.0; 4]), 0.0);
    }

    #[test]
    fn best_match_finds_embedded_template() {
        let template = [1.0, 1.0, -1.0, -1.0, 1.0, -1.0];
        let mut signal = vec![0.01; 100];
        for (i, &t) in template.iter().enumerate() {
            signal[42 + i] = t;
        }
        let (lag, score) = best_match(&signal, &template).unwrap();
        assert_eq!(lag, 42);
        assert!(score > 0.99);
    }

    #[test]
    fn best_match_none_when_template_longer() {
        assert!(best_match(&[1.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn cross_correlate_length() {
        let s = vec![0.0; 10];
        let t = vec![1.0; 3];
        assert_eq!(cross_correlate(&s, &t).len(), 8);
        assert!(cross_correlate(&t, &s).is_empty());
    }

    #[test]
    fn fft_correlation_matches_direct_scan() {
        let signal: Vec<f64> = (0..500).map(|i| (i as f64 * 0.37).sin()).collect();
        let template: Vec<f64> = (0..40).map(|i| (i as f64 * 0.71).cos()).collect();
        let direct: Vec<f64> = signal
            .windows(template.len())
            .map(|win| dot(win, &template))
            .collect();
        let fast = cross_correlate_fft(&signal, &template).unwrap();
        assert_eq!(fast.len(), direct.len());
        for (a, b) in direct.iter().zip(fast.iter()) {
            assert!((a - b).abs() < 1e-9, "direct {a} vs fft {b}");
        }
    }

    #[test]
    fn fft_correlation_degenerate_inputs() {
        assert!(cross_correlate_fft(&[1.0, 2.0], &[]).unwrap().is_empty());
        assert!(cross_correlate_fft(&[1.0], &[1.0, 2.0]).unwrap().is_empty());
        let exact = cross_correlate_fft(&[3.0], &[2.0]).unwrap();
        assert_eq!(exact.len(), 1);
        assert!((exact[0] - 6.0).abs() < 1e-12);
    }
}

//! Correlation and matched filtering.
//!
//! The maximum-likelihood FM0 decoder correlates each symbol window with
//! the candidate FM0 basis waveforms; these helpers implement the inner
//! products and the preamble search.

/// Inner product of two equal-length slices.
///
/// Panics if the lengths differ (caller bug).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Normalized correlation coefficient in [-1, 1]; 0 when either side has
/// zero energy.
pub fn normalized_correlation(a: &[f64], b: &[f64]) -> f64 {
    let ea = dot(a, a);
    let eb = dot(b, b);
    if ea <= 0.0 || eb <= 0.0 {
        return 0.0;
    }
    dot(a, b) / (ea * eb).sqrt()
}

/// Full cross-correlation of `signal` against `template` for all lags in
/// `0..=signal.len()-template.len()`. Returns the raw correlation values.
pub fn cross_correlate(signal: &[f64], template: &[f64]) -> Vec<f64> {
    if template.is_empty() || template.len() > signal.len() {
        return Vec::new();
    }
    signal
        .windows(template.len())
        .map(|win| dot(win, template))
        .collect()
}

/// Lag of the best normalized match of `template` within `signal`
/// (largest |score|, so an inverted-polarity match wins too).
/// Returns `(lag, score)`; `None` when the template doesn't fit.
///
/// Window energies come from a prefix-sum, so the scan is O(n·m) for the
/// dot products but O(n) for the normalization — fast enough for the
/// receiver's symbol-rate preamble searches.
pub fn best_match(signal: &[f64], template: &[f64]) -> Option<(usize, f64)> {
    if template.is_empty() || template.len() > signal.len() {
        return None;
    }
    let m = template.len();
    let et = dot(template, template);
    if et <= 0.0 {
        return Some((0, 0.0));
    }
    // Prefix sums of signal energy for O(1) window energy.
    let mut acc = 0.0f64;
    let mut prefix = Vec::with_capacity(signal.len() + 1);
    prefix.push(0.0f64);
    for &x in signal {
        acc += x * x;
        prefix.push(acc);
    }
    // prefix[lag + m] - prefix[lag] pairs come from zipping the prefix
    // array against itself shifted by m, in lockstep with the windows.
    let mut best = (0usize, 0.0f64);
    let mut best_abs = f64::NEG_INFINITY;
    for (lag, (win, (e_lo, e_hi))) in signal
        .windows(m)
        .zip(prefix.iter().zip(prefix.iter().skip(m)))
        .enumerate()
    {
        let es = e_hi - e_lo;
        if es <= 0.0 {
            continue;
        }
        let score = dot(win, template) / (es * et).sqrt();
        if score.abs() > best_abs {
            best_abs = score.abs();
            best = (lag, score);
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basics() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn normalized_correlation_bounds() {
        let a = [1.0, -1.0, 1.0, -1.0];
        assert!((normalized_correlation(&a, &a) - 1.0).abs() < 1e-12);
        let b: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((normalized_correlation(&a, &b) + 1.0).abs() < 1e-12);
        assert_eq!(normalized_correlation(&a, &[0.0; 4]), 0.0);
    }

    #[test]
    fn best_match_finds_embedded_template() {
        let template = [1.0, 1.0, -1.0, -1.0, 1.0, -1.0];
        let mut signal = vec![0.01; 100];
        for (i, &t) in template.iter().enumerate() {
            signal[42 + i] = t;
        }
        let (lag, score) = best_match(&signal, &template).unwrap();
        assert_eq!(lag, 42);
        assert!(score > 0.99);
    }

    #[test]
    fn best_match_none_when_template_longer() {
        assert!(best_match(&[1.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn cross_correlate_length() {
        let s = vec![0.0; 10];
        let t = vec![1.0; 3];
        assert_eq!(cross_correlate(&s, &t).len(), 8);
        assert!(cross_correlate(&t, &s).is_empty());
    }
}

//! Digital downconversion (DDC).
//!
//! The reader's decoder first estimates the carrier frequency from the
//! power spectrum, then mixes the real capture with a complex exponential
//! at that frequency and lowpasses, yielding the complex baseband whose
//! magnitude carries the backscatter envelope (§5.1).

use crate::complex::Complex;
use crate::fft;
use crate::filter::{Fir, OnePole};
use crate::plan;
use crate::window::Window;

/// Estimates the dominant carrier frequency of a real capture.
///
/// Uses an FFT peak search (excluding DC) refined by parabolic
/// interpolation on the log-power of the three bins around the peak.
/// This runs once per decoded capture, so the Hann taper comes from the
/// shared window cache — captures of one session share a fixed length
/// and the coefficients are computed exactly once.
pub fn estimate_carrier_hz(signal: &[f64], fs_hz: f64) -> Option<f64> {
    if signal.len() < 8 {
        return None;
    }
    let taper = plan::window_for(Window::Hann, signal.len());
    let windowed: Vec<f64> = signal
        .iter()
        .zip(taper.iter())
        .map(|(&x, &w)| x * w)
        .collect();
    let (freqs, power) = fft::power_spectrum(&windowed, fs_hz).ok()?;
    let (idx, f_peak, _) = fft::dominant_bin(&freqs, &power)?;
    if idx == 0 || idx + 1 >= power.len() {
        return Some(f_peak);
    }
    // Parabolic interpolation in log power.
    let eps = 1e-300;
    let l = (power[idx - 1] + eps).ln();
    let c = (power[idx] + eps).ln();
    let r = (power[idx + 1] + eps).ln();
    let denom = l - 2.0 * c + r;
    let delta = if denom.abs() < 1e-12 {
        0.0
    } else {
        0.5 * (l - r) / denom
    };
    let bin_hz = fs_hz / signal.len() as f64;
    Some(f_peak + delta.clamp(-0.5, 0.5) * bin_hz)
}

/// Mixes a real signal to complex baseband at `carrier_hz` and lowpasses
/// with cutoff `bw_hz` (one-sided). Output sample rate equals the input's.
pub fn downconvert(signal: &[f64], carrier_hz: f64, bw_hz: f64, fs_hz: f64) -> Vec<Complex> {
    let f = Fir::lowpass(bw_hz, fs_hz, 129, Window::Hamming);
    let mut re_path = Vec::with_capacity(signal.len());
    let mut im_path = Vec::with_capacity(signal.len());
    let w = 2.0 * std::f64::consts::PI * carrier_hz / fs_hz;
    for (n, &x) in signal.iter().enumerate() {
        let ph = w * n as f64;
        re_path.push(x * ph.cos());
        im_path.push(-x * ph.sin());
    }
    let re_f = f.filter_aligned(&re_path);
    let im_f = f.filter_aligned(&im_path);
    re_f.into_iter()
        .zip(im_f)
        .map(|(re, im)| Complex::new(2.0 * re, 2.0 * im))
        .collect()
}

/// Fast baseband magnitude via mixing + one-pole smoothing — cheaper than
/// [`downconvert`] when only the envelope is needed (throughput-scale
/// Monte-Carlo runs).
pub fn baseband_magnitude(signal: &[f64], carrier_hz: f64, tau_s: f64, fs_hz: f64) -> Vec<f64> {
    let w = 2.0 * std::f64::consts::PI * carrier_hz / fs_hz;
    let mut rc_i = OnePole::new(tau_s, fs_hz);
    let mut rc_q = OnePole::new(tau_s, fs_hz);
    signal
        .iter()
        .enumerate()
        .map(|(n, &x)| {
            let ph = w * n as f64;
            let i = rc_i.step(x * ph.cos());
            let q = rc_q.step(-x * ph.sin());
            2.0 * i.hypot(q)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn am_tone(fs: f64, fc: f64, fm: f64, depth: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                let env = 1.0 + depth * (2.0 * std::f64::consts::PI * fm * t).sin();
                env * (2.0 * std::f64::consts::PI * fc * t).sin()
            })
            .collect()
    }

    #[test]
    fn carrier_estimation_is_sub_bin_accurate() {
        let fs = 1.0e6;
        let fc = 231_337.0; // deliberately off-bin
        let n = 8192;
        let sig: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * fc * i as f64 / fs).sin())
            .collect();
        let est = estimate_carrier_hz(&sig, fs).unwrap();
        assert!((est - fc).abs() < 30.0, "estimated {est}");
    }

    #[test]
    fn carrier_estimation_too_short_is_none() {
        assert!(estimate_carrier_hz(&[1.0; 4], 1.0e6).is_none());
    }

    #[test]
    fn downconvert_recovers_am_envelope() {
        let fs = 1.0e6;
        let sig = am_tone(fs, 230e3, 2e3, 0.5, 20_000);
        let bb = downconvert(&sig, 230e3, 20e3, fs);
        // The baseband magnitude should oscillate at 2 kHz between 0.5 and 1.5.
        let mags: Vec<f64> = bb.iter().map(|z| z.abs()).collect();
        let mid = &mags[2000..18_000];
        let max = mid.iter().cloned().fold(f64::MIN, f64::max);
        let min = mid.iter().cloned().fold(f64::MAX, f64::min);
        assert!((max - 1.5).abs() < 0.1, "max={max}");
        assert!((min - 0.5).abs() < 0.1, "min={min}");
    }

    #[test]
    fn baseband_magnitude_tracks_envelope() {
        let fs = 1.0e6;
        let sig = am_tone(fs, 230e3, 1e3, 0.8, 30_000);
        let mag = baseband_magnitude(&sig, 230e3, 30e-6, fs);
        let mid = &mag[5000..25_000];
        let max = mid.iter().cloned().fold(f64::MIN, f64::max);
        let min = mid.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 1.5 && min < 0.5, "max={max} min={min}");
    }

    #[test]
    fn downconvert_rejects_far_interferer() {
        let fs = 1.0e6;
        let n = 20_000;
        // Wanted carrier at 230 kHz amplitude 0.1; interferer at 150 kHz amp 1.0.
        let sig: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                0.1 * (2.0 * std::f64::consts::PI * 230e3 * t).sin()
                    + (2.0 * std::f64::consts::PI * 150e3 * t).sin()
            })
            .collect();
        let bb = downconvert(&sig, 230e3, 10e3, fs);
        let mag: Vec<f64> = bb[5000..15_000].iter().map(|z| z.abs()).collect();
        let mean = mag.iter().sum::<f64>() / mag.len() as f64;
        assert!((mean - 0.1).abs() < 0.02, "mean baseband magnitude {mean}");
    }
}

//! Envelope detection.
//!
//! EcoCapsule's downlink demodulator is a diode envelope detector: the
//! voltage-multiplier rectifies the carrier and an RC smooths it, then a
//! level shifter binarizes the result (§4.2). [`diode_envelope`] models
//! exactly that; [`peak_envelope`] is the ideal block-max envelope used by
//! analysis code where detector imperfections would only add noise.

use crate::filter::OnePole;

/// Diode-detector envelope: full-wave rectify then RC-smooth with time
/// constant `tau_s`. Output has the same length as the input.
pub fn diode_envelope(signal: &[f64], tau_s: f64, fs_hz: f64) -> Vec<f64> {
    let mut rc = OnePole::new(tau_s, fs_hz);
    signal.iter().map(|&x| rc.step(x.abs())).collect()
}

/// Ideal envelope via per-block peak magnitude. `block` samples per output
/// point; the envelope is then held flat across the block (same length as
/// input). `block` must be non-zero.
pub fn peak_envelope(signal: &[f64], block: usize) -> Vec<f64> {
    assert!(block > 0, "block size must be non-zero");
    let mut out = Vec::with_capacity(signal.len());
    for chunk in signal.chunks(block) {
        let peak = chunk.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        out.extend(std::iter::repeat(peak).take(chunk.len()));
    }
    out
}

/// Binarizes an envelope with hysteresis, modelling the TXB0302 level
/// shifter: output flips high above `hi`, low below `lo` (`lo < hi`).
pub fn binarize_hysteresis(envelope: &[f64], lo: f64, hi: f64) -> Vec<bool> {
    assert!(lo < hi, "hysteresis thresholds must satisfy lo < hi");
    let mut state = false;
    envelope
        .iter()
        .map(|&e| {
            if e >= hi {
                state = true;
            } else if e <= lo {
                state = false;
            }
            state
        })
        .collect()
}

/// Automatic threshold pair for [`binarize_hysteresis`]: mid ± 25% of the
/// envelope's dynamic range.
pub fn auto_thresholds(envelope: &[f64]) -> (f64, f64) {
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &e in envelope {
        min = min.min(e);
        max = max.max(e);
    }
    if !min.is_finite() || !max.is_finite() || max <= min {
        return (0.25, 0.75);
    }
    let mid = 0.5 * (min + max);
    let span = max - min;
    (mid - 0.25 * span / 2.0, mid + 0.25 * span / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ook_burst(fs: f64, f0: f64, pattern: &[(f64, f64)]) -> Vec<f64> {
        // pattern: (duration_s, amplitude)
        let mut out = Vec::new();
        let mut t = 0usize;
        for &(dur, amp) in pattern {
            let n = (dur * fs) as usize;
            for _ in 0..n {
                out.push(amp * (2.0 * std::f64::consts::PI * f0 * t as f64 / fs).sin());
                t += 1;
            }
        }
        out
    }

    #[test]
    fn diode_envelope_tracks_ook() {
        let fs = 1.0e6;
        let sig = ook_burst(fs, 230e3, &[(1e-3, 1.0), (1e-3, 0.1), (1e-3, 1.0)]);
        let env = diode_envelope(&sig, 20e-6, fs);
        // Sample mid-segment values.
        let hi1 = env[500];
        let lo = env[1500];
        let hi2 = env[2500];
        assert!(hi1 > 3.0 * lo, "hi1={hi1} lo={lo}");
        assert!(hi2 > 3.0 * lo);
    }

    #[test]
    fn peak_envelope_exact_for_constant_tone() {
        let fs = 1.0e6;
        let sig = ook_burst(fs, 230e3, &[(2e-3, 0.8)]);
        let env = peak_envelope(&sig, 64);
        assert_eq!(env.len(), sig.len());
        // Away from the first block the peak should be ~0.8.
        assert!((env[1000] - 0.8).abs() < 0.02);
    }

    #[test]
    fn binarize_recovers_bit_pattern() {
        let fs = 1.0e6;
        let sig = ook_burst(fs, 230e3, &[(1e-3, 1.0), (1e-3, 0.05), (1e-3, 1.0)]);
        let env = diode_envelope(&sig, 15e-6, fs);
        let (lo, hi) = auto_thresholds(&env);
        let bits = binarize_hysteresis(&env, lo, hi);
        assert!(bits[800], "should be high in first segment");
        assert!(!bits[1800], "should be low in middle segment");
        assert!(bits[2800], "should be high in last segment");
    }

    #[test]
    fn hysteresis_suppresses_chatter() {
        // Envelope that wiggles around the midpoint should not toggle.
        let env: Vec<f64> = (0..1000)
            .map(|i| 0.5 + 0.05 * ((i as f64) * 0.3).sin())
            .collect();
        let bits = binarize_hysteresis(&env, 0.3, 0.7);
        assert!(bits.iter().all(|&b| !b), "never crossed hi, must stay low");
    }

    #[test]
    fn auto_thresholds_degenerate_input() {
        let (lo, hi) = auto_thresholds(&[0.5; 10]);
        assert!(lo < hi);
    }
}

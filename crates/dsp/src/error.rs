//! The workspace-wide typed error, [`EcoError`].
//!
//! Every layer of the stack (dsp → elastic → phy → channel → node →
//! protocol → reader → shm) returns this enum instead of panicking, so
//! a mis-calibrated query (zero-distance link, negative attenuation,
//! empty capture buffer) surfaces as a value the caller can route,
//! log, or grade — exactly like a sensor fault in the real SHM
//! pipeline. It lives in `dsp` because that crate is the root of the
//! dependency graph; the `ecocapsule` facade re-exports it as
//! `ecocapsule::EcoError`.
//!
//! Variants carry `&'static str` context plus the offending values, so
//! constructing an error never allocates.

/// Shorthand for `Result<T, EcoError>`.
pub type EcoResult<T> = Result<T, EcoError>;

/// Typed error shared by every EcoCapsule crate.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum EcoError {
    /// An input slice or capture window was empty.
    EmptyInput {
        /// What was empty.
        what: &'static str,
    },
    /// A quantity that must be strictly positive was zero or negative.
    NonPositive {
        /// The quantity's name (with unit suffix).
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A quantity fell outside its physically meaningful interval.
    OutOfRange {
        /// The quantity's name (with unit suffix).
        what: &'static str,
        /// The offending value.
        value: f64,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// A buffer length was required to be a power of two.
    NotPowerOfTwo {
        /// What was mis-sized.
        what: &'static str,
        /// The actual length.
        len: usize,
    },
    /// Two lengths that must agree did not.
    LengthMismatch {
        /// What disagreed.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A numeric routine failed to produce a finite/meaningful value.
    Numerical {
        /// What failed.
        what: &'static str,
    },
    /// A protocol-level decode or framing failure.
    Protocol {
        /// What failed.
        what: &'static str,
    },
}

impl std::fmt::Display for EcoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EcoError::EmptyInput { what } => write!(f, "{what} must be non-empty"),
            EcoError::NonPositive { what, value } => {
                write!(f, "{what} must be positive, got {value}")
            }
            EcoError::OutOfRange {
                what,
                value,
                min,
                max,
            } => write!(f, "{what} = {value} outside [{min}, {max}]"),
            EcoError::NotPowerOfTwo { what, len } => {
                write!(f, "{what} length {len} is not a power of two")
            }
            EcoError::LengthMismatch {
                what,
                expected,
                actual,
            } => write!(f, "{what}: expected length {expected}, got {actual}"),
            EcoError::Numerical { what } => write!(f, "numerical failure: {what}"),
            EcoError::Protocol { what } => write!(f, "protocol error: {what}"),
        }
    }
}

impl std::error::Error for EcoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EcoError::NonPositive {
            what: "distance_m",
            value: -1.0,
        };
        assert!(e.to_string().contains("distance_m"));
        assert!(e.to_string().contains("-1"));
        let e = EcoError::OutOfRange {
            what: "theta_rad",
            value: 2.0,
            min: 0.0,
            max: 1.5707,
        };
        assert!(e.to_string().contains("theta_rad"));
    }

    #[test]
    fn errors_are_values() {
        // Copy + PartialEq so call sites can match and compare cheaply.
        let a = EcoError::EmptyInput { what: "fft input" };
        let b = a;
        assert_eq!(a, b);
    }
}

//! Fast Fourier transform.
//!
//! Iterative radix-2 Cooley–Tukey for power-of-two lengths, with a
//! Bluestein chirp-z fallback so callers can transform arbitrary lengths
//! (the reader's capture windows are not always powers of two). Also
//! provides real-signal helpers used by the spectrum experiments
//! (Fig 24 self-interference spectrum, Fig 5(b) frequency response).
//!
//! All routines are panic-free: misuse surfaces as [`EcoError`], and the
//! butterflies are written over `split_at_mut`/iterator pairs so the hot
//! loops carry no bounds checks to trip. Twiddle tables come from the
//! shared [`crate::plan`] cache, so repeated transforms of one length —
//! the dominant pattern in capture decoding and STFT frames — never
//! re-evaluate trigonometry.

use crate::complex::Complex;
use crate::error::{EcoError, EcoResult};
use crate::plan;

/// In-place radix-2 FFT on a power-of-two-length buffer.
///
/// `inverse` selects the inverse transform (including the `1/N` scale).
/// Returns [`EcoError::NotPowerOfTwo`] for other lengths — use [`fft`]
/// for general lengths.
///
/// Runs on the cached [`plan::FftPlan`] for `buf.len()`; callers that
/// transform many buffers of one known size can hold the plan themselves
/// via [`plan::plan_for`] and skip the cache probe entirely.
#[must_use]
pub fn fft_pow2_in_place(buf: &mut [Complex], inverse: bool) -> EcoResult<()> {
    plan::plan_for(buf.len())?.process(buf, inverse)
}

/// Forward FFT of arbitrary length (radix-2 when possible, Bluestein
/// otherwise). Returns the spectrum, same length as the input.
#[must_use]
pub fn fft(input: &[Complex]) -> EcoResult<Vec<Complex>> {
    transform(input, false)
}

/// Inverse FFT of arbitrary length (scaled by `1/N`).
#[must_use]
pub fn ifft(input: &[Complex]) -> EcoResult<Vec<Complex>> {
    transform(input, true)
}

fn transform(input: &[Complex], inverse: bool) -> EcoResult<Vec<Complex>> {
    if input.is_empty() {
        return Err(EcoError::EmptyInput { what: "fft input" });
    }
    let n = input.len();
    let mut buf = input.to_vec();
    if n.is_power_of_two() {
        fft_pow2_in_place(&mut buf, inverse)?;
        return Ok(buf);
    }
    // Bluestein: express the length-n DFT as a convolution, evaluated
    // with a power-of-two FFT of length >= 2n-1. The chirp and the
    // kernel spectrum FFT(b) depend only on (n, direction) and come from
    // the shared plan cache — the values are identical to the per-call
    // construction this branch used to run, but the ~n trig evaluations
    // and one of the three m-point FFTs now happen once per length.
    let bplan = plan::bluestein_for(n, inverse)?;
    let m = bplan.padded_size();
    let chirp = bplan.chirp();
    let mut a = vec![Complex::ZERO; m];
    for ((slot, x), c) in a.iter_mut().zip(buf.iter()).zip(chirp.iter()) {
        *slot = *x * *c;
    }
    fft_pow2_in_place(&mut a, false)?;
    for (x, y) in a.iter_mut().zip(bplan.kernel_spectrum().iter()) {
        *x *= *y;
    }
    fft_pow2_in_place(&mut a, true)?;
    // zip with the chirp truncates back to the original length n.
    let mut out: Vec<Complex> = a.iter().zip(chirp.iter()).map(|(x, c)| *x * *c).collect();
    if inverse {
        let scale = 1.0 / n as f64;
        for z in out.iter_mut() {
            *z = z.scale(scale);
        }
    }
    Ok(out)
}

/// FFT of a real signal; returns the full complex spectrum.
#[must_use]
pub fn fft_real(input: &[f64]) -> EcoResult<Vec<Complex>> {
    let buf: Vec<Complex> = input.iter().map(|&x| Complex::from_re(x)).collect();
    fft(&buf)
}

/// One-sided power spectrum of a real signal sampled at `fs_hz`.
///
/// Returns `(frequencies_hz, power)` with `N/2 + 1` bins; the power is
/// `|X[k]|²/N²` with the one-sided doubling applied to interior bins.
#[must_use]
pub fn power_spectrum(input: &[f64], fs_hz: f64) -> EcoResult<(Vec<f64>, Vec<f64>)> {
    let n = input.len();
    let spec = fft_real(input)?;
    let half = n / 2;
    let norm = 1.0 / (n as f64 * n as f64);
    let mut freqs = Vec::with_capacity(half + 1);
    let mut power = Vec::with_capacity(half + 1);
    for (k, z) in spec.iter().take(half + 1).enumerate() {
        freqs.push(k as f64 * fs_hz / n as f64);
        let mut p = z.norm_sqr() * norm;
        if k != 0 && !(n % 2 == 0 && k == half) {
            p *= 2.0;
        }
        power.push(p);
    }
    Ok((freqs, power))
}

/// Index and frequency of the strongest bin in a one-sided power spectrum,
/// excluding the DC bin. Returns `(index, frequency_hz, power)`.
///
/// Bins are ordered by [`f64::total_cmp`], so a stray NaN bin cannot
/// collapse the whole comparison to "equal" the way `partial_cmp` with an
/// `Ordering::Equal` fallback silently did (NaN sorts above every finite
/// power and therefore surfaces loudly instead of being masked).
pub fn dominant_bin(freqs: &[f64], power: &[f64]) -> Option<(usize, f64, f64)> {
    power
        .iter()
        .enumerate()
        .skip(1)
        .max_by(|a, b| a.1.total_cmp(b.1))
        .and_then(|(i, &p)| freqs.get(i).map(|&f_hz| (i, f_hz, p)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn empty_input_is_an_error() {
        assert_eq!(
            fft(&[]).unwrap_err(),
            EcoError::EmptyInput { what: "fft input" }
        );
    }

    #[test]
    fn non_pow2_in_place_is_an_error() {
        let mut buf = vec![Complex::ZERO; 3];
        assert!(matches!(
            fft_pow2_in_place(&mut buf, false),
            Err(EcoError::NotPowerOfTwo { len: 3, .. })
        ));
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 16];
        x[0] = Complex::ONE;
        let spec = fft(&x).unwrap();
        for z in spec {
            assert!(close(z.re, 1.0, 1e-12) && close(z.im, 0.0, 1e-12));
        }
    }

    #[test]
    fn single_tone_lands_in_right_bin() {
        let n = 256;
        let bin = 19;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::cis(2.0 * std::f64::consts::PI * bin as f64 * i as f64 / n as f64))
            .collect();
        let spec = fft(&x).unwrap();
        for (k, z) in spec.iter().enumerate() {
            if k == bin {
                assert!(close(z.abs(), n as f64, 1e-8));
            } else {
                assert!(z.abs() < 1e-7, "leakage at bin {k}: {}", z.abs());
            }
        }
    }

    #[test]
    fn roundtrip_pow2() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let back = ifft(&fft(&x).unwrap()).unwrap();
        for (a, b) in x.iter().zip(back.iter()) {
            assert!(close(a.re, b.re, 1e-10) && close(a.im, b.im, 1e-10));
        }
    }

    #[test]
    fn roundtrip_non_pow2_bluestein() {
        let x: Vec<Complex> = (0..100)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let back = ifft(&fft(&x).unwrap()).unwrap();
        for (a, b) in x.iter().zip(back.iter()) {
            assert!(close(a.re, b.re, 1e-8) && close(a.im, b.im, 1e-8));
        }
    }

    #[test]
    fn bluestein_matches_naive_dft() {
        let n = 37;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let fast = fft(&x).unwrap();
        for k in 0..n {
            let mut acc = Complex::ZERO;
            for (i, xi) in x.iter().enumerate() {
                acc += *xi * Complex::cis(-2.0 * std::f64::consts::PI * (k * i) as f64 / n as f64);
            }
            assert!(close(fast[k].re, acc.re, 1e-8), "bin {k}");
            assert!(close(fast[k].im, acc.im, 1e-8), "bin {k}");
        }
    }

    #[test]
    fn parseval_holds() {
        let x: Vec<Complex> = (0..128)
            .map(|i| Complex::new((i as f64 * 0.21).sin(), 0.0))
            .collect();
        let spec = fft(&x).unwrap();
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 128.0;
        assert!(close(time_energy, freq_energy, 1e-8));
    }

    #[test]
    fn power_spectrum_finds_tone() {
        let fs = 1.0e6;
        let f0 = 230.0e3;
        let n = 4096;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f0 * i as f64 / fs).sin())
            .collect();
        let (freqs, power) = power_spectrum(&x, fs).unwrap();
        let (_, fpk, _) = dominant_bin(&freqs, &power).unwrap();
        assert!((fpk - f0).abs() < fs / n as f64 * 1.5, "peak at {fpk}");
    }

    #[test]
    fn power_spectrum_amplitude_calibration() {
        // A unit-amplitude sine has one-sided power 0.5 concentrated in one bin
        // when the frequency is bin-aligned.
        let fs = 1024.0;
        let n = 1024;
        let f0 = 100.0; // exactly bin 100
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f0 * i as f64 / fs).sin())
            .collect();
        let (_, power) = power_spectrum(&x, fs).unwrap();
        assert!(close(power[100], 0.5, 1e-9));
    }
}

//! Digital filters: windowed-sinc FIR design and RBJ biquad IIR sections.
//!
//! The reader's receive chain needs a decimating lowpass after
//! downconversion and a bandpass around the backscatter link frequency;
//! the node's envelope detector needs a cheap one-pole smoother. All are
//! built from the primitives here.

use crate::window::Window;

/// A finite-impulse-response filter applied by direct convolution.
#[derive(Debug, Clone)]
pub struct Fir {
    taps: Vec<f64>,
}

impl Fir {
    /// Builds a FIR from explicit taps.
    ///
    /// Panics if `taps` is empty.
    pub fn from_taps(taps: Vec<f64>) -> Self {
        assert!(!taps.is_empty(), "FIR needs at least one tap");
        Fir { taps }
    }

    /// Windowed-sinc lowpass with cutoff `fc_hz` at sample rate `fs_hz`.
    ///
    /// `n_taps` is forced odd so the filter has integer group delay
    /// `(n_taps-1)/2`. Taps are normalized to unit DC gain.
    pub fn lowpass(fc_hz: f64, fs_hz: f64, n_taps: usize, window: Window) -> Self {
        assert!(
            fs_hz > 0.0 && fc_hz > 0.0 && fc_hz < fs_hz / 2.0,
            "cutoff must be in (0, fs/2)"
        );
        let n = if n_taps % 2 == 0 {
            n_taps + 1
        } else {
            n_taps.max(1)
        };
        let fc = fc_hz / fs_hz; // normalized cycles/sample
        let mid = (n - 1) as f64 / 2.0;
        let mut taps: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 - mid;
                // lint:allow(no-float-eq) t = i - mid is exact; sinc singularity is the center tap only
                let sinc = if t == 0.0 {
                    2.0 * fc
                } else {
                    (2.0 * std::f64::consts::PI * fc * t).sin() / (std::f64::consts::PI * t)
                };
                sinc * window.coeff(i, n)
            })
            .collect();
        let sum: f64 = taps.iter().sum();
        for t in taps.iter_mut() {
            *t /= sum;
        }
        Fir { taps }
    }

    /// Windowed-sinc bandpass for `[f_lo_hz, f_hi_hz]`, built by spectral
    /// subtraction of two lowpass prototypes. Normalized to unit gain at
    /// the band center.
    pub fn bandpass(f_lo_hz: f64, f_hi_hz: f64, fs_hz: f64, n_taps: usize, window: Window) -> Self {
        assert!(
            f_lo_hz > 0.0 && f_hi_hz > f_lo_hz && f_hi_hz < fs_hz / 2.0,
            "band must satisfy 0 < lo < hi < fs/2"
        );
        let hi = Fir::lowpass(f_hi_hz, fs_hz, n_taps, window);
        let lo = Fir::lowpass(f_lo_hz, fs_hz, hi.taps.len(), window);
        let mut taps: Vec<f64> = hi
            .taps
            .iter()
            .zip(lo.taps.iter())
            .map(|(a, b)| a - b)
            .collect();
        // Normalize to unit magnitude at band center.
        let fc = 0.5 * (f_lo_hz + f_hi_hz);
        let g = gain_at(&taps, fc, fs_hz);
        if g > 0.0 {
            for t in taps.iter_mut() {
                *t /= g;
            }
        }
        Fir { taps }
    }

    /// The filter taps.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Group delay in samples (linear-phase symmetric design).
    pub fn group_delay(&self) -> usize {
        (self.taps.len() - 1) / 2
    }

    /// Filters `input`, returning a same-length output (zero-padded edges,
    /// *not* delay-compensated).
    pub fn filter(&self, input: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; input.len()];
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, &t) in self.taps.iter().enumerate() {
                if let Some(k) = i.checked_sub(j) {
                    acc += t * input[k];
                }
            }
            *o = acc;
        }
        out
    }

    /// Filters and compensates the group delay, so feature positions in the
    /// output line up with the input (edge samples are still transient).
    pub fn filter_aligned(&self, input: &[f64]) -> Vec<f64> {
        let d = self.group_delay();
        let mut padded = input.to_vec();
        padded.extend(std::iter::repeat(*input.last().unwrap_or(&0.0)).take(d));
        let y = self.filter(&padded);
        y[d..].to_vec()
    }

    /// Magnitude response at `f_hz`.
    pub fn magnitude_at(&self, f_hz: f64, fs_hz: f64) -> f64 {
        gain_at(&self.taps, f_hz, fs_hz)
    }
}

fn gain_at(taps: &[f64], f_hz: f64, fs_hz: f64) -> f64 {
    let w = 2.0 * std::f64::consts::PI * f_hz / fs_hz;
    let (mut re, mut im) = (0.0, 0.0);
    for (n, &t) in taps.iter().enumerate() {
        re += t * (w * n as f64).cos();
        im -= t * (w * n as f64).sin();
    }
    re.hypot(im)
}

/// A single second-order IIR section (biquad), direct form I, with
/// coefficients from the RBJ audio-EQ cookbook.
#[derive(Debug, Clone)]
pub struct Biquad {
    b0: f64,
    b1: f64,
    b2: f64,
    a1: f64,
    a2: f64,
    x1: f64,
    x2: f64,
    y1: f64,
    y2: f64,
}

impl Biquad {
    fn from_normalized(b0: f64, b1: f64, b2: f64, a0: f64, a1: f64, a2: f64) -> Self {
        Biquad {
            b0: b0 / a0,
            b1: b1 / a0,
            b2: b2 / a0,
            a1: a1 / a0,
            a2: a2 / a0,
            x1: 0.0,
            x2: 0.0,
            y1: 0.0,
            y2: 0.0,
        }
    }

    /// RBJ lowpass at `fc_hz` with quality factor `q`.
    pub fn lowpass(fc_hz: f64, fs_hz: f64, q: f64) -> Self {
        assert!(
            fc_hz > 0.0 && fc_hz < fs_hz / 2.0 && q > 0.0,
            "invalid lowpass parameters"
        );
        let w0 = 2.0 * std::f64::consts::PI * fc_hz / fs_hz;
        let alpha = w0.sin() / (2.0 * q);
        let c = w0.cos();
        Biquad::from_normalized(
            (1.0 - c) / 2.0,
            1.0 - c,
            (1.0 - c) / 2.0,
            1.0 + alpha,
            -2.0 * c,
            1.0 - alpha,
        )
    }

    /// RBJ highpass at `fc_hz` with quality factor `q`.
    pub fn highpass(fc_hz: f64, fs_hz: f64, q: f64) -> Self {
        assert!(
            fc_hz > 0.0 && fc_hz < fs_hz / 2.0 && q > 0.0,
            "invalid highpass parameters"
        );
        let w0 = 2.0 * std::f64::consts::PI * fc_hz / fs_hz;
        let alpha = w0.sin() / (2.0 * q);
        let c = w0.cos();
        Biquad::from_normalized(
            (1.0 + c) / 2.0,
            -(1.0 + c),
            (1.0 + c) / 2.0,
            1.0 + alpha,
            -2.0 * c,
            1.0 - alpha,
        )
    }

    /// RBJ bandpass (constant 0 dB peak gain) centered at `fc_hz`.
    pub fn bandpass(fc_hz: f64, fs_hz: f64, q: f64) -> Self {
        assert!(
            fc_hz > 0.0 && fc_hz < fs_hz / 2.0 && q > 0.0,
            "invalid bandpass parameters"
        );
        let w0 = 2.0 * std::f64::consts::PI * fc_hz / fs_hz;
        let alpha = w0.sin() / (2.0 * q);
        let c = w0.cos();
        Biquad::from_normalized(alpha, 0.0, -alpha, 1.0 + alpha, -2.0 * c, 1.0 - alpha)
    }

    /// Processes one sample.
    pub fn step(&mut self, x: f64) -> f64 {
        let y = self.b0 * x + self.b1 * self.x1 + self.b2 * self.x2
            - self.a1 * self.y1
            - self.a2 * self.y2;
        self.x2 = self.x1;
        self.x1 = x;
        self.y2 = self.y1;
        self.y1 = y;
        y
    }

    /// Processes a block, returning the filtered signal.
    pub fn process(&mut self, input: &[f64]) -> Vec<f64> {
        input.iter().map(|&x| self.step(x)).collect()
    }

    /// Resets the delay-line state.
    pub fn reset(&mut self) {
        self.x1 = 0.0;
        self.x2 = 0.0;
        self.y1 = 0.0;
        self.y2 = 0.0;
    }
}

/// One-pole exponential smoother `y += k (x - y)` — the discrete model of
/// the RC lowpass behind the node's diode envelope detector.
#[derive(Debug, Clone)]
pub struct OnePole {
    k: f64,
    y: f64,
}

impl OnePole {
    /// Creates a smoother with time constant `tau_s` at rate `fs_hz`.
    pub fn new(tau_s: f64, fs_hz: f64) -> Self {
        assert!(tau_s > 0.0 && fs_hz > 0.0, "invalid one-pole parameters");
        OnePole {
            k: 1.0 - (-1.0 / (tau_s * fs_hz)).exp(),
            y: 0.0,
        }
    }

    /// Processes one sample.
    pub fn step(&mut self, x: f64) -> f64 {
        self.y += self.k * (x - self.y);
        self.y
    }

    /// Current output value.
    pub fn value(&self) -> f64 {
        self.y
    }

    /// Resets the state to zero.
    pub fn reset(&mut self) {
        self.y = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(f: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin())
            .collect()
    }

    fn rms(x: &[f64]) -> f64 {
        (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
    }

    #[test]
    fn fir_lowpass_passes_low_blocks_high() {
        let fs = 1.0e6;
        let f = Fir::lowpass(50e3, fs, 101, Window::Hamming);
        let low = f.filter(&tone(10e3, fs, 4000));
        let high = f.filter(&tone(300e3, fs, 4000));
        assert!(rms(&low[500..]) > 0.6);
        assert!(rms(&high[500..]) < 0.01);
    }

    #[test]
    fn fir_lowpass_dc_gain_is_unity() {
        let f = Fir::lowpass(50e3, 1.0e6, 64, Window::Hann);
        assert!((f.taps().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(f.taps().len() % 2, 1, "taps forced odd");
    }

    #[test]
    fn fir_bandpass_selects_band() {
        let fs = 1.0e6;
        let f = Fir::bandpass(200e3, 260e3, fs, 151, Window::Hamming);
        let inband = f.filter(&tone(230e3, fs, 4000));
        let below = f.filter(&tone(100e3, fs, 4000));
        let above = f.filter(&tone(400e3, fs, 4000));
        assert!(rms(&inband[500..]) > 0.5);
        assert!(rms(&below[500..]) < 0.02);
        assert!(rms(&above[500..]) < 0.02);
    }

    #[test]
    fn fir_aligned_output_preserves_feature_position() {
        let fs = 1.0e6;
        // Step at sample 2000.
        let mut x = vec![0.0; 4000];
        for v in x.iter_mut().skip(2000) {
            *v = 1.0;
        }
        let f = Fir::lowpass(20e3, fs, 101, Window::Hamming);
        let y = f.filter_aligned(&x);
        assert_eq!(y.len(), x.len());
        // 50% crossing should happen within a few dozen samples of 2000.
        let cross = y.iter().position(|&v| v > 0.5).unwrap();
        assert!(
            (cross as i64 - 2000).unsigned_abs() < 40,
            "crossing at {cross}"
        );
    }

    #[test]
    fn biquad_lowpass_attenuates_high_frequency() {
        let fs = 1.0e6;
        let mut bq = Biquad::lowpass(30e3, fs, std::f64::consts::FRAC_1_SQRT_2);
        let low = bq.process(&tone(5e3, fs, 8000));
        bq.reset();
        let high = bq.process(&tone(300e3, fs, 8000));
        assert!(rms(&low[2000..]) > 0.6);
        assert!(rms(&high[2000..]) < 0.02);
    }

    #[test]
    fn biquad_bandpass_peak_gain_is_unity() {
        let fs = 1.0e6;
        let mut bq = Biquad::bandpass(230e3, fs, 5.0);
        let y = bq.process(&tone(230e3, fs, 20000));
        let g = rms(&y[10000..]) / std::f64::consts::FRAC_1_SQRT_2;
        assert!((g - 1.0).abs() < 0.05, "peak gain {g}");
    }

    #[test]
    fn biquad_highpass_blocks_dc() {
        let mut bq = Biquad::highpass(10e3, 1.0e6, std::f64::consts::FRAC_1_SQRT_2);
        let y = bq.process(&vec![1.0; 5000]);
        assert!(y[4999].abs() < 1e-3);
    }

    #[test]
    fn one_pole_settles_to_input() {
        let fs = 1.0e6;
        let mut p = OnePole::new(10e-6, fs);
        let mut last = 0.0;
        for _ in 0..1000 {
            last = p.step(1.0);
        }
        assert!((last - 1.0).abs() < 1e-6);
    }

    #[test]
    fn one_pole_time_constant() {
        let fs = 1.0e6;
        let tau = 50e-6;
        let mut p = OnePole::new(tau, fs);
        let n_tau = (tau * fs) as usize;
        let mut y = 0.0;
        for _ in 0..n_tau {
            y = p.step(1.0);
        }
        // After one time constant a first-order system reaches 1 - 1/e.
        assert!((y - (1.0 - (-1.0f64).exp())).abs() < 0.01, "y={y}");
    }
}

//! Goertzel single-bin DFT.
//!
//! The EcoCapsule node cannot afford an FFT: its envelope detector and the
//! reader's carrier-frequency estimator both need the power at *one*
//! frequency. Goertzel evaluates a single DFT bin in O(N) with two state
//! variables — the same trick an MSP430-class MCU would use.

use crate::complex::Complex;

/// Streaming Goertzel filter tuned to `target_hz` at sample rate `fs_hz`.
#[derive(Debug, Clone)]
pub struct Goertzel {
    coeff: f64,
    cos_w: f64,
    sin_w: f64,
    s1: f64,
    s2: f64,
    count: usize,
}

impl Goertzel {
    /// Creates a filter for the bin nearest `target_hz`.
    ///
    /// `fs_hz` must be positive and `target_hz` must lie in `[0, fs/2]`.
    pub fn new(target_hz: f64, fs_hz: f64) -> Self {
        assert!(fs_hz > 0.0, "sample rate must be positive");
        assert!(
            (0.0..=fs_hz / 2.0).contains(&target_hz),
            "target frequency must be in [0, fs/2]"
        );
        let w = 2.0 * std::f64::consts::PI * target_hz / fs_hz;
        Goertzel {
            coeff: 2.0 * w.cos(),
            cos_w: w.cos(),
            sin_w: w.sin(),
            s1: 0.0,
            s2: 0.0,
            count: 0,
        }
    }

    /// Feeds one sample.
    pub fn push(&mut self, x: f64) {
        let s0 = x + self.coeff * self.s1 - self.s2;
        self.s2 = self.s1;
        self.s1 = s0;
        self.count += 1;
    }

    /// Feeds a block of samples.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Complex DFT value at the tuned bin for the samples so far.
    pub fn dft_value(&self) -> Complex {
        Complex::new(self.s1 * self.cos_w - self.s2, self.s1 * self.sin_w)
    }

    /// Power `|X|²` at the tuned bin.
    pub fn power(&self) -> f64 {
        self.dft_value().norm_sqr()
    }

    /// Tone amplitude estimate assuming the input was a pure sinusoid at
    /// the tuned frequency observed for [`Self::len`] samples.
    pub fn amplitude(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        2.0 * self.dft_value().abs() / self.count as f64
    }

    /// Number of samples consumed.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if no samples have been consumed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Resets the filter state (keeps the tuning).
    pub fn reset(&mut self) {
        self.s1 = 0.0;
        self.s2 = 0.0;
        self.count = 0;
    }
}

/// One-shot convenience: tone power of `signal` at `target_hz`.
pub fn tone_power(signal: &[f64], target_hz: f64, fs_hz: f64) -> f64 {
    let mut g = Goertzel::new(target_hz, fs_hz);
    g.extend(signal);
    g.power()
}

/// One-shot convenience: tone amplitude of `signal` at `target_hz`.
pub fn tone_amplitude(signal: &[f64], target_hz: f64, fs_hz: f64) -> f64 {
    let mut g = Goertzel::new(target_hz, fs_hz);
    g.extend(signal);
    g.amplitude()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(f: f64, fs: f64, n: usize, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn recovers_tone_amplitude() {
        let fs = 1.0e6;
        let x = tone(230e3, fs, 10_000, 0.7);
        let a = tone_amplitude(&x, 230e3, fs);
        assert!((a - 0.7).abs() < 0.01, "estimated amplitude {a}");
    }

    #[test]
    fn rejects_off_bin_tone() {
        let fs = 1.0e6;
        let x = tone(230e3, fs, 10_000, 1.0);
        let on = tone_power(&x, 230e3, fs);
        let off = tone_power(&x, 180e3, fs);
        assert!(on / off > 1e3, "selectivity on={on} off={off}");
    }

    #[test]
    fn matches_fft_bin() {
        let fs = 1024.0;
        let n = 1024;
        let x = tone(100.0, fs, n, 1.0);
        let mut g = Goertzel::new(100.0, fs);
        g.extend(&x);
        let spec = crate::fft::fft_real(&x).unwrap();
        assert!((g.dft_value().abs() - spec[100].abs()).abs() < 1e-6);
    }

    #[test]
    fn reset_clears_state() {
        let fs = 1.0e6;
        let mut g = Goertzel::new(230e3, fs);
        g.extend(&tone(230e3, fs, 1000, 1.0));
        assert!(g.power() > 0.0);
        g.reset();
        assert!(g.is_empty());
        assert_eq!(g.power(), 0.0);
    }

    #[test]
    #[should_panic(expected = "target frequency")]
    fn rejects_supernyquist_target() {
        let _ = Goertzel::new(600e3, 1.0e6);
    }
}

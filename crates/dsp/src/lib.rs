//! # ecocapsule-dsp
//!
//! Digital-signal-processing substrate used throughout the EcoCapsule
//! reproduction. The paper's reader digitizes the receiving PZT at 1 MS/s
//! and post-processes in MATLAB (carrier estimation → digital
//! downconversion → envelope extraction → maximum-likelihood FM0
//! decoding); this crate supplies every primitive that pipeline needs,
//! implemented from scratch so the whole stack stays auditable:
//!
//! - [`Complex`] arithmetic and [`fft`] (iterative radix-2, plus a
//!   Bluestein fallback for non-power-of-two lengths),
//! - [`goertzel`] single-bin tone detection (used by the node's cheap
//!   envelope detector and by spectrum probes),
//! - [`filter`] FIR windowed-sinc design and RBJ biquad IIR sections,
//! - [`envelope`] diode-detector-style envelope extraction,
//! - [`ddc`] digital downconversion (complex mix + decimating lowpass),
//! - [`correlate`] matched filtering and cross-correlation (direct and
//!   FFT overlap methods),
//! - [`spectrogram`] short-time Fourier analysis (FSK diagnostics),
//! - [`window`] tapers, [`resample`] decimation,
//! - [`stats`] waveform statistics, SNR and BER estimation,
//! - [`plan`] thread-safe FFT twiddle/window/Bluestein coefficient
//!   caches shared by the hot paths above,
//! - [`batch`] structure-of-arrays hot-path kernels: shared tone banks,
//!   the bit-exact fast matched filter, waveform memos and the
//!   [`batch::Engine`] switch the survey pipeline dispatches on.
//!
//! Everything is deterministic. The only global state is the [`plan`]
//! and [`batch`] caches, which hold *immutable* precomputed tables:
//! caching changes when trigonometry is evaluated, never the value of
//! any result, so outputs stay bit-identical across runs and across
//! threads (DESIGN.md §8 states the full hot-path contract).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod batch;
pub mod complex;
pub mod correlate;
pub mod ddc;
pub mod envelope;
pub mod error;
pub mod fft;
pub mod filter;
pub mod goertzel;
pub mod plan;
pub mod resample;
pub mod spectrogram;
pub mod stats;
pub mod window;

pub use complex::Complex;
pub use error::{EcoError, EcoResult};

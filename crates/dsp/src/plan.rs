//! Thread-safe FFT plan and window-coefficient caches.
//!
//! Every radix-2 transform of length `n` uses the same twiddle factors
//! `exp(-2πik/n)`, and every `n`-point Hann/Hamming/Blackman taper uses
//! the same coefficients — yet the seed implementation recomputed both on
//! every call, which dominates the per-frame cost of spectrogram and
//! carrier-estimation hot paths. This module computes each table **once
//! per size**, stores it behind a global mutex-guarded map, and hands out
//! `Arc` clones, so:
//!
//! * repeated transforms of the same length (the common case: fixed
//!   capture windows, fixed STFT frames, fixed Bluestein scratch sizes)
//!   pay only a map lookup;
//! * concurrent workers (see the `exec` crate) share one table instead of
//!   building per-thread copies — the cache lock is held only for the
//!   `HashMap` probe, never while a table is being built or used.
//!
//! # Cache contract
//!
//! - Plans are **immutable** after construction and shared freely across
//!   threads (`Arc<FftPlan>`); a plan is never rebuilt for a size already
//!   in the cache.
//! - Two concurrent first-misses of the same size may both build the
//!   table; one wins the insert race, the loser's copy is dropped. Both
//!   callers observe identical coefficients either way.
//! - The cache grows with the number of *distinct* sizes seen (power-of-
//!   two FFT lengths and `(shape, length)` window pairs) and is never
//!   evicted — bounded in practice because simulation geometry fixes the
//!   sizes.
//! - Cached tables are bit-identical to freshly computed ones, so enabling
//!   the cache does not change any simulation output (asserted by the
//!   unit tests below and the workspace determinism tests).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use crate::complex::Complex;
use crate::error::{EcoError, EcoResult};
use crate::window::Window;

/// Locks a cache mutex, treating poisoning as benign: the maps are only
/// mutated by single-statement inserts, so a panicking thread cannot leave
/// them half-updated.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // lint:allow(no-lock-in-hotpath) cache probe only: the lock guards an O(1) HashMap lookup/insert and is released before any FFT math runs
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A precomputed radix-2 FFT plan for one power-of-two length.
///
/// Holds the forward twiddle table `exp(-2πik/n)` for `k in 0..n/2`; the
/// inverse transform conjugates on the fly. Obtain plans through
/// [`plan_for`] so they are shared; constructing via the cache is the only
/// public path.
#[derive(Debug)]
pub struct FftPlan {
    /// Transform length (a power of two).
    n: usize,
    /// Forward twiddles `exp(-2πik/n)`, `k in 0..n/2`.
    twiddles: Vec<Complex>,
}

impl FftPlan {
    fn build(n: usize) -> Self {
        let half = n / 2;
        let step = -2.0 * std::f64::consts::PI / n as f64;
        let twiddles = (0..half).map(|k| Complex::cis(step * k as f64)).collect();
        FftPlan { n, twiddles }
    }

    /// The transform length this plan was built for.
    #[must_use]
    pub fn size(&self) -> usize {
        self.n
    }

    /// In-place radix-2 FFT over `buf` using the cached twiddles.
    ///
    /// `inverse` selects the inverse transform (including the `1/N`
    /// scale). Errors with [`EcoError::LengthMismatch`] when `buf.len()`
    /// differs from [`FftPlan::size`].
    #[must_use]
    pub fn process(&self, buf: &mut [Complex], inverse: bool) -> EcoResult<()> {
        if buf.len() != self.n {
            return Err(EcoError::LengthMismatch {
                what: "fft plan buffer",
                expected: self.n,
                actual: buf.len(),
            });
        }
        let n = self.n;
        if n <= 1 {
            return Ok(());
        }
        // Bit-reversal permutation.
        let shift = usize::BITS - n.trailing_zeros();
        for i in 0..n {
            let j = i.reverse_bits().wrapping_shr(shift);
            if j > i {
                buf.swap(i, j);
            }
        }
        // Butterflies. Stage `len` needs twiddles exp(-2πij/len) for
        // j in 0..len/2, which are exactly the cached full-size twiddles
        // strided by n/len — so every stage reads the same table and no
        // trigonometry runs here at all. The table recurrence the seed
        // code used (w *= wlen) accumulated rounding error across a
        // chunk; direct table lookup is the more accurate evaluation.
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for chunk in buf.chunks_mut(len) {
                let (lo, hi) = chunk.split_at_mut(half);
                for ((a, b), tw) in lo
                    .iter_mut()
                    .zip(hi.iter_mut())
                    .zip(self.twiddles.iter().step_by(stride))
                {
                    let w = if inverse { tw.conj() } else { *tw };
                    let u = *a;
                    let v = *b * w;
                    *a = u + v;
                    *b = u - v;
                }
            }
            len <<= 1;
        }
        if inverse {
            let scale = 1.0 / n as f64;
            for z in buf.iter_mut() {
                *z = z.scale(scale);
            }
        }
        Ok(())
    }
}

/// Hit/miss counters of one cache, for diagnostics and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build a new table.
    pub misses: u64,
    /// Distinct sizes currently cached.
    pub entries: usize,
}

/// Precomputed Bluestein chirp-z tables for one `(length, direction)`
/// pair: the chirp sequence and the **pre-transformed** convolution
/// kernel `FFT(b)`.
///
/// Both depend only on the transform length and direction — not on the
/// signal — yet the seed fallback rebuilt the ~`n` `cis` evaluations
/// *and* re-ran one of its three `m`-point FFTs on every call. For the
/// reader's ~44 k-sample captures that one kernel FFT is a 131072-point
/// transform per carrier estimate, the single largest line item in the
/// decode hot path. Obtain plans through [`bluestein_for`]; the cached
/// tables are bit-identical to freshly built ones.
#[derive(Debug)]
pub struct BluesteinPlan {
    n: usize,
    m: usize,
    chirp: Vec<Complex>,
    fft_b: Vec<Complex>,
}

impl BluesteinPlan {
    fn build(n: usize, inverse: bool) -> EcoResult<Self> {
        let sign = if inverse { 1.0 } else { -1.0 };
        let m = (2 * n - 1).next_power_of_two();
        // Chirp w[k] = exp(sign * i*pi*k^2/n); reduce k^2 mod 2n to keep
        // the angle argument small (k*k overflows f64 precision for big n).
        let chirp: Vec<Complex> = (0..n)
            .map(|k| {
                let k2 = (k as u128 * k as u128) % (2 * n as u128);
                Complex::cis(sign * std::f64::consts::PI * k2 as f64 / n as f64)
            })
            .collect();
        let mut b = vec![Complex::ZERO; m];
        if let (Some(slot), Some(c0)) = (b.first_mut(), chirp.first()) {
            *slot = c0.conj();
        }
        for (k, c) in chirp.iter().enumerate().skip(1) {
            let cc = c.conj();
            if let Some(slot) = b.get_mut(k) {
                *slot = cc;
            }
            if let Some(slot) = b.get_mut(m - k) {
                *slot = cc;
            }
        }
        plan_for(m)?.process(&mut b, false)?;
        Ok(BluesteinPlan {
            n,
            m,
            chirp,
            fft_b: b,
        })
    }

    /// The transform length this plan was built for.
    #[must_use]
    pub fn size(&self) -> usize {
        self.n
    }

    /// The padded power-of-two convolution length (`≥ 2n − 1`).
    #[must_use]
    pub fn padded_size(&self) -> usize {
        self.m
    }

    /// The chirp sequence `exp(sign·iπk²/n)`, `k in 0..n`.
    #[must_use]
    pub fn chirp(&self) -> &[Complex] {
        &self.chirp
    }

    /// The forward FFT of the convolution kernel `b`, length
    /// [`BluesteinPlan::padded_size`].
    #[must_use]
    pub fn kernel_spectrum(&self) -> &[Complex] {
        &self.fft_b
    }
}

struct PlanCache {
    plans: HashMap<usize, Arc<FftPlan>>,
    hits: u64,
    misses: u64,
}

struct BluesteinCache {
    plans: HashMap<(usize, bool), Arc<BluesteinPlan>>,
    hits: u64,
    misses: u64,
}

/// Distinct `(length, direction)` Bluestein plans kept resident. Each
/// entry holds `n + m` complex values (~2.8 MB at the reader's capture
/// sizes); capture lengths are fixed by frame geometry so a handful of
/// entries serves every survey. Beyond the cap plans are built fresh
/// and not inserted.
const BLUESTEIN_CAP: usize = 16;

struct WindowCache {
    windows: HashMap<(Window, usize), Arc<Vec<f64>>>,
    hits: u64,
    misses: u64,
}

static PLANS: OnceLock<Mutex<PlanCache>> = OnceLock::new();
static WINDOWS: OnceLock<Mutex<WindowCache>> = OnceLock::new();
static BLUESTEINS: OnceLock<Mutex<BluesteinCache>> = OnceLock::new();

fn plan_cache() -> &'static Mutex<PlanCache> {
    PLANS.get_or_init(|| {
        Mutex::new(PlanCache {
            plans: HashMap::new(),
            hits: 0,
            misses: 0,
        })
    })
}

fn window_cache() -> &'static Mutex<WindowCache> {
    WINDOWS.get_or_init(|| {
        Mutex::new(WindowCache {
            windows: HashMap::new(),
            hits: 0,
            misses: 0,
        })
    })
}

/// The shared FFT plan for length `n` (a power of two), building and
/// caching it on first use.
///
/// Errors with [`EcoError::NotPowerOfTwo`] for other lengths; arbitrary-
/// length callers go through [`crate::fft::fft`], whose Bluestein fallback
/// itself runs on cached power-of-two plans.
#[must_use]
pub fn plan_for(n: usize) -> EcoResult<Arc<FftPlan>> {
    if !n.is_power_of_two() {
        return Err(EcoError::NotPowerOfTwo {
            what: "fft plan length",
            len: n,
        });
    }
    let cache = plan_cache();
    {
        let mut c = lock(cache);
        let cached = c.plans.get(&n).map(Arc::clone);
        if let Some(plan) = cached {
            c.hits += 1;
            return Ok(plan);
        }
        c.misses += 1;
    }
    // Build outside the lock so a large first-time table never stalls
    // other sizes; a concurrent builder of the same size loses the
    // insert race below and its copy is dropped.
    let fresh = Arc::new(FftPlan::build(n));
    let mut c = lock(cache);
    Ok(Arc::clone(c.plans.entry(n).or_insert(fresh)))
}

/// The shared `n`-point coefficient table for window `shape`, building
/// and caching it on first use.
///
/// Coefficients are bit-identical to [`Window::build`]; hot paths use
/// this to hoist per-sample `cos` evaluation out of frame loops.
#[must_use]
pub fn window_for(shape: Window, n: usize) -> Arc<Vec<f64>> {
    let cache = window_cache();
    {
        let mut c = lock(cache);
        let cached = c.windows.get(&(shape, n)).map(Arc::clone);
        if let Some(coeffs) = cached {
            c.hits += 1;
            return coeffs;
        }
        c.misses += 1;
    }
    let fresh = Arc::new(shape.build(n));
    let mut c = lock(cache);
    Arc::clone(c.windows.entry((shape, n)).or_insert(fresh))
}

fn bluestein_cache() -> &'static Mutex<BluesteinCache> {
    BLUESTEINS.get_or_init(|| {
        Mutex::new(BluesteinCache {
            plans: HashMap::new(),
            hits: 0,
            misses: 0,
        })
    })
}

/// The shared Bluestein plan for a non-power-of-two transform of length
/// `n` in the given direction, building and caching it on first use.
///
/// The tables are pure functions of `(n, inverse)` and bit-identical to
/// the per-call construction the Bluestein fallback previously ran, so
/// caching changes only when the chirp trigonometry and the kernel FFT
/// are evaluated — never any transform output.
#[must_use]
pub fn bluestein_for(n: usize, inverse: bool) -> EcoResult<Arc<BluesteinPlan>> {
    if n == 0 {
        return Err(EcoError::EmptyInput {
            what: "bluestein plan length",
        });
    }
    let key = (n, inverse);
    let cache = bluestein_cache();
    let over_cap;
    {
        let mut c = lock(cache);
        let cached = c.plans.get(&key).map(Arc::clone);
        if let Some(plan) = cached {
            c.hits += 1;
            return Ok(plan);
        }
        c.misses += 1;
        over_cap = c.plans.len() >= BLUESTEIN_CAP;
    }
    let fresh = Arc::new(BluesteinPlan::build(n, inverse)?);
    if over_cap {
        return Ok(fresh);
    }
    let mut c = lock(cache);
    Ok(Arc::clone(c.plans.entry(key).or_insert(fresh)))
}

/// Current [`CacheStats`] of the Bluestein plan cache.
#[must_use]
pub fn bluestein_cache_stats() -> CacheStats {
    let c = lock(bluestein_cache());
    CacheStats {
        hits: c.hits,
        misses: c.misses,
        entries: c.plans.len(),
    }
}

/// Current [`CacheStats`] of the FFT plan cache.
#[must_use]
pub fn plan_cache_stats() -> CacheStats {
    let c = lock(plan_cache());
    CacheStats {
        hits: c.hits,
        misses: c.misses,
        entries: c.plans.len(),
    }
}

/// Current [`CacheStats`] of the window-coefficient cache.
#[must_use]
pub fn window_cache_stats() -> CacheStats {
    let c = lock(window_cache());
    CacheStats {
        hits: c.hits,
        misses: c.misses,
        entries: c.windows.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_pow2_is_an_error() {
        assert!(matches!(
            plan_for(12),
            Err(EcoError::NotPowerOfTwo { len: 12, .. })
        ));
    }

    #[test]
    fn mismatched_buffer_is_an_error() {
        let plan = plan_for(8).unwrap();
        let mut buf = vec![Complex::ZERO; 4];
        assert_eq!(
            plan.process(&mut buf, false),
            Err(EcoError::LengthMismatch {
                what: "fft plan buffer",
                expected: 8,
                actual: 4,
            })
        );
    }

    #[test]
    fn first_lookup_misses_then_hits() {
        // The counters are process-global and other tests in this binary
        // run concurrently, so assert lower bounds (our own miss and hit
        // must be in the deltas), not exact increments.
        let n = 1 << 19; // a size only this test uses
        let before = plan_cache_stats();
        let a = plan_for(n).unwrap();
        let mid = plan_cache_stats();
        let b = plan_for(n).unwrap();
        let after = plan_cache_stats();
        assert!(mid.misses >= before.misses + 1, "first lookup is a miss");
        assert!(after.hits >= mid.hits + 1, "second lookup is a hit");
        assert!(Arc::ptr_eq(&a, &b), "both lookups share one table");
    }

    #[test]
    fn window_lookup_misses_then_hits() {
        let n = 7919; // a size only this test uses
        let before = window_cache_stats();
        let a = window_for(Window::Blackman, n);
        let mid = window_cache_stats();
        let b = window_for(Window::Blackman, n);
        let after = window_cache_stats();
        assert!(mid.misses >= before.misses + 1, "first lookup is a miss");
        assert!(after.hits >= mid.hits + 1, "second lookup is a hit");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*a, Window::Blackman.build(n), "cache matches fresh build");
    }

    #[test]
    fn window_cache_keys_on_shape_and_length() {
        let hann = window_for(Window::Hann, 64);
        let hamming = window_for(Window::Hamming, 64);
        let hann_big = window_for(Window::Hann, 128);
        assert!(!Arc::ptr_eq(&hann, &hamming));
        assert_eq!(hann.len(), 64);
        assert_eq!(hann_big.len(), 128);
    }

    #[test]
    fn concurrent_lookups_share_one_plan() {
        let n = 1 << 18; // distinct size to exercise the first-miss race
        let plans: Vec<Arc<FftPlan>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(move || plan_for(n).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let first = &plans[0];
        assert_eq!(first.size(), n);
        // lint:allow(no-nondeterministic-iteration) `plans` is a Vec of Arc handles in thread-join order, not the hash-keyed plan cache
        for p in &plans {
            assert!(
                Arc::ptr_eq(first, p),
                "all threads must converge on one cached table"
            );
        }
    }

    #[test]
    fn bluestein_lookup_misses_then_hits() {
        let n = 7331; // a length only this test uses
        let before = bluestein_cache_stats();
        let a = bluestein_for(n, false).unwrap();
        let mid = bluestein_cache_stats();
        let b = bluestein_for(n, false).unwrap();
        let after = bluestein_cache_stats();
        assert!(mid.misses >= before.misses + 1, "first lookup is a miss");
        assert!(after.hits >= mid.hits + 1, "second lookup is a hit");
        assert!(Arc::ptr_eq(&a, &b), "both lookups share one plan");
        assert_eq!(a.size(), n);
        assert_eq!(a.padded_size(), (2 * n - 1).next_power_of_two());
    }

    #[test]
    fn bluestein_keys_on_direction() {
        let fwd = bluestein_for(99, false).unwrap();
        let inv = bluestein_for(99, true).unwrap();
        assert!(!Arc::ptr_eq(&fwd, &inv));
        // Opposite chirp signs: conjugate chirps, identical magnitudes.
        for (f, i) in fwd.chirp().iter().zip(inv.chirp().iter()) {
            assert_eq!(f.re.to_bits(), i.re.to_bits());
            assert_eq!(f.im.to_bits(), (-i.im).to_bits());
        }
    }

    #[test]
    fn bluestein_cached_plan_matches_fresh_build() {
        let cached = bluestein_for(101, false).unwrap();
        let fresh = BluesteinPlan::build(101, false).unwrap();
        for (a, b) in cached.chirp().iter().zip(fresh.chirp().iter()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        for (a, b) in cached
            .kernel_spectrum()
            .iter()
            .zip(fresh.kernel_spectrum().iter())
        {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn bluestein_zero_length_is_an_error() {
        assert!(matches!(
            bluestein_for(0, false),
            Err(EcoError::EmptyInput { .. })
        ));
    }

    #[test]
    fn plan_matches_direct_dft() {
        let n = 16;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.9).sin(), (i as f64 * 0.4).cos()))
            .collect();
        let mut buf = x.clone();
        plan_for(n).unwrap().process(&mut buf, false).unwrap();
        for k in 0..n {
            let mut acc = Complex::ZERO;
            for (i, xi) in x.iter().enumerate() {
                acc += *xi * Complex::cis(-2.0 * std::f64::consts::PI * (k * i) as f64 / n as f64);
            }
            assert!((buf[k].re - acc.re).abs() < 1e-10, "bin {k}");
            assert!((buf[k].im - acc.im).abs() < 1e-10, "bin {k}");
        }
    }

    #[test]
    fn plan_roundtrips() {
        let x: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.21).cos(), (i as f64 * 0.13).sin()))
            .collect();
        let plan = plan_for(32).unwrap();
        let mut buf = x.clone();
        plan.process(&mut buf, false).unwrap();
        plan.process(&mut buf, true).unwrap();
        for (a, b) in x.iter().zip(buf.iter()) {
            assert!((a.re - b.re).abs() < 1e-12);
            assert!((a.im - b.im).abs() < 1e-12);
        }
    }

    #[test]
    fn tiny_plans_are_valid() {
        let mut one = vec![Complex::from_re(3.0)];
        plan_for(1).unwrap().process(&mut one, false).unwrap();
        assert!((one[0].re - 3.0).abs() < 1e-15);
        let mut two = vec![Complex::from_re(1.0), Complex::from_re(-1.0)];
        plan_for(2).unwrap().process(&mut two, false).unwrap();
        assert!((two[0].re - 0.0).abs() < 1e-15);
        assert!((two[1].re - 2.0).abs() < 1e-15);
    }
}

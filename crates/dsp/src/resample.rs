//! Sample-rate reduction.
//!
//! The 1 MS/s capture is decimated before symbol-rate processing; the
//! anti-alias filter keeps the backscatter sidebands intact.

use crate::filter::Fir;
use crate::window::Window;

/// Decimates by an integer `factor` after an anti-alias lowpass at 80% of
/// the post-decimation Nyquist. Returns the decimated signal.
///
/// Panics when `factor == 0`.
pub fn decimate(signal: &[f64], factor: usize, fs_hz: f64) -> Vec<f64> {
    assert!(factor > 0, "decimation factor must be non-zero");
    if factor == 1 {
        return signal.to_vec();
    }
    let out_nyquist = fs_hz / (2.0 * factor as f64);
    let f = Fir::lowpass(0.8 * out_nyquist, fs_hz, 8 * factor + 1, Window::Hamming);
    let filtered = f.filter_aligned(signal);
    filtered.into_iter().step_by(factor).collect()
}

/// Plain sample dropping (no anti-alias) — only safe when the signal is
/// already band-limited, e.g. an envelope after RC smoothing.
pub fn downsample(signal: &[f64], factor: usize) -> Vec<f64> {
    assert!(factor > 0, "downsample factor must be non-zero");
    signal.iter().copied().step_by(factor).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(f: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin())
            .collect()
    }

    fn rms(x: &[f64]) -> f64 {
        (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
    }

    #[test]
    fn decimate_preserves_in_band_tone() {
        let fs = 1.0e6;
        let x = tone(10e3, fs, 40_000);
        let y = decimate(&x, 10, fs);
        assert_eq!(y.len(), 4000);
        assert!((rms(&y[500..]) - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.05);
    }

    #[test]
    fn decimate_suppresses_alias() {
        let fs = 1.0e6;
        // 90 kHz would alias to 10 kHz at fs/10 = 100 kHz without filtering.
        let x = tone(90e3, fs, 40_000);
        let y = decimate(&x, 10, fs);
        assert!(rms(&y[500..]) < 0.03, "alias energy {}", rms(&y[500..]));
    }

    #[test]
    fn factor_one_is_identity() {
        let x = tone(10e3, 1.0e6, 100);
        assert_eq!(decimate(&x, 1, 1.0e6), x);
    }

    #[test]
    fn downsample_lengths() {
        assert_eq!(
            downsample(&[1.0, 2.0, 3.0, 4.0, 5.0], 2),
            vec![1.0, 3.0, 5.0]
        );
    }
}

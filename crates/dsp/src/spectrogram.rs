//! Short-time Fourier transform (spectrogram).
//!
//! Diagnostics substrate: the FSK downlink is a *time–frequency* scheme
//! (230 kHz high edges, 180 kHz low edges), so verifying a transmitter or
//! debugging a deteriorated channel wants a spectrogram, not a single
//! spectrum. Used by the waveform-inspection experiments.

use crate::complex::Complex;
use crate::error::{EcoError, EcoResult};
use crate::fft;
use crate::plan;
use crate::window::Window;

/// A computed spectrogram.
#[derive(Debug, Clone)]
pub struct Spectrogram {
    /// Frame start times (s).
    pub times_s: Vec<f64>,
    /// Frequency bins (Hz), one-sided.
    pub freqs_hz: Vec<f64>,
    /// Power per `[frame][bin]`.
    pub power: Vec<Vec<f64>>,
}

impl Spectrogram {
    /// Computes an STFT with `frame_len` samples per frame (forced to
    /// the next power of two), `hop` samples between frames, and a Hann
    /// window.
    ///
    /// Errors on zero `hop` or `frame_len`, or a non-positive rate.
    #[must_use]
    pub fn compute(signal: &[f64], frame_len: usize, hop: usize, fs_hz: f64) -> EcoResult<Self> {
        if frame_len == 0 {
            return Err(EcoError::NonPositive {
                what: "spectrogram frame_len",
                value: 0.0,
            });
        }
        if hop == 0 {
            return Err(EcoError::NonPositive {
                what: "spectrogram hop",
                value: 0.0,
            });
        }
        if fs_hz <= 0.0 {
            return Err(EcoError::NonPositive {
                what: "fs_hz",
                value: fs_hz,
            });
        }
        let n = frame_len.next_power_of_two();
        let freqs_hz: Vec<f64> = (0..=n / 2).map(|k| k as f64 * fs_hz / n as f64).collect();
        // Hoisted out of the frame loop: the taper coefficients (shared via
        // the window cache), the FFT plan (shared via the plan cache) and
        // one complex scratch buffer reused for every frame. The seed
        // implementation allocated a fresh frame Vec and re-evaluated the
        // Hann cosine per sample per frame.
        let taper = plan::window_for(Window::Hann, frame_len);
        let fft_plan = plan::plan_for(n)?;
        let mut scratch = vec![Complex::ZERO; n];
        let norm = 1.0 / (n as f64 * n as f64);
        let half = n / 2;
        let mut times_s = Vec::new();
        let mut power = Vec::new();
        for (i, win) in signal.windows(frame_len).step_by(hop).enumerate() {
            for ((slot, &x), &w) in scratch.iter_mut().zip(win).zip(taper.iter()) {
                *slot = Complex::from_re(x * w);
            }
            for slot in scratch.iter_mut().skip(frame_len) {
                *slot = Complex::ZERO;
            }
            fft_plan.process(&mut scratch, false)?;
            // One-sided power, same convention as `fft::power_spectrum`:
            // |X[k]|²/N² with interior bins doubled.
            let p: Vec<f64> = scratch
                .iter()
                .take(half + 1)
                .enumerate()
                .map(|(k, z)| {
                    let mut pk = z.norm_sqr() * norm;
                    if k != 0 && !(n % 2 == 0 && k == half) {
                        pk *= 2.0;
                    }
                    pk
                })
                .collect();
            times_s.push((i * hop) as f64 / fs_hz);
            power.push(p);
        }
        Ok(Spectrogram {
            times_s,
            freqs_hz,
            power,
        })
    }

    /// Number of frames.
    pub fn frames(&self) -> usize {
        self.power.len()
    }

    /// The dominant frequency of frame `i`, excluding DC.
    pub fn dominant_hz(&self, i: usize) -> Option<f64> {
        let p = self.power.get(i)?;
        fft::dominant_bin(&self.freqs_hz, p).map(|(_, f, _)| f)
    }

    /// The dominant-frequency track across all frames.
    pub fn frequency_track(&self) -> Vec<f64> {
        (0..self.frames())
            .filter_map(|i| self.dominant_hz(i))
            .collect()
    }

    /// Band power of frame `i` over `[f_lo, f_hi]` Hz.
    pub fn band_power(&self, i: usize, f_lo_hz: f64, f_hi_hz: f64) -> Option<f64> {
        assert!(f_lo_hz <= f_hi_hz, "band must be ordered");
        let p = self.power.get(i)?;
        Some(
            self.freqs_hz
                .iter()
                .zip(p)
                .filter(|(f, _)| (f_lo_hz..=f_hi_hz).contains(f))
                .map(|(_, &v)| v)
                .sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_an_fsk_hop() {
        // 2 ms of 230 kHz then 2 ms of 180 kHz at 1 MS/s.
        let fs = 1.0e6;
        let sig: Vec<f64> = (0..4000)
            .map(|i| {
                let f = if i < 2000 { 230e3 } else { 180e3 };
                (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin()
            })
            .collect();
        let sg = Spectrogram::compute(&sig, 256, 128, fs).unwrap();
        let track = sg.frequency_track();
        assert!(track.len() > 20);
        // Early frames near 230 kHz, late frames near 180 kHz.
        assert!((track[2] - 230e3).abs() < 8e3, "early {}", track[2]);
        let last = track[track.len() - 3];
        assert!((last - 180e3).abs() < 8e3, "late {last}");
    }

    #[test]
    fn frame_count_follows_hop() {
        let sig = vec![0.0; 1000];
        let sg = Spectrogram::compute(&sig, 128, 64, 1e6).unwrap();
        assert_eq!(sg.frames(), (1000 - 128) / 64 + 1);
        assert_eq!(sg.times_s.len(), sg.frames());
    }

    #[test]
    fn band_power_selects_the_tone() {
        let fs = 1.0e6;
        let sig: Vec<f64> = (0..2048)
            .map(|i| (2.0 * std::f64::consts::PI * 230e3 * i as f64 / fs).sin())
            .collect();
        let sg = Spectrogram::compute(&sig, 512, 512, fs).unwrap();
        let inband = sg.band_power(0, 220e3, 240e3).unwrap();
        let outband = sg.band_power(0, 100e3, 150e3).unwrap();
        assert!(inband > 100.0 * outband, "in {inband} out {outband}");
    }

    #[test]
    fn short_signal_has_no_frames() {
        let sg = Spectrogram::compute(&[0.0; 10], 128, 64, 1e6).unwrap();
        assert_eq!(sg.frames(), 0);
        assert!(sg.frequency_track().is_empty());
    }
}

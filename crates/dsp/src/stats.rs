//! Waveform statistics, SNR and BER estimation.

/// Arithmetic mean; 0 for empty input.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Population variance; 0 for empty input.
pub fn variance(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Root-mean-square value; 0 for empty input.
pub fn rms(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    (x.iter().map(|&v| v * v).sum::<f64>() / x.len() as f64).sqrt()
}

/// Peak absolute value; 0 for empty input.
pub fn peak(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

/// Linear power ratio → decibels. Non-positive ratios map to `-inf` dB.
pub fn db_from_power_ratio(ratio: f64) -> f64 {
    if ratio <= 0.0 {
        return f64::NEG_INFINITY;
    }
    10.0 * ratio.log10()
}

/// Decibels → linear power ratio.
pub fn power_ratio_from_db(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// SNR in dB from separate signal and noise records (power ratio of RMS²).
pub fn snr_db(signal: &[f64], noise: &[f64]) -> f64 {
    let ps = rms(signal).powi(2);
    let pn = rms(noise).powi(2);
    db_from_power_ratio(ps / pn)
}

/// Empirical CDF of `samples` evaluated at the sorted sample points.
/// Returns `(sorted_values, cumulative_probability)`.
pub fn empirical_cdf(samples: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len();
    let probs = (1..=n).map(|i| i as f64 / n as f64).collect();
    (sorted, probs)
}

/// Percentile (0..=100) by nearest-rank on a copy of `samples`.
/// Returns `None` for empty input or out-of-range `p`.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
}

/// Bit-error statistics from two bit streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BerReport {
    /// Bits compared (the shorter stream's length).
    pub compared: usize,
    /// Bits that differed.
    pub errors: usize,
    /// Bits missing from the decoded stream relative to the reference.
    pub truncated: usize,
}

impl BerReport {
    /// Bit error rate over compared + truncated bits, counting truncation
    /// as errors (a decoder that loses sync has not delivered those bits).
    pub fn ber(&self) -> f64 {
        let total = self.compared + self.truncated;
        if total == 0 {
            return 0.0;
        }
        (self.errors + self.truncated) as f64 / total as f64
    }
}

/// Compares a decoded bit stream against a reference.
pub fn compare_bits(reference: &[bool], decoded: &[bool]) -> BerReport {
    let compared = reference.len().min(decoded.len());
    let errors = reference
        .iter()
        .zip(decoded.iter())
        .filter(|(a, b)| a != b)
        .count();
    BerReport {
        compared,
        errors,
        truncated: reference.len().saturating_sub(decoded.len()),
    }
}

/// Standard-normal tail probability Q(x) via the complementary error
/// function (Abramowitz–Stegun 7.1.26 rational approximation, |ε| < 1.5e-7).
///
/// Used for closed-form BER sanity curves (coherent OOK/FSK references).
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Complementary error function (A&S 7.1.26; accurate to ~1.5e-7).
pub fn erfc(x: f64) -> f64 {
    let sign_neg = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let y = poly * (-x * x).exp();
    if sign_neg {
        2.0 - y
    } else {
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "fuzz")]
    use proptest::prelude::*;

    #[test]
    fn basic_moments() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&x), 2.5);
        assert!((variance(&x) - 1.25).abs() < 1e-12);
        assert!((rms(&x) - (7.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(peak(&[-3.0, 2.0]), 3.0);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(peak(&[]), 0.0);
    }

    #[test]
    fn db_roundtrip() {
        for db in [-20.0, 0.0, 3.0, 10.0] {
            let back = db_from_power_ratio(power_ratio_from_db(db));
            assert!((back - db).abs() < 1e-9);
        }
        assert_eq!(db_from_power_ratio(0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn snr_of_equal_power_is_zero_db() {
        let s = [1.0, -1.0, 1.0, -1.0];
        assert!(snr_db(&s, &s).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_monotone() {
        let (vals, probs) = empirical_cdf(&[3.0, 1.0, 2.0]);
        assert_eq!(vals, vec![1.0, 2.0, 3.0]);
        assert_eq!(probs.last().copied(), Some(1.0));
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 50.0), Some(20.0));
        assert_eq!(percentile(&xs, 100.0), Some(40.0));
        assert_eq!(percentile(&xs, 0.0), Some(10.0));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&xs, 101.0), None);
    }

    #[test]
    fn ber_counts_truncation_as_errors() {
        let r = compare_bits(&[true, false, true, true], &[true, true]);
        assert_eq!(r.compared, 2);
        assert_eq!(r.errors, 1);
        assert_eq!(r.truncated, 2);
        assert!((r.ber() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn q_function_known_values() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-7);
        assert!((q_function(1.0) - 0.158_655).abs() < 1e-4);
        assert!((q_function(3.0) - 1.349_898e-3).abs() < 1e-6);
    }

    #[cfg(feature = "fuzz")]
    proptest! {
        #[test]
        fn variance_is_nonnegative(xs in proptest::collection::vec(-1e3f64..1e3, 0..100)) {
            prop_assert!(variance(&xs) >= 0.0);
        }

        #[test]
        fn cdf_probs_sorted(xs in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
            let (vals, probs) = empirical_cdf(&xs);
            prop_assert!(vals.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(probs.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn q_function_is_decreasing(a in -5.0f64..5.0, d in 0.01f64..2.0) {
            prop_assert!(q_function(a) > q_function(a + d));
        }
    }
}

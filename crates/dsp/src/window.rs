//! Window (taper) functions for spectral analysis and FIR design.

/// Supported window shapes.
///
/// `Hash`/`Eq` let a `(Window, length)` pair key the shared coefficient
/// cache in [`crate::plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Window {
    /// Rectangular (no taper).
    Rect,
    /// Hann (raised cosine).
    Hann,
    /// Hamming.
    Hamming,
    /// Blackman (three-term).
    Blackman,
}

impl Window {
    /// Evaluates the window at position `i` of an `n`-point window.
    pub fn coeff(self, i: usize, n: usize) -> f64 {
        assert!(n > 0, "window length must be positive");
        if n == 1 {
            return 1.0;
        }
        let x = i as f64 / (n - 1) as f64;
        let tau = 2.0 * std::f64::consts::PI;
        match self {
            Window::Rect => 1.0,
            Window::Hann => 0.5 - 0.5 * (tau * x).cos(),
            Window::Hamming => 0.54 - 0.46 * (tau * x).cos(),
            Window::Blackman => 0.42 - 0.5 * (tau * x).cos() + 0.08 * (2.0 * tau * x).cos(),
        }
    }

    /// Generates the full `n`-point window.
    pub fn build(self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.coeff(i, n)).collect()
    }

    /// Applies the window to `signal` in place.
    pub fn apply(self, signal: &mut [f64]) {
        let n = signal.len();
        if n == 0 {
            return;
        }
        for (i, x) in signal.iter_mut().enumerate() {
            *x *= self.coeff(i, n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hann_endpoints_are_zero_and_center_is_one() {
        let w = Window::Hann.build(101);
        assert!(w[0].abs() < 1e-12);
        assert!(w[100].abs() < 1e-12);
        assert!((w[50] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn windows_are_symmetric() {
        for win in [Window::Hann, Window::Hamming, Window::Blackman] {
            let w = win.build(64);
            for i in 0..32 {
                assert!((w[i] - w[63 - i]).abs() < 1e-12, "{win:?} index {i}");
            }
        }
    }

    #[test]
    fn rect_is_all_ones() {
        assert!(Window::Rect.build(10).iter().all(|&x| x == 1.0));
    }

    #[test]
    fn length_one_window_is_unity() {
        for win in [
            Window::Rect,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
        ] {
            assert_eq!(win.build(1), vec![1.0]);
        }
    }

    #[test]
    fn apply_matches_build() {
        let mut sig = vec![2.0; 32];
        Window::Hamming.apply(&mut sig);
        let w = Window::Hamming.build(32);
        for (s, w) in sig.iter().zip(w.iter()) {
            assert!((s - 2.0 * w).abs() < 1e-12);
        }
    }
}

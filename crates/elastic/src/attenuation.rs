//! Amplitude loss along a propagation path.
//!
//! Two multiplicative mechanisms (§3.1, §5.2):
//!
//! - **Material absorption + scattering**, modelled as a frequency power
//!   law `α(f) = α₀ · (f/f₀)^n` in Np/m. Concrete attenuates strongly
//!   above its aggregate-scattering knee — the reason Fig 5(b) collapses
//!   past ~250 kHz — and S-waves attenuate *less* than P-waves (paper
//!   reference 39), which is why the S-wave is the preferred carrier.
//! - **Geometric spreading**: spherical (1/r) in a bulk solid,
//!   cylindrical (1/√r) in a plate/wall acting as a waveguide, and none
//!   for a guided plane wave. The paper's Fig 12 finding (2) — "the range
//!   is longer in a narrow structure" — is exactly the spherical→
//!   waveguide transition.

use dsp::{EcoError, EcoResult};

/// Frequency-power-law attenuation `α(f) = α₀·(f/f₀)^n` (Np/m).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawAttenuation {
    /// Reference attenuation α₀ in nepers/metre at `f0_hz`.
    pub alpha0_np_m: f64,
    /// Reference frequency (Hz).
    pub f0_hz: f64,
    /// Frequency exponent `n` (≈1–2 for absorption, ≈4 in the Rayleigh
    /// scattering regime; concrete sits in between).
    pub exponent: f64,
}

impl PowerLawAttenuation {
    /// Creates a power law. Errors on negative `alpha0` or non-positive
    /// `f0` (a negative attenuation would be amplification — always a
    /// calibration bug, never physics).
    #[must_use]
    pub fn new(alpha0_np_m: f64, f0_hz: f64, exponent: f64) -> EcoResult<Self> {
        if alpha0_np_m < 0.0 {
            return Err(EcoError::OutOfRange {
                what: "alpha0_np_m",
                value: alpha0_np_m,
                min: 0.0,
                max: f64::INFINITY,
            });
        }
        if f0_hz <= 0.0 {
            return Err(EcoError::NonPositive {
                what: "f0_hz",
                value: f0_hz,
            });
        }
        Ok(PowerLawAttenuation {
            alpha0_np_m,
            f0_hz,
            exponent,
        })
    }

    /// The same law with `extra_np_m` added to the reference coefficient
    /// α₀ — the state-dependent damage hook: a crack crossing the
    /// propagation path scatters the carrier, raising the whole curve by
    /// a frequency-independent offset at `f0`. Errors when the summed
    /// coefficient would be negative (an "extra" that amplifies is a
    /// calibration bug, never physics). Adding literal `0.0` is a bitwise
    /// no-op, so a pristine structure keeps its exact attenuation law.
    #[must_use]
    pub fn with_added_alpha(&self, extra_np_m: f64) -> EcoResult<Self> {
        PowerLawAttenuation::new(self.alpha0_np_m + extra_np_m, self.f0_hz, self.exponent)
    }

    /// Attenuation coefficient at `f_hz` in Np/m.
    pub fn alpha_np_m(&self, f_hz: f64) -> f64 {
        assert!(f_hz >= 0.0, "frequency must be non-negative");
        // lint:allow(no-float-eq) exact DC guard: 0.0^n is ill-defined for n<0 paths, and only literal zero needs the shortcut
        if f_hz == 0.0 {
            return 0.0;
        }
        self.alpha0_np_m * (f_hz / self.f0_hz).powf(self.exponent)
    }

    /// Attenuation coefficient at `f_hz` in dB/m.
    pub fn alpha_db_m(&self, f_hz: f64) -> f64 {
        self.alpha_np_m(f_hz) * NP_TO_DB
    }

    /// Amplitude factor after travelling `distance_m` at `f_hz`:
    /// `exp(−α·d)` ∈ (0, 1].
    pub fn amplitude_factor(&self, f_hz: f64, distance_m: f64) -> f64 {
        assert!(distance_m >= 0.0, "distance must be non-negative");
        (-self.alpha_np_m(f_hz) * distance_m).exp()
    }
}

/// Nepers → decibels conversion factor (20·log₁₀(e)).
pub const NP_TO_DB: f64 = 8.685_889_638_065_035;

/// Geometric spreading law for the wavefront.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Spreading {
    /// Spherical spreading: amplitude ∝ 1/r (bulk 3-D medium, e.g. the
    /// thick column S2 or a pool).
    Spherical,
    /// Cylindrical spreading: amplitude ∝ 1/√r (a wall thin enough that
    /// top/bottom reflections confine the wave to 2-D, e.g. S3/S4).
    Cylindrical,
    /// Guided plane wave: no geometric loss (an idealized narrow bar).
    Plane,
}

impl Spreading {
    /// Amplitude factor at `distance_m` relative to the amplitude at
    /// `ref_m` (both must be positive; distances below `ref_m` clamp to 1).
    pub fn amplitude_factor(&self, distance_m: f64, ref_m: f64) -> f64 {
        assert!(
            distance_m >= 0.0 && ref_m > 0.0,
            "invalid spreading distances"
        );
        if distance_m <= ref_m {
            return 1.0;
        }
        match self {
            Spreading::Spherical => ref_m / distance_m,
            Spreading::Cylindrical => (ref_m / distance_m).sqrt(),
            Spreading::Plane => 1.0,
        }
    }
}

/// Combined path loss: spreading × absorption, as an amplitude factor.
pub fn path_amplitude_factor(
    law: &PowerLawAttenuation,
    spreading: Spreading,
    f_hz: f64,
    distance_m: f64,
    ref_m: f64,
) -> f64 {
    law.amplitude_factor(f_hz, distance_m) * spreading.amplitude_factor(distance_m, ref_m)
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "fuzz")]
    use proptest::prelude::*;

    #[test]
    fn alpha_grows_with_frequency() {
        let law = PowerLawAttenuation::new(1.0, 100e3, 2.0).unwrap();
        assert!(law.alpha_np_m(200e3) > law.alpha_np_m(100e3));
        assert!((law.alpha_np_m(200e3) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn added_alpha_shifts_the_whole_curve() {
        let law = PowerLawAttenuation::new(0.2, 230e3, 1.0).unwrap();
        let cracked = law.with_added_alpha(0.3).unwrap();
        assert!((cracked.alpha_np_m(230e3) - 0.5).abs() < 1e-12);
        assert_eq!(cracked.f0_hz, law.f0_hz);
        assert_eq!(cracked.exponent, law.exponent);
        // Zero extra is a bitwise no-op: pristine structures keep their
        // exact law (golden-fixture invariance rides on this).
        let same = law.with_added_alpha(0.0).unwrap();
        assert_eq!(same.alpha0_np_m.to_bits(), law.alpha0_np_m.to_bits());
        // An extra that would amplify is rejected.
        assert!(law.with_added_alpha(-0.25).is_err());
    }

    #[test]
    fn np_db_conversion() {
        let law = PowerLawAttenuation::new(1.0, 100e3, 1.0).unwrap();
        assert!((law.alpha_db_m(100e3) - 8.685889638).abs() < 1e-6);
    }

    #[test]
    fn zero_frequency_zero_alpha() {
        let law = PowerLawAttenuation::new(1.0, 100e3, 1.5).unwrap();
        assert_eq!(law.alpha_np_m(0.0), 0.0);
        assert_eq!(law.amplitude_factor(0.0, 100.0), 1.0);
    }

    #[test]
    fn spreading_ordering_matches_paper_finding() {
        // Fig 12 finding (2): narrow structures (waveguide) carry energy
        // further than bulk ones at the same distance.
        let d = 5.0;
        let r0 = 0.1;
        let sph = Spreading::Spherical.amplitude_factor(d, r0);
        let cyl = Spreading::Cylindrical.amplitude_factor(d, r0);
        let pl = Spreading::Plane.amplitude_factor(d, r0);
        assert!(sph < cyl && cyl < pl, "{sph} < {cyl} < {pl}");
    }

    #[test]
    fn near_field_clamps_to_unity() {
        assert_eq!(Spreading::Spherical.amplitude_factor(0.05, 0.1), 1.0);
    }

    #[test]
    fn combined_path_loss_composes() {
        let law = PowerLawAttenuation::new(0.5, 230e3, 1.5).unwrap();
        let f = path_amplitude_factor(&law, Spreading::Cylindrical, 230e3, 2.0, 0.1);
        let expected = (-0.5f64 * 2.0).exp() * (0.1f64 / 2.0).sqrt();
        assert!((f - expected).abs() < 1e-12);
    }

    #[cfg(feature = "fuzz")]
    proptest! {
        #[test]
        fn amplitude_factor_in_unit_interval(
            f in 1e3f64..1e6, d in 0.0f64..20.0, a0 in 0.0f64..5.0, n in 0.5f64..4.0
        ) {
            let law = PowerLawAttenuation::new(a0, 230e3, n).unwrap();
            let amp = law.amplitude_factor(f, d);
            prop_assert!((0.0..=1.0).contains(&amp));
        }

        #[test]
        fn farther_is_weaker(
            d1 in 0.2f64..10.0, extra in 0.1f64..10.0
        ) {
            let law = PowerLawAttenuation::new(0.3, 230e3, 1.5).unwrap();
            let a1 = path_amplitude_factor(&law, Spreading::Spherical, 230e3, d1, 0.1);
            let a2 = path_amplitude_factor(&law, Spreading::Spherical, 230e3, d1 + extra, 0.1);
            prop_assert!(a2 < a1);
        }
    }
}

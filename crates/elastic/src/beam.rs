//! Circular-piston radiation: half-beam angle and directivity.
//!
//! The reader's transmitting PZT is a round disc vibrating in a push–pull
//! pattern (§3.2). Attached flat to a wall it radiates a narrow P-wave
//! cone with half-beam angle `α = arcsin(0.514·C_p/(f·D))` — ≈11° for a
//! 40 mm disc at 230 kHz in concrete, covering only a ~132 cm³ cone in a
//! 15 cm wall. That tiny coverage is the paper's motivation for the prism.

/// Half-beam angle (radians) of a circular piston of diameter `d_m`
/// radiating at `f_hz` into a medium with sound speed `c_m_s` (paper
/// §3.2). Returns `None` when the argument of `arcsin` exceeds 1 (the
/// source is smaller than ~half a wavelength: no collimated beam forms).
///
/// Panics on non-positive inputs.
pub fn half_beam_angle(c_m_s: f64, f_hz: f64, d_m: f64) -> Option<f64> {
    assert!(
        c_m_s > 0.0 && f_hz > 0.0 && d_m > 0.0,
        "piston parameters must be positive"
    );
    let x = 0.514 * c_m_s / (f_hz * d_m);
    if x > 1.0 {
        None
    } else {
        Some(x.asin())
    }
}

/// Volume of the insonified cone (m³) for a beam with half-angle
/// `alpha` (radians) crossing a wall `thickness_m` deep, with the cone
/// apex at the surface (the paper's idealization — it quotes ≈132 cm³ for
/// α ≈ 11° through a 15 cm wall): `V = (π/3)·h³·tan²α`.
pub fn cone_volume_m3(alpha: f64, thickness_m: f64) -> f64 {
    assert!(thickness_m > 0.0, "invalid cone geometry");
    assert!(
        (0.0..std::f64::consts::FRAC_PI_2).contains(&alpha),
        "half angle must be in [0, 90°)"
    );
    let t = alpha.tan();
    std::f64::consts::PI / 3.0 * thickness_m.powi(3) * t * t
}

/// Far-field directivity of a baffled circular piston:
/// `D(θ) = |2·J₁(k·a·sinθ) / (k·a·sinθ)|`, 1 on axis.
pub fn piston_directivity(theta: f64, f_hz: f64, c_m_s: f64, d_m: f64) -> f64 {
    assert!(
        c_m_s > 0.0 && f_hz > 0.0 && d_m > 0.0,
        "piston parameters must be positive"
    );
    let k = 2.0 * std::f64::consts::PI * f_hz / c_m_s;
    let x = k * (d_m / 2.0) * theta.sin().abs();
    if x < 1e-9 {
        return 1.0;
    }
    (2.0 * bessel_j1(x) / x).abs()
}

/// Bessel function of the first kind, order one (Abramowitz & Stegun
/// 9.4.4/9.4.6 rational approximations; |ε| < 4e-8 over all x).
pub fn bessel_j1(x: f64) -> f64 {
    let ax = x.abs();
    let result = if ax < 8.0 {
        let y = x * x;
        let p1 = x
            * (72362614232.0
                + y * (-7895059235.0
                    + y * (242396853.1
                        + y * (-2972611.439 + y * (15704.48260 + y * -30.16036606)))));
        let p2 = 144725228442.0
            + y * (2300535178.0 + y * (18583304.74 + y * (99447.43394 + y * (376.9991397 + y))));
        p1 / p2
    } else {
        let z = 8.0 / ax;
        let y = z * z;
        let xx = ax - 2.356194491;
        let p1 = 1.0
            + y * (0.183105e-2
                + y * (-0.3516396496e-4 + y * (0.2457520174e-5 + y * -0.240337019e-6)));
        let p2 = 0.04687499995
            + y * (-0.2002690873e-3
                + y * (0.8449199096e-5 + y * (-0.88228987e-6 + y * 0.105787412e-6)));
        let ans = (0.636619772 / ax).sqrt() * (xx.cos() * p1 - z * xx.sin() * p2);
        if x < 0.0 {
            -ans
        } else {
            ans
        }
    };
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_half_beam_angle_is_11_degrees() {
        // §3.2: D = 40 mm, f = 230 kHz, C_p = 3338 m/s → α ≈ 11°.
        let a = half_beam_angle(3338.0, 230e3, 0.040).unwrap().to_degrees();
        assert!((a - 11.0).abs() < 0.5, "α = {a}°");
    }

    #[test]
    fn paper_cone_volume_is_about_132_cm3() {
        // §3.2: the CBW covers only a ≈132 cm³ cone in a 15 cm wall.
        let a = half_beam_angle(3338.0, 230e3, 0.040).unwrap();
        let v = cone_volume_m3(a, 0.15) * 1e6; // cm³
        assert!((110.0..160.0).contains(&v), "V = {v} cm³");
    }

    #[test]
    fn tiny_piston_has_no_beam() {
        assert!(half_beam_angle(3338.0, 230e3, 0.002).is_none());
    }

    #[test]
    fn directivity_is_one_on_axis_and_falls_off() {
        let d0 = piston_directivity(0.0, 230e3, 3338.0, 0.040);
        let d10 = piston_directivity(10f64.to_radians(), 230e3, 3338.0, 0.040);
        let d30 = piston_directivity(30f64.to_radians(), 230e3, 3338.0, 0.040);
        assert!((d0 - 1.0).abs() < 1e-9);
        assert!(d10 < d0);
        assert!(d30 < 0.2, "sidelobe level {d30}");
    }

    #[test]
    fn bessel_j1_known_values() {
        // Reference values from A&S tables.
        assert!((bessel_j1(0.0)).abs() < 1e-10);
        assert!((bessel_j1(1.0) - 0.4400505857).abs() < 1e-7);
        assert!((bessel_j1(2.0) - 0.5767248078).abs() < 1e-7);
        assert!((bessel_j1(5.0) - (-0.3275791376)).abs() < 1e-7);
        assert!((bessel_j1(10.0) - 0.0434727462).abs() < 1e-7);
        assert!(
            (bessel_j1(-1.0) + 0.4400505857).abs() < 1e-7,
            "odd function"
        );
    }

    #[test]
    fn first_null_of_directivity_near_3_83() {
        // 2J1(x)/x first null at x = 3.8317.
        let f = 230e3;
        let c = 3338.0;
        let d = 0.040;
        let k = 2.0 * std::f64::consts::PI * f / c;
        let theta_null = (3.8317 / (k * d / 2.0)).asin();
        let v = piston_directivity(theta_null, f, c, d);
        assert!(v < 1e-3, "null value {v}");
    }
}

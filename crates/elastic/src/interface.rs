//! Plane-wave scattering at a boundary between two media.
//!
//! Two levels of fidelity:
//!
//! 1. [`normal_incidence_reflection`] — the paper's Eqn 1,
//!    `R = (Z₂−Z₁)/(Z₂+Z₁)`, used for the concrete/air boundary
//!    (R = 99.98%, the basis of "S-reflections" coverage) and for the
//!    prism/concrete energy budget (~67% conducted).
//!
//! 2. [`SolidInterface::incident_p`] — the full welded solid–solid
//!    P-SV scattering matrix in the Aki & Richards form of the Zoeppritz
//!    equations, with complex vertical slownesses so post-critical
//!    (evanescent) branches are handled correctly. This produces Fig 4's
//!    "relative amplitude of P and S waves vs incident angle".
//!
//! Sign/geometry conventions follow Aki & Richards, *Quantitative
//! Seismology* (2nd ed., §5.2.4): incident P travels downward from
//! medium 1 into medium 2; the ray parameter is `p = sin θ₁ / α₁`.

use crate::material::{Material, WaveMode};
use dsp::Complex;

/// Amplitude reflection coefficient at normal incidence between impedances
/// `z1` (incident side) and `z2`: `R = (z2 − z1)/(z2 + z1)` (paper Eqn 1,
/// written there with the wave inside the concrete looking out at air).
///
/// Panics when both impedances are zero.
pub fn normal_incidence_reflection(z1: f64, z2: f64) -> f64 {
    assert!(
        z1 >= 0.0 && z2 >= 0.0 && z1 + z2 > 0.0,
        "impedances must be non-negative, not both zero"
    );
    (z2 - z1) / (z2 + z1)
}

/// Energy (intensity) transmission coefficient at normal incidence:
/// `T = 1 − R²`.
pub fn normal_incidence_transmission(z1: f64, z2: f64) -> f64 {
    let r = normal_incidence_reflection(z1, z2);
    1.0 - r * r
}

/// Displacement-amplitude scattering coefficients for an incident P wave
/// on a welded solid–solid interface.
#[derive(Debug, Clone, Copy)]
pub struct PScattering {
    /// Incident angle (radians).
    pub theta_i: f64,
    /// Reflected P displacement amplitude (complex: post-critical phases).
    pub refl_p: Complex,
    /// Reflected SV displacement amplitude.
    pub refl_s: Complex,
    /// Transmitted P displacement amplitude.
    pub trans_p: Complex,
    /// Transmitted SV displacement amplitude.
    pub trans_s: Complex,
    /// Energy fraction carried away by the transmitted P wave
    /// (0 when evanescent).
    pub energy_trans_p: f64,
    /// Energy fraction carried away by the transmitted SV wave.
    pub energy_trans_s: f64,
    /// Energy fraction in the reflected P wave.
    pub energy_refl_p: f64,
    /// Energy fraction in the reflected SV wave.
    pub energy_refl_s: f64,
}

impl PScattering {
    /// Total scattered energy (should be ≈1 for propagating regimes —
    /// checked by tests as an energy-conservation invariant).
    pub fn energy_total(&self) -> f64 {
        self.energy_trans_p + self.energy_trans_s + self.energy_refl_p + self.energy_refl_s
    }
}

/// Displacement-amplitude scattering coefficients for an incident SV
/// wave on a welded solid–solid interface.
#[derive(Debug, Clone, Copy)]
pub struct SvScattering {
    /// Incident angle (radians).
    pub theta_j: f64,
    /// Reflected P displacement amplitude.
    pub refl_p: Complex,
    /// Reflected SV displacement amplitude.
    pub refl_s: Complex,
    /// Transmitted P displacement amplitude.
    pub trans_p: Complex,
    /// Transmitted SV displacement amplitude.
    pub trans_s: Complex,
    /// Energy fraction in the transmitted P wave.
    pub energy_trans_p: f64,
    /// Energy fraction in the transmitted SV wave.
    pub energy_trans_s: f64,
    /// Energy fraction in the reflected P wave.
    pub energy_refl_p: f64,
    /// Energy fraction in the reflected SV wave.
    pub energy_refl_s: f64,
}

impl SvScattering {
    /// Total scattered energy (≈1 when all branches propagate).
    pub fn energy_total(&self) -> f64 {
        self.energy_trans_p + self.energy_trans_s + self.energy_refl_p + self.energy_refl_s
    }
}

/// A welded interface between two isotropic solids.
#[derive(Debug, Clone, Copy)]
pub struct SolidInterface {
    /// Incident-side medium.
    pub upper: Material,
    /// Transmission-side medium.
    pub lower: Material,
}

impl SolidInterface {
    /// Creates an interface. Both media must be solids (use
    /// [`normal_incidence_reflection`] for fluid boundaries).
    ///
    /// Panics if either medium is a fluid.
    pub fn new(upper: Material, lower: Material) -> Self {
        assert!(
            upper.is_solid() && lower.is_solid(),
            "SolidInterface requires two solids"
        );
        SolidInterface { upper, lower }
    }

    /// Solves the P-SV Zoeppritz system for an incident P wave at
    /// `theta_i` radians (0 = normal incidence).
    ///
    /// Panics if `theta_i ∉ [0, π/2)`.
    pub fn incident_p(&self, theta_i: f64) -> PScattering {
        assert!(
            (0.0..std::f64::consts::FRAC_PI_2).contains(&theta_i),
            "incident angle must be in [0, 90°)"
        );
        let (a1, b1, r1) = (
            self.upper.cp_m_s,
            self.upper.cs_m_s,
            self.upper.density_kg_m3,
        );
        let (a2, b2, r2) = (
            self.lower.cp_m_s,
            self.lower.cs_m_s,
            self.lower.density_kg_m3,
        );
        let p = theta_i.sin() / a1; // ray parameter, s/m

        // Vertical slowness cos θ / c for each mode, complex past critical.
        // For evanescent branches cos θ = sqrt(1 - (cp)²) with (cp) > 1
        // gives a positive-imaginary root (decaying downward).
        let vs = |c: f64| -> Complex {
            let s = c * p;
            let c2 = Complex::from_re(1.0 - s * s).sqrt();
            // principal sqrt of a negative real is +i·|..|: decaying branch.
            Complex::new(c2.re / c, c2.im / c)
        };
        let ci1 = vs(a1); // cos i1 / a1
        let cj1 = vs(b1); // cos j1 / b1
        let ci2 = vs(a2); // cos i2 / a2
        let cj2 = vs(b2); // cos j2 / b2

        // Aki & Richards (5.32)-(5.39).
        let p2 = p * p;
        let a = Complex::from_re(r2 * (1.0 - 2.0 * b2 * b2 * p2) - r1 * (1.0 - 2.0 * b1 * b1 * p2));
        let b = Complex::from_re(r2 * (1.0 - 2.0 * b2 * b2 * p2) + 2.0 * r1 * b1 * b1 * p2);
        let c = Complex::from_re(r1 * (1.0 - 2.0 * b1 * b1 * p2) + 2.0 * r2 * b2 * b2 * p2);
        let d = Complex::from_re(2.0 * (r2 * b2 * b2 - r1 * b1 * b1));

        let e = b * ci1 + c * ci2;
        let f = b * cj1 + c * cj2;
        let g = a - d * ci1 * cj2;
        let h = a - d * ci2 * cj1;
        let det = e * f + g * h * p2;

        let refl_p =
            ((b * ci1 - c * ci2) * f - (a + d * ci1 * cj2) * h * Complex::from_re(p2)) / det;
        let refl_s = -(ci1 * (a * b + c * d * ci2 * cj2)).scale(2.0 * p * a1 / b1) / det;
        let trans_p = (ci1 * f).scale(2.0 * r1 * a1 / a2) / det;
        let trans_s = (ci1 * h).scale(2.0 * r1 * p * a1 / b2) / det;

        // Energy flux normal to the interface for displacement amplitude A
        // in mode with density ρ, velocity c, vertical angle cosine cosθ:
        //   F ∝ ρ c |A|² cosθ.  Normalize by the incident flux.
        let inc_flux = r1 * a1 * theta_i.cos();
        let flux = |amp: Complex, rho: f64, c: f64, vslow: Complex| -> f64 {
            if vslow.im.abs() > 1e-12 {
                return 0.0; // evanescent: no average energy flux
            }
            let cos_t = vslow.re * c;
            rho * c * amp.norm_sqr() * cos_t / inc_flux
        };
        PScattering {
            theta_i,
            refl_p,
            refl_s,
            trans_p,
            trans_s,
            energy_refl_p: flux(refl_p, r1, a1, ci1),
            energy_refl_s: flux(refl_s, r1, b1, cj1),
            energy_trans_p: flux(trans_p, r2, a2, ci2),
            energy_trans_s: flux(trans_s, r2, b2, cj2),
        }
    }

    /// Solves the P-SV Zoeppritz system for an incident SV wave at
    /// `theta_j` radians. The S-reflections filling the wall (§3.2) hit
    /// every boundary as SV; this gives their mode bookkeeping.
    ///
    /// Panics if `theta_j ∉ [0, π/2)`.
    pub fn incident_sv(&self, theta_j: f64) -> SvScattering {
        assert!(
            (0.0..std::f64::consts::FRAC_PI_2).contains(&theta_j),
            "incident angle must be in [0, 90°)"
        );
        let (a1, b1, r1) = (
            self.upper.cp_m_s,
            self.upper.cs_m_s,
            self.upper.density_kg_m3,
        );
        let (a2, b2, r2) = (
            self.lower.cp_m_s,
            self.lower.cs_m_s,
            self.lower.density_kg_m3,
        );
        let p = theta_j.sin() / b1; // ray parameter from the SV leg

        let vs = |c: f64| -> Complex {
            let s = c * p;
            let c2 = Complex::from_re(1.0 - s * s).sqrt();
            Complex::new(c2.re / c, c2.im / c)
        };
        let ci1 = vs(a1);
        let cj1 = vs(b1);
        let ci2 = vs(a2);
        let cj2 = vs(b2);

        let p2 = p * p;
        let a = Complex::from_re(r2 * (1.0 - 2.0 * b2 * b2 * p2) - r1 * (1.0 - 2.0 * b1 * b1 * p2));
        let b = Complex::from_re(r2 * (1.0 - 2.0 * b2 * b2 * p2) + 2.0 * r1 * b1 * b1 * p2);
        let c = Complex::from_re(r1 * (1.0 - 2.0 * b1 * b1 * p2) + 2.0 * r2 * b2 * b2 * p2);
        let d = Complex::from_re(2.0 * (r2 * b2 * b2 - r1 * b1 * b1));

        let e = b * ci1 + c * ci2;
        let f = b * cj1 + c * cj2;
        let g = a - d * ci1 * cj2;
        let h = a - d * ci2 * cj1;
        let det = e * f + g * h * p2;

        // Aki & Richards (5.36)-(5.39), incident SV.
        let refl_p = -(cj1 * (a * b + c * d * ci2 * cj2)).scale(2.0 * p * b1 / a1) / det;
        let refl_s =
            -((b * cj1 - c * cj2) * e - (a + d * ci2 * cj1) * g * Complex::from_re(p2)) / det;
        let trans_p = -(cj1 * g).scale(2.0 * r1 * p * b1 / a2) / det;
        let trans_s = (cj1 * e).scale(2.0 * r1 * b1 / b2) / det;

        let inc_flux = r1 * b1 * theta_j.cos();
        let flux = |amp: Complex, rho: f64, cvel: f64, vslow: Complex| -> f64 {
            if vslow.im.abs() > 1e-12 {
                return 0.0;
            }
            let cos_t = vslow.re * cvel;
            rho * cvel * amp.norm_sqr() * cos_t / inc_flux
        };
        SvScattering {
            theta_j,
            refl_p,
            refl_s,
            trans_p,
            trans_s,
            energy_refl_p: flux(refl_p, r1, a1, ci1),
            energy_refl_s: flux(refl_s, r1, b1, cj1),
            energy_trans_p: flux(trans_p, r2, a2, ci2),
            energy_trans_s: flux(trans_s, r2, b2, cj2),
        }
    }

    /// Relative transmitted displacement amplitude of `mode` at `theta_i`
    /// — the quantity Fig 4 plots. Zero when evanescent.
    pub fn transmitted_amplitude(&self, theta_i: f64, mode: WaveMode) -> f64 {
        let s = self.incident_p(theta_i);
        match mode {
            WaveMode::P => {
                if s.energy_trans_p > 0.0 {
                    s.trans_p.abs()
                } else {
                    0.0
                }
            }
            WaveMode::S => {
                if s.energy_trans_s > 0.0 {
                    s.trans_s.abs()
                } else {
                    0.0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pla_concrete() -> SolidInterface {
        SolidInterface::new(Material::PLA, Material::CONCRETE_REF)
    }

    #[test]
    fn paper_eqn1_concrete_air() {
        // §3.2: Z_con = 4.66e6, Z_air = 4.15e2 → R = 99.98%.
        let r = normal_incidence_reflection(4.66e6, 4.15e2).abs();
        assert!((r - 0.9998).abs() < 1e-4, "R = {r}");
    }

    #[test]
    fn paper_prism_transmission_about_67_percent() {
        // §3.2: "approximately 67% energy of P-waves generated by the PZT
        // can be conducted into the concrete" (R ≈ 33.43% energy reflected).
        let z_pla = Material::PLA.impedance_p();
        let z_con = Material::CONCRETE_REF.impedance_p();
        let t = normal_incidence_transmission(z_pla, z_con);
        assert!((0.55..0.80).contains(&t), "T = {t}");
    }

    #[test]
    fn normal_incidence_identity_interface_reflects_nothing() {
        assert_eq!(normal_incidence_reflection(4.0e6, 4.0e6), 0.0);
        assert_eq!(normal_incidence_transmission(4.0e6, 4.0e6), 1.0);
    }

    #[test]
    fn energy_is_conserved_below_first_critical_angle() {
        let iface = pla_concrete();
        for deg in [0.0, 5.0, 10.0, 20.0, 30.0, 33.0] {
            let s = iface.incident_p((deg as f64).to_radians());
            let tot = s.energy_total();
            assert!((tot - 1.0).abs() < 1e-6, "energy at {deg}° sums to {tot}");
        }
    }

    #[test]
    fn p_transmission_vanishes_past_first_critical_angle() {
        let iface = pla_concrete();
        let s = iface.incident_p(40f64.to_radians());
        assert_eq!(s.energy_trans_p, 0.0);
        assert!(
            s.energy_trans_s > 0.05,
            "S still carries energy: {}",
            s.energy_trans_s
        );
    }

    #[test]
    fn s_transmission_vanishes_past_second_critical_angle() {
        let iface = pla_concrete();
        let s = iface.incident_p(78f64.to_radians());
        assert_eq!(s.energy_trans_p, 0.0);
        assert_eq!(s.energy_trans_s, 0.0);
    }

    #[test]
    fn s_only_window_carries_usable_energy() {
        // §3.2: inside [34°, 73°] the S-wave is the sole body wave and the
        // prism design relies on it carrying real power.
        let iface = pla_concrete();
        for deg in [40.0, 50.0, 60.0, 70.0] {
            let s = iface.incident_p((deg as f64).to_radians());
            assert!(
                s.energy_trans_s > 0.02,
                "S energy at {deg}° = {}",
                s.energy_trans_s
            );
            assert_eq!(s.energy_trans_p, 0.0, "P must be gone at {deg}°");
        }
    }

    #[test]
    fn no_mode_conversion_at_normal_incidence() {
        let s = pla_concrete().incident_p(0.0);
        assert!(s.refl_s.abs() < 1e-12, "no reflected SV at 0°");
        assert!(s.trans_s.abs() < 1e-12, "no transmitted SV at 0°");
        // 2Z1/(Z1+Z2) ≈ 0.46 for PLA→concrete.
        assert!(
            s.trans_p.abs() > 0.3,
            "P transmits at 0°: {}",
            s.trans_p.abs()
        );
    }

    #[test]
    fn normal_incidence_amplitude_matches_impedance_formula() {
        // At θ=0 the Zoeppritz solution must collapse to the 1-D
        // displacement transmission 2Z1/(Z1+Z2).
        let s = pla_concrete().incident_p(0.0);
        let z1 = Material::PLA.impedance_p();
        let z2 = Material::CONCRETE_REF.impedance_p();
        let expected = 2.0 * z1 / (z1 + z2);
        assert!(
            (s.trans_p.abs() - expected).abs() < 1e-6,
            "Tpp(0) = {}, expected {expected}",
            s.trans_p.abs()
        );
    }

    #[test]
    fn fig4_shape_s_dominates_between_critical_angles() {
        let iface = pla_concrete();
        let amp_p_20 = iface.transmitted_amplitude(20f64.to_radians(), WaveMode::P);
        let amp_s_50 = iface.transmitted_amplitude(50f64.to_radians(), WaveMode::S);
        let amp_p_50 = iface.transmitted_amplitude(50f64.to_radians(), WaveMode::P);
        assert!(amp_p_20 > 0.0);
        assert!(amp_s_50 > 0.0);
        assert_eq!(amp_p_50, 0.0);
    }

    #[test]
    #[should_panic(expected = "two solids")]
    fn rejects_fluid_half_space() {
        let _ = SolidInterface::new(Material::WATER, Material::CONCRETE_REF);
    }

    #[test]
    fn incident_sv_conserves_energy_below_critical_angles() {
        // PLA→concrete, incident SV at β1 = 900 m/s: the tightest critical
        // angle is asin(900/3338) ≈ 15.6° (transmitted P). Below it every
        // branch propagates and the energy must sum to 1.
        let iface = pla_concrete();
        for deg in [0.0, 3.0, 6.0, 9.0, 12.0, 15.0] {
            let s = iface.incident_sv((deg as f64).to_radians());
            assert!(
                (s.energy_total() - 1.0).abs() < 1e-6,
                "SV energy at {deg}° sums to {}",
                s.energy_total()
            );
        }
    }

    #[test]
    fn incident_sv_normal_incidence_matches_shear_impedance_formula() {
        let s = pla_concrete().incident_sv(0.0);
        let z1 = Material::PLA.impedance_s();
        let z2 = Material::CONCRETE_REF.impedance_s();
        let expected_t = 2.0 * z1 / (z1 + z2);
        assert!(
            (s.trans_s.abs() - expected_t).abs() < 1e-6,
            "Tss(0) = {}, expected {expected_t}",
            s.trans_s.abs()
        );
        let expected_r = ((z1 - z2) / (z1 + z2)).abs();
        assert!(
            (s.refl_s.abs() - expected_r).abs() < 1e-6,
            "Rss(0) = {}, expected {expected_r}",
            s.refl_s.abs()
        );
        // No mode conversion straight-on.
        assert!(s.refl_p.abs() < 1e-12);
        assert!(s.trans_p.abs() < 1e-12);
    }

    #[test]
    fn incident_sv_transmitted_p_dies_past_its_critical_angle() {
        let iface = pla_concrete();
        // asin(900/3338) ≈ 15.6°.
        let s = iface.incident_sv(20f64.to_radians());
        assert_eq!(s.energy_trans_p, 0.0);
        assert!(s.energy_trans_s > 0.0, "S still crosses at 20°");
    }

    #[test]
    fn incident_sv_mode_converts_at_oblique_angles() {
        let s = pla_concrete().incident_sv(10f64.to_radians());
        assert!(
            s.energy_trans_p > 0.0,
            "SV→P conversion: {}",
            s.energy_trans_p
        );
        assert!(s.energy_refl_p > 0.0);
    }
}

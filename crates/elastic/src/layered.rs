//! Transmission through a thin intermediate layer.
//!
//! §5.1: "We adhere the constructed concrete blocks onto a building using
//! concrete glue … The glue may cause an approximately 3% loss of wave
//! energy." A bond line is a classic three-medium problem: a layer of
//! impedance `Z₂` and thickness `d` between half-spaces `Z₁`, `Z₃`
//! transmits the intensity fraction
//!
//! ```text
//! T = 4·Z₁·Z₃ / [ (Z₁+Z₃)²·cos²(k₂d) + (Z₂ + Z₁Z₃/Z₂)²·sin²(k₂d) ]
//! ```
//!
//! which also yields the two classical limits: the contact formula as
//! `d → 0`, and perfect transmission through a quarter-wave layer with
//! `Z₂ = √(Z₁Z₃)` (the matching-layer trick transducer makers use).

use crate::material::Material;

/// A thin layer between two half-spaces (normal incidence, longitudinal).
#[derive(Debug, Clone, Copy)]
pub struct ThinLayer {
    /// Incident half-space.
    pub from: Material,
    /// The layer material.
    pub layer: Material,
    /// Receiving half-space.
    pub into: Material,
    /// Layer thickness (m).
    pub thickness_m: f64,
}

/// Construction epoxy / concrete glue stock.
pub const GLUE: Material = Material {
    name: "construction adhesive",
    density_kg_m3: 1500.0,
    cp_m_s: 2400.0,
    cs_m_s: 1100.0,
};

impl ThinLayer {
    /// Creates a layer. Panics on negative thickness.
    pub fn new(from: Material, layer: Material, into: Material, thickness_m: f64) -> Self {
        assert!(thickness_m >= 0.0, "thickness must be non-negative");
        ThinLayer {
            from,
            layer,
            into,
            thickness_m,
        }
    }

    /// The paper's glue bond: a 0.5 mm adhesive line between two concrete
    /// faces.
    pub fn paper_glue_bond() -> Self {
        ThinLayer::new(Material::CONCRETE_REF, GLUE, Material::CONCRETE_REF, 0.5e-3)
    }

    /// Intensity (energy) transmission coefficient at `f_hz`.
    pub fn energy_transmission(&self, f_hz: f64) -> f64 {
        assert!(f_hz > 0.0, "frequency must be positive");
        let z1 = self.from.impedance_p();
        let z2 = self.layer.impedance_p();
        let z3 = self.into.impedance_p();
        let k2d = 2.0 * std::f64::consts::PI * f_hz / self.layer.cp_m_s * self.thickness_m;
        let c = k2d.cos();
        let s = k2d.sin();
        4.0 * z1 * z3 / ((z1 + z3).powi(2) * c * c + (z2 + z1 * z3 / z2).powi(2) * s * s)
    }

    /// Amplitude transmission (√ of the energy coefficient, with the
    /// impedance normalization folded in for same-medium half-spaces).
    pub fn amplitude_transmission(&self, f_hz: f64) -> f64 {
        self.energy_transmission(f_hz).sqrt()
    }

    /// Excess loss of the bonded joint relative to a perfect (weldless)
    /// interface between the same half-spaces, as an energy fraction lost.
    pub fn excess_energy_loss(&self, f_hz: f64) -> f64 {
        let z1 = self.from.impedance_p();
        let z3 = self.into.impedance_p();
        let direct = 4.0 * z1 * z3 / (z1 + z3).powi(2);
        (1.0 - self.energy_transmission(f_hz) / direct).max(0.0)
    }

    /// Quarter-wave thickness of the layer at `f_hz`: `λ/4 = c₂/(4f)`.
    pub fn quarter_wave_thickness_m(&self, f_hz: f64) -> f64 {
        assert!(f_hz > 0.0, "frequency must be positive");
        self.layer.cp_m_s / (4.0 * f_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_thickness_reduces_to_contact_formula() {
        let bond = ThinLayer::new(Material::PLA, GLUE, Material::CONCRETE_REF, 0.0);
        let z1 = Material::PLA.impedance_p();
        let z3 = Material::CONCRETE_REF.impedance_p();
        let contact = 4.0 * z1 * z3 / (z1 + z3).powi(2);
        assert!((bond.energy_transmission(230e3) - contact).abs() < 1e-12);
    }

    #[test]
    fn paper_glue_bond_loses_about_3_percent() {
        // §5.1: "approximately 3% loss of wave energy".
        let bond = ThinLayer::paper_glue_bond();
        let loss = bond.excess_energy_loss(230e3);
        assert!((0.01..0.08).contains(&loss), "glue loss {}", loss * 100.0);
    }

    #[test]
    fn thicker_bond_line_loses_more() {
        let thin = ThinLayer {
            thickness_m: 0.3e-3,
            ..ThinLayer::paper_glue_bond()
        };
        let thick = ThinLayer {
            thickness_m: 1.5e-3,
            ..ThinLayer::paper_glue_bond()
        };
        assert!(thick.excess_energy_loss(230e3) > thin.excess_energy_loss(230e3));
    }

    #[test]
    fn identical_media_with_no_layer_transmit_everything() {
        let b = ThinLayer::new(Material::CONCRETE_REF, GLUE, Material::CONCRETE_REF, 0.0);
        assert!((b.energy_transmission(230e3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quarter_wave_matching_layer_is_transparent() {
        // The classic transducer trick: Z₂ = √(Z₁Z₃), d = λ/4 ⇒ T = 1.
        let z1 = Material::PLA.impedance_p();
        let z3 = Material::CONCRETE_REF.impedance_p();
        let z2_target = (z1 * z3).sqrt();
        // Build a matching material with that impedance at c = 2000 m/s.
        let c2 = 2000.0;
        let matcher = Material {
            name: "matching layer",
            density_kg_m3: z2_target / c2,
            cp_m_s: c2,
            cs_m_s: 900.0,
        };
        let f = 230e3;
        let mut bond = ThinLayer::new(Material::PLA, matcher, Material::CONCRETE_REF, 0.0);
        bond.thickness_m = bond.quarter_wave_thickness_m(f);
        let t = bond.energy_transmission(f);
        assert!((t - 1.0).abs() < 1e-9, "quarter-wave T = {t}");
        // And it genuinely beats direct contact.
        let direct = 4.0 * z1 * z3 / (z1 + z3).powi(2);
        assert!(t > direct);
    }

    #[test]
    fn transmission_is_periodic_in_thickness() {
        // A half-wave layer is acoustically invisible (T equals contact).
        let f = 230e3;
        let glue = ThinLayer::paper_glue_bond();
        let half_wave = 2.0 * glue.quarter_wave_thickness_m(f);
        let bond = ThinLayer {
            thickness_m: half_wave,
            ..glue
        };
        let contact = ThinLayer {
            thickness_m: 0.0,
            ..glue
        };
        assert!(
            (bond.energy_transmission(f) - contact.energy_transmission(f)).abs() < 1e-9,
            "half-wave layer must be invisible"
        );
    }
}

//! # ecocapsule-elastic
//!
//! Elastic-wave physics substrate for the EcoCapsule reproduction.
//!
//! Everything the paper's §3 ("Wireless charging and wireless
//! communication in concrete") derives from first principles lives here:
//!
//! - [`material`] — isotropic solids/fluids, Lamé parameters, P/S wave
//!   velocities (paper Appendix A, Eqns 8 & 10), acoustic impedance;
//! - [`snell`] — refraction angles and the two critical angles (Eqn 2/3);
//! - [`interface`] — plane-wave reflection/transmission with full P↔SV
//!   mode conversion at a welded solid–solid interface (Aki & Richards
//!   form of the Zoeppritz equations, complex post-critical branches) plus
//!   the normal-incidence impedance-mismatch coefficient (Eqn 1);
//! - [`attenuation`] — frequency-power-law material absorption and
//!   geometric spreading laws (spherical, cylindrical/waveguide, plane);
//! - [`beam`] — circular-piston directivity and the half-beam angle
//!   formula `α = arcsin(0.514·C/(f·D))` from §3.2;
//! - [`prism`] — the PLA wave-prism design: S-only incident window,
//!   transmitted-mode purity, and energy conducted into the concrete.
//!
//! All angles are radians unless a name says `_deg`. All units SI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attenuation;
pub mod beam;
pub mod interface;
pub mod layered;
pub mod material;
pub mod prism;
pub mod rayleigh;
pub mod snell;

pub use material::Material;

// Canonical workspace error type, re-exported so downstream layers that
// depend on `elastic` alone (e.g. `concrete`) can return typed errors
// without a direct `dsp` dependency.
pub use dsp::{EcoError, EcoResult};

//! Isotropic elastic media.
//!
//! A body wave travels through an isotropic medium with two velocities
//! (paper Appendix A): the P-wave velocity `α = √((λ+2μ)/ρ)` and the
//! S-wave velocity `β = √(μ/ρ)`. Fluids have `μ = 0`, hence no S-wave —
//! the reason the paper calls underwater piezoelectric backscatter
//! "relatively easier" (§3.1).

/// An isotropic elastic medium characterized by density and the two
/// body-wave velocities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Human-readable name (static — materials are a closed registry plus
    /// custom constructions).
    pub name: &'static str,
    /// Density ρ in kg/m³.
    pub density_kg_m3: f64,
    /// P-wave (longitudinal) velocity in m/s.
    pub cp_m_s: f64,
    /// S-wave (shear) velocity in m/s; `0` for fluids.
    pub cs_m_s: f64,
}

impl Material {
    /// Air at standard conditions. Z = 4.15e2 kg/m²s per the paper's
    /// reference 61.
    pub const AIR: Material = Material {
        name: "air",
        density_kg_m3: 1.2,
        cp_m_s: 346.0,
        cs_m_s: 0.0,
    };

    /// Fresh water (the PAB baseline's medium).
    pub const WATER: Material = Material {
        name: "water",
        density_kg_m3: 1000.0,
        cp_m_s: 1480.0,
        cs_m_s: 0.0,
    };

    /// Polylactic-acid (PLA) wave-prism stock.
    ///
    /// The paper quotes "C_prism ≈ 1250 m/s" but also a first critical
    /// angle of 34° against concrete — mutually inconsistent (see
    /// DESIGN.md §2). 1250 is PLA's *shear* speed regime; its longitudinal
    /// speed is ~1800–2250 m/s. We use 1870 m/s, which reproduces the
    /// paper's critical-angle window [34°, 73°] against the reference
    /// concrete velocities C_p = 3338, C_s = 1941 m/s.
    pub const PLA: Material = Material {
        name: "PLA",
        density_kg_m3: 1240.0,
        cp_m_s: 1870.0,
        cs_m_s: 900.0,
    };

    /// Reference normal concrete with the paper's §3.1 velocities
    /// (C_p ≈ 3338 m/s, C_s ≈ 1941 m/s, from reference 41).
    pub const CONCRETE_REF: Material = Material {
        name: "concrete(ref)",
        density_kg_m3: 2300.0,
        cp_m_s: 3338.0,
        cs_m_s: 1941.0,
    };

    /// Structural steel (rebar, and the alloy-steel shell variant of §4.1).
    pub const STEEL: Material = Material {
        name: "steel",
        density_kg_m3: 7850.0,
        cp_m_s: 5960.0,
        cs_m_s: 3235.0,
    };

    /// SLA printing resin (the EcoCapsule shell material: ~65 MPa tensile
    /// strength, ~2.2 GPa Young's modulus per §4.1).
    pub const RESIN: Material = Material {
        name: "SLA resin",
        density_kg_m3: 1180.0,
        cp_m_s: 2530.0,
        cs_m_s: 1100.0,
    };

    /// Builds a material from engineering constants: Young's modulus `E`
    /// (Pa), Poisson's ratio `ν` and density (kg/m³). This is how the
    /// concrete registry converts Table 1 properties into wave speeds.
    ///
    /// Panics if `E <= 0`, `density <= 0` or `ν ∉ (-1, 0.5)`.
    pub fn from_engineering(name: &'static str, e_pa: f64, nu: f64, density_kg_m3: f64) -> Self {
        assert!(e_pa > 0.0, "Young's modulus must be positive");
        assert!(density_kg_m3 > 0.0, "density must be positive");
        assert!(
            nu > -1.0 && nu < 0.5,
            "Poisson's ratio must be in (-1, 0.5)"
        );
        let lambda = e_pa * nu / ((1.0 + nu) * (1.0 - 2.0 * nu));
        let mu = e_pa / (2.0 * (1.0 + nu));
        Material::from_lame(name, lambda, mu, density_kg_m3)
    }

    /// Builds a material from Lamé parameters `λ`, `μ` (Pa) and density.
    ///
    /// Panics if `μ < 0`, `λ + 2μ <= 0` or `density <= 0`.
    pub fn from_lame(name: &'static str, lambda_pa: f64, mu_pa: f64, density_kg_m3: f64) -> Self {
        assert!(mu_pa >= 0.0, "shear modulus must be non-negative");
        assert!(
            lambda_pa + 2.0 * mu_pa > 0.0,
            "P-wave modulus must be positive"
        );
        assert!(density_kg_m3 > 0.0, "density must be positive");
        Material {
            name,
            density_kg_m3,
            cp_m_s: ((lambda_pa + 2.0 * mu_pa) / density_kg_m3).sqrt(),
            cs_m_s: (mu_pa / density_kg_m3).sqrt(),
        }
    }

    /// Builds a fluid (no shear support).
    ///
    /// Panics on non-positive arguments.
    pub fn fluid(name: &'static str, sound_speed_m_s: f64, density_kg_m3: f64) -> Self {
        assert!(
            sound_speed_m_s > 0.0 && density_kg_m3 > 0.0,
            "fluid parameters must be positive"
        );
        Material {
            name,
            density_kg_m3,
            cp_m_s: sound_speed_m_s,
            cs_m_s: 0.0,
        }
    }

    /// True when the medium supports shear (S) waves.
    pub fn is_solid(&self) -> bool {
        self.cs_m_s > 0.0
    }

    /// Longitudinal (P-wave) acoustic impedance `Z = ρ·c_p` in kg/m²s.
    pub fn impedance_p(&self) -> f64 {
        self.density_kg_m3 * self.cp_m_s
    }

    /// Shear (S-wave) acoustic impedance `Z = ρ·c_s`; `0` for fluids.
    pub fn impedance_s(&self) -> f64 {
        self.density_kg_m3 * self.cs_m_s
    }

    /// Shear modulus `μ = ρ·c_s²` in Pa.
    pub fn shear_modulus_pa(&self) -> f64 {
        self.density_kg_m3 * self.cs_m_s * self.cs_m_s
    }

    /// First Lamé parameter `λ = ρ·(c_p² − 2·c_s²)` in Pa.
    pub fn lame_lambda_pa(&self) -> f64 {
        self.density_kg_m3 * (self.cp_m_s * self.cp_m_s - 2.0 * self.cs_m_s * self.cs_m_s)
    }

    /// Poisson's ratio implied by the velocity pair. Fluids return 0.5.
    pub fn poisson_ratio(&self) -> f64 {
        if !self.is_solid() {
            return 0.5;
        }
        let r2 = (self.cp_m_s / self.cs_m_s).powi(2);
        (r2 - 2.0) / (2.0 * (r2 - 1.0))
    }

    /// Young's modulus implied by the velocity pair, in Pa. 0 for fluids.
    pub fn youngs_modulus_pa(&self) -> f64 {
        if !self.is_solid() {
            return 0.0;
        }
        let mu = self.shear_modulus_pa();
        let nu = self.poisson_ratio();
        2.0 * mu * (1.0 + nu)
    }

    /// Velocity of the requested wave mode; `None` for S in a fluid.
    pub fn velocity(&self, mode: WaveMode) -> Option<f64> {
        match mode {
            WaveMode::P => Some(self.cp_m_s),
            WaveMode::S if self.is_solid() => Some(self.cs_m_s),
            WaveMode::S => None,
        }
    }
}

/// The two body-wave modes (paper Appendix A / Fig 23).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaveMode {
    /// Primary (longitudinal, push–pull) wave. Faster, attenuates more.
    P,
    /// Secondary (shear, transverse) wave. ~40% slower, travels further;
    /// the carrier EcoCapsule uses.
    S,
}

impl std::fmt::Display for WaveMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaveMode::P => write!(f, "P-wave"),
            WaveMode::S => write!(f, "S-wave"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "fuzz")]
    use proptest::prelude::*;

    #[test]
    fn paper_reference_velocities() {
        // §3.1: S-waves are ~40% slower than P-waves in concrete.
        let c = Material::CONCRETE_REF;
        let ratio = c.cs_m_s / c.cp_m_s;
        assert!((ratio - 0.58).abs() < 0.02, "Cs/Cp = {ratio}");
    }

    #[test]
    fn concrete_air_impedance_contrast_matches_paper() {
        // §3.2: Z_con = 4.66e6, Z_air = 4.15e2 kg/m²s → R = 99.98%.
        let z_con = 4.66e6;
        let z_air = Material::AIR.impedance_p();
        assert!((z_air - 4.15e2).abs() / 4.15e2 < 0.01, "Z_air = {z_air}");
        let r = (z_con - z_air) / (z_con + z_air);
        assert!(r > 0.9998, "R = {r}");
    }

    #[test]
    fn engineering_roundtrip() {
        // NC from Table 1: E = 27.8 GPa, ν = 0.18, ρ ≈ 2300.
        let m = Material::from_engineering("NC", 27.8e9, 0.18, 2300.0);
        assert!((m.poisson_ratio() - 0.18).abs() < 1e-9);
        assert!((m.youngs_modulus_pa() - 27.8e9).abs() / 27.8e9 < 1e-9);
        // Wave speeds should land in the civil-engineering range.
        assert!(m.cp_m_s > 3000.0 && m.cp_m_s < 4500.0, "cp = {}", m.cp_m_s);
        assert!(m.cs_m_s > 1800.0 && m.cs_m_s < 2800.0, "cs = {}", m.cs_m_s);
    }

    #[test]
    fn lame_construction_matches_velocity_formulas() {
        // Appendix A Eqns 8/10.
        let (lambda, mu, rho) = (8.0e9, 11.0e9, 2300.0);
        let m = Material::from_lame("x", lambda, mu, rho);
        assert!((m.cp_m_s - ((lambda + 2.0 * mu) / rho).sqrt()).abs() < 1e-9);
        assert!((m.cs_m_s - (mu / rho).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn fluids_have_no_shear() {
        assert!(!Material::WATER.is_solid());
        assert_eq!(Material::WATER.velocity(WaveMode::S), None);
        assert_eq!(Material::WATER.impedance_s(), 0.0);
        assert_eq!(Material::WATER.poisson_ratio(), 0.5);
    }

    #[test]
    fn pla_prism_critical_window_matches_paper() {
        // The chosen PLA longitudinal speed must put the critical angles at
        // ~34° and ~73° against the reference concrete (Fig 4).
        let pla = Material::PLA;
        let con = Material::CONCRETE_REF;
        let ca1 = (pla.cp_m_s / con.cp_m_s).asin().to_degrees();
        let ca2 = (pla.cp_m_s / con.cs_m_s).asin().to_degrees();
        assert!((ca1 - 34.0).abs() < 1.0, "first critical angle {ca1}");
        assert!((ca2 - 73.0).abs() < 2.0, "second critical angle {ca2}");
    }

    #[test]
    #[should_panic(expected = "Poisson")]
    fn rejects_bad_poisson() {
        let _ = Material::from_engineering("bad", 1e9, 0.5, 1000.0);
    }

    #[cfg(feature = "fuzz")]
    proptest! {
        #[test]
        fn cp_always_exceeds_cs(e in 1e9f64..100e9, nu in 0.01f64..0.45, rho in 500f64..8000.0) {
            let m = Material::from_engineering("p", e, nu, rho);
            prop_assert!(m.cp_m_s > m.cs_m_s);
        }

        #[test]
        fn poisson_roundtrip(e in 1e9f64..100e9, nu in 0.01f64..0.45, rho in 500f64..8000.0) {
            let m = Material::from_engineering("p", e, nu, rho);
            prop_assert!((m.poisson_ratio() - nu).abs() < 1e-6);
        }
    }
}

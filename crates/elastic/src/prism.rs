//! The wave prism (§3.2, Figs 3–4, evaluated in Fig 19).
//!
//! A polymer wedge between the transmitting PZT and the concrete injects
//! the piston's P-wave at an oblique incident angle. Between the first
//! and second critical angles only the mode-converted S-wave propagates
//! in the concrete, which then fills the structure via boundary
//! reflections ("S-reflections"). This module packages the design rules:
//! which incident angles give a pure S-wave, how much energy gets in, and
//! a *mode-purity* figure of merit that predicts the downlink SNR shape
//! of Fig 19.

use crate::interface::SolidInterface;
use crate::material::Material;
use crate::snell::{self, Refraction};

/// A wedge prism coupling a piston source into a solid at a fixed
/// incident angle.
#[derive(Debug, Clone, Copy)]
pub struct Prism {
    /// Prism stock (e.g. [`Material::PLA`]).
    pub material: Material,
    /// Target solid (the concrete).
    pub target: Material,
    /// Wedge (incident) angle, radians.
    pub incident_angle: f64,
}

/// What propagates in the concrete for a given incidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionRegime {
    /// Below the first critical angle: both P and S propagate — the
    /// receiver gets two time-shifted copies (intra-symbol interference).
    DualMode,
    /// Between the critical angles: pure S-wave — the design point.
    SOnly,
    /// Beyond the second critical angle: nothing propagates (surface wave
    /// only).
    None,
}

/// Energy/mode analysis of a prism at one incident angle.
#[derive(Debug, Clone, Copy)]
pub struct Injection {
    /// Which regime this incidence falls into.
    pub regime: InjectionRegime,
    /// Energy fraction entering as P.
    pub energy_p: f64,
    /// Energy fraction entering as S.
    pub energy_s: f64,
    /// Refraction angle of the S wave (radians), when propagating.
    pub s_angle: Option<f64>,
    /// Mode purity in `[0, 1]`: transmitted S energy over total transmitted
    /// energy. 1.0 = pure S; 0 when nothing is transmitted.
    pub purity: f64,
}

impl Injection {
    /// Total transmitted energy fraction.
    pub fn energy_total(&self) -> f64 {
        self.energy_p + self.energy_s
    }
}

impl Prism {
    /// Builds a prism. Both media must be solids; the incident angle must
    /// be in `[0°, 90°)`.
    pub fn new(material: Material, target: Material, incident_angle: f64) -> Self {
        assert!(
            material.is_solid() && target.is_solid(),
            "prism and target must be solids"
        );
        assert!(
            (0.0..std::f64::consts::FRAC_PI_2).contains(&incident_angle),
            "incident angle must be in [0°, 90°)"
        );
        Prism {
            material,
            target,
            incident_angle,
        }
    }

    /// The paper's default: a PLA wedge at 60° into the reference concrete.
    pub fn paper_default() -> Self {
        Prism::new(Material::PLA, Material::CONCRETE_REF, 60f64.to_radians())
    }

    /// The S-only incidence window `[CA1, CA2]` in radians.
    pub fn s_only_window(&self) -> Option<(f64, f64)> {
        // Material velocities are positive constants, so the only Err
        // path (non-positive velocity) cannot occur; fold it into None.
        snell::s_only_window(self.material.cp_m_s, &self.target)
            .ok()
            .flatten()
    }

    /// Analyzes the injection at the configured incident angle.
    pub fn inject(&self) -> Injection {
        self.inject_at(self.incident_angle)
    }

    /// Analyzes the injection at an arbitrary incident angle (used by the
    /// Fig 19 sweep without rebuilding prisms).
    pub fn inject_at(&self, theta_i: f64) -> Injection {
        let iface = SolidInterface::new(self.material, self.target);
        let sc = iface.incident_p(theta_i);
        let energy_p = sc.energy_trans_p;
        let energy_s = sc.energy_trans_s;
        let total = energy_p + energy_s;
        let regime = match (energy_p > 0.0, energy_s > 0.0) {
            (true, _) => InjectionRegime::DualMode,
            (false, true) => InjectionRegime::SOnly,
            (false, false) => InjectionRegime::None,
        };
        Injection {
            regime,
            energy_p,
            energy_s,
            s_angle: snell::refract(
                self.material.cp_m_s,
                theta_i,
                &self.target,
                crate::material::WaveMode::S,
            )
            .ok()
            .and_then(Refraction::angle),
            purity: if total > 0.0 { energy_s / total } else { 0.0 },
        }
    }

    /// Picks the incident angle inside the S-only window that maximizes
    /// transmitted S energy, scanning at `step_deg` resolution.
    /// Returns `(angle_rad, injection)`, or `None` if no window exists.
    pub fn optimal_angle(&self, step_deg: f64) -> Option<(f64, Injection)> {
        assert!(step_deg > 0.0, "step must be positive");
        let (ca1, ca2) = self.s_only_window()?;
        let mut best: Option<(f64, Injection)> = None;
        let mut theta = ca1 + 1e-6;
        while theta < ca2 {
            let inj = self.inject_at(theta);
            if best.map_or(true, |(_, b)| inj.energy_s > b.energy_s) {
                best = Some((theta, inj));
            }
            theta += step_deg.to_radians();
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_in_s_only_regime() {
        let p = Prism::paper_default();
        let inj = p.inject();
        assert_eq!(inj.regime, InjectionRegime::SOnly);
        assert_eq!(inj.purity, 1.0);
        assert!(inj.energy_s > 0.05, "usable S energy: {}", inj.energy_s);
    }

    #[test]
    fn regimes_partition_the_angle_axis() {
        let p = Prism::paper_default();
        assert_eq!(
            p.inject_at(15f64.to_radians()).regime,
            InjectionRegime::DualMode
        );
        assert_eq!(
            p.inject_at(30f64.to_radians()).regime,
            InjectionRegime::DualMode
        );
        assert_eq!(
            p.inject_at(50f64.to_radians()).regime,
            InjectionRegime::SOnly
        );
        assert_eq!(
            p.inject_at(70f64.to_radians()).regime,
            InjectionRegime::SOnly
        );
        assert_eq!(
            p.inject_at(80f64.to_radians()).regime,
            InjectionRegime::None
        );
    }

    #[test]
    fn window_matches_snell() {
        let p = Prism::paper_default();
        let (ca1, ca2) = p.s_only_window().unwrap();
        assert!((ca1.to_degrees() - 34.0).abs() < 1.0);
        assert!((ca2.to_degrees() - 73.0).abs() < 2.0);
    }

    #[test]
    fn purity_below_window_is_partial() {
        let p = Prism::paper_default();
        let inj = p.inject_at(20f64.to_radians());
        assert!(
            inj.purity > 0.0 && inj.purity < 1.0,
            "purity {}",
            inj.purity
        );
    }

    #[test]
    fn optimal_angle_lands_inside_window() {
        let p = Prism::paper_default();
        let (theta, inj) = p.optimal_angle(0.5).unwrap();
        let (ca1, ca2) = p.s_only_window().unwrap();
        assert!(theta >= ca1 && theta <= ca2);
        assert_eq!(inj.regime, InjectionRegime::SOnly);
    }

    #[test]
    fn nothing_transmits_past_second_critical_angle() {
        let p = Prism::paper_default();
        let inj = p.inject_at(78f64.to_radians());
        assert_eq!(inj.energy_total(), 0.0);
        assert_eq!(inj.purity, 0.0);
        assert!(inj.s_angle.is_none());
    }
}

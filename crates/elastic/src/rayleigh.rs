//! Rayleigh surface waves.
//!
//! The paper's Fig 4 marks a surface-wave band at grazing incidence, and
//! §5.1 notes that "surface waves are almost filtered out because of the
//! sharp edges and corners" while §3.4 counts "surface waves leaked from
//! the transmitting PZT" among the self-interference. This module solves
//! the classical Rayleigh characteristic equation so the channel layer
//! can model that leakage with the right propagation speed.
//!
//! With `ξ = (c_s/c_p)²` and `r = (c_R/c_s)²`, the Rayleigh equation is
//!
//! ```text
//! r³ − 8r² + 8(3 − 2ξ)r − 16(1 − ξ) = 0
//! ```
//!
//! whose unique root in `(0, 1)` gives the surface-wave speed `c_R`.

use crate::material::Material;

/// Exact Rayleigh wave speed (m/s) for a solid, by bisection on the
/// characteristic equation. Returns `None` for fluids.
pub fn rayleigh_speed_m_s(m: &Material) -> Option<f64> {
    if !m.is_solid() {
        return None;
    }
    let xi = (m.cs_m_s / m.cp_m_s).powi(2);
    let f = |r: f64| r * r * r - 8.0 * r * r + 8.0 * (3.0 - 2.0 * xi) * r - 16.0 * (1.0 - xi);
    // The Rayleigh root lies in (0, 1); f(0) = -16(1-ξ) < 0, f(1) = ... > 0.
    let (mut lo, mut hi) = (1e-9, 1.0 - 1e-12);
    debug_assert!(f(lo) < 0.0);
    if f(hi) <= 0.0 {
        return None; // degenerate (ξ → 1, i.e. cp ≈ cs: unphysical solid)
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(m.cs_m_s * (0.5 * (lo + hi)).sqrt())
}

/// Viktorov's closed-form approximation
/// `c_R ≈ c_s · (0.862 + 1.14ν)/(1 + ν)` — handy for quick estimates and
/// as an independent check on the exact solver.
pub fn rayleigh_speed_approx_m_s(m: &Material) -> Option<f64> {
    if !m.is_solid() {
        return None;
    }
    let nu = m.poisson_ratio();
    Some(m.cs_m_s * (0.862 + 1.14 * nu) / (1.0 + nu))
}

/// Amplitude factor of Rayleigh-wave leakage at the receiving PZT
/// relative to the body-wave arrival: surface waves decay exponentially
/// with depth (skin depth ≈ one wavelength), so a node buried
/// `depth_m` deep at frequency `f_hz` barely sees them — while a
/// surface-mounted RX PZT sees them at full strength (the §3.4
/// self-interference term).
pub fn surface_wave_depth_factor(m: &Material, f_hz: f64, depth_m: f64) -> f64 {
    assert!(f_hz > 0.0 && depth_m >= 0.0, "invalid surface-wave query");
    let Some(cr) = rayleigh_speed_m_s(m) else {
        return 0.0;
    };
    let wavelength_m = cr / f_hz;
    (-depth_m / wavelength_m).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rayleigh_is_slightly_slower_than_shear() {
        // Classical result: c_R ≈ 0.87..0.96 · c_s depending on ν.
        let m = Material::CONCRETE_REF;
        let cr = rayleigh_speed_m_s(&m).unwrap();
        let ratio = cr / m.cs_m_s;
        assert!((0.86..0.96).contains(&ratio), "cR/cs = {ratio}");
    }

    #[test]
    fn exact_and_viktorov_agree() {
        for m in [Material::CONCRETE_REF, Material::STEEL, Material::PLA] {
            let exact = rayleigh_speed_m_s(&m).unwrap();
            let approx = rayleigh_speed_approx_m_s(&m).unwrap();
            assert!(
                (exact - approx).abs() / exact < 0.01,
                "{}: exact {exact} vs approx {approx}",
                m.name
            );
        }
    }

    #[test]
    fn root_satisfies_characteristic_equation() {
        let m = Material::CONCRETE_REF;
        let cr = rayleigh_speed_m_s(&m).unwrap();
        let xi = (m.cs_m_s / m.cp_m_s).powi(2);
        let r = (cr / m.cs_m_s).powi(2);
        let res = r * r * r - 8.0 * r * r + 8.0 * (3.0 - 2.0 * xi) * r - 16.0 * (1.0 - xi);
        assert!(res.abs() < 1e-9, "residual {res}");
    }

    #[test]
    fn fluids_have_no_rayleigh_wave() {
        assert_eq!(rayleigh_speed_m_s(&Material::WATER), None);
        assert_eq!(rayleigh_speed_approx_m_s(&Material::AIR), None);
    }

    #[test]
    fn buried_nodes_barely_see_surface_waves() {
        // A node 10 cm deep at 230 kHz: the Rayleigh wavelength in
        // concrete is ~8 mm, so the leakage is e^{-12} ≈ nothing. That is
        // why the paper only fights surface waves at the *reader's* RX.
        let m = Material::CONCRETE_REF;
        let deep = surface_wave_depth_factor(&m, 230e3, 0.10);
        let surface = surface_wave_depth_factor(&m, 230e3, 0.0);
        assert_eq!(surface, 1.0);
        assert!(deep < 1e-4, "depth factor {deep}");
    }

    #[test]
    fn depth_factor_monotone() {
        let m = Material::CONCRETE_REF;
        let mut last = 1.1;
        for d in [0.0, 0.002, 0.005, 0.01, 0.05] {
            let f = surface_wave_depth_factor(&m, 230e3, d);
            assert!(f < last);
            last = f;
        }
    }
}

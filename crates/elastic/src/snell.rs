//! Snell's law and critical angles (paper §3.2, Eqns 2–3).
//!
//! A wave crossing a boundary at non-zero incidence refracts with
//! `sin θ_i / C_i = sin θ_p / C_p = sin θ_s / C_s`. Because `C_p > C_s`,
//! the refracted P-angle exceeds the S-angle, and as the incidence grows
//! the P-wave hits 90° first (the *first critical angle*) and vanishes,
//! leaving a pure S-wave in the concrete — the prism's entire trick.

use crate::material::{Material, WaveMode};

/// Outcome of refracting into a given mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Refraction {
    /// The mode propagates at this refraction angle (radians).
    Propagating(f64),
    /// Past the mode's critical angle: the transmitted wave is evanescent
    /// (exponentially decaying along depth), carrying no body-wave energy.
    Evanescent,
    /// The target medium does not support this mode (S into a fluid).
    Unsupported,
}

impl Refraction {
    /// The propagation angle, if any.
    pub fn angle(self) -> Option<f64> {
        match self {
            Refraction::Propagating(a) => Some(a),
            _ => None,
        }
    }

    /// True if the mode propagates.
    pub fn is_propagating(self) -> bool {
        matches!(self, Refraction::Propagating(_))
    }
}

/// Refraction angle of `mode` in `into`, for a wave arriving from a medium
/// with phase velocity `c_incident_m_s` at `theta_i` radians from normal.
///
/// Panics if `c_incident_m_s <= 0` or `theta_i ∉ [0, π/2]`.
pub fn refract(c_incident_m_s: f64, theta_i: f64, into: &Material, mode: WaveMode) -> Refraction {
    assert!(c_incident_m_s > 0.0, "incident velocity must be positive");
    assert!(
        (0.0..=std::f64::consts::FRAC_PI_2).contains(&theta_i),
        "incident angle must be in [0, 90°]"
    );
    let Some(c_t) = into.velocity(mode) else {
        return Refraction::Unsupported;
    };
    let s = theta_i.sin() * c_t / c_incident_m_s;
    if s > 1.0 {
        Refraction::Evanescent
    } else {
        Refraction::Propagating(s.asin())
    }
}

/// Critical incident angle (radians) above which `mode` in `into` becomes
/// evanescent. `None` when the transmitted mode is slower than the
/// incident wave (no critical angle) or unsupported.
pub fn critical_angle(c_incident_m_s: f64, into: &Material, mode: WaveMode) -> Option<f64> {
    assert!(c_incident_m_s > 0.0, "incident velocity must be positive");
    let c_t = into.velocity(mode)?;
    if c_t <= c_incident_m_s {
        None
    } else {
        Some((c_incident_m_s / c_t).asin())
    }
}

/// The S-only incidence window `[first critical angle, second critical
/// angle]` for a P-wave entering `into` from a medium with longitudinal
/// velocity `c_incident_m_s` (paper §3.2: ≈ [34°, 73°] for PLA→concrete).
///
/// `None` when no such window exists (e.g. incident medium faster than the
/// target's P velocity, or the target is a fluid).
pub fn s_only_window(c_incident_m_s: f64, into: &Material) -> Option<(f64, f64)> {
    let ca1 = critical_angle(c_incident_m_s, into, WaveMode::P)?;
    let ca2 = critical_angle(c_incident_m_s, into, WaveMode::S)?;
    if ca2 <= ca1 {
        return None;
    }
    Some((ca1, ca2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const PLA: Material = Material::PLA;
    const CON: Material = Material::CONCRETE_REF;

    #[test]
    fn paper_critical_window() {
        let (ca1, ca2) = s_only_window(PLA.cp_m_s, &CON).unwrap();
        assert!((ca1.to_degrees() - 34.0).abs() < 1.0, "CA1 {}", ca1.to_degrees());
        assert!((ca2.to_degrees() - 73.0).abs() < 2.0, "CA2 {}", ca2.to_degrees());
    }

    #[test]
    fn refracted_p_angle_exceeds_s_angle() {
        // Eqn 3: C_p > C_s ⇒ θ_p > θ_s.
        let theta_i = 20f64.to_radians();
        let p = refract(PLA.cp_m_s, theta_i, &CON, WaveMode::P).angle().unwrap();
        let s = refract(PLA.cp_m_s, theta_i, &CON, WaveMode::S).angle().unwrap();
        assert!(p > s, "θp={} θs={}", p.to_degrees(), s.to_degrees());
    }

    #[test]
    fn normal_incidence_does_not_refract() {
        let p = refract(PLA.cp_m_s, 0.0, &CON, WaveMode::P).angle().unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn beyond_first_critical_angle_p_is_evanescent_s_propagates() {
        let theta = 45f64.to_radians();
        assert_eq!(refract(PLA.cp_m_s, theta, &CON, WaveMode::P), Refraction::Evanescent);
        assert!(refract(PLA.cp_m_s, theta, &CON, WaveMode::S).is_propagating());
    }

    #[test]
    fn beyond_second_critical_angle_nothing_propagates() {
        let theta = 80f64.to_radians();
        assert_eq!(refract(PLA.cp_m_s, theta, &CON, WaveMode::P), Refraction::Evanescent);
        assert_eq!(refract(PLA.cp_m_s, theta, &CON, WaveMode::S), Refraction::Evanescent);
    }

    #[test]
    fn s_into_fluid_is_unsupported() {
        assert_eq!(
            refract(CON.cp_m_s, 0.3, &Material::WATER, WaveMode::S),
            Refraction::Unsupported
        );
        assert_eq!(critical_angle(1000.0, &Material::WATER, WaveMode::S), None);
    }

    #[test]
    fn no_critical_angle_into_slower_medium() {
        // Concrete → PLA: transmitted modes are slower, always propagating.
        assert_eq!(critical_angle(CON.cp_m_s, &PLA, WaveMode::P), None);
        assert!(s_only_window(CON.cp_m_s, &PLA).is_none());
    }

    proptest! {
        #[test]
        fn snell_invariant_holds(theta_deg in 0.0f64..33.0) {
            // Below CA1 both modes propagate; sinθ/c must be conserved.
            let theta_i = theta_deg.to_radians();
            let inv = theta_i.sin() / PLA.cp_m_s;
            let p = refract(PLA.cp_m_s, theta_i, &CON, WaveMode::P).angle().unwrap();
            let s = refract(PLA.cp_m_s, theta_i, &CON, WaveMode::S).angle().unwrap();
            prop_assert!((p.sin() / CON.cp_m_s - inv).abs() < 1e-12);
            prop_assert!((s.sin() / CON.cs_m_s - inv).abs() < 1e-12);
        }

        #[test]
        fn refraction_angle_monotone_in_incidence(a in 1.0f64..30.0, d in 0.5f64..3.0) {
            let t1 = refract(PLA.cp_m_s, a.to_radians(), &CON, WaveMode::S).angle().unwrap();
            let t2 = refract(PLA.cp_m_s, (a + d).to_radians(), &CON, WaveMode::S).angle().unwrap();
            prop_assert!(t2 > t1);
        }
    }
}

//! Snell's law and critical angles (paper §3.2, Eqns 2–3).
//!
//! A wave crossing a boundary at non-zero incidence refracts with
//! `sin θ_i / C_i = sin θ_p / C_p = sin θ_s / C_s`. Because `C_p > C_s`,
//! the refracted P-angle exceeds the S-angle, and as the incidence grows
//! the P-wave hits 90° first (the *first critical angle*) and vanishes,
//! leaving a pure S-wave in the concrete — the prism's entire trick.

use crate::material::{Material, WaveMode};
use dsp::{EcoError, EcoResult};

/// Outcome of refracting into a given mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Refraction {
    /// The mode propagates at this refraction angle (radians).
    Propagating(f64),
    /// Past the mode's critical angle: the transmitted wave is evanescent
    /// (exponentially decaying along depth), carrying no body-wave energy.
    Evanescent,
    /// The target medium does not support this mode (S into a fluid).
    Unsupported,
}

impl Refraction {
    /// The propagation angle, if any.
    pub fn angle(self) -> Option<f64> {
        match self {
            Refraction::Propagating(a) => Some(a),
            _ => None,
        }
    }

    /// True if the mode propagates.
    pub fn is_propagating(self) -> bool {
        matches!(self, Refraction::Propagating(_))
    }
}

/// Refraction angle of `mode` in `into`, for a wave arriving from a medium
/// with phase velocity `c_incident_m_s` at `theta_i_rad` radians from
/// normal.
///
/// Errors if `c_incident_m_s <= 0` or `theta_i_rad ∉ [0, π/2]`.
#[must_use]
pub fn refract(
    c_incident_m_s: f64,
    theta_i_rad: f64,
    into: &Material,
    mode: WaveMode,
) -> EcoResult<Refraction> {
    if c_incident_m_s <= 0.0 {
        return Err(EcoError::NonPositive {
            what: "incident velocity c_incident_m_s",
            value: c_incident_m_s,
        });
    }
    if !(0.0..=std::f64::consts::FRAC_PI_2).contains(&theta_i_rad) {
        return Err(EcoError::OutOfRange {
            what: "incident angle theta_i_rad",
            value: theta_i_rad,
            min: 0.0,
            max: std::f64::consts::FRAC_PI_2,
        });
    }
    let Some(c_t) = into.velocity(mode) else {
        return Ok(Refraction::Unsupported);
    };
    let s = theta_i_rad.sin() * c_t / c_incident_m_s;
    Ok(if s > 1.0 {
        Refraction::Evanescent
    } else {
        Refraction::Propagating(s.asin())
    })
}

/// Critical incident angle (radians) above which `mode` in `into` becomes
/// evanescent. `Ok(None)` when the transmitted mode is slower than the
/// incident wave (no critical angle) or unsupported; errors on a
/// non-positive incident velocity.
#[must_use]
pub fn critical_angle(
    c_incident_m_s: f64,
    into: &Material,
    mode: WaveMode,
) -> EcoResult<Option<f64>> {
    if c_incident_m_s <= 0.0 {
        return Err(EcoError::NonPositive {
            what: "incident velocity c_incident_m_s",
            value: c_incident_m_s,
        });
    }
    let Some(c_t) = into.velocity(mode) else {
        return Ok(None);
    };
    Ok(if c_t <= c_incident_m_s {
        None
    } else {
        Some((c_incident_m_s / c_t).asin())
    })
}

/// The S-only incidence window `[first critical angle, second critical
/// angle]` for a P-wave entering `into` from a medium with longitudinal
/// velocity `c_incident_m_s` (paper §3.2: ≈ [34°, 73°] for PLA→concrete).
///
/// `Ok(None)` when no such window exists (e.g. incident medium faster
/// than the target's P velocity, or the target is a fluid); errors on a
/// non-positive incident velocity.
#[must_use]
pub fn s_only_window(c_incident_m_s: f64, into: &Material) -> EcoResult<Option<(f64, f64)>> {
    let Some(ca1) = critical_angle(c_incident_m_s, into, WaveMode::P)? else {
        return Ok(None);
    };
    let Some(ca2) = critical_angle(c_incident_m_s, into, WaveMode::S)? else {
        return Ok(None);
    };
    if ca2 <= ca1 {
        return Ok(None);
    }
    Ok(Some((ca1, ca2)))
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "fuzz")]
    use proptest::prelude::*;

    const PLA: Material = Material::PLA;
    const CON: Material = Material::CONCRETE_REF;

    #[test]
    fn paper_critical_window() {
        let (ca1, ca2) = s_only_window(PLA.cp_m_s, &CON).unwrap().unwrap();
        assert!(
            (ca1.to_degrees() - 34.0).abs() < 1.0,
            "CA1 {}",
            ca1.to_degrees()
        );
        assert!(
            (ca2.to_degrees() - 73.0).abs() < 2.0,
            "CA2 {}",
            ca2.to_degrees()
        );
    }

    #[test]
    fn refracted_p_angle_exceeds_s_angle() {
        // Eqn 3: C_p > C_s ⇒ θ_p > θ_s.
        let theta_i = 20f64.to_radians();
        let p = refract(PLA.cp_m_s, theta_i, &CON, WaveMode::P)
            .unwrap()
            .angle()
            .unwrap();
        let s = refract(PLA.cp_m_s, theta_i, &CON, WaveMode::S)
            .unwrap()
            .angle()
            .unwrap();
        assert!(p > s, "θp={} θs={}", p.to_degrees(), s.to_degrees());
    }

    #[test]
    fn normal_incidence_does_not_refract() {
        let p = refract(PLA.cp_m_s, 0.0, &CON, WaveMode::P)
            .unwrap()
            .angle()
            .unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn beyond_first_critical_angle_p_is_evanescent_s_propagates() {
        let theta = 45f64.to_radians();
        assert_eq!(
            refract(PLA.cp_m_s, theta, &CON, WaveMode::P).unwrap(),
            Refraction::Evanescent
        );
        assert!(refract(PLA.cp_m_s, theta, &CON, WaveMode::S)
            .unwrap()
            .is_propagating());
    }

    #[test]
    fn beyond_second_critical_angle_nothing_propagates() {
        let theta = 80f64.to_radians();
        assert_eq!(
            refract(PLA.cp_m_s, theta, &CON, WaveMode::P).unwrap(),
            Refraction::Evanescent
        );
        assert_eq!(
            refract(PLA.cp_m_s, theta, &CON, WaveMode::S).unwrap(),
            Refraction::Evanescent
        );
    }

    #[test]
    fn s_into_fluid_is_unsupported() {
        assert_eq!(
            refract(CON.cp_m_s, 0.3, &Material::WATER, WaveMode::S).unwrap(),
            Refraction::Unsupported
        );
        assert_eq!(
            critical_angle(1000.0, &Material::WATER, WaveMode::S).unwrap(),
            None
        );
    }

    #[test]
    fn no_critical_angle_into_slower_medium() {
        // Concrete → PLA: transmitted modes are slower, always propagating.
        assert_eq!(critical_angle(CON.cp_m_s, &PLA, WaveMode::P).unwrap(), None);
        assert!(s_only_window(CON.cp_m_s, &PLA).unwrap().is_none());
    }

    #[test]
    fn degenerate_queries_are_typed_errors() {
        // Former asserts: non-positive velocity and out-of-range incidence.
        assert!(refract(0.0, 0.3, &CON, WaveMode::P).is_err());
        assert!(refract(PLA.cp_m_s, -0.1, &CON, WaveMode::P).is_err());
        assert!(matches!(
            refract(PLA.cp_m_s, 2.0, &CON, WaveMode::P),
            Err(EcoError::OutOfRange { value, .. }) if value == 2.0
        ));
        assert!(critical_angle(-1.0, &CON, WaveMode::S).is_err());
        assert!(s_only_window(0.0, &CON).is_err());
    }

    #[cfg(feature = "fuzz")]
    proptest! {
        #[test]
        fn snell_invariant_holds(theta_deg in 0.0f64..33.0) {
            // Below CA1 both modes propagate; sinθ/c must be conserved.
            let theta_i = theta_deg.to_radians();
            let inv = theta_i.sin() / PLA.cp_m_s;
            let p = refract(PLA.cp_m_s, theta_i, &CON, WaveMode::P).unwrap().angle().unwrap();
            let s = refract(PLA.cp_m_s, theta_i, &CON, WaveMode::S).unwrap().angle().unwrap();
            prop_assert!((p.sin() / CON.cp_m_s - inv).abs() < 1e-12);
            prop_assert!((s.sin() / CON.cs_m_s - inv).abs() < 1e-12);
        }

        #[test]
        fn refraction_angle_monotone_in_incidence(a in 1.0f64..30.0, d in 0.5f64..3.0) {
            let t1 = refract(PLA.cp_m_s, a.to_radians(), &CON, WaveMode::S).unwrap().angle().unwrap();
            let t2 = refract(PLA.cp_m_s, (a + d).to_radians(), &CON, WaveMode::S).unwrap().angle().unwrap();
            prop_assert!(t2 > t1);
        }
    }
}

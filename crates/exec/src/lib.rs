//! Zero-dependency deterministic parallel execution engine.
//!
//! The EcoCapsule workspace is built hermetically (no registry access), so
//! this crate hand-rolls the small slice of a task-parallel runtime the
//! simulation actually needs instead of pulling in `rayon`:
//!
//! * [`Pool`] — a scoped worker pool over [`std::thread::scope`] with a
//!   `Mutex<VecDeque>` + `Condvar` work queue. Closures spawned inside a
//!   [`Pool::scope`] may borrow from the enclosing stack frame, exactly like
//!   `std::thread::scope`.
//! * [`Pool::par_map`] — ordered fan-out over a slice: results come back in
//!   input order regardless of which worker ran which item, so parallel
//!   output is *bit-identical* to serial output.
//! * [`seed`] — splitmix64-style derivation of independent per-task RNG
//!   seeds from one base draw, so a parameter grid consumes exactly one
//!   value from the caller's RNG stream no matter how many workers run.
//!
//! # Determinism contract
//!
//! Parallel execution changes *when* a task runs, never *what it computes*:
//!
//! 1. every task receives its inputs (including its RNG seed, via
//!    [`seed::derive`]) from its position in the grid, not from scheduling
//!    order;
//! 2. results are merged back in task-index order;
//! 3. tasks never share mutable simulation state.
//!
//! Under these rules `Pool::serial()` and `Pool::new(n)` produce the same
//! bytes, which the workspace asserts in its determinism tests.
//!
//! # Example
//!
//! ```
//! use exec::Pool;
//!
//! let pool = Pool::new(4);
//! let squares = pool.par_map(&[1u64, 2, 3, 4], |_idx, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod pool;
pub mod seed;

pub use pool::{Pool, TaskScope};

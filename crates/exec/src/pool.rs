//! Scoped worker pool over [`std::thread::scope`].
//!
//! The pool owns nothing between calls: every [`Pool::scope`] spins up its
//! workers inside a `std::thread::scope`, drains the queue, and joins them
//! before returning. That keeps the lifetime story identical to
//! `std::thread::scope` — spawned closures may borrow from the caller's
//! stack — at the cost of thread startup per scope, which is negligible
//! against the multi-millisecond waveform tasks it runs.
//!
//! Internals: one `Mutex<VecDeque>` of boxed tasks plus two `Condvar`s
//! (`work` wakes idle workers, `idle` wakes the submitter waiting for the
//! queue to drain). A drop guard keeps the pending-task counter correct
//! even if a task panics, so a panicking task cannot deadlock the scope.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// A unit of work queued onto a [`TaskScope`].
type Task<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Upper bound on tasks per worker that [`Pool::par_map`] aims for when it
/// chunks its input; finer chunks load-balance better, coarser chunks
/// amortize queue traffic. 4 is a conventional middle ground.
const CHUNKS_PER_WORKER: usize = 4;

/// Locks a mutex, treating poisoning as benign.
///
/// A poisoned pool mutex only means some task panicked while holding it;
/// the protected state (a task queue and two counters) is always left
/// consistent because mutations are single statements. Propagating the
/// panic is the scope's job (via `std::thread::scope` join), not ours.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // lint:allow(no-lock-in-hotpath) pool-internal queue lock, held for O(1) push/pop only, never across a task body or any compute
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Shared between the submitting thread and the workers of one scope.
struct Shared<'env> {
    state: Mutex<State<'env>>,
    /// Signaled when the queue gains a task or shutdown begins.
    work: Condvar,
    /// Signaled when `pending` may have reached zero.
    idle: Condvar,
}

/// The mutable pool state behind the queue mutex.
struct State<'env> {
    queue: VecDeque<Task<'env>>,
    /// Tasks spawned and not yet finished (queued + running).
    pending: usize,
    /// Set once the scope body returned and the queue drained.
    shutdown: bool,
}

/// A deterministic worker pool.
///
/// The pool is a *policy* object — it only records how many workers a
/// scope should use. [`Pool::serial`] (one worker) runs every task inline
/// on the calling thread, which makes "parallel off" a true zero-overhead
/// baseline for benchmarking and a bit-identical reference for the
/// determinism tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    workers: NonZeroUsize,
}

impl Pool {
    /// A pool with `workers` threads; `0` is clamped to `1`.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Pool {
            workers: NonZeroUsize::new(workers.max(1)).unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// The serial pool: every task runs inline on the calling thread.
    #[must_use]
    pub fn serial() -> Self {
        Pool::new(1)
    }

    /// A pool sized to the machine: one worker per available hardware
    /// thread (falling back to 1 when parallelism cannot be queried).
    #[must_use]
    pub fn max_parallel() -> Self {
        let n = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
        Pool::new(n)
    }

    /// Number of workers a scope of this pool will use.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.get()
    }

    /// Runs `body` with a [`TaskScope`] on which tasks can be spawned;
    /// returns once every spawned task has finished.
    ///
    /// Spawned closures may borrow anything that outlives the scope, just
    /// like [`std::thread::scope`]. With a serial pool each task runs
    /// immediately on the calling thread at its `spawn` site, so task
    /// side effects happen in spawn order — parallel pools guarantee only
    /// completion-before-return, not ordering, which is why deterministic
    /// callers communicate results through per-task slots (see
    /// [`Pool::par_map`]) rather than shared accumulators.
    ///
    /// ```
    /// use exec::Pool;
    /// use std::sync::Mutex;
    ///
    /// let pool = Pool::new(4);
    /// let total = Mutex::new(0u64);
    /// pool.scope(|scope| {
    ///     for i in 1..=8u64 {
    ///         let total = &total;
    ///         scope.spawn(move || {
    ///             *total.lock().unwrap() += i;
    ///         });
    ///     }
    /// });
    /// assert_eq!(total.into_inner().unwrap(), 36);
    /// ```
    pub fn scope<'env, F, R>(&self, body: F) -> R
    where
        F: for<'scope> FnOnce(&'scope TaskScope<'scope, 'env>) -> R,
    {
        if self.workers.get() == 1 {
            return body(&TaskScope {
                mode: ScopeMode::Inline,
            });
        }
        let shared = Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                pending: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        };
        std::thread::scope(|threads| {
            for _ in 0..self.workers.get() {
                threads.spawn(|| worker_loop(&shared));
            }
            let scope = TaskScope {
                mode: ScopeMode::Pooled(&shared),
            };
            let result = body(&scope);
            // Wait for the queue to drain, then release the workers.
            let mut st = lock(&shared.state);
            while st.pending > 0 {
                st = shared.idle.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            st.shutdown = true;
            drop(st);
            shared.work.notify_all();
            result
        })
    }

    /// Maps `map` over `items` on the pool, returning results **in input
    /// order** regardless of scheduling.
    ///
    /// `map` receives `(index, &item)` so tasks can derive per-index state
    /// (e.g. an RNG seed via [`crate::seed::derive`]). Items are grouped
    /// into contiguous chunks (about `CHUNKS_PER_WORKER` per worker) to
    /// amortize queue traffic; each chunk writes into its own slot and the
    /// slots are concatenated in order afterwards, so the output is
    /// bit-identical to `items.iter().enumerate().map(..).collect()`.
    pub fn par_map<T, U, F>(&self, items: &[T], map: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        if self.workers.get() == 1 || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, x)| map(i, x)).collect();
        }
        let per_chunk = items
            .len()
            .div_ceil(self.workers.get() * CHUNKS_PER_WORKER)
            .max(1);
        let chunks: Vec<(usize, &[T])> = items
            .chunks(per_chunk)
            .enumerate()
            .map(|(c, chunk)| (c * per_chunk, chunk))
            .collect();
        let slots: Vec<Mutex<Vec<U>>> = chunks.iter().map(|_| Mutex::new(Vec::new())).collect();
        let map = &map;
        self.scope(|scope| {
            for (&(first, chunk), slot) in chunks.iter().zip(&slots) {
                scope.spawn(move || {
                    let out: Vec<U> = chunk
                        .iter()
                        .enumerate()
                        .map(|(k, x)| map(first + k, x))
                        .collect();
                    *lock(slot) = out;
                });
            }
        });
        slots
            .into_iter()
            .flat_map(|slot| slot.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect()
    }
}

/// How a [`TaskScope`] dispatches spawned tasks.
enum ScopeMode<'scope, 'env> {
    /// Serial pool: run the task right here, right now.
    Inline,
    /// Parallel pool: push onto the shared queue and wake a worker.
    Pooled(&'scope Shared<'env>),
}

/// Handle passed to the closure of [`Pool::scope`]; spawns tasks onto the
/// pool. Mirrors [`std::thread::Scope`].
pub struct TaskScope<'scope, 'env: 'scope> {
    mode: ScopeMode<'scope, 'env>,
}

impl<'scope, 'env> TaskScope<'scope, 'env> {
    /// Queues `task` for execution; with a serial pool it runs inline
    /// before `spawn` returns.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'env,
    {
        match self.mode {
            ScopeMode::Inline => task(),
            ScopeMode::Pooled(shared) => {
                let mut st = lock(&shared.state);
                st.queue.push_back(Box::new(task));
                st.pending += 1;
                drop(st);
                shared.work.notify_one();
            }
        }
    }
}

/// Worker body: pop-and-run until shutdown.
fn worker_loop(shared: &Shared<'_>) {
    loop {
        let task = {
            let mut st = lock(&shared.state);
            loop {
                if let Some(task) = st.queue.pop_front() {
                    break Some(task);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(task) = task else { return };
        // The guard decrements `pending` even if the task panics, so the
        // submitter never waits forever (the panic itself is re-raised by
        // std::thread::scope when the worker is joined).
        let _finish = FinishGuard(shared);
        task();
    }
}

/// Decrements the pending-task counter on drop (i.e. also on panic).
struct FinishGuard<'a, 'env>(&'a Shared<'env>);

impl Drop for FinishGuard<'_, '_> {
    fn drop(&mut self) {
        let mut st = lock(&self.0.state);
        st.pending = st.pending.saturating_sub(1);
        if st.pending == 0 {
            self.0.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(Pool::new(0).workers(), 1);
    }

    #[test]
    fn serial_scope_runs_inline_in_order() {
        let pool = Pool::serial();
        let mut order = Vec::new();
        let log = Mutex::new(&mut order);
        pool.scope(|scope| {
            for i in 0..4 {
                let log = &log;
                scope.spawn(move || log.lock().unwrap().push(i));
            }
        });
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn parallel_scope_completes_all_tasks() {
        let pool = Pool::new(4);
        let done = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..64 {
                let done = &done;
                scope.spawn(move || {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..103).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for workers in [1, 2, 3, 8] {
            let got = Pool::new(workers).par_map(&items, |_, &x| x * 3 + 1);
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn par_map_passes_correct_indices() {
        let items = vec![(); 57];
        let got = Pool::new(3).par_map(&items, |i, ()| i);
        let expect: Vec<usize> = (0..57).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn par_map_borrows_environment() {
        let offsets: Vec<f64> = vec![0.5; 16];
        let scale = 2.0_f64;
        let got = Pool::new(2).par_map(&offsets, |i, &o| (i as f64) * scale + o);
        assert!((got[3] - 6.5).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_inputs_take_the_fast_path() {
        let none: Vec<u32> = Vec::new();
        assert!(Pool::new(4).par_map(&none, |_, &x| x).is_empty());
        assert_eq!(Pool::new(4).par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // A task spawning onto a *different* pool must not interact with
        // the outer queue.
        let outer = Pool::new(2);
        let total = AtomicUsize::new(0);
        outer.scope(|scope| {
            for _ in 0..4 {
                let total = &total;
                scope.spawn(move || {
                    let inner = Pool::serial();
                    let partial = inner.par_map(&[1usize, 2, 3], |_, &x| x);
                    total.fetch_add(partial.iter().sum::<usize>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 24);
    }
}

//! Per-task RNG seed derivation.
//!
//! A parallel grid must not share one sequential RNG stream between tasks:
//! the draw order would then depend on scheduling and the run would stop
//! being reproducible. Instead the caller draws **one** base value from its
//! own RNG and every task derives an independent seed from
//! `(base, task_index)` with a splitmix64-style finalizer — the same
//! construction `xrand` uses to expand a `u64` seed into xoshiro state.
//!
//! Derived seeds are deterministic, cheap (a few multiplies), and
//! well-decorrelated: flipping one input bit flips each output bit with
//! probability ≈ 1/2.

/// Derives the RNG seed for task `index` from one `base` draw.
///
/// The same `(base, index)` pair always yields the same seed, independent
/// of worker count or scheduling order.
///
/// ```
/// let base = 0x5EED_u64;
/// let a = exec::seed::derive(base, 0);
/// let b = exec::seed::derive(base, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, exec::seed::derive(base, 0));
/// ```
#[must_use]
pub fn derive(base: u64, index: u64) -> u64 {
    // splitmix64 finalizer over the combined state. The odd constant that
    // folds `index` in keeps consecutive indices far apart in state space.
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Two-level seed derivation: the stream for sub-task `inner` of task
/// `outer`.
///
/// A fleet survey derives one stream per wall and, inside each wall's
/// survey, one stream per phase/capsule; composing [`derive()`] twice
/// keeps the two index spaces from colliding (`derive2(b, 1, 0)` and
/// `derive2(b, 0, 1)` are unrelated, unlike `derive(b, 1 + 0)` vs
/// `derive(b, 0 + 1)`).
///
/// ```
/// let base = 0x5EED_u64;
/// assert_ne!(exec::seed::derive2(base, 1, 0), exec::seed::derive2(base, 0, 1));
/// assert_eq!(
///     exec::seed::derive2(base, 3, 4),
///     exec::seed::derive(exec::seed::derive(base, 3), 4)
/// );
/// ```
#[must_use]
pub fn derive2(base: u64, outer: u64, inner: u64) -> u64 {
    derive(derive(base, outer), inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive(42, 7), derive(42, 7));
    }

    #[test]
    fn derive2_separates_index_levels() {
        // The matrix of (outer, inner) seeds must be collision-free on a
        // small grid — the property a flat `derive(base, a + b)` lacks.
        let base = 0xF1EE7;
        let mut seeds: Vec<u64> = (0..16)
            .flat_map(|a| (0..16).map(move |b| derive2(base, a, b)))
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 256, "derive2 grid must be collision-free");
    }

    #[test]
    fn derive_separates_indices() {
        let base = 0xDEAD_BEEF;
        let seeds: Vec<u64> = (0..256).map(|i| derive(base, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "derived seeds must be unique");
    }

    #[test]
    fn derive_separates_bases() {
        assert_ne!(derive(1, 0), derive(2, 0));
    }

    #[test]
    fn derive_avalanche_is_roughly_half() {
        // Flipping one bit of the index should flip ~32 of 64 output bits.
        let a = derive(99, 4);
        let b = derive(99, 5);
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "weak avalanche: {flipped}");
    }
}

//! FNV-1a digests over word streams.
//!
//! The fault matrix proves determinism by digest equality: the same
//! seed must yield bit-identical survey reports at any worker count.
//! FNV-1a is order-sensitive, dependency-free, and stable across
//! platforms, which makes the digests safe to check into fixtures.

/// FNV-1a over a `u64` word stream (little-endian byte order).
#[must_use]
pub fn fnv1a64<I: IntoIterator<Item = u64>>(words: I) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for w in words {
        for byte in w.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

/// FNV-1a over a bit string, packed 64 bits per word (LSB first, with a
/// trailing length word so `[true]` and `[true, false]` differ).
#[must_use]
pub fn fnv1a64_bits(bits: &[bool]) -> u64 {
    let mut words: Vec<u64> = Vec::with_capacity(bits.len() / 64 + 2);
    for chunk in bits.chunks(64) {
        let mut w = 0u64;
        for (i, &b) in chunk.iter().enumerate() {
            if b {
                w |= 1u64 << i;
            }
        }
        words.push(w);
    }
    words.push(bits.len() as u64);
    fnv1a64(words)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive() {
        assert_ne!(fnv1a64([1, 2]), fnv1a64([2, 1]));
    }

    #[test]
    fn digest_is_stable() {
        // Pinned: a silent change to the digest would invalidate every
        // checked-in fixture.
        assert_eq!(fnv1a64([]), 0xCBF2_9CE4_8422_2325);
        assert_eq!(
            fnv1a64([0x1234_5678_9ABC_DEF0]),
            fnv1a64([0x1234_5678_9ABC_DEF0])
        );
    }

    #[test]
    fn bit_digest_distinguishes_length() {
        assert_ne!(fnv1a64_bits(&[true]), fnv1a64_bits(&[true, false]));
        assert_ne!(fnv1a64_bits(&[]), fnv1a64_bits(&[false]));
    }
}

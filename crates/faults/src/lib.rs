//! Deterministic fault injection for the EcoCapsule stack.
//!
//! A buried sensor network spends 17 months inside a hostile medium
//! (PAPER.md §3, §6): the charging beam wanders and nodes brown out,
//! rebar multipath buries the backscatter link in self-interference,
//! curing and temperature drift detune the resonant channel, and the
//! MCU's uncalibrated DCO drifts with temperature. This crate turns
//! those failure modes into a *schedule* — a seeded, reproducible
//! timeline of perturbation windows that the channel, node, reader and
//! scenario layers consume through small composable hooks.
//!
//! Design contract:
//!
//! - **Deterministic.** A [`FaultPlan`] is a pure function of
//!   `(seed, intensity)`. Each fault kind derives its own RNG stream
//!   with [`exec::seed::derive`], so kinds are statistically
//!   independent and adding windows of one kind never reshuffles
//!   another.
//! - **Discrete time.** The unit of time is the protocol *slot*: one
//!   reader transaction (command → reply) consumes one slot. A
//!   [`Timeline`] cursor walks a plan slot by slot; retry backoff skips
//!   slots forward, which is exactly what lets a retry outlive a fault
//!   window.
//! - **Composable.** Layers never see the schedule, only the
//!   [`Perturbation`] in force at their slot — a plain value the
//!   channel/node hooks map onto noise sigma, leak amplitude, clock
//!   error and power loss.
//!
//! See DESIGN.md §4 for the fault model and the recovery contract the
//! reader layer builds on top.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod digest;
pub mod plan;

pub use digest::fnv1a64;
pub use plan::{
    FaultIntensity, FaultKind, FaultPlan, FaultWindow, KindRate, Perturbation, Timeline,
};

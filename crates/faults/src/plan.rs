//! The fault-schedule engine: seeded windows of perturbation over a
//! discrete slot timeline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The failure modes the chaos substrate can inject (PAPER.md §3/§6 and
/// the intermittent-power / burst-loss findings of the related SHM
/// literature).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// An SNR dip: the uplink noise floor rises by `magnitude` dB
    /// (weather loading, machinery, acoustic interference).
    SnrDip,
    /// A capsule brownout/dropout window: the CBW wanders off the node
    /// and transactions inside the window see a silent capsule.
    Brownout,
    /// Sampling-clock drift: the node DCO runs `magnitude` fractionally
    /// fast or slow, degrading PIE edge classification.
    ClockDrift,
    /// Temperature-induced wave-velocity shift: propagation delay (and
    /// with it the leak/backscatter phase relation) moves by
    /// `magnitude` fractionally.
    VelocityShift,
    /// A rebar multipath burst: coherent reflections multiply the
    /// self-interference leak by `1 + magnitude`.
    MultipathBurst,
}

impl FaultKind {
    /// Every kind, in stream order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::SnrDip,
        FaultKind::Brownout,
        FaultKind::ClockDrift,
        FaultKind::VelocityShift,
        FaultKind::MultipathBurst,
    ];

    /// The seed-derivation stream index of this kind. Streams are what
    /// make kinds independent: window draws for one kind never consume
    /// randomness from another's sequence.
    #[must_use]
    pub fn stream(self) -> u64 {
        match self {
            FaultKind::SnrDip => 0,
            FaultKind::Brownout => 1,
            FaultKind::ClockDrift => 2,
            FaultKind::VelocityShift => 3,
            FaultKind::MultipathBurst => 4,
        }
    }
}

/// One timed perturbation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// Which failure mode is active.
    pub kind: FaultKind,
    /// First slot the window covers.
    pub start_slot: u64,
    /// Number of slots covered (≥ 1).
    pub len_slots: u64,
    /// Kind-dependent magnitude (dB for [`FaultKind::SnrDip`], signed
    /// fraction for the drift kinds, leak multiplier − 1 for
    /// [`FaultKind::MultipathBurst`], unused for brownouts).
    pub magnitude: f64,
}

impl FaultWindow {
    /// Whether `slot` falls inside this window.
    #[must_use]
    pub fn contains(&self, slot: u64) -> bool {
        slot >= self.start_slot && slot < self.start_slot + self.len_slots
    }
}

/// Generation rate for one fault kind: how many windows over the
/// horizon, how long each may last, and the magnitude range.
#[derive(Debug, Clone, Copy)]
pub struct KindRate {
    /// Windows drawn over the plan horizon.
    pub windows: usize,
    /// Maximum window length in slots (lengths draw from `1..=max`).
    pub max_len_slots: u64,
    /// Inclusive magnitude bounds; for the signed kinds the sign is a
    /// separate coin flip over `[lo, hi]` of absolute magnitude.
    pub magnitude_lo: f64,
    /// Upper magnitude bound.
    pub magnitude_hi: f64,
}

impl KindRate {
    /// No windows of this kind.
    #[must_use]
    pub fn off() -> Self {
        KindRate {
            windows: 0,
            max_len_slots: 1,
            magnitude_lo: 0.0,
            magnitude_hi: 0.0,
        }
    }
}

/// The per-kind rates a plan is generated from — the "weather" a survey
/// must survive. The presets form the standard fault matrix swept by
/// `bench::faults`.
#[derive(Debug, Clone, Copy)]
pub struct FaultIntensity {
    /// Timeline horizon in slots; windows start anywhere inside it.
    pub horizon_slots: u64,
    /// SNR-dip rate (magnitudes in dB of extra noise).
    pub snr_dip: KindRate,
    /// Brownout rate (magnitudes ignored).
    pub brownout: KindRate,
    /// Clock-drift rate (magnitudes as DCO error fractions).
    pub clock_drift: KindRate,
    /// Wave-velocity-shift rate (magnitudes as velocity fractions).
    pub velocity_shift: KindRate, // lint:allow(unit-suffix) a KindRate descriptor, not a physical quantity
    /// Multipath-burst rate (magnitudes as leak-multiplier excess).
    pub multipath_burst: KindRate,
}

impl FaultIntensity {
    /// No faults at all: the control row of the matrix.
    #[must_use]
    pub fn calm(horizon_slots: u64) -> Self {
        FaultIntensity {
            horizon_slots,
            snr_dip: KindRate::off(),
            brownout: KindRate::off(),
            clock_drift: KindRate::off(),
            velocity_shift: KindRate::off(),
            multipath_burst: KindRate::off(),
        }
    }

    /// Sparse, survivable weather: short dips and rare brownouts.
    #[must_use]
    pub fn mild(horizon_slots: u64) -> Self {
        FaultIntensity {
            horizon_slots,
            snr_dip: KindRate {
                windows: 2,
                max_len_slots: 2,
                magnitude_lo: 45.0,
                magnitude_hi: 60.0,
            },
            brownout: KindRate {
                windows: 1,
                max_len_slots: 2,
                magnitude_lo: 0.0,
                magnitude_hi: 0.0,
            },
            clock_drift: KindRate {
                windows: 1,
                max_len_slots: 2,
                magnitude_lo: 0.05,
                magnitude_hi: 0.09,
            },
            velocity_shift: KindRate {
                windows: 1,
                max_len_slots: 3,
                magnitude_lo: 0.01,
                magnitude_hi: 0.03,
            },
            multipath_burst: KindRate::off(),
        }
    }

    /// The paper's bad day: frequent dips, brownouts and bursts.
    #[must_use]
    pub fn moderate(horizon_slots: u64) -> Self {
        FaultIntensity {
            snr_dip: KindRate {
                windows: 4,
                max_len_slots: 3,
                magnitude_lo: 50.0,
                magnitude_hi: 65.0,
            },
            brownout: KindRate {
                windows: 2,
                max_len_slots: 3,
                magnitude_lo: 0.0,
                magnitude_hi: 0.0,
            },
            clock_drift: KindRate {
                windows: 2,
                max_len_slots: 3,
                magnitude_lo: 0.06,
                magnitude_hi: 0.10,
            },
            multipath_burst: KindRate {
                windows: 2,
                max_len_slots: 2,
                magnitude_lo: 4.0,
                magnitude_hi: 9.0,
            },
            ..FaultIntensity::mild(horizon_slots)
        }
    }

    /// Rebar canyon in a storm: long overlapping windows of everything.
    #[must_use]
    pub fn severe(horizon_slots: u64) -> Self {
        FaultIntensity {
            snr_dip: KindRate {
                windows: 7,
                max_len_slots: 5,
                magnitude_lo: 55.0,
                magnitude_hi: 70.0,
            },
            brownout: KindRate {
                windows: 4,
                max_len_slots: 4,
                magnitude_lo: 0.0,
                magnitude_hi: 0.0,
            },
            clock_drift: KindRate {
                windows: 3,
                max_len_slots: 4,
                magnitude_lo: 0.07,
                magnitude_hi: 0.12,
            },
            velocity_shift: KindRate {
                windows: 2,
                max_len_slots: 4,
                magnitude_lo: 0.02,
                magnitude_hi: 0.05,
            },
            multipath_burst: KindRate {
                windows: 3,
                max_len_slots: 3,
                magnitude_lo: 6.0,
                magnitude_hi: 12.0,
            },
            horizon_slots,
        }
    }

    /// The rate for one kind.
    #[must_use]
    pub fn rate(&self, kind: FaultKind) -> KindRate {
        match kind {
            FaultKind::SnrDip => self.snr_dip,
            FaultKind::Brownout => self.brownout,
            FaultKind::ClockDrift => self.clock_drift,
            FaultKind::VelocityShift => self.velocity_shift,
            FaultKind::MultipathBurst => self.multipath_burst,
        }
    }
}

/// The aggregate perturbation in force at one slot: every layer hook
/// consumes this value, never the schedule itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Perturbation {
    /// Extra uplink noise (dB over the session's nominal sigma).
    pub snr_dip_db: f64,
    /// Whether the capsule is inside a brownout window.
    pub outage: bool,
    /// Aggregate DCO error fraction (signed).
    pub clock_drift_frac: f64,
    /// Aggregate wave-velocity shift fraction (signed).
    pub velocity_shift_frac: f64,
    /// Self-interference leak multiplier (1.0 = nominal).
    pub multipath_leak_mult: f64,
}

impl Default for Perturbation {
    fn default() -> Self {
        Perturbation {
            snr_dip_db: 0.0,
            outage: false,
            clock_drift_frac: 0.0,
            velocity_shift_frac: 0.0,
            multipath_leak_mult: 1.0,
        }
    }
}

impl Perturbation {
    /// The identity perturbation (no fault in force).
    #[must_use]
    pub fn none() -> Self {
        Perturbation::default()
    }

    /// Whether this perturbation changes anything at all.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        !self.outage
            && self.snr_dip_db.abs() < 1e-12
            && self.clock_drift_frac.abs() < 1e-12
            && self.velocity_shift_frac.abs() < 1e-12
            && (self.multipath_leak_mult - 1.0).abs() < 1e-12
    }

    /// The factor nominal noise sigma grows by under this dip
    /// (amplitude domain: `10^(dB/20)`).
    #[must_use]
    pub fn noise_mult(&self) -> f64 {
        10f64.powf(self.snr_dip_db / 20.0)
    }
}

/// A generated fault schedule: every window of every kind, sorted by
/// start slot. Pure data — query it at any slot, clone it across
/// workers, digest it for fixtures.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The seed the plan was generated from.
    pub seed: u64,
    /// Horizon the windows were drawn over.
    pub horizon_slots: u64,
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// Generates the schedule for `(seed, intensity)`. Deterministic:
    /// the same pair always yields the identical window list, and each
    /// kind consumes only its own derived RNG stream.
    #[must_use]
    pub fn generate(seed: u64, intensity: &FaultIntensity) -> FaultPlan {
        let horizon_slots = intensity.horizon_slots.max(1);
        let mut windows: Vec<FaultWindow> = Vec::new();
        for kind in FaultKind::ALL {
            let rate = intensity.rate(kind);
            let mut rng = StdRng::seed_from_u64(exec::seed::derive(seed, kind.stream()));
            for _ in 0..rate.windows {
                let start_slot = rng.gen_range(0..horizon_slots);
                let len_slots = rng.gen_range(1..=rate.max_len_slots.max(1));
                let mag = if rate.magnitude_hi > rate.magnitude_lo {
                    rng.gen_range(rate.magnitude_lo..=rate.magnitude_hi)
                } else {
                    rate.magnitude_lo
                };
                let magnitude = match kind {
                    // Drift kinds are signed; the rest are magnitudes.
                    FaultKind::ClockDrift | FaultKind::VelocityShift => {
                        if rng.gen::<bool>() {
                            mag
                        } else {
                            -mag
                        }
                    }
                    _ => mag,
                };
                windows.push(FaultWindow {
                    kind,
                    start_slot,
                    len_slots,
                    magnitude,
                });
            }
        }
        windows.sort_by(|a, b| {
            (a.start_slot, a.kind.stream(), a.len_slots).cmp(&(
                b.start_slot,
                b.kind.stream(),
                b.len_slots,
            ))
        });
        FaultPlan {
            seed,
            horizon_slots,
            windows,
        }
    }

    /// An empty plan: every slot is quiet. The no-fault baseline.
    #[must_use]
    pub fn quiet() -> FaultPlan {
        FaultPlan {
            seed: 0,
            horizon_slots: 1,
            windows: Vec::new(),
        }
    }

    /// A handcrafted plan from explicit windows — for tests, examples,
    /// and replaying a specific incident. Windows are normalized into
    /// the same order [`FaultPlan::generate`] produces, so digests of a
    /// handcrafted plan and a generated plan with the same windows agree.
    #[must_use]
    pub fn from_windows(seed: u64, horizon_slots: u64, mut windows: Vec<FaultWindow>) -> FaultPlan {
        windows.sort_by(|a, b| {
            (a.start_slot, a.kind.stream(), a.len_slots).cmp(&(
                b.start_slot,
                b.kind.stream(),
                b.len_slots,
            ))
        });
        FaultPlan {
            seed,
            horizon_slots: horizon_slots.max(1),
            windows,
        }
    }

    /// All windows, sorted by start slot.
    #[must_use]
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// The windows of one kind, in start order.
    pub fn windows_of(&self, kind: FaultKind) -> impl Iterator<Item = &FaultWindow> {
        self.windows.iter().filter(move |w| w.kind == kind)
    }

    /// The aggregate perturbation in force at `slot`. Overlapping
    /// windows compose: dips and drifts add, leak multipliers multiply,
    /// any brownout wins.
    #[must_use]
    pub fn perturbation_at(&self, slot: u64) -> Perturbation {
        let mut p = Perturbation::default();
        for w in &self.windows {
            if !w.contains(slot) {
                continue;
            }
            match w.kind {
                FaultKind::SnrDip => p.snr_dip_db += w.magnitude,
                FaultKind::Brownout => p.outage = true,
                FaultKind::ClockDrift => p.clock_drift_frac += w.magnitude,
                FaultKind::VelocityShift => p.velocity_shift_frac += w.magnitude,
                FaultKind::MultipathBurst => p.multipath_leak_mult *= 1.0 + w.magnitude,
            }
        }
        p
    }

    /// FNV-1a digest of the full schedule — the determinism witness the
    /// property tests and fixtures pin.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let words = self.windows.iter().flat_map(|w| {
            [
                w.kind.stream(),
                w.start_slot,
                w.len_slots,
                w.magnitude.to_bits(),
            ]
        });
        crate::digest::fnv1a64([self.seed, self.horizon_slots].into_iter().chain(words))
    }
}

/// A cursor over a plan: the reader advances it one slot per
/// transaction and *skips* slots while backing off, so retries sample a
/// later — possibly calmer — part of the schedule.
#[derive(Debug, Clone)]
pub struct Timeline<'a> {
    plan: &'a FaultPlan,
    slot: u64,
}

impl<'a> Timeline<'a> {
    /// A cursor at slot 0.
    #[must_use]
    pub fn new(plan: &'a FaultPlan) -> Self {
        Timeline { plan, slot: 0 }
    }

    /// A cursor starting at `slot` — how parallel per-capsule phases
    /// get disjoint, scheduling-independent slices of the timeline.
    #[must_use]
    pub fn starting_at(plan: &'a FaultPlan, slot: u64) -> Self {
        Timeline { plan, slot }
    }

    /// The current slot index.
    #[must_use]
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// The perturbation in force now, without advancing.
    #[must_use]
    pub fn current(&self) -> Perturbation {
        self.plan.perturbation_at(self.slot)
    }

    /// Consumes one slot (one transaction): returns the perturbation
    /// that governed it.
    pub fn advance(&mut self) -> Perturbation {
        let p = self.plan.perturbation_at(self.slot);
        self.slot = self.slot.saturating_add(1);
        p
    }

    /// Skips `n` slots (retry backoff: waiting is spending time).
    pub fn skip(&mut self, n: u64) {
        self.slot = self.slot.saturating_add(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "fuzz")]
    use proptest::prelude::*;

    #[test]
    fn same_seed_same_schedule() {
        let i = FaultIntensity::severe(200);
        let a = FaultPlan::generate(42, &i);
        let b = FaultPlan::generate(42, &i);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn different_seeds_differ() {
        let i = FaultIntensity::severe(200);
        assert_ne!(
            FaultPlan::generate(1, &i).digest(),
            FaultPlan::generate(2, &i).digest()
        );
    }

    #[test]
    fn kind_streams_are_independent() {
        // Turning one kind off must not change another kind's windows.
        let full = FaultIntensity::severe(300);
        let mut no_dips = full;
        no_dips.snr_dip = KindRate::off();
        let a = FaultPlan::generate(7, &full);
        let b = FaultPlan::generate(7, &no_dips);
        let bo_a: Vec<_> = a.windows_of(FaultKind::Brownout).cloned().collect();
        let bo_b: Vec<_> = b.windows_of(FaultKind::Brownout).cloned().collect();
        assert_eq!(bo_a, bo_b, "brownouts must not depend on the dip stream");
        let cd_a: Vec<_> = a.windows_of(FaultKind::ClockDrift).cloned().collect();
        let cd_b: Vec<_> = b.windows_of(FaultKind::ClockDrift).cloned().collect();
        assert_eq!(cd_a, cd_b);
    }

    #[test]
    fn calm_plan_is_quiet_everywhere() {
        let plan = FaultPlan::generate(9, &FaultIntensity::calm(100));
        for slot in 0..100 {
            assert!(plan.perturbation_at(slot).is_quiet(), "slot {slot}");
        }
    }

    #[test]
    fn windows_compose_at_overlap() {
        let mut plan = FaultPlan::quiet();
        plan.windows = vec![
            FaultWindow {
                kind: FaultKind::SnrDip,
                start_slot: 0,
                len_slots: 4,
                magnitude: 10.0,
            },
            FaultWindow {
                kind: FaultKind::SnrDip,
                start_slot: 2,
                len_slots: 4,
                magnitude: 5.0,
            },
            FaultWindow {
                kind: FaultKind::MultipathBurst,
                start_slot: 2,
                len_slots: 1,
                magnitude: 9.0,
            },
        ];
        let p = plan.perturbation_at(2);
        assert!((p.snr_dip_db - 15.0).abs() < 1e-12);
        assert!((p.multipath_leak_mult - 10.0).abs() < 1e-12);
        assert!((plan.perturbation_at(5).snr_dip_db - 5.0).abs() < 1e-12);
        assert!(plan.perturbation_at(6).is_quiet());
    }

    #[test]
    fn noise_mult_matches_db() {
        let p = Perturbation {
            snr_dip_db: 20.0,
            ..Perturbation::none()
        };
        assert!((p.noise_mult() - 10.0).abs() < 1e-9);
        assert!((Perturbation::none().noise_mult() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn timeline_advance_and_skip() {
        let plan = FaultPlan::generate(3, &FaultIntensity::moderate(50));
        let mut t = Timeline::new(&plan);
        let p0 = t.advance();
        assert_eq!(p0, plan.perturbation_at(0));
        assert_eq!(t.slot(), 1);
        t.skip(10);
        assert_eq!(t.slot(), 11);
        assert_eq!(t.current(), plan.perturbation_at(11));
    }

    #[test]
    fn severe_plan_actually_has_windows() {
        let plan = FaultPlan::generate(5, &FaultIntensity::severe(100));
        for kind in FaultKind::ALL {
            assert!(
                plan.windows_of(kind).count() > 0,
                "{kind:?} missing from severe"
            );
        }
    }

    #[cfg(feature = "fuzz")]
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn plan_is_a_pure_function_of_seed(seed in any::<u64>(), horizon in 10u64..500) {
            let i = FaultIntensity::moderate(horizon);
            prop_assert_eq!(
                FaultPlan::generate(seed, &i),
                FaultPlan::generate(seed, &i)
            );
        }

        #[test]
        fn windows_stay_inside_generation_bounds(seed in any::<u64>(), horizon in 10u64..300) {
            let i = FaultIntensity::severe(horizon);
            let plan = FaultPlan::generate(seed, &i);
            for w in plan.windows() {
                prop_assert!(w.start_slot < horizon);
                prop_assert!(w.len_slots >= 1);
                let rate = i.rate(w.kind);
                prop_assert!(w.len_slots <= rate.max_len_slots.max(1));
                prop_assert!(w.magnitude.abs() <= rate.magnitude_hi + 1e-12);
            }
        }
    }
}

//! Versioned checkpoint/resume byte format for a fleet run.
//!
//! A checkpoint freezes everything dynamic about a [`crate::Fleet`] at a
//! round boundary — scheduler credits/ages/queue, the grant log, and the
//! results of every wall already surveyed — plus a digest of the static
//! configuration (specs and budget) so a resume against the wrong fleet
//! is rejected instead of silently diverging.
//!
//! Wire format (all integers little-endian `u64`):
//!
//! ```text
//! magic  "ECOFLEET"              8 bytes
//! version                        u64   (currently 1)
//! config_digest                  u64   FNV-1a over specs + budget
//! round                          u64
//! n_walls                        u64
//! per wall:
//!   tag                          u64   0 = pending, 1 = done
//!   pending: credit, age
//!   done:    round_completed, granted_slots,
//!            report   (powered, inventoried, readings, outcomes —
//!                      each length-prefixed),
//!            counters (len, then (name, total)),
//!            histograms (len, then (name, encode_words)),
//!            trace    (string)
//! queue    (len, then indices, front first)
//! grants   (len, then (round, wall, slots))
//! ```
//!
//! Strings are a byte length followed by the raw bytes. Floats travel as
//! `f64::to_bits`, so a decode→re-encode round trip is byte-identical
//! and a resumed run replays bit-for-bit.

use dsp::{EcoError, EcoResult};
use ecocapsule::scenario::{CapsuleOutcome, SurveyReport};
use obs::Histogram;
use protocol::frame::SensorKind;

use crate::report::WallResult;
use crate::scheduler::Grant;

const MAGIC: &[u8; 8] = b"ECOFLEET";

/// Checkpoint format version this build reads and writes.
pub const CHECKPOINT_VERSION: u64 = 1;

/// A frozen fleet state: everything needed to resume a run at a round
/// boundary and finish with a bit-identical [`crate::FleetReport`].
///
/// Produced by [`crate::Fleet::checkpoint`], consumed by
/// [`crate::Fleet::resume`]; travels as bytes via
/// [`FleetCheckpoint::to_bytes`] / [`FleetCheckpoint::from_bytes`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCheckpoint {
    pub(crate) config_digest: u64,
    pub(crate) round: u64,
    pub(crate) walls: Vec<WallEntry>,
    pub(crate) queue: Vec<usize>,
    pub(crate) grants: Vec<Grant>,
}

/// One wall's dynamic state inside a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WallEntry {
    /// Not yet surveyed: accumulated scheduler credit and age.
    Pending {
        /// Slots granted so far.
        credit_slots: u64,
        /// Consecutive grantless rounds.
        age_rounds: u32,
    },
    /// Surveyed: the frozen result.
    Done(WallResult),
}

impl FleetCheckpoint {
    /// The configuration digest this checkpoint was taken under; a
    /// resume recomputes it from the offered specs and refuses a
    /// mismatch.
    #[must_use]
    pub fn config_digest(&self) -> u64 {
        self.config_digest
    }

    /// Scheduling rounds completed when the checkpoint was taken.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// How many walls had already completed their survey.
    #[must_use]
    pub fn walls_done(&self) -> usize {
        self.walls
            .iter()
            .filter(|w| matches!(w, WallEntry::Done(_)))
            .count()
    }

    /// Serializes to the versioned byte format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u64(&mut out, CHECKPOINT_VERSION);
        put_u64(&mut out, self.config_digest);
        put_u64(&mut out, self.round);
        put_u64(&mut out, self.walls.len() as u64);
        for wall in &self.walls {
            match wall {
                WallEntry::Pending {
                    credit_slots,
                    age_rounds,
                } => {
                    put_u64(&mut out, 0);
                    put_u64(&mut out, *credit_slots);
                    put_u64(&mut out, u64::from(*age_rounds));
                }
                WallEntry::Done(r) => {
                    put_u64(&mut out, 1);
                    put_str(&mut out, &r.name);
                    put_u64(&mut out, r.round_completed);
                    put_u64(&mut out, r.granted_slots);
                    put_report(&mut out, &r.report);
                    put_u64(&mut out, r.counters.len() as u64);
                    for (name, total) in &r.counters {
                        put_str(&mut out, name);
                        put_u64(&mut out, *total);
                    }
                    put_u64(&mut out, r.histograms.len() as u64);
                    for (name, h) in &r.histograms {
                        put_str(&mut out, name);
                        let words = h.encode_words();
                        put_u64(&mut out, words.len() as u64);
                        for w in words {
                            put_u64(&mut out, w);
                        }
                    }
                    put_str(&mut out, &r.trace_jsonl);
                }
            }
        }
        put_u64(&mut out, self.queue.len() as u64);
        for &i in &self.queue {
            put_u64(&mut out, i as u64);
        }
        put_u64(&mut out, self.grants.len() as u64);
        for g in &self.grants {
            put_u64(&mut out, g.round);
            put_u64(&mut out, g.wall as u64);
            put_u64(&mut out, g.slots);
        }
        out
    }

    /// Parses the versioned byte format. Rejects a bad magic, an
    /// unknown version, malformed structure, or trailing bytes with
    /// [`EcoError::Protocol`].
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> EcoResult<FleetCheckpoint> {
        let mut d = Dec { bytes, at: 0 };
        let magic = d.take(8)?;
        if magic != MAGIC {
            return Err(EcoError::Protocol {
                what: "fleet checkpoint magic mismatch",
            });
        }
        let version = d.u64()?;
        if version != CHECKPOINT_VERSION {
            return Err(EcoError::Protocol {
                what: "unsupported fleet checkpoint version",
            });
        }
        let config_digest = d.u64()?;
        let round = d.u64()?;
        let n_walls = d.len()?;
        let mut walls = Vec::with_capacity(n_walls);
        for _ in 0..n_walls {
            walls.push(match d.u64()? {
                0 => WallEntry::Pending {
                    credit_slots: d.u64()?,
                    age_rounds: d.u32()?,
                },
                1 => {
                    let name = d.string()?;
                    let round_completed = d.u64()?;
                    let granted_slots = d.u64()?;
                    let report = d.report()?;
                    let mut counters = Vec::new();
                    for _ in 0..d.len()? {
                        let name = d.string()?;
                        counters.push((name, d.u64()?));
                    }
                    let mut histograms = Vec::new();
                    for _ in 0..d.len()? {
                        let name = d.string()?;
                        let n_words = d.len()?;
                        let mut words = Vec::with_capacity(n_words);
                        for _ in 0..n_words {
                            words.push(d.u64()?);
                        }
                        let h = Histogram::decode_words(&words).ok_or(EcoError::Protocol {
                            what: "malformed histogram words in fleet checkpoint",
                        })?;
                        histograms.push((name, h));
                    }
                    WallEntry::Done(WallResult {
                        name,
                        round_completed,
                        granted_slots,
                        report,
                        counters,
                        histograms,
                        trace_jsonl: d.string()?,
                    })
                }
                _ => {
                    return Err(EcoError::Protocol {
                        what: "unknown wall entry tag in fleet checkpoint",
                    })
                }
            });
        }
        let mut queue = Vec::new();
        for _ in 0..d.len()? {
            let i = d.len()?;
            if i >= n_walls {
                return Err(EcoError::Protocol {
                    what: "queue index out of range in fleet checkpoint",
                });
            }
            queue.push(i);
        }
        let mut grants = Vec::new();
        for _ in 0..d.len()? {
            let round = d.u64()?;
            let wall = d.len()?;
            if wall >= n_walls {
                return Err(EcoError::Protocol {
                    what: "grant wall index out of range in fleet checkpoint",
                });
            }
            grants.push(Grant {
                round,
                wall,
                slots: d.u64()?,
            });
        }
        if d.at != bytes.len() {
            return Err(EcoError::Protocol {
                what: "trailing bytes after fleet checkpoint",
            });
        }
        Ok(FleetCheckpoint {
            config_digest,
            round,
            walls,
            queue,
            grants,
        })
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_report(out: &mut Vec<u8>, r: &SurveyReport) {
    put_u64(out, r.powered_ids.len() as u64);
    for &id in &r.powered_ids {
        put_u64(out, u64::from(id));
    }
    put_u64(out, r.inventoried_ids.len() as u64);
    for &id in &r.inventoried_ids {
        put_u64(out, u64::from(id));
    }
    put_u64(out, r.readings.len() as u64);
    for &(id, kind, value) in &r.readings {
        put_u64(out, u64::from(id));
        put_u64(out, sensor_kind_tag(kind));
        put_u64(out, value.to_bits());
    }
    put_u64(out, r.outcomes.len() as u64);
    for &(id, outcome) in &r.outcomes {
        put_u64(out, u64::from(id));
        let (tag, payload) = outcome_wire(outcome);
        put_u64(out, tag);
        put_u64(out, payload);
    }
}

/// Explicit wire tags for [`SensorKind`] — decoupled from the enum's
/// discriminants so reordering variants can never silently change the
/// format.
fn sensor_kind_tag(kind: SensorKind) -> u64 {
    match kind {
        SensorKind::Temperature => 0,
        SensorKind::Humidity => 1,
        SensorKind::Strain => 2,
        SensorKind::Acceleration => 3,
        SensorKind::Stress => 4,
    }
}

fn sensor_kind_from_tag(tag: u64) -> Option<SensorKind> {
    Some(match tag {
        0 => SensorKind::Temperature,
        1 => SensorKind::Humidity,
        2 => SensorKind::Strain,
        3 => SensorKind::Acceleration,
        4 => SensorKind::Stress,
        _ => return None,
    })
}

/// `(tag, payload)` wire form of an outcome; tags match
/// `CapsuleOutcome::digest_words` so the wire and the digest agree.
fn outcome_wire(outcome: CapsuleOutcome) -> (u64, u64) {
    match outcome {
        CapsuleOutcome::Read { readings } => (0, readings as u64),
        CapsuleOutcome::Unpowered => (1, 0),
        CapsuleOutcome::CollisionExhausted => (2, 0),
        CapsuleOutcome::DecodeFailed { attempts } => (3, u64::from(attempts)),
    }
}

fn outcome_from_wire(tag: u64, payload: u64) -> Option<CapsuleOutcome> {
    Some(match tag {
        0 => CapsuleOutcome::Read {
            readings: usize::try_from(payload).ok()?,
        },
        1 => CapsuleOutcome::Unpowered,
        2 => CapsuleOutcome::CollisionExhausted,
        3 => CapsuleOutcome::DecodeFailed {
            attempts: u32::try_from(payload).ok()?,
        },
        _ => return None,
    })
}

/// Bounds-checked little-endian decoder over a byte slice.
struct Dec<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Dec<'_> {
    fn take(&mut self, n: usize) -> EcoResult<&[u8]> {
        let end = self.at.checked_add(n).ok_or(EcoError::Protocol {
            what: "fleet checkpoint length overflow",
        })?;
        let slice = self.bytes.get(self.at..end).ok_or(EcoError::Protocol {
            what: "fleet checkpoint truncated",
        })?;
        self.at = end;
        Ok(slice)
    }

    fn u64(&mut self) -> EcoResult<u64> {
        let raw = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(raw);
        Ok(u64::from_le_bytes(buf))
    }

    fn u32(&mut self) -> EcoResult<u32> {
        u32::try_from(self.u64()?).map_err(|_| EcoError::Protocol {
            what: "fleet checkpoint u32 field out of range",
        })
    }

    /// A `u64` used as an in-memory count/index; bounded by the input
    /// length so a hostile length prefix cannot drive a huge
    /// `Vec::with_capacity`.
    fn len(&mut self) -> EcoResult<usize> {
        let v = self.u64()?;
        let n = usize::try_from(v).map_err(|_| EcoError::Protocol {
            what: "fleet checkpoint length out of range",
        })?;
        if n > self.bytes.len() {
            return Err(EcoError::Protocol {
                what: "fleet checkpoint length exceeds input",
            });
        }
        Ok(n)
    }

    fn string(&mut self) -> EcoResult<String> {
        let n = self.len()?;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| EcoError::Protocol {
            what: "fleet checkpoint string is not UTF-8",
        })
    }

    fn report(&mut self) -> EcoResult<SurveyReport> {
        let mut report = SurveyReport::default();
        for _ in 0..self.len()? {
            report.powered_ids.push(self.u32()?);
        }
        for _ in 0..self.len()? {
            report.inventoried_ids.push(self.u32()?);
        }
        for _ in 0..self.len()? {
            let id = self.u32()?;
            let kind = sensor_kind_from_tag(self.u64()?).ok_or(EcoError::Protocol {
                what: "unknown sensor kind tag in fleet checkpoint",
            })?;
            report
                .readings
                .push((id, kind, f64::from_bits(self.u64()?)));
        }
        for _ in 0..self.len()? {
            let id = self.u32()?;
            let tag = self.u64()?;
            let payload = self.u64()?;
            let outcome = outcome_from_wire(tag, payload).ok_or(EcoError::Protocol {
                what: "unknown capsule outcome tag in fleet checkpoint",
            })?;
            report.outcomes.push((id, outcome));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FleetCheckpoint {
        // Hand-built report exercising every wire branch (all four
        // outcome tags, a non-integral float) without the cost of a
        // real survey.
        let report = SurveyReport {
            powered_ids: vec![1000, 1001],
            inventoried_ids: vec![1001, 1000],
            readings: vec![
                (1000, SensorKind::Temperature, 25.3),
                (1000, SensorKind::Strain, -12.5),
                (1001, SensorKind::Stress, 0.1 + 0.2),
            ],
            outcomes: vec![
                (1000, CapsuleOutcome::Read { readings: 2 }),
                (1001, CapsuleOutcome::DecodeFailed { attempts: 7 }),
                (1002, CapsuleOutcome::Unpowered),
                (1003, CapsuleOutcome::CollisionExhausted),
            ],
        };
        let mut h = Histogram::new();
        h.record(0);
        h.record(17);
        h.record(1 << 40);
        let done = WallResult {
            name: "done-wall".into(),
            round_completed: 2,
            granted_slots: 40,
            report,
            counters: vec![("reads".into(), 6), ("retries".into(), 1)],
            histograms: vec![("latency_slots".into(), h)],
            trace_jsonl: "{\"ev\":\"survey\",\"slot\":0}\n".into(),
        };
        FleetCheckpoint {
            config_digest: 0xfeed_beef,
            round: 3,
            walls: vec![
                WallEntry::Pending {
                    credit_slots: 17,
                    age_rounds: 2,
                },
                WallEntry::Done(done),
            ],
            queue: vec![0],
            grants: vec![
                Grant {
                    round: 1,
                    wall: 0,
                    slots: 17,
                },
                Grant {
                    round: 2,
                    wall: 1,
                    slots: 40,
                },
            ],
        }
    }

    #[test]
    fn bytes_round_trip_exactly() {
        let cp = sample();
        let bytes = cp.to_bytes();
        let back = FleetCheckpoint::from_bytes(&bytes).expect("decode");
        assert_eq!(back, cp);
        assert_eq!(back.to_bytes(), bytes, "re-encode is byte-identical");
        assert_eq!(cp.walls_done(), 1);
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        let cp = sample();
        let good = cp.to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(FleetCheckpoint::from_bytes(&bad_magic).is_err());

        let mut bad_version = good.clone();
        bad_version[8] = 99;
        assert!(FleetCheckpoint::from_bytes(&bad_version).is_err());

        let truncated = &good[..good.len() - 1];
        assert!(FleetCheckpoint::from_bytes(truncated).is_err());

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(FleetCheckpoint::from_bytes(&trailing).is_err());

        assert!(FleetCheckpoint::from_bytes(&[]).is_err());
    }

    #[test]
    fn hostile_lengths_cannot_allocate() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        put_u64(&mut bytes, CHECKPOINT_VERSION);
        put_u64(&mut bytes, 0); // config digest
        put_u64(&mut bytes, 0); // round
        put_u64(&mut bytes, u64::MAX); // absurd wall count
        assert!(FleetCheckpoint::from_bytes(&bytes).is_err());
    }

    #[test]
    fn wire_tags_cover_every_variant() {
        for tag in 0..5 {
            let kind = sensor_kind_from_tag(tag).expect("kind tag");
            assert_eq!(sensor_kind_tag(kind), tag);
        }
        assert!(sensor_kind_from_tag(5).is_none());
        for (outcome, want_tag) in [
            (CapsuleOutcome::Read { readings: 3 }, 0),
            (CapsuleOutcome::Unpowered, 1),
            (CapsuleOutcome::CollisionExhausted, 2),
            (CapsuleOutcome::DecodeFailed { attempts: 7 }, 3),
        ] {
            let (tag, payload) = outcome_wire(outcome);
            assert_eq!(tag, want_tag);
            assert_eq!(outcome_from_wire(tag, payload), Some(outcome));
        }
        assert!(outcome_from_wire(4, 0).is_none());
    }
}

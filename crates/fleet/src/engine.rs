//! The fleet engine: drives the scheduler round by round, shards due
//! walls across the pool, and assembles the [`FleetReport`].

use dsp::{EcoError, EcoResult};
use exec::Pool;

use crate::checkpoint::{FleetCheckpoint, WallEntry};
use crate::report::{FleetReport, WallResult};
use crate::scheduler::{Scheduler, SlotBudget};
use crate::spec::WallSpec;

/// Fleet run configuration, mirroring
/// [`ecocapsule::scenario::SurveyOptions`] one layer up: a pool to shard
/// wall surveys across and the scheduler's slot budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetOptions {
    /// Pool the due walls of each round are sharded across. The digest
    /// is worker-count-invariant; the wall clock is not.
    pub pool: Pool,
    /// Slot budget and fairness knobs for the scheduler.
    pub budget: SlotBudget,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            pool: Pool::serial(),
            budget: SlotBudget::default(),
        }
    }
}

impl FleetOptions {
    /// Serial pool, default budget.
    #[must_use]
    pub fn new() -> Self {
        FleetOptions::default()
    }

    /// Replaces the pool.
    #[must_use]
    pub fn pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Replaces the per-wall slot quantum.
    #[must_use]
    pub fn quantum_slots(mut self, quantum_slots: u64) -> Self {
        self.budget.quantum_slots = quantum_slots;
        self
    }

    /// Replaces the per-round slot budget.
    #[must_use]
    pub fn round_budget_slots(mut self, round_budget_slots: u64) -> Self {
        self.budget.round_budget_slots = round_budget_slots;
        self
    }

    /// Replaces the aging threshold.
    #[must_use]
    pub fn aging_rounds(mut self, aging_rounds: u32) -> Self {
        self.budget.aging_rounds = aging_rounds;
        self
    }

    /// Checks the options describe a non-degenerate run (every slot
    /// budget knob at least one).
    #[must_use]
    pub fn validate(&self) -> EcoResult<()> {
        self.budget.validate()
    }

    /// Validates and returns the finished options — the terminal verb of
    /// the builder chain, shared across the whole
    /// `SurveyOptions`/`FleetOptions`/`CampaignOptions`/`ServeOptions`
    /// family.
    #[must_use]
    pub fn build(self) -> EcoResult<Self> {
        self.validate()?;
        Ok(self)
    }

    /// Runs `specs` to completion under these options — the one-call
    /// entry point, mirroring `SurveyOptions::run` one layer up.
    #[must_use]
    pub fn run(&self, specs: Vec<WallSpec>) -> EcoResult<FleetReport> {
        self.validate()?;
        Fleet::new(specs, self).run_to_completion()
    }
}

/// A fleet run in progress: the specs, the scheduler, and the results
/// collected so far. Step it with [`Fleet::run_round`], snapshot it with
/// [`Fleet::checkpoint`], or drive it to the end with
/// [`Fleet::run_to_completion`].
#[derive(Debug)]
pub struct Fleet {
    specs: Vec<WallSpec>,
    pool: Pool,
    scheduler: Scheduler,
    results: Vec<Option<WallResult>>,
}

impl Fleet {
    /// A fresh fleet over `specs` with everything pending.
    #[must_use]
    pub fn new(specs: Vec<WallSpec>, options: &FleetOptions) -> Self {
        let demands: Vec<u64> = specs.iter().map(WallSpec::slot_demand).collect();
        let results = vec![None; specs.len()];
        Fleet {
            specs,
            pool: options.pool,
            scheduler: Scheduler::new(&demands, options.budget),
            results,
        }
    }

    /// True once every wall has completed its survey.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.scheduler.is_done() && self.results.iter().all(Option::is_some)
    }

    /// Scheduling rounds executed so far.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.scheduler.round()
    }

    /// The scheduler (its grant log is what the fairness properties
    /// audit).
    #[must_use]
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Executes one scheduling round: grants slots, then surveys every
    /// wall that became due, sharded across the pool. Returns how many
    /// walls completed this round (0 is normal mid-run — a round may
    /// only accumulate credit).
    #[must_use]
    pub fn run_round(&mut self) -> EcoResult<usize> {
        let due = self.scheduler.plan_round();
        if due.is_empty() {
            return Ok(0);
        }
        let round = self.scheduler.round();
        let surveyed = self
            .pool
            // lint:allow(no-deprecated-internal-calls) WallSpec::survey is fleet's own entry point, not the core shim
            .par_map(&due, |_, &wall| self.specs[wall].survey());
        for (&wall, outcome) in due.iter().zip(surveyed) {
            let (report, rec) = outcome?;
            let spec = &self.specs[wall];
            self.results[wall] = Some(WallResult {
                name: spec.name.clone(),
                round_completed: round,
                granted_slots: self.scheduler.granted_slots(wall),
                report,
                counters: rec
                    .counter_totals()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
                histograms: rec
                    .histograms()
                    .map(|(k, h)| (k.to_string(), h.clone()))
                    .collect(),
                trace_jsonl: rec.to_jsonl(),
            });
        }
        Ok(due.len())
    }

    /// Drives the fleet until every wall has completed, then assembles
    /// the report (walls in spec order).
    #[must_use]
    pub fn run_to_completion(mut self) -> EcoResult<FleetReport> {
        while !self.scheduler.is_done() {
            self.run_round()?;
        }
        let walls = self
            .results
            .into_iter()
            .map(|r| {
                r.ok_or(EcoError::Protocol {
                    what: "fleet scheduler finished with an unsurveyed wall",
                })
            })
            .collect::<EcoResult<Vec<WallResult>>>()?;
        Ok(FleetReport {
            walls,
            rounds: self.scheduler.round(),
        })
    }

    /// Snapshots the run at the current round boundary.
    #[must_use]
    pub fn checkpoint(&self) -> EcoResult<FleetCheckpoint> {
        let walls = self
            .results
            .iter()
            .enumerate()
            .map(|(i, r)| match r {
                Some(result) => Ok(WallEntry::Done(result.clone())),
                None => {
                    let (credit_slots, age_rounds, done) =
                        self.scheduler.wall_state(i).ok_or(EcoError::Protocol {
                            what: "fleet scheduler lost a wall",
                        })?;
                    if done {
                        return Err(EcoError::Protocol {
                            what: "fleet checkpoint taken mid-round",
                        });
                    }
                    Ok(WallEntry::Pending {
                        credit_slots,
                        age_rounds,
                    })
                }
            })
            .collect::<EcoResult<Vec<WallEntry>>>()?;
        Ok(FleetCheckpoint {
            config_digest: config_digest(&self.specs, self.scheduler.budget()),
            round: self.scheduler.round(),
            walls,
            queue: self.scheduler.queue().collect(),
            grants: self.scheduler.grants().to_vec(),
        })
    }

    /// Rebuilds a fleet from a checkpoint. The offered `specs` and
    /// `options.budget` must digest-match the configuration the
    /// checkpoint was taken under; `options.pool` is free to differ (the
    /// digest is worker-count-invariant).
    #[must_use]
    pub fn resume(
        specs: Vec<WallSpec>,
        options: &FleetOptions,
        checkpoint: &FleetCheckpoint,
    ) -> EcoResult<Fleet> {
        if checkpoint.walls.len() != specs.len() {
            return Err(EcoError::Protocol {
                what: "fleet checkpoint wall count mismatch",
            });
        }
        if checkpoint.config_digest != config_digest(&specs, &options.budget) {
            return Err(EcoError::Protocol {
                what: "fleet checkpoint config digest mismatch",
            });
        }
        let demands: Vec<u64> = specs.iter().map(WallSpec::slot_demand).collect();
        let mut states = Vec::with_capacity(specs.len());
        let mut results = Vec::with_capacity(specs.len());
        for wall in &checkpoint.walls {
            match wall {
                WallEntry::Pending {
                    credit_slots,
                    age_rounds,
                } => {
                    states.push((*credit_slots, *age_rounds, false));
                    results.push(None);
                }
                WallEntry::Done(result) => {
                    states.push((result.granted_slots, 0, true));
                    results.push(Some(result.clone()));
                }
            }
        }
        Ok(Fleet {
            specs,
            pool: options.pool,
            scheduler: Scheduler::restore(
                &demands,
                options.budget,
                &states,
                checkpoint.queue.clone(),
                checkpoint.round,
                checkpoint.grants.clone(),
            ),
            results,
        })
    }
}

/// Digest pinning the static fleet configuration: every spec's
/// [`WallSpec`] fields plus the slot budget, `u64::MAX`-separated.
fn config_digest(specs: &[WallSpec], budget: &SlotBudget) -> u64 {
    let mut words = vec![specs.len() as u64];
    for spec in specs {
        words.push(u64::MAX);
        words.extend(spec.config_words());
    }
    words.push(u64::MAX);
    words.extend(budget.config_words());
    faults::fnv1a64(words)
}

/// Runs `specs` to completion under `options`.
///
/// Deprecated in favour of the builder-family entry point
/// [`FleetOptions::run`]; this shim delegates there and stays
/// digest-equivalent.
#[deprecated(
    since = "0.9.0",
    note = "use FleetOptions::run (e.g. options.run(specs))"
)]
#[must_use]
pub fn run_fleet(specs: Vec<WallSpec>, options: &FleetOptions) -> EcoResult<FleetReport> {
    options.run(specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faults::{FaultIntensity, FaultPlan};

    /// `n` zero-capsule walls with varied seeds/postures: surveys are
    /// near-free, so scheduler/checkpoint mechanics can be exercised
    /// densely. Real survey content rides in [`live_specs`].
    fn bare_specs(n: usize) -> Vec<WallSpec> {
        (0..n)
            .map(|i| {
                let spec = WallSpec::new(format!("bare-{i}"), vec![]).seed(1000 + i as u64);
                if i % 2 == 1 {
                    spec.fault_plan(FaultPlan::generate(i as u64, &FaultIntensity::mild(200)))
                } else {
                    spec
                }
            })
            .collect()
    }

    /// A small heterogeneous fleet with real capsules: one quiet wall,
    /// one faulted wall, three zero-capsule walls.
    fn live_specs() -> Vec<WallSpec> {
        let mut specs = bare_specs(3);
        specs.push(WallSpec::new("live", vec![0.5]).seed(7));
        specs.push(
            WallSpec::new("noisy", vec![0.5])
                .seed(8)
                .fault_plan(FaultPlan::generate(3, &FaultIntensity::mild(200))),
        );
        specs
    }

    #[test]
    fn serial_and_parallel_runs_are_digest_identical() {
        let serial = FleetOptions::new().run(live_specs()).unwrap();
        let parallel = FleetOptions::new()
            .pool(Pool::new(4))
            .run(live_specs())
            .unwrap();
        assert_eq!(serial.digest(), parallel.digest());
        assert_eq!(
            serial.merged_trace_jsonl(),
            parallel.merged_trace_jsonl(),
            "traces are byte-identical, not just digest-identical"
        );
        assert_eq!(serial.walls.len(), 5);
        assert!(serial.rounds > 0);
        let live = serial.walls.iter().find(|w| w.name == "live").unwrap();
        assert!(!live.report.readings.is_empty(), "live wall really read");
    }

    #[test]
    fn results_come_back_in_spec_order() {
        // Wall 0 is larger and finishes later; spec order must hold
        // anyway.
        let specs = vec![
            WallSpec::new("big", vec![0.5]).seed(1),
            WallSpec::new("small", vec![]).seed(2),
        ];
        let report = FleetOptions::new().quantum_slots(8).run(specs).unwrap();
        assert_eq!(report.walls[0].name, "big");
        assert_eq!(report.walls[1].name, "small");
        assert!(report.walls[0].round_completed > report.walls[1].round_completed);
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_run() {
        // Tight budget over eight bare walls: completion spreads across
        // many rounds, so every split lands at a distinct frontier.
        let options = FleetOptions::new().quantum_slots(3).round_budget_slots(7);
        let baseline = options.run(bare_specs(8)).unwrap();
        assert!(baseline.rounds > 3, "budget too loose to test splits");

        for split in [0, 1, 2, baseline.rounds] {
            let mut fleet = Fleet::new(bare_specs(8), &options);
            for _ in 0..split {
                if !fleet.is_done() {
                    fleet.run_round().unwrap();
                }
            }
            let bytes = fleet.checkpoint().unwrap().to_bytes();
            let checkpoint = FleetCheckpoint::from_bytes(&bytes).unwrap();
            let resumed = Fleet::resume(bare_specs(8), &options, &checkpoint)
                .unwrap()
                .run_to_completion()
                .unwrap();
            assert_eq!(
                resumed.digest(),
                baseline.digest(),
                "split at round {split}"
            );
            assert_eq!(resumed.rounds, baseline.rounds);
        }
    }

    #[test]
    fn resume_rejects_a_mismatched_config() {
        let options = FleetOptions::new();
        let fleet = Fleet::new(bare_specs(3), &options);
        let checkpoint = fleet.checkpoint().unwrap();

        let mut tampered = bare_specs(3);
        tampered[0].seed += 1;
        assert!(Fleet::resume(tampered, &options, &checkpoint).is_err());

        let fewer = bare_specs(2);
        assert!(Fleet::resume(fewer, &options, &checkpoint).is_err());

        let wrong_budget = FleetOptions::new().quantum_slots(999);
        assert!(Fleet::resume(bare_specs(3), &wrong_budget, &checkpoint).is_err());
    }

    #[test]
    fn empty_fleet_completes_immediately() {
        let report = FleetOptions::new().run(Vec::new()).unwrap();
        assert!(report.walls.is_empty());
        assert_eq!(report.rounds, 0);
        assert_ne!(report.digest(), 0);
    }

    #[test]
    fn build_rejects_degenerate_budgets_and_run_refuses_them() {
        assert!(FleetOptions::new().build().is_ok());
        assert!(FleetOptions::new().quantum_slots(0).build().is_err());
        assert!(FleetOptions::new().round_budget_slots(0).build().is_err());
        assert!(FleetOptions::new().aging_rounds(0).build().is_err());
        assert!(FleetOptions::new()
            .quantum_slots(0)
            .run(bare_specs(1))
            .is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_run_fleet_shim_is_digest_equivalent() {
        let options = FleetOptions::new().quantum_slots(3).round_budget_slots(7);
        let via_shim = run_fleet(live_specs(), &options).unwrap();
        let via_builder = options.run(live_specs()).unwrap();
        assert_eq!(via_shim.digest(), via_builder.digest());
        assert_eq!(
            via_shim.merged_trace_jsonl(),
            via_builder.merged_trace_jsonl()
        );
    }
}

//! Fleet-scale survey scheduling: many self-sensing walls, one reader
//! budget.
//!
//! The paper's endgame (§6) is city-scale structural health monitoring:
//! many instrumented structures, each an EcoCapsule-filled wall polled
//! over slotted TDMA. A single wall is served by
//! [`ecocapsule::scenario::SurveyOptions`]; this crate adds the layer
//! above it — a deterministic scheduler that shards N heterogeneous
//! walls (mixed capsule counts, fault plans, retry policies) across the
//! [`exec::Pool`]:
//!
//! - **Slot budgeting** ([`SlotBudget`], [`Scheduler`]): each scheduling
//!   round hands out a bounded budget of virtual slots, one bounded
//!   quantum per wall in round-robin order; walls passed over age toward
//!   priority, so no wall starves. A wall's survey executes in the round
//!   where its granted slots first cover its demand
//!   ([`ecocapsule::scenario::SurveyOptions::slot_demand`]).
//! - **Checkpoint/resume** ([`FleetCheckpoint`]): the full scheduler and
//!   result state serializes to a versioned byte format; resuming at any
//!   round boundary reproduces the uninterrupted run bit-for-bit — a
//!   multi-month pilot can stop and restart without perturbing a digest.
//! - **Aggregated observability**: every wall's survey records into its
//!   own [`obs::MemoryRecorder`]; per-wall traces, counters and
//!   [`obs::Histogram`] summaries land in the [`FleetReport`], which
//!   merges them into one fleet-level JSONL trace and fleet-wide
//!   histograms.
//!
//! Determinism contract: each wall's survey runs on [`exec::Pool::serial`]
//! with an RNG seeded from its [`WallSpec::seed`], and results merge by
//! wall index — so the [`FleetReport::digest`] is bit-identical for any
//! fleet worker count and across any checkpoint/resume split. The
//! differential, property and golden tests in `tests/` pin all three.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod checkpoint;
mod engine;
mod report;
mod scheduler;
mod spec;

pub use checkpoint::FleetCheckpoint;
#[allow(deprecated)]
pub use engine::run_fleet;
pub use engine::{Fleet, FleetOptions};
pub use report::{FleetReport, WallResult};
pub use scheduler::{Grant, Scheduler, SlotBudget};
pub use spec::WallSpec;

/// Packs a string into digest/wire words: its bytes 8 per word
/// (little-endian, zero-padded) followed by the byte length, so `"a"`
/// and `"a\0"` digest differently.
pub(crate) fn str_words(s: &str) -> Vec<u64> {
    let bytes = s.as_bytes();
    let mut words: Vec<u64> = bytes
        .chunks(8)
        .map(|chunk| {
            chunk
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << (8 * i)))
        })
        .collect();
    words.push(bytes.len() as u64);
    words
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn str_words_distinguishes_length_and_content() {
        assert_ne!(str_words("a"), str_words("b"));
        assert_ne!(str_words("a"), str_words("a\0"));
        assert_eq!(str_words(""), vec![0]);
        assert_eq!(str_words("abcdefghi").len(), 3, "2 data words + length");
    }
}

//! Fleet-level results: per-wall survey outcomes plus aggregated
//! observability.

use std::collections::BTreeMap;

use ecocapsule::scenario::SurveyReport;
use obs::Histogram;

/// Everything one wall produced: its survey report plus the
/// observability captured by the wall-private recorder, frozen into
/// owned form so the result survives checkpointing.
#[derive(Debug, Clone, PartialEq)]
pub struct WallResult {
    /// The wall's [`crate::WallSpec::name`].
    pub name: String,
    /// Scheduling round in which the wall's slot credit covered its
    /// demand and the survey executed (1-based).
    pub round_completed: u64,
    /// Total slots granted to the wall (equals its slot demand).
    pub granted_slots: u64,
    /// The survey report itself.
    pub report: SurveyReport,
    /// Counter totals from the wall's recorder, ordered by name.
    pub counters: Vec<(String, u64)>,
    /// Histograms from the wall's recorder, ordered by name.
    pub histograms: Vec<(String, Histogram)>,
    /// The wall's trace, one JSON event per line.
    pub trace_jsonl: String,
}

impl WallResult {
    /// Stable digest over every field. Folds the report digest with the
    /// scheduling outcome, counters, histograms and the raw trace text,
    /// `u64::MAX`-separated — so two fleet runs agree only if every wall
    /// agrees observably, not just numerically.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut words = crate::str_words(&self.name);
        words.push(u64::MAX);
        words.push(self.round_completed);
        words.push(self.granted_slots);
        words.push(self.report.digest());
        words.push(u64::MAX);
        for (name, total) in &self.counters {
            words.extend(crate::str_words(name));
            words.push(*total);
        }
        words.push(u64::MAX);
        for (name, h) in &self.histograms {
            words.extend(crate::str_words(name));
            words.extend(h.encode_words());
        }
        words.push(u64::MAX);
        words.extend(crate::str_words(&self.trace_jsonl));
        faults::fnv1a64(words)
    }
}

/// The aggregated outcome of a fleet run: one [`WallResult`] per wall in
/// spec order, plus how many scheduling rounds the run took.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetReport {
    /// Per-wall results, in the order the specs were given (not the
    /// order walls completed).
    pub walls: Vec<WallResult>,
    /// Scheduling rounds consumed.
    pub rounds: u64,
}

impl FleetReport {
    /// Stable digest: the round count and every wall digest,
    /// `u64::MAX`-separated. Bit-identical across worker counts and
    /// checkpoint/resume splits — the witness the differential tests and
    /// the bench identity gate compare.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let words = [self.rounds]
            .into_iter()
            .chain(self.walls.iter().flat_map(|w| [w.digest(), u64::MAX]));
        faults::fnv1a64(words)
    }

    /// The fleet-level trace: for each wall in spec order, a
    /// `fleet_wall` header line carrying the wall name and completion
    /// round, followed by that wall's own JSONL events verbatim.
    #[must_use]
    pub fn merged_trace_jsonl(&self) -> String {
        let mut out = String::new();
        for w in &self.walls {
            out.push_str(&format!(
                "{{\"ev\":\"fleet_wall\",\"wall\":\"{}\",\"round\":{},\"granted_slots\":{}}}\n",
                escape_json(&w.name),
                w.round_completed,
                w.granted_slots
            ));
            out.push_str(&w.trace_jsonl);
        }
        out
    }

    /// Fleet-wide histograms: every wall's histograms merged by name via
    /// [`Histogram::merge`], ordered by name.
    #[must_use]
    pub fn merged_histograms(&self) -> BTreeMap<String, Histogram> {
        let mut merged: BTreeMap<String, Histogram> = BTreeMap::new();
        for w in &self.walls {
            for (name, h) in &w.histograms {
                merged.entry(name.clone()).or_default().merge(h);
            }
        }
        merged
    }

    /// Fleet-wide counter totals, summed by name across walls.
    #[must_use]
    pub fn merged_counter_totals(&self) -> BTreeMap<String, u64> {
        let mut merged: BTreeMap<String, u64> = BTreeMap::new();
        for w in &self.walls {
            for (name, total) in &w.counters {
                *merged.entry(name.clone()).or_default() += total;
            }
        }
        merged
    }
}

/// Minimal JSON string escaping for wall names embedded in the merged
/// trace (backslash and double quote; names are ASCII identifiers in
/// practice).
fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wall(name: &str, round: u64) -> WallResult {
        let mut h = Histogram::new();
        h.record(round);
        WallResult {
            name: name.into(),
            round_completed: round,
            granted_slots: 10 * round,
            report: SurveyReport::default(),
            counters: vec![("reads".into(), round)],
            histograms: vec![("latency_slots".into(), h)],
            trace_jsonl: format!("{{\"ev\":\"x\",\"n\":{round}}}\n"),
        }
    }

    #[test]
    fn digest_sees_every_field() {
        let base = wall("a", 1);
        let mut renamed = base.clone();
        renamed.name = "b".into();
        let mut retimed = base.clone();
        retimed.round_completed = 2;
        let mut recounted = base.clone();
        recounted.counters[0].1 = 99;
        let mut retraced = base.clone();
        retraced.trace_jsonl.push_str("{\"ev\":\"y\"}\n");
        for v in [renamed, retimed, recounted, retraced] {
            assert_ne!(v.digest(), base.digest());
        }
    }

    #[test]
    fn merged_trace_prefixes_each_wall_with_a_header() {
        let report = FleetReport {
            walls: vec![wall("a", 1), wall("b", 2)],
            rounds: 2,
        };
        let trace = report.merged_trace_jsonl();
        let lines: Vec<&str> = trace.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"ev\":\"fleet_wall\"") && lines[0].contains("\"wall\":\"a\""));
        assert_eq!(lines[1], "{\"ev\":\"x\",\"n\":1}");
        assert!(lines[2].contains("\"wall\":\"b\""));
    }

    #[test]
    fn merging_aggregates_across_walls() {
        let report = FleetReport {
            walls: vec![wall("a", 1), wall("b", 2)],
            rounds: 2,
        };
        let counters = report.merged_counter_totals();
        assert_eq!(counters.get("reads"), Some(&3));
        let hists = report.merged_histograms();
        let h = hists.get("latency_slots").expect("merged histogram");
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 2);
    }

    #[test]
    fn names_with_quotes_stay_valid_json() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
    }
}

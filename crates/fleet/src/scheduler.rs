//! Batched round-robin slot budgeting with aging.
//!
//! The reader infrastructure has one resource: virtual TDMA slots. Each
//! scheduling round spends at most [`SlotBudget::round_budget_slots`]
//! of them, handing every serviced wall at most one
//! [`SlotBudget::quantum_slots`] quantum. Service order is round-robin —
//! serviced walls rotate to the back of the queue — except that walls
//! passed over for [`SlotBudget::aging_rounds`] consecutive rounds jump
//! to the front, so a big round budget spent on a few large walls can
//! never starve the small ones. A wall whose accumulated credit covers
//! its demand is *due*: its survey executes in that round and it leaves
//! the queue.
//!
//! Everything here is integer arithmetic over explicit state — no
//! clocks, no randomness — so the grant schedule is a pure function of
//! `(demands, budget)` and replays identically on resume.

use std::collections::VecDeque;

use dsp::{EcoError, EcoResult};

/// The per-round slot budget and fairness knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotBudget {
    /// Largest grant any wall receives in one round (≥ 1; 0 is treated
    /// as 1).
    pub quantum_slots: u64,
    /// Total slots spent per round (raised to the quantum when smaller,
    /// so every round makes progress).
    pub round_budget_slots: u64,
    /// Consecutive grantless rounds after which a pending wall is
    /// served first (≥ 1; 0 is treated as 1).
    pub aging_rounds: u32,
}

impl Default for SlotBudget {
    fn default() -> Self {
        SlotBudget {
            quantum_slots: 32,
            round_budget_slots: 128,
            aging_rounds: 4,
        }
    }
}

impl SlotBudget {
    /// The effective quantum (the configured value, floored at 1).
    #[must_use]
    pub fn effective_quantum_slots(&self) -> u64 {
        self.quantum_slots.max(1)
    }

    /// The effective round budget (never below the quantum).
    #[must_use]
    pub fn effective_round_budget_slots(&self) -> u64 {
        self.round_budget_slots.max(self.effective_quantum_slots())
    }

    /// The effective aging threshold (the configured value, floored
    /// at 1).
    #[must_use]
    pub fn effective_aging_rounds(&self) -> u32 {
        self.aging_rounds.max(1)
    }

    /// Checks every knob is non-degenerate. The runtime floors zeros at
    /// 1 (`effective_*`) so pre-builder configurations keep working;
    /// the builder path ([`crate::FleetOptions::build`]) refuses them
    /// up front instead of silently rewriting them.
    #[must_use]
    pub fn validate(&self) -> EcoResult<()> {
        if self.quantum_slots == 0 {
            return Err(EcoError::Protocol {
                what: "slot budget needs a quantum of at least one slot",
            });
        }
        if self.round_budget_slots == 0 {
            return Err(EcoError::Protocol {
                what: "slot budget needs a round budget of at least one slot",
            });
        }
        if self.aging_rounds == 0 {
            return Err(EcoError::Protocol {
                what: "slot budget needs an aging threshold of at least one round",
            });
        }
        Ok(())
    }

    /// Digest words, for the checkpoint config digest.
    pub(crate) fn config_words(&self) -> [u64; 3] {
        [
            self.quantum_slots,
            self.round_budget_slots,
            u64::from(self.aging_rounds),
        ]
    }
}

/// One grant in the schedule log: `slots` slots to wall `wall` in round
/// `round`. The log is what the fairness properties audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// 1-based scheduling round.
    pub round: u64,
    /// Wall index (position in the fleet's spec list).
    pub wall: usize,
    /// Slots granted (≤ the quantum).
    pub slots: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct WallState {
    demand_slots: u64,
    credit_slots: u64,
    age_rounds: u32,
    done: bool,
}

/// The deterministic fleet scheduler. Owns per-wall demand/credit/age
/// state, the round-robin queue, and the grant log; knows nothing about
/// surveys — [`crate::Fleet`] maps *due* walls to survey executions.
#[derive(Debug, Clone, PartialEq)]
pub struct Scheduler {
    budget: SlotBudget,
    walls: Vec<WallState>,
    queue: VecDeque<usize>,
    round: u64,
    grants: Vec<Grant>,
}

impl Scheduler {
    /// A scheduler over walls with the given slot demands, all pending,
    /// queued in index order. Zero demands are floored at 1 (every wall
    /// costs at least a quantum to visit).
    #[must_use]
    pub fn new(demands: &[u64], budget: SlotBudget) -> Self {
        Scheduler {
            budget,
            walls: demands
                .iter()
                .map(|&d| WallState {
                    demand_slots: d.max(1),
                    credit_slots: 0,
                    age_rounds: 0,
                    done: false,
                })
                .collect(),
            queue: (0..demands.len()).collect(),
            round: 0,
            grants: Vec::new(),
        }
    }

    /// The configured budget.
    #[must_use]
    pub fn budget(&self) -> &SlotBudget {
        &self.budget
    }

    /// True once every wall's demand is covered (vacuously true for an
    /// empty fleet).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.walls.iter().all(|w| w.done)
    }

    /// Rounds planned so far.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of walls still pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.walls.iter().filter(|w| !w.done).count()
    }

    /// Slots granted to wall `wall` so far (its credit; equals its
    /// demand exactly once the wall is due).
    #[must_use]
    pub fn granted_slots(&self, wall: usize) -> u64 {
        self.walls.get(wall).map_or(0, |w| w.credit_slots)
    }

    /// The full grant log, in grant order.
    #[must_use]
    pub fn grants(&self) -> &[Grant] {
        &self.grants
    }

    /// Plans one scheduling round and returns the walls that became due
    /// (credit reached demand), in service order. Returns an empty list
    /// without consuming a round when the fleet is already done.
    pub fn plan_round(&mut self) -> Vec<usize> {
        if self.is_done() {
            return Vec::new();
        }
        self.round += 1;
        let quantum = self.budget.effective_quantum_slots();
        let mut remaining = self.budget.effective_round_budget_slots();
        let threshold = self.budget.effective_aging_rounds();

        // Service order: aged walls first, then the rest; both groups in
        // queue order.
        let (aged, fresh): (Vec<usize>, Vec<usize>) = self
            .queue
            .iter()
            .copied()
            .partition(|&i| self.walls.get(i).is_some_and(|w| w.age_rounds >= threshold));

        let mut serviced = vec![false; self.walls.len()];
        let mut due = Vec::new();
        for i in aged.into_iter().chain(fresh) {
            if remaining == 0 {
                break;
            }
            let Some(w) = self.walls.get_mut(i) else {
                continue;
            };
            let want = w
                .demand_slots
                .saturating_sub(w.credit_slots)
                .min(quantum)
                .min(remaining);
            w.credit_slots += want;
            remaining -= want;
            w.age_rounds = 0;
            serviced[i] = true;
            if w.credit_slots >= w.demand_slots {
                w.done = true;
                due.push(i);
            }
            self.grants.push(Grant {
                round: self.round,
                wall: i,
                slots: want,
            });
        }

        // Age every pending wall that was passed over, then rebuild the
        // queue: unserviced pending walls keep their order, serviced
        // still-pending walls rotate to the back, due walls leave.
        let mut back = Vec::new();
        let mut front = VecDeque::new();
        for &i in &self.queue {
            let Some(w) = self.walls.get_mut(i) else {
                continue;
            };
            if w.done {
                continue;
            }
            if serviced.get(i).copied().unwrap_or(false) {
                back.push(i);
            } else {
                w.age_rounds = w.age_rounds.saturating_add(1);
                front.push_back(i);
            }
        }
        front.extend(back);
        self.queue = front;
        due
    }

    /// Serializable dynamic state of wall `wall`:
    /// `(credit, age, done)` — what a checkpoint stores alongside the
    /// queue, round and grant log.
    pub(crate) fn wall_state(&self, wall: usize) -> Option<(u64, u32, bool)> {
        self.walls
            .get(wall)
            .map(|w| (w.credit_slots, w.age_rounds, w.done))
    }

    /// The pending queue, front first.
    pub(crate) fn queue(&self) -> impl Iterator<Item = usize> + '_ {
        self.queue.iter().copied()
    }

    /// Rebuilds a scheduler from checkpointed dynamic state. Demands
    /// come from the (digest-verified) specs; everything else from the
    /// checkpoint.
    pub(crate) fn restore(
        demands: &[u64],
        budget: SlotBudget,
        states: &[(u64, u32, bool)],
        queue: Vec<usize>,
        round: u64,
        grants: Vec<Grant>,
    ) -> Self {
        Scheduler {
            budget,
            walls: demands
                .iter()
                .zip(states)
                .map(|(&d, &(credit_slots, age_rounds, done))| WallState {
                    demand_slots: d.max(1),
                    credit_slots,
                    age_rounds,
                    done,
                })
                .collect(),
            queue: queue.into(),
            round,
            grants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_completion(s: &mut Scheduler) -> Vec<Vec<usize>> {
        let mut rounds = Vec::new();
        while !s.is_done() {
            rounds.push(s.plan_round());
            assert!(rounds.len() < 100_000, "scheduler must make progress");
        }
        rounds
    }

    #[test]
    fn every_wall_completes_with_exact_credit() {
        let demands = [100, 1, 37, 64, 250];
        let mut s = Scheduler::new(&demands, SlotBudget::default());
        let rounds = run_to_completion(&mut s);
        let due: Vec<usize> = rounds.into_iter().flatten().collect();
        let mut sorted = due.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4], "each wall due exactly once");
        for (i, &d) in demands.iter().enumerate() {
            assert_eq!(s.granted_slots(i), d, "credit equals demand exactly");
        }
    }

    #[test]
    fn round_spend_never_exceeds_the_budget() {
        let mut s = Scheduler::new(
            &[500, 500, 500, 500],
            SlotBudget {
                quantum_slots: 32,
                round_budget_slots: 70,
                aging_rounds: 2,
            },
        );
        run_to_completion(&mut s);
        let mut by_round = std::collections::BTreeMap::new();
        for g in s.grants() {
            *by_round.entry(g.round).or_insert(0u64) += g.slots;
            assert!(g.slots <= 32, "{g:?} exceeds quantum");
        }
        assert!(by_round.values().all(|&spent| spent <= 70), "{by_round:?}");
    }

    #[test]
    fn small_wall_finishes_first_under_equal_treatment() {
        // Demands 1 and 1000: the small wall is due in round 1.
        let mut s = Scheduler::new(&[1000, 1], SlotBudget::default());
        let due = s.plan_round();
        assert_eq!(due, vec![1]);
        assert!(!s.is_done());
    }

    #[test]
    fn aging_promotes_a_starved_wall() {
        // Budget of one quantum per round over three walls: pure
        // round-robin would serve 0,1,2,0,1,2,…; with aging_rounds=1 a
        // passed-over wall is served no later than two rounds on.
        let mut s = Scheduler::new(
            &[1000, 1000, 1000],
            SlotBudget {
                quantum_slots: 8,
                round_budget_slots: 8,
                aging_rounds: 1,
            },
        );
        for _ in 0..12 {
            let _ = s.plan_round();
        }
        let mut last_grant_round = [0u64; 3];
        let mut max_gap = [0u64; 3];
        for g in s.grants() {
            let gap = g.round - last_grant_round[g.wall];
            max_gap[g.wall] = max_gap[g.wall].max(gap);
            last_grant_round[g.wall] = g.round;
        }
        assert!(
            max_gap.iter().all(|&gap| gap <= 3),
            "a wall starved: {max_gap:?}"
        );
    }

    #[test]
    fn quantum_larger_than_demand_grants_exactly_the_demand() {
        let mut s = Scheduler::new(
            &[5],
            SlotBudget {
                quantum_slots: 10_000,
                round_budget_slots: 10_000,
                aging_rounds: 4,
            },
        );
        assert_eq!(s.plan_round(), vec![0]);
        assert_eq!(s.granted_slots(0), 5, "never over-grants");
        assert!(s.is_done());
    }

    #[test]
    fn zero_walls_is_vacuously_done() {
        let mut s = Scheduler::new(&[], SlotBudget::default());
        assert!(s.is_done());
        assert!(s.plan_round().is_empty());
        assert_eq!(s.round(), 0, "no round is consumed");
    }

    #[test]
    fn degenerate_budget_knobs_are_floored() {
        let b = SlotBudget {
            quantum_slots: 0,
            round_budget_slots: 0,
            aging_rounds: 0,
        };
        assert_eq!(b.effective_quantum_slots(), 1);
        assert_eq!(b.effective_round_budget_slots(), 1);
        assert_eq!(b.effective_aging_rounds(), 1);
        let mut s = Scheduler::new(&[3, 2], b);
        run_to_completion(&mut s);
        assert_eq!(s.granted_slots(0), 3);
        assert_eq!(s.granted_slots(1), 2);
    }

    #[test]
    fn schedule_is_deterministic() {
        let demands = [9, 81, 3, 700, 44];
        let budget = SlotBudget {
            quantum_slots: 16,
            round_budget_slots: 48,
            aging_rounds: 2,
        };
        let mut a = Scheduler::new(&demands, budget);
        let mut b = Scheduler::new(&demands, budget);
        let ra = run_to_completion(&mut a);
        let rb = run_to_completion(&mut b);
        assert_eq!(ra, rb);
        assert_eq!(a.grants(), b.grants());
    }
}

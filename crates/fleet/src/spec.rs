//! Per-wall configuration: what one member of the fleet looks like.

use dsp::EcoResult;
use ecocapsule::scenario::{SelfSensingWall, SurveyOptions, SurveyReport, WallCondition};
use faults::FaultPlan;
use obs::MemoryRecorder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reader::robust::RetryPolicy;

/// One wall of the fleet: geometry, drive, seed, and channel posture.
///
/// A spec is a pure value — surveying it never mutates it, so the fleet
/// can re-run any wall (e.g. after a resume) and get bit-identical
/// results. The survey itself always runs on [`exec::Pool::serial`]
/// with an RNG seeded from [`WallSpec::seed`]: fleet-level parallelism
/// shards across walls, never inside one (a wall's TDMA inventory is a
/// shared medium and cannot be split without changing the protocol).
#[derive(Debug, Clone, PartialEq)]
pub struct WallSpec {
    /// Wall name — the key under which results, traces and fixtures
    /// report it.
    pub name: String,
    /// Capsule standoffs (m) from the reader's mounting point; one
    /// capsule per entry, all strictly positive.
    pub standoffs_m: Vec<f64>,
    /// TX drive voltage (V) for the charging phase.
    pub tx_voltage_v: f64,
    /// RNG seed for this wall's survey — same seed, same report.
    pub seed: u64,
    /// Fault plan: `None` surveys a quiet channel.
    pub fault_plan: Option<FaultPlan>,
    /// Retry budget for must-answer commands; consulted only when a
    /// fault plan is installed.
    pub retry_policy: RetryPolicy,
    /// Structural condition the wall is surveyed under — the campaign
    /// layer's hook for evolving physics between rounds. Pristine by
    /// default, which is a bitwise no-op on every survey result.
    pub condition: WallCondition,
}

impl WallSpec {
    /// A quiet-channel wall at 200 V with the paper-default retry
    /// policy and seed 0.
    #[must_use]
    pub fn new(name: impl Into<String>, standoffs_m: Vec<f64>) -> Self {
        WallSpec {
            name: name.into(),
            standoffs_m,
            tx_voltage_v: 200.0,
            seed: 0,
            fault_plan: None,
            retry_policy: RetryPolicy::paper_default(),
            condition: WallCondition::pristine(),
        }
    }

    /// The §6 footbridge pilot as one wall among many: five EcoCapsules
    /// at the [`shm::pilot::ecocapsule_standoffs`] geometry, 200 V.
    #[must_use]
    pub fn footbridge_pilot(seed: u64) -> Self {
        WallSpec::new(
            "footbridge-pilot",
            shm::pilot::ecocapsule_standoffs().to_vec(),
        )
        .seed(seed)
    }

    /// Replaces the survey seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the TX drive voltage (V).
    #[must_use]
    pub fn tx_voltage(mut self, tx_voltage_v: f64) -> Self {
        self.tx_voltage_v = tx_voltage_v;
        self
    }

    /// Routes this wall's surveys through `plan`'s fault timeline.
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Replaces the retry budget for must-answer commands.
    #[must_use]
    pub fn retry_policy(mut self, retry_policy: RetryPolicy) -> Self {
        self.retry_policy = retry_policy;
        self
    }

    /// Replaces the structural condition the wall is surveyed under.
    #[must_use]
    pub fn condition(mut self, condition: WallCondition) -> Self {
        self.condition = condition;
        self
    }

    /// The wall's survey configuration as [`SurveyOptions`] (serial
    /// pool, no recorder — the fleet installs its own).
    fn survey_options(&self) -> SurveyOptions<'_> {
        let mut options = SurveyOptions::new().tx_voltage(self.tx_voltage_v);
        if let Some(plan) = &self.fault_plan {
            options = options.fault_plan(plan).retry_policy(self.retry_policy);
        }
        options
    }

    /// Upper-bound virtual-slot demand of one survey of this wall — the
    /// budget the scheduler must grant before the survey may run.
    #[must_use]
    pub fn slot_demand(&self) -> u64 {
        self.survey_options().slot_demand(self.standoffs_m.len())
    }

    /// Runs one survey of this wall: fresh wall state, the spec's seed,
    /// a private recorder, serial pool. Errors only on an invalid link
    /// budget (non-positive drive voltage or degenerate geometry).
    #[must_use]
    pub fn survey(&self) -> EcoResult<(SurveyReport, MemoryRecorder)> {
        let mut wall = SelfSensingWall::common_wall_under(&self.standoffs_m, &self.condition)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut rec = MemoryRecorder::new();
        let mut options = self.survey_options();
        options = options.recorder(&mut rec);
        let report = options.run(&mut wall, &mut rng)?;
        Ok((report, rec))
    }

    /// Stable digest words of the full configuration, for the fleet
    /// config digest a checkpoint pins (and for layers above — the
    /// campaign engine folds them into its own config digest).
    #[must_use]
    pub fn config_words(&self) -> Vec<u64> {
        let mut words = crate::str_words(&self.name);
        words.push(self.standoffs_m.len() as u64);
        words.extend(self.standoffs_m.iter().map(|d| d.to_bits()));
        words.push(self.tx_voltage_v.to_bits());
        words.push(self.seed);
        match &self.fault_plan {
            None => words.push(0),
            Some(plan) => {
                words.push(1);
                words.push(plan.digest());
            }
        }
        words.push(u64::from(self.retry_policy.max_attempts));
        words.push(self.retry_policy.backoff_base_slots);
        words.push(self.retry_policy.backoff_cap_slots);
        words.extend(self.condition.digest_words());
        words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faults::FaultIntensity;

    #[test]
    fn zero_capsule_wall_surveys_to_an_empty_report() {
        let (report, rec) = WallSpec::new("bare", vec![]).survey().unwrap();
        assert!(report.powered_ids.is_empty());
        assert!(report.readings.is_empty());
        assert!(report.outcomes.is_empty());
        assert_eq!(rec.unmatched_closes(), 0);
    }

    #[test]
    fn surveys_are_a_pure_function_of_the_spec() {
        let spec = WallSpec::new("w", vec![0.5]).seed(7);
        let (a, rec_a) = spec.survey().unwrap();
        let (b, rec_b) = spec.survey().unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(rec_a.to_jsonl(), rec_b.to_jsonl());
        assert!(!rec_a.is_empty());
    }

    #[test]
    fn pilot_wall_reads_all_five_capsules() {
        let (report, _) = WallSpec::footbridge_pilot(3).survey().unwrap();
        assert_eq!(report.powered_ids.len(), shm::pilot::ECOCAPSULE_COUNT);
        assert_eq!(report.readings.len(), 3 * shm::pilot::ECOCAPSULE_COUNT);
    }

    #[test]
    fn config_words_cover_every_field() {
        let base = WallSpec::new("w", vec![0.5]).seed(1);
        let variants = [
            base.clone().seed(2),
            base.clone().tx_voltage(150.0),
            WallSpec::new("w2", vec![0.5]).seed(1),
            WallSpec::new("w", vec![0.6]).seed(1),
            base.clone()
                .fault_plan(FaultPlan::generate(1, &FaultIntensity::mild(40))),
            base.clone().retry_policy(RetryPolicy::none()),
            base.clone().condition(WallCondition {
                stiffness_factor: 0.9,
                ..WallCondition::pristine()
            }),
        ];
        let d0 = faults::fnv1a64(base.config_words());
        for v in variants {
            assert_ne!(faults::fnv1a64(v.config_words()), d0, "{v:?}");
        }
    }

    #[test]
    fn pristine_condition_spec_matches_default_spec() {
        let plain = WallSpec::new("w", vec![0.5, 1.0]).seed(11);
        let under = plain.clone().condition(WallCondition::pristine());
        let (a, rec_a) = plain.survey().unwrap();
        let (b, rec_b) = under.survey().unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(rec_a.to_jsonl(), rec_b.to_jsonl());
    }

    #[test]
    fn degraded_condition_changes_the_survey() {
        let spec = WallSpec::new("w", vec![1.0]).seed(11).tx_voltage(50.0);
        let (healthy, _) = spec.survey().unwrap();
        let (cracked, _) = spec
            .clone()
            .condition(WallCondition {
                crack_alpha_np_m: 1.5,
                ..WallCondition::pristine()
            })
            .survey()
            .unwrap();
        assert_eq!(healthy.powered_ids, vec![1000]);
        assert!(cracked.powered_ids.is_empty());
    }

    #[test]
    fn invalid_condition_surfaces_as_an_error() {
        let spec = WallSpec::new("w", vec![0.5]).condition(WallCondition {
            stiffness_factor: -1.0,
            ..WallCondition::pristine()
        });
        assert!(spec.survey().is_err());
    }

    #[test]
    fn faulted_posture_raises_slot_demand() {
        let quiet = WallSpec::new("q", vec![0.5, 1.0]);
        let faulted = quiet
            .clone()
            .fault_plan(FaultPlan::generate(0, &FaultIntensity::mild(40)));
        assert!(faulted.slot_demand() > quiet.slot_demand());
        assert!(WallSpec::new("empty", vec![]).slot_demand() >= 1);
    }
}

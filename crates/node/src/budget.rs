//! Energy budgeting and duty cycling.
//!
//! An EcoCapsule's power is whatever the CBW delivers. Near the reader
//! the harvest sustains continuous operation; at range it only covers
//! standby — or less, forcing a charge/burst duty cycle. This module
//! turns (harvested power, power model) into an operating plan, and
//! parameterizes the paper's §8 future-work variant ("transfer all logic
//! circuitry into a nano-scale chip to reduce the size to mm-scale").

use crate::harvester::Harvester;
use crate::power::{PowerModel, ACTIVE_PLATEAU_W, STANDBY_W};

/// How a node can operate at a given harvest level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OperatingPlan {
    /// Harvest below even duty-cycled operation: unreachable.
    Unreachable,
    /// Must accumulate charge, then burst: `(charge_s, burst_s)` per
    /// cycle, sustainable indefinitely.
    DutyCycled {
        /// Seconds spent charging per cycle.
        charge_s: f64,
        /// Seconds of active transmission per cycle.
        burst_s: f64,
    },
    /// Standby sustained continuously, bursts still need charging.
    StandbyContinuous,
    /// Fully continuous active operation.
    Continuous,
}

/// Storage energy usable per duty cycle (J): a 10 µF store swung between
/// 3.3 V and the 1.9 V LDO minimum holds ½C(V₁²−V₀²) ≈ 36 µJ.
pub const STORE_SWING_J: f64 = 0.5 * 10e-6 * (3.3 * 3.3 - 1.9 * 1.9);

/// Plans operation for a node harvesting `harvested_w` watts that wants
/// to transmit at `bitrate_bps` during bursts.
pub fn plan(harvested_w: f64, bitrate_bps: f64) -> OperatingPlan {
    assert!(
        harvested_w >= 0.0 && bitrate_bps > 0.0,
        "invalid plan query"
    );
    let active_w = PowerModel.consumption_w(bitrate_bps);
    if harvested_w >= active_w {
        return OperatingPlan::Continuous;
    }
    if harvested_w >= STANDBY_W {
        return OperatingPlan::StandbyContinuous;
    }
    // Duty cycle: charge the store at `harvested_w` (MCU asleep, ~1 µW),
    // then burst at `active_w` until the store is drained.
    let net_charge_w = harvested_w - 1e-6;
    if net_charge_w <= 0.0 {
        return OperatingPlan::Unreachable;
    }
    let charge_s = STORE_SWING_J / net_charge_w;
    let burst_s = STORE_SWING_J / active_w;
    OperatingPlan::DutyCycled { charge_s, burst_s }
}

/// Mean sustainable sensing rate (readings/hour) under a plan, where one
/// reading costs `reading_j` joules end to end (decode command + sample
/// + backscatter ≈ active power × 50 ms ≈ 18 µJ).
pub fn readings_per_hour(plan: OperatingPlan, reading_j: f64) -> f64 {
    assert!(reading_j > 0.0, "reading cost must be positive");
    match plan {
        OperatingPlan::Unreachable => 0.0,
        OperatingPlan::Continuous | OperatingPlan::StandbyContinuous => {
            // Bounded by protocol pacing, not energy; report a nominal
            // once-per-second ceiling.
            3600.0
        }
        OperatingPlan::DutyCycled { charge_s, burst_s } => {
            let cycle_s = charge_s + burst_s;
            let readings_per_cycle = (burst_s * ACTIVE_PLATEAU_W / reading_j).max(0.0);
            // Same protocol-pacing ceiling as the continuous plans.
            (readings_per_cycle * 3600.0 / cycle_s).min(3600.0)
        }
    }
}

/// A hardware generation of the node.
#[derive(Debug, Clone, Copy)]
pub struct NodeVariant {
    /// Display name.
    pub name: &'static str,
    /// Shell diameter (m).
    pub diameter_m: f64,
    /// PZT diameter (m) — sets the harvest aperture.
    pub pzt_diameter_m: f64,
    /// Active-mode draw (W).
    pub active_w: f64,
    /// Standby draw (W).
    pub standby_w: f64,
}

impl NodeVariant {
    /// The paper's prototype: 45 mm ping-pong-ball shell, 10 mm PZT,
    /// MSP430-class electronics.
    pub fn prototype() -> Self {
        NodeVariant {
            name: "prototype",
            diameter_m: 0.045,
            pzt_diameter_m: 0.010,
            active_w: ACTIVE_PLATEAU_W,
            standby_w: STANDBY_W,
        }
    }

    /// §8's future mm-scale node: "transfer all logic circuitry into a
    /// nano-scale chip to reduce the size to mm-scale" — a 5 mm sphere
    /// with a 2 mm PZT and an ASIC drawing ~20 µW active.
    pub fn mm_scale() -> Self {
        NodeVariant {
            name: "mm-scale",
            diameter_m: 0.005,
            pzt_diameter_m: 0.002,
            active_w: 20e-6,
            standby_w: 2e-6,
        }
    }

    /// Harvest scale relative to the prototype: the captured power goes
    /// with the PZT aperture area.
    pub fn harvest_scale(&self) -> f64 {
        (self.pzt_diameter_m / NodeVariant::prototype().pzt_diameter_m).powi(2)
    }

    /// Minimum received PZT voltage sustaining continuous *active*
    /// operation for this variant, inverted through the harvester's
    /// quadratic power curve scaled by the aperture.
    pub fn min_continuous_voltage(&self, h: &Harvester) -> f64 {
        // harvested(v) · scale = active_w → solve for v by bisection.
        let scale = self.harvest_scale();
        let f = |v: f64| h.harvested_power_w(v) * scale - self.active_w;
        let (mut lo, mut hi) = (0.37, 50.0);
        if f(hi) < 0.0 {
            return f64::INFINITY;
        }
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            if f(mid) < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Whether this variant still disturbs the aggregate skeleton — §8
    /// worries that prototype-sized capsules "may bring structural risks"
    /// while mm-scale ones are comparable to sand grains (< 8 mm counts
    /// as fine aggregate).
    pub fn is_aggregate_compatible(&self) -> bool {
        self.diameter_m <= 0.008
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_near_the_reader() {
        // 1 V harvests ~1 mW ≫ 360 µW.
        let h = Harvester::default();
        let p = plan(h.harvested_power_w(1.0), 1e3);
        assert_eq!(p, OperatingPlan::Continuous);
    }

    #[test]
    fn standby_only_at_midrange() {
        let p = plan(150e-6, 1e3);
        assert_eq!(p, OperatingPlan::StandbyContinuous);
    }

    #[test]
    fn duty_cycling_at_long_range() {
        let p = plan(40e-6, 1e3);
        let OperatingPlan::DutyCycled { charge_s, burst_s } = p else {
            panic!("expected duty cycle, got {p:?}");
        };
        assert!(
            charge_s > burst_s,
            "charging dominates: {charge_s} vs {burst_s}"
        );
        // Still useful: at least a few readings an hour.
        let rate = readings_per_hour(p, 18e-6);
        assert!(rate > 10.0, "readings/hour {rate}");
    }

    #[test]
    fn zero_harvest_is_unreachable() {
        assert_eq!(plan(0.0, 1e3), OperatingPlan::Unreachable);
        assert_eq!(readings_per_hour(OperatingPlan::Unreachable, 18e-6), 0.0);
    }

    #[test]
    fn more_harvest_never_fewer_readings() {
        let mut last = -1.0;
        for uw in [5.0, 20.0, 50.0, 100.0, 400.0, 1500.0] {
            let r = readings_per_hour(plan(uw * 1e-6, 1e3), 18e-6);
            assert!(r >= last, "rate dropped at {uw} µW");
            last = r;
        }
    }

    #[test]
    fn mm_scale_tradeoff() {
        // The mm node captures 25× less power but needs 18× less of it:
        // its continuous-operation voltage is close to the prototype's.
        let h = Harvester::default();
        let proto = NodeVariant::prototype();
        let mm = NodeVariant::mm_scale();
        assert!((mm.harvest_scale() - 0.04).abs() < 1e-12);
        let v_proto = proto.min_continuous_voltage(&h);
        let v_mm = mm.min_continuous_voltage(&h);
        assert!(v_proto < 1.2, "prototype needs {v_proto} V");
        assert!(v_mm < 3.0 * v_proto, "mm-scale needs {v_mm} V");
    }

    #[test]
    fn only_mm_scale_is_aggregate_compatible() {
        assert!(!NodeVariant::prototype().is_aggregate_compatible());
        assert!(NodeVariant::mm_scale().is_aggregate_compatible());
    }
}

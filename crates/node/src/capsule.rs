//! The assembled EcoCapsule node.
//!
//! Wires together the harvester (power-up & cold start), the MCU power
//! model, the envelope-detector downlink receiver (voltage multiplier
//! reused as envelope detector + TXB0302 level shifter, §4.2), the
//! Gen2-like protocol engine, the sensors and the impedance switch.

use crate::harvester::Harvester;
use crate::mcu::TimerDecoder;
use crate::power::{PowerMode, PowerModel};
use crate::sensors::{Accelerometer, Aht10, StrainGauge};
use crate::shell::Shell;
use dsp::envelope::{auto_thresholds, binarize_hysteresis, diode_envelope};
use phy::fm0::PREAMBLE_BITS;
use phy::pie::{segments_from_bools, Pie};
use protocol::frame::{Command, Reply, SensorKind};
use protocol::inventory::NodeProtocol;
use rand::Rng;

/// The physical quantities inside the concrete around a capsule — what
/// its sensors would read if sampled now.
#[derive(Debug, Clone, Copy)]
pub struct Environment {
    /// Internal temperature (°C).
    pub temperature_c: f64,
    /// Internal relative humidity (%).
    pub humidity_percent: f64,
    /// Internal strain (strain units, signed).
    pub strain: f64,
    /// Deck/member acceleration (m/s²).
    pub acceleration_m_s2: f64,
    /// Host concrete elastic modulus (Pa) for strain→stress conversion.
    pub concrete_e_pa: f64,
}

impl Default for Environment {
    fn default() -> Self {
        Environment {
            temperature_c: 25.0,
            humidity_percent: 70.0,
            strain: 0.0,
            acceleration_m_s2: 0.0,
            concrete_e_pa: 27.8e9,
        }
    }
}

/// Node lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapsuleState {
    /// Insufficient harvested energy.
    Dead,
    /// Charging the store; `remaining_s` until the MCU boots.
    ColdStarting {
        /// Seconds of charging still needed.
        remaining_s: f64,
    },
    /// MCU up, decoding downlink.
    Operational,
}

/// A complete EcoCapsule.
#[derive(Debug, Clone)]
pub struct EcoCapsule {
    /// Factory ID.
    pub id: u32,
    /// Energy chain.
    pub harvester: Harvester,
    /// Power model.
    pub power: PowerModel,
    /// Mechanical shell.
    pub shell: Shell,
    /// Protocol engine.
    pub protocol: NodeProtocol,
    /// Strain channel.
    pub strain_gauge: StrainGauge,
    /// Acceleration channel.
    pub accelerometer: Accelerometer,
    /// Lifecycle state.
    pub state: CapsuleState,
    /// PIE codec the node expects on the downlink.
    pub pie: Pie,
    /// Timer front end (tick quantization + DCO clock error) the firmware
    /// measures edges with.
    pub timer: TimerDecoder,
    /// Factory-trimmed DCO error, the baseline an injected thermal drift
    /// adds onto (see [`EcoCapsule::apply_fault`]).
    pub trim_clock_error: f64,
}

impl EcoCapsule {
    /// A paper-default capsule: resin shell, 4-stage harvester, 1 kbps
    /// PIE timing.
    pub fn new(id: u32) -> Self {
        EcoCapsule {
            id,
            harvester: Harvester::default(),
            power: PowerModel,
            shell: Shell::paper_resin(),
            protocol: NodeProtocol::new(id),
            strain_gauge: StrainGauge::default(),
            accelerometer: Accelerometer::default(),
            state: CapsuleState::Dead,
            pie: Pie::for_bitrate(1000.0),
            timer: TimerDecoder::paper_default(),
            trim_clock_error: 0.0,
        }
    }

    /// A capsule whose DCO runs `clock_error` fractionally fast (+) or
    /// slow (−) — failure-injection knob for the MSP430's uncalibrated
    /// oscillator (±3% over temperature).
    pub fn with_clock_error(id: u32, clock_error: f64) -> Self {
        let mut c = EcoCapsule::new(id);
        c.timer = TimerDecoder::new(1e-6, clock_error, c.pie);
        c.trim_clock_error = clock_error;
        c
    }

    /// The node-side fault hook: puts the capsule hardware into the
    /// state `p` dictates for the current slot. Thermal DCO drift adds
    /// onto the factory trim (clamped inside the timer's ±10% validity
    /// domain so injection can never panic the firmware model); the
    /// brownout axis is handled by [`EcoCapsule::harvest_under`], which
    /// owns lifecycle transitions.
    pub fn apply_fault(&mut self, p: &faults::Perturbation) {
        self.timer.clock_error = (self.trim_clock_error + p.clock_drift_frac).clamp(-0.095, 0.095);
    }

    /// [`EcoCapsule::harvest`] under a perturbation: inside a brownout
    /// window the CBW has wandered off the node, so the harvested input
    /// collapses to zero for the interval regardless of the link budget.
    pub fn harvest_under(&mut self, v_peak: f64, dt_s: f64, p: &faults::Perturbation) {
        if p.outage {
            self.harvest(0.0, dt_s);
        } else {
            self.harvest(v_peak, dt_s);
        }
        self.apply_fault(p);
    }

    /// [`EcoCapsule::harvest_under`] with energy telemetry: brownout
    /// windows and lifecycle transitions are reported to `rec` with the
    /// caller's slot-clock timestamp. State evolution is bit-identical
    /// to the unobserved path — recording draws no randomness.
    pub fn harvest_under_observed(
        &mut self,
        v_peak: f64,
        dt_s: f64,
        p: &faults::Perturbation,
        slot: u64,
        rec: &mut dyn obs::Recorder,
    ) {
        if p.outage {
            rec.count("energy.brownouts", 1, slot);
            self.harvest_observed(0.0, dt_s, slot, rec);
        } else {
            self.harvest_observed(v_peak, dt_s, slot, rec);
        }
        self.apply_fault(p);
    }

    /// [`EcoCapsule::harvest`] with energy telemetry: the harvest
    /// duration (cold-start time demanded by this drive level) is
    /// observed, and wake-up / starvation transitions are counted.
    pub fn harvest_observed(
        &mut self,
        v_peak: f64,
        dt_s: f64,
        slot: u64,
        rec: &mut dyn obs::Recorder,
    ) {
        let was_operational = self.is_operational();
        match self.harvester.cold_start_s(v_peak) {
            // Harvest duration telemetry (Fig 14): microseconds of
            // charging this drive level demands before the MCU boots.
            Some(needed_s) => rec.observe("energy.cold_start_us", (needed_s * 1e6) as u64, slot),
            None => rec.count("energy.under_threshold", 1, slot),
        }
        self.harvest(v_peak, dt_s);
        if !was_operational && self.is_operational() {
            rec.count("energy.wakeups", 1, slot);
        } else if was_operational && !self.is_operational() {
            rec.count("energy.starved", 1, slot);
        }
    }

    /// Applies harvested input for `dt_s` seconds at PZT peak voltage
    /// `v_peak`, advancing the lifecycle (Fig 14 cold start).
    pub fn harvest(&mut self, v_peak: f64, dt_s: f64) {
        assert!(dt_s >= 0.0, "time step must be non-negative");
        match self.harvester.cold_start_s(v_peak) {
            None => {
                // Below threshold: dies (no storage across outages at this
                // fidelity — the store holds for ms, not s).
                self.state = CapsuleState::Dead;
            }
            Some(needed) => {
                self.state = match self.state {
                    CapsuleState::Dead => {
                        if dt_s >= needed {
                            CapsuleState::Operational
                        } else {
                            CapsuleState::ColdStarting {
                                remaining_s: needed - dt_s,
                            }
                        }
                    }
                    CapsuleState::ColdStarting { remaining_s } => {
                        if dt_s >= remaining_s {
                            CapsuleState::Operational
                        } else {
                            CapsuleState::ColdStarting {
                                remaining_s: remaining_s - dt_s,
                            }
                        }
                    }
                    CapsuleState::Operational => CapsuleState::Operational,
                };
            }
        }
    }

    /// True when the MCU is running.
    pub fn is_operational(&self) -> bool {
        self.state == CapsuleState::Operational
    }

    /// Current power mode for consumption accounting.
    pub fn power_mode(&self) -> PowerMode {
        match self.state {
            CapsuleState::Operational => PowerMode::Standby,
            _ => PowerMode::Sleep,
        }
    }

    /// Demodulates a received downlink waveform (carrier-level, at
    /// `fs_hz`) through the envelope detector + level shifter + PIE timer
    /// decoding, returning the recovered command if the frame parses.
    ///
    /// This is the node's whole receive path: no FFT, no downconversion —
    /// just rectify, smooth, slice, and measure intervals (§4.2).
    pub fn demodulate_downlink(&self, waveform: &[f64], fs_hz: f64) -> Option<Command> {
        if !self.is_operational() {
            return None;
        }
        let env = diode_envelope(waveform, self.pie.tari_s / 6.0, fs_hz);
        let (lo, hi) = auto_thresholds(&env);
        let sliced = binarize_hysteresis(&env, lo, hi);
        let segments = segments_from_bools(&sliced, fs_hz);
        // Drop leading/trailing idle (the carrier before/after the frame)
        // by trimming segments shorter than half a tari.
        let trimmed: Vec<(f64, bool)> = segments
            .into_iter()
            .filter(|s| s.duration_s > 0.4 * self.pie.tari_s)
            .map(|s| (s.duration_s, s.high))
            .collect();
        // Edge intervals go through the firmware's timer capture (tick
        // quantization + DCO clock error) before classification.
        let bits = self.timer.decode_edges(&trimmed).ok()?;
        // Scan for a parseable frame: commands are self-delimiting only
        // by length, so try every suffix length the codec allows.
        for start in 0..bits.len().min(8) {
            for end in (start + 9..=bits.len()).rev() {
                if let Ok(cmd) = Command::decode(&bits[start..end]) {
                    return Some(cmd);
                }
            }
        }
        None
    }

    /// Executes a decoded command against the protocol engine and the
    /// environment, returning the uplink reply (with real sensor data
    /// substituted) if the node answers.
    pub fn execute<R: Rng>(
        &mut self,
        cmd: &Command,
        env: &Environment,
        rng: &mut R,
    ) -> Option<Reply> {
        if !self.is_operational() {
            return None;
        }
        let reply = self.protocol.on_command(cmd, rng)?;
        Some(match reply {
            Reply::SensorData { kind, .. } => Reply::SensorData {
                kind,
                raw: self.sample(kind, env),
            },
            other => other,
        })
    }

    /// Samples one sensor channel against the environment.
    pub fn sample(&self, kind: SensorKind, env: &Environment) -> u16 {
        match kind {
            SensorKind::Temperature => Aht10::encode_temperature(env.temperature_c),
            SensorKind::Humidity => Aht10::encode_humidity(env.humidity_percent),
            SensorKind::Strain => self.strain_gauge.encode(env.strain),
            SensorKind::Acceleration => self.accelerometer.encode(env.acceleration_m_s2),
            SensorKind::Stress => {
                // Transport stress as a strain-scaled word: the reader
                // knows E and re-derives MPa.
                self.strain_gauge.encode(env.strain)
            }
        }
    }

    /// The bit stream this node backscatters for `reply`: FM0 preamble +
    /// CRC-16-protected frame.
    pub fn backscatter_bits(&self, reply: &Reply) -> Vec<bool> {
        let mut bits = PREAMBLE_BITS.to_vec();
        bits.extend(reply.encode());
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phy::modulation::{synthesize_drive, DownlinkScheme};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const FS: f64 = 1.0e6;

    fn powered_capsule() -> EcoCapsule {
        let mut c = EcoCapsule::new(99);
        c.harvest(2.0, 0.1);
        assert!(c.is_operational());
        c
    }

    #[test]
    fn cold_start_progression() {
        let mut c = EcoCapsule::new(1);
        assert_eq!(c.state, CapsuleState::Dead);
        c.harvest(0.5, 20e-3); // needs ~55 ms
        assert!(matches!(c.state, CapsuleState::ColdStarting { .. }));
        c.harvest(0.5, 40e-3);
        assert!(c.is_operational());
    }

    #[test]
    fn power_loss_kills_the_node() {
        let mut c = powered_capsule();
        c.harvest(0.2, 1e-3);
        assert_eq!(c.state, CapsuleState::Dead);
    }

    #[test]
    fn dead_node_does_not_demodulate() {
        let c = EcoCapsule::new(1);
        let cbw = phy::modulation::synthesize_cbw(230e3, 1e-3, FS);
        assert_eq!(c.demodulate_downlink(&cbw, FS), None);
    }

    #[test]
    fn end_to_end_downlink_demodulation() {
        // Encode a command with PIE/FSK, pass the *ideal* waveform (FSK
        // low tone at 35% residual amplitude as the concrete would leave
        // it), and check the node decodes it with its envelope detector.
        let c = powered_capsule();
        let cmd = Command::Ack { rn16: 0x5A5A };
        let segments = c.pie.encode(&cmd.encode());
        let drive = synthesize_drive(&segments, DownlinkScheme::Ook, 230e3, FS);
        let decoded = c.demodulate_downlink(&drive, FS);
        assert_eq!(decoded, Some(cmd));
    }

    #[test]
    fn downlink_demodulation_survives_fsk_residual() {
        // With FSK the low edge is an off-resonant tone the concrete
        // attenuates to ~25%: the slicer must still split the levels.
        let c = powered_capsule();
        let cmd = Command::ReadSensor {
            kind: SensorKind::Temperature,
        };
        let segments = c.pie.encode(&cmd.encode());
        let mut drive = synthesize_drive(
            &segments,
            DownlinkScheme::FskInOokOut { off_hz: 180e3 },
            230e3,
            FS,
        );
        // Concrete suppression of the off tone: scale low-edge samples.
        let mut idx = 0usize;
        for seg in &segments {
            let n = (seg.duration_s * FS).round() as usize;
            for _ in 0..n {
                if !seg.high && idx < drive.len() {
                    drive[idx] *= 0.25;
                }
                idx += 1;
            }
        }
        assert_eq!(c.demodulate_downlink(&drive, FS), Some(cmd));
    }

    #[test]
    fn sensor_sampling_encodes_environment() {
        let c = powered_capsule();
        let env = Environment {
            temperature_c: 31.5,
            humidity_percent: 82.0,
            strain: 120e-6,
            acceleration_m_s2: 0.03,
            concrete_e_pa: 27.8e9,
        };
        let t = Aht10::decode_temperature(c.sample(SensorKind::Temperature, &env));
        assert!((t - 31.5).abs() < 0.01);
        let h = Aht10::decode_humidity(c.sample(SensorKind::Humidity, &env));
        assert!((h - 82.0).abs() < 0.01);
        let s = c.strain_gauge.decode(c.sample(SensorKind::Strain, &env));
        assert!((s - 120e-6).abs() < 1e-7);
    }

    #[test]
    fn execute_substitutes_real_readings() {
        let mut c = powered_capsule();
        let mut rng = StdRng::seed_from_u64(3);
        let env = Environment::default();
        // Walk to Acknowledged.
        let rn16 = loop {
            if let Some(Reply::Rn16 { rn16 }) =
                c.execute(&Command::Query { q: 0, session: 0 }, &env, &mut rng)
            {
                break rn16;
            }
        };
        assert_eq!(
            c.execute(&Command::Ack { rn16 }, &env, &mut rng),
            Some(Reply::NodeId { id: 99 })
        );
        let data = c.execute(
            &Command::ReadSensor {
                kind: SensorKind::Humidity,
            },
            &env,
            &mut rng,
        );
        let Some(Reply::SensorData { raw, .. }) = data else {
            panic!("expected data")
        };
        assert!((Aht10::decode_humidity(raw) - 70.0).abs() < 0.01);
    }

    #[test]
    fn backscatter_bits_carry_preamble_and_crc() {
        let c = powered_capsule();
        let reply = Reply::NodeId { id: 7 };
        let bits = c.backscatter_bits(&reply);
        assert_eq!(&bits[..6], &PREAMBLE_BITS);
        assert_eq!(Reply::decode(&bits[6..]), Ok(reply));
    }
}

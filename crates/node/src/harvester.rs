//! Energy harvesting chain (§4.2, Figs 9 & 14).
//!
//! The acoustic signal on the node PZT feeds a four-stage voltage
//! multiplier (doubling per stage minus diode drops), a storage
//! capacitor, and a Ti LP5900SD-1.8 LDO that regulates to 1.8 V for the
//! MCU and sensors. A diode in front of the LDO blocks reverse current.
//!
//! Cold start (Fig 14): below 0.5 V of harvested input the node never
//! wakes; at 0.5 V activation takes ≈55 ms, falling to ≈4.4 ms at 2 V.
//! We model the storage-cap charge-up with a charging current
//! proportional to the input overhead above a dead-zone voltage `V₀`,
//! which reproduces the measured hyperbola `t = A/(V − V₀)`.

/// Minimum PZT input voltage that can activate the MCU (Fig 14).
pub const MIN_ACTIVATION_V: f64 = 0.5;

/// Regulated rail (LP5900SD-1.8).
pub const LDO_OUTPUT_V: f64 = 1.8;

/// LDO dropout: the multiplier must deliver at least rail + dropout.
pub const LDO_DROPOUT_V: f64 = 0.08;

/// Schottky drop per multiplier diode.
pub const DIODE_DROP_V: f64 = 0.18;

/// The four-stage multiplier + LDO chain.
#[derive(Debug, Clone, Copy)]
pub struct Harvester {
    /// Number of multiplier stages (paper: 4).
    pub stages: u32,
    /// Storage capacitance (F).
    pub storage_f: f64,
}

impl Default for Harvester {
    fn default() -> Self {
        Harvester {
            stages: 4,
            storage_f: 10e-6,
        }
    }
}

/// Cold-start hyperbola dead zone (V): the effective input level below
/// which the multiplier cannot push charge into the store. Calibrated
/// with [`COLD_START_A_VS`] to Fig 14's two anchors (55 ms @ 0.5 V,
/// 4.4 ms @ 2 V).
pub const COLD_START_V0: f64 = 0.3696;

/// Cold-start hyperbola scale (V·s).
pub const COLD_START_A_VS: f64 = 7.17e-3;

impl Harvester {
    /// Unloaded DC output of the multiplier for a PZT peak voltage
    /// `v_peak`: each stage ideally doubles the peak minus two diode
    /// drops.
    pub fn multiplier_output_v(&self, v_peak: f64) -> f64 {
        assert!(v_peak >= 0.0, "peak voltage must be non-negative");
        (2.0 * self.stages as f64 * (v_peak - DIODE_DROP_V).max(0.0)).max(0.0)
    }

    /// Whether a PZT input at `v_peak` can ever power the node up.
    pub fn can_activate(&self, v_peak: f64) -> bool {
        v_peak >= MIN_ACTIVATION_V
            && self.multiplier_output_v(v_peak) >= LDO_OUTPUT_V + LDO_DROPOUT_V
    }

    /// Cold-start time (s) from dead to MCU-running at input `v_peak`,
    /// or `None` below the activation threshold (Fig 14).
    pub fn cold_start_s(&self, v_peak: f64) -> Option<f64> {
        if !self.can_activate(v_peak) {
            return None;
        }
        Some(COLD_START_A_VS / (v_peak - COLD_START_V0))
    }

    /// Steady-state harvested power (W) available from input `v_peak`
    /// into a matched load: quadratic in the usable overhead, saturating
    /// at the multiplier's delivery limit. Calibrated so a 1 V input
    /// sustains the node's ~360 µW active draw with margin.
    pub fn harvested_power_w(&self, v_peak: f64) -> f64 {
        assert!(v_peak >= 0.0, "peak voltage must be non-negative");
        let overhead = (v_peak - COLD_START_V0).max(0.0);
        // k calibrated: 1 V → ≈1 mW.
        let k = 2.5e-3;
        k * overhead * overhead
    }

    /// Simulates the storage-capacitor voltage over time for a piecewise
    /// input envelope `(duration_s, v_peak)`. Returns sampled
    /// `(t_s, v_store)` at `dt_s` resolution — used by the failure-
    /// injection tests (brown-out under PIE low edges).
    pub fn simulate_store(&self, envelope: &[(f64, f64)], dt_s: f64) -> Vec<(f64, f64)> {
        assert!(dt_s > 0.0, "time step must be positive");
        let mut t = 0.0;
        let mut v_store = 0.0f64;
        let mut out = Vec::new();
        for &(dur, v_in) in envelope {
            assert!(dur >= 0.0 && v_in >= 0.0, "invalid envelope entry");
            let target = self.multiplier_output_v(v_in).min(3.6); // clamp rail
            let n = (dur / dt_s).ceil() as usize;
            for _ in 0..n {
                // RC-like approach to the target with the cold-start time
                // constant; discharge through the load when unpowered.
                let tau = if target > v_store {
                    COLD_START_A_VS / (v_in - COLD_START_V0).max(1e-3)
                } else {
                    20e-3 // load discharge
                };
                v_store += (target - v_store) * (dt_s / tau).min(1.0);
                out.push((t, v_store));
                t += dt_s;
            }
        }
        out
    }

    /// Structure-of-arrays form of [`Harvester::simulate_store`] for a
    /// whole wall: simulates every capsule's storage capacitor at once,
    /// where lane `i` sees the shared input envelope scaled by
    /// `gains[i]` (each capsule's link-budget voltage gain).
    ///
    /// The per-lane recurrence never mixes lanes, and every per-lane
    /// expression is written exactly as the scalar loop writes it, so
    /// trace `i` is **bit-identical** to
    /// `simulate_store(&[(dur, v·gains[i]), …], dt_s)` (the lane rule in
    /// `dsp::batch`; DESIGN.md §8). The win is memory traversal: one
    /// pass over time with all capsules' state contiguous, instead of
    /// one full envelope walk per capsule.
    pub fn simulate_store_lanes(
        &self,
        envelope: &[(f64, f64)],
        dt_s: f64,
        gains: &[f64],
    ) -> Vec<Vec<(f64, f64)>> {
        assert!(dt_s > 0.0, "time step must be positive");
        assert!(
            gains.iter().all(|&g| g >= 0.0),
            "gains must be non-negative"
        );
        let lanes = gains.len();
        let mut v_store = vec![0.0f64; lanes];
        let mut targets = vec![0.0f64; lanes];
        let mut tau_charge = vec![0.0f64; lanes];
        let mut out: Vec<Vec<(f64, f64)>> = vec![Vec::new(); lanes];
        let mut t = 0.0;
        for &(dur, v_base) in envelope {
            assert!(dur >= 0.0 && v_base >= 0.0, "invalid envelope entry");
            // Per-segment, per-lane constants hoisted out of the time
            // loop: the same values the scalar loop recomputes per step.
            for (lane, &g) in gains.iter().enumerate() {
                let v_in = v_base * g;
                targets[lane] = self.multiplier_output_v(v_in).min(3.6);
                tau_charge[lane] = COLD_START_A_VS / (v_in - COLD_START_V0).max(1e-3);
            }
            let n = (dur / dt_s).ceil() as usize;
            for _ in 0..n {
                for lane in 0..lanes {
                    let target = targets[lane];
                    let tau = if target > v_store[lane] {
                        tau_charge[lane]
                    } else {
                        20e-3 // load discharge
                    };
                    v_store[lane] += (target - v_store[lane]) * (dt_s / tau).min(1.0);
                    out[lane].push((t, v_store[lane]));
                }
                t += dt_s;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14_anchor_points() {
        let h = Harvester::default();
        let t_05 = h.cold_start_s(0.5).unwrap();
        let t_20 = h.cold_start_s(2.0).unwrap();
        assert!((t_05 - 55e-3).abs() < 3e-3, "0.5 V → {} ms", t_05 * 1e3);
        assert!((t_20 - 4.4e-3).abs() < 0.3e-3, "2 V → {} ms", t_20 * 1e3);
    }

    #[test]
    fn below_threshold_never_activates() {
        let h = Harvester::default();
        assert_eq!(h.cold_start_s(0.45), None);
        assert!(!h.can_activate(0.49));
        assert!(h.can_activate(0.5));
    }

    #[test]
    fn cold_start_monotone_decreasing_in_voltage() {
        let h = Harvester::default();
        let mut last = f64::INFINITY;
        for v in [0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0] {
            let t = h.cold_start_s(v).unwrap();
            assert!(t < last, "cold start not monotone at {v} V");
            last = t;
        }
    }

    #[test]
    fn multiplier_gain() {
        let h = Harvester::default();
        // 4 stages ≈ 8× minus drops.
        let v = h.multiplier_output_v(1.0);
        assert!((v - 8.0 * (1.0 - DIODE_DROP_V)).abs() < 1e-9);
        assert_eq!(h.multiplier_output_v(0.1), 0.0, "below diode drop");
    }

    #[test]
    fn one_volt_sustains_active_node() {
        let h = Harvester::default();
        let p = h.harvested_power_w(1.0);
        assert!(p > 400e-6, "1 V harvests {} µW", p * 1e6);
    }

    #[test]
    fn half_volt_sustains_standby_only() {
        let h = Harvester::default();
        let p = h.harvested_power_w(0.5);
        assert!(p > 30e-6, "0.5 V harvests {} µW", p * 1e6);
        assert!(p < 360e-6, "0.5 V cannot run active mode");
    }

    #[test]
    fn store_charges_and_holds() {
        let h = Harvester::default();
        let trace = h.simulate_store(&[(50e-3, 1.0)], 1e-4);
        let final_v = trace.last().unwrap().1;
        assert!(final_v > 1.8, "store reached {final_v}");
        // Monotone non-decreasing under constant input.
        for w in trace.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
    }

    #[test]
    fn store_droops_when_input_drops() {
        let h = Harvester::default();
        let trace = h.simulate_store(&[(50e-3, 1.0), (50e-3, 0.0)], 1e-4);
        let mid = trace[(50e-3 / 1e-4) as usize - 1].1;
        let end = trace.last().unwrap().1;
        assert!(end < mid, "store must droop unpowered: {mid} → {end}");
    }

    #[test]
    fn store_lanes_match_scalar_bitwise() {
        let h = Harvester::default();
        let envelope = [(30e-3, 1.5), (5e-3, 0.0), (20e-3, 0.8), (10e-3, 2.0)];
        let gains = [1.0, 0.61, 0.25, 0.0, 1.37];
        let lanes = h.simulate_store_lanes(&envelope, 1e-4, &gains);
        assert_eq!(lanes.len(), gains.len());
        for (lane, &g) in gains.iter().enumerate() {
            let scaled: Vec<(f64, f64)> = envelope.iter().map(|&(d, v)| (d, v * g)).collect();
            let scalar = h.simulate_store(&scaled, 1e-4);
            assert_eq!(lanes[lane].len(), scalar.len(), "lane {lane}");
            for (i, ((ta, va), (tb, vb))) in lanes[lane].iter().zip(&scalar).enumerate() {
                assert_eq!(ta.to_bits(), tb.to_bits(), "lane {lane} step {i} time");
                assert_eq!(va.to_bits(), vb.to_bits(), "lane {lane} step {i} volts");
            }
        }
        // Degenerate batches.
        assert!(h.simulate_store_lanes(&envelope, 1e-4, &[]).is_empty());
        let empty = h.simulate_store_lanes(&[], 1e-4, &gains);
        assert!(empty.iter().all(Vec::is_empty));
    }

    #[test]
    fn pie_low_edges_do_not_brown_out() {
        // PIE guarantees ≥50% power: alternating 100 µs on/off must keep
        // the store above the LDO minimum once charged.
        let h = Harvester::default();
        let mut envelope = vec![(100e-3, 1.5)]; // charge fully
        for _ in 0..50 {
            envelope.push((100e-6, 1.5));
            envelope.push((100e-6, 0.0));
        }
        let trace = h.simulate_store(&envelope, 1e-5);
        let after_charge = (100e-3 / 1e-5) as usize;
        for &(t, v) in &trace[after_charge..] {
            assert!(
                v > LDO_OUTPUT_V + LDO_DROPOUT_V,
                "brown-out at t={t}: {v} V"
            );
        }
    }
}

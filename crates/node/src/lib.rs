//! # ecocapsule-node
//!
//! The EcoCapsule itself: a battery-free piezoelectric backscatter node
//! implanted permanently in concrete (§4).
//!
//! - [`harvester`] — the 4-stage voltage multiplier + LP5900 LDO energy
//!   chain, with the cold-start dynamics of Fig 14 (0.5 V minimum,
//!   55 ms → 4.4 ms activation);
//! - [`power`] — the MSP430G2553-based power model of Fig 13 (80.1 µW
//!   standby, ~360 µW active regardless of bitrate);
//! - [`sensors`] — AHT10 temperature/humidity, BFH1K strain bridge, and
//!   the pilot study's acceleration/stress channels, with raw 16-bit
//!   encodings for the air protocol;
//! - [`shell`] — the stressless spherical shell (§4.1): pour-pressure
//!   tolerance, buckling/strength limits reproducing the paper's
//!   4.3 MPa → 195 m (resin) and 115.2 MPa → ~4985 m (alloy steel);
//! - [`mcu`] — the firmware's timer-interrupt PIE decoder with tick
//!   quantization and DCO clock error;
//! - [`budget`] — energy planning (continuous / standby / duty-cycled
//!   operation) and the §8 mm-scale node variant;
//! - [`capsule`] — the assembled node: harvester + MCU state machine +
//!   protocol engine + sensors + impedance switch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod capsule;
pub mod harvester;
pub mod mcu;
pub mod power;
pub mod sensors;
pub mod shell;

//! The MSP430-class firmware's timer-interrupt PIE decoder (§4.2).
//!
//! "The MCU decodes the downlink PIE command by using the timer interrupt
//! to measure the time interval between every edge of the demodulator
//! output." That measurement is quantized to the MCU's timer tick and
//! skewed by its (uncalibrated DCO) clock error — both of which the PIE
//! symbol classifier must tolerate. This module models exactly that path:
//! edges in, tick counts, interval classification, frame bits out.

use phy::pie::{Pie, PieError, Segment};

/// The timer-capture front end of the firmware.
#[derive(Debug, Clone, Copy)]
pub struct TimerDecoder {
    /// Timer tick period (s). MSP430G2553 SMCLK at 1 MHz → 1 µs.
    pub tick_s: f64,
    /// Fractional clock error of the DCO (±; datasheet: up to ±3%
    /// uncalibrated over temperature).
    pub clock_error: f64,
    /// PIE timing the firmware was programmed for.
    pub pie: Pie,
}

impl TimerDecoder {
    /// The paper's firmware: 1 µs tick, perfect trim, 1 kbps PIE.
    pub fn paper_default() -> Self {
        TimerDecoder {
            tick_s: 1e-6,
            clock_error: 0.0,
            pie: Pie::for_bitrate(1000.0),
        }
    }

    /// Creates a decoder. Panics on non-positive tick or |error| ≥ 10%.
    pub fn new(tick_s: f64, clock_error: f64, pie: Pie) -> Self {
        assert!(tick_s > 0.0, "tick must be positive");
        assert!(clock_error.abs() < 0.10, "clock error must be under 10%");
        TimerDecoder {
            tick_s,
            clock_error,
            pie,
        }
    }

    /// Converts a true edge interval (s) into the tick count the timer
    /// capture registers under this clock.
    pub fn measure_ticks(&self, interval_s: f64) -> u32 {
        assert!(interval_s >= 0.0, "interval must be non-negative");
        let apparent = interval_s * (1.0 + self.clock_error);
        (apparent / self.tick_s).round() as u32
    }

    /// Reconstructs segments from `(tick_count, level)` capture pairs —
    /// what the interrupt handler accumulates.
    pub fn segments_from_captures(&self, captures: &[(u32, bool)]) -> Vec<Segment> {
        captures
            .iter()
            .map(|&(ticks, high)| Segment {
                duration_s: ticks as f64 * self.tick_s,
                high,
            })
            .collect()
    }

    /// The full firmware receive path: true edge intervals (from the
    /// level shifter) → timer capture (quantization + clock skew) →
    /// PIE classification → bits.
    #[must_use]
    pub fn decode_edges(&self, edges: &[(f64, bool)]) -> Result<Vec<bool>, PieError> {
        let captures: Vec<(u32, bool)> = edges
            .iter()
            .map(|&(dur, high)| (self.measure_ticks(dur), high))
            .collect();
        let segments = self.segments_from_captures(&captures);
        self.pie.decode(&segments)
    }

    /// Largest clock error this decoder tolerates for its PIE timing,
    /// found by scanning: the PIE classifier accepts ±35% on the short
    /// interval, so with a `t` tari and tick `τ`, tolerance ≈
    /// 0.35 − τ/(2t) fractional error.
    pub fn clock_error_tolerance(&self) -> f64 {
        0.35 - self.tick_s / (2.0 * self.pie.tari_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges_for(bits: &[bool], pie: &Pie) -> Vec<(f64, bool)> {
        pie.encode(bits)
            .into_iter()
            .map(|s| (s.duration_s, s.high))
            .collect()
    }

    #[test]
    fn clean_decode_through_the_timer_path() {
        let dec = TimerDecoder::paper_default();
        let bits = vec![true, false, true, true, false];
        let edges = edges_for(&bits, &dec.pie);
        assert_eq!(dec.decode_edges(&edges).unwrap(), bits);
    }

    #[test]
    fn survives_datasheet_clock_error() {
        // ±3% DCO error must not break 1 kbps PIE.
        let bits = vec![false, true, false, false, true, true];
        for err in [-0.03, 0.03] {
            let dec = TimerDecoder::new(1e-6, err, Pie::for_bitrate(1000.0));
            let edges = edges_for(&bits, &dec.pie);
            assert_eq!(dec.decode_edges(&edges).unwrap(), bits, "error {err}");
        }
    }

    #[test]
    fn breaks_when_tick_exceeds_the_tari() {
        // A 40 µs tick cannot resolve a 20 µs tari: the bit-0 high
        // interval rounds to 2 tari — matching neither symbol.
        let bits = vec![false, true];
        let coarse = TimerDecoder::new(40e-6, 0.0, Pie::new(20e-6));
        let edges = edges_for(&bits, &coarse.pie);
        let result = coarse.decode_edges(&edges);
        assert!(
            result.is_err() || result.unwrap() != bits,
            "tick ≥ 2×tari must break the classifier"
        );
    }

    #[test]
    fn tick_quantization_rounds() {
        let dec = TimerDecoder::paper_default();
        assert_eq!(dec.measure_ticks(333.4e-6), 333);
        assert_eq!(dec.measure_ticks(333.6e-6), 334);
        assert_eq!(dec.measure_ticks(0.0), 0);
    }

    #[test]
    fn tolerance_shrinks_with_coarser_ticks() {
        let fine = TimerDecoder::new(1e-6, 0.0, Pie::for_bitrate(1000.0));
        let coarse = TimerDecoder::new(50e-6, 0.0, Pie::for_bitrate(1000.0));
        assert!(fine.clock_error_tolerance() > coarse.clock_error_tolerance());
    }

    #[test]
    #[should_panic(expected = "clock error")]
    fn rejects_wild_clock() {
        let _ = TimerDecoder::new(1e-6, 0.2, Pie::for_bitrate(1000.0));
    }
}

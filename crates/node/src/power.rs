//! Node power model (§4.2, §5.2, Fig 13).
//!
//! Measured with Ti EnergyTrace in the paper: 80.1 µW on standby (MCU in
//! LPM3 waiting to decode downlink), and a total that "fluctuates around
//! 360 µW slightly regardless of the bitrate" once transmitting —
//! backscatter costs almost nothing because the impedance switch burns
//! microwatts and the carrier energy comes from the reader.

/// MSP430G2553 active-mode core draw (datasheet/paper: 414 µW at 1.8 V).
pub const MCU_ACTIVE_W: f64 = 414e-6;

/// MSP430G2553 LPM3 sleep draw (paper: 0.9 µW).
pub const MCU_SLEEP_W: f64 = 0.9e-6;

/// Measured standby total (Fig 13 at 0 kbps).
pub const STANDBY_W: f64 = 80.1e-6;

/// Measured active-mode plateau (Fig 13 for 1–8 kbps).
pub const ACTIVE_PLATEAU_W: f64 = 360e-6;

/// Operating modes of the node firmware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerMode {
    /// Harvesting only; MCU asleep in LPM3.
    Sleep,
    /// Awake, envelope detector armed, decoding downlink edges.
    Standby,
    /// Transmitting on the uplink at some bitrate.
    Active,
}

/// Power model replicating Fig 13.
#[derive(Debug, Clone, Copy, Default)]
pub struct PowerModel;

impl PowerModel {
    /// Total node draw (W) at an uplink `bitrate_bps` (0 = standby).
    ///
    /// Matches Fig 13: 80.1 µW at zero, then a plateau near 360 µW with a
    /// tiny slope from the switch toggling energy (CV² per transition).
    pub fn consumption_w(&self, bitrate_bps: f64) -> f64 {
        assert!(bitrate_bps >= 0.0, "bitrate must be non-negative");
        // lint:allow(no-float-eq) exact 0 bps is Fig 13's standby sentinel, not a computed rate
        if bitrate_bps == 0.0 {
            return STANDBY_W;
        }
        // Switch energy: ~2 transitions/bit, C ≈ 50 pF, V = 1.8 V.
        let switch_w = 2.0 * bitrate_bps * 50e-12 * 1.8 * 1.8;
        ACTIVE_PLATEAU_W + switch_w
    }

    /// Draw in an explicit mode.
    pub fn mode_w(&self, mode: PowerMode) -> f64 {
        match mode {
            PowerMode::Sleep => MCU_SLEEP_W,
            PowerMode::Standby => STANDBY_W,
            PowerMode::Active => ACTIVE_PLATEAU_W,
        }
    }

    /// Maximum sustainable uplink bitrate for a given harvested power, or
    /// `None` if even standby cannot be sustained.
    pub fn max_bitrate_bps(&self, harvested_w: f64) -> Option<f64> {
        assert!(harvested_w >= 0.0, "power must be non-negative");
        if harvested_w < STANDBY_W {
            return None;
        }
        if harvested_w < ACTIVE_PLATEAU_W {
            return Some(0.0);
        }
        // Invert the switch term.
        let overhead = harvested_w - ACTIVE_PLATEAU_W;
        Some(overhead / (2.0 * 50e-12 * 1.8 * 1.8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_standby_is_80_uw() {
        let p = PowerModel.consumption_w(0.0);
        assert!((p - 80.1e-6).abs() < 1e-9);
    }

    #[test]
    fn fig13_active_plateau_is_flat_around_360_uw() {
        let p1 = PowerModel.consumption_w(1e3);
        let p8 = PowerModel.consumption_w(8e3);
        assert!(
            (p1 - 360e-6).abs() / 360e-6 < 0.02,
            "1 kbps: {} µW",
            p1 * 1e6
        );
        assert!(
            (p8 - 360e-6).abs() / 360e-6 < 0.02,
            "8 kbps: {} µW",
            p8 * 1e6
        );
        // "fluctuates ... slightly regardless of the bitrate".
        assert!((p8 - p1) / p1 < 0.01);
    }

    #[test]
    fn backscatter_is_nearly_free() {
        // The whole point of backscatter: 8 kbps costs < 1 µW extra.
        let extra = PowerModel.consumption_w(8e3) - PowerModel.consumption_w(1e-9);
        assert!(extra < 3e-6, "toggling cost {} µW", extra * 1e6);
    }

    #[test]
    fn sleep_is_under_a_microwatt() {
        assert!(PowerModel.mode_w(PowerMode::Sleep) < 1e-6);
    }

    #[test]
    fn max_bitrate_thresholds() {
        let m = PowerModel;
        assert_eq!(m.max_bitrate_bps(50e-6), None, "below standby");
        assert_eq!(m.max_bitrate_bps(100e-6), Some(0.0), "standby only");
        assert!(
            m.max_bitrate_bps(400e-6).unwrap() > 8e3,
            "active with margin"
        );
    }
}

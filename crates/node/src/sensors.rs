//! Sensor models and raw encodings (§4.2: AHT10 temperature + humidity
//! over I²C, BFH1K-3EB full-bridge strain gauge on the internal ADC;
//! plus the pilot study's acceleration and stress channels).
//!
//! The air protocol carries 16-bit raw words; each sensor defines its
//! physical↔raw scaling here so both ends agree.

/// AHT10 integrated temperature/humidity sensor.
///
/// The real part outputs 20-bit words; we transport the top 16 bits.
/// Scaling per datasheet: `RH% = raw/2²⁰·100`, `T°C = raw/2²⁰·200 − 50`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Aht10;

impl Aht10 {
    /// Encodes a humidity percentage (0..=100) to a 16-bit raw word.
    pub fn encode_humidity(rh_percent: f64) -> u16 {
        let clamped = rh_percent.clamp(0.0, 100.0);
        ((clamped / 100.0) * 65535.0).round() as u16
    }

    /// Decodes a 16-bit raw humidity word.
    pub fn decode_humidity(raw: u16) -> f64 {
        raw as f64 / 65535.0 * 100.0
    }

    /// Encodes a temperature (−50..=150 °C) to a 16-bit raw word.
    pub fn encode_temperature(t_c: f64) -> u16 {
        let clamped = t_c.clamp(-50.0, 150.0);
        (((clamped + 50.0) / 200.0) * 65535.0).round() as u16
    }

    /// Decodes a 16-bit raw temperature word.
    pub fn decode_temperature(raw: u16) -> f64 {
        raw as f64 / 65535.0 * 200.0 - 50.0
    }
}

/// BFH1K-3EB full-bridge strain gauge on the shell's back face,
/// "to measure two-directional concrete internal strains" (§4.2).
///
/// Bridge output: `V_out = V_exc · GF · ε / 4` with gauge factor GF ≈ 2;
/// the ADC digitizes ±V_exc·GF·ε_max/4 over 16 bits (offset binary).
#[derive(Debug, Clone, Copy)]
pub struct StrainGauge {
    /// Gauge factor (≈2 for metal foil).
    pub gauge_factor: f64,
    /// Full-scale strain (±, in strain units; 3000 µε default).
    pub full_scale: f64,
}

impl Default for StrainGauge {
    fn default() -> Self {
        StrainGauge {
            gauge_factor: 2.0,
            full_scale: 3000e-6,
        }
    }
}

impl StrainGauge {
    /// Encodes a strain (signed, strain units) into offset-binary 16 bits.
    pub fn encode(&self, strain: f64) -> u16 {
        let x = (strain / self.full_scale).clamp(-1.0, 1.0);
        (((x + 1.0) / 2.0) * 65535.0).round() as u16
    }

    /// Decodes offset-binary 16 bits back into strain.
    pub fn decode(&self, raw: u16) -> f64 {
        (raw as f64 / 65535.0 * 2.0 - 1.0) * self.full_scale
    }

    /// Converts a measured strain into stress (Pa) through the host
    /// concrete's elastic modulus — the quantity the pilot study logs.
    pub fn stress_pa(&self, strain: f64, concrete_e_pa: f64) -> f64 {
        assert!(concrete_e_pa > 0.0, "modulus must be positive");
        strain * concrete_e_pa
    }
}

/// Accelerometer channel (pilot study; ±0.5 m/s² full scale covers the
/// footbridge's ≤0.08 m/s² deck accelerations with headroom).
#[derive(Debug, Clone, Copy)]
pub struct Accelerometer {
    /// Full-scale acceleration (±, m/s²).
    pub full_scale_m_s2: f64,
}

impl Default for Accelerometer {
    fn default() -> Self {
        Accelerometer {
            full_scale_m_s2: 0.5,
        }
    }
}

impl Accelerometer {
    /// Encodes an acceleration into offset-binary 16 bits.
    pub fn encode(&self, a_m_s2: f64) -> u16 {
        let x = (a_m_s2 / self.full_scale_m_s2).clamp(-1.0, 1.0);
        (((x + 1.0) / 2.0) * 65535.0).round() as u16
    }

    /// Decodes offset-binary 16 bits back into m/s².
    pub fn decode(&self, raw: u16) -> f64 {
        (raw as f64 / 65535.0 * 2.0 - 1.0) * self.full_scale_m_s2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "fuzz")]
    use proptest::prelude::*;

    #[test]
    fn aht10_roundtrip_accuracy() {
        for rh in [0.0, 12.5, 55.0, 99.9, 100.0] {
            let back = Aht10::decode_humidity(Aht10::encode_humidity(rh));
            assert!((back - rh).abs() < 0.01, "RH {rh} → {back}");
        }
        for t in [-50.0, -10.0, 0.0, 25.0, 85.0, 150.0] {
            let back = Aht10::decode_temperature(Aht10::encode_temperature(t));
            assert!((back - t).abs() < 0.01, "T {t} → {back}");
        }
    }

    #[test]
    fn aht10_clamps_out_of_range() {
        assert_eq!(Aht10::encode_humidity(150.0), u16::MAX);
        assert_eq!(Aht10::encode_humidity(-5.0), 0);
        assert_eq!(Aht10::encode_temperature(1000.0), u16::MAX);
    }

    #[test]
    fn strain_roundtrip_and_stress() {
        let g = StrainGauge::default();
        let eps = 250e-6; // typical service strain
        let back = g.decode(g.encode(eps));
        assert!((back - eps).abs() < 1e-7, "{eps} → {back}");
        // Stress at NC's E = 27.8 GPa: 250 µε → 6.95 MPa.
        let s = g.stress_pa(eps, 27.8e9);
        assert!((s - 6.95e6).abs() / 6.95e6 < 1e-6);
    }

    #[test]
    fn strain_is_signed() {
        let g = StrainGauge::default();
        let tension = g.encode(1000e-6);
        let compression = g.encode(-1000e-6);
        assert!(tension > g.encode(0.0));
        assert!(compression < g.encode(0.0));
        assert!(g.decode(compression) < 0.0);
    }

    #[test]
    fn accel_covers_footbridge_range() {
        // Pilot study deck accelerations stay within ±0.08 m/s².
        let a = Accelerometer::default();
        let x = 0.08;
        let back = a.decode(a.encode(x));
        assert!((back - x).abs() < 1e-4);
    }

    #[cfg(feature = "fuzz")]
    proptest! {
        #[test]
        fn strain_roundtrip_random(eps_ue in -3000.0f64..3000.0) {
            let g = StrainGauge::default();
            let eps = eps_ue * 1e-6;
            let back = g.decode(g.encode(eps));
            prop_assert!((back - eps).abs() < 1.2e-7);
        }

        #[test]
        fn humidity_monotone(a in 0.0f64..99.0, d in 0.01f64..1.0) {
            prop_assert!(Aht10::encode_humidity(a + d) >= Aht10::encode_humidity(a));
        }
    }
}

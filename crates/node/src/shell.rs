//! The stressless spherical shell (§4.1, Fig 8, Eqn 4).
//!
//! A capsule implanted at depth `h` in a building carries the pressure
//! difference `ΔP = ρ·g·h − P_air` between the concrete outside and the
//! air inside (Eqn 4). The 2 mm SLA-resin sphere the paper prints
//! tolerates `ΔP_max ≈ 4.3 MPa`, bounding buildings to `h_max ≈ 195 m`;
//! an alloy-steel shell raises that to 115.2 MPa and ≈4985 m.
//!
//! Those two numbers come from *different* failure modes, which our
//! model unifies:
//!
//! - thin resin shells fail by **elastic buckling**:
//!   `P_cr = γ · 2·E·t² / (r²·√(3(1−ν²)))` with the standard empirical
//!   knockdown `γ ≈ 0.2` for imperfect spheres — 4.3 MPa for the paper's
//!   resin geometry;
//! - steel shells fail by **membrane yield**: `σ = ΔP·r/(2t) ≤ σ_yield`
//!   — 115.2 MPa for a 648 MPa alloy at the same geometry.
//!
//! `ΔP_max = min(yield limit, buckling limit)` reproduces both paper
//! values from one formula.

/// Standard atmospheric pressure (Pa), as used in Eqn 4.
pub const P_AIR_PA: f64 = 101_325.0;

/// Gravitational acceleration (m/s²).
pub const G: f64 = 9.81;

/// Empirical buckling knock-down factor for imperfect thin spheres.
pub const BUCKLING_KNOCKDOWN: f64 = 0.2;

/// A shell material's mechanical constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShellMaterial {
    /// Display name.
    pub name: &'static str,
    /// Young's modulus (Pa).
    pub youngs_pa: f64,
    /// Poisson's ratio.
    pub poisson: f64,
    /// Strength limit (tensile/yield, Pa).
    pub strength_pa: f64,
}

impl ShellMaterial {
    /// The paper's SLA resin: ~65 MPa tensile, ~2.2 GPa modulus.
    pub const SLA_RESIN: ShellMaterial = ShellMaterial {
        name: "SLA resin",
        youngs_pa: 2.2e9,
        poisson: 0.40,
        strength_pa: 65e6,
    };

    /// Alloy steel (e.g. 4140: ~648 MPa yield, 200 GPa modulus).
    pub const ALLOY_STEEL: ShellMaterial = ShellMaterial {
        name: "alloy steel",
        youngs_pa: 200e9,
        poisson: 0.30,
        strength_pa: 648e6,
    };
}

/// A spherical capsule shell.
#[derive(Debug, Clone, Copy)]
pub struct Shell {
    /// Material.
    pub material: ShellMaterial,
    /// Outer radius (m). The paper's capsule: 45 mm diameter.
    pub radius_m: f64,
    /// Wall thickness (m). The paper: 2.0 mm.
    pub thickness_m: f64,
}

impl Shell {
    /// The paper's printed prototype: 45 mm resin sphere, 2 mm wall.
    pub fn paper_resin() -> Self {
        Shell {
            material: ShellMaterial::SLA_RESIN,
            radius_m: 0.0225,
            thickness_m: 0.002,
        }
    }

    /// The §4.1 steel variant at the same geometry.
    pub fn paper_steel() -> Self {
        Shell {
            material: ShellMaterial::ALLOY_STEEL,
            ..Shell::paper_resin()
        }
    }

    /// Creates a shell. Panics on non-positive geometry or `t ≥ r`.
    pub fn new(material: ShellMaterial, radius_m: f64, thickness_m: f64) -> Self {
        assert!(
            radius_m > 0.0 && thickness_m > 0.0,
            "geometry must be positive"
        );
        assert!(
            thickness_m < radius_m,
            "wall must be thinner than the radius"
        );
        Shell {
            material,
            radius_m,
            thickness_m,
        }
    }

    /// Membrane compressive stress under external pressure `dp_pa`:
    /// `σ = ΔP·r / (2t)`.
    pub fn membrane_stress_pa(&self, dp_pa: f64) -> f64 {
        assert!(dp_pa >= 0.0, "pressure must be non-negative");
        dp_pa * self.radius_m / (2.0 * self.thickness_m)
    }

    /// Pressure limit from material strength.
    pub fn yield_limit_pa(&self) -> f64 {
        self.material.strength_pa * 2.0 * self.thickness_m / self.radius_m
    }

    /// Pressure limit from elastic buckling (classical critical pressure
    /// with the empirical knockdown).
    pub fn buckling_limit_pa(&self) -> f64 {
        let m = &self.material;
        BUCKLING_KNOCKDOWN * 2.0 * m.youngs_pa * self.thickness_m * self.thickness_m
            / (self.radius_m * self.radius_m * (3.0 * (1.0 - m.poisson * m.poisson)).sqrt())
    }

    /// The governing pressure tolerance: `min(yield, buckling)`.
    pub fn dp_max_pa(&self) -> f64 {
        self.yield_limit_pa().min(self.buckling_limit_pa())
    }

    /// Eqn 4: pressure difference at depth `h_m` in concrete of density
    /// `rho_kg_m3` (clamped at 0 — near the surface the interior air
    /// pushes outward, which the shell trivially holds).
    pub fn dp_at_depth_pa(h_m: f64, rho_kg_m3: f64) -> f64 {
        assert!(h_m >= 0.0 && rho_kg_m3 > 0.0, "invalid depth query");
        (rho_kg_m3 * G * h_m - P_AIR_PA).max(0.0)
    }

    /// Maximum building height (m) this shell can be implanted under,
    /// inverting Eqn 4: `h_max = (ΔP_max + P_air) / (ρ·g)`.
    pub fn max_building_height_m(&self, rho_kg_m3: f64) -> f64 {
        assert!(rho_kg_m3 > 0.0, "density must be positive");
        (self.dp_max_pa() + P_AIR_PA) / (rho_kg_m3 * G)
    }

    /// Radial deformation under `dp_pa`:
    /// `δ = ΔP·r²·(1−ν) / (2·E·t)` (thin-shell membrane solution).
    pub fn deformation_m(&self, dp_pa: f64) -> f64 {
        assert!(dp_pa >= 0.0, "pressure must be non-negative");
        dp_pa * self.radius_m * self.radius_m * (1.0 - self.material.poisson)
            / (2.0 * self.material.youngs_pa * self.thickness_m)
    }

    /// Fractional deformation `δ/r` — the paper tolerates at most 5%.
    pub fn deformation_fraction(&self, dp_pa: f64) -> f64 {
        self.deformation_m(dp_pa) / self.radius_m
    }

    /// Whether the shell survives implantation at depth `h_m` in concrete
    /// of density `rho_kg_m3`.
    pub fn survives_depth(&self, h_m: f64, rho_kg_m3: f64) -> bool {
        Shell::dp_at_depth_pa(h_m, rho_kg_m3) <= self.dp_max_pa()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_resin_dp_max_is_4_3_mpa() {
        // §4.1: "ΔP_max ≈ 4.3 MPa" for the printed resin shell.
        let dp = Shell::paper_resin().dp_max_pa();
        assert!(
            (dp - 4.3e6).abs() / 4.3e6 < 0.10,
            "resin ΔP_max = {} MPa",
            dp / 1e6
        );
    }

    #[test]
    fn paper_resin_max_height_is_195_m() {
        // §4.1: "h_max = 195 m ... any building under 195 m (~55 floors)".
        let h = Shell::paper_resin().max_building_height_m(2300.0);
        assert!((h - 195.0).abs() < 15.0, "resin h_max = {h} m");
    }

    #[test]
    fn paper_steel_dp_max_is_115_mpa() {
        // §4.1: "ΔP_max ≈ 115.2 MPa for the shell made from alloy steel".
        let dp = Shell::paper_steel().dp_max_pa();
        assert!(
            (dp - 115.2e6).abs() / 115.2e6 < 0.05,
            "steel ΔP_max = {} MPa",
            dp / 1e6
        );
    }

    #[test]
    fn paper_steel_max_height_is_about_4985_m() {
        // §4.1: "h_max = 4985 m, far higher than the highest man-made
        // building".
        let h = Shell::paper_steel().max_building_height_m(2360.0);
        assert!((4600.0..5400.0).contains(&h), "steel h_max = {h} m");
    }

    #[test]
    fn resin_fails_by_buckling_steel_by_yield() {
        let resin = Shell::paper_resin();
        assert!(resin.buckling_limit_pa() < resin.yield_limit_pa());
        let steel = Shell::paper_steel();
        assert!(steel.yield_limit_pa() < steel.buckling_limit_pa());
    }

    #[test]
    fn eqn4_depth_pressure() {
        // ΔP = ρgh − P_air; at 195 m and ρ = 2300 → ≈ 4.3 MPa.
        let dp = Shell::dp_at_depth_pa(195.0, 2300.0);
        assert!(
            (dp - 4.3e6).abs() / 4.3e6 < 0.03,
            "ΔP(195 m) = {} MPa",
            dp / 1e6
        );
        // Near the surface the net inward pressure clamps at 0.
        assert_eq!(Shell::dp_at_depth_pa(1.0, 2300.0), 0.0);
    }

    #[test]
    fn deformation_stays_under_5_percent_at_rating() {
        // §4.1: "5% deformation is tolerated at most".
        let shell = Shell::paper_resin();
        let frac = shell.deformation_fraction(shell.dp_max_pa());
        assert!(frac < 0.05, "deformation at rating: {}%", frac * 100.0);
    }

    #[test]
    fn survives_55_floor_building_but_not_300m() {
        let shell = Shell::paper_resin();
        assert!(shell.survives_depth(190.0, 2300.0));
        assert!(!shell.survives_depth(300.0, 2300.0));
    }

    #[test]
    fn thicker_wall_tolerates_more() {
        let thin = Shell::new(ShellMaterial::SLA_RESIN, 0.0225, 0.0015);
        let thick = Shell::new(ShellMaterial::SLA_RESIN, 0.0225, 0.003);
        assert!(thick.dp_max_pa() > thin.dp_max_pa());
    }

    #[test]
    #[should_panic(expected = "thinner")]
    fn rejects_solid_sphere() {
        let _ = Shell::new(ShellMaterial::SLA_RESIN, 0.002, 0.002);
    }

    #[test]
    fn stress_formula() {
        let s = Shell::paper_resin();
        // σ = ΔP r / 2t: at 4.3 MPa → 4.3e6 · 0.0225 / 0.004 = 24.2 MPa.
        let sigma = s.membrane_stress_pa(4.3e6);
        assert!((sigma - 24.19e6).abs() / 24.19e6 < 0.01);
        // Well under the 65 MPa strength — buckling governs, not stress.
        assert!(sigma < ShellMaterial::SLA_RESIN.strength_pa);
    }
}

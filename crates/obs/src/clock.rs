//! Virtual slot clock for quiet (non-faulted) surveys.

/// A monotone virtual slot counter.
///
/// Faulted surveys timestamp events with the fault [`Timeline`]'s
/// arbitration slot; quiet surveys have no timeline, so the engine
/// drives one of these instead, ticking once per protocol transaction.
/// Parallel read tasks get disjoint windows (`base + task × width`), so
/// the merged stream is monotone and independent of worker count.
///
/// [`Timeline`]: https://docs.rs/ecocapsule-faults
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotClock {
    slot: u64,
}

impl SlotClock {
    /// A clock starting at `start_slot`.
    pub fn new(start_slot: u64) -> Self {
        SlotClock { slot: start_slot }
    }

    /// Current slot (the slot the *next* transaction will occupy).
    pub fn now(&self) -> u64 {
        self.slot
    }

    /// Consumes one slot: returns the current slot, then advances.
    pub fn tick(&mut self) -> u64 {
        let s = self.slot;
        self.slot = self.slot.saturating_add(1);
        s
    }

    /// Skips `n` slots without consuming them for a transaction.
    pub fn skip(&mut self, n: u64) {
        self.slot = self.slot.saturating_add(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_monotone_and_post_incrementing() {
        let mut c = SlotClock::new(5);
        assert_eq!(c.now(), 5);
        assert_eq!(c.tick(), 5);
        assert_eq!(c.tick(), 6);
        c.skip(3);
        assert_eq!(c.now(), 10);
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let mut c = SlotClock::new(u64::MAX - 1);
        assert_eq!(c.tick(), u64::MAX - 1);
        assert_eq!(c.tick(), u64::MAX);
        assert_eq!(c.now(), u64::MAX);
        c.skip(10);
        assert_eq!(c.now(), u64::MAX);
    }
}

//! Structured observability events with slot-clock timestamps.

/// One observability event.
///
/// Every variant carries a `slot` timestamp from the survey's slot
/// clock (see the crate docs for the determinism contract). Span and
/// counter names are `&'static str` by design: the vocabulary is fixed
/// at compile time, which keeps recording allocation-free on the hot
/// path and makes traces trivially comparable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A span (phase, round, or transaction) begins.
    SpanOpen {
        /// Span name, e.g. `"phase.inventory"` or `"txn.read"`.
        span: &'static str,
        /// Discriminator within the span name (capsule id, round index).
        id: u32,
        /// Slot-clock timestamp at open.
        slot: u64,
    },
    /// A span ends. Matched to the most recent open with the same
    /// `(span, id)`; the slot delta is the span's latency in slots.
    SpanClose {
        /// Span name, matching the corresponding [`Event::SpanOpen`].
        span: &'static str,
        /// Discriminator, matching the corresponding open.
        id: u32,
        /// Slot-clock timestamp at close (≥ the open slot).
        slot: u64,
    },
    /// A monotone counter increments by `delta`.
    Counter {
        /// Counter name, e.g. `"inventory.collision_slots"`.
        name: &'static str,
        /// Increment (≥ 1 by convention; 0 is legal and recorded).
        delta: u64,
        /// Slot-clock timestamp of the increment.
        slot: u64,
    },
    /// A histogram sample: one value observed under `name`.
    Observe {
        /// Histogram name, e.g. `"inventory.q"`.
        name: &'static str,
        /// Observed value (log2-bucketed by [`crate::Histogram`]).
        value: u64,
        /// Slot-clock timestamp of the observation.
        slot: u64,
    },
}

impl Event {
    /// The event's slot-clock timestamp.
    pub fn slot(&self) -> u64 {
        match self {
            Event::SpanOpen { slot, .. }
            | Event::SpanClose { slot, .. }
            | Event::Counter { slot, .. }
            | Event::Observe { slot, .. } => *slot,
        }
    }

    /// Serialises the event as one JSON object (no trailing newline).
    ///
    /// The schema is documented in DESIGN.md §5; keys appear in a fixed
    /// order so traces are byte-comparable.
    pub fn to_json(&self) -> String {
        match self {
            Event::SpanOpen { span, id, slot } => {
                format!(
                    "{{\"ev\":\"span_open\",\"span\":\"{}\",\"id\":{id},\"slot\":{slot}}}",
                    escape_json(span)
                )
            }
            Event::SpanClose { span, id, slot } => {
                format!(
                    "{{\"ev\":\"span_close\",\"span\":\"{}\",\"id\":{id},\"slot\":{slot}}}",
                    escape_json(span)
                )
            }
            Event::Counter { name, delta, slot } => {
                format!(
                    "{{\"ev\":\"counter\",\"name\":\"{}\",\"delta\":{delta},\"slot\":{slot}}}",
                    escape_json(name)
                )
            }
            Event::Observe { name, value, slot } => {
                format!(
                    "{{\"ev\":\"observe\",\"name\":\"{}\",\"value\":{value},\"slot\":{slot}}}",
                    escape_json(name)
                )
            }
        }
    }
}

/// Escapes a name for embedding in a JSON string literal. The event
/// vocabulary is plain ASCII in practice; this covers quotes,
/// backslashes, and control characters so arbitrary names stay legal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_keys_are_stable() {
        let ev = Event::SpanOpen {
            span: "survey",
            id: 3,
            slot: 17,
        };
        assert_eq!(
            ev.to_json(),
            "{\"ev\":\"span_open\",\"span\":\"survey\",\"id\":3,\"slot\":17}"
        );
        let ev = Event::Counter {
            name: "retry.backoff_slots",
            delta: 4,
            slot: 9,
        };
        assert_eq!(
            ev.to_json(),
            "{\"ev\":\"counter\",\"name\":\"retry.backoff_slots\",\"delta\":4,\"slot\":9}"
        );
    }

    #[test]
    fn slot_accessor_covers_every_variant() {
        let evs = [
            Event::SpanOpen {
                span: "a",
                id: 0,
                slot: 1,
            },
            Event::SpanClose {
                span: "a",
                id: 0,
                slot: 2,
            },
            Event::Counter {
                name: "c",
                delta: 1,
                slot: 3,
            },
            Event::Observe {
                name: "o",
                value: 7,
                slot: 4,
            },
        ];
        let slots: Vec<u64> = evs.iter().map(Event::slot).collect();
        assert_eq!(slots, vec![1, 2, 3, 4]);
    }

    #[test]
    fn escaping_keeps_hostile_names_legal() {
        let ev = Event::Observe {
            name: "quo\"te\\back\n",
            value: 0,
            slot: 0,
        };
        assert_eq!(
            ev.to_json(),
            "{\"ev\":\"observe\",\"name\":\"quo\\\"te\\\\back\\n\",\"value\":0,\"slot\":0}"
        );
    }
}

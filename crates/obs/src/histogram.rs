//! Fixed log2-bucketed histogram for slot latencies and observations.

/// Number of buckets: one for zero plus one per significant-bit count.
const BUCKETS: usize = 65;

/// A histogram with fixed log2 bucketing.
///
/// Bucket 0 holds the value 0; bucket `k` (1 ≤ k ≤ 64) holds values
/// with exactly `k` significant bits, i.e. the range `[2^(k−1), 2^k)`.
/// Quantiles are reported as the *upper bound* of the bucket where the
/// cumulative count crosses the requested rank, so they are exact for
/// powers of two and conservative (rounded up) otherwise — and, being
/// pure integer arithmetic, bit-identical across platforms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        self.buckets[idx] = self.buckets[idx].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `pct`-th percentile (1 ≤ pct ≤ 100) as a bucket upper bound,
    /// or 0 for an empty histogram. `pct` is clamped into range.
    pub fn percentile(&self, pct: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let pct = pct.clamp(1, 100);
        // Ceil(count × pct / 100) in u128 so huge counts cannot overflow.
        let target = (u128::from(self.count) * u128::from(pct) + 99) / 100;
        let mut cum: u128 = 0;
        for (idx, n) in self.buckets.iter().enumerate() {
            cum += u128::from(*n);
            if cum >= target {
                return Histogram::bucket_upper(idx);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.percentile(50)
    }

    /// Tail latency (p99).
    pub fn p99(&self) -> u64 {
        self.percentile(99)
    }

    /// Inclusive upper bound of bucket `idx`.
    fn bucket_upper(idx: usize) -> u64 {
        if idx == 0 {
            0
        } else if idx >= 64 {
            u64::MAX
        } else {
            (1u64 << idx) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_small_values_land_in_exact_buckets() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 10);
        assert_eq!(h.max(), 4);
        // p50 = 3rd of 5 sorted [0,1,2,3,4] → value 2, bucket [2,3] → 3.
        assert_eq!(h.p50(), 3);
        // p99 lands in the last occupied bucket: [4,7] → 7.
        assert_eq!(h.p99(), 7);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn percentiles_are_monotone_in_pct() {
        let mut h = Histogram::new();
        for v in [1u64, 10, 100, 1000, 10_000] {
            h.record(v);
        }
        let mut last = 0;
        for pct in 1..=100 {
            let p = h.percentile(pct);
            assert!(p >= last, "p{pct} = {p} < previous {last}");
            last = p;
        }
    }

    #[test]
    fn huge_values_saturate_without_panicking() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.p99(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum saturates");
    }
}

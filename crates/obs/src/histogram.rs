//! Fixed log2-bucketed histogram for slot latencies and observations.

/// Number of buckets: one for zero plus one per significant-bit count.
const BUCKETS: usize = 65;

/// A histogram with fixed log2 bucketing.
///
/// Bucket 0 holds the value 0; bucket `k` (1 ≤ k ≤ 64) holds values
/// with exactly `k` significant bits, i.e. the range `[2^(k−1), 2^k)`.
/// Quantiles are reported as the *upper bound* of the bucket where the
/// cumulative count crosses the requested rank, so they are exact for
/// powers of two and conservative (rounded up) otherwise — and, being
/// pure integer arithmetic, bit-identical across platforms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        self.buckets[idx] = self.buckets[idx].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `pct`-th percentile (1 ≤ pct ≤ 100) as a bucket upper bound,
    /// or 0 for an empty histogram. `pct` is clamped into range.
    pub fn percentile(&self, pct: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let pct = pct.clamp(1, 100);
        // Ceil(count × pct / 100) in u128 so huge counts cannot overflow.
        let target = (u128::from(self.count) * u128::from(pct) + 99) / 100;
        let mut cum: u128 = 0;
        for (idx, n) in self.buckets.iter().enumerate() {
            cum += u128::from(*n);
            if cum >= target {
                return Histogram::bucket_upper(idx);
            }
        }
        self.max
    }

    /// Exact arithmetic mean of the recorded observations (`sum/count`,
    /// one f64 division — deterministic and platform-independent), or
    /// `0.0` for an empty histogram. Unlike the percentiles this is not
    /// bucket-quantized: `sum` tracks the raw values, so campaign-level
    /// drift analytics can baseline on it without log2 rounding noise.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.percentile(50)
    }

    /// Tail latency (p99).
    pub fn p99(&self) -> u64 {
        self.percentile(99)
    }

    /// Folds `other` into `self`: bucket counts, count, and sum add
    /// (saturating); max takes the larger. Merging is associative and
    /// commutative, so a fleet can aggregate per-wall histograms in any
    /// grouping and get the same summary.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Stable word serialization: `[count, sum, max, n, (idx, count)…]`
    /// with one pair per non-empty bucket, in bucket order. The format
    /// feeds both checkpoint encoders and digests — two histograms are
    /// equal iff their words are equal.
    pub fn encode_words(&self) -> Vec<u64> {
        let mut words = vec![self.count, self.sum, self.max];
        let occupied: Vec<(usize, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(idx, n)| (idx, *n))
            .collect();
        words.push(occupied.len() as u64);
        for (idx, n) in occupied {
            words.push(idx as u64);
            words.push(n);
        }
        words
    }

    /// Inverse of [`Histogram::encode_words`]. Returns `None` on a
    /// malformed word stream (bad length, bucket index ≥ 65, or trailing
    /// words).
    pub fn decode_words(words: &[u64]) -> Option<Histogram> {
        let (&count, rest) = words.split_first()?;
        let (&sum, rest) = rest.split_first()?;
        let (&max, rest) = rest.split_first()?;
        let (&pairs, rest) = rest.split_first()?;
        if rest.len() as u64 != pairs.checked_mul(2)? {
            return None;
        }
        let mut h = Histogram::new();
        h.count = count;
        h.sum = sum;
        h.max = max;
        for pair in rest.chunks(2) {
            let idx = usize::try_from(pair[0]).ok()?;
            if idx >= BUCKETS {
                return None;
            }
            h.buckets[idx] = *pair.get(1)?;
        }
        Some(h)
    }

    /// Inclusive upper bound of bucket `idx`.
    fn bucket_upper(idx: usize) -> u64 {
        if idx == 0 {
            0
        } else if idx >= 64 {
            u64::MAX
        } else {
            (1u64 << idx) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_is_exact_not_bucketed() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0, "empty histogram means 0");
        h.record(1);
        h.record(2);
        h.record(6);
        // (1+2+6)/3 = 3 exactly, even though 6 sits in the [4,8) bucket.
        assert_eq!(h.mean(), 3.0);
        let mut other = Histogram::new();
        other.record(5);
        h.merge(&other);
        assert_eq!(h.mean(), 3.5);
    }

    #[test]
    fn zero_and_small_values_land_in_exact_buckets() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 10);
        assert_eq!(h.max(), 4);
        // p50 = 3rd of 5 sorted [0,1,2,3,4] → value 2, bucket [2,3] → 3.
        assert_eq!(h.p50(), 3);
        // p99 lands in the last occupied bucket: [4,7] → 7.
        assert_eq!(h.p99(), 7);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn percentiles_are_monotone_in_pct() {
        let mut h = Histogram::new();
        for v in [1u64, 10, 100, 1000, 10_000] {
            h.record(v);
        }
        let mut last = 0;
        for pct in 1..=100 {
            let p = h.percentile(pct);
            assert!(p >= last, "p{pct} = {p} < previous {last}");
            last = p;
        }
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [0u64, 1, 7, 8, 1000] {
            a.record(v);
            both.record(v);
        }
        for v in [3u64, 1_000_000, 42] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        assert_eq!(a.count(), 8);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn merging_an_empty_histogram_is_identity() {
        let mut h = Histogram::new();
        h.record(5);
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);
    }

    #[test]
    fn words_round_trip() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1000, u64::MAX] {
            h.record(v);
        }
        let words = h.encode_words();
        assert_eq!(Histogram::decode_words(&words), Some(h));
        // Empty histogram round-trips too.
        let empty = Histogram::new();
        assert_eq!(Histogram::decode_words(&empty.encode_words()), Some(empty));
    }

    #[test]
    fn malformed_words_are_rejected() {
        assert_eq!(Histogram::decode_words(&[]), None);
        assert_eq!(
            Histogram::decode_words(&[1, 2, 3]),
            None,
            "missing pair count"
        );
        assert_eq!(
            Histogram::decode_words(&[1, 2, 3, 1, 0]),
            None,
            "truncated pair"
        );
        assert_eq!(
            Histogram::decode_words(&[1, 2, 3, 1, 65, 1]),
            None,
            "bucket index out of range"
        );
        assert_eq!(
            Histogram::decode_words(&[1, 2, 3, 0, 9]),
            None,
            "trailing words"
        );
    }

    #[test]
    fn huge_values_saturate_without_panicking() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.p99(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum saturates");
    }
}

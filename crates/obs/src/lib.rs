//! Zero-dependency observability layer for the EcoCapsule stack.
//!
//! The paper's 17-month pilot (§8) hinges on the reader being able to
//! tell *why* a capsule went silent — energy starvation, arbitration
//! collision, or decode failure. This crate provides the plumbing: a
//! [`Recorder`] trait consuming structured [`Event`]s (span open/close,
//! counters, histogram observations), with three implementations:
//!
//! * [`NullRecorder`] — discards everything; the zero-cost default.
//! * [`MemoryRecorder`] — ordered in-memory stream plus counter totals
//!   and per-span latency histograms; serialises to JSON lines.
//! * [`ExportRecorder`] — streams JSON lines into any `io::Write` sink.
//!
//! # Determinism contract
//!
//! Events carry **slot-clock** timestamps, never wall-clock time. On a
//! faulted survey the slot is the fault timeline's arbitration slot; on
//! a quiet survey it is a virtual [`SlotClock`] that advances one slot
//! per protocol transaction. Two runs with the same seed and the same
//! configuration produce byte-identical event streams regardless of
//! worker count: parallel phases record into per-task buffers that are
//! replayed into the session recorder in capsule order.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod clock;
pub mod event;
pub mod histogram;
pub mod recorder;

pub use clock::SlotClock;
pub use event::Event;
pub use histogram::Histogram;
pub use recorder::{ExportRecorder, MemoryRecorder, NullRecorder, Recorder};
